// Package indep is a complete implementation of Graham and Yannakakis,
// "Independent Database Schemas" (PODS 1982; JCSS 28(1):121–141, 1984).
//
// A database schema D is independent with respect to its functional
// dependencies F and its join dependency *D when checking each relation in
// isolation suffices to guarantee the whole state is consistent (has a weak
// instance). Independence is what makes constraint maintenance cheap: a
// single-tuple insert can be validated against one relation's FDs instead
// of re-chasing the entire database — which Theorem 1 of the paper shows is
// intractable in general.
//
// The package offers:
//
//   - Parse / MustParse: build a Schema from compact text.
//   - Schema.Analyze: the paper's polynomial decision procedure
//     (Theorem 2: cover-embedding + "The Loop"), with an explicit
//     counterexample state whenever the schema is not independent.
//   - Schema.Closure / EmbeddedClosure: FD inference under F ∪ {*D}.
//   - Schema.NewDatabase: states, weak-instance satisfaction checks (the
//     chase), and local-consistency checks.
//   - Schema.OpenStore: a maintained database that uses the O(|F_i|)
//     per-relation guard when the schema is independent and the chase
//     otherwise.
//
// Everything is implemented from scratch on the Go standard library; the
// heavy lifting lives in internal/ packages (chase engine, tagged tableaux,
// the Loop) and is validated against a chase oracle in their test suites.
package indep

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"indep/internal/acyclic"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/query"
	"indep/internal/schema"
)

// Schema couples a database schema with its functional dependencies.
type Schema struct {
	s   *schema.Schema
	fds fd.List

	// qmu guards qev, the lazily built window-query evaluator shared by
	// every Database of this schema (see Database.Query).
	qmu sync.Mutex
	qev *query.Evaluator
}

// Parse builds a Schema from two compact declarations, e.g.
//
//	Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
//
// Relation schemes are name(attr,...) separated by ';' or newlines; FDs are
// "A B -> C" separated the same way. The FD text may be empty.
func Parse(schemaSrc, fdSrc string) (*Schema, error) {
	s, err := schema.Parse(schemaSrc)
	if err != nil {
		return nil, err
	}
	fds, err := fd.Parse(s.U, fdSrc)
	if err != nil {
		return nil, err
	}
	return &Schema{s: s, fds: fds}, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(schemaSrc, fdSrc string) *Schema {
	s, err := Parse(schemaSrc, fdSrc)
	if err != nil {
		panic(err)
	}
	return s
}

// Attributes returns the universe attribute names in order.
func (s *Schema) Attributes() []string {
	out := make([]string, s.s.U.Size())
	for i := range out {
		out[i] = s.s.U.Name(i)
	}
	return out
}

// Relations returns the relation scheme names in order.
func (s *Schema) Relations() []string {
	out := make([]string, s.s.Size())
	for i := range out {
		out[i] = s.s.Name(i)
	}
	return out
}

// RelationAttrs returns the attribute names of the named relation scheme.
func (s *Schema) RelationAttrs(rel string) ([]string, error) {
	i := s.s.IndexOf(rel)
	if i < 0 {
		return nil, fmt.Errorf("indep: unknown relation %q", rel)
	}
	return s.s.U.Names(s.s.Attrs(i)), nil
}

// FDs returns the functional dependencies as display strings.
func (s *Schema) FDs() []string {
	out := make([]string, len(s.fds))
	for i, f := range s.fds {
		out[i] = f.Format(s.s.U)
	}
	return out
}

// String renders the schema.
func (s *Schema) String() string {
	return fmt.Sprintf("%s with %s", s.s, s.fds.Format(s.s.U))
}

// IsAcyclic reports whether the schema hypergraph is α-acyclic (GYO).
func (s *Schema) IsAcyclic() bool { return acyclic.IsAcyclic(s.s) }

// Closure computes cl_Σ(X) for Σ = F ∪ {*D}: every attribute functionally
// determined by the given ones, taking the join dependency into account.
func (s *Schema) Closure(attrs ...string) ([]string, error) {
	x, err := s.attrSet(attrs)
	if err != nil {
		return nil, err
	}
	return s.s.U.Names(infer.Closure(s.s, s.fds, x)), nil
}

// EmbeddedClosure computes the closure of X under only those implied FDs
// that are embedded in some relation scheme (the paper's cl_{G|D}).
func (s *Schema) EmbeddedClosure(attrs ...string) ([]string, error) {
	x, err := s.attrSet(attrs)
	if err != nil {
		return nil, err
	}
	closed, _ := infer.ClosureEmbedded(s.s, s.fds, x)
	return s.s.U.Names(closed), nil
}

func (s *Schema) attrSet(attrs []string) (x attrSetT, err error) {
	for _, a := range attrs {
		i, ok := s.s.U.Index(a)
		if !ok {
			return x, fmt.Errorf("indep: unknown attribute %q", a)
		}
		x.Add(i)
	}
	return x, nil
}

// Analysis is the outcome of the independence decision procedure.
type Analysis struct {
	// Independent reports whether local consistency of every relation
	// guarantees global consistency (LSAT = WSAT).
	Independent bool
	// Reason is "independent", "not-cover-embedding" or "loop-rejected".
	Reason string
	// RelationCovers maps each relation name to the embedded FD cover F_i
	// that suffices for maintaining it (meaningful when Independent; these
	// are the FDs the fast Store guard enforces).
	RelationCovers map[string][]string
	// PartitionKeys maps each relation name to the attributes a cluster may
	// hash-partition it by without breaking local validation: the
	// intersection of the left-hand sides of the relation's cover F_i. The
	// guard only ever compares tuples that agree on some LHS, and since the
	// key is a subset of every LHS, any two tuples that could conflict agree
	// on the key — so they hash to the same partition and every partition
	// validates with only its own tuples. A relation with no FDs may be
	// partitioned by its full scheme; a relation whose LHS intersection is
	// empty maps to nil and must live whole on one node. Meaningful only
	// when Independent.
	PartitionKeys map[string][]string
	// FailingFDs lists FDs of F underivable from embedded FDs, when
	// Reason is "not-cover-embedding".
	FailingFDs []string
	// Rejection describes the Loop rejection, when Reason is
	// "loop-rejected".
	Rejection string
	// WitnessKind names the counterexample construction used ("lemma-3",
	// "lemma-7", "theorem-4"); empty when independent.
	WitnessKind string
	// Witness, when not independent, is a database state that every
	// relation accepts locally but that has no weak instance. It is the
	// concrete update anomaly the schema design permits.
	Witness *Database
}

// Analyze runs the paper's polynomial independence test and, on failure,
// returns a chase-verified counterexample state.
func (s *Schema) Analyze() (*Analysis, error) {
	res, err := independence.Decide(s.s, s.fds)
	if err != nil {
		return nil, err
	}
	return s.newAnalysis(res), nil
}

// newAnalysis converts a decision-procedure result into the public Analysis;
// shared by Analyze and OpenConcurrentStore (which gets the result from its
// engine rather than deciding twice).
func (s *Schema) newAnalysis(res *independence.Result) *Analysis {
	a := &Analysis{
		Independent: res.Independent,
		Reason:      string(res.Reason),
	}
	if res.Independent {
		a.RelationCovers = make(map[string][]string, s.s.Size())
		a.PartitionKeys = make(map[string][]string, s.s.Size())
		for i := range s.s.Rels {
			var fs []string
			cover := res.Cover.ForScheme(i)
			key := s.s.Attrs(i)
			for _, f := range cover {
				fs = append(fs, f.Format(s.s.U))
				key = key.Intersect(f.LHS)
			}
			sort.Strings(fs)
			a.RelationCovers[s.s.Name(i)] = fs
			if key.IsEmpty() {
				a.PartitionKeys[s.s.Name(i)] = nil
			} else {
				a.PartitionKeys[s.s.Name(i)] = s.s.U.Names(key)
			}
		}
		return a
	}
	for _, f := range res.FailingFDs {
		a.FailingFDs = append(a.FailingFDs, f.Format(s.s.U))
	}
	if res.Rejection != nil {
		rej := res.Rejection
		a.Rejection = fmt.Sprintf("analyzing %s: l.h.s. {%s} of %s rejected at %s (attribute %s)",
			s.s.Name(rej.Analyzed), s.s.U.Format(rej.LHS, " "), s.s.Name(rej.Scheme),
			rej.Site, s.s.U.Name(rej.Attr))
	}
	a.WitnessKind = string(res.WitnessKind)
	if res.Witness != nil {
		a.Witness = &Database{schema: s, st: res.Witness}
	}
	return a
}

// Summary renders a human-readable report of the analysis.
func (a *Analysis) Summary() string {
	var b strings.Builder
	if a.Independent {
		b.WriteString("INDEPENDENT: per-relation FD checks fully enforce the global constraints.\n")
		names := make([]string, 0, len(a.RelationCovers))
		for n := range a.RelationCovers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fds := a.RelationCovers[n]
			if len(fds) == 0 {
				fmt.Fprintf(&b, "  %s: (no constraints)\n", n)
			} else {
				fmt.Fprintf(&b, "  %s: %s\n", n, strings.Join(fds, "; "))
			}
		}
		return b.String()
	}
	fmt.Fprintf(&b, "NOT INDEPENDENT (%s)\n", a.Reason)
	if len(a.FailingFDs) > 0 {
		fmt.Fprintf(&b, "  FDs not derivable from embedded FDs: %s\n", strings.Join(a.FailingFDs, "; "))
	}
	if a.Rejection != "" {
		fmt.Fprintf(&b, "  %s\n", a.Rejection)
	}
	if a.Witness != nil {
		fmt.Fprintf(&b, "  counterexample state (%s): every relation is locally consistent,\n", a.WitnessKind)
		b.WriteString("  yet no weak instance exists:\n")
		for _, line := range strings.Split(strings.TrimRight(a.Witness.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
