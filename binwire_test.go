package indep

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// binTestSchema is the paper's running example: independent, three schemes,
// shared attributes across relations so interned values are reused.
func binTestSchema(t testing.TB) *Schema {
	t.Helper()
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// binTestOps builds n valid rows cycling over the schema's relations, with
// value reuse (every FD holds by construction: each value is a function of
// its attribute and seed).
func binTestOps(n int) []BatchOp {
	rels := [][2]any{
		{"CT", []string{"C", "T"}},
		{"CS", []string{"C", "S"}},
		{"CHR", []string{"C", "H", "R"}},
	}
	ops := make([]BatchOp, n)
	for i := range ops {
		rel := rels[i%len(rels)]
		attrs := rel[1].([]string)
		row := make(map[string]string, len(attrs))
		for _, a := range attrs {
			row[a] = fmt.Sprintf("%s%d", a, i/len(rels)%7)
		}
		ops[i] = BatchOp{Rel: rel[0].(string), Row: row}
	}
	return ops
}

// TestBinBatchRoundTrip pins the wire contract: a 64-op encoder payload
// applied through ApplyBinBatch yields exactly the state the JSON path's
// InsertBatch yields for the same rows.
func TestBinBatchRoundTrip(t *testing.T) {
	sch := binTestSchema(t)
	ops := binTestOps(64)

	want, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := want.InsertBatch(ops); err != nil {
		t.Fatal(err)
	}

	enc := NewBinBatchEncoder(sch)
	for _, op := range ops {
		if err := enc.Add(op.Rel, op.Row); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Len() != 64 {
		t.Fatalf("encoder holds %d ops, want 64", enc.Len())
	}
	got, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	n, err := got.ApplyBinBatch(context.Background(), enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("ApplyBinBatch admitted %d rows, want 64", n)
	}
	if diffs := DiffDatabases(want.Snapshot(), got.Snapshot()); diffs != nil {
		t.Fatalf("binary batch diverged from JSON path: %v", diffs)
	}

	// Reset must yield a self-contained next payload (bindings re-emitted).
	enc.Reset()
	if enc.Len() != 0 {
		t.Fatalf("Len after Reset = %d", enc.Len())
	}
	if err := enc.Add("CT", map[string]string{"C": "C0", "T": "T0"}); err != nil {
		t.Fatal(err)
	}
	fresh, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := fresh.ApplyBinBatch(context.Background(), enc.Bytes()); err != nil || n != 1 {
		t.Fatalf("post-Reset payload: n=%d err=%v", n, err)
	}
}

// TestBinBatchAtomicReject: an FD-violating binary batch is rejected as a
// whole and leaves the state unchanged.
func TestBinBatchAtomicReject(t *testing.T) {
	sch := binTestSchema(t)
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	for _, row := range []map[string]string{
		{"C": "cs101", "T": "jones"},
		{"C": "cs101", "T": "smith"}, // violates C -> T
	} {
		if err := enc.Add("CT", row); err != nil {
			t.Fatal(err)
		}
	}
	n, err := cs.ApplyBinBatch(context.Background(), enc.Bytes())
	if !Rejected(err) {
		t.Fatalf("want rejection, got n=%d err=%v", n, err)
	}
	if cs.Rows() != 0 {
		t.Fatalf("rejected batch left %d rows", cs.Rows())
	}
}

// TestBinBatchMalformed: structurally bad payloads are errors (never
// rejections, never panics) and leave the state unchanged.
func TestBinBatchMalformed(t *testing.T) {
	sch := binTestSchema(t)
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	if err := enc.Add("CT", map[string]string{"C": "c", "T": "t"}); err != nil {
		t.Fatal(err)
	}
	valid := enc.Bytes()
	cases := map[string][]byte{
		"truncated":   valid[:len(valid)-3],
		"corrupted":   append(append([]byte(nil), valid[:len(valid)-1]...), valid[len(valid)-1]^0xff),
		"empty frame": {0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, payload := range cases {
		n, err := cs.ApplyBinBatch(context.Background(), payload)
		if err == nil || Rejected(err) {
			t.Errorf("%s: want malformed error, got n=%d err=%v", name, n, err)
		}
	}
	if cs.Rows() != 0 {
		t.Fatalf("malformed payloads left %d rows", cs.Rows())
	}
}

// TestWindowBinaryRoundTrip: the binary window result decodes to exactly the
// JSON-shaped result, across projection, selection, and limit.
func TestWindowBinaryRoundTrip(t *testing.T) {
	sch := binTestSchema(t)
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertBatch(binTestOps(60)); err != nil {
		t.Fatal(err)
	}
	queries := []WindowQuery{
		{Attrs: []string{"C", "T"}},
		{Attrs: []string{"C", "T", "S"}, Limit: 3},
		{Attrs: []string{"C", "T"}, Where: map[string]string{"C": "C1"}},
		{Attrs: []string{"C", "T"}, Project: []string{"T"}},
		{Attrs: []string{"C"}, Where: map[string]string{"C": "never-seen"}},
	}
	for _, q := range queries {
		want, err := cs.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		q.BinaryResult = true
		res, err := cs.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows != nil || len(res.Bin) == 0 {
			t.Fatalf("binary result: Rows=%v len(Bin)=%d", res.Rows, len(res.Bin))
		}
		got, err := DecodeWindowBinary(res.Bin)
		if err != nil {
			t.Fatalf("decode %v: %v", q.Attrs, err)
		}
		// PlanCached is excluded: the second run of the same attrs hits the
		// plan cache by design, so the two results legitimately differ there.
		if !reflect.DeepEqual(got.Attrs, want.Attrs) || got.Total != want.Total ||
			got.FastPath != want.FastPath {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		wrows := want.Rows
		grows := got.Rows
		if len(wrows) != len(grows) {
			t.Fatalf("row count %d vs %d", len(grows), len(wrows))
		}
		for i := range wrows {
			if !reflect.DeepEqual(grows[i], wrows[i]) {
				t.Fatalf("row %d: got %v want %v", i, grows[i], wrows[i])
			}
		}
	}
}

// FuzzDecodeBinaryBatch: arbitrary bytes through the full binary ingest path
// must error or apply cleanly — never panic, never corrupt the store into a
// state its own invariants reject.
func FuzzDecodeBinaryBatch(f *testing.F) {
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		f.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	for _, op := range binTestOps(8) {
		if err := enc.Add(op.Rel, op.Row); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(enc.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		cs.ApplyBinBatch(context.Background(), payload)
	})
}

// FuzzDecodeWindowBinary: the result decoder must reject arbitrary bytes
// without panicking, and round-trip every valid encoding.
func FuzzDecodeWindowBinary(f *testing.F) {
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		f.Fatal(err)
	}
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		f.Fatal(err)
	}
	if err := cs.InsertBatch(binTestOps(12)); err != nil {
		f.Fatal(err)
	}
	res, err := cs.Query(WindowQuery{Attrs: []string{"C", "T"}, BinaryResult: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.Bin)
	f.Add([]byte("IWIN1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeWindowBinary(data)
	})
}

// TestBinBatchRandomEquivalence drives random mixed batches through both
// wire paths and requires identical states — the randomized analogue of the
// 64-op pin.
func TestBinBatchRandomEquivalence(t *testing.T) {
	sch := binTestSchema(t)
	rng := rand.New(rand.NewSource(9))
	jsonStore, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	binStore, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	for round := 0; round < 50; round++ {
		enc.Reset()
		n := 1 + rng.Intn(20)
		ops := make([]BatchOp, 0, n)
		all := binTestOps(200)
		for i := 0; i < n; i++ {
			ops = append(ops, all[rng.Intn(len(all))])
		}
		for _, op := range ops {
			if err := enc.Add(op.Rel, op.Row); err != nil {
				t.Fatal(err)
			}
		}
		jerr := jsonStore.InsertBatch(ops)
		_, berr := binStore.ApplyBinBatch(context.Background(), enc.Bytes())
		if (jerr == nil) != (berr == nil) {
			t.Fatalf("round %d: json err=%v bin err=%v", round, jerr, berr)
		}
	}
	if diffs := DiffDatabases(jsonStore.Snapshot(), binStore.Snapshot()); diffs != nil {
		t.Fatalf("random equivalence diverged: %v", diffs)
	}
}
