package indep

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// binTestSchema is the paper's running example: independent, three schemes,
// shared attributes across relations so interned values are reused.
func binTestSchema(t testing.TB) *Schema {
	t.Helper()
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// binTestOps builds n valid rows cycling over the schema's relations, with
// value reuse (every FD holds by construction: each value is a function of
// its attribute and seed).
func binTestOps(n int) []BatchOp {
	rels := [][2]any{
		{"CT", []string{"C", "T"}},
		{"CS", []string{"C", "S"}},
		{"CHR", []string{"C", "H", "R"}},
	}
	ops := make([]BatchOp, n)
	for i := range ops {
		rel := rels[i%len(rels)]
		attrs := rel[1].([]string)
		row := make(map[string]string, len(attrs))
		for _, a := range attrs {
			row[a] = fmt.Sprintf("%s%d", a, i/len(rels)%7)
		}
		ops[i] = BatchOp{Rel: rel[0].(string), Row: row}
	}
	return ops
}

// TestBinBatchRoundTrip pins the wire contract: a 64-op encoder payload
// applied through ApplyBinBatch yields exactly the state the JSON path's
// InsertBatch yields for the same rows.
func TestBinBatchRoundTrip(t *testing.T) {
	sch := binTestSchema(t)
	ops := binTestOps(64)

	want, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := want.InsertBatch(ops); err != nil {
		t.Fatal(err)
	}

	enc := NewBinBatchEncoder(sch)
	for _, op := range ops {
		if err := enc.Add(op.Rel, op.Row); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Len() != 64 {
		t.Fatalf("encoder holds %d ops, want 64", enc.Len())
	}
	got, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	n, err := got.ApplyBinBatch(context.Background(), enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("ApplyBinBatch admitted %d rows, want 64", n)
	}
	if diffs := DiffDatabases(want.Snapshot(), got.Snapshot()); diffs != nil {
		t.Fatalf("binary batch diverged from JSON path: %v", diffs)
	}

	// Reset must yield a self-contained next payload (bindings re-emitted).
	enc.Reset()
	if enc.Len() != 0 {
		t.Fatalf("Len after Reset = %d", enc.Len())
	}
	if err := enc.Add("CT", map[string]string{"C": "C0", "T": "T0"}); err != nil {
		t.Fatal(err)
	}
	fresh, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := fresh.ApplyBinBatch(context.Background(), enc.Bytes()); err != nil || n != 1 {
		t.Fatalf("post-Reset payload: n=%d err=%v", n, err)
	}
}

// TestBinBatchAtomicReject: an FD-violating binary batch is rejected as a
// whole and leaves the state unchanged.
func TestBinBatchAtomicReject(t *testing.T) {
	sch := binTestSchema(t)
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	for _, row := range []map[string]string{
		{"C": "cs101", "T": "jones"},
		{"C": "cs101", "T": "smith"}, // violates C -> T
	} {
		if err := enc.Add("CT", row); err != nil {
			t.Fatal(err)
		}
	}
	n, err := cs.ApplyBinBatch(context.Background(), enc.Bytes())
	if !Rejected(err) {
		t.Fatalf("want rejection, got n=%d err=%v", n, err)
	}
	if cs.Rows() != 0 {
		t.Fatalf("rejected batch left %d rows", cs.Rows())
	}
}

// TestBinBatchMalformed: structurally bad payloads are errors (never
// rejections, never panics) and leave the state unchanged.
func TestBinBatchMalformed(t *testing.T) {
	sch := binTestSchema(t)
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	if err := enc.Add("CT", map[string]string{"C": "c", "T": "t"}); err != nil {
		t.Fatal(err)
	}
	valid := enc.Bytes()
	cases := map[string][]byte{
		"truncated":   valid[:len(valid)-3],
		"corrupted":   append(append([]byte(nil), valid[:len(valid)-1]...), valid[len(valid)-1]^0xff),
		"empty frame": {0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, payload := range cases {
		n, err := cs.ApplyBinBatch(context.Background(), payload)
		if err == nil || Rejected(err) {
			t.Errorf("%s: want malformed error, got n=%d err=%v", name, n, err)
		}
	}
	if cs.Rows() != 0 {
		t.Fatalf("malformed payloads left %d rows", cs.Rows())
	}
}

// TestWindowBinaryRoundTrip: the binary window result decodes to exactly the
// JSON-shaped result, across projection, selection, and limit.
func TestWindowBinaryRoundTrip(t *testing.T) {
	sch := binTestSchema(t)
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertBatch(binTestOps(60)); err != nil {
		t.Fatal(err)
	}
	queries := []WindowQuery{
		{Attrs: []string{"C", "T"}},
		{Attrs: []string{"C", "T", "S"}, Limit: 3},
		{Attrs: []string{"C", "T"}, Where: map[string]string{"C": "C1"}},
		{Attrs: []string{"C", "T"}, Project: []string{"T"}},
		{Attrs: []string{"C"}, Where: map[string]string{"C": "never-seen"}},
	}
	for _, q := range queries {
		want, err := cs.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		q.BinaryResult = true
		res, err := cs.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows != nil || len(res.Bin) == 0 {
			t.Fatalf("binary result: Rows=%v len(Bin)=%d", res.Rows, len(res.Bin))
		}
		got, err := DecodeWindowBinary(res.Bin)
		if err != nil {
			t.Fatalf("decode %v: %v", q.Attrs, err)
		}
		// PlanCached is excluded: the second run of the same attrs hits the
		// plan cache by design, so the two results legitimately differ there.
		if !reflect.DeepEqual(got.Attrs, want.Attrs) || got.Total != want.Total ||
			got.FastPath != want.FastPath {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		wrows := want.Rows
		grows := got.Rows
		if len(wrows) != len(grows) {
			t.Fatalf("row count %d vs %d", len(grows), len(wrows))
		}
		for i := range wrows {
			if !reflect.DeepEqual(grows[i], wrows[i]) {
				t.Fatalf("row %d: got %v want %v", i, grows[i], wrows[i])
			}
		}
	}
}

// FuzzDecodeBinaryBatch: arbitrary bytes through the full binary ingest path
// must error or apply cleanly — never panic, never corrupt the store into a
// state its own invariants reject.
func FuzzDecodeBinaryBatch(f *testing.F) {
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		f.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	for _, op := range binTestOps(8) {
		if err := enc.Add(op.Rel, op.Row); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(enc.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		cs.ApplyBinBatch(context.Background(), payload)
	})
}

// FuzzDecodeWindowBinary: the result decoder must reject arbitrary bytes
// without panicking, and round-trip every valid encoding.
func FuzzDecodeWindowBinary(f *testing.F) {
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		f.Fatal(err)
	}
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		f.Fatal(err)
	}
	if err := cs.InsertBatch(binTestOps(12)); err != nil {
		f.Fatal(err)
	}
	res, err := cs.Query(WindowQuery{Attrs: []string{"C", "T"}, BinaryResult: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.Bin)
	f.Add([]byte("IWIN1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeWindowBinary(data)
	})
}

// TestBinBatchRandomEquivalence drives random mixed batches through both
// wire paths and requires identical states — the randomized analogue of the
// 64-op pin.
func TestBinBatchRandomEquivalence(t *testing.T) {
	sch := binTestSchema(t)
	rng := rand.New(rand.NewSource(9))
	jsonStore, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	binStore, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	for round := 0; round < 50; round++ {
		enc.Reset()
		n := 1 + rng.Intn(20)
		ops := make([]BatchOp, 0, n)
		all := binTestOps(200)
		for i := 0; i < n; i++ {
			ops = append(ops, all[rng.Intn(len(all))])
		}
		for _, op := range ops {
			if err := enc.Add(op.Rel, op.Row); err != nil {
				t.Fatal(err)
			}
		}
		jerr := jsonStore.InsertBatch(ops)
		_, berr := binStore.ApplyBinBatch(context.Background(), enc.Bytes())
		if (jerr == nil) != (berr == nil) {
			t.Fatalf("round %d: json err=%v bin err=%v", round, jerr, berr)
		}
	}
	if diffs := DiffDatabases(jsonStore.Snapshot(), binStore.Snapshot()); diffs != nil {
		t.Fatalf("random equivalence diverged: %v", diffs)
	}
}

// TestApplyBinBatchPartialReport pins the shard-side partial contract: a
// payload with violations applies everything else, reports each rejection
// under its frame index, and re-applying the same payload is a fixpoint —
// the idempotence the cluster router's retries lean on.
func TestApplyBinBatchPartialReport(t *testing.T) {
	sch := binTestSchema(t)
	enc := NewBinBatchEncoder(sch)
	add := func(rel string, row map[string]string) {
		t.Helper()
		if err := enc.Add(rel, row); err != nil {
			t.Fatal(err)
		}
	}
	add("CT", map[string]string{"C": "c1", "T": "t1"})                                // 0: applied
	add("CT", map[string]string{"C": "c1", "T": "t2"})                                // 1: rejected (C -> T)
	add("CS", map[string]string{"C": "c1", "S": "s1"})                                // 2: applied
	add("CT", map[string]string{"C": "c1", "T": "t3"})                                // 3: rejected
	add("CS", map[string]string{"C": "c2", "S": "s2"})                                // 4: applied
	if err := enc.Delete("CS", map[string]string{"C": "c2", "S": "s2"}); err != nil { // 5: applied
		t.Fatal(err)
	}
	payload := enc.Bytes()

	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	// The atomic path voids the whole batch on the first violation...
	if _, err := cs.ApplyBinBatch(context.Background(), payload); !Rejected(err) {
		t.Fatalf("atomic apply: got %v, want a rejection", err)
	}
	if cs.Rows() != 0 {
		t.Fatalf("atomic apply left %d rows behind after rejection", cs.Rows())
	}
	// ...the partial path applies around it and reports.
	for attempt := 0; attempt < 2; attempt++ {
		rep, err := cs.ApplyBinBatchPartial(context.Background(), payload)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if rep.Ops != 6 || rep.Processed != 6 || rep.Applied != 4 {
			t.Fatalf("attempt %d: report %+v, want 6/6/4", attempt, rep)
		}
		if len(rep.Rejected) != 2 || rep.Rejected[0].Index != 1 || rep.Rejected[1].Index != 3 {
			t.Fatalf("attempt %d: rejected %+v, want indices 1 and 3", attempt, rep.Rejected)
		}
		for _, o := range rep.Rejected {
			if o.Code != "rejected" || o.Error == "" {
				t.Fatalf("attempt %d: outcome %+v", attempt, o)
			}
		}
	}
	if cs.Rows() != 2 { // CT(c1,t1) and CS(c1,s1); CS(c2,s2) was deleted
		t.Fatalf("store holds %d rows, want 2", cs.Rows())
	}
}

// TestApplyBinBatchPartialMalformed pins decode-before-apply: a payload
// that fails validation applies nothing, even if a prefix was well-formed.
func TestApplyBinBatchPartialMalformed(t *testing.T) {
	sch := binTestSchema(t)
	enc := NewBinBatchEncoder(sch)
	if err := enc.Add("CT", map[string]string{"C": "c1", "T": "t1"}); err != nil {
		t.Fatal(err)
	}
	payload := enc.Bytes()
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.ApplyBinBatchPartial(context.Background(), append(payload, "trailing junk"...)); err == nil {
		t.Fatal("partial apply accepted a malformed payload")
	}
	if cs.Rows() != 0 {
		t.Fatalf("malformed payload applied %d rows", cs.Rows())
	}
}

// stablePartition reorders decoded ops the way the encoder lays them out:
// all inserts in order, then all deletes in order.
func stablePartition(ops []BinOp) []BinOp {
	var out []BinOp
	for _, op := range ops {
		if !op.Delete {
			out = append(out, op)
		}
	}
	for _, op := range ops {
		if op.Delete {
			out = append(out, op)
		}
	}
	return out
}

// FuzzDecodeShardBatch fuzzes the router-side decoder the cluster splits
// payloads with: arbitrary bytes must error or decode cleanly, and any
// successful decode must survive a re-encode round trip (modulo the
// inserts-before-deletes normalization the encoder applies).
func FuzzDecodeShardBatch(f *testing.F) {
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		f.Fatal(err)
	}
	enc := NewBinBatchEncoder(sch)
	for _, op := range binTestOps(6) {
		if err := enc.Add(op.Rel, op.Row); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Delete("CT", map[string]string{"C": "C0", "T": "T0"}); err != nil {
		f.Fatal(err)
	}
	valid := enc.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		ops, err := sch.DecodeBinBatch(payload)
		if err != nil {
			return
		}
		re := NewBinBatchEncoder(sch)
		for _, op := range ops {
			if op.Delete {
				err = re.Delete(op.Rel, op.Row)
			} else {
				err = re.Add(op.Rel, op.Row)
			}
			if err != nil {
				t.Fatalf("decoded op %+v does not re-encode: %v", op, err)
			}
		}
		if re.Len() != len(ops) {
			t.Fatalf("re-encoder holds %d ops, decoded %d", re.Len(), len(ops))
		}
		again, err := sch.DecodeBinBatch(re.Bytes())
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, stablePartition(ops)) {
			t.Fatalf("round trip changed ops:\n got %+v\nwant %+v", again, stablePartition(ops))
		}
	})
}
