package indep

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"indep/internal/wal"
)

// waitCaughtUp blocks until the follower's applied position covers the
// primary's current flushed end.
func waitCaughtUp(t *testing.T, f *Follower, primary *DurableStore) {
	t.Helper()
	pos := primary.ReplPosition()
	if !f.WaitFor(pos, 10*time.Second) {
		t.Fatalf("follower stuck at %s, want %s (stats %+v)", f.Applied(), pos, f.ReplStats())
	}
}

// requireConverged fails with every difference when primary and follower
// snapshots disagree.
func requireConverged(t *testing.T, primary *DurableStore, f *Follower) {
	t.Helper()
	if diffs := DiffDatabases(primary.Snapshot(), f.Snapshot()); diffs != nil {
		t.Fatalf("diverged:\n  %v", diffs)
	}
}

// openPrimary opens a NoFsync durable store over a fresh star schema.
func openPrimary(t *testing.T, dims int) (*Schema, *DurableStore, string) {
	t.Helper()
	sch := starSchema(t, dims, 2)
	dir := t.TempDir()
	ds, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	return sch, ds, dir
}

// TestReplSourceRoundTrip pins the primary-side contract: streamed bytes
// parse as the segment header plus the exact frames the log wrote, and the
// snapshot decodes to the primary's state.
func TestReplSourceRoundTrip(t *testing.T) {
	sch, ds, _ := openPrimary(t, 2)
	defer ds.Close()
	if err := ds.InsertBatch(starBatch(sch, 2, 30)); err != nil {
		t.Fatal(err)
	}

	// Stream the whole log through ReplRead and count the records.
	pos := wal.Position{Seq: 1}
	var buf []byte
	headerDone := false
	records := 0
	for {
		chunk, err := ds.ReplRead(pos, 4096)
		if err != nil {
			t.Fatalf("ReplRead(%s): %v", pos, err)
		}
		if chunk.Start != pos {
			t.Fatalf("chunk start %s, want %s", chunk.Start, pos)
		}
		if len(chunk.Data) == 0 && chunk.Next == pos {
			break // caught up
		}
		buf = append(buf, chunk.Data...)
		if chunk.Next.Seq != pos.Seq {
			headerDone = false
		}
		pos = chunk.Next
		for {
			if !headerDone {
				if len(buf) < wal.SegmentHeaderBytes {
					break
				}
				if err := wal.CheckSegmentHeader(buf, chunk.Start.Seq); err != nil {
					t.Fatal(err)
				}
				buf = buf[wal.SegmentHeaderBytes:]
				headerDone = true
			}
			payload, n, err := wal.NextStreamFrame(buf)
			if errors.Is(err, wal.ErrShortFrame) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wal.DecodeRecord(payload); err != nil {
				t.Fatal(err)
			}
			records++
			buf = buf[n:]
		}
	}
	if records == 0 {
		t.Fatal("streamed no records")
	}
	if len(buf) != 0 {
		t.Fatalf("%d unparsed bytes at flushed end", len(buf))
	}

	// The snapshot decodes and carries the same tuple count as the state.
	data, tail, err := ds.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wal.DecodeCheckpointBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Seq == 0 || tail.Off != 0 {
		t.Fatalf("snapshot tail %s, want a segment start", tail)
	}
	total := 0
	for i := 0; i < ck.NumSchemes(); i++ {
		total += ck.RowCount(i)
	}
	if want := ds.Rows(); total != want {
		t.Fatalf("snapshot holds %d tuples, state has %d", total, want)
	}
}

// TestFollowerReplicates is the basic end-to-end: a follower tailing an
// in-process primary converges, serves reads from its own snapshots, and
// honors read-your-writes positions for writes issued while it streams.
func TestFollowerReplicates(t *testing.T) {
	sch, ds, _ := openPrimary(t, 3)
	defer ds.Close()
	if err := ds.InsertBatch(starBatch(sch, 3, 100)); err != nil {
		t.Fatal(err)
	}

	f, err := sch.OpenFollower(t.TempDir(), ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, ds)
	requireConverged(t, ds, f)

	// Writes issued while the follower is live arrive too.
	if err := ds.Insert("DIM1", map[string]string{"K1": "late", "D1_1": "x", "D1_2": "y"}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, ds)
	requireConverged(t, ds, f)

	st := f.ReplStats()
	if st.AppliedRecords == 0 {
		t.Fatal("no records applied")
	}
	if st.Resyncs != 1 {
		t.Fatalf("resyncs %d, want the bootstrap snapshot only", st.Resyncs)
	}
	if !st.Healthy {
		t.Fatalf("unhealthy: %s", st.LastError)
	}
}

// TestFollowerBootstrapsFromSnapshot starts a follower against a primary
// whose early log history a checkpoint already truncated: the zero cursor
// cannot stream, so the follower must install the snapshot and tail from
// its cut.
func TestFollowerBootstrapsFromSnapshot(t *testing.T) {
	sch, ds, _ := openPrimary(t, 2)
	defer ds.Close()
	if err := ds.InsertBatch(starBatch(sch, 2, 60)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert("DIM1", map[string]string{"K1": "post-ck", "D1_1": "a", "D1_2": "b"}); err != nil {
		t.Fatal(err)
	}

	f, err := sch.OpenFollower(t.TempDir(), ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, ds)
	requireConverged(t, ds, f)
	if st := f.ReplStats(); st.Resyncs != 1 {
		t.Fatalf("resyncs %d, want 1", st.Resyncs)
	}
}

// TestFollowerRestartResumes closes a caught-up follower, advances the
// primary, and reopens the follower in the same directory: local recovery
// plus the persisted position must resume the stream with no snapshot
// re-sync and converge.
func TestFollowerRestartResumes(t *testing.T) {
	sch, ds, _ := openPrimary(t, 2)
	defer ds.Close()
	if err := ds.InsertBatch(starBatch(sch, 2, 40)); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	f, err := sch.OpenFollower(fdir, ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, ds)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		if err := ds.Insert("DIM2", map[string]string{
			"K2": fmt.Sprintf("gap-%d", i), "D2_1": "g", "D2_2": "h",
		}); err != nil {
			t.Fatal(err)
		}
	}

	f, err = sch.OpenFollower(fdir, ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, ds)
	requireConverged(t, ds, f)
	if st := f.ReplStats(); st.Resyncs != 0 {
		t.Fatalf("restart forced %d resyncs, want none", st.Resyncs)
	}
}

// TestFollowerAbortRestartConverges kills the follower without its final
// position persist (Abort == kill -9 from the stream's point of view),
// advances the primary, and restarts: whatever REPLPOS recorded, the
// suffix-replay property makes the reopened follower converge.
func TestFollowerAbortRestartConverges(t *testing.T) {
	sch, ds, _ := openPrimary(t, 2)
	defer ds.Close()
	if err := ds.InsertBatch(starBatch(sch, 2, 40)); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	f, err := sch.OpenFollower(fdir, ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, ds)
	if err := f.Abort(); err != nil {
		t.Fatal(err)
	}

	if err := ds.Insert("DIM1", map[string]string{"K1": "after-kill", "D1_1": "q", "D1_2": "r"}); err != nil {
		t.Fatal(err)
	}

	f, err = sch.OpenFollower(fdir, ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, ds)
	requireConverged(t, ds, f)
}

// TestFollowerSurvivesPrimaryCheckpoint checkpoints the primary while the
// follower is mid-stream (truncating segments under the cursor) and keeps
// writing: the follower either keeps streaming or re-syncs, but converges.
func TestFollowerSurvivesPrimaryCheckpoint(t *testing.T) {
	sch, ds, _ := openPrimary(t, 2)
	defer ds.Close()
	if err := ds.InsertBatch(starBatch(sch, 2, 50)); err != nil {
		t.Fatal(err)
	}

	f, err := sch.OpenFollower(t.TempDir(), ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for round := 0; round < 3; round++ {
		if err := ds.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := ds.Insert("DIM1", map[string]string{
				"K1": fmt.Sprintf("ck%d-%d", round, i), "D1_1": "v", "D1_2": "w",
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCaughtUp(t, f, ds)
	requireConverged(t, ds, f)
}

// TestFollowerWaitForTimesOut pins the WaitFor contract: a position beyond
// the stream times out false rather than blocking forever.
func TestFollowerWaitForTimesOut(t *testing.T) {
	sch, ds, _ := openPrimary(t, 2)
	defer ds.Close()
	f, err := sch.OpenFollower(t.TempDir(), ds, FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	future := wal.Position{Seq: 1 << 40}
	if f.WaitFor(future, 50*time.Millisecond) {
		t.Fatal("WaitFor reached an unreachable position")
	}
}
