module indep

go 1.24
