module indep

go 1.23
