package indep

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"indep/internal/engine"
	"indep/internal/obs"
	"indep/internal/wal"
)

// A Follower is a replica: a full DurableStore of its own that, instead of
// accepting writes, tails a primary's WAL through a ReplSource and replays
// every record through the engine's Apply path. Reads (snapshots, window
// queries) work exactly as on a primary — lock-free from the replica's own
// snapshots — and the independence theorem guarantees the replayed state
// converges to the primary's representative instance.
//
// Every applied record re-journals into the follower's own log (the
// engine's commit hook is live during Apply), so a follower restart
// recovers locally and resumes the stream from its persisted position. The
// position is persisted lazily — safe because re-applying any contiguous
// suffix of the log converges (see engine.Apply).
type Follower struct {
	*DurableStore
	src  ReplSource
	opts FollowerOptions

	fmu       sync.Mutex
	fcond     *sync.Cond
	applied   wal.Position // primary bytes before this are reflected locally
	primary   wal.Position // primary's flushed end, last observed
	persisted wal.Position // applied position REPLPOS last recorded
	healthy   bool
	lastErr   error
	stopping  bool

	appliedRecs   obs.Counter
	skippedRecs   obs.Counter
	resyncs       obs.Counter
	corruptChunks obs.Counter
	droppedChunks obs.Counter
	reconnects    obs.Counter
	applyDur      obs.Histogram // per-record apply latency, ns

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	abort    bool // skip the final position persist (simulated kill -9)
}

// FollowerOptions tunes OpenFollower. The zero value fsyncs locally and
// polls the source every 25ms when caught up.
type FollowerOptions struct {
	// NoFsync, SegmentBytes, and Logger configure the follower's local
	// durable store, same as DurableOptions.
	NoFsync      bool
	SegmentBytes int64
	Logger       *slog.Logger
	// PollInterval is the delay between source reads when caught up or
	// disconnected (default 25ms).
	PollInterval time.Duration
	// ChunkBytes caps one ReplRead (default 256 KiB).
	ChunkBytes int
}

// replposFile records "v1 <primary position> <local flushed position>": the
// primary position the local state reflects, plus the local log extent that
// proves it. If the local log no longer covers the second position on
// reopen (a crash lost bytes), the first cannot be trusted and the follower
// re-syncs from a snapshot.
const replposFile = "REPLPOS"

// corruptRetryLimit is how many times the follower re-fetches the same
// position after corrupt chunks before giving up and re-syncing.
const corruptRetryLimit = 5

// OpenFollower opens (or re-opens) a replica in dir tailing src. Local
// recovery runs first — the follower's own log reproduces its last applied
// state — then the tail loop resumes from the persisted stream position,
// or bootstraps from a primary snapshot when there is none to trust.
func (s *Schema) OpenFollower(dir string, src ReplSource, opts FollowerOptions) (*Follower, error) {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = 256 << 10
	}
	ds, err := s.OpenDurableStore(dir, DurableOptions{
		NoFsync:      opts.NoFsync,
		SegmentBytes: opts.SegmentBytes,
		Logger:       opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	f := &Follower{
		DurableStore: ds,
		src:          src,
		opts:         opts,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	f.fcond = sync.NewCond(&f.fmu)
	f.applied = loadReplPos(dir)
	f.persisted = f.applied
	go f.run()
	return f, nil
}

// loadReplPos reads the persisted stream position and validates it against
// the local log: the position is trusted only if every local byte it was
// persisted after still exists (the segment file is long enough, or a
// local checkpoint superseded it). Anything else — missing file, parse
// error, truncated log — yields the zero position, which makes the tail
// loop bootstrap from a snapshot.
func loadReplPos(dir string) wal.Position {
	b, err := os.ReadFile(filepath.Join(dir, replposFile))
	if err != nil {
		return wal.Position{}
	}
	fields := strings.Fields(string(b))
	if len(fields) != 3 || fields[0] != "v1" {
		return wal.Position{}
	}
	pos, err1 := wal.ParsePosition(fields[1])
	local, err2 := wal.ParsePosition(fields[2])
	if err1 != nil || err2 != nil {
		return wal.Position{}
	}
	if local.IsZero() {
		return pos
	}
	if fi, err := os.Stat(filepath.Join(dir, wal.SegmentFile(local.Seq))); err == nil {
		if fi.Size() >= local.Off {
			return pos
		}
		return wal.Position{}
	}
	// Segment gone: fine if a local checkpoint covers it (its records are
	// folded into the checkpoint), otherwise the log lost history.
	if ck, err := wal.LatestCheckpoint(dir); err == nil && ck != nil && ck.Seq > local.Seq {
		return pos
	}
	return wal.Position{}
}

// Applied returns the primary log position the follower has fully applied:
// its read-your-writes watermark.
func (f *Follower) Applied() wal.Position {
	f.fmu.Lock()
	defer f.fmu.Unlock()
	return f.applied
}

// WaitFor blocks until the follower's applied position reaches pos (true),
// or the timeout elapses or the follower stops (false). Handlers use it to
// honor read-your-writes tokens with a bounded wait before telling the
// client to retry.
func (f *Follower) WaitFor(pos wal.Position, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		f.fmu.Lock()
		f.fcond.Broadcast()
		f.fmu.Unlock()
	})
	defer timer.Stop()
	f.fmu.Lock()
	defer f.fmu.Unlock()
	for f.applied.Less(pos) {
		if f.stopping || !time.Now().Before(deadline) {
			return false
		}
		f.fcond.Wait()
	}
	return true
}

// FollowerStats is a point-in-time view of the replication stream.
type FollowerStats struct {
	Applied        wal.Position `json:"applied"`
	PrimaryFlushed wal.Position `json:"primary_flushed"`
	LagBytes       int64        `json:"lag_bytes"`    // byte lag when in the primary's active segment, else 0
	LagSegments    int64        `json:"lag_segments"` // whole segments behind the primary
	Healthy        bool         `json:"healthy"`      // last source read succeeded
	LastError      string       `json:"last_error,omitempty"`
	AppliedRecords uint64       `json:"applied_records"`
	SkippedRecords uint64       `json:"skipped_records"` // re-rejected on replay (idempotence skips)
	Resyncs        uint64       `json:"resyncs"`
	CorruptChunks  uint64       `json:"corrupt_chunks"`
	DroppedChunks  uint64       `json:"dropped_chunks"` // duplicates and out-of-order deliveries
	Reconnects     uint64       `json:"reconnects"`
}

// ReplStats returns the follower's current stream statistics.
func (f *Follower) ReplStats() FollowerStats {
	f.fmu.Lock()
	st := FollowerStats{
		Applied:        f.applied,
		PrimaryFlushed: f.primary,
		Healthy:        f.healthy,
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	if f.primary.Seq >= st.Applied.Seq {
		st.LagSegments = int64(f.primary.Seq - st.Applied.Seq)
	}
	if f.primary.Seq == st.Applied.Seq && f.primary.Off > st.Applied.Off {
		st.LagBytes = f.primary.Off - st.Applied.Off
	}
	f.fmu.Unlock()
	st.AppliedRecords = f.appliedRecs.Value()
	st.SkippedRecords = f.skippedRecs.Value()
	st.Resyncs = f.resyncs.Value()
	st.CorruptChunks = f.corruptChunks.Value()
	st.DroppedChunks = f.droppedChunks.Value()
	st.Reconnects = f.reconnects.Value()
	return st
}

// RegisterMetrics files the follower's metric families — the underlying
// store's plus the replication stream's counters, lag gauges, and apply
// latency.
func (f *Follower) RegisterMetrics(r *obs.Registry) {
	f.DurableStore.RegisterMetrics(r)
	r.CounterFunc("indep_repl_applied_records_total",
		"stream records applied to the local state", f.appliedRecs.Value)
	r.CounterFunc("indep_repl_skipped_records_total",
		"stream records re-rejected on replay (idempotent skips)", f.skippedRecs.Value)
	r.CounterFunc("indep_repl_resyncs_total",
		"snapshot re-syncs (bootstrap, truncated stream, persistent corruption)", f.resyncs.Value)
	r.CounterFunc("indep_repl_corrupt_chunks_total",
		"stream chunks dropped for checksum or framing corruption", f.corruptChunks.Value)
	r.CounterFunc("indep_repl_dropped_chunks_total",
		"stream chunks dropped as duplicates or out-of-order deliveries", f.droppedChunks.Value)
	r.CounterFunc("indep_repl_reconnects_total",
		"source read failures followed by reconnect attempts", f.reconnects.Value)
	r.GaugeFunc("indep_repl_lag_bytes",
		"bytes behind the primary's flushed end (within its active segment)",
		func() float64 { return float64(f.ReplStats().LagBytes) })
	r.GaugeFunc("indep_repl_lag_segments",
		"whole segments behind the primary", func() float64 { return float64(f.ReplStats().LagSegments) })
	r.GaugeFunc("indep_repl_healthy",
		"1 when the last source read succeeded", func() float64 {
			if f.ReplStats().Healthy {
				return 1
			}
			return 0
		})
	r.RegisterHistogram("indep_repl_apply_duration_seconds",
		"per-record apply latency on the follower", 1e-9, &f.applyDur)
}

// Close stops the tail loop, persists the stream position, and closes the
// local store.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	f.fmu.Lock()
	f.stopping = true
	f.fcond.Broadcast()
	f.fmu.Unlock()
	return f.DurableStore.Close()
}

// Abort is Close without the final position persist: the follower stops
// where it stands, leaving REPLPOS at its last lazy write — the on-disk
// picture a kill -9 leaves behind. The fault harness uses it (optionally
// truncating the local log afterwards) to prove restart convergence.
func (f *Follower) Abort() error {
	f.fmu.Lock()
	f.abort = true
	f.fmu.Unlock()
	return f.Close()
}

// setApplied publishes a new applied position and wakes WaitFor callers.
func (f *Follower) setApplied(pos wal.Position) {
	f.fmu.Lock()
	f.applied = pos
	f.fcond.Broadcast()
	f.fmu.Unlock()
}

// noteRead records the outcome of one source read.
func (f *Follower) noteRead(flushed wal.Position, err error) {
	f.fmu.Lock()
	if err == nil {
		f.healthy = true
		f.lastErr = nil
		if f.primary.Less(flushed) {
			f.primary = flushed
		}
	} else {
		f.healthy = false
		f.lastErr = err
	}
	f.fmu.Unlock()
}

// persistPos durably records the applied position: local log first (the
// records proving the position must hit the file before the position
// claims them), then REPLPOS via write-and-rename.
func (f *Follower) persistPos() error {
	pos := f.Applied()
	f.fmu.Lock()
	done := pos == f.persisted
	f.fmu.Unlock()
	if done {
		return nil
	}
	if err := f.log.Sync(); err != nil {
		return err
	}
	local := f.log.Flushed()
	tmp := filepath.Join(f.dir, replposFile+".tmp")
	data := fmt.Sprintf("v1 %s %s\n", pos, local)
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, replposFile)); err != nil {
		return err
	}
	f.fmu.Lock()
	f.persisted = pos
	f.fmu.Unlock()
	return nil
}

// applyRecord replays one stream record into the local store. Intern
// records restore dictionary bindings (journaling fresh ones locally —
// Restore bypasses the intern hook); everything else goes through
// engine.Apply with the commit hook live, so accepted records re-journal
// into the local log. A re-rejected record is the idempotence skip the
// recovery path also takes. Only infrastructure failures (local
// durability, malformed addressing) are errors.
func (f *Follower) applyRecord(rec wal.Record) error {
	start := time.Now()
	defer func() { f.applyDur.Observe(int64(time.Since(start))) }()
	switch rec.Kind {
	case wal.KindIntern:
		_, known := f.eng.Dict().Lookup(rec.Name)
		if err := f.eng.Dict().Restore(rec.Value, rec.Name); err != nil {
			return fmt.Errorf("indep: stream intern: %w", err)
		}
		if !known {
			f.log.Enqueue(wal.Intern(rec.Value, rec.Name))
		}
		f.appliedRecs.Inc()
		return nil
	default:
		c := engine.Commit{Ops: make([]engine.Op, len(rec.Ops)), Delete: rec.Kind == wal.KindDelete}
		for i, op := range rec.Ops {
			if op.Rel < 0 || op.Rel >= f.eng.Schema().Size() {
				return fmt.Errorf("indep: stream record addresses scheme %d", op.Rel)
			}
			c.Ops[i] = engine.Op{Scheme: op.Rel, Tuple: op.Tuple}
		}
		if err := f.eng.Apply(c); err != nil {
			if Rejected(err) {
				f.skippedRecs.Inc()
				return nil
			}
			return err
		}
		f.appliedRecs.Inc()
		return nil
	}
}

// resync bootstraps or repairs the follower from a primary snapshot,
// installing it as a diff against the local state: restore the dictionary,
// delete local tuples the snapshot lacks, batch-insert snapshot tuples the
// local state lacks. The local state is never wiped — every step goes
// through the normal engine paths and re-journals locally — and because
// the local state after deletions is a subset of the (consistent) snapshot
// state, the inserts cannot be rejected. Returns the position to tail
// from.
func (f *Follower) resync() (wal.Position, error) {
	f.resyncs.Inc()
	data, tail, err := f.src.ReplSnapshot()
	if err != nil {
		return wal.Position{}, err
	}
	ck, err := wal.DecodeCheckpointBytes(data)
	if err != nil {
		return wal.Position{}, err
	}
	if ck.NumSchemes() != f.eng.Schema().Size() {
		return wal.Position{}, fmt.Errorf("indep: snapshot has %d relations, schema has %d",
			ck.NumSchemes(), f.eng.Schema().Size())
	}
	for _, e := range ck.Dict {
		_, known := f.eng.Dict().Lookup(e.Name)
		if err := f.eng.Dict().Restore(e.Value, e.Name); err != nil {
			return wal.Position{}, fmt.Errorf("indep: snapshot dictionary: %w", err)
		}
		if !known {
			f.log.Enqueue(wal.Intern(e.Value, e.Name))
		}
	}
	st := f.eng.Snapshot()
	for i := 0; i < ck.NumSchemes(); i++ {
		tuples := ck.TuplesOf(i)
		want := make(map[string]bool, len(tuples))
		for _, t := range tuples {
			want[tupleKey(t)] = true
		}
		for _, t := range st.Insts[i].Rows() {
			if !want[tupleKey(t)] {
				if err := f.eng.Apply(engine.Commit{Delete: true, Ops: []engine.Op{{Scheme: i, Tuple: t}}}); err != nil {
					return wal.Position{}, fmt.Errorf("indep: resync delete: %w", err)
				}
			}
		}
		var ops []engine.Op
		for _, t := range tuples {
			if !st.Insts[i].Has(t) {
				ops = append(ops, engine.Op{Scheme: i, Tuple: t})
			}
		}
		for len(ops) > 0 {
			k := min(len(ops), engine.MaxBatchOps)
			if err := f.eng.Apply(engine.Commit{Ops: ops[:k]}); err != nil {
				return wal.Position{}, fmt.Errorf("indep: resync insert: %w", err)
			}
			ops = ops[k:]
		}
	}
	f.setApplied(tail)
	if err := f.persistPos(); err != nil {
		return wal.Position{}, err
	}
	if f.opts.Logger != nil {
		f.opts.Logger.Info("follower resynced", "tail", tail.String(), "tuples", len(ck.Dict))
	}
	return tail, nil
}

// sleep waits one poll interval or until the follower is stopped (false).
func (f *Follower) sleep() bool {
	select {
	case <-f.stop:
		return false
	case <-time.After(f.opts.PollInterval):
		return true
	}
}

// persistEvery is how many applied records may accumulate before the tail
// loop persists its position even while busy. Idle moments also persist.
const persistEvery = 4096

// run is the tail loop: read a chunk, validate its position against the
// cursor (trimming duplicated prefixes, dropping gaps and reorders),
// buffer it, parse complete frames, and apply them. The cursor always
// equals applied+len(buf), so corruption recovery is just "drop the
// buffer, re-read from applied". See ReadAt for the segment-advance and
// ErrSegmentGone protocol.
func (f *Follower) run() {
	defer close(f.done)
	cursor := f.Applied()
	var buf []byte // unapplied bytes: primary range [applied, cursor)
	var corruptAt wal.Position
	corruptStreak := 0
	sincePersist := 0

	corrupted := func() {
		f.corruptChunks.Inc()
		applied := f.Applied()
		if applied == corruptAt {
			corruptStreak++
		} else {
			corruptAt, corruptStreak = applied, 1
		}
		buf = nil
		cursor = applied
		if corruptStreak >= corruptRetryLimit {
			cursor = wal.Position{} // give up on the stream: snapshot re-sync
			corruptStreak = 0
		}
	}

	for {
		select {
		case <-f.stop:
			f.fmu.Lock()
			abort := f.abort
			f.fmu.Unlock()
			if !abort {
				if err := f.persistPos(); err != nil && f.opts.Logger != nil {
					f.opts.Logger.Warn("follower position persist failed", "err", err)
				}
			}
			return
		default:
		}

		if cursor.IsZero() {
			tail, err := f.resync()
			f.noteRead(tail, err)
			if err != nil {
				f.reconnects.Inc()
				if !f.sleep() {
					continue // drain the stop signal at the top of the loop
				}
				continue
			}
			cursor, buf = tail, nil
			sincePersist = 0
			continue
		}

		chunk, err := f.src.ReplRead(cursor, f.opts.ChunkBytes)
		f.noteRead(chunk.Flushed, err)
		if err != nil {
			if errors.Is(err, wal.ErrSegmentGone) {
				cursor, buf = wal.Position{}, nil // re-sync
				continue
			}
			f.reconnects.Inc()
			f.sleep()
			continue
		}

		data := chunk.Data
		if len(data) == 0 {
			if chunk.Next.Seq == cursor.Seq+1 && chunk.Next.Off == 0 {
				// Sealed segment fully consumed. Leftover buffered bytes
				// would mean a frame spans segments — corruption.
				if len(buf) != 0 {
					corrupted()
					continue
				}
				cursor = chunk.Next
				f.setApplied(cursor)
				continue
			}
			// At the primary's flushed end. Flush groups are whole frames,
			// so an incomplete frame buffered here can never complete — a
			// corrupted length field inflated it past the real boundary.
			// Without this check the follower would wait forever for bytes
			// the primary will never write.
			if len(buf) != 0 && !chunk.Flushed.IsZero() && !cursor.Less(chunk.Flushed) {
				corrupted()
				continue
			}
			// Caught up: persist the position and idle one interval.
			if err := f.persistPos(); err == nil {
				sincePersist = 0
			}
			f.sleep()
			continue
		}

		switch {
		case chunk.Start == cursor:
		case chunk.Start.Seq == cursor.Seq && chunk.Start.Off < cursor.Off &&
			chunk.Start.Off+int64(len(data)) > cursor.Off:
			data = data[cursor.Off-chunk.Start.Off:] // duplicated prefix: trim
		default:
			f.droppedChunks.Inc() // pure duplicate, gap, or reorder: re-request
			continue
		}
		buf = append(buf, data...)
		cursor = wal.Position{Seq: cursor.Seq, Off: cursor.Off + int64(len(data))}

		// Parse and apply every complete frame in the buffer. applied
		// trails cursor by exactly len(buf).
		applied := wal.Position{Seq: cursor.Seq, Off: cursor.Off - int64(len(buf))}
		bad := false
		for {
			if applied.Off == 0 {
				if len(buf) < wal.SegmentHeaderBytes {
					break
				}
				if err := wal.CheckSegmentHeader(buf, applied.Seq); err != nil {
					bad = true
					break
				}
				buf = buf[wal.SegmentHeaderBytes:]
				applied.Off = wal.SegmentHeaderBytes
				continue
			}
			payload, n, err := wal.NextStreamFrame(buf)
			if errors.Is(err, wal.ErrShortFrame) {
				break
			}
			if err != nil {
				bad = true
				break
			}
			rec, err := wal.DecodeRecord(payload)
			if err != nil {
				bad = true
				break
			}
			if err := f.applyRecord(rec); err != nil {
				f.noteRead(wal.Position{}, err)
				if f.opts.Logger != nil {
					f.opts.Logger.Error("follower apply failed", "err", err)
				}
				return // local store is no longer trustworthy
			}
			buf = buf[n:]
			applied.Off += int64(n)
			sincePersist++
		}
		if bad {
			corrupted()
			continue
		}
		corruptStreak = 0
		f.setApplied(applied)
		if sincePersist >= persistEvery {
			if err := f.persistPos(); err == nil {
				sincePersist = 0
			}
		}
	}
}

// Replication stream HTTP headers, shared by the daemon's /v1/repl
// handlers and HTTPReplSource.
const (
	ReplHeaderStart   = "X-Indep-Repl-Start"
	ReplHeaderNext    = "X-Indep-Repl-Next"
	ReplHeaderFlushed = "X-Indep-Repl-Flushed"
	ReplHeaderTail    = "X-Indep-Repl-Tail"
)

// HTTPReplSource tails a primary daemon over its /v1/repl endpoints.
type HTTPReplSource struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string
	// Client overrides http.DefaultClient.
	Client *http.Client
	// Wait asks the primary to long-poll when the follower is caught up,
	// trading one idle round-trip per poll interval for stream latency.
	Wait bool
}

func (h *HTTPReplSource) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// ReplSnapshot implements ReplSource over GET /v1/repl/snapshot.
func (h *HTTPReplSource) ReplSnapshot() ([]byte, wal.Position, error) {
	resp, err := h.client().Get(h.Base + "/v1/repl/snapshot")
	if err != nil {
		return nil, wal.Position{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, wal.Position{}, fmt.Errorf("indep: snapshot fetch: %s", resp.Status)
	}
	tail, err := wal.ParsePosition(resp.Header.Get(ReplHeaderTail))
	if err != nil {
		return nil, wal.Position{}, err
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, wal.Position{}, err
	}
	return data, tail, nil
}

// ReplRead implements ReplSource over GET /v1/repl/wal. A 410 Gone maps
// back to wal.ErrSegmentGone, so the follower's re-sync logic is transport
// independent.
func (h *HTTPReplSource) ReplRead(pos wal.Position, max int) (ReplChunk, error) {
	q := url.Values{"pos": {pos.String()}, "max": {fmt.Sprint(max)}}
	if h.Wait {
		q.Set("wait", "1")
	}
	resp, err := h.client().Get(h.Base + "/v1/repl/wal?" + q.Encode())
	if err != nil {
		return ReplChunk{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return ReplChunk{}, wal.ErrSegmentGone
	default:
		return ReplChunk{}, fmt.Errorf("indep: stream read: %s", resp.Status)
	}
	var chunk ReplChunk
	if chunk.Start, err = wal.ParsePosition(resp.Header.Get(ReplHeaderStart)); err != nil {
		return ReplChunk{}, err
	}
	if chunk.Next, err = wal.ParsePosition(resp.Header.Get(ReplHeaderNext)); err != nil {
		return ReplChunk{}, err
	}
	if chunk.Flushed, err = wal.ParsePosition(resp.Header.Get(ReplHeaderFlushed)); err != nil {
		return ReplChunk{}, err
	}
	if chunk.Data, err = io.ReadAll(resp.Body); err != nil {
		return ReplChunk{}, err
	}
	return chunk, nil
}
