package indep

import (
	"context"

	"indep/internal/obs"
)

// MetricsRegistry aliases the internal telemetry registry so callers
// outside the module can construct one, hand it to RegisterMetrics, and
// serve its Prometheus exposition (WriteTo / Expose).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// HistSnapshot aliases the internal histogram snapshot type, so accessors
// like DurableStore.WALLatency can hand quantile-capable snapshots to
// callers outside the module.
type HistSnapshot = obs.HistSnapshot

// NewTraceID returns a fresh 16-hex-character request trace ID.
func NewTraceID() string { return obs.NewTraceID() }

// WithTrace attaches a trace ID to the context. Mutations and queries made
// through the *Ctx store methods carry it into slow-operation records and a
// durable store's fsync ack, so one grep over the structured log
// reconstructs the request's full write path.
func WithTrace(ctx context.Context, id string) context.Context {
	return obs.WithTrace(ctx, id)
}

// TraceID returns the context's trace ID, or "" when none was attached.
func TraceID(ctx context.Context) string { return obs.Trace(ctx) }
