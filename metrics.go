package indep

import (
	"context"

	"indep/internal/obs"
)

// MetricsRegistry aliases the internal telemetry registry so callers
// outside the module can construct one, hand it to RegisterMetrics, and
// serve its Prometheus exposition (WriteTo / Expose).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// HistSnapshot aliases the internal histogram snapshot type, so accessors
// like DurableStore.WALLatency can hand quantile-capable snapshots to
// callers outside the module.
type HistSnapshot = obs.HistSnapshot

// NewTraceID returns a fresh 16-hex-character request trace ID.
func NewTraceID() string { return obs.NewTraceID() }

// WithTrace attaches a trace ID to the context. Mutations and queries made
// through the *Ctx store methods carry it into slow-operation records and a
// durable store's fsync ack, so one grep over the structured log
// reconstructs the request's full write path.
func WithTrace(ctx context.Context, id string) context.Context {
	return obs.WithTrace(ctx, id)
}

// TraceID returns the context's trace ID, or "" when none was attached.
func TraceID(ctx context.Context) string { return obs.Trace(ctx) }

// ValidTraceID reports whether id is a well-formed trace ID: exactly 16
// lowercase hex characters, the shape NewTraceID mints.
func ValidTraceID(id string) bool { return obs.ValidTraceID(id) }

// Span aliases the internal tracing span. A nil *Span is valid and inert:
// every method no-ops, so instrumented code never branches on "is tracing
// on". Spans are created by StartSpan (or TraceRecorder.Start for the
// root) and closed with End.
type Span = obs.Span

// Trace aliases one request's span tree (see TraceRecorder).
type Trace = obs.RequestTrace

// TraceView aliases the JSON rendering of a finished trace, the shape the
// daemon's /debug/trace endpoints serve.
type TraceView = obs.TraceView

// TraceRecorder aliases the internal flight recorder: an always-on,
// lock-free ring of recently retained traces with tail-based retention
// (keep slow, errored, and rejected requests; sample the rest).
type TraceRecorder = obs.Recorder

// TraceRecorderOptions tunes NewTraceRecorder; the zero value gives the
// defaults.
type TraceRecorderOptions = obs.RecorderOptions

// NewTraceRecorder builds a flight recorder.
func NewTraceRecorder(o TraceRecorderOptions) *TraceRecorder { return obs.NewRecorder(o) }

// StartSpan opens a child of the context's active span, returning a context
// carrying the child. On a context with no active span it returns (ctx, nil)
// without allocating — tracing costs nothing unless a recorder sampled the
// request. Close the returned span with End (nil-safe).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// ContextWithSpan returns a context whose active span is s; the *Ctx store
// methods create their child spans under it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return obs.ContextWithSpan(ctx, s)
}

// SpanFromContext returns the context's active span, or nil when the
// request is untraced.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFrom(ctx) }
