package indep

import (
	"context"
	"testing"
)

// traceTestStore builds a concurrent store over the independent course
// schema with one CT row loaded.
func traceTestStore(t testing.TB) *ConcurrentStore {
	t.Helper()
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Insert("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestUntracedInsertAllocBudget pins the untraced hot path: tracing must be
// pay-only-when-sampled, so InsertCtx on a spanless context keeps the same
// allocs/op it had before spans existed (2: the row→tuple conversion).
func TestUntracedInsertAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are skewed under -race; CI pins them in a plain pass")
	}
	cs := traceTestStore(t)
	ctx := context.Background()
	row := map[string]string{"C": "cs101", "T": "jones"}
	if n := testing.AllocsPerRun(500, func() {
		if err := cs.InsertCtx(ctx, "CT", row); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Fatalf("untraced InsertCtx allocates %v/op, budget 2", n)
	}
}

// TestTracedInsertAllocBudget bounds the sampled path at steady state: the
// span arena is pooled and attr arrays are recycled, so a traced insert may
// add only the two span-context allocations over the untraced budget.
func TestTracedInsertAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are skewed under -race; CI pins them in a plain pass")
	}
	cs := traceTestStore(t)
	rec := NewTraceRecorder(TraceRecorderOptions{Capacity: 8, Slow: -1, SampleEvery: 1 << 30})
	ctx := context.Background()
	row := map[string]string{"C": "cs101", "T": "jones"}
	if n := testing.AllocsPerRun(500, func() {
		tr, root := rec.Start("0123456789abcdef", "POST /insert")
		if err := cs.InsertCtx(ContextWithSpan(ctx, root), "CT", row); err != nil {
			t.Fatal(err)
		}
		rec.Finish(tr, 200)
	}); n > 4 {
		t.Fatalf("traced InsertCtx allocates %v/op, budget 4 (untraced 2 + 2 span contexts)", n)
	}
}

// TestUntracedQueryAllocBudget pins the untraced read path: a cached-plan,
// reused-snapshot window stays at a fixed allocs/op. The budget reflects the
// columnar result instance — a tiny result pays a few slice headers for its
// per-column arenas (a wash at this size; the arenas are what make wide
// scans stream) — so the pin is against future creep, not an ideal floor.
func TestUntracedQueryAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are skewed under -race; CI pins them in a plain pass")
	}
	cs := traceTestStore(t)
	ctx := context.Background()
	q := WindowQuery{Attrs: []string{"C", "T"}}
	if _, err := cs.QueryCtx(ctx, q); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(300, func() {
		if _, err := cs.QueryCtx(ctx, q); err != nil {
			t.Fatal(err)
		}
	}); n > 27 {
		t.Fatalf("untraced QueryCtx allocates %v/op, budget 27", n)
	}
}

// TestPublicTraceAPI drives tracing end to end through the exported aliases:
// recorder → root span → store spans → retained view.
func TestPublicTraceAPI(t *testing.T) {
	cs := traceTestStore(t)
	rec := NewTraceRecorder(TraceRecorderOptions{Capacity: 8, SampleEvery: 1})
	id := NewTraceID()
	if !ValidTraceID(id) {
		t.Fatalf("NewTraceID minted invalid ID %q", id)
	}
	tr, root := rec.Start(id, "POST /insert")
	ctx := ContextWithSpan(WithTrace(context.Background(), id), root)
	if SpanFromContext(ctx) != root {
		t.Fatal("SpanFromContext lost the root")
	}
	if err := cs.InsertCtx(ctx, "CS", map[string]string{"C": "cs101", "S": "smith"}); err != nil {
		t.Fatal(err)
	}
	rec.Finish(tr, 200)

	v, ok := rec.Get(id)
	if !ok {
		t.Fatal("trace not retained")
	}
	names := map[string]bool{}
	for _, sp := range v.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"POST /insert", "store.insert", "engine.insert", "guard.validate"} {
		if !names[want] {
			t.Fatalf("span %q missing: %+v", want, v.Spans)
		}
	}
}

// TestQueryExplain checks the executed-plan report on the single-writer
// Database API: fast mode on an independent schema, scans consistent with
// the instance, pruned disjoint from scanned.
func TestQueryExplain(t *testing.T) {
	sch, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		t.Fatal(err)
	}
	db := sch.NewDatabase()
	if err := db.Insert("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(WindowQuery{Attrs: []string{"C", "T"}, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Explain
	if ex == nil {
		t.Fatal("Explain requested but missing")
	}
	if (ex.Mode == "fast") != res.FastPath {
		t.Fatalf("mode %q vs FastPath %v", ex.Mode, res.FastPath)
	}
	if ex.PlanCached != res.PlanCached {
		t.Fatalf("explain PlanCached %v vs result %v", ex.PlanCached, res.PlanCached)
	}
	scanned := map[string]bool{}
	for _, rs := range ex.Relations {
		scanned[rs.Relation] = true
	}
	for _, p := range ex.Pruned {
		if scanned[p] {
			t.Fatalf("relation %s both scanned and pruned", p)
		}
	}

	res, err = db.Query(WindowQuery{Attrs: []string{"C", "T"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain != nil {
		t.Fatal("Explain attached without being requested")
	}
}
