package indep

import (
	"fmt"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/infer"
)

// Design-level facade: the classical schema-design checks that surround
// the paper's independence notion. A designer typically wants all four
// verdicts about a decomposition: lossless join, dependency preservation
// (cover-embedding), independence, and acyclicity.

// LosslessJoin reports whether the FDs imply the join dependency *D — the
// Aho–Beeri–Ullman tableau test. The paper treats *D as a constraint in
// its own right; when LosslessJoin is true it comes for free.
func (s *Schema) LosslessJoin() bool {
	return infer.LosslessJoin(s.s, s.fds)
}

// CoverEmbedding reports Theorem 2 condition (1): whether the schema
// embeds a cover of the FDs implied by F ∪ {*D} (dependency preservation
// in the JD-aware sense). The failing FDs, if any, are returned formatted.
func (s *Schema) CoverEmbedding() (bool, []string) {
	ok, failing := infer.CoverEmbeds(s.s, s.fds)
	var out []string
	for _, f := range failing {
		out = append(out, f.Format(s.s.U))
	}
	return ok, out
}

// BCNFViolations returns, per relation, the projected FDs violating
// Boyce–Codd normal form. Exact but exponential in relation width; schemes
// wider than ~20 attributes are reported as unchecked.
func (s *Schema) BCNFViolations() (map[string][]string, []string) {
	viols := make(map[string][]string)
	var unchecked []string
	for i, r := range s.s.Rels {
		vs, complete := fd.BCNFViolations(s.fds, r.Attrs, 0)
		if !complete {
			unchecked = append(unchecked, s.s.Name(i))
			continue
		}
		for _, v := range vs {
			viols[s.s.Name(i)] = append(viols[s.s.Name(i)], v.FD.Format(s.s.U))
		}
	}
	return viols, unchecked
}

// Synthesize3NF runs Bernstein's 3NF synthesis over this schema's universe
// and FDs, returning a fresh Schema whose relations are the synthesized
// schemes (named S1, S2, …). The result is lossless and cover-embedding by
// construction — a natural starting point when Analyze rejects a design.
func (s *Schema) Synthesize3NF() (*Schema, error) {
	schemes := fd.Synthesize3NF(s.fds, s.s.U.All())
	// Cover any attributes untouched by FDs so the schema stays valid.
	var covered attrset.Set
	for _, set := range schemes {
		covered = covered.Union(set)
	}
	if rest := s.s.U.All().Diff(covered); !rest.IsEmpty() {
		schemes = append(schemes, rest)
	}
	schemaSrc := ""
	for i, set := range schemes {
		if i > 0 {
			schemaSrc += "; "
		}
		schemaSrc += fmt.Sprintf("S%d(%s)", i+1, s.s.U.Format(set, ","))
	}
	return Parse(schemaSrc, s.fds.Format(s.s.U))
}
