package indep

import (
	"strings"
	"testing"
)

func TestLosslessJoinFacade(t *testing.T) {
	// Example 1's decomposition is lossless; Example 2's *D is a genuine
	// extra constraint.
	ex1 := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	if !ex1.LosslessJoin() {
		t.Fatal("Example 1 decomposition must be lossless")
	}
	ex2 := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if ex2.LosslessJoin() {
		t.Fatal("Example 2's *D is not implied by its FDs")
	}
}

func TestCoverEmbeddingFacade(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R; S H -> R")
	ok, failing := s.CoverEmbedding()
	if ok || len(failing) != 1 || failing[0] != "S H -> R" {
		t.Fatalf("ok=%v failing=%v", ok, failing)
	}
}

func TestBCNFViolationsFacade(t *testing.T) {
	// CTD with C->T, C->D is fine (C is a key); adding T->D to the same
	// scheme violates BCNF.
	s := MustParse("COURSE(C,T,D)", "C -> T; C -> D; T -> D")
	viols, unchecked := s.BCNFViolations()
	if len(unchecked) != 0 {
		t.Fatalf("unchecked: %v", unchecked)
	}
	if len(viols["COURSE"]) == 0 {
		t.Fatalf("T -> D must violate BCNF on COURSE: %v", viols)
	}
}

func TestSynthesize3NFFacade(t *testing.T) {
	// The non-independent Example 1 universe, resynthesized: C->D becomes
	// derivable and the synthesis is a sound design.
	s := MustParse("U(C,T,D)", "C -> T; T -> D")
	syn, err := s.Synthesize3NF()
	if err != nil {
		t.Fatal(err)
	}
	if !syn.LosslessJoin() {
		t.Fatal("3NF synthesis must be lossless")
	}
	ok, failing := syn.CoverEmbedding()
	if !ok {
		t.Fatalf("3NF synthesis must be cover-embedding; failing %v", failing)
	}
	a, err := syn.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Independent {
		t.Fatalf("synthesized CT/TD design must be independent:\n%s", a.Summary())
	}
	// The schemes are CT and TD.
	joined := strings.Join(syn.Relations(), ",")
	if len(syn.Relations()) != 2 {
		t.Fatalf("schemes = %s", joined)
	}
}

func TestSynthesize3NFCoversLooseAttributes(t *testing.T) {
	s := MustParse("U(A,B,C,Z)", "A -> B")
	syn, err := s.Synthesize3NF()
	if err != nil {
		t.Fatal(err)
	}
	// Z and C appear in no FD; the synthesis must still cover them.
	found := map[string]bool{}
	for _, rel := range syn.Relations() {
		attrs, _ := syn.RelationAttrs(rel)
		for _, a := range attrs {
			found[a] = true
		}
	}
	for _, a := range []string{"A", "B", "C", "Z"} {
		if !found[a] {
			t.Fatalf("attribute %s lost by synthesis", a)
		}
	}
}

func TestSynthesisOfExample1UniverseIsIndependent(t *testing.T) {
	// Running synthesis on the full Example-1 FD set drops the derived
	// C->D edge into the transitive design CT/TD: the repaired design the
	// university example converges to.
	s := MustParse("U(C,T,D)", "C -> D; C -> T; T -> D")
	syn, err := s.Synthesize3NF()
	if err != nil {
		t.Fatal(err)
	}
	a, err := syn.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Independent {
		t.Fatalf("synthesis should repair Example 1:\n%s", a.Summary())
	}
}
