// Example concurrent drives a ConcurrentStore from many goroutines: the
// University schema is independent, so every relation validates behind its
// own lock stripe and the writers never contend on a global lock. A final
// chase verifies that the concurrently-built state still has a weak
// instance.
package main

import (
	"fmt"
	"log"
	"sync"

	"indep"
)

func main() {
	s := indep.MustParse(
		"COURSE(C,T,D); ENROLL(S,C,G); ROOMS(C,H,R); STUDENT(S,N,Y)",
		"C -> T; C -> D; S C -> G; C H -> R; S -> N; S -> Y")
	store, err := s.OpenConcurrentStore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast path (independent schema): %v\n\n", store.FastPath())

	const writers = 8
	var wg sync.WaitGroup
	var rejected sync.Map
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				course := fmt.Sprintf("cs%d%02d", w, i)
				teacher := fmt.Sprintf("prof-%d", w)
				student := fmt.Sprintf("s%d-%d", w, i)
				ops := []indep.BatchOp{
					{Rel: "COURSE", Row: map[string]string{"C": course, "T": teacher, "D": "cs"}},
					{Rel: "STUDENT", Row: map[string]string{"S": student, "N": "n" + student, "Y": "y1"}},
					{Rel: "ENROLL", Row: map[string]string{"S": student, "C": course, "G": "A"}},
				}
				if err := store.InsertBatch(ops); err != nil {
					log.Fatal(err)
				}
				// A second teacher for an existing course violates C->T and
				// must bounce without disturbing the other writers.
				err := store.Insert("COURSE", map[string]string{"C": course, "T": "impostor", "D": "cs"})
				if !indep.Rejected(err) {
					log.Fatalf("expected rejection, got %v", err)
				}
				rejected.Store(course, true)
			}
		}(w)
	}
	wg.Wait()

	snap := store.Snapshot()
	ok, err := snap.Satisfies()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows after %d writers: %d; globally satisfying: %v\n\n", writers, snap.Rows(), ok)
	for _, st := range store.Stats() {
		fmt.Printf("%-8s tuples=%-5d inserts=%-5d rejects=%-5d p50=%-8s p99=%s\n",
			st.Relation, st.Tuples, st.Inserts, st.Rejects, st.P50, st.P99)
	}
}
