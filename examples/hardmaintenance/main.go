// Hardmaintenance: Theorem 1 made concrete. The maintenance problem — "is
// the state still satisfying after inserting one tuple?" — embeds the
// NP-complete question "is tuple t in the projection of the join?". This
// example builds the paper's reduction and shows the chase verdict tracking
// join membership exactly, with cost exploding as the join widens.
//
// (This example exercises internal packages directly; it demonstrates the
// reduction machinery rather than the public facade.)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/maintenance"
	"indep/internal/relation"
)

func main() {
	r := rand.New(rand.NewSource(42))
	fmt.Println("Theorem 1 reduction: maintenance of one insert decides join membership")
	fmt.Printf("%4s %8s %12s %14s %12s %8s\n", "k", "tuples", "t in join?", "p' satisfying", "agree", "time")
	for k := 2; k <= 7; k++ {
		u := attrset.NewUniverse()
		for i := 0; i <= k; i++ {
			u.Add(fmt.Sprintf("X%d", i))
		}
		inst := relation.NewInstance(u.All())
		for i := 0; i < 3*k; i++ {
			t := make(relation.Tuple, k+1)
			for c := range t {
				t[c] = relation.Value(r.Intn(3))
			}
			inst.Add(t)
		}
		// Chain of binary schemes X_i X_{i+1}; ask about (X0, Xk) pairs.
		var schemes []attrset.Set
		for i := 0; i < k; i++ {
			schemes = append(schemes, attrset.Of(i, i+1))
		}
		x := attrset.Of(0, k)
		tu := relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))}

		member := maintenance.MemberOfJoin(inst, schemes, x, tu)
		red, err := maintenance.BuildReduction(u, inst, schemes, x, tu)
		if err != nil {
			log.Fatal(err)
		}
		// p must satisfy Σ before the insert — Theorem 1's premise.
		if ok, err := chase.Satisfies(red.P, red.FDs, true, chase.DefaultCaps); err != nil || !ok {
			log.Fatalf("base state must satisfy (ok=%v err=%v)", ok, err)
		}
		p2 := red.P.Clone()
		p2.Insts[red.Last].Add(red.Inserted)
		start := time.Now()
		sat, err := chase.Satisfies(p2, red.FDs, true, chase.Caps{MaxRows: 2_000_000, MaxIters: 100000})
		el := time.Since(start)
		if err != nil {
			fmt.Printf("%4d %8d %12v %14s\n", k, p2.TupleCount(), member, "budget")
			continue
		}
		fmt.Printf("%4d %8d %12v %14v %12v %8s\n",
			k, p2.TupleCount(), member, sat, sat == !member, el.Round(time.Microsecond))
	}
	fmt.Println("\np' is satisfying exactly when t is NOT in the join (Theorem 1);")
	fmt.Println("no polynomial maintenance algorithm exists for arbitrary schemas unless P=NP.")
}
