// Designadvisor: given one universal set of attributes and constraints,
// compare candidate decompositions the way a schema designer would —
// checking independence (can constraints be enforced per relation?) and
// acyclicity (are global joins cheap?) for each, and printing the concrete
// anomaly for every rejected design.
package main

import (
	"fmt"
	"log"

	"indep"
)

type candidate struct {
	name   string
	schema string
	fds    string
}

func main() {
	// Universe: Course, Teacher, Department, Student, Hour, Room.
	// Constraints: C->T, C->D, T->D (a teacher belongs to a department and
	// courses inherit it), CH->R, SH->R (students can't be in two rooms).
	candidates := []candidate{
		{
			name:   "triangle (Example 1 pattern)",
			schema: "CD(C,D); CT(C,T); TD(T,D); SHR(S,H,R); CHR(C,H,R)",
			fds:    "C -> D; C -> T; T -> D; C H -> R; S H -> R",
		},
		{
			name:   "drop the derived C->D edge",
			schema: "CT(C,T); TD(T,D); SHR(S,H,R); CHR(C,H,R)",
			fds:    "C -> T; T -> D; C H -> R; S H -> R",
		},
		{
			name:   "keep room constraints but split the link table",
			schema: "CT(C,T); TD(T,D); CHR(C,H,R); CSH(C,S,H)",
			fds:    "C -> T; T -> D; C H -> R",
		},
	}

	for _, c := range candidates {
		s, err := indep.Parse(c.schema, c.fds)
		if err != nil {
			log.Fatal(err)
		}
		a, err := s.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s\n    schema: %s\n    fds:    %s\n", c.name, c.schema, c.fds)
		fmt.Printf("    acyclic: %v\n", s.IsAcyclic())
		if a.Independent {
			fmt.Println("    independent: YES — every constraint enforceable in one relation:")
			for _, rel := range s.Relations() {
				fds := a.RelationCovers[rel]
				if len(fds) == 0 {
					continue
				}
				fmt.Printf("      %s enforces %v\n", rel, fds)
			}
		} else {
			fmt.Printf("    independent: NO (%s)\n", a.Reason)
			if len(a.FailingFDs) > 0 {
				fmt.Printf("      constraints with no home relation: %v\n", a.FailingFDs)
			}
			if a.Witness != nil {
				fmt.Printf("      anomaly the design permits (locally fine, globally contradictory):\n")
				fmt.Print(indentLines(a.Witness.String()))
			}
		}
		fmt.Println()
	}
}

func indentLines(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "        " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				lines = append(lines, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
