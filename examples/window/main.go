// Example window computes window queries — X-total projections of the
// representative instance — over the university schema, contrasting the
// two evaluation regimes:
//
//   - The independent registrar schema answers windows relation-by-relation:
//     each tuple extends through the paper's Theorem 5 extension joins, so
//     "students with the teacher of their course" costs a few index probes
//     per tuple and never chases the whole database.
//   - A non-independent variant (an FD embedded in no relation) can only be
//     answered by chasing the padded state to the representative instance —
//     including the join-dependency rule, whose output the local evaluation
//     could never see.
//
// Run with: go run ./examples/window
package main

import (
	"fmt"
	"log"
	"strings"

	"indep"
)

func main() {
	fmt.Println("=== Window queries over the university schema ===")
	fmt.Println()
	independent()
	fmt.Println()
	nonIndependent()
}

func printResult(res *indep.WindowResult) {
	mode := "serialized chase over the padded state"
	if res.FastPath {
		mode = "relation-by-relation extension joins (no chase)"
	}
	fmt.Printf("  evaluated by: %s\n", mode)
	fmt.Printf("  %s\n", strings.Join(res.Attrs, "\t"))
	for _, row := range res.Rows {
		vals := make([]string, len(res.Attrs))
		for i, a := range res.Attrs {
			vals[i] = row[a]
		}
		fmt.Printf("  %s\n", strings.Join(vals, "\t"))
	}
}

// independent: the paper's Example 2 registrar schema. Every window is a
// local computation because the schema is independent.
func independent() {
	sch := indep.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	store, err := sch.OpenConcurrentStore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema: %s (independent: %v)\n", sch, store.FastPath())

	for _, op := range []indep.BatchOp{
		{Rel: "CT", Row: map[string]string{"C": "cs402", "T": "jones"}},
		{Rel: "CT", Row: map[string]string{"C": "ee201", "T": "curie"}},
		{Rel: "CS", Row: map[string]string{"C": "cs402", "S": "ada"}},
		{Rel: "CS", Row: map[string]string{"C": "cs402", "S": "bob"}},
		{Rel: "CS", Row: map[string]string{"C": "ph100", "S": "eve"}},
		{Rel: "CHR", Row: map[string]string{"C": "cs402", "H": "mon9", "R": "r12"}},
	} {
		if err := store.Insert(op.Rel, op.Row); err != nil {
			log.Fatal(err)
		}
	}

	// The window [S T] joins enrollment to teaching through C — but eve's
	// ph100 has no teacher on record, so no row of the representative
	// instance is {S,T}-total for her: windows never invent values.
	fmt.Println("\nwindow [S T] — every student with the teacher of their course:")
	res, err := store.Window("S", "T")
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	fmt.Println("\nwindow [C S T] filtered to T=jones, projected to S:")
	res, err = store.Query(indep.WindowQuery{
		Attrs:   []string{"C", "S", "T"},
		Where:   map[string]string{"T": "jones"},
		Project: []string{"S"},
	})
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	qs := store.QueryStats()
	fmt.Printf("\nquery stats: %d queries, %d fast evaluations, %d chase evaluations\n",
		qs.Queries, qs.FastEvals, qs.ChaseEvals)
}

// nonIndependent: A -> C is embedded in no relation, so the schema fails
// cover-embedding and windows must chase. The window [A C] is answered by
// the join-dependency rule: the tuple (a1,c1) exists in no single relation
// and in no local extension — only the representative instance has it.
func nonIndependent() {
	sch := indep.MustParse("AB(A,B); BC(B,C)", "A -> C")
	a, err := sch.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema: %s (independent: %v, reason: %s)\n", sch, a.Independent, a.Reason)

	db := sch.NewDatabase()
	for _, ins := range []struct {
		rel string
		row map[string]string
	}{
		{"AB", map[string]string{"A": "a1", "B": "b1"}},
		{"BC", map[string]string{"B": "b1", "C": "c1"}},
	} {
		if err := db.Insert(ins.rel, ins.row); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nwindow [A C] — derivable only through the global chase:")
	res, err := db.Window("A", "C")
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	fmt.Println("\n(a1,c1) appears in no relation: the JD rule joined AB and BC")
	fmt.Println("into a universal row, and A -> C holds of it. Independence is what")
	fmt.Println("lets the registrar schema above skip this global computation.")
}
