// Registrar: measure what independence buys at runtime. The same insert
// workload runs against (a) the O(|F_i|) guard that independence makes
// sound and (b) chase-based maintenance that any schema needs without it.
// The guard's per-insert cost stays flat while the chase grows with the
// state — the practical content of the paper's Section 1–2 discussion.
package main

import (
	"fmt"
	"log"
	"time"

	"indep"
)

func main() {
	schemaSrc := "CT(C,T); CS(C,S); CHR(C,H,R)"
	fdSrc := "C -> T; C H -> R"

	s := indep.MustParse(schemaSrc, fdSrc)
	a, err := s.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema independent: %v — fast maintenance is sound\n\n", a.Independent)

	fmt.Printf("%10s %18s %18s\n", "inserts", "guard ns/insert", "chase ns/insert")
	for _, n := range []int{200, 800, 3200} {
		fast, err := s.OpenStore()
		if err != nil {
			log.Fatal(err)
		}
		if !fast.FastPath() {
			log.Fatal("expected the guard")
		}
		guardNS := load(fast, n)

		// Force the chase path by analyzing a dependent variant with the
		// same relations: Example 1's triangle.
		dep := indep.MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
		slow, err := dep.OpenStore()
		if err != nil {
			log.Fatal(err)
		}
		if slow.FastPath() {
			log.Fatal("expected chase maintenance")
		}
		chaseNS := loadTriangle(slow, n)

		fmt.Printf("%10d %18d %18d\n", n, guardNS, chaseNS)
	}
	fmt.Println("\nexpected shape: guard flat, chase growing with state size.")
}

func load(st *indep.Store, n int) int64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		c := fmt.Sprintf("C%d", i)
		if err := st.Insert("CT", map[string]string{"C": c, "T": "T" + c}); err != nil {
			log.Fatal(err)
		}
		if err := st.Insert("CHR", map[string]string{"C": c, "H": "H1", "R": "R" + c}); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start).Nanoseconds() / int64(2*n)
}

func loadTriangle(st *indep.Store, n int) int64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		c, t, d := fmt.Sprintf("C%d", i), fmt.Sprintf("T%d", i), fmt.Sprintf("D%d", i)
		if err := st.Insert("CD", map[string]string{"C": c, "D": d}); err != nil {
			log.Fatal(err)
		}
		if err := st.Insert("CT", map[string]string{"C": c, "T": t}); err != nil {
			log.Fatal(err)
		}
		if err := st.Insert("TD", map[string]string{"T": t, "D": d}); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start).Nanoseconds() / int64(3*n)
}
