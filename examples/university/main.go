// University: a registrar designs a schema, learns why one variant leaks
// cross-relation anomalies (the paper's Example 1 pattern: two routes from
// courses to departments), inspects the concrete counterexample state, and
// fixes the design.
package main

import (
	"fmt"
	"log"

	"indep"
)

func analyze(title, schemaSrc, fdSrc string) *indep.Analysis {
	s, err := indep.Parse(schemaSrc, fdSrc)
	if err != nil {
		log.Fatal(err)
	}
	a, err := s.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s\nschema: %s\n%s\n", title, s, a.Summary())
	return a
}

func main() {
	// Attempt 1: the paper's Example 1. Courses have departments (C->D),
	// teachers (C->T), and teachers have departments (T->D). Two different
	// functions lead from courses to departments — the design overloads D.
	a := analyze("attempt 1: overloaded department attribute",
		"CD(C,D); CT(C,T); TD(T,D)",
		"C -> D; C -> T; T -> D")
	if a.Independent {
		log.Fatal("expected a dependent design")
	}
	// The witness is a real update anomaly: reproduce it through the
	// unchecked Database API and confirm the chase sees the contradiction.
	s := indep.MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	db := s.NewDatabase()
	for rel, row := range map[string]map[string]string{
		"CD": {"C": "CS402", "D": "CS"},
		"CT": {"C": "CS402", "T": "Jones"},
		"TD": {"T": "Jones", "D": "EE"},
	} {
		if err := db.Insert(rel, row); err != nil {
			log.Fatal(err)
		}
	}
	localOK, _, err := db.SatisfiesLocally()
	if err != nil {
		log.Fatal(err)
	}
	globalOK, err := db.Satisfies()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the CS402/Jones state: locally consistent = %v, weak instance exists = %v\n",
		localOK, globalOK)
	fmt.Println("(every relation checks out alone, yet Smith's department is contradictory:")
	fmt.Println(" exactly the inter-relation constraint independence eliminates)")

	// Attempt 2: separate the two relationships — the teacher's department
	// lives only in TD, the course's only in CD, and CT links them. Each
	// FD now has a single home and the design is independent.
	fmt.Println()
	a2 := analyze("attempt 2: one relationship per relation",
		"CD(C,D); CT(C,T); TE(T,E)",
		"C -> D; C -> T; T -> E")
	if !a2.Independent {
		log.Fatal("expected an independent design")
	}

	// Attempt 3: the full registrar schema with enrolment and rooms.
	fmt.Println()
	a3 := analyze("attempt 3: full registrar",
		"COURSE(C,T,D); ENROLL(S,C,G); ROOMS(C,H,R); STUDENT(S,N,Y)",
		"C -> T; C -> D; S C -> G; C H -> R; S -> N; S -> Y")
	if !a3.Independent {
		log.Fatal("expected an independent design")
	}
	fmt.Println("all constraints are enforceable relation-by-relation; maintenance is O(|F_i|) per insert.")
}
