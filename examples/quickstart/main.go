// Quickstart: decide independence for the paper's Example 2 schema, then
// open a maintained store and watch the per-relation FD guard reject
// inconsistent inserts in O(|F_i|) — the paper's motivating payoff.
package main

import (
	"fmt"
	"log"

	"indep"
)

func main() {
	// Course-Teacher, Course-Student, Course-Hour-Room: the paper's
	// academic schema with "every course has one teacher" and "a course
	// meets in one room at a given hour".
	s, err := indep.Parse(
		"CT(C,T); CS(C,S); CHR(C,H,R)",
		"C -> T; C H -> R",
	)
	if err != nil {
		log.Fatal(err)
	}

	analysis, err := s.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(analysis.Summary())

	store, err := s.OpenStore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaintained store fast path: %v\n", store.FastPath())

	inserts := []struct {
		rel string
		row map[string]string
	}{
		{"CT", map[string]string{"C": "CS101", "T": "Smith"}},
		{"CS", map[string]string{"C": "CS101", "S": "Alice"}},
		{"CHR", map[string]string{"C": "CS101", "H": "Mon10", "R": "313"}},
		{"CT", map[string]string{"C": "CS101", "T": "Turing"}},             // violates C->T
		{"CHR", map[string]string{"C": "CS101", "H": "Mon10", "R": "414"}}, // violates CH->R
		{"CT", map[string]string{"C": "CS102", "T": "Turing"}},
	}
	for _, in := range inserts {
		err := store.Insert(in.rel, in.row)
		switch {
		case err == nil:
			fmt.Printf("insert %-4s %v: ok\n", in.rel, in.row)
		case indep.Rejected(err):
			fmt.Printf("insert %-4s %v: REJECTED (%v)\n", in.rel, in.row, err)
		default:
			log.Fatal(err)
		}
	}
	fmt.Printf("\nfinal state (%d rows):\n%s", store.Rows(), store)
}
