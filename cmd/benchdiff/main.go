// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh benchmark run against the committed BENCH_*.json floors and fails
// on a real regression, so a PR cannot quietly lose the performance a
// previous PR paid for.
//
// Usage:
//
//	go test -bench 'GuardInsert$' -benchmem . > bench.txt
//	go run ./cmd/indepbench -engine -json > engine.json
//	go run ./cmd/benchdiff -floors BENCH_10.json -bench bench.txt -engine engine.json
//
// Two floors are enforced (the two numbers every perf PR has fought for):
//
//   - BenchmarkGuardInsert ns/op, parsed from the -benchmem text output.
//     More than -threshold slower than the floor fails the gate.
//   - indepbench -engine writeTuplesPerSec, read from the -json report.
//     More than -threshold below the floor fails the gate.
//
// Alloc counts are compared warn-only: allocation regressions are worth a
// log line, but CI boxes disagree about them too often to hard-fail on.
// The floors come from the newest committed BENCH_*.json's "after" values,
// so raising a floor is an explicit, reviewed act of recording a new
// benchmark file — not a side effect of a lucky CI run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// floorsFile is the slice of BENCH_*.json benchdiff reads: the two
// enforced entries' "after" objects. Extra entries and fields are ignored.
type floorsFile struct {
	Issue      int `json:"issue"`
	Benchmarks map[string]struct {
		After map[string]float64 `json:"after"`
	} `json:"benchmarks"`
}

// engineReport is the slice of indepbench -json benchdiff reads.
type engineReport struct {
	WriteTPS    float64 `json:"writeTuplesPerSec"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

const (
	guardKey  = "BenchmarkGuardInsert"
	ingestKey = "indepbench -engine writeTuplesPerSec"
)

func main() {
	floorsPath := flag.String("floors", "", "committed BENCH_*.json with the floors (benchmarks.*.after)")
	benchPath := flag.String("bench", "", "go test -bench -benchmem text output containing BenchmarkGuardInsert")
	enginePath := flag.String("engine", "", "indepbench -engine -json report")
	threshold := flag.Float64("threshold", 0.25, "fractional regression that fails the gate")
	flag.Parse()
	if *floorsPath == "" || *benchPath == "" || *enginePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -floors, -bench and -engine are all required")
		os.Exit(2)
	}
	failures, err := run(*floorsPath, *benchPath, *enginePath, *threshold, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d floor(s) regressed more than %.0f%%\n", failures, *threshold*100)
		os.Exit(1)
	}
}

// run performs the comparison and returns the number of hard failures.
// Configuration errors (missing files, missing floors, unparseable input)
// are returned as errors: a gate that cannot read its floors must not
// pass silently.
func run(floorsPath, benchPath, enginePath string, threshold float64, out io.Writer) (int, error) {
	floors, err := loadFloors(floorsPath)
	if err != nil {
		return 0, err
	}
	guardNs, guardAllocs, err := parseGuardBench(benchPath)
	if err != nil {
		return 0, err
	}
	engine, err := loadEngine(enginePath)
	if err != nil {
		return 0, err
	}

	failures := 0
	check := func(name string, floor, got float64, lowerIsBetter bool, unit string) {
		var regressed float64 // fraction worse than the floor, negative = better
		if lowerIsBetter {
			regressed = got/floor - 1
		} else {
			regressed = floor/got - 1
		}
		verdict := "ok"
		if regressed > threshold {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(out, "%-4s %-40s floor %.0f %s, got %.0f %s (%+.1f%%)\n",
			verdict, name, floor, unit, got, unit, regressed*100)
	}
	guardFloor, ok := floors.Benchmarks[guardKey]
	if !ok || guardFloor.After["ns_op"] == 0 {
		return 0, fmt.Errorf("%s: no %s ns_op floor", floorsPath, guardKey)
	}
	check(guardKey+" ns/op", guardFloor.After["ns_op"], guardNs, true, "ns")

	ingestFloor, ok := floors.Benchmarks[ingestKey]
	if !ok || ingestFloor.After["tuples_per_sec"] == 0 {
		return 0, fmt.Errorf("%s: no %q tuples_per_sec floor", floorsPath, ingestKey)
	}
	check("engine ingest tuples/s", ingestFloor.After["tuples_per_sec"], engine.WriteTPS, false, "t/s")

	// Alloc comparisons never fail the gate, but a regression is printed
	// loudly enough to read in the job log.
	warnAllocs := func(name string, floor, got float64) {
		if floor > 0 && got > floor*(1+threshold) {
			fmt.Fprintf(out, "warn %-40s allocs/op %.1f exceeds floor %.1f (not fatal)\n", name, got, floor)
		}
	}
	warnAllocs(guardKey, guardFloor.After["allocs_op"], guardAllocs)
	warnAllocs("engine ingest", ingestFloor.After["allocs_op"], engine.AllocsPerOp)
	return failures, nil
}

func loadFloors(path string) (*floorsFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f floorsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func loadEngine(path string) (*engineReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r engineReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.WriteTPS == 0 {
		return nil, fmt.Errorf("%s: no writeTuplesPerSec (is this an -engine -json report?)", path)
	}
	return &r, nil
}

// parseGuardBench pulls ns/op and allocs/op for BenchmarkGuardInsert out
// of `go test -bench -benchmem` text output. Lines look like:
//
//	BenchmarkGuardInsert \t 4907958 \t 933.9 ns/op \t 331 B/op \t 0 allocs/op
func parseGuardBench(path string) (nsOp, allocsOp float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		// Exact benchmark, any GOMAXPROCS suffix; not sub-benchmarks.
		name, _, _ := strings.Cut(fields[0], "-")
		if name != "BenchmarkGuardInsert" {
			continue
		}
		for i := 1; i < len(fields)-1; i++ {
			v, convErr := strconv.ParseFloat(fields[i], 64)
			if convErr != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				nsOp = v
			case "allocs/op":
				allocsOp = v
			}
		}
		if nsOp > 0 {
			return nsOp, allocsOp, nil
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	return 0, 0, fmt.Errorf("%s: no BenchmarkGuardInsert ns/op line found", path)
}
