package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops content into the test's temp dir and returns the path.
func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const floorsJSON = `{
  "issue": 99,
  "benchmarks": {
    "BenchmarkGuardInsert": {
      "before": {"ns_op": 1241},
      "after": {"ns_op": 1000, "b_op": 363, "allocs_op": 1}
    },
    "indepbench -engine writeTuplesPerSec": {
      "after": {"tuples_per_sec": 100000, "allocs_op": 24.0}
    }
  }
}`

// benchText mimics go test -bench -benchmem output, including the noise
// lines and a GOMAXPROCS suffix on the benchmark name.
func benchText(ns string) string {
	return "goos: linux\ngoarch: amd64\npkg: indep\n" +
		"BenchmarkGuardInsert-8   \t 4907958\t      " + ns + " ns/op\t     331 B/op\t       1 allocs/op\n" +
		"PASS\nok  \tindep\t6.1s\n"
}

func runDiff(t *testing.T, floors, bench, engine string) (failures int, out string, err error) {
	t.Helper()
	outFile, cerr := os.CreateTemp(t.TempDir(), "out")
	if cerr != nil {
		t.Fatal(cerr)
	}
	defer outFile.Close()
	failures, err = run(floors, bench, engine, 0.25, outFile)
	data, rerr := os.ReadFile(outFile.Name())
	if rerr != nil {
		t.Fatal(rerr)
	}
	return failures, string(data), err
}

func TestBenchdiffPasses(t *testing.T) {
	floors := write(t, "floors.json", floorsJSON)
	bench := write(t, "bench.txt", benchText("990.0"))
	engine := write(t, "engine.json", `{"writeTuplesPerSec": 110000, "allocsPerOp": 23.5}`)
	failures, out, err := runDiff(t, floors, bench, engine)
	if err != nil || failures != 0 {
		t.Fatalf("failures=%d err=%v\n%s", failures, err, out)
	}
	if strings.Contains(out, "FAIL") || strings.Contains(out, "warn") {
		t.Fatalf("clean run printed a failure or warning:\n%s", out)
	}
}

// Within the threshold is slower-but-ok: the gate exists for real
// regressions, not run-to-run jitter.
func TestBenchdiffToleratesJitter(t *testing.T) {
	floors := write(t, "floors.json", floorsJSON)
	bench := write(t, "bench.txt", benchText("1200.0")) // +20% < 25%
	engine := write(t, "engine.json", `{"writeTuplesPerSec": 85000}`)
	failures, out, err := runDiff(t, floors, bench, engine)
	if err != nil || failures != 0 {
		t.Fatalf("failures=%d err=%v\n%s", failures, err, out)
	}
}

func TestBenchdiffFailsGuardRegression(t *testing.T) {
	floors := write(t, "floors.json", floorsJSON)
	bench := write(t, "bench.txt", benchText("1300.0")) // +30% > 25%
	engine := write(t, "engine.json", `{"writeTuplesPerSec": 110000}`)
	failures, out, err := runDiff(t, floors, bench, engine)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 || !strings.Contains(out, "FAIL BenchmarkGuardInsert ns/op") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

func TestBenchdiffFailsIngestRegression(t *testing.T) {
	floors := write(t, "floors.json", floorsJSON)
	bench := write(t, "bench.txt", benchText("990.0"))
	// floor/got - 1 = 100000/70000 - 1 = 43% worse.
	engine := write(t, "engine.json", `{"writeTuplesPerSec": 70000}`)
	failures, out, err := runDiff(t, floors, bench, engine)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 || !strings.Contains(out, "FAIL engine ingest tuples/s") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

// Alloc regressions warn but never fail.
func TestBenchdiffAllocsWarnOnly(t *testing.T) {
	floors := write(t, "floors.json", floorsJSON)
	bench := write(t, "bench.txt", benchText("990.0"))
	engine := write(t, "engine.json", `{"writeTuplesPerSec": 110000, "allocsPerOp": 40.0}`)
	failures, out, err := runDiff(t, floors, bench, engine)
	if err != nil || failures != 0 {
		t.Fatalf("failures=%d err=%v\n%s", failures, err, out)
	}
	if !strings.Contains(out, "warn engine ingest") {
		t.Fatalf("no alloc warning printed:\n%s", out)
	}
}

// A gate that cannot read its inputs must error, not pass.
func TestBenchdiffBadInputs(t *testing.T) {
	floors := write(t, "floors.json", floorsJSON)
	bench := write(t, "bench.txt", benchText("990.0"))
	engine := write(t, "engine.json", `{"writeTuplesPerSec": 110000}`)

	if _, _, err := runDiff(t, write(t, "empty.json", `{}`), bench, engine); err == nil {
		t.Fatal("floors without BenchmarkGuardInsert passed")
	}
	if _, _, err := runDiff(t, floors, write(t, "no.txt", "PASS\n"), engine); err == nil {
		t.Fatal("bench output without GuardInsert passed")
	}
	if _, _, err := runDiff(t, floors, bench, write(t, "bad.json", `{"mode":"query"}`)); err == nil {
		t.Fatal("engine report without writeTuplesPerSec passed")
	}
	if _, _, err := runDiff(t, floors, bench, write(t, "junk.json", `not json`)); err == nil {
		t.Fatal("malformed engine JSON passed")
	}
}

// The committed BENCH_10.json must itself satisfy the parser, so the CI
// job cannot break by a floors-file format drift.
func TestBenchdiffReadsCommittedFloors(t *testing.T) {
	floors, err := loadFloors(filepath.Join("..", "..", "BENCH_10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if floors.Benchmarks[guardKey].After["ns_op"] == 0 {
		t.Fatal("BENCH_10.json has no GuardInsert ns_op floor")
	}
	if floors.Benchmarks[ingestKey].After["tuples_per_sec"] == 0 {
		t.Fatal("BENCH_10.json has no ingest tuples_per_sec floor")
	}
}
