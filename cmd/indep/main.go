// Command indep analyzes database schemas for independence in the sense of
// Graham and Yannakakis, "Independent Database Schemas" (PODS 1982).
//
// Usage:
//
//	indep analyze -schema 'CT(C,T); CS(C,S); CHR(C,H,R)' -fds 'C -> T; C H -> R'
//	indep analyze -file design.txt
//	indep closure -schema ... -fds ... -of 'C H'
//	indep acyclic -schema ...
//	indep query -schema ... -fds ... -rows data.txt -of 'C T' [-where 'C=cs101'] [-limit 10] [-explain]
//	indep load -schema ... -fds ... -rows data.txt -url http://localhost:8080 [-wire bin|json] [-batch 256]
//	indep trace -url http://localhost:8080 -recent [-min 5ms] [-route 'POST /v1/tuple'] [-limit 10]
//
// load uploads a tuple file to a running indepd in atomic batches — over the
// length-prefixed binary protocol (POST /v1/batchbin, the default) or the
// JSON /v1/batch endpoint.
//
//	indep trace -url http://localhost:8080 -id 4bf92f3577b34da6
//
// The file format for -file has one declaration per line; lines starting
// with '#' are comments:
//
//	schema: CT(C,T); CS(C,S); CHR(C,H,R)
//	fds: C -> T; C H -> R
//
// query computes the window [X] for the -of attribute set: the X-total
// projection of the representative instance of the state in -rows —
// evaluated relation-by-relation when the schema is independent, through
// the chase otherwise. The -rows file holds one tuple per line (';' also
// separates), values positional in the relation's attribute order, '#'
// comments:
//
//	CT(cs101, jones)
//	CS(cs101, smith)
//
// trace talks to a running indepd's flight recorder (/debug/trace): -recent
// lists retained traces newest first, -id fetches one span tree by its
// 16-hex trace ID (the X-Indep-Trace response header of the request).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"indep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "trace" { // needs a daemon URL, not a schema
		runTrace(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	schemaSrc := fs.String("schema", "", "schema declaration, e.g. 'R1(A,B); R2(B,C)'")
	fdSrc := fs.String("fds", "", "functional dependencies, e.g. 'A -> B; B -> C'")
	file := fs.String("file", "", "read schema/fds from a declaration file")
	of := fs.String("of", "", "closure/query: attribute list, e.g. 'C H'")
	rows := fs.String("rows", "", "query/load: tuple file, one 'Rel(v1,v2,...)' per line")
	where := fs.String("where", "", "query: equality selections, e.g. 'C=cs101; T=jones'")
	limit := fs.Int("limit", 0, "query: cap the number of returned rows (0 = all)")
	explain := fs.Bool("explain", false, "query: print the executed plan (mode, plan cache, per-relation scans)")
	base := fs.String("url", "http://localhost:8080", "load: base URL of a running indepd")
	wire := fs.String("wire", "bin", "load: wire encoding, 'bin' (POST /v1/batchbin) or 'json' (POST /v1/batch)")
	batchSize := fs.Int("batch", 256, "load: rows per request batch")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		s, f, err := indep.ParseDeclarations(string(data))
		if err != nil {
			fatal(err)
		}
		*schemaSrc, *fdSrc = s, f
	}
	if *schemaSrc == "" {
		fatal(fmt.Errorf("missing -schema (or -file)"))
	}
	sch, err := indep.Parse(*schemaSrc, *fdSrc)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "analyze":
		a, err := sch.Analyze()
		if err != nil {
			fatal(err)
		}
		fmt.Print(a.Summary())
		if !a.Independent {
			os.Exit(1)
		}
	case "closure":
		attrs := strings.Fields(*of)
		if len(attrs) == 0 {
			fatal(fmt.Errorf("closure needs -of 'A B ...'"))
		}
		full, err := sch.Closure(attrs...)
		if err != nil {
			fatal(err)
		}
		emb, err := sch.EmbeddedClosure(attrs...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cl_Σ(%s)    = %s\n", strings.Join(attrs, " "), strings.Join(full, " "))
		fmt.Printf("cl_G|D(%s)  = %s\n", strings.Join(attrs, " "), strings.Join(emb, " "))
	case "acyclic":
		fmt.Printf("acyclic: %v\n", sch.IsAcyclic())
	case "query":
		attrs := strings.Fields(*of)
		if len(attrs) == 0 {
			fatal(fmt.Errorf("query needs -of 'A B ...'"))
		}
		db := sch.NewDatabase()
		if *rows != "" {
			if err := loadRows(sch, db, *rows); err != nil {
				fatal(err)
			}
		}
		q := indep.WindowQuery{Attrs: attrs, Limit: *limit, Explain: *explain}
		if *where != "" {
			q.Where = make(map[string]string)
			for _, cond := range strings.FieldsFunc(*where, func(r rune) bool { return r == ';' }) {
				attr, val, ok := strings.Cut(strings.TrimSpace(cond), "=")
				if !ok || strings.TrimSpace(attr) == "" {
					fatal(fmt.Errorf("bad -where condition %q (want attr=value)", cond))
				}
				attr, val = strings.TrimSpace(attr), strings.TrimSpace(val)
				if prev, dup := q.Where[attr]; dup && prev != val {
					fatal(fmt.Errorf("conflicting -where conditions for %s", attr))
				}
				q.Where[attr] = val
			}
		}
		res, err := db.Query(q)
		if err != nil {
			fatal(err)
		}
		mode := "chase (schema not independent)"
		if res.FastPath {
			mode = "relation-by-relation (independent schema, no chase)"
		}
		fmt.Printf("window [%s]: %d rows, evaluated %s\n",
			strings.Join(res.Attrs, " "), res.Total, mode)
		fmt.Println(strings.Join(res.Attrs, "\t"))
		for _, row := range res.Rows {
			vals := make([]string, len(res.Attrs))
			for i, a := range res.Attrs {
				vals[i] = row[a]
			}
			fmt.Println(strings.Join(vals, "\t"))
		}
		if res.Explain != nil {
			printExplain(res.Explain)
		}
	case "load":
		if *rows == "" {
			fatal(fmt.Errorf("load needs -rows (the tuple file to upload)"))
		}
		if err := runLoad(sch, *rows, *base, *wire, *batchSize); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

// runLoad uploads a tuple file to a running indepd in batches, over the
// binary wire protocol (-wire bin, the default: one length-prefixed
// /v1/batchbin body per batch, no JSON anywhere) or the JSON /v1/batch
// endpoint (-wire json). Batches are atomic server-side; a rejected or
// failed batch aborts the load with the server's message.
func runLoad(sch *indep.Schema, path, base, wire string, batchSize int) error {
	ops, err := parseTupleFile(sch, path)
	if err != nil {
		return err
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if wire != "bin" && wire != "json" {
		return fmt.Errorf("bad -wire %q (want bin or json)", wire)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	enc := indep.NewBinBatchEncoder(sch)
	start := time.Now()
	sent := 0
	for off := 0; off < len(ops); off += batchSize {
		batch := ops[off:min(off+batchSize, len(ops))]
		var body []byte
		var u, ctype string
		if wire == "bin" {
			enc.Reset()
			for _, op := range batch {
				if err := enc.Add(op.Rel, op.Row); err != nil {
					return err
				}
			}
			body, u, ctype = enc.Bytes(), base+"/v1/batchbin", indep.BinContentType
		} else {
			type jsonOp struct {
				Relation string            `json:"relation"`
				Row      map[string]string `json:"row"`
			}
			jops := make([]jsonOp, len(batch))
			for i, op := range batch {
				jops[i] = jsonOp{Relation: op.Rel, Row: op.Row}
			}
			if body, err = json.Marshal(map[string]any{"ops": jops}); err != nil {
				return err
			}
			u, ctype = base+"/v1/batch", "application/json"
		}
		resp, err := client.Post(u, ctype, strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: %s: %s", u, resp.Status, strings.TrimSpace(string(msg)))
		}
		sent += len(batch)
	}
	elapsed := time.Since(start)
	fmt.Printf("loaded %d rows over %s wire in %v (%.0f rows/s)\n",
		sent, wire, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	return nil
}

// printExplain renders a window query's executed plan.
func printExplain(ex *indep.WindowExplain) {
	fmt.Printf("explain:\n  mode:        %s\n  plan cached: %v\n", ex.Mode, ex.PlanCached)
	for _, rs := range ex.Relations {
		fmt.Printf("  scan:        %s (%d rows)\n", rs.Relation, rs.Rows)
	}
	if len(ex.Pruned) > 0 {
		fmt.Printf("  pruned:      %s\n", strings.Join(ex.Pruned, " "))
	}
}

// runTrace implements the trace subcommand: fetch retained traces from a
// running indepd's flight recorder and render their span trees.
func runTrace(argv []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	base := fs.String("url", "http://localhost:8080", "base URL of a running indepd")
	id := fs.String("id", "", "fetch one trace by its 16-hex ID")
	recent := fs.Bool("recent", false, "list retained traces, newest first")
	minDur := fs.Duration("min", 0, "recent: only traces at least this slow")
	route := fs.String("route", "", "recent: only traces for this route, e.g. 'POST /v1/tuple'")
	limit := fs.Int("limit", 0, "recent: cap the number of listed traces (0 = server default)")
	if err := fs.Parse(argv); err != nil {
		os.Exit(2)
	}
	switch {
	case *id != "":
		var tv indep.TraceView
		if err := fetchJSON(*base+"/debug/trace/"+url.PathEscape(*id), &tv); err != nil {
			fatal(err)
		}
		printTrace(tv)
	case *recent:
		q := url.Values{}
		if *minDur > 0 {
			q.Set("min_ms", fmt.Sprintf("%g", float64(*minDur)/float64(time.Millisecond)))
		}
		if *route != "" {
			q.Set("route", *route)
		}
		if *limit > 0 {
			q.Set("limit", fmt.Sprint(*limit))
		}
		u := *base + "/debug/trace/recent"
		if len(q) > 0 {
			u += "?" + q.Encode()
		}
		var body struct {
			Count  int               `json:"count"`
			Traces []indep.TraceView `json:"traces"`
		}
		if err := fetchJSON(u, &body); err != nil {
			fatal(err)
		}
		fmt.Printf("%d retained trace(s)\n", body.Count)
		for i, tv := range body.Traces {
			if i > 0 {
				fmt.Println()
			}
			printTrace(tv)
		}
	default:
		fatal(fmt.Errorf("trace needs -id or -recent"))
	}
}

// fetchJSON GETs a URL and decodes its JSON body into out. Non-200 responses
// become errors carrying the server's message.
func fetchJSON(u string, out any) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return fmt.Errorf("GET %s: %s (%s)", u, msg, resp.Status)
	}
	return json.Unmarshal(body, out)
}

// printTrace renders one trace as an indented span tree. Spans reference
// their parent by index, so children are grouped and walked depth-first in
// start order.
func printTrace(tv indep.TraceView) {
	fmt.Printf("trace %s  %s  status=%d  %s  kept=%s",
		tv.ID, tv.Route, tv.Status,
		time.Duration(tv.DurationNs).Round(time.Microsecond), tv.Reason)
	if tv.DroppedSpans > 0 {
		fmt.Printf("  dropped_spans=%d", tv.DroppedSpans)
	}
	fmt.Println()
	children := make([][]int, len(tv.Spans))
	roots := []int{}
	for i, sp := range tv.Spans {
		if sp.Parent >= 0 && sp.Parent < len(tv.Spans) {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return tv.Spans[idx[a]].StartNs < tv.Spans[idx[b]].StartNs })
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := tv.Spans[i]
		attrs := make([]string, len(sp.Attrs))
		for j, a := range sp.Attrs {
			attrs[j] = fmt.Sprintf("%s=%v", a.Key, a.Value)
		}
		line := fmt.Sprintf("%s%s  %s", strings.Repeat("  ", depth+1), sp.Name,
			time.Duration(sp.DurationNs).Round(time.Microsecond))
		if len(attrs) > 0 {
			line += "  {" + strings.Join(attrs, " ") + "}"
		}
		fmt.Println(line)
		kids := children[i]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	byStart(roots)
	for _, r := range roots {
		walk(r, 0)
	}
}

// parseTupleFile reads a tuple file into batch ops: one 'Rel(v1,v2,...)' per
// line (';' also separates tuples), values positional in the relation's
// attribute order, '#' starting a comment line.
func parseTupleFile(sch *indep.Schema, path string) ([]indep.BatchOp, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ops []indep.BatchOp
	for _, line := range strings.FieldsFunc(string(data), func(r rune) bool { return r == '\n' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		open := strings.IndexByte(line, '(')
		close := strings.LastIndexByte(line, ')')
		if open <= 0 || close != len(line)-1 {
			return nil, fmt.Errorf("indep: cannot parse tuple %q (want Rel(v1,v2,...))", line)
		}
		rel := strings.TrimSpace(line[:open])
		attrs, err := sch.RelationAttrs(rel)
		if err != nil {
			return nil, err
		}
		vals := strings.Split(line[open+1:close], ",")
		if len(vals) != len(attrs) {
			return nil, fmt.Errorf("indep: tuple %q has %d values, %s has %d attributes",
				line, len(vals), rel, len(attrs))
		}
		row := make(map[string]string, len(attrs))
		for i, a := range attrs {
			row[a] = strings.TrimSpace(vals[i])
		}
		ops = append(ops, indep.BatchOp{Rel: rel, Row: row})
	}
	return ops, nil
}

// loadRows reads a tuple file into the database (see parseTupleFile for the
// format).
func loadRows(sch *indep.Schema, db *indep.Database, path string) error {
	ops, err := parseTupleFile(sch, path)
	if err != nil {
		return err
	}
	for _, op := range ops {
		if err := db.Insert(op.Rel, op.Row); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indep:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  indep analyze -schema '...' -fds '...'   decide independence, print witness
  indep analyze -file design.txt
  indep closure -schema '...' -fds '...' -of 'A B'
  indep acyclic -schema '...'
  indep query -schema '...' -fds '...' -rows data.txt -of 'A B' [-where 'A=v'] [-limit n] [-explain]
  indep load -schema '...' -fds '...' -rows data.txt -url http://host:8080 [-wire bin|json] [-batch n]
  indep trace -url http://host:8080 -recent [-min 5ms] [-route 'POST /v1/tuple'] [-limit n]
  indep trace -url http://host:8080 -id <16-hex trace id>`)
	os.Exit(2)
}
