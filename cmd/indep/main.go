// Command indep analyzes database schemas for independence in the sense of
// Graham and Yannakakis, "Independent Database Schemas" (PODS 1982).
//
// Usage:
//
//	indep analyze -schema 'CT(C,T); CS(C,S); CHR(C,H,R)' -fds 'C -> T; C H -> R'
//	indep analyze -file design.txt
//	indep closure -schema ... -fds ... -of 'C H'
//	indep acyclic -schema ...
//
// The file format for -file has one declaration per line; lines starting
// with '#' are comments:
//
//	schema: CT(C,T); CS(C,S); CHR(C,H,R)
//	fds: C -> T; C H -> R
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"indep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	schemaSrc := fs.String("schema", "", "schema declaration, e.g. 'R1(A,B); R2(B,C)'")
	fdSrc := fs.String("fds", "", "functional dependencies, e.g. 'A -> B; B -> C'")
	file := fs.String("file", "", "read schema/fds from a declaration file")
	of := fs.String("of", "", "closure: attribute list, e.g. 'C H'")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		s, f, err := indep.ParseDeclarations(string(data))
		if err != nil {
			fatal(err)
		}
		*schemaSrc, *fdSrc = s, f
	}
	if *schemaSrc == "" {
		fatal(fmt.Errorf("missing -schema (or -file)"))
	}
	sch, err := indep.Parse(*schemaSrc, *fdSrc)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "analyze":
		a, err := sch.Analyze()
		if err != nil {
			fatal(err)
		}
		fmt.Print(a.Summary())
		if !a.Independent {
			os.Exit(1)
		}
	case "closure":
		attrs := strings.Fields(*of)
		if len(attrs) == 0 {
			fatal(fmt.Errorf("closure needs -of 'A B ...'"))
		}
		full, err := sch.Closure(attrs...)
		if err != nil {
			fatal(err)
		}
		emb, err := sch.EmbeddedClosure(attrs...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cl_Σ(%s)    = %s\n", strings.Join(attrs, " "), strings.Join(full, " "))
		fmt.Printf("cl_G|D(%s)  = %s\n", strings.Join(attrs, " "), strings.Join(emb, " "))
	case "acyclic":
		fmt.Printf("acyclic: %v\n", sch.IsAcyclic())
	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indep:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  indep analyze -schema '...' -fds '...'   decide independence, print witness
  indep analyze -file design.txt
  indep closure -schema '...' -fds '...' -of 'A B'
  indep acyclic -schema '...'`)
	os.Exit(2)
}
