// Command indep analyzes database schemas for independence in the sense of
// Graham and Yannakakis, "Independent Database Schemas" (PODS 1982).
//
// Usage:
//
//	indep analyze -schema 'CT(C,T); CS(C,S); CHR(C,H,R)' -fds 'C -> T; C H -> R'
//	indep analyze -file design.txt
//	indep closure -schema ... -fds ... -of 'C H'
//	indep acyclic -schema ...
//	indep query -schema ... -fds ... -rows data.txt -of 'C T' [-where 'C=cs101'] [-limit 10]
//
// The file format for -file has one declaration per line; lines starting
// with '#' are comments:
//
//	schema: CT(C,T); CS(C,S); CHR(C,H,R)
//	fds: C -> T; C H -> R
//
// query computes the window [X] for the -of attribute set: the X-total
// projection of the representative instance of the state in -rows —
// evaluated relation-by-relation when the schema is independent, through
// the chase otherwise. The -rows file holds one tuple per line (';' also
// separates), values positional in the relation's attribute order, '#'
// comments:
//
//	CT(cs101, jones)
//	CS(cs101, smith)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"indep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	schemaSrc := fs.String("schema", "", "schema declaration, e.g. 'R1(A,B); R2(B,C)'")
	fdSrc := fs.String("fds", "", "functional dependencies, e.g. 'A -> B; B -> C'")
	file := fs.String("file", "", "read schema/fds from a declaration file")
	of := fs.String("of", "", "closure/query: attribute list, e.g. 'C H'")
	rows := fs.String("rows", "", "query: tuple file, one 'Rel(v1,v2,...)' per line")
	where := fs.String("where", "", "query: equality selections, e.g. 'C=cs101; T=jones'")
	limit := fs.Int("limit", 0, "query: cap the number of returned rows (0 = all)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		s, f, err := indep.ParseDeclarations(string(data))
		if err != nil {
			fatal(err)
		}
		*schemaSrc, *fdSrc = s, f
	}
	if *schemaSrc == "" {
		fatal(fmt.Errorf("missing -schema (or -file)"))
	}
	sch, err := indep.Parse(*schemaSrc, *fdSrc)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "analyze":
		a, err := sch.Analyze()
		if err != nil {
			fatal(err)
		}
		fmt.Print(a.Summary())
		if !a.Independent {
			os.Exit(1)
		}
	case "closure":
		attrs := strings.Fields(*of)
		if len(attrs) == 0 {
			fatal(fmt.Errorf("closure needs -of 'A B ...'"))
		}
		full, err := sch.Closure(attrs...)
		if err != nil {
			fatal(err)
		}
		emb, err := sch.EmbeddedClosure(attrs...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cl_Σ(%s)    = %s\n", strings.Join(attrs, " "), strings.Join(full, " "))
		fmt.Printf("cl_G|D(%s)  = %s\n", strings.Join(attrs, " "), strings.Join(emb, " "))
	case "acyclic":
		fmt.Printf("acyclic: %v\n", sch.IsAcyclic())
	case "query":
		attrs := strings.Fields(*of)
		if len(attrs) == 0 {
			fatal(fmt.Errorf("query needs -of 'A B ...'"))
		}
		db := sch.NewDatabase()
		if *rows != "" {
			if err := loadRows(sch, db, *rows); err != nil {
				fatal(err)
			}
		}
		q := indep.WindowQuery{Attrs: attrs, Limit: *limit}
		if *where != "" {
			q.Where = make(map[string]string)
			for _, cond := range strings.FieldsFunc(*where, func(r rune) bool { return r == ';' }) {
				attr, val, ok := strings.Cut(strings.TrimSpace(cond), "=")
				if !ok || strings.TrimSpace(attr) == "" {
					fatal(fmt.Errorf("bad -where condition %q (want attr=value)", cond))
				}
				attr, val = strings.TrimSpace(attr), strings.TrimSpace(val)
				if prev, dup := q.Where[attr]; dup && prev != val {
					fatal(fmt.Errorf("conflicting -where conditions for %s", attr))
				}
				q.Where[attr] = val
			}
		}
		res, err := db.Query(q)
		if err != nil {
			fatal(err)
		}
		mode := "chase (schema not independent)"
		if res.FastPath {
			mode = "relation-by-relation (independent schema, no chase)"
		}
		fmt.Printf("window [%s]: %d rows, evaluated %s\n",
			strings.Join(res.Attrs, " "), res.Total, mode)
		fmt.Println(strings.Join(res.Attrs, "\t"))
		for _, row := range res.Rows {
			vals := make([]string, len(res.Attrs))
			for i, a := range res.Attrs {
				vals[i] = row[a]
			}
			fmt.Println(strings.Join(vals, "\t"))
		}
	default:
		usage()
	}
}

// loadRows reads a tuple file into the database: one 'Rel(v1,v2,...)' per
// line (';' also separates tuples), values positional in the relation's
// attribute order, '#' starting a comment line.
func loadRows(sch *indep.Schema, db *indep.Database, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, line := range strings.FieldsFunc(string(data), func(r rune) bool { return r == '\n' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		open := strings.IndexByte(line, '(')
		close := strings.LastIndexByte(line, ')')
		if open <= 0 || close != len(line)-1 {
			return fmt.Errorf("indep: cannot parse tuple %q (want Rel(v1,v2,...))", line)
		}
		rel := strings.TrimSpace(line[:open])
		attrs, err := sch.RelationAttrs(rel)
		if err != nil {
			return err
		}
		vals := strings.Split(line[open+1:close], ",")
		if len(vals) != len(attrs) {
			return fmt.Errorf("indep: tuple %q has %d values, %s has %d attributes",
				line, len(vals), rel, len(attrs))
		}
		row := make(map[string]string, len(attrs))
		for i, a := range attrs {
			row[a] = strings.TrimSpace(vals[i])
		}
		if err := db.Insert(rel, row); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indep:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  indep analyze -schema '...' -fds '...'   decide independence, print witness
  indep analyze -file design.txt
  indep closure -schema '...' -fds '...' -of 'A B'
  indep acyclic -schema '...'
  indep query -schema '...' -fds '...' -rows data.txt -of 'A B' [-where 'A=v'] [-limit n]`)
	os.Exit(2)
}
