// Command indepd serves a maintained database over HTTP/JSON. It loads a
// schema, runs the Graham–Yannakakis independence analysis, and opens a
// ConcurrentStore: independent schemas validate inserts concurrently behind
// per-relation lock stripes, everything else serializes through the chase —
// either way every write is validated, so the served state always has a
// weak instance.
//
// With -data the store is durable: every acknowledged write is appended to
// a write-ahead log (group commit, one fsync per commit group), restarts
// recover the exact pre-crash state, and checkpoints bound replay time. A
// graceful shutdown (SIGINT/SIGTERM) drains connections, writes a final
// checkpoint, and closes the log.
//
// Usage:
//
//	indepd -schema 'CT(C,T); CS(C,S); CHR(C,H,R)' -fds 'C -> T; C H -> R'
//	indepd -file design.txt -addr :8080 -data /var/lib/indepd
//
// Endpoints (also mounted under /v1/):
//
//	POST   /insert      {"relation":"CT","row":{"C":"cs101","T":"jones"}}
//	POST   /batch       {"ops":[{"relation":...,"row":{...}}, ...]}  (atomic)
//	DELETE /tuple       {"relation":"CT","row":{...}}
//	POST   /checkpoint  snapshot state, truncate the log (durable only)
//	GET    /window      ?attrs=C,T[&where=C=cs101&project=T&limit=10]
//	GET    /state       full state as JSON rows
//	GET    /analysis    independence analysis
//	GET    /stats       per-relation counters, validate latency, WAL depth
//
// /window computes the paper's window function: the X-total projection of
// the representative instance for the requested attribute set, evaluated
// lock-free over a consistent snapshot (relation-by-relation when the
// schema is independent, by the serialized chase otherwise).
//
// Rejected writes answer 409 with {"rejected":true}; malformed ones 400.
// If the write-ahead log cannot persist an admitted write the daemon
// answers 503 and should be restarted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"indep"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	schemaSrc := flag.String("schema", "", "schema declaration, e.g. 'R1(A,B); R2(B,C)'")
	fdSrc := flag.String("fds", "", "functional dependencies, e.g. 'A -> B; B -> C'")
	file := flag.String("file", "", "read schema/fds from a declaration file")
	data := flag.String("data", "", "data directory for the write-ahead log (empty: in-memory only)")
	noFsync := flag.Bool("nofsync", false, "durable mode without fsync (survives process crashes, not power loss)")
	flag.Parse()

	var sch *indep.Schema
	var err error
	switch {
	case *file != "":
		sch, err = indep.ParseFile(*file)
	case *schemaSrc != "":
		sch, err = indep.Parse(*schemaSrc, *fdSrc)
	default:
		err = fmt.Errorf("missing -schema (or -file)")
	}
	if err != nil {
		fatal(err)
	}
	var store *indep.ConcurrentStore
	var durable *indep.DurableStore
	if *data != "" {
		durable, err = sch.OpenDurableStore(*data, indep.DurableOptions{NoFsync: *noFsync})
		if err != nil {
			fatal(err)
		}
		store = durable.ConcurrentStore
		rec := durable.Recovery()
		log.Printf("indepd: recovered %s: checkpoint seq %d (%d tuples), %d log records over %d segments (%d bytes torn tail truncated, %d skipped)",
			*data, rec.CheckpointSeq, rec.CheckpointTuples, rec.Records, rec.Segments, rec.TruncatedBytes, rec.Skipped)
	} else {
		store, err = sch.OpenConcurrentStore()
		if err != nil {
			fatal(err)
		}
	}
	log.Printf("indepd: %s", sch)
	if store.FastPath() {
		log.Printf("indepd: schema is independent; serving with per-relation lock stripes")
	} else {
		log.Printf("indepd: schema is NOT independent; serving through the serialized chase")
	}
	log.Printf("indepd: listening on %s", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(sch, store, durable),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Restore default signal behavior immediately: a second SIGINT/SIGTERM
	// during a slow drain or a hung final checkpoint must still kill us.
	stop()
	log.Printf("indepd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("indepd: shutdown: %v", err)
	}
	if durable != nil {
		if err := durable.Checkpoint(); err != nil {
			log.Printf("indepd: final checkpoint: %v", err)
		} else {
			log.Printf("indepd: final checkpoint written")
		}
		if err := durable.Close(); err != nil {
			log.Printf("indepd: close: %v", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indepd:", err)
	os.Exit(2)
}

// server bundles the schema and store behind the HTTP API. durable is nil
// when the daemon runs in-memory.
type server struct {
	sch     *indep.Schema
	store   *indep.ConcurrentStore
	durable *indep.DurableStore
}

// newServer builds the daemon's handler; split from main so tests can mount
// it on httptest. Every route is mounted bare and under /v1/ so clients can
// pin the versioned path.
func newServer(sch *indep.Schema, store *indep.ConcurrentStore, durable *indep.DurableStore) http.Handler {
	s := &server{sch: sch, store: store, durable: durable}
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("indepd: route pattern without method: " + pattern)
		}
		mux.HandleFunc(pattern, h)
		mux.HandleFunc(method+" /v1"+path, h)
	}
	handle("POST /insert", s.handleInsert)
	handle("POST /batch", s.handleBatch)
	handle("DELETE /tuple", s.handleDelete)
	handle("POST /checkpoint", s.handleCheckpoint)
	handle("GET /window", s.handleWindow)
	handle("GET /state", s.handleState)
	handle("GET /analysis", s.handleAnalysis)
	handle("GET /stats", s.handleStats)
	return mux
}

// tupleReq is the body of /insert and /tuple.
type tupleReq struct {
	Relation string            `json:"relation"`
	Row      map[string]string `json:"row"`
}

// batchReq is the body of /batch.
type batchReq struct {
	Ops []tupleReq `json:"ops"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to 409 for constraint rejections, 503 when the
// write-ahead log could not persist an admitted write (the store needs
// operator attention), 500 when the chase ran out of budget (a server-side
// limit, not the client's fault), and 400 for malformed requests.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case indep.Rejected(err):
		code = http.StatusConflict
	case indep.DurabilityFailed(err):
		code = http.StatusServiceUnavailable
	case indep.Overloaded(err):
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, map[string]any{
		"error":    err.Error(),
		"rejected": indep.Rejected(err),
	})
}

// maxBodyBytes bounds request bodies; a /batch of tens of thousands of rows
// fits comfortably, a streamed multi-GB body does not.
const maxBodyBytes = 16 << 20

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad JSON: " + err.Error()})
		return false
	}
	return true
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.store.Insert(req.Relation, req.Row); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchReq
	if !decode(w, r, &req) {
		return
	}
	ops := make([]indep.BatchOp, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = indep.BatchOp{Rel: op.Relation, Row: op.Row}
	}
	if err := s.store.InsertBatch(ops); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "accepted": len(ops)})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	deleted, err := s.store.Delete(req.Relation, req.Row)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": deleted})
}

// parseWindowQuery decodes the /window query parameters:
//
//	attrs=C,T        window attribute set X (required; ',' or space separated)
//	where=C=cs101    equality selection on a window attribute (repeatable)
//	project=T        project the result onto a subset of attrs
//	limit=10         cap the number of returned rows
//
// It validates only shape (presence, separators, integer limit); attribute
// and value resolution happens in the store, which reports unknown names.
func parseWindowQuery(vals url.Values) (indep.WindowQuery, error) {
	var q indep.WindowQuery
	split := func(s string) []string {
		return strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' })
	}
	q.Attrs = split(vals.Get("attrs"))
	if len(q.Attrs) == 0 {
		return q, fmt.Errorf("missing attrs parameter (e.g. ?attrs=C,T)")
	}
	q.Project = split(vals.Get("project"))
	for _, w := range vals["where"] {
		attr, val, ok := strings.Cut(w, "=")
		if !ok || attr == "" {
			return q, fmt.Errorf("bad where parameter %q (want attr=value)", w)
		}
		if q.Where == nil {
			q.Where = make(map[string]string)
		}
		if prev, dup := q.Where[attr]; dup && prev != val {
			return q, fmt.Errorf("conflicting where parameters for %s", attr)
		}
		q.Where[attr] = val
	}
	if l := vals.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit parameter %q", l)
		}
		q.Limit = n
	}
	return q, nil
}

func (s *server) handleWindow(w http.ResponseWriter, r *http.Request) {
	q, err := parseWindowQuery(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	start := time.Now()
	res, err := s.store.Query(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	rows := res.Rows
	if rows == nil {
		rows = []map[string]string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"attrs":      res.Attrs,
		"rows":       rows,
		"rowCount":   len(rows),
		"total":      res.Total,
		"fastPath":   res.FastPath,
		"planCached": res.PlanCached,
		"elapsedNs":  time.Since(start).Nanoseconds(),
	})
}

func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.durable == nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "store is not durable; start indepd with -data"})
		return
	}
	start := time.Now()
	if err := s.durable.Checkpoint(); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	st := s.durable.WAL()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"elapsedNs":  time.Since(start).Nanoseconds(),
		"walBytes":   st.TotalBytes,
		"walSegment": st.ActiveSeq,
	})
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	rels := make(map[string][]map[string]string, len(s.sch.Relations()))
	for _, name := range s.sch.Relations() {
		rows, err := snap.Tuples(name)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
			return
		}
		rels[name] = rows
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": snap.Rows(), "relations": rels})
}

func (s *server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	a := s.store.Analysis()
	writeJSON(w, http.StatusOK, map[string]any{
		"independent":    a.Independent,
		"reason":         a.Reason,
		"fastPath":       s.store.FastPath(),
		"relationCovers": a.RelationCovers,
		"summary":        a.Summary(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := s.store.Stats()
	rels := make([]map[string]any, len(stats))
	for i, st := range stats {
		rels[i] = map[string]any{
			"relation": st.Relation,
			"tuples":   st.Tuples,
			"inserts":  st.Inserts,
			"rejects":  st.Rejects,
			"deletes":  st.Deletes,
			"p50Ns":    st.P50.Nanoseconds(),
			"p99Ns":    st.P99.Nanoseconds(),
		}
	}
	qs := s.store.QueryStats()
	out := map[string]any{
		"relations": rels,
		"durable":   s.durable != nil,
		"query": map[string]any{
			"queries":        qs.Queries,
			"planHits":       qs.PlanHits,
			"fastEvals":      qs.FastEvals,
			"chaseEvals":     qs.ChaseEvals,
			"snapshotReuses": qs.SnapshotReuses,
			"snapshotCopies": qs.SnapshotCopies,
		},
	}
	if s.durable != nil {
		ws := s.durable.WAL()
		out["wal"] = map[string]any{
			"segments":     ws.Segments,
			"oldestSeq":    ws.OldestSeq,
			"activeSeq":    ws.ActiveSeq,
			"activeBytes":  ws.ActiveBytes,
			"totalBytes":   ws.TotalBytes,
			"records":      ws.Records,
			"syncs":        ws.Syncs,
			"commitGroups": ws.CommitGroups,
		}
	}
	writeJSON(w, http.StatusOK, out)
}
