// Command indepd serves a maintained database over HTTP/JSON. It loads a
// schema, runs the Graham–Yannakakis independence analysis, and opens a
// ConcurrentStore: independent schemas validate inserts concurrently behind
// per-relation lock stripes, everything else serializes through the chase —
// either way every write is validated, so the served state always has a
// weak instance.
//
// With -data the store is durable: every acknowledged write is appended to
// a write-ahead log (group commit, one fsync per commit group), restarts
// recover the exact pre-crash state, and checkpoints bound replay time. A
// graceful shutdown (SIGINT/SIGTERM) drains connections, writes a final
// checkpoint, and closes the log.
//
// With -follow the daemon is a read-only replica: it keeps its own durable
// copy in -data, tails the primary's write-ahead log over /v1/repl/, and
// serves window queries from its local snapshots. Writes answer 403; reads
// carrying X-Indep-Min-Version (the position token every durable write
// returns in X-Indep-Version) wait briefly for the stream to catch up and
// answer 503 with Retry-After when still behind — read-your-writes without
// blocking the primary.
//
// Usage:
//
//	indepd -schema 'CT(C,T); CS(C,S); CHR(C,H,R)' -fds 'C -> T; C H -> R'
//	indepd -file design.txt -addr :8080 -data /var/lib/indepd
//	indepd -file design.txt -addr :8081 -data /var/lib/indepd-replica -follow http://primary:8080
//
// Endpoints (also mounted under /v1/):
//
//	POST   /insert      {"relation":"CT","row":{"C":"cs101","T":"jones"}}
//	POST   /batch       {"ops":[{"relation":...,"row":{...}}, ...]}  (atomic)
//	POST   /batchbin    length-prefixed binary batch (indep.BinBatchEncoder; atomic, JSON-free)
//	DELETE /tuple       {"relation":"CT","row":{...}}
//	POST   /checkpoint  snapshot state, truncate the log (durable only)
//	GET    /window      ?attrs=C,T[&where=C=cs101&project=T&limit=10]
//	                    (Accept: application/x-indep-bin streams the binary result)
//	GET    /state       full state as JSON rows
//	GET    /analysis    independence analysis
//	GET    /stats       per-relation counters, latency quantiles, WAL depth
//	GET    /metrics     Prometheus text exposition of every subsystem
//	GET    /healthz     process liveness (200 as soon as the listener is up)
//	GET    /readyz      503 until recovery finishes, then 200
//	GET    /v1/repl/wal       raw flushed WAL bytes by cursor (?pos=seq/off&max=&wait=1)
//	GET    /v1/repl/snapshot  encoded state snapshot for follower bootstrap
//
// /window computes the paper's window function: the X-total projection of
// the representative instance for the requested attribute set, evaluated
// lock-free over a consistent snapshot (relation-by-relation when the
// schema is independent, by the serialized chase otherwise).
//
// The listener comes up before recovery starts, so orchestrators can probe
// /healthz and /readyz while a large log replays; store-backed routes
// answer 503 until then. Every request gets a trace ID (minted, or taken
// from the X-Indep-Trace request header), echoed in the response header
// and attached to the access log, slow-operation records, and — on a
// durable store — the commit's fsync ack, so one grep over the structured
// log reconstructs a write's full path. -pprof mounts net/http/pprof under
// /debug/pprof/.
//
// Rejected writes answer 409 with {"rejected":true}; malformed ones 400.
// If the write-ahead log cannot persist an admitted write the daemon
// answers 503 and should be restarted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"indep"
	"indep/internal/cluster"
	"indep/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	schemaSrc := flag.String("schema", "", "schema declaration, e.g. 'R1(A,B); R2(B,C)'")
	fdSrc := flag.String("fds", "", "functional dependencies, e.g. 'A -> B; B -> C'")
	file := flag.String("file", "", "read schema/fds from a declaration file")
	data := flag.String("data", "", "data directory for the write-ahead log (empty: in-memory only)")
	follow := flag.String("follow", "", "primary base URL to replicate from (replica mode; requires -data, serves reads only)")
	clusterOn := flag.Bool("cluster", false, "routing-tier mode: no local store, split writes across -shards and scatter-gather windows")
	shards := flag.String("shards", "", "static shard membership for -cluster, e.g. 'shard1=http://10.0.0.1:8080,shard2=http://10.0.0.2:8080'")
	clusterParts := flag.Int("cluster-parts", 0, "hash ranges per partitionable relation (0: twice the shard count)")
	healthEvery := flag.Duration("cluster-health-interval", 5*time.Second, "shard health-check cadence in -cluster mode")
	noFsync := flag.Bool("nofsync", false, "durable mode without fsync (survives process crashes, not power loss)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("loglevel", "info", "log level: debug, info, warn, or error")
	slow := flag.Duration("slow", 100*time.Millisecond, "log operations and commits at or above this duration (0 disables)")
	traceRing := flag.Int("trace-ring", obs.DefaultRingCapacity, "flight-recorder capacity in traces (rounded up to a power of two)")
	traceSample := flag.Int("trace-sample", obs.DefaultSampleEvery, "retain 1 in N unremarkable traces (slow, errored, and rejected requests are always kept; 1 keeps everything)")
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -loglevel %q: want debug, info, warn, or error", *logLevel))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	var sch *indep.Schema
	var err error
	switch {
	case *file != "":
		sch, err = indep.ParseFile(*file)
	case *schemaSrc != "":
		sch, err = indep.Parse(*schemaSrc, *fdSrc)
	default:
		err = fmt.Errorf("missing -schema (or -file)")
	}
	if err != nil {
		fatal(err)
	}
	logger.Info("schema loaded", "schema", sch.String())

	if *clusterOn {
		if *shards == "" {
			fatal(fmt.Errorf("-cluster requires -shards (e.g. -shards 'shard1=http://host1:8080,shard2=http://host2:8080')"))
		}
		if *data != "" || *follow != "" {
			fatal(fmt.Errorf("-cluster is a stateless routing tier; it takes neither -data nor -follow"))
		}
		members, err := cluster.ParseMembers(*shards)
		if err != nil {
			fatal(err)
		}
		rt, err := cluster.NewRouter(sch, members, cluster.Options{
			Parts:  *clusterParts,
			Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		if shard, fb := rt.Fallback(); fb {
			logger.Warn("cluster mode running in single-node fallback", "shard", shard)
		} else {
			logger.Info("cluster mode", "shards", len(members), "parts", rt.Placement().Parts())
		}
		serveCluster(newRouterServer(rt, logger), *addr, *healthEvery, logger)
		return
	}

	// Listener first, store second: /healthz and /readyz must answer while
	// a large write-ahead log replays, and an orchestrator must be able to
	// tell "starting" from "dead". Store-backed routes answer 503 until the
	// store is installed.
	s := newServer(sch, logger, *pprofOn, obs.RecorderOptions{
		Capacity:    *traceRing,
		SampleEvery: *traceSample,
		Slow:        *slow,
	})
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening", "addr", ln.Addr().String())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var store *indep.ConcurrentStore
	var durable *indep.DurableStore
	var follower *indep.Follower
	switch {
	case *follow != "":
		if *data == "" {
			fatal(fmt.Errorf("-follow requires -data (the replica keeps its own durable copy)"))
		}
		follower, err = sch.OpenFollower(*data, &indep.HTTPReplSource{
			Base: strings.TrimRight(*follow, "/"),
			Wait: true,
		}, indep.FollowerOptions{
			NoFsync: *noFsync,
			Logger:  logger,
		})
		if err != nil {
			fatal(err)
		}
		durable = follower.DurableStore
		store = durable.ConcurrentStore
	case *data != "":
		durable, err = sch.OpenDurableStore(*data, indep.DurableOptions{
			NoFsync:    *noFsync,
			Logger:     logger,
			SlowCommit: *slow,
		})
		if err != nil {
			fatal(err)
		}
		store = durable.ConcurrentStore
	default:
		store, err = sch.OpenConcurrentStore()
		if err != nil {
			fatal(err)
		}
	}
	s.install(store, durable, follower, *slow)
	logger.Info("ready", "fastPath", store.FastPath(), "durable", durable != nil,
		"replica", follower != nil)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Restore default signal behavior immediately: a second SIGINT/SIGTERM
	// during a slow drain or a hung final checkpoint must still kill us.
	stop()
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	switch {
	case follower != nil:
		// Close persists the stream position, so the next start resumes
		// the tail instead of re-syncing from a snapshot.
		if err := follower.Close(); err != nil {
			logger.Error("close", "err", err)
		}
	case durable != nil:
		if err := durable.Checkpoint(); err != nil {
			logger.Error("final checkpoint", "err", err)
		} else {
			logger.Info("final checkpoint written")
		}
		if err := durable.Close(); err != nil {
			logger.Error("close", "err", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indepd:", err)
	os.Exit(2)
}

// server bundles the schema, store, and telemetry behind the HTTP API.
// store and durable are nil until install runs (durable stays nil for an
// in-memory daemon); ready gates every store-backed route, and its Store
// also publishes the store pointers to handler goroutines.
type server struct {
	sch  *indep.Schema
	log  *slog.Logger
	reg  *indep.MetricsRegistry
	http *httpStats
	mux  *http.ServeMux

	ready    atomic.Bool
	store    *indep.ConcurrentStore
	durable  *indep.DurableStore
	follower *indep.Follower // non-nil in replica mode: read-only, tails a primary

	// rec is the always-on flight recorder; API requests run under its
	// root spans and /debug/trace serves what it retained.
	rec *obs.Recorder
}

// newServer builds the daemon's handler; split from main so tests can mount
// it on httptest. Every API route is mounted bare and under /v1/ so clients
// can pin the versioned path. The handler works before install: probe and
// metrics routes answer immediately, store routes 503.
func newServer(sch *indep.Schema, logger *slog.Logger, pprofOn bool, rec obs.RecorderOptions) *server {
	reg := indep.NewMetricsRegistry()
	s := &server{
		sch:  sch,
		log:  logger,
		reg:  reg,
		http: newHTTPStats(reg),
		mux:  http.NewServeMux(),
		rec:  obs.NewRecorder(rec),
	}
	s.rec.Register(reg)
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("indepd: route pattern without method: " + pattern)
		}
		wrapped := s.wrap(pattern, s.whenReady(h))
		s.mux.HandleFunc(pattern, wrapped)
		s.mux.HandleFunc(method+" /v1"+path, wrapped)
	}
	handle("POST /insert", s.handleInsert)
	handle("POST /batch", s.handleBatch)
	handle("POST /batchbin", s.handleBatchBin)
	handle("DELETE /tuple", s.handleDelete)
	handle("POST /checkpoint", s.handleCheckpoint)
	handle("GET /window", s.handleWindow)
	handle("GET /cluster/rel", s.handleClusterRel)
	handle("GET /state", s.handleState)
	handle("GET /analysis", s.handleAnalysis)
	handle("GET /stats", s.handleStats)
	// Replication stream: followers poll these at up to per-millisecond
	// rates, so they log at Debug like the probe routes.
	s.mux.HandleFunc("GET /v1/repl/wal", s.wrapAt(slog.LevelDebug, "GET /v1/repl/wal", s.whenReady(s.handleReplWal)))
	s.mux.HandleFunc("GET /v1/repl/snapshot", s.wrapAt(slog.LevelDebug, "GET /v1/repl/snapshot", s.whenReady(s.handleReplSnapshot)))
	// Probe and scrape routes bypass the readiness gate and log at Debug:
	// a kubelet hitting /healthz every few seconds must not fill the log.
	s.mux.HandleFunc("GET /metrics", s.wrapAt(slog.LevelDebug, "GET /metrics", s.handleMetrics))
	// Flight-recorder reads are Debug-level and untraced: reading traces
	// must not evict traces. The literal /recent route wins over the {id}
	// wildcard by ServeMux precedence.
	s.mux.HandleFunc("GET /debug/trace/recent", s.wrapAt(slog.LevelDebug, "GET /debug/trace/recent", s.handleTraceRecent))
	s.mux.HandleFunc("GET /debug/trace/{id}", s.wrapAt(slog.LevelDebug, "GET /debug/trace/{id}", s.handleTraceGet))
	s.mux.HandleFunc("GET /healthz", s.wrapAt(slog.LevelDebug, "GET /healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.wrapAt(slog.LevelDebug, "GET /readyz", s.handleReadyz))
	if pprofOn {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// install wires the opened store into the server: telemetry (slow-operation
// log with trace IDs), metric registration, and the readiness flip. Runs
// once, after recovery, before any store-backed route answers. In replica
// mode follower wraps the same durable store and adds the stream metrics.
func (s *server) install(store *indep.ConcurrentStore, durable *indep.DurableStore, follower *indep.Follower, slow time.Duration) {
	store.SetTelemetry(s.log, slow)
	s.store, s.durable, s.follower = store, durable, follower
	switch {
	case follower != nil:
		follower.RegisterMetrics(s.reg)
	case durable != nil:
		durable.RegisterMetrics(s.reg)
	default:
		store.RegisterMetrics(s.reg)
	}
	s.ready.Store(true)
}

// whenReady answers 503 until install has run. The atomic.Bool is also the
// publication barrier for s.store/s.durable: install writes them before the
// Store(true), handlers read them only after Load() observes true.
func (s *server) whenReady(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"error": "store is recovering; try again shortly"})
			return
		}
		h(w, r)
	}
}

// tupleReq is the body of /insert and /tuple.
type tupleReq struct {
	Relation string            `json:"relation"`
	Row      map[string]string `json:"row"`
}

// batchReq is the body of /batch.
type batchReq struct {
	Ops []tupleReq `json:"ops"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to 409 for constraint rejections, 503 when the
// write-ahead log could not persist an admitted write (the store needs
// operator attention), 500 when the chase ran out of budget (a server-side
// limit, not the client's fault), and 400 for malformed requests.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case indep.Rejected(err):
		code = http.StatusConflict
	case indep.DurabilityFailed(err):
		code = http.StatusServiceUnavailable
	case indep.Overloaded(err):
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, map[string]any{
		"error":    err.Error(),
		"rejected": indep.Rejected(err),
	})
}

// maxBodyBytes bounds request bodies; a /batch of tens of thousands of rows
// fits comfortably, a streamed multi-GB body does not.
const maxBodyBytes = 16 << 20

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad JSON: " + err.Error()})
		return false
	}
	return true
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.readOnly(w) {
		return
	}
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.store.InsertCtx(r.Context(), req.Relation, req.Row); err != nil {
		writeErr(w, err)
		return
	}
	s.noteVersion(w)
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.readOnly(w) {
		return
	}
	var req batchReq
	if !decode(w, r, &req) {
		return
	}
	ops := make([]indep.BatchOp, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = indep.BatchOp{Rel: op.Relation, Row: op.Row}
	}
	if err := s.store.InsertBatchCtx(r.Context(), ops); err != nil {
		writeErr(w, err)
		return
	}
	s.noteVersion(w)
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "accepted": len(ops)})
}

// handleBatchBin ingests a length-prefixed binary batch (the payload a
// indep.BinBatchEncoder builds): WAL record frames, decoded and applied
// atomically without touching encoding/json anywhere on the path — the
// response is written literally too. With ?partial=1 — the mode a cluster
// router forwards sub-batches in — operations apply individually in frame
// order and the response is the per-op indep.BatchReport: rejections ride
// inside a 200 instead of aborting the batch, because a batch split across
// shards cannot be atomic anyway.
func (s *server) handleBatchBin(w http.ResponseWriter, r *http.Request) {
	if s.readOnly(w) {
		return
	}
	partial := false
	if p := r.URL.Query().Get("partial"); p != "" {
		b, err := strconv.ParseBool(p)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad partial parameter " + strconv.Quote(p)})
			return
		}
		partial = b
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	payload, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad body: " + err.Error()})
		return
	}
	if partial {
		rep, err := s.store.ApplyBinBatchPartial(r.Context(), payload)
		if err != nil {
			writeErr(w, err)
			return
		}
		s.noteVersion(w)
		writeJSON(w, http.StatusOK, rep)
		return
	}
	n, err := s.store.ApplyBinBatch(r.Context(), payload)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.noteVersion(w)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, `{"status":"ok","accepted":%d}`+"\n", n)
}

// handleClusterRel serves the shard's raw fragment of one relation as the
// binary window encoding — what a cluster router gathers before evaluating
// a scattered window. The fragment is a consistent snapshot of this shard.
func (s *server) handleClusterRel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing name parameter (e.g. ?name=CT)"})
		return
	}
	data, err := s.store.RelationBinary(name)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", indep.BinContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.readOnly(w) {
		return
	}
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	deleted, err := s.store.DeleteCtx(r.Context(), req.Relation, req.Row)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.noteVersion(w)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": deleted})
}

// parseWindowQuery decodes the /window query parameters:
//
//	attrs=C,T        window attribute set X (required; ',' or space separated)
//	where=C=cs101    equality selection on a window attribute (repeatable)
//	project=T        project the result onto a subset of attrs
//	limit=10         cap the number of returned rows
//
// It validates only shape (presence, separators, integer limit); attribute
// and value resolution happens in the store, which reports unknown names.
func parseWindowQuery(vals url.Values) (indep.WindowQuery, error) {
	var q indep.WindowQuery
	split := func(s string) []string {
		return strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' })
	}
	q.Attrs = split(vals.Get("attrs"))
	if len(q.Attrs) == 0 {
		return q, fmt.Errorf("missing attrs parameter (e.g. ?attrs=C,T)")
	}
	q.Project = split(vals.Get("project"))
	for _, w := range vals["where"] {
		attr, val, ok := strings.Cut(w, "=")
		if !ok || attr == "" {
			return q, fmt.Errorf("bad where parameter %q (want attr=value)", w)
		}
		if q.Where == nil {
			q.Where = make(map[string]string)
		}
		if prev, dup := q.Where[attr]; dup && prev != val {
			return q, fmt.Errorf("conflicting where parameters for %s", attr)
		}
		q.Where[attr] = val
	}
	if l := vals.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit parameter %q", l)
		}
		q.Limit = n
	}
	if e := vals.Get("explain"); e != "" {
		b, err := strconv.ParseBool(e)
		if err != nil {
			return q, fmt.Errorf("bad explain parameter %q (want a boolean, e.g. explain=1)", e)
		}
		q.Explain = b
	}
	return q, nil
}

func (s *server) handleWindow(w http.ResponseWriter, r *http.Request) {
	if !s.waitMinVersion(w, r) {
		return
	}
	q, err := parseWindowQuery(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	// A client accepting the binary media type gets the streamed binary
	// result: no rendered row maps, no JSON encode, counts carried in-band.
	if strings.Contains(r.Header.Get("Accept"), indep.BinContentType) {
		q.BinaryResult = true
	}
	start := time.Now()
	res, err := s.store.QueryCtx(r.Context(), q)
	if err != nil {
		writeErr(w, err)
		return
	}
	if q.BinaryResult {
		w.Header().Set("Content-Type", indep.BinContentType)
		w.WriteHeader(http.StatusOK)
		w.Write(res.Bin)
		return
	}
	rows := res.Rows
	if rows == nil {
		rows = []map[string]string{}
	}
	body := map[string]any{
		"attrs":      res.Attrs,
		"rows":       rows,
		"rowCount":   len(rows),
		"total":      res.Total,
		"fastPath":   res.FastPath,
		"planCached": res.PlanCached,
		"elapsedNs":  time.Since(start).Nanoseconds(),
	}
	if res.Explain != nil {
		body["explain"] = res.Explain
	}
	writeJSON(w, http.StatusOK, body)
}

// handleTraceGet serves one retained trace by ID. 404 means the ID was
// never retained (tail sampling dropped it) or has been evicted from the
// ring — not that the request never happened.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := strings.ToLower(r.PathValue("id"))
	if !indep.ValidTraceID(id) {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "bad trace id (want 16 hex characters)"})
		return
	}
	tv, ok := s.rec.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": "trace not retained (sampled out or evicted)"})
		return
	}
	writeJSON(w, http.StatusOK, tv)
}

// handleTraceRecent lists retained traces, newest first:
//
//	min_ms=50          only traces lasting at least 50ms
//	route=POST /insert only traces of that route
//	limit=20           cap the listing (default 50)
func (s *server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	var minDur time.Duration
	if m := vals.Get("min_ms"); m != "" {
		ms, err := strconv.ParseFloat(m, 64)
		if err != nil || ms < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad min_ms parameter %q", m)})
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 50
	if l := vals.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad limit parameter %q", l)})
			return
		}
		limit = n
	}
	traces := s.rec.Recent(minDur, vals.Get("route"), limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(traces),
		"traces": traces,
	})
}

func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.readOnly(w) {
		return
	}
	if s.durable == nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "store is not durable; start indepd with -data"})
		return
	}
	start := time.Now()
	if err := s.durable.Checkpoint(); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	st := s.durable.WAL()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"elapsedNs":  time.Since(start).Nanoseconds(),
		"walBytes":   st.TotalBytes,
		"walSegment": st.ActiveSeq,
	})
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	if !s.waitMinVersion(w, r) {
		return
	}
	snap := s.store.Snapshot()
	rels := make(map[string][]map[string]string, len(s.sch.Relations()))
	for _, name := range s.sch.Relations() {
		rows, err := snap.Tuples(name)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
			return
		}
		rels[name] = rows
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": snap.Rows(), "relations": rels})
}

func (s *server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	a := s.store.Analysis()
	writeJSON(w, http.StatusOK, map[string]any{
		"independent":    a.Independent,
		"reason":         a.Reason,
		"fastPath":       s.store.FastPath(),
		"relationCovers": a.RelationCovers,
		"summary":        a.Summary(),
	})
}

// quantNs renders a latency histogram snapshot as nanosecond quantiles.
func quantNs(h indep.HistSnapshot) map[string]any {
	p50, p90, p99, p999 := h.Quantiles()
	return map[string]any{
		"count": h.Count, "p50Ns": p50, "p90Ns": p90, "p99Ns": p99, "p999Ns": p999,
	}
}

// handleStats reports the same numbers /metrics exposes — both read the
// shared histograms and counters, so a JSON probe and a Prometheus scrape
// can never disagree.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := s.store.Stats()
	rels := make([]map[string]any, len(stats))
	for i, st := range stats {
		rels[i] = map[string]any{
			"relation": st.Relation,
			"tuples":   st.Tuples,
			"inserts":  st.Inserts,
			"rejects":  st.Rejects,
			"deletes":  st.Deletes,
			"p50Ns":    st.P50.Nanoseconds(),
			"p90Ns":    st.P90.Nanoseconds(),
			"p99Ns":    st.P99.Nanoseconds(),
			"p999Ns":   st.P999.Nanoseconds(),
		}
	}
	qs := s.store.QueryStats()
	out := map[string]any{
		"relations":   rels,
		"durable":     s.durable != nil,
		"replication": s.replStatsSection(),
		"query": map[string]any{
			"queries":        qs.Queries,
			"planHits":       qs.PlanHits,
			"fastEvals":      qs.FastEvals,
			"chaseEvals":     qs.ChaseEvals,
			"snapshotReuses": qs.SnapshotReuses,
			"snapshotCopies": qs.SnapshotCopies,
		},
	}
	if s.durable != nil {
		ws := s.durable.WAL()
		write, fsync, group := s.durable.WALLatency()
		out["wal"] = map[string]any{
			"segments":     ws.Segments,
			"oldestSeq":    ws.OldestSeq,
			"activeSeq":    ws.ActiveSeq,
			"activeBytes":  ws.ActiveBytes,
			"totalBytes":   ws.TotalBytes,
			"records":      ws.Records,
			"syncs":        ws.Syncs,
			"commitGroups": ws.CommitGroups,
			"write":        quantNs(write),
			"fsync":        quantNs(fsync),
			"recordsPerGroup": map[string]any{
				"count": group.Count,
				"mean":  group.Mean(),
				"p50":   group.Quantile(0.50),
				"p99":   group.Quantile(0.99),
			},
		}
		out["commitWait"] = quantNs(s.durable.CommitWaitStats())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the registry in Prometheus text exposition format
// 0.0.4. Works before readiness: store families appear once install has
// registered them, HTTP families from the first request on.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteTo(w)
}

// handleHealthz is process liveness: 200 as soon as the listener accepts,
// even while recovery replays the log.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is readiness: 503 until the store is installed (recovery
// finished, telemetry wired), 200 afterwards.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}
