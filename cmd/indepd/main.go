// Command indepd serves a maintained database over HTTP/JSON. It loads a
// schema, runs the Graham–Yannakakis independence analysis, and opens a
// ConcurrentStore: independent schemas validate inserts concurrently behind
// per-relation lock stripes, everything else serializes through the chase —
// either way every write is validated, so the served state always has a
// weak instance.
//
// Usage:
//
//	indepd -schema 'CT(C,T); CS(C,S); CHR(C,H,R)' -fds 'C -> T; C H -> R'
//	indepd -file design.txt -addr :8080
//
// Endpoints:
//
//	POST   /insert    {"relation":"CT","row":{"C":"cs101","T":"jones"}}
//	POST   /batch     {"ops":[{"relation":...,"row":{...}}, ...]}  (atomic)
//	DELETE /tuple     {"relation":"CT","row":{...}}
//	GET    /state     full state as JSON rows
//	GET    /analysis  independence analysis
//	GET    /stats     per-relation counters and validate latency
//
// Rejected writes answer 409 with {"rejected":true}; malformed ones 400.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"indep"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	schemaSrc := flag.String("schema", "", "schema declaration, e.g. 'R1(A,B); R2(B,C)'")
	fdSrc := flag.String("fds", "", "functional dependencies, e.g. 'A -> B; B -> C'")
	file := flag.String("file", "", "read schema/fds from a declaration file")
	flag.Parse()

	var sch *indep.Schema
	var err error
	switch {
	case *file != "":
		sch, err = indep.ParseFile(*file)
	case *schemaSrc != "":
		sch, err = indep.Parse(*schemaSrc, *fdSrc)
	default:
		err = fmt.Errorf("missing -schema (or -file)")
	}
	if err != nil {
		fatal(err)
	}
	store, err := sch.OpenConcurrentStore()
	if err != nil {
		fatal(err)
	}
	log.Printf("indepd: %s", sch)
	if store.FastPath() {
		log.Printf("indepd: schema is independent; serving with per-relation lock stripes")
	} else {
		log.Printf("indepd: schema is NOT independent; serving through the serialized chase")
	}
	log.Printf("indepd: listening on %s", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(sch, store),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(srv.ListenAndServe())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indepd:", err)
	os.Exit(2)
}

// server bundles the schema and store behind the HTTP API.
type server struct {
	sch   *indep.Schema
	store *indep.ConcurrentStore
}

// newServer builds the daemon's handler; split from main so tests can mount
// it on httptest.
func newServer(sch *indep.Schema, store *indep.ConcurrentStore) http.Handler {
	s := &server{sch: sch, store: store}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("DELETE /tuple", s.handleDelete)
	mux.HandleFunc("GET /state", s.handleState)
	mux.HandleFunc("GET /analysis", s.handleAnalysis)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// tupleReq is the body of /insert and /tuple.
type tupleReq struct {
	Relation string            `json:"relation"`
	Row      map[string]string `json:"row"`
}

// batchReq is the body of /batch.
type batchReq struct {
	Ops []tupleReq `json:"ops"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to 409 for constraint rejections, 500 when the
// chase ran out of budget (a server-side limit, not the client's fault),
// and 400 for malformed requests.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case indep.Rejected(err):
		code = http.StatusConflict
	case indep.Overloaded(err):
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, map[string]any{
		"error":    err.Error(),
		"rejected": indep.Rejected(err),
	})
}

// maxBodyBytes bounds request bodies; a /batch of tens of thousands of rows
// fits comfortably, a streamed multi-GB body does not.
const maxBodyBytes = 16 << 20

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad JSON: " + err.Error()})
		return false
	}
	return true
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.store.Insert(req.Relation, req.Row); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchReq
	if !decode(w, r, &req) {
		return
	}
	ops := make([]indep.BatchOp, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = indep.BatchOp{Rel: op.Relation, Row: op.Row}
	}
	if err := s.store.InsertBatch(ops); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "accepted": len(ops)})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	deleted, err := s.store.Delete(req.Relation, req.Row)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": deleted})
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	rels := make(map[string][]map[string]string, len(s.sch.Relations()))
	for _, name := range s.sch.Relations() {
		rows, err := snap.Tuples(name)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
			return
		}
		rels[name] = rows
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": snap.Rows(), "relations": rels})
}

func (s *server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	a := s.store.Analysis()
	writeJSON(w, http.StatusOK, map[string]any{
		"independent":    a.Independent,
		"reason":         a.Reason,
		"fastPath":       s.store.FastPath(),
		"relationCovers": a.RelationCovers,
		"summary":        a.Summary(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := s.store.Stats()
	out := make([]map[string]any, len(stats))
	for i, st := range stats {
		out[i] = map[string]any{
			"relation": st.Relation,
			"tuples":   st.Tuples,
			"inserts":  st.Inserts,
			"rejects":  st.Rejects,
			"deletes":  st.Deletes,
			"p50Ns":    st.P50.Nanoseconds(),
			"p99Ns":    st.P99.Nanoseconds(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}
