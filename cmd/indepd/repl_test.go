package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"indep"
	"indep/internal/obs"
)

// doReq performs a prepared request and decodes its JSON body.
func doReq(t *testing.T, req *http.Request) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	decodeBody(resp, &out)
	return resp, out
}

// decodeBody drains and closes a response body into v, reporting whether it
// parsed as JSON.
func decodeBody(resp *http.Response, v any) bool {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v) == nil
}

// newReplicaPair mounts a durable primary and a follower replica tailing it
// over HTTP — the two-daemon topology `indepd -data` + `indepd -follow`
// runs, compressed into one process.
func newReplicaPair(t *testing.T, schemaSrc, fdSrc string) (primary, replica *httptest.Server, f *indep.Follower) {
	t.Helper()
	primary, _ = newDurableTestServer(t, t.TempDir(), schemaSrc, fdSrc)

	sch, err := indep.Parse(schemaSrc, fdSrc)
	if err != nil {
		t.Fatal(err)
	}
	f, err = sch.OpenFollower(t.TempDir(), &indep.HTTPReplSource{Base: primary.URL},
		indep.FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	s := newServer(sch, discardLogger(), false, obs.RecorderOptions{SampleEvery: 1})
	s.install(f.ConcurrentStore, f.DurableStore, f, 0)
	replica = httptest.NewServer(s)
	t.Cleanup(replica.Close)
	return primary, replica, f
}

// TestReplicaPairServesFollowerReads covers the daemon-level replication
// contract: writes return position tokens, the replica converges and
// serves them, writes to the replica answer 403, and both sides report
// their role under /stats.
func TestReplicaPairServesFollowerReads(t *testing.T) {
	primary, replica, _ := newReplicaPair(t, "CT(C,T); CS(C,S)", "C -> T")

	var version string
	for i := 0; i < 20; i++ {
		resp, body := do(t, "POST", primary.URL+"/insert", map[string]any{
			"relation": "CT", "row": map[string]string{"C": fmt.Sprintf("c%02d", i), "T": "t"},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %d %v", i, resp.StatusCode, body)
		}
		version = resp.Header.Get("X-Indep-Version")
	}
	if version == "" || !strings.Contains(version, "/") {
		t.Fatalf("write returned no position token, got %q", version)
	}

	// A token-gated read on the replica returns the writes once applied.
	req, _ := http.NewRequest("GET", replica.URL+"/window?attrs=C,T", nil)
	req.Header.Set("X-Indep-Min-Version", version)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := doReq(t, req)
		if resp.StatusCode == http.StatusOK {
			if n := body["total"].(float64); n != 20 {
				t.Fatalf("replica window total %v, want 20", n)
			}
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("replica read: %d %v", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("503 without Retry-After")
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %v", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The replica refuses writes and checkpoints.
	for _, probe := range []struct {
		method, path string
		body         any
	}{
		{"POST", "/insert", map[string]any{"relation": "CT", "row": map[string]string{"C": "x", "T": "y"}}},
		{"POST", "/batch", map[string]any{"ops": []any{}}},
		{"DELETE", "/tuple", map[string]any{"relation": "CT", "row": map[string]string{"C": "c00", "T": "t"}}},
		{"POST", "/checkpoint", nil},
	} {
		resp, body := do(t, probe.method, replica.URL+probe.path, probe.body)
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s on replica: %d %v, want 403", probe.method, probe.path, resp.StatusCode, body)
		}
	}

	// Roles under /stats.
	if _, body := do(t, "GET", primary.URL+"/stats", nil); body["replication"].(map[string]any)["role"] != "primary" {
		t.Fatalf("primary role: %v", body["replication"])
	}
	_, body := do(t, "GET", replica.URL+"/stats", nil)
	repl := body["replication"].(map[string]any)
	if repl["role"] != "follower" {
		t.Fatalf("replica role: %v", repl)
	}
	if stream := repl["stream"].(map[string]any); stream["applied_records"].(float64) == 0 {
		t.Fatalf("replica stream stats empty: %v", stream)
	}

	// A bad min-version token is the client's fault.
	req, _ = http.NewRequest("GET", replica.URL+"/window?attrs=C", nil)
	req.Header.Set("X-Indep-Min-Version", "not-a-position")
	if resp, _ := doReq(t, req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad token: %d, want 400", resp.StatusCode)
	}
}

// TestReplWalEndpointEdges pins the stream endpoint's error contract: 400
// for unparseable cursors, 200-empty for not-yet-written positions, and 410
// once a checkpoint truncates the requested segment.
func TestReplWalEndpointEdges(t *testing.T) {
	primary, _ := newDurableTestServer(t, t.TempDir(), "CT(C,T)", "C -> T")
	for i := 0; i < 5; i++ {
		do(t, "POST", primary.URL+"/insert", map[string]any{
			"relation": "CT", "row": map[string]string{"C": fmt.Sprintf("c%d", i), "T": "t"},
		})
	}

	if resp, _ := do(t, "GET", primary.URL+"/v1/repl/wal?pos=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pos: %d, want 400", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", primary.URL+"/v1/repl/wal", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing pos: %d, want 400", resp.StatusCode)
	}

	// A segment far in the future exists only after rotations: empty 200.
	req, _ := http.NewRequest("GET", primary.URL+"/v1/repl/wal?pos=999999/0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("future pos: %d, want 200", resp.StatusCode)
	}

	// Checkpoint truncates segment 1 away: 410 tells followers to re-sync.
	if resp, body := do(t, "POST", primary.URL+"/checkpoint", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, body)
	}
	if resp, _ := do(t, "GET", primary.URL+"/v1/repl/wal?pos=1/16", nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("truncated pos: %d, want 410", resp.StatusCode)
	}

	// The snapshot endpoint returns a tail position and a decodable body.
	resp, err = http.Get(primary.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	if tail := resp.Header.Get(indep.ReplHeaderTail); !strings.HasSuffix(tail, "/0") {
		t.Fatalf("snapshot tail %q, want a segment start", tail)
	}
}

// TestReadYourWritesUnderConcurrentLoad is the satellite acceptance drill:
// concurrent writers on the primary, each immediately reading its own write
// through the replica with the returned token. Every read must either serve
// a state containing the write or answer 503 and succeed on retry — never
// return a state that misses it.
func TestReadYourWritesUnderConcurrentLoad(t *testing.T) {
	primary, replica, _ := newReplicaPair(t, "CT(C,T)", "C -> T")

	const writers, writes = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < writes; i++ {
				key := fmt.Sprintf("w%d-%d", wr, i)
				resp, body := do(t, "POST", primary.URL+"/insert", map[string]any{
					"relation": "CT", "row": map[string]string{"C": key, "T": "t-" + key},
				})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("insert %s: %d %v", key, resp.StatusCode, body)
					return
				}
				token := resp.Header.Get("X-Indep-Version")
				if token == "" {
					errs <- fmt.Errorf("insert %s: no version token", key)
					return
				}

				deadline := time.Now().Add(10 * time.Second)
				for {
					req, _ := http.NewRequest("GET",
						replica.URL+"/window?attrs=C,T&where=C="+key, nil)
					req.Header.Set("X-Indep-Min-Version", token)
					resp, err := client.Do(req)
					if err != nil {
						errs <- err
						return
					}
					var out map[string]any
					okJSON := decodeBody(resp, &out)
					switch {
					case resp.StatusCode == http.StatusOK:
						if !okJSON || out["total"].(float64) != 1 {
							errs <- fmt.Errorf("read-your-writes miss for %s with token %s: %v", key, token, out)
							return
						}
					case resp.StatusCode == http.StatusServiceUnavailable:
						if time.Now().After(deadline) {
							errs <- fmt.Errorf("replica never reached %s", token)
							return
						}
						time.Sleep(5 * time.Millisecond)
						continue
					default:
						errs <- fmt.Errorf("read %s: unexpected %d %v", key, resp.StatusCode, out)
						return
					}
					break
				}
			}
		}(wr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
