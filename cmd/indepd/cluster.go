package main

// The -cluster routing tier: indepd without a store of its own, splitting
// writes across shard daemons by the placement rule (see internal/cluster)
// and answering windows by scatter-gather. It is a plain stateless HTTP
// tier: run several routers over the same -shards list for availability;
// they compute identical placements.

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"indep"
	"indep/internal/cluster"
)

// routerServer is the cluster-mode handler: the same surface shape as the
// single-node server (insert/batch/batchbin/tuple/window plus probes and
// metrics), backed by a cluster.Router instead of a store, with the
// /cluster/status and /cluster/health routes the routing tier adds.
type routerServer struct {
	log  *slog.Logger
	reg  *indep.MetricsRegistry
	http *httpStats
	mux  *http.ServeMux
	rt   *cluster.Router
}

func newRouterServer(rt *cluster.Router, logger *slog.Logger) *routerServer {
	reg := indep.NewMetricsRegistry()
	s := &routerServer{
		log:  logger,
		reg:  reg,
		http: newHTTPStats(reg),
		mux:  http.NewServeMux(),
		rt:   rt,
	}
	rt.RegisterMetrics(reg)
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, _ := cutPattern(pattern)
		wrapped := s.wrap(pattern, h)
		s.mux.HandleFunc(pattern, wrapped)
		s.mux.HandleFunc(method+" /v1"+path, wrapped)
	}
	handle("POST /insert", s.handleInsert)
	handle("POST /batch", s.handleBatch)
	handle("POST /batchbin", s.handleBatchBin)
	handle("DELETE /tuple", s.handleDelete)
	handle("GET /window", s.handleWindow)
	handle("GET /cluster/status", s.handleStatus)
	handle("GET /cluster/health", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WriteTo(w)
	})
	ok := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	}
	s.mux.HandleFunc("GET /healthz", ok)
	s.mux.HandleFunc("GET /readyz", ok) // a router has no recovery phase
	return s
}

func cutPattern(pattern string) (method, path string, ok bool) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:], true
		}
	}
	panic("indepd: route pattern without method: " + pattern)
}

func (s *routerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// wrap is the router's request middleware: trace header echo, access log,
// and the indep_http_* metrics — the same families the shard daemons
// expose, so one dashboard covers both tiers.
func (s *routerServer) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.http.routeHist(route)
	return func(w http.ResponseWriter, r *http.Request) {
		trace := requestTraceID(r)
		w.Header().Set(traceHeader, trace)
		sw := &statusWriter{ResponseWriter: w}
		s.http.inflight.Add(1)
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		s.http.inflight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.http.note(route, r.Method, sw.status, d, hist)
		s.log.Debug("request", "route", route, "status", sw.status,
			"bytes", sw.bytes, "d", d, "trace", trace)
	}
}

// writeRouteErr maps router errors: an unreachable or failing shard is 503
// with Retry-After (the cluster heals by the shard coming back, not by the
// client giving up), a rejection is 409, anything else 400.
func (s *routerServer) writeRouteErr(w http.ResponseWriter, err error, extra map[string]any) {
	var se *cluster.ShardError
	if errors.As(err, &se) && !indep.Rejected(err) {
		w.Header().Set("Retry-After", "1")
		body := map[string]any{"error": err.Error(), "shard": se.Shard}
		for k, v := range extra {
			body[k] = v
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeErr(w, err)
}

func (s *routerServer) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.rt.Insert(r.Context(), req.Relation, req.Row); err != nil {
		s.writeRouteErr(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *routerServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req tupleReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.rt.Delete(r.Context(), req.Relation, req.Row); err != nil {
		s.writeRouteErr(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleBatch accepts the JSON batch shape and routes it per owner. The
// response is the reassembled per-op report; unlike a single node's atomic
// /batch, rejections are per-op and do not void the rest of the batch.
func (s *routerServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchReq
	if !decode(w, r, &req) {
		return
	}
	enc := indep.NewBinBatchEncoder(s.rt.Schema())
	for _, op := range req.Ops {
		if err := enc.Add(op.Relation, op.Row); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
	}
	s.routeBatch(w, r, enc.Bytes())
}

// handleBatchBin accepts the binary batch payload and routes it per owner.
func (s *routerServer) handleBatchBin(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	payload, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad body: " + err.Error()})
		return
	}
	s.routeBatch(w, r, payload)
}

func (s *routerServer) routeBatch(w http.ResponseWriter, r *http.Request, payload []byte) {
	rep, err := s.rt.Batch(r.Context(), payload)
	if err != nil {
		if rep == nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		// Some shards failed after others applied their sub-batches: report
		// what happened and let the client retry the payload — re-applies
		// are no-ops (see cluster.Options.Retries for the one exception),
		// so the retry converges.
		s.writeRouteErr(w, err, map[string]any{"report": rep})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *routerServer) handleWindow(w http.ResponseWriter, r *http.Request) {
	q, err := parseWindowQuery(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	start := time.Now()
	res, err := s.rt.Window(r.Context(), q)
	if err != nil {
		s.writeRouteErr(w, err, nil)
		return
	}
	rows := res.Rows
	if rows == nil {
		rows = []map[string]string{}
	}
	body := map[string]any{
		"attrs":      res.Attrs,
		"rows":       rows,
		"rowCount":   len(rows),
		"total":      res.Total,
		"fastPath":   res.FastPath,
		"planCached": res.PlanCached,
		"elapsedNs":  time.Since(start).Nanoseconds(),
	}
	if res.Explain != nil {
		body["explain"] = res.Explain
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *routerServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.rt.Status())
}

// handleHealth actively probes every shard (GET /cluster/status reports
// passively observed health; this one spends round-trips).
func (s *routerServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": s.rt.CheckHealth(r.Context())})
}

// serveCluster runs the routing tier to completion: listener, background
// health loop, signal-driven graceful shutdown. There is no store to drain
// or checkpoint — the router's only state is the health table.
func serveCluster(s *routerServer, addr string, healthEvery time.Duration, logger *slog.Logger) {
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening", "addr", ln.Addr().String())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s.rt.CheckHealth(ctx) // prime the health table before the first scrape
	if healthEvery > 0 {
		go s.healthLoop(ctx, healthEvery)
	}
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
}

// healthLoop pings all shards on a fixed cadence so /cluster/status stays
// fresh even on an idle router; canceled by daemon shutdown.
func (s *routerServer) healthLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for _, h := range s.rt.CheckHealth(ctx) {
				if !h.Healthy {
					s.log.Warn("shard unhealthy", "shard", h.Name, "error", h.LastError,
						"failures", strconv.FormatUint(h.Failures, 10))
				}
			}
		}
	}
}
