package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"indep"
	"indep/internal/obs"
)

// syncBuffer is an io.Writer safe for the daemon's concurrent slog calls
// (handlers, the WAL group-commit goroutine, and recovery all log).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// scrape fetches /metrics and strict-parses the exposition.
func scrape(t *testing.T, url string) []obs.ParsedFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	if err := obs.LintExposition(fams); err != nil {
		t.Fatalf("exposition fails lint: %v", err)
	}
	return fams
}

func family(fams []obs.ParsedFamily, name string) *obs.ParsedFamily {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// TestMetricsExposition drives every subsystem (engine writes and rejects,
// window queries on both paths, WAL commits, a checkpoint) and asserts the
// scrape parses strictly, lints cleanly, and covers the layers the issue
// names: engine, WAL, query, chase, recovery.
func TestMetricsExposition(t *testing.T) {
	ts, store := newDurableTestServer(t, t.TempDir(), "CT(C,T); CS(C,S)", "C -> T")

	for _, op := range []map[string]any{
		{"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"}},
		{"relation": "CS", "row": map[string]string{"C": "cs101", "S": "ada"}},
	} {
		if resp, out := do(t, "POST", ts.URL+"/insert", op); resp.StatusCode != http.StatusOK {
			t.Fatalf("insert: %d %v", resp.StatusCode, out)
		}
	}
	// A rejected insert (C -> T violation) must count as a reject.
	resp, _ := do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "smith"}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting insert: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/window?attrs=C,T,S", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("window: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "POST", ts.URL+"/checkpoint", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}

	fams := scrape(t, ts.URL)
	mustHave := []string{
		// engine
		"indep_engine_inserts_total",
		"indep_engine_rejects_total",
		"indep_engine_tuples",
		"indep_engine_op_duration_seconds",
		"indep_engine_commits_total",
		"indep_engine_fast_path",
		// query
		"indep_query_windows_total",
		"indep_query_fast_evals_total",
		"indep_query_window_duration_seconds",
		// chase (registered even when the fast path never chases)
		"indep_chase_invocations_total",
		// WAL + durability
		"indep_wal_records_total",
		"indep_wal_fsync_duration_seconds",
		"indep_wal_commit_group_records",
		"indep_durable_commit_wait_seconds",
		"indep_checkpoints_total",
		// recovery
		"indep_recovery_replayed_records",
		"indep_recovery_duration_seconds",
		// HTTP layer
		"indep_http_requests_total",
		"indep_http_request_duration_seconds",
	}
	for _, name := range mustHave {
		if family(fams, name) == nil {
			t.Errorf("scrape is missing family %s", name)
		}
	}

	// The reject above must be visible with its relation label.
	rejects := family(fams, "indep_engine_rejects_total")
	if rejects == nil {
		t.Fatal("no rejects family")
	}
	found := false
	for _, s := range rejects.Samples {
		if s.Label("relation") == "CT" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("indep_engine_rejects_total{relation=CT} not >= 1: %+v", rejects.Samples)
	}

	// /stats and /metrics must agree on the insert count (single source of
	// truth): sum the per-relation counter samples and compare.
	inserts := family(fams, "indep_engine_inserts_total")
	var metricInserts float64
	for _, s := range inserts.Samples {
		metricInserts += s.Value
	}
	var statInserts float64
	_, out := do(t, "GET", ts.URL+"/stats", nil)
	for _, rel := range out["relations"].([]any) {
		statInserts += rel.(map[string]any)["inserts"].(float64)
	}
	if metricInserts != statInserts {
		t.Errorf("inserts: /metrics says %v, /stats says %v", metricInserts, statInserts)
	}
	if wal, ok := out["wal"].(map[string]any); !ok {
		t.Error("/stats on a durable store has no wal section")
	} else if _, ok := wal["fsync"].(map[string]any); !ok {
		t.Errorf("/stats wal has no fsync quantiles: %v", wal)
	}

	_ = store
}

// TestReadinessGate starts the handler without a store: liveness answers
// immediately, readiness and store routes 503, and both flip after install.
func TestReadinessGate(t *testing.T) {
	sch, err := indep.Parse("CT(C,T)", "C -> T")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(sch, discardLogger(), false, obs.RecorderOptions{SampleEvery: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	if resp, _ := do(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before install: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before install: %d, want 503", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/stats", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stats before install: %d, want 503", resp.StatusCode)
	}
	// /metrics already serves (HTTP families only).
	scrape(t, ts.URL)

	store, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	s.install(store, nil, nil, 0)

	if resp, _ := do(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after install: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "c1", "T": "t1"}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after install: %d", resp.StatusCode)
	}
}

// TestTraceEndToEnd sends an insert with a caller-chosen trace ID and
// asserts the ID is echoed in the response header and appears in both the
// access log and the durable commit ack — one grep reconstructs the write
// path from HTTP ingress to fsync.
func TestTraceEndToEnd(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	sch, err := indep.Parse("CT(C,T)", "C -> T")
	if err != nil {
		t.Fatal(err)
	}
	store, err := sch.OpenDurableStore(t.TempDir(), indep.DurableOptions{NoFsync: true, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s := newServer(sch, logger, false, obs.RecorderOptions{SampleEvery: 1})
	s.install(store.ConcurrentStore, store, nil, 0)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	const trace = "deadbeefcafe0123"
	req, err := http.NewRequest("POST", ts.URL+"/insert",
		strings.NewReader(`{"relation":"CT","row":{"C":"cs101","T":"jones"}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Indep-Trace", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Indep-Trace"); got != trace {
		t.Fatalf("response trace header = %q, want %q", got, trace)
	}

	// The handler answered after the commit hook's wait returned, so both
	// lines are flushed by now.
	logs := logBuf.String()
	var access, durable bool
	for _, line := range strings.Split(logs, "\n") {
		if !strings.Contains(line, "trace="+trace) {
			continue
		}
		if strings.Contains(line, "msg=request") {
			access = true
		}
		if strings.Contains(line, `msg="commit durable"`) {
			durable = true
		}
	}
	if !access || !durable {
		t.Fatalf("trace %s: access log=%v, durable ack=%v\nlogs:\n%s", trace, access, durable, logs)
	}

	// A request without the header gets a minted 16-hex ID.
	resp2, _ := do(t, "GET", ts.URL+"/stats", nil)
	minted := resp2.Header.Get("X-Indep-Trace")
	if len(minted) != 16 {
		t.Fatalf("minted trace %q, want 16 hex chars", minted)
	}
}

// TestPprofGate checks /debug/pprof/ is mounted only behind -pprof.
func TestPprofGate(t *testing.T) {
	sch, err := indep.Parse("CT(C,T)", "C -> T")
	if err != nil {
		t.Fatal(err)
	}
	for _, on := range []bool{false, true} {
		s := newServer(sch, discardLogger(), on, obs.RecorderOptions{SampleEvery: 1})
		ts := httptest.NewServer(s)
		resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if on && resp.StatusCode != http.StatusOK {
			t.Errorf("-pprof on: /debug/pprof/cmdline = %d, want 200", resp.StatusCode)
		}
		if !on && resp.StatusCode != http.StatusNotFound {
			t.Errorf("-pprof off: /debug/pprof/cmdline = %d, want 404", resp.StatusCode)
		}
		ts.Close()
	}
}
