package main

import (
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"indep/internal/obs"
)

// httpStats owns the daemon's HTTP-level metric families. Routes are static
// so their latency histograms register up front; request counters carry a
// status label whose values arrive at runtime, so series are created lazily
// behind a mutex (registration is cheap and happens at most once per
// route/method/status triple).
type httpStats struct {
	reg *obs.Registry

	mu       sync.Mutex
	requests map[string]*obs.Counter   // route|method|status
	inflight *obs.Gauge                // requests currently being served
	lat      map[string]*obs.Histogram // route
}

func newHTTPStats(reg *obs.Registry) *httpStats {
	return &httpStats{
		reg:      reg,
		requests: make(map[string]*obs.Counter),
		inflight: reg.Gauge("indep_http_inflight_requests", "requests currently being served"),
		lat:      make(map[string]*obs.Histogram),
	}
}

// routeHist returns the latency histogram for a route, registering it on
// first use (setup time, single goroutine).
func (h *httpStats) routeHist(route string) *obs.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist, ok := h.lat[route]
	if !ok {
		hist = h.reg.Histogram("indep_http_request_duration_seconds",
			"wall time per served request", 1e-9, obs.L("route", route))
		h.lat[route] = hist
	}
	return hist
}

// note records one finished request.
func (h *httpStats) note(route, method string, status int, d time.Duration, hist *obs.Histogram) {
	hist.Observe(int64(d))
	key := route + "|" + method + "|" + statusText(status)
	h.mu.Lock()
	c, ok := h.requests[key]
	if !ok {
		c = h.reg.Counter("indep_http_requests_total", "requests served",
			obs.L("route", route), obs.L("method", method), obs.L("status", statusText(status)))
		h.requests[key] = c
	}
	h.mu.Unlock()
	c.Inc()
}

// statusText renders a status code as a label value without fmt.
func statusText(code int) string {
	if code < 0 || code > 999 {
		return "0"
	}
	buf := [3]byte{'0', '0', '0'}
	for i := 2; i >= 0 && code > 0; i-- {
		buf[i] = byte('0' + code%10)
		code /= 10
	}
	return string(buf[:])
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// traceHeader is the request/response header carrying the trace ID. A
// well-formed client-supplied ID (16 hex characters; uppercase accepted and
// normalized) is honored, so a gateway can stitch its own logs to the
// daemon's; anything else is replaced by a minted ID — trace IDs label
// metrics, logs, and the flight recorder, so hostile or sloppy clients must
// not be able to inject unbounded junk. The response always echoes the ID
// actually used.
const traceHeader = "X-Indep-Trace"

// requestTraceID resolves the trace ID for one request.
func requestTraceID(r *http.Request) string {
	trace := r.Header.Get(traceHeader)
	if trace != "" {
		trace = strings.ToLower(trace)
		if obs.ValidTraceID(trace) {
			return trace
		}
	}
	return obs.NewTraceID()
}

// wrap is the access-log and metrics middleware, applied per route so the
// log and the metric labels carry the registered pattern rather than the
// raw URL (which may embed user data).
func (s *server) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.wrapAt(slog.LevelInfo, route, h)
}

// wrapAt is wrap with an explicit access-log level; probe and scrape
// routes log at Debug so periodic health checks don't fill the log.
//
// Info-level (API) routes additionally run under the flight recorder: the
// middleware opens the request's root span, handlers grow the span tree
// through the store and engine, and on completion the recorder decides —
// tail-based — whether the trace is worth keeping. Debug-level routes
// (probes, scrapes, the /debug/trace endpoints themselves) are never
// traced, so a kubelet can't flood the sampler.
func (s *server) wrapAt(level slog.Level, route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.http.routeHist(route)
	traced := level >= slog.LevelInfo
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := requestTraceID(r)
		w.Header().Set(traceHeader, trace)
		ctx := obs.WithTrace(r.Context(), trace)
		var tr *obs.RequestTrace
		if traced {
			var root *obs.Span
			tr, root = s.rec.Start(trace, route)
			if root.Recording() {
				root.SetAttr("method", r.Method)
				ctx = obs.ContextWithSpan(ctx, root)
			}
		}
		sw := &statusWriter{ResponseWriter: w}
		s.http.inflight.Add(1)
		h(sw, r.WithContext(ctx))
		s.http.inflight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		if tr != nil {
			root := tr.Root()
			root.SetInt("status", int64(sw.status))
			root.SetInt("resp_bytes", sw.bytes)
			s.rec.Finish(tr, sw.status)
		}
		s.http.note(route, r.Method, sw.status, d, hist)
		s.log.Log(r.Context(), level, "request",
			"trace", trace,
			"method", r.Method,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration", d)
	}
}
