package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"indep"
)

// TestBatchBinEndpoint pins the binary ingest contract end to end: a 64-op
// BinBatchEncoder payload POSTed to /v1/batchbin lands atomically, and the
// binary window response decodes to the ingested rows.
func TestBatchBinEndpoint(t *testing.T) {
	ts, store := newTestServer(t, "CT(C,T); CS(C,S)", "C -> T")
	sch, err := indep.Parse("CT(C,T); CS(C,S)", "C -> T")
	if err != nil {
		t.Fatal(err)
	}
	enc := indep.NewBinBatchEncoder(sch)
	for i := 0; i < 32; i++ {
		c := fmt.Sprintf("c%d", i)
		if err := enc.Add("CT", map[string]string{"C": c, "T": "t" + c}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Add("CS", map[string]string{"C": c, "S": "s" + c}); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Len() != 64 {
		t.Fatalf("encoder holds %d ops, want 64", enc.Len())
	}
	resp, err := http.Post(ts.URL+"/v1/batchbin", indep.BinContentType, bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batchbin: %s: %s", resp.Status, body)
	}
	if want := `{"status":"ok","accepted":64}` + "\n"; string(body) != want {
		t.Fatalf("batchbin body %q, want %q", body, want)
	}
	if store.Rows() != 64 {
		t.Fatalf("store has %d rows, want 64", store.Rows())
	}

	// Binary window read-back via the Accept header.
	req, err := http.NewRequest("GET", ts.URL+"/v1/window?attrs=C,T&limit=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", indep.BinContentType)
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wbody, _ := io.ReadAll(wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("binary window: %s: %s", wresp.Status, wbody)
	}
	if ct := wresp.Header.Get("Content-Type"); ct != indep.BinContentType {
		t.Fatalf("binary window Content-Type %q", ct)
	}
	res, err := indep.DecodeWindowBinary(wbody)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 32 || len(res.Rows) != 5 {
		t.Fatalf("binary window total=%d rows=%d, want 32/5", res.Total, len(res.Rows))
	}
	for _, row := range res.Rows {
		if row["T"] != "t"+row["C"] {
			t.Fatalf("binary window row %v inconsistent", row)
		}
	}

	// A rejecting binary batch maps to 409, same as the JSON path.
	enc.Reset()
	enc.Add("CT", map[string]string{"C": "c0", "T": "mismatch"})
	resp, err = http.Post(ts.URL+"/v1/batchbin", indep.BinContentType, bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rejecting batchbin: %s, want 409", resp.Status)
	}

	// A malformed body maps to 400.
	resp, err = http.Post(ts.URL+"/v1/batchbin", indep.BinContentType, bytes.NewReader([]byte("not frames")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batchbin: %s, want 400", resp.Status)
	}
}
