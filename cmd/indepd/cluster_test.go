package main

// End-to-end drills for the -cluster routing tier: real shard daemons
// (httptest servers running the single-node handler) fronted by a real
// routerServer, all over actual HTTP — the only pieces not from production
// are the listeners. The 503 drill replaces one shard with a closed port
// and pins the router's unavailability contract: 503, Retry-After, the
// shard's name, and a partial report the client can act on.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"indep"
	"indep/internal/cluster"
)

const clusterSchema = "CT(C,T); CS(C,S); CHR(C,H,R)"
const clusterFDs = "C -> T; C H -> R"

// newClusterTestServer stands up n shard daemons and a router over them.
// deadShards names shards whose daemon is shut down before the router
// starts (the URL keeps refusing connections).
func newClusterTestServer(t *testing.T, n int, deadShards ...string) (*httptest.Server, *cluster.Router) {
	t.Helper()
	dead := make(map[string]bool, len(deadShards))
	for _, s := range deadShards {
		dead[s] = true
	}
	var members []cluster.Member
	for i := 1; i <= n; i++ {
		name := "shard" + string(rune('0'+i))
		shard, _ := newTestServer(t, clusterSchema, clusterFDs)
		if dead[name] {
			shard.Close()
		}
		members = append(members, cluster.Member{Name: name, URL: shard.URL})
	}
	sch, err := indep.Parse(clusterSchema, clusterFDs)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(sch, members, cluster.Options{
		Retries: 1,
		Backoff: time.Millisecond,
		Timeout: 5 * time.Second,
		Logger:  discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newRouterServer(rt, discardLogger()))
	t.Cleanup(ts.Close)
	return ts, rt
}

// TestClusterEndToEnd drives inserts, a batch, a rejection, and a window
// through the router's HTTP API against live shard daemons.
func TestClusterEndToEnd(t *testing.T) {
	ts, _ := newClusterTestServer(t, 3)

	resp, _ := do(t, http.MethodPost, ts.URL+"/v1/insert",
		map[string]any{"relation": "CT", "row": map[string]string{"C": "c1", "T": "t1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d", resp.StatusCode)
	}
	// The same C with a different T violates C -> T on whatever shard owns it.
	resp, body := do(t, http.MethodPost, ts.URL+"/v1/insert",
		map[string]any{"relation": "CT", "row": map[string]string{"C": "c1", "T": "t2"}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting insert: %d (%v)", resp.StatusCode, body)
	}

	var ops []map[string]any
	for _, c := range []string{"c1", "c2", "c3", "c4"} {
		ops = append(ops,
			map[string]any{"relation": "CS", "row": map[string]string{"C": c, "S": "s-" + c}},
			map[string]any{"relation": "CHR", "row": map[string]string{"C": c, "H": "h1", "R": "r-" + c}})
	}
	resp, body = do(t, http.MethodPost, ts.URL+"/v1/batch", map[string]any{"ops": ops})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d (%v)", resp.StatusCode, body)
	}
	if body["applied"].(float64) != 8 || body["ops"].(float64) != 8 {
		t.Fatalf("batch report: %v", body)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/v1/window?attrs=C,T,S", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window: %d (%v)", resp.StatusCode, body)
	}
	if body["rowCount"].(float64) != 1 { // only c1 has both a T and an S
		t.Fatalf("window rows: %v", body)
	}
	row := body["rows"].([]any)[0].(map[string]any)
	if row["C"] != "c1" || row["T"] != "t1" || row["S"] != "s-c1" {
		t.Fatalf("window row: %v", row)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/v1/cluster/status", nil)
	if resp.StatusCode != http.StatusOK || body["mode"] != "sharded" {
		t.Fatalf("status: %d %v", resp.StatusCode, body)
	}
	if n := len(body["relations"].([]any)); n != 3 {
		t.Fatalf("status lists %d relations", n)
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/cluster/health", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: %d", resp.StatusCode)
	}
	for _, s := range body["shards"].([]any) {
		if !s.(map[string]any)["healthy"].(bool) {
			t.Fatalf("shard reported unhealthy: %v", s)
		}
	}
}

// TestClusterShardDown503 pins the router's unavailability contract over
// real HTTP: an op owned by an unreachable shard answers 503 with
// Retry-After and names the shard; ops owned by live shards still work.
func TestClusterShardDown503(t *testing.T) {
	const dead = "shard2"
	ts, rt := newClusterTestServer(t, 3, dead)

	rowOwnedBy(t, rt, dead, true) // sanity: the dead shard owns something
	resp, body := do(t, http.MethodPost, ts.URL+"/v1/insert",
		map[string]any{"relation": "CT", "row": rowOwnedBy(t, rt, dead, true)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert to dead shard: %d (%v)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if body["shard"] != dead {
		t.Fatalf("503 names shard %v, want %s", body["shard"], dead)
	}
	if !strings.Contains(body["error"].(string), "unreachable") {
		t.Fatalf("503 error: %v", body["error"])
	}

	resp, _ = do(t, http.MethodPost, ts.URL+"/v1/insert",
		map[string]any{"relation": "CT", "row": rowOwnedBy(t, rt, dead, false)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert to live shard: %d", resp.StatusCode)
	}

	// A batch spanning live and dead shards answers 503 but carries the
	// partial report, so the client knows the live shards applied theirs.
	var ops []map[string]any
	for i := 0; i < 16; i++ {
		ops = append(ops, map[string]any{"relation": "CS",
			"row": map[string]string{"C": fmt.Sprintf("bc%d", i), "S": "s1"}})
	}
	resp, body = do(t, http.MethodPost, ts.URL+"/v1/batch", map[string]any{"ops": ops})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("spanning batch: %d (%v)", resp.StatusCode, body)
	}
	rep, ok := body["report"].(map[string]any)
	if !ok {
		t.Fatalf("503 batch response has no report: %v", body)
	}
	if rep["ops"].(float64) != 16 || rep["processed"].(float64) >= 16 || rep["processed"].(float64) == 0 {
		t.Fatalf("partial report: %v", rep)
	}

	// Health reflects the outage.
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/cluster/health", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: %d", resp.StatusCode)
	}
	for _, s := range body["shards"].([]any) {
		m := s.(map[string]any)
		if (m["name"] == dead) == m["healthy"].(bool) {
			t.Fatalf("health for %v: %v", m["name"], m["healthy"])
		}
	}
}

// rowOwnedBy searches for a CT row the placement assigns (want=true) or
// does not assign (want=false) to the shard.
func rowOwnedBy(t *testing.T, rt *cluster.Router, shard string, want bool) map[string]string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		row := map[string]string{"C": fmt.Sprintf("probe%d", i), "T": "t"}
		owner, err := rt.Placement().Owner("CT", row)
		if err != nil {
			t.Fatal(err)
		}
		if (owner == shard) == want {
			return row
		}
	}
	t.Fatalf("no CT row with owner==%s being %v in 10000 probes", shard, want)
	return nil
}

// TestClusterBatchBinPartialHTTP pins the shard-side ?partial=1 surface
// the router forwards over: 200 with a JSON report even when ops are
// rejected, against the atomic mode's 409.
func TestClusterBatchBinPartialHTTP(t *testing.T) {
	ts, _ := newTestServer(t, clusterSchema, clusterFDs)
	sch, err := indep.Parse(clusterSchema, clusterFDs)
	if err != nil {
		t.Fatal(err)
	}
	enc := indep.NewBinBatchEncoder(sch)
	for _, r := range []map[string]string{
		{"C": "c1", "T": "t1"}, {"C": "c1", "T": "t2"}, {"C": "c2", "T": "t1"},
	} {
		if err := enc.Add("CT", r); err != nil {
			t.Fatal(err)
		}
	}
	payload := enc.Bytes()

	post := func(url string) *http.Response {
		t.Helper()
		resp, err := http.Post(url, indep.BinContentType, strings.NewReader(string(payload)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(ts.URL + "/v1/batchbin"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("atomic batchbin with violation: %d", resp.StatusCode)
	}
	resp := post(ts.URL + "/v1/batchbin?partial=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial batchbin: %d", resp.StatusCode)
	}
	var rep indep.BatchReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 3 || rep.Applied != 2 || len(rep.Rejected) != 1 || rep.Rejected[0].Index != 1 {
		t.Fatalf("partial report: %+v", rep)
	}
	if resp := post(ts.URL + "/v1/batchbin?partial=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus partial param: %d", resp.StatusCode)
	}
}

// TestClusterRelEndpoint pins the fragment endpoint the gather path reads.
func TestClusterRelEndpoint(t *testing.T) {
	ts, store := newTestServer(t, clusterSchema, clusterFDs)
	if err := store.Insert("CT", map[string]string{"C": "c1", "T": "t1"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/cluster/rel?name=CT")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster/rel: %d", resp.StatusCode)
	}
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	res, err := indep.DecodeWindowBinary([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["C"] != "c1" || res.Rows[0]["T"] != "t1" {
		t.Fatalf("fragment rows: %v", res.Rows)
	}
	for _, bad := range []string{"", "nope"} {
		resp, err := http.Get(ts.URL + "/v1/cluster/rel?name=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cluster/rel?name=%q: %d", bad, resp.StatusCode)
		}
	}
}
