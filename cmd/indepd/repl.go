package main

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"indep"
	"indep/internal/wal"
)

// This file is the daemon's replication surface. A durable daemon is a
// primary: it serves its flushed WAL and catch-up snapshots under
// /v1/repl/ (a follower's local log works too, so replicas chain). A
// daemon started with -follow is a replica: its store tails the primary,
// writes answer 403, and reads honor X-Indep-Min-Version — the position
// token X-Indep-Version returns on every durable write — by waiting
// briefly and then answering 503 with Retry-After when still behind.

// minVersionHeader is the request header carrying a read-your-writes
// position token; versionHeader echoes the store's current token on writes.
const (
	versionHeader    = "X-Indep-Version"
	minVersionHeader = "X-Indep-Min-Version"
)

// replWaitBudget bounds how long a follower read waits to reach a client's
// token, and how long /v1/repl/wal long-polls for fresh bytes, before
// telling the caller to come back.
const replWaitBudget = 500 * time.Millisecond

// noteVersion stamps the response with the store's durable position: the
// token a client sends back (X-Indep-Min-Version) to read its own writes
// from any replica. Must run before the status line is written.
func (s *server) noteVersion(w http.ResponseWriter) {
	if s.durable != nil {
		w.Header().Set(versionHeader, s.durable.ReplPosition().String())
	}
}

// readOnly answers 403 on write routes when this daemon is a replica.
func (s *server) readOnly(w http.ResponseWriter) bool {
	if s.follower == nil {
		return false
	}
	writeJSON(w, http.StatusForbidden, map[string]any{
		"error": "replica is read-only; send writes to the primary"})
	return true
}

// waitMinVersion enforces a read-your-writes token on read routes. On a
// primary (or for an absent token) it passes immediately — the primary's
// state always covers every token it issued. On a replica it waits up to
// the budget for the stream to catch up, then answers 503 + Retry-After.
func (s *server) waitMinVersion(w http.ResponseWriter, r *http.Request) bool {
	tok := r.Header.Get(minVersionHeader)
	if tok == "" {
		return true
	}
	pos, err := wal.ParsePosition(tok)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "bad " + minVersionHeader + " header: " + err.Error()})
		return false
	}
	if s.follower == nil || s.follower.WaitFor(pos, replWaitBudget) {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":     "replica has not reached the requested version",
		"requested": pos.String(),
		"applied":   s.follower.Applied().String(),
	})
	return false
}

// handleReplWal streams raw flushed WAL bytes to a follower:
//
//	pos=3/16   cursor position (required; "seq/off")
//	max=65536  response size cap in bytes
//	wait=1     long-poll until bytes are available (bounded)
//
// 200 carries the bytes (possibly none) with the cursor protocol in the
// X-Indep-Repl-* headers; 410 means the position was truncated away and the
// follower must re-sync from /v1/repl/snapshot.
func (s *server) handleReplWal(w http.ResponseWriter, r *http.Request) {
	if s.durable == nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "store is not durable; start indepd with -data"})
		return
	}
	q := r.URL.Query()
	pos, err := wal.ParsePosition(q.Get("pos"))
	if err != nil || pos.IsZero() {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "bad pos parameter (want seq/off, e.g. pos=1/16)"})
		return
	}
	max := 0
	if m := q.Get("max"); m != "" {
		if max, err = strconv.Atoi(m); err != nil || max < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad max parameter"})
			return
		}
	}
	wait := false
	if v := q.Get("wait"); v != "" && v != "0" {
		wait = true
	}

	deadline := time.Now().Add(replWaitBudget)
	for {
		chunk, err := s.durable.ReplRead(pos, max)
		switch {
		case errors.Is(err, wal.ErrSegmentGone):
			writeJSON(w, http.StatusGone, map[string]any{
				"error": "position truncated away; re-sync from /v1/repl/snapshot"})
			return
		case err != nil:
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
			return
		}
		// Serve immediately when there is data or a position advance
		// (sealed-segment hop); otherwise long-poll within the budget.
		if len(chunk.Data) > 0 || chunk.Next != pos || !wait || !time.Now().Before(deadline) {
			h := w.Header()
			h.Set(indep.ReplHeaderStart, chunk.Start.String())
			h.Set(indep.ReplHeaderNext, chunk.Next.String())
			h.Set(indep.ReplHeaderFlushed, chunk.Flushed.String())
			h.Set("Content-Type", "application/octet-stream")
			w.Write(chunk.Data)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// handleReplSnapshot serves an encoded checkpoint of the current state for
// follower bootstrap and re-sync, with the position to tail from in
// X-Indep-Repl-Tail. The snapshot is cut with a log rotation but written
// nowhere — it exists only in this response.
func (s *server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.durable == nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "store is not durable; start indepd with -data"})
		return
	}
	data, tail, err := s.durable.ReplSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	h := w.Header()
	h.Set(indep.ReplHeaderTail, tail.String())
	h.Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// replStatsSection is the "replication" object /stats reports: role plus,
// on a replica, the full stream statistics.
func (s *server) replStatsSection() map[string]any {
	switch {
	case s.follower != nil:
		st := s.follower.ReplStats()
		return map[string]any{"role": "follower", "stream": st}
	case s.durable != nil:
		return map[string]any{"role": "primary", "flushed": s.durable.ReplPosition().String()}
	default:
		return map[string]any{"role": "none"}
	}
}
