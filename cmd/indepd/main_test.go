package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"indep"
)

func newTestServer(t *testing.T, schemaSrc, fdSrc string) (*httptest.Server, *indep.ConcurrentStore) {
	t.Helper()
	sch, err := indep.Parse(schemaSrc, fdSrc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(sch, store))
	t.Cleanup(ts.Close)
	return ts, store
}

func do(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON response: %v", method, url, err)
	}
	return resp, out
}

func TestServerInsertStateDelete(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")

	resp, out := do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("insert: %d %v", resp.StatusCode, out)
	}

	// Conflicting insert: 409 with rejected=true.
	resp, out = do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "smith"},
	})
	if resp.StatusCode != http.StatusConflict || out["rejected"] != true {
		t.Fatalf("conflict: %d %v", resp.StatusCode, out)
	}

	// Malformed insert: 400, not rejected.
	resp, out = do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "NOPE", "row": map[string]string{"C": "x"},
	})
	if resp.StatusCode != http.StatusBadRequest || out["rejected"] != false {
		t.Fatalf("malformed: %d %v", resp.StatusCode, out)
	}

	resp, out = do(t, "GET", ts.URL+"/state", nil)
	if resp.StatusCode != http.StatusOK || out["rows"].(float64) != 1 {
		t.Fatalf("state: %d %v", resp.StatusCode, out)
	}
	rels := out["relations"].(map[string]any)
	ct := rels["CT"].([]any)[0].(map[string]any)
	if ct["C"] != "cs101" || ct["T"] != "jones" {
		t.Fatalf("state rows: %v", rels)
	}

	resp, out = do(t, "DELETE", ts.URL+"/tuple", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	if resp.StatusCode != http.StatusOK || out["deleted"] != true {
		t.Fatalf("delete: %d %v", resp.StatusCode, out)
	}
	resp, out = do(t, "DELETE", ts.URL+"/tuple", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	if resp.StatusCode != http.StatusOK || out["deleted"] != false {
		t.Fatalf("re-delete: %d %v", resp.StatusCode, out)
	}

	// After the delete, the previously conflicting teacher is admissible.
	resp, _ = do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "smith"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after delete: %d", resp.StatusCode)
	}
}

func TestServerBatchAtomic(t *testing.T) {
	// Non-independent schema: the server must still validate (chase path).
	ts, store := newTestServer(t, "CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	if store.FastPath() {
		t.Fatal("Example 1 must take the chase path")
	}

	bad := map[string]any{"ops": []map[string]any{
		{"relation": "CD", "row": map[string]string{"C": "CS402", "D": "CS"}},
		{"relation": "CT", "row": map[string]string{"C": "CS402", "T": "Jones"}},
		{"relation": "TD", "row": map[string]string{"T": "Jones", "D": "EE"}},
	}}
	resp, out := do(t, "POST", ts.URL+"/batch", bad)
	if resp.StatusCode != http.StatusConflict || out["rejected"] != true {
		t.Fatalf("bad batch: %d %v", resp.StatusCode, out)
	}
	if store.Rows() != 0 {
		t.Fatalf("rejected batch committed %d rows", store.Rows())
	}

	good := map[string]any{"ops": []map[string]any{
		{"relation": "CD", "row": map[string]string{"C": "CS402", "D": "CS"}},
		{"relation": "CT", "row": map[string]string{"C": "CS402", "T": "Jones"}},
		{"relation": "TD", "row": map[string]string{"T": "Jones", "D": "CS"}},
	}}
	resp, out = do(t, "POST", ts.URL+"/batch", good)
	if resp.StatusCode != http.StatusOK || out["accepted"].(float64) != 3 {
		t.Fatalf("good batch: %d %v", resp.StatusCode, out)
	}
	if store.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", store.Rows())
	}
}

func TestServerAnalysisAndStats(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")

	resp, out := do(t, "GET", ts.URL+"/analysis", nil)
	if resp.StatusCode != http.StatusOK || out["independent"] != true || out["fastPath"] != true {
		t.Fatalf("analysis: %d %v", resp.StatusCode, out)
	}
	covers := out["relationCovers"].(map[string]any)
	if _, ok := covers["CT"]; !ok {
		t.Fatalf("analysis covers: %v", covers)
	}

	do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "smith"},
	})

	req, _ := http.NewRequest("GET", ts.URL+"/stats", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats for %d relations, want 3", len(stats))
	}
	ct := stats[0]
	if ct["relation"] != "CT" || ct["inserts"].(float64) != 1 || ct["rejects"].(float64) != 1 {
		t.Fatalf("CT stats: %v", ct)
	}
}

func TestServerBadJSONAndMethods(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T)", "C -> T")

	resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}

	// Wrong method on a routed pattern.
	resp, err = http.Get(ts.URL + "/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert: %d, want 405", resp.StatusCode)
	}
}
