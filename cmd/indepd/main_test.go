package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"indep"
	"indep/internal/obs"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, schemaSrc, fdSrc string) (*httptest.Server, *indep.ConcurrentStore) {
	t.Helper()
	sch, err := indep.Parse(schemaSrc, fdSrc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(sch, discardLogger(), false, obs.RecorderOptions{SampleEvery: 1})
	s.install(store, nil, nil, 0)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, store
}

// newDurableTestServer mounts the handler over a durable store in dir.
func newDurableTestServer(t *testing.T, dir, schemaSrc, fdSrc string) (*httptest.Server, *indep.DurableStore) {
	t.Helper()
	sch, err := indep.Parse(schemaSrc, fdSrc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := sch.OpenDurableStore(dir, indep.DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s := newServer(sch, discardLogger(), false, obs.RecorderOptions{SampleEvery: 1})
	s.install(store.ConcurrentStore, store, nil, 0)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, store
}

func do(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON response: %v", method, url, err)
	}
	return resp, out
}

func TestServerInsertStateDelete(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")

	resp, out := do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("insert: %d %v", resp.StatusCode, out)
	}

	// Conflicting insert: 409 with rejected=true.
	resp, out = do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "smith"},
	})
	if resp.StatusCode != http.StatusConflict || out["rejected"] != true {
		t.Fatalf("conflict: %d %v", resp.StatusCode, out)
	}

	// Malformed insert: 400, not rejected.
	resp, out = do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "NOPE", "row": map[string]string{"C": "x"},
	})
	if resp.StatusCode != http.StatusBadRequest || out["rejected"] != false {
		t.Fatalf("malformed: %d %v", resp.StatusCode, out)
	}

	resp, out = do(t, "GET", ts.URL+"/state", nil)
	if resp.StatusCode != http.StatusOK || out["rows"].(float64) != 1 {
		t.Fatalf("state: %d %v", resp.StatusCode, out)
	}
	rels := out["relations"].(map[string]any)
	ct := rels["CT"].([]any)[0].(map[string]any)
	if ct["C"] != "cs101" || ct["T"] != "jones" {
		t.Fatalf("state rows: %v", rels)
	}

	resp, out = do(t, "DELETE", ts.URL+"/tuple", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	if resp.StatusCode != http.StatusOK || out["deleted"] != true {
		t.Fatalf("delete: %d %v", resp.StatusCode, out)
	}
	resp, out = do(t, "DELETE", ts.URL+"/tuple", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	if resp.StatusCode != http.StatusOK || out["deleted"] != false {
		t.Fatalf("re-delete: %d %v", resp.StatusCode, out)
	}

	// After the delete, the previously conflicting teacher is admissible.
	resp, _ = do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "smith"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after delete: %d", resp.StatusCode)
	}
}

func TestServerBatchAtomic(t *testing.T) {
	// Non-independent schema: the server must still validate (chase path).
	ts, store := newTestServer(t, "CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	if store.FastPath() {
		t.Fatal("Example 1 must take the chase path")
	}

	bad := map[string]any{"ops": []map[string]any{
		{"relation": "CD", "row": map[string]string{"C": "CS402", "D": "CS"}},
		{"relation": "CT", "row": map[string]string{"C": "CS402", "T": "Jones"}},
		{"relation": "TD", "row": map[string]string{"T": "Jones", "D": "EE"}},
	}}
	resp, out := do(t, "POST", ts.URL+"/batch", bad)
	if resp.StatusCode != http.StatusConflict || out["rejected"] != true {
		t.Fatalf("bad batch: %d %v", resp.StatusCode, out)
	}
	if store.Rows() != 0 {
		t.Fatalf("rejected batch committed %d rows", store.Rows())
	}

	good := map[string]any{"ops": []map[string]any{
		{"relation": "CD", "row": map[string]string{"C": "CS402", "D": "CS"}},
		{"relation": "CT", "row": map[string]string{"C": "CS402", "T": "Jones"}},
		{"relation": "TD", "row": map[string]string{"T": "Jones", "D": "CS"}},
	}}
	resp, out = do(t, "POST", ts.URL+"/batch", good)
	if resp.StatusCode != http.StatusOK || out["accepted"].(float64) != 3 {
		t.Fatalf("good batch: %d %v", resp.StatusCode, out)
	}
	if store.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", store.Rows())
	}
}

func TestServerAnalysisAndStats(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")

	resp, out := do(t, "GET", ts.URL+"/analysis", nil)
	if resp.StatusCode != http.StatusOK || out["independent"] != true || out["fastPath"] != true {
		t.Fatalf("analysis: %d %v", resp.StatusCode, out)
	}
	covers := out["relationCovers"].(map[string]any)
	if _, ok := covers["CT"]; !ok {
		t.Fatalf("analysis covers: %v", covers)
	}

	do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "smith"},
	})

	resp, out = do(t, "GET", ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK || out["durable"] != false {
		t.Fatalf("stats: %d %v", resp.StatusCode, out)
	}
	if _, ok := out["wal"]; ok {
		t.Fatalf("in-memory stats should omit wal: %v", out)
	}
	stats := out["relations"].([]any)
	if len(stats) != 3 {
		t.Fatalf("stats for %d relations, want 3", len(stats))
	}
	ct := stats[0].(map[string]any)
	if ct["relation"] != "CT" || ct["inserts"].(float64) != 1 || ct["rejects"].(float64) != 1 {
		t.Fatalf("CT stats: %v", ct)
	}

	// In-memory servers refuse /checkpoint.
	resp, out = do(t, "POST", ts.URL+"/checkpoint", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint on in-memory store: %d %v", resp.StatusCode, out)
	}
}

func TestServerV1Aliases(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	resp, out := do(t, "POST", ts.URL+"/v1/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs1", "T": "a"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/insert: %d %v", resp.StatusCode, out)
	}
	resp, out = do(t, "GET", ts.URL+"/v1/state", nil)
	if resp.StatusCode != http.StatusOK || out["rows"].(float64) != 1 {
		t.Fatalf("/v1/state: %d %v", resp.StatusCode, out)
	}
	resp, _ = do(t, "GET", ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: %d", resp.StatusCode)
	}
}

func TestServerDurableCheckpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	const schemaSrc, fdSrc = "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R"
	ts, store1 := newDurableTestServer(t, dir, schemaSrc, fdSrc)

	for i, row := range []map[string]string{
		{"C": "cs101", "T": "jones"},
		{"C": "cs102", "T": "smith"},
	} {
		resp, out := do(t, "POST", ts.URL+"/v1/insert", map[string]any{"relation": "CT", "row": row})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %d %v", i, resp.StatusCode, out)
		}
	}

	// WAL depth shows up in stats.
	resp, out := do(t, "GET", ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK || out["durable"] != true {
		t.Fatalf("stats: %d %v", resp.StatusCode, out)
	}
	wal := out["wal"].(map[string]any)
	if wal["records"].(float64) < 2 || wal["totalBytes"].(float64) <= 0 {
		t.Fatalf("wal stats: %v", wal)
	}

	resp, out = do(t, "POST", ts.URL+"/v1/checkpoint", nil)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, out)
	}

	// Restart: close the first store (the directory is flock-guarded) and
	// serve the same directory from a second one.
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}
	ts2, store2 := newDurableTestServer(t, dir, schemaSrc, fdSrc)
	if store2.Recovery().CheckpointSeq == 0 {
		t.Fatalf("restart ignored checkpoint: %+v", store2.Recovery())
	}
	resp, out = do(t, "GET", ts2.URL+"/v1/state", nil)
	if resp.StatusCode != http.StatusOK || out["rows"].(float64) != 2 {
		t.Fatalf("restarted state: %d %v", resp.StatusCode, out)
	}
}

func TestServerBadJSONAndMethods(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T)", "C -> T")

	resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}

	// Wrong method on a routed pattern.
	resp, err = http.Get(ts.URL + "/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert: %d, want 405", resp.StatusCode)
	}
}

// TestServerWindowIndependent exercises GET /window on the university
// schema: the fast path (no chase) must compute cross-relation windows by
// extension joins, honoring where/project/limit.
func TestServerWindowIndependent(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	for _, op := range []map[string]any{
		{"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"}},
		{"relation": "CT", "row": map[string]string{"C": "cs102", "T": "curie"}},
		{"relation": "CS", "row": map[string]string{"C": "cs101", "S": "ada"}},
		{"relation": "CS", "row": map[string]string{"C": "cs101", "S": "bob"}},
		{"relation": "CS", "row": map[string]string{"C": "cs999", "S": "eve"}},
	} {
		if resp, out := do(t, "POST", ts.URL+"/insert", op); resp.StatusCode != http.StatusOK {
			t.Fatalf("insert: %d %v", resp.StatusCode, out)
		}
	}

	// Cross-relation window: students with the teacher of their course.
	// cs999 has no CT tuple, so eve's row is not C,S,T-total.
	resp, out := do(t, "GET", ts.URL+"/v1/window?attrs=C,S,T", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window: %d %v", resp.StatusCode, out)
	}
	if out["fastPath"] != true {
		t.Fatalf("window should use the fast path: %v", out)
	}
	if out["rowCount"].(float64) != 2 {
		t.Fatalf("window rows: %v", out)
	}

	// Selection and projection.
	resp, out = do(t, "GET", ts.URL+"/window?attrs=C,S,T&where=S=ada&project=T", nil)
	if resp.StatusCode != http.StatusOK || out["rowCount"].(float64) != 1 {
		t.Fatalf("filtered window: %d %v", resp.StatusCode, out)
	}
	row := out["rows"].([]any)[0].(map[string]any)
	if row["T"] != "jones" {
		t.Fatalf("ada's teacher: %v", row)
	}

	// Limit.
	resp, out = do(t, "GET", ts.URL+"/window?attrs=C,S&limit=1", nil)
	if resp.StatusCode != http.StatusOK || out["rowCount"].(float64) != 1 || out["total"].(float64) != 3 {
		t.Fatalf("limited window: %d %v", resp.StatusCode, out)
	}

	// Second identical attribute set hits the plan cache.
	resp, out = do(t, "GET", ts.URL+"/window?attrs=C,S,T", nil)
	if resp.StatusCode != http.StatusOK || out["planCached"] != true {
		t.Fatalf("plan cache: %d %v", resp.StatusCode, out)
	}

	// Malformed requests.
	for _, q := range []string{"", "?attrs=", "?attrs=C&where=nope", "?attrs=C&limit=x", "?attrs=NO"} {
		resp, out := do(t, "GET", ts.URL+"/window"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("window%s: %d %v, want 400", q, resp.StatusCode, out)
		}
	}
}

// TestServerWindowChaseFallback checks the non-independent path: the window
// over A,C needs the join-dependency chase (A -> C is not embedded), so the
// result exists only through the global representative instance.
func TestServerWindowChaseFallback(t *testing.T) {
	ts, _ := newTestServer(t, "AB(A,B); BC(B,C)", "A -> C")
	for _, op := range []map[string]any{
		{"relation": "AB", "row": map[string]string{"A": "a1", "B": "b1"}},
		{"relation": "BC", "row": map[string]string{"B": "b1", "C": "c1"}},
	} {
		if resp, out := do(t, "POST", ts.URL+"/insert", op); resp.StatusCode != http.StatusOK {
			t.Fatalf("insert: %d %v", resp.StatusCode, out)
		}
	}
	resp, out := do(t, "GET", ts.URL+"/v1/window?attrs=A,C", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window: %d %v", resp.StatusCode, out)
	}
	if out["fastPath"] != false {
		t.Fatalf("non-independent schema should fall back to the chase: %v", out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("window rows: %v", out)
	}
	row := rows[0].(map[string]any)
	if row["A"] != "a1" || row["C"] != "c1" {
		t.Fatalf("window row: %v", row)
	}
}

// FuzzWindowParams throws arbitrary query strings at the /window parameter
// parser: it must never panic, and an accepted parse must satisfy the
// parser's own invariants (attrs nonempty, limit non-negative, where pairs
// well-formed).
func FuzzWindowParams(f *testing.F) {
	f.Add("attrs=C,T")
	f.Add("attrs=C T&where=C=cs101&project=T&limit=10")
	f.Add("attrs=,,&where==&limit=-1")
	f.Add("where=A=1&where=A=2")
	f.Add("attrs=%00&limit=99999999999999999999")
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := parseWindowQuery(vals)
		if err != nil {
			return
		}
		if len(q.Attrs) == 0 {
			t.Fatalf("accepted query with no attrs: %q", raw)
		}
		if q.Limit < 0 {
			t.Fatalf("accepted negative limit: %q", raw)
		}
		for attr := range q.Where {
			if attr == "" {
				t.Fatalf("accepted empty where attribute: %q", raw)
			}
		}
	})
}
