package main

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"indep"
)

func TestRequestTraceID(t *testing.T) {
	mk := func(header string) *http.Request {
		r := httptest.NewRequest("POST", "/insert", nil)
		if header != "" {
			r.Header.Set(traceHeader, header)
		}
		return r
	}
	// A well-formed client ID is honored, uppercase normalized.
	if got := requestTraceID(mk("0123456789abcdef")); got != "0123456789abcdef" {
		t.Fatalf("valid ID rewritten to %q", got)
	}
	if got := requestTraceID(mk("0123456789ABCDEF")); got != "0123456789abcdef" {
		t.Fatalf("uppercase ID normalized to %q", got)
	}
	// Anything else is replaced by a freshly minted valid ID.
	for _, bad := range []string{"", "short", "0123456789abcdefff", "../../etc/passwd",
		"0123456789abcdeg", strings.Repeat("a", 4096)} {
		got := requestTraceID(mk(bad))
		if !indep.ValidTraceID(got) {
			t.Fatalf("header %q produced invalid trace ID %q", bad, got)
		}
		if got == bad {
			t.Fatalf("junk header %q was honored", bad)
		}
	}
}

// TestInsertSpanTree is the end-to-end tracing test: one POST /v1/tuple-style
// insert against a durable store must yield a retrievable span tree under the
// request's X-Indep-Trace ID, covering middleware (root), store, engine
// commit, and the WAL append + fsync ack.
func TestInsertSpanTree(t *testing.T) {
	ts, _ := newDurableTestServer(t, t.TempDir(), "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")

	const id = "00c0ffee00c0ffee"
	req, err := http.NewRequest("POST", ts.URL+"/v1/insert",
		strings.NewReader(`{"relation":"CT","row":{"C":"cs101","T":"jones"}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(traceHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(traceHeader); got != id {
		t.Fatalf("response trace header %q, want %q", got, id)
	}

	tresp, tv := do(t, "GET", ts.URL+"/debug/trace/"+id, nil)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d %v", tresp.StatusCode, tv)
	}
	if tv["id"] != id || tv["route"] != "POST /insert" || tv["status"].(float64) != 200 {
		t.Fatalf("trace header: %v", tv)
	}

	spans := tv["spans"].([]any)
	if len(spans) < 5 {
		t.Fatalf("got %d spans, want at least 5: %v", len(spans), tv)
	}
	names := make([]string, len(spans))
	byName := map[string]map[string]any{}
	for i, raw := range spans {
		sp := raw.(map[string]any)
		names[i] = sp["name"].(string)
		byName[names[i]] = sp
	}
	for _, want := range []string{"POST /insert", "store.insert", "engine.insert", "wal.append", "wal.fsync"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("span %q missing from tree %v", want, names)
		}
	}
	// The schema is independent, so the commit validated through the guards.
	if _, ok := byName["guard.validate"]; !ok {
		t.Fatalf("guard.validate missing from tree %v", names)
	}

	// Parent links encode the expected tree shape.
	idx := map[string]int{}
	for i, n := range names {
		if _, dup := idx[n]; !dup {
			idx[n] = i
		}
	}
	parent := func(name string) int { return int(byName[name]["parent"].(float64)) }
	if parent("POST /insert") != -1 {
		t.Fatalf("root has parent %d", parent("POST /insert"))
	}
	if parent("store.insert") != idx["POST /insert"] {
		t.Fatalf("store.insert hangs off span %d", parent("store.insert"))
	}
	if parent("engine.insert") != idx["store.insert"] {
		t.Fatalf("engine.insert hangs off span %d", parent("engine.insert"))
	}
	for _, walSpan := range []string{"wal.append", "wal.fsync"} {
		if parent(walSpan) != idx["engine.insert"] {
			t.Fatalf("%s hangs off span %d, want engine.insert (%d)",
				walSpan, parent(walSpan), idx["engine.insert"])
		}
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T)", "C -> T")

	resp, out := do(t, "GET", ts.URL+"/debug/trace/not-hex", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ID: %d %v", resp.StatusCode, out)
	}
	resp, out = do(t, "GET", ts.URL+"/debug/trace/00000000000000aa", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ID: %d %v", resp.StatusCode, out)
	}
}

func TestTraceRecent(t *testing.T) {
	ts, _ := newTestServer(t, "CT(C,T)", "C -> T")

	for i := 0; i < 3; i++ {
		resp, out := do(t, "POST", ts.URL+"/insert", map[string]any{
			"relation": "CT", "row": map[string]string{"C": "c" + strconv.Itoa(i), "T": "t"},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %d %v", i, resp.StatusCode, out)
		}
	}
	do(t, "GET", ts.URL+"/state", nil)

	resp, out := do(t, "GET", ts.URL+"/debug/trace/recent?route="+url.QueryEscape("POST /insert"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recent: %d %v", resp.StatusCode, out)
	}
	if out["count"].(float64) != 3 {
		t.Fatalf("recent count %v, want 3", out["count"])
	}
	for _, raw := range out["traces"].([]any) {
		tr := raw.(map[string]any)
		if tr["route"] != "POST /insert" {
			t.Fatalf("route filter leaked %v", tr["route"])
		}
	}
	// Probe/debug routes themselves are never traced.
	resp, out = do(t, "GET", ts.URL+"/debug/trace/recent?route="+url.QueryEscape("GET /debug/trace/recent"), nil)
	if resp.StatusCode != http.StatusOK || out["count"].(float64) != 0 {
		t.Fatalf("debug routes traced: %d %v", resp.StatusCode, out)
	}
}

// TestWindowExplainMatchesStats checks the executed plan reported by
// explain=1 against the engine's own QueryStats counters and the result's
// fastPath/planCached fields.
func TestWindowExplainMatchesStats(t *testing.T) {
	ts, store := newTestServer(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")

	resp, out := do(t, "POST", ts.URL+"/insert", map[string]any{
		"relation": "CT", "row": map[string]string{"C": "cs101", "T": "jones"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %v", resp.StatusCode, out)
	}

	before := store.QueryStats()
	resp, out = do(t, "GET", ts.URL+"/window?attrs=C,T&explain=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window: %d %v", resp.StatusCode, out)
	}
	after := store.QueryStats()

	ex, ok := out["explain"].(map[string]any)
	if !ok {
		t.Fatalf("explain missing: %v", out)
	}
	// Plan choice matches both the result's fastPath flag and the stats delta.
	if ex["mode"] == "fast" != (out["fastPath"] == true) {
		t.Fatalf("explain mode %v vs fastPath %v", ex["mode"], out["fastPath"])
	}
	if ex["mode"] == "fast" && after.FastEvals != before.FastEvals+1 {
		t.Fatalf("mode fast but FastEvals %d -> %d", before.FastEvals, after.FastEvals)
	}
	if ex["mode"] == "chase" && after.ChaseEvals != before.ChaseEvals+1 {
		t.Fatalf("mode chase but ChaseEvals %d -> %d", before.ChaseEvals, after.ChaseEvals)
	}
	if ex["planCached"] != out["planCached"] {
		t.Fatalf("explain planCached %v vs result %v", ex["planCached"], out["planCached"])
	}
	if ex["storeVersion"].(float64) == 0 {
		t.Fatalf("explain storeVersion missing: %v", ex)
	}
	// The scanned relations carry row counts; pruned relations don't overlap.
	scanned := map[string]bool{}
	sawCT := false
	for _, raw := range ex["relations"].([]any) {
		rs := raw.(map[string]any)
		scanned[rs["relation"].(string)] = true
		if rs["relation"] == "CT" {
			sawCT = true
			if rs["rows"].(float64) != 1 {
				t.Fatalf("CT rows %v, want 1", rs["rows"])
			}
		}
	}
	if !sawCT {
		t.Fatalf("CT not scanned: %v", ex["relations"])
	}
	if pruned, ok := ex["pruned"].([]any); ok {
		for _, p := range pruned {
			if scanned[p.(string)] {
				t.Fatalf("relation %v both scanned and pruned", p)
			}
		}
	}

	// A repeat of the same window hits the plan cache, and explain says so.
	before = store.QueryStats()
	resp, out = do(t, "GET", ts.URL+"/window?attrs=C,T&explain=true", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window 2: %d %v", resp.StatusCode, out)
	}
	after = store.QueryStats()
	ex = out["explain"].(map[string]any)
	if ex["planCached"] != true || after.PlanHits != before.PlanHits+1 {
		t.Fatalf("repeat window not plan-cached: explain=%v PlanHits %d -> %d",
			ex["planCached"], before.PlanHits, after.PlanHits)
	}

	// Without explain the field stays off the wire.
	_, out = do(t, "GET", ts.URL+"/window?attrs=C,T", nil)
	if _, present := out["explain"]; present {
		t.Fatalf("explain leaked into a plain window response: %v", out)
	}
	// Malformed explain values are a 400, not a silent default.
	resp, out = do(t, "GET", ts.URL+"/window?attrs=C,T&explain=maybe", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explain=maybe: %d %v", resp.StatusCode, out)
	}
}

// FuzzTraceHeader checks the trace-ID laundering invariant: whatever arrives
// in X-Indep-Trace, the resolved ID is always well-formed, and a well-formed
// (case-insensitive) client ID is honored verbatim after normalization.
func FuzzTraceHeader(f *testing.F) {
	f.Add("0123456789abcdef")
	f.Add("0123456789ABCDEF")
	f.Add("")
	f.Add("zzzz")
	f.Add("0123456789abcde")
	f.Add("0123456789abcdef0")
	f.Add("../../etc/passwd\x00")
	f.Fuzz(func(t *testing.T, header string) {
		r := httptest.NewRequest("POST", "/insert", nil)
		r.Header.Set(traceHeader, header)
		got := requestTraceID(r)
		if !indep.ValidTraceID(got) {
			t.Fatalf("header %q resolved to invalid ID %q", header, got)
		}
		lowered := strings.ToLower(header)
		if indep.ValidTraceID(lowered) && got != lowered {
			t.Fatalf("valid header %q not honored: got %q", header, got)
		}
	})
}

// FuzzExplainParams throws arbitrary query parameters at parseWindowQuery:
// it must never panic, and explain must parse strictly (boolean or 400).
func FuzzExplainParams(f *testing.F) {
	f.Add("C,T", "1", "10")
	f.Add("C T", "true", "")
	f.Add("", "maybe", "-3")
	f.Add("C", "TRUE", "0x10")
	f.Fuzz(func(t *testing.T, attrs, explain, limit string) {
		vals := url.Values{}
		if attrs != "" {
			vals.Set("attrs", attrs)
		}
		if explain != "" {
			vals.Set("explain", explain)
		}
		if limit != "" {
			vals.Set("limit", limit)
		}
		q, err := parseWindowQuery(vals)
		if err != nil {
			return
		}
		if explain != "" {
			b, perr := strconv.ParseBool(explain)
			if perr != nil {
				t.Fatalf("explain=%q accepted but not a boolean", explain)
			}
			if q.Explain != b {
				t.Fatalf("explain=%q parsed as %v, want %v", explain, q.Explain, b)
			}
		}
	})
}
