// Command indepbench regenerates the experiments recorded in
// EXPERIMENTS.md: the paper's worked examples, the theorem validations
// against the chase oracle, and the complexity measurements.
//
// Usage:
//
//	indepbench                 # run everything
//	indepbench -exp E1,T3      # run selected experiments
//	indepbench -seed 7 -scale 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"indep/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (E1,E2,E3,T1,T2,T3,C1,P1,A1,M1) or 'all'")
	seed := flag.Int64("seed", 1982, "random seed")
	scale := flag.Int("scale", 0, "work scale (0 = default)")
	flag.Parse()

	p := experiments.Params{Seed: *seed, Scale: *scale}
	if *exp == "all" {
		fmt.Print(experiments.RunAll(p))
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "indepbench: unknown experiment %q (known: %s)\n",
				id, strings.Join(experiments.Order, ","))
			os.Exit(2)
		}
		fmt.Print(run(p))
		fmt.Println()
	}
}
