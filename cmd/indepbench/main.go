// Command indepbench regenerates the experiments recorded in
// EXPERIMENTS.md — the paper's worked examples, the theorem validations
// against the chase oracle, and the complexity measurements — and, with
// -engine, load-tests the concurrent store over generated workload shapes.
//
// Usage:
//
//	indepbench                 # run every recorded experiment
//	indepbench -exp E1,T3      # run selected experiments
//	indepbench -seed 7 -scale 50
//
//	indepbench -engine -shape star -n 200000 -batch 64 -workers 8
//	indepbench -engine -durable -dir /tmp/indepbench -batch 64
//	indepbench -engine -durable -nofsync        # WAL write cost without fsync
//
//	indepbench -query -readers 8 -workers 2 -duration 3s
//	indepbench -cluster -replicas 2 -nofsync -duration 3s
//	indepbench -shards 4 -n 200000 -json      # sharded write scaling
//	indepbench -engine -json        # machine-readable result with allocs/op
//
//	indepbench -printschema > bench.txt     # declaration file for indepd -file
//	indepbench -engine -url http://localhost:8080 -wire bin   # drive a daemon
//	indepbench -engine -url http://localhost:8080 -wire json  # over either wire
//
// The -engine mode drives inserts through the public ConcurrentStore —
// the same per-relation lock stripes indepd serves from — and reports
// tuples/s plus per-relation latency percentiles. With -durable the store
// runs on the write-ahead log, so the group-commit overhead (and its
// amortization across concurrent writers: see the records-per-fsync
// figure) shows up directly in the numbers.
//
// The -query mode runs a mixed read/write load: -workers writers keep
// inserting batches while -readers goroutines issue window queries against
// lock-free snapshots. It reports write tuples/s, read queries/s, and read
// latency percentiles — run it at different -readers (or GOMAXPROCS) to
// see reads scale with cores against a concurrent writer. After the mixed
// phase it runs a read-only and a write-only isolation phase, each with
// its own MemStats probe, so the JSON report carries per-path allocs/op
// (writePhaseAllocsPerOp / readPhaseAllocsPerOp) alongside the blended
// figure.
//
// With -url, -engine mode drives a running indepd over HTTP instead of an
// in-process store — atomic batches over the binary /v1/batchbin protocol
// (-wire bin) or the JSON /v1/batch endpoint (-wire json). The daemon must
// serve the schema the generator builds; -printschema emits it in the
// declaration-file format indepd -file reads.
//
// The -cluster mode measures follower-read scaling: writers insert on a
// durable primary while -replicas in-process WAL-streaming followers tail
// it, and readers round-robin window queries across every serving node
// (the primary alone at -replicas 0). After the load it waits for each
// follower to catch up, checks bit-for-bit convergence against the
// primary, and reports per-follower stream counters — run it at 0, 1, 2
// replicas to see read throughput scale with the cluster.
//
// The -shards mode routes binary batches through a real cluster.Router
// over N in-process shard stores — the sharded serving tier's write path,
// minus only the network. Run it at -shards 1 and -shards 4 on the same
// flags to measure the write scaling the placement rule buys; BENCH_*.json
// records the pair.
//
// With -json either load emits a single JSON object instead of text,
// including -benchmem-style allocs/op and B/op (whole-process MemStats
// deltas divided by operations), so CI and the BENCH_*.json records can
// compare runs mechanically.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indep"
	"indep/internal/attrset"
	"indep/internal/experiments"
	"indep/internal/fd"
	"indep/internal/obs"
	"indep/internal/schema"
	"indep/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (E1,E2,E3,T1,T2,T3,C1,P1,A1,M1) or 'all'")
	seed := flag.Int64("seed", 1982, "random seed")
	scale := flag.Int("scale", 0, "work scale (0 = default)")

	engine := flag.Bool("engine", false, "load-test the concurrent store instead of running experiments")
	queryMode := flag.Bool("query", false, "mixed read/write load: writers insert while readers run window queries")
	cluster := flag.Bool("cluster", false, "replication load: writers hit a durable primary, readers round-robin over primary plus -replicas followers")
	replicas := flag.Int("replicas", 2, "in-process WAL-streaming followers to open (-cluster)")
	shards := flag.Int("shards", 0, "route writes through a cluster.Router over N in-process shard stores (sharded write scaling)")
	shape := flag.String("shape", "star", "workload shape: star, chain, random")
	attrs := flag.Int("attrs", 25, "universe size of the generated schema")
	schemes := flag.Int("schemes", 5, "relation schemes (star/random)")
	n := flag.Int("n", 100000, "tuples to insert")
	batch := flag.Int("batch", 64, "tuples per InsertBatch (1 = single inserts)")
	workers := flag.Int("workers", 8, "concurrent writers")
	readers := flag.Int("readers", runtime.GOMAXPROCS(0), "concurrent window-query readers (-query)")
	duration := flag.Duration("duration", 3*time.Second, "how long to run the mixed load (-query)")
	durable := flag.Bool("durable", false, "run on a write-ahead-logged DurableStore")
	dir := flag.String("dir", "", "data directory for -durable (default: a temp dir, removed after)")
	noFsync := flag.Bool("nofsync", false, "durable mode without fsync")
	jsonOut := flag.Bool("json", false, "emit one JSON result object (with -benchmem-style ns/op, B/op, allocs/op) instead of text")
	remoteURL := flag.String("url", "", "engine mode: drive a running indepd at this base URL instead of an in-process store")
	wire := flag.String("wire", "bin", "remote engine mode: wire encoding, 'bin' (POST /v1/batchbin) or 'json' (POST /v1/batch)")
	printSchema := flag.Bool("printschema", false, "print the generated workload schema as a declaration file (start indepd with it for -url runs) and exit")
	flag.Parse()

	if *engine || *queryMode || *cluster || *printSchema || *shards > 0 {
		cfg := engineConfig{
			shape: *shape, attrs: *attrs, schemes: *schemes, seed: *seed,
			n: *n, batch: *batch, workers: *workers,
			readers: *readers, duration: *duration,
			durable: *durable, dir: *dir, noFsync: *noFsync,
			replicas: *replicas,
			shards:   *shards,
			jsonOut:  *jsonOut,
			url:      *remoteURL, wire: *wire,
		}
		run := runEngine
		switch {
		case *printSchema:
			run = runPrintSchema
		case *shards > 0:
			run = runShards
		case *cluster:
			run = runCluster
		case *queryMode:
			run = runQuery
		case *remoteURL != "":
			run = runRemote
		}
		if err := run(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "indepbench:", err)
			os.Exit(2)
		}
		return
	}

	p := experiments.Params{Seed: *seed, Scale: *scale}
	if *exp == "all" {
		fmt.Print(experiments.RunAll(p))
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "indepbench: unknown experiment %q (known: %s)\n",
				id, strings.Join(experiments.Order, ","))
			os.Exit(2)
		}
		fmt.Print(run(p))
		fmt.Println()
	}
}

type engineConfig struct {
	shape          string
	attrs, schemes int
	seed           int64
	n, batch       int
	workers        int
	readers        int
	duration       time.Duration
	durable        bool
	dir            string
	noFsync        bool
	replicas       int
	shards         int
	jsonOut        bool
	url, wire      string
}

// memProbe brackets a load with runtime.MemStats reads so the report can
// carry -benchmem-style figures: whole-process Mallocs and TotalAlloc
// deltas divided by operation count. A GC before the first read drops
// setup garbage from the delta.
type memProbe struct{ m0 runtime.MemStats }

func startMemProbe() *memProbe {
	p := &memProbe{}
	runtime.GC()
	runtime.ReadMemStats(&p.m0)
	return p
}

// perOp returns (allocs/op, bytes/op) for ops operations since the probe
// started.
func (p *memProbe) perOp(ops int64) (allocs, bytes float64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if ops <= 0 {
		return 0, 0
	}
	return float64(m1.Mallocs-p.m0.Mallocs) / float64(ops),
		float64(m1.TotalAlloc-p.m0.TotalAlloc) / float64(ops)
}

// benchReport is the -json output: one object per run, stable field names,
// so CI and BENCH_*.json records can diff runs mechanically.
type benchReport struct {
	Mode         string  `json:"mode"` // "engine" or "query"
	Shape        string  `json:"shape"`
	Schemes      int     `json:"schemes"`
	Attrs        int     `json:"attrs"`
	FastPath     bool    `json:"fastPath"`
	Store        string  `json:"store"`
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards,omitempty"`
	Batch        int     `json:"batch"`
	WriteTuples  int64   `json:"writeTuples"`
	WriteTPS     float64 `json:"writeTuplesPerSec"`
	WriteNsPerOp float64 `json:"writeNsPerOp"`
	// Shards mode reports two write rates. WriteTPS above is the
	// cluster's aggregate write capacity: the sum of per-shard ingest
	// rates, each measured with that shard timed alone — valid to sum
	// because the routed phase proves no write touches two shards, so a
	// real N-node cluster runs the N streams on disjoint hardware.
	// RoutedTPS is the end-to-end rate through the router on THIS host,
	// which in-process shards bound by HostCores no matter the shard
	// count. See cmd/indepbench/shards.go.
	RoutedTPS   float64     `json:"routedTuplesPerSec,omitempty"`
	HostCores   int         `json:"hostCores,omitempty"`
	PerShard    []shardRate `json:"perShard,omitempty"`
	Readers     int         `json:"readers,omitempty"`
	ReadQueries int64       `json:"readQueries,omitempty"`
	ReadQPS     float64     `json:"readQueriesPerSec,omitempty"`
	ReadP50Ns   int64       `json:"readP50Ns,omitempty"`
	ReadP99Ns   int64       `json:"readP99Ns,omitempty"`
	// MeasuredOps is the denominator of AllocsPerOp/BytesPerOp: write
	// tuples in engine mode, write tuples + read queries in query mode
	// (measured over the mixed phase). Compare per-op figures only between
	// runs of the same mode.
	MeasuredOps int64   `json:"measuredOps"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	// Query mode brackets a write-only and a read-only phase with their own
	// MemStats probes before the mixed load, so each path's allocation cost
	// is isolated instead of averaged into one blended figure.
	WritePhaseAllocsPerOp float64 `json:"writePhaseAllocsPerOp,omitempty"`
	WritePhaseBytesPerOp  float64 `json:"writePhaseBytesPerOp,omitempty"`
	ReadPhaseAllocsPerOp  float64 `json:"readPhaseAllocsPerOp,omitempty"`
	ReadPhaseBytesPerOp   float64 `json:"readPhaseBytesPerOp,omitempty"`
	ElapsedNs             int64   `json:"elapsedNs"`
	// WriteBatchLat/ReadLat are log2-bucketed histogram quantiles (the
	// same obs.Histogram the store's telemetry uses), per InsertBatch call
	// and per window query respectively.
	WriteBatchLat *latQuantiles `json:"writeBatchLatencyNs,omitempty"`
	ReadLat       *latQuantiles `json:"readLatencyNs,omitempty"`
	// Span-overhead probe (engine mode): the same duplicate single-tuple
	// insert timed untraced (nil span, the pay-nothing path) and traced
	// (recorder root span per op, arena pooled, sampled out). The delta is
	// what a flight-recorder-sampled request pays per store call.
	UntracedInsertNsPerOp float64 `json:"untracedInsertNsPerOp,omitempty"`
	TracedInsertNsPerOp   float64 `json:"tracedInsertNsPerOp,omitempty"`
	SpanOverheadNsPerOp   float64 `json:"spanOverheadNsPerOp,omitempty"`
	// Cluster mode: followers opened, and each follower's stream counters
	// at the end of the run (after catch-up and the convergence check).
	Replicas    int              `json:"replicas,omitempty"`
	Replication []followerReport `json:"replication,omitempty"`
}

// followerReport is one follower's stream summary for the -cluster JSON
// output.
type followerReport struct {
	AppliedRecords uint64 `json:"appliedRecords"`
	SkippedRecords uint64 `json:"skippedRecords"`
	Resyncs        uint64 `json:"resyncs"`
	Healthy        bool   `json:"healthy"`
	// CatchUpNs is how long the follower took to cover the primary's final
	// flushed position after writers stopped — drain lag, not clock skew.
	CatchUpNs int64 `json:"catchUpNs"`
}

// shardRate is one shard's entry in the -shards capacity phase: the rows
// the placement routed to it and the ingest rate measured with the shard
// timed alone.
type shardRate struct {
	Shard     string  `json:"shard"`
	Rows      int     `json:"rows"`
	TPS       float64 `json:"tuplesPerSec"`
	ElapsedNs int64   `json:"elapsedNs"`
}

// latQuantiles renders a latency histogram snapshot for the JSON report.
type latQuantiles struct {
	Count  uint64 `json:"count"`
	P50Ns  int64  `json:"p50Ns"`
	P90Ns  int64  `json:"p90Ns"`
	P99Ns  int64  `json:"p99Ns"`
	P999Ns int64  `json:"p999Ns"`
}

func latFromSnapshot(s obs.HistSnapshot) *latQuantiles {
	if s.Count == 0 {
		return nil
	}
	p50, p90, p99, p999 := s.Quantiles()
	return &latQuantiles{Count: s.Count, P50Ns: p50, P90Ns: p90, P99Ns: p99, P999Ns: p999}
}

func emitJSON(r benchReport) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// buildWorkloadSchema generates a covering schema of the requested shape
// with one key FD per multi-attribute non-fact scheme (which keeps every
// shape independent, so the benchmark exercises the fast path), then
// renders it through the public parser — the same text format indepd
// accepts.
func buildWorkloadSchema(cfg engineConfig) (*indep.Schema, error) {
	schemaSrc, fdSrc, err := workloadDecl(cfg)
	if err != nil {
		return nil, err
	}
	return indep.Parse(schemaSrc, fdSrc)
}

// workloadDecl renders the generated workload schema as declaration text —
// the same strings buildWorkloadSchema parses, and (via -printschema) the
// declaration file a daemon needs to serve a -url run.
func workloadDecl(cfg engineConfig) (schemaSrc, fdSrc string, err error) {
	r := rand.New(rand.NewSource(cfg.seed))
	var wcfg workload.Config
	switch cfg.shape {
	case "star":
		wcfg = workload.Config{Attrs: cfg.attrs, Schemes: cfg.schemes, Shape: workload.ShapeStar}
	case "chain":
		wcfg = workload.Config{Attrs: cfg.attrs, SchemeMax: 5, Shape: workload.ShapeChain}
	case "random":
		wcfg = workload.Config{Attrs: cfg.attrs, Schemes: cfg.schemes, SchemeMax: 5, Shape: workload.ShapeRandom}
	default:
		return "", "", fmt.Errorf("unknown shape %q (star, chain, random)", cfg.shape)
	}
	s, _ := workload.Schema(r, wcfg)
	var fds fd.List
	for i := range s.Rels {
		cols := s.Attrs(i).Attrs()
		if s.Name(i) == "FACT" || len(cols) < 2 {
			continue
		}
		var rhs attrset.Set
		for _, a := range cols[1:] {
			rhs.Add(a)
		}
		fds = append(fds, fd.FD{LHS: attrset.Of(cols[0]), RHS: rhs})
	}
	return renderSchema(s), renderFDs(s, fds), nil
}

// runPrintSchema emits the generated workload schema in the declaration-file
// format indepd's -file flag reads, so a -url run can point at a daemon
// serving exactly the schema the generator will drive.
func runPrintSchema(cfg engineConfig) error {
	schemaSrc, fdSrc, err := workloadDecl(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("schema: %s\nfds: %s\n", schemaSrc, fdSrc)
	return nil
}

func renderSchema(s *schema.Schema) string {
	parts := make([]string, s.Size())
	for i := range parts {
		parts[i] = fmt.Sprintf("%s(%s)", s.Name(i), strings.Join(s.U.Names(s.Attrs(i)), ","))
	}
	return strings.Join(parts, "; ")
}

func renderFDs(s *schema.Schema, fds fd.List) string {
	parts := make([]string, len(fds))
	for i, f := range fds {
		parts[i] = f.Format(s.U)
	}
	return strings.Join(parts, "; ")
}

// rowFor builds the row of relation rel for a seed: every value is a pure
// function of (attribute, seed), so all FDs hold by construction and
// distinct seeds never conflict.
func rowFor(sch *indep.Schema, rel string, seed int) (map[string]string, error) {
	attrs, err := sch.RelationAttrs(rel)
	if err != nil {
		return nil, err
	}
	row := make(map[string]string, len(attrs))
	for _, a := range attrs {
		row[a] = fmt.Sprintf("%s_%d", a, seed)
	}
	return row, nil
}

// openBenchStore opens the store the flags ask for: in-memory, or durable
// over -dir (default: a temp dir). The caller must invoke cleanup.
func openBenchStore(sch *indep.Schema, cfg engineConfig) (store *indep.ConcurrentStore, ds *indep.DurableStore, mode string, cleanup func(), err error) {
	cleanup = func() {}
	if !cfg.durable {
		store, err = sch.OpenConcurrentStore()
		return store, nil, "in-memory", cleanup, err
	}
	dir := cfg.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "indepbench-wal-")
		if err != nil {
			return nil, nil, "", cleanup, err
		}
		dir = tmp
		cleanup = func() { os.RemoveAll(tmp) }
	}
	ds, err = sch.OpenDurableStore(dir, indep.DurableOptions{NoFsync: cfg.noFsync})
	if err != nil {
		cleanup()
		return nil, nil, "", func() {}, err
	}
	rm := cleanup
	cleanup = func() { ds.Close(); rm() }
	mode = "durable sync=always"
	if cfg.noFsync {
		mode = "durable sync=never"
	}
	return ds.ConcurrentStore, ds, mode, cleanup, nil
}

// measureSpanOverhead times one duplicate single-tuple insert both untraced
// (spanless context — the pay-nothing path every unsampled request takes)
// and traced (a recorder root span opened and finished around each insert,
// the shape the daemon's middleware produces). A duplicate insert isolates
// the hot guard/commit path without growing the store between runs. The
// recorder samples everything out, so the traced loop also exercises the
// steady-state arena pooling.
func measureSpanOverhead(store *indep.ConcurrentStore, sch *indep.Schema, rels []string) (untracedNs, tracedNs float64, err error) {
	const iters = 50000
	rel := rels[0]
	row, err := rowFor(sch, rel, 0)
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	if err := store.InsertCtx(ctx, rel, row); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := store.InsertCtx(ctx, rel, row); err != nil {
			return 0, 0, err
		}
	}
	untracedNs = float64(time.Since(start).Nanoseconds()) / iters

	rec := indep.NewTraceRecorder(indep.TraceRecorderOptions{Capacity: 8, Slow: -1, SampleEvery: 1 << 30})
	id := indep.NewTraceID()
	start = time.Now()
	for i := 0; i < iters; i++ {
		tr, root := rec.Start(id, "POST /insert")
		if err := store.InsertCtx(indep.ContextWithSpan(ctx, root), rel, row); err != nil {
			return 0, 0, err
		}
		rec.Finish(tr, 200)
	}
	tracedNs = float64(time.Since(start).Nanoseconds()) / iters
	return untracedNs, tracedNs, nil
}

func runEngine(cfg engineConfig) error {
	sch, err := buildWorkloadSchema(cfg)
	if err != nil {
		return err
	}
	store, ds, mode, cleanup, err := openBenchStore(sch, cfg)
	if err != nil {
		return err
	}
	defer cleanup()
	rels := sch.Relations()
	if !cfg.jsonOut {
		fmt.Printf("engine load: shape=%s schemes=%d attrs=%d fast-path=%v mode=%s\n",
			cfg.shape, len(rels), cfg.attrs, store.FastPath(), mode)
	}

	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	// Split n across workers without truncation: the first n%workers
	// workers take one extra tuple, and seed ranges stay disjoint.
	starts := make([]int, cfg.workers+1)
	for w := 0; w < cfg.workers; w++ {
		count := cfg.n / cfg.workers
		if w < cfg.n%cfg.workers {
			count++
		}
		starts[w+1] = starts[w] + count
	}
	errs := make(chan error, cfg.workers)
	var writeLat obs.Histogram
	probe := startMemProbe()
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		go func(w int) {
			base, per := starts[w], starts[w+1]-starts[w]
			for i := 0; i < per; i += cfg.batch {
				k := min(cfg.batch, per-i)
				ops := make([]indep.BatchOp, k)
				for j := range ops {
					seed := base + i + j
					rel := rels[seed%len(rels)]
					row, err := rowFor(sch, rel, seed)
					if err != nil {
						errs <- err
						return
					}
					ops[j] = indep.BatchOp{Rel: rel, Row: row}
				}
				bs := time.Now()
				if err := store.InsertBatch(ops); err != nil {
					errs <- err
					return
				}
				writeLat.ObserveSince(bs)
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < cfg.workers; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	total := starts[cfg.workers]
	allocsPerOp, bytesPerOp := probe.perOp(int64(total))
	untracedNs, tracedNs, err := measureSpanOverhead(store, sch, rels)
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		return emitJSON(benchReport{
			Mode: "engine", Shape: cfg.shape, Schemes: len(rels), Attrs: cfg.attrs,
			FastPath: store.FastPath(), Store: mode,
			Workers: cfg.workers, Batch: cfg.batch,
			WriteTuples: int64(total),
			WriteTPS:    float64(total) / elapsed.Seconds(),
			WriteNsPerOp: float64(elapsed.Nanoseconds()) /
				float64(max(total, 1)),
			MeasuredOps: int64(total),
			AllocsPerOp: allocsPerOp, BytesPerOp: bytesPerOp,
			ElapsedNs:             elapsed.Nanoseconds(),
			WriteBatchLat:         latFromSnapshot(writeLat.Snapshot()),
			UntracedInsertNsPerOp: untracedNs,
			TracedInsertNsPerOp:   tracedNs,
			SpanOverheadNsPerOp:   tracedNs - untracedNs,
		})
	}
	fmt.Printf("inserted %d tuples in %v (%.0f tuples/s) batch=%d workers=%d rows=%d (%.1f allocs/op, %.0f B/op)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		cfg.batch, cfg.workers, store.Rows(), allocsPerOp, bytesPerOp)
	if bl := latFromSnapshot(writeLat.Snapshot()); bl != nil {
		fmt.Printf("batch latency: p50=%v p90=%v p99=%v p999=%v (%d batches)\n",
			time.Duration(bl.P50Ns), time.Duration(bl.P90Ns),
			time.Duration(bl.P99Ns), time.Duration(bl.P999Ns), bl.Count)
	}
	fmt.Printf("span overhead: untraced insert %.0f ns/op, traced %.0f ns/op (+%.0f ns)\n",
		untracedNs, tracedNs, tracedNs-untracedNs)

	fmt.Printf("%-10s %10s %10s %10s %12s %12s\n", "relation", "tuples", "inserts", "rejects", "p50", "p99")
	for _, st := range store.Stats() {
		fmt.Printf("%-10s %10d %10d %10d %12v %12v\n",
			st.Relation, st.Tuples, st.Inserts, st.Rejects, st.P50, st.P99)
	}

	if ds != nil {
		printWALStats(ds)
		ckStart := time.Now()
		if err := ds.Checkpoint(); err != nil {
			return err
		}
		ws := ds.WAL()
		fmt.Printf("checkpoint: wrote snapshot in %v; log now %d bytes over %d segments\n",
			time.Since(ckStart).Round(time.Millisecond), ws.TotalBytes, ws.Segments)
	}
	return nil
}

// runRemote drives a running indepd over HTTP instead of an in-process
// store: each writer posts atomic batches over the binary wire protocol
// (-wire bin, POST /v1/batchbin — a BinBatchEncoder payload, no JSON
// anywhere on the path) or the JSON /v1/batch endpoint. The daemon must
// serve the schema this run generates; start it with the declaration
// -printschema emits on the same shape/seed flags. Latency is
// client-observed (encode + HTTP + server apply), and allocs/op are the
// client's — running both wires on identical flags isolates the protocol's
// end-to-end cost.
func runRemote(cfg engineConfig) error {
	sch, err := buildWorkloadSchema(cfg)
	if err != nil {
		return err
	}
	if cfg.wire != "bin" && cfg.wire != "json" {
		return fmt.Errorf("bad -wire %q (want bin or json)", cfg.wire)
	}
	rels := sch.Relations()
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if !cfg.jsonOut {
		fmt.Printf("remote load: url=%s wire=%s shape=%s schemes=%d attrs=%d n=%d batch=%d workers=%d\n",
			cfg.url, cfg.wire, cfg.shape, len(rels), cfg.attrs, cfg.n, cfg.batch, cfg.workers)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	postBatch := func(enc *indep.BinBatchEncoder, ops []indep.BatchOp) error {
		var body []byte
		u, ctype := cfg.url+"/v1/batchbin", indep.BinContentType
		if cfg.wire == "bin" {
			enc.Reset()
			for _, op := range ops {
				if err := enc.Add(op.Rel, op.Row); err != nil {
					return err
				}
			}
			body = enc.Bytes()
		} else {
			type tupleReq struct {
				Relation string            `json:"relation"`
				Row      map[string]string `json:"row"`
			}
			jops := make([]tupleReq, len(ops))
			for i, op := range ops {
				jops[i] = tupleReq{Relation: op.Rel, Row: op.Row}
			}
			var err error
			if body, err = json.Marshal(map[string]any{"ops": jops}); err != nil {
				return err
			}
			u, ctype = cfg.url+"/v1/batch", "application/json"
		}
		resp, err := client.Post(u, ctype, bytes.NewReader(body))
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: %s: %s", u, resp.Status, strings.TrimSpace(string(msg)))
		}
		return nil
	}

	// The same disjoint seed striping as the in-process engine run, so the
	// two are directly comparable.
	starts := make([]int, cfg.workers+1)
	for w := 0; w < cfg.workers; w++ {
		count := cfg.n / cfg.workers
		if w < cfg.n%cfg.workers {
			count++
		}
		starts[w+1] = starts[w] + count
	}
	errs := make(chan error, cfg.workers)
	var writeLat obs.Histogram
	probe := startMemProbe()
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		go func(w int) {
			enc := indep.NewBinBatchEncoder(sch)
			base, per := starts[w], starts[w+1]-starts[w]
			for i := 0; i < per; i += cfg.batch {
				k := min(cfg.batch, per-i)
				ops := make([]indep.BatchOp, k)
				for j := range ops {
					seed := base + i + j
					rel := rels[seed%len(rels)]
					row, err := rowFor(sch, rel, seed)
					if err != nil {
						errs <- err
						return
					}
					ops[j] = indep.BatchOp{Rel: rel, Row: row}
				}
				bs := time.Now()
				if err := postBatch(enc, ops); err != nil {
					errs <- err
					return
				}
				writeLat.ObserveSince(bs)
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < cfg.workers; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	total := starts[cfg.workers]
	allocsPerOp, bytesPerOp := probe.perOp(int64(total))
	fastPath := false
	if a, err := sch.Analyze(); err == nil {
		fastPath = a.Independent
	}
	if cfg.jsonOut {
		return emitJSON(benchReport{
			Mode: "engine", Shape: cfg.shape, Schemes: len(rels), Attrs: cfg.attrs,
			FastPath: fastPath, Store: "remote " + cfg.wire,
			Workers: cfg.workers, Batch: cfg.batch,
			WriteTuples: int64(total),
			WriteTPS:    float64(total) / elapsed.Seconds(),
			WriteNsPerOp: float64(elapsed.Nanoseconds()) /
				float64(max(total, 1)),
			MeasuredOps: int64(total),
			AllocsPerOp: allocsPerOp, BytesPerOp: bytesPerOp,
			ElapsedNs:     elapsed.Nanoseconds(),
			WriteBatchLat: latFromSnapshot(writeLat.Snapshot()),
		})
	}
	fmt.Printf("posted %d tuples in %v (%.0f tuples/s) batch=%d workers=%d (%.1f client allocs/op, %.0f client B/op)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		cfg.batch, cfg.workers, allocsPerOp, bytesPerOp)
	if bl := latFromSnapshot(writeLat.Snapshot()); bl != nil {
		fmt.Printf("batch latency: p50=%v p90=%v p99=%v p999=%v (%d batches)\n",
			time.Duration(bl.P50Ns), time.Duration(bl.P90Ns),
			time.Duration(bl.P99Ns), time.Duration(bl.P999Ns), bl.Count)
	}
	return nil
}

// windowPool builds the attribute sets the readers cycle through: every
// relation's own attributes (local-projection windows) and, for adjacent
// scheme pairs, their union (cross-relation windows that exercise the
// extension joins — or the chase, when the schema is not independent).
func windowPool(sch *indep.Schema) ([][]string, error) {
	rels := sch.Relations()
	var pool [][]string
	for _, rel := range rels {
		attrs, err := sch.RelationAttrs(rel)
		if err != nil {
			return nil, err
		}
		pool = append(pool, attrs)
	}
	for i := 0; i+1 < len(rels); i++ {
		a, err := sch.RelationAttrs(rels[i])
		if err != nil {
			return nil, err
		}
		b, err := sch.RelationAttrs(rels[i+1])
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool, len(a)+len(b))
		var union []string
		for _, x := range append(append([]string{}, a...), b...) {
			if !seen[x] {
				seen[x] = true
				union = append(union, x)
			}
		}
		pool = append(pool, union)
	}
	return pool, nil
}

// runQuery drives the mixed read/write load: writers insert batches while
// readers issue window queries against lock-free snapshots, for the
// configured duration.
func runQuery(cfg engineConfig) error {
	sch, err := buildWorkloadSchema(cfg)
	if err != nil {
		return err
	}
	store, ds, mode, cleanup, err := openBenchStore(sch, cfg)
	if err != nil {
		return err
	}
	defer cleanup()
	rels := sch.Relations()
	pool, err := windowPool(sch)
	if err != nil {
		return err
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.workers < 0 {
		cfg.workers = 0
	}
	if cfg.readers < 1 {
		cfg.readers = 1
	}
	if !cfg.jsonOut {
		fmt.Printf("query load: shape=%s schemes=%d attrs=%d fast-path=%v mode=%s writers=%d readers=%d batch=%d duration=%v gomaxprocs=%d\n",
			cfg.shape, len(rels), cfg.attrs, store.FastPath(), mode,
			cfg.workers, cfg.readers, cfg.batch, cfg.duration, runtime.GOMAXPROCS(0))
	}

	// Seeds come from one shared counter so rows stay distinct across phases
	// and workers; every value is a pure function of its seed, so the write
	// set is identical to the per-worker striping this replaces.
	var seedCtr atomic.Int64
	// runPhase drives nWriters writers and nReaders readers for d. Read
	// latency goes through the same log2-bucketed histogram the store's
	// telemetry uses (when rLat is non-nil), so the report's quantiles are
	// directly comparable with a /metrics scrape of a production daemon.
	runPhase := func(d time.Duration, nWriters, nReaders int, rLat *obs.Histogram) (wroteN, readN int64, elapsed time.Duration, err error) {
		var stop atomic.Bool
		var wrote, reads atomic.Int64
		errc := make(chan error, nWriters+nReaders)
		// fail stops the whole phase immediately: without it a t=0 error
		// would leave every other goroutine burning the full budget for a
		// run whose results are discarded.
		fail := func(err error) {
			stop.Store(true)
			errc <- err
		}
		var wg sync.WaitGroup
		for w := 0; w < nWriters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					base := int(seedCtr.Add(int64(cfg.batch))) - cfg.batch
					ops := make([]indep.BatchOp, cfg.batch)
					for j := range ops {
						seed := base + j
						rel := rels[seed%len(rels)]
						row, err := rowFor(sch, rel, seed)
						if err != nil {
							fail(err)
							return
						}
						ops[j] = indep.BatchOp{Rel: rel, Row: row}
					}
					if err := store.InsertBatch(ops); err != nil {
						fail(err)
						return
					}
					wrote.Add(int64(cfg.batch))
				}
			}()
		}
		for r := 0; r < nReaders; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for k := 0; !stop.Load(); k++ {
					attrs := pool[(k*nReaders+r)%len(pool)]
					qs := time.Now()
					if _, err := store.Window(attrs...); err != nil {
						fail(err)
						return
					}
					if rLat != nil {
						rLat.ObserveSince(qs)
					}
					reads.Add(1)
				}
			}(r)
		}
		start := time.Now()
		time.Sleep(d)
		stop.Store(true)
		wg.Wait()
		elapsed = time.Since(start)
		close(errc)
		for err := range errc {
			if err != nil {
				return 0, 0, 0, err
			}
		}
		return wrote.Load(), reads.Load(), elapsed, nil
	}

	// The mixed phase runs first, on the fresh store, and provides the
	// headline throughput and latency figures. Two isolation phases follow,
	// each bracketing one path's allocation cost with its own MemStats
	// probe — a blended allocs/op can hide a write-path regression behind
	// cheap reads (or vice versa); the split can't.
	var readLat obs.Histogram
	probe := startMemProbe()
	wroteN, reads, elapsed, err := runPhase(cfg.duration/2, cfg.workers, cfg.readers, &readLat)
	if err != nil {
		return err
	}
	allocsPerOp, bytesPerOp := probe.perOp(wroteN + reads)

	// The read-only probe runs directly after the mixed phase, against the
	// store the mixed numbers ended with — running writers first would grow
	// the store several-fold and make the read figures describe a different
	// database. A warmup pass evaluates every window once while the store is
	// static, so the probe measures the steady-state read path (cached plan,
	// reused snapshot) rather than each window's first evaluation.
	quarter := cfg.duration / 4
	var writeAllocs, writeBytes, readAllocs, readBytes float64
	for _, attrs := range pool {
		if _, err := store.Window(attrs...); err != nil {
			return err
		}
	}
	probe = startMemProbe()
	_, r2, _, err := runPhase(quarter, 0, cfg.readers, nil)
	if err != nil {
		return err
	}
	readAllocs, readBytes = probe.perOp(r2)
	if cfg.workers > 0 {
		probe = startMemProbe()
		w3, _, _, err := runPhase(quarter, cfg.workers, 0, nil)
		if err != nil {
			return err
		}
		writeAllocs, writeBytes = probe.perOp(w3)
	}

	rs := readLat.Snapshot()
	p50, p90, p99, p999 := rs.Quantiles()
	if cfg.jsonOut {
		return emitJSON(benchReport{
			Mode: "query", Shape: cfg.shape, Schemes: len(rels), Attrs: cfg.attrs,
			FastPath: store.FastPath(), Store: mode,
			Workers: cfg.workers, Batch: cfg.batch, Readers: cfg.readers,
			WriteTuples: wroteN,
			WriteTPS:    float64(wroteN) / elapsed.Seconds(),
			ReadQueries: reads,
			ReadQPS:     float64(reads) / elapsed.Seconds(),
			ReadP50Ns:   p50,
			ReadP99Ns:   p99,
			MeasuredOps: wroteN + reads,
			AllocsPerOp: allocsPerOp, BytesPerOp: bytesPerOp,
			WritePhaseAllocsPerOp: writeAllocs, WritePhaseBytesPerOp: writeBytes,
			ReadPhaseAllocsPerOp: readAllocs, ReadPhaseBytesPerOp: readBytes,
			ElapsedNs: elapsed.Nanoseconds(),
			ReadLat:   latFromSnapshot(rs),
		})
	}
	fmt.Printf("writes: %d tuples in %v (%.0f tuples/s)\n",
		wroteN, elapsed.Round(time.Millisecond),
		float64(wroteN)/elapsed.Seconds())
	fmt.Printf("reads:  %d window queries (%.0f queries/s) p50=%v p90=%v p99=%v p999=%v\n",
		reads, float64(reads)/elapsed.Seconds(),
		time.Duration(p50), time.Duration(p90), time.Duration(p99), time.Duration(p999))
	fmt.Printf("allocs: write-only %.1f allocs/op %.0f B/op; read-only %.1f allocs/op %.0f B/op; mixed %.1f allocs/op %.0f B/op\n",
		writeAllocs, writeBytes, readAllocs, readBytes, allocsPerOp, bytesPerOp)
	qs := store.QueryStats()
	fmt.Printf("query stats: queries=%d planHits=%d fastEvals=%d chaseEvals=%d snapshotReuses=%d snapshotCopies=%d\n",
		qs.Queries, qs.PlanHits, qs.FastEvals, qs.ChaseEvals, qs.SnapshotReuses, qs.SnapshotCopies)
	if ds != nil {
		printWALStats(ds)
	}
	return nil
}

// runCluster drives the replication load: writers insert on a durable
// primary while -replicas followers tail its WAL in-process, and readers
// round-robin window queries across every serving node. The run ends with
// a catch-up wait and a bit-for-bit convergence check against the primary,
// so a throughput number is only ever reported for a correct cluster.
func runCluster(cfg engineConfig) error {
	sch, err := buildWorkloadSchema(cfg)
	if err != nil {
		return err
	}
	cfg.durable = true // a cluster streams a WAL; there is no in-memory primary
	store, ds, mode, cleanup, err := openBenchStore(sch, cfg)
	if err != nil {
		return err
	}
	defer cleanup()
	rels := sch.Relations()
	pool, err := windowPool(sch)
	if err != nil {
		return err
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.readers < 1 {
		cfg.readers = 1
	}
	if cfg.replicas < 0 {
		cfg.replicas = 0
	}

	// Followers stream from the primary's DurableStore directly — the same
	// ReplSource the HTTP endpoints wrap, minus the network, so the numbers
	// isolate replication cost from transport cost.
	followers := make([]*indep.Follower, cfg.replicas)
	for i := range followers {
		fdir, err := os.MkdirTemp("", "indepbench-replica-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(fdir)
		f, err := sch.OpenFollower(fdir, ds, indep.FollowerOptions{
			NoFsync: cfg.noFsync, PollInterval: time.Millisecond})
		if err != nil {
			return err
		}
		defer f.Close()
		followers[i] = f
	}
	// Readers query the followers when there are any, the primary otherwise:
	// the 0-replica run is the single-node baseline the scaling compares to.
	targets := make([]*indep.ConcurrentStore, 0, cfg.replicas+1)
	if cfg.replicas == 0 {
		targets = append(targets, store)
	}
	for _, f := range followers {
		targets = append(targets, f.ConcurrentStore)
	}

	if !cfg.jsonOut {
		fmt.Printf("cluster load: shape=%s schemes=%d attrs=%d mode=%s replicas=%d writers=%d readers=%d batch=%d duration=%v\n",
			cfg.shape, len(rels), cfg.attrs, mode, cfg.replicas,
			cfg.workers, cfg.readers, cfg.batch, cfg.duration)
	}

	probe := startMemProbe()
	var stop atomic.Bool
	var wrote atomic.Int64
	errc := make(chan error, cfg.workers+cfg.readers)
	fail := func(err error) {
		stop.Store(true)
		errc <- err
	}
	var wg sync.WaitGroup

	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; !stop.Load(); k++ {
				ops := make([]indep.BatchOp, cfg.batch)
				for j := range ops {
					seed := (k*cfg.batch+j)*cfg.workers + w
					rel := rels[seed%len(rels)]
					row, err := rowFor(sch, rel, seed)
					if err != nil {
						fail(err)
						return
					}
					ops[j] = indep.BatchOp{Rel: rel, Row: row}
				}
				if err := store.InsertBatch(ops); err != nil {
					fail(err)
					return
				}
				wrote.Add(int64(cfg.batch))
			}
		}(w)
	}

	var readLat obs.Histogram
	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := 0; !stop.Load(); k++ {
				node := targets[(k+r)%len(targets)]
				attrs := pool[(k*cfg.readers+r)%len(pool)]
				qs := time.Now()
				if _, err := node.Window(attrs...); err != nil {
					fail(err)
					return
				}
				readLat.ObserveSince(qs)
			}
		}(r)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		if err != nil {
			return err
		}
	}

	// Catch-up: every follower must reach the primary's final flushed
	// position, and its state must match the primary bit for bit.
	flushed := ds.ReplPosition()
	primarySnap := store.Snapshot()
	reports := make([]followerReport, len(followers))
	for i, f := range followers {
		cs := time.Now()
		if !f.WaitFor(flushed, 30*time.Second) {
			return fmt.Errorf("replica %d never reached %s (applied %s)", i, flushed, f.Applied())
		}
		catchUp := time.Since(cs)
		if diff := indep.DiffDatabases(primarySnap, f.Snapshot()); diff != nil {
			return fmt.Errorf("replica %d diverged from primary: %s", i, strings.Join(diff, "; "))
		}
		st := f.ReplStats()
		reports[i] = followerReport{
			AppliedRecords: st.AppliedRecords,
			SkippedRecords: st.SkippedRecords,
			Resyncs:        st.Resyncs,
			Healthy:        st.Healthy,
			CatchUpNs:      catchUp.Nanoseconds(),
		}
	}

	rs := readLat.Snapshot()
	reads := int64(rs.Count)
	p50, p90, p99, p999 := rs.Quantiles()
	allocsPerOp, bytesPerOp := probe.perOp(wrote.Load() + reads)
	if cfg.jsonOut {
		w := wrote.Load()
		return emitJSON(benchReport{
			Mode: "cluster", Shape: cfg.shape, Schemes: len(rels), Attrs: cfg.attrs,
			FastPath: store.FastPath(), Store: mode,
			Workers: cfg.workers, Batch: cfg.batch, Readers: cfg.readers,
			WriteTuples: w,
			WriteTPS:    float64(w) / elapsed.Seconds(),
			ReadQueries: reads,
			ReadQPS:     float64(reads) / elapsed.Seconds(),
			ReadP50Ns:   p50,
			ReadP99Ns:   p99,
			MeasuredOps: w + reads,
			AllocsPerOp: allocsPerOp, BytesPerOp: bytesPerOp,
			ElapsedNs:   elapsed.Nanoseconds(),
			ReadLat:     latFromSnapshot(rs),
			Replicas:    cfg.replicas,
			Replication: reports,
		})
	}
	fmt.Printf("writes: %d tuples in %v (%.0f tuples/s)\n",
		wrote.Load(), elapsed.Round(time.Millisecond),
		float64(wrote.Load())/elapsed.Seconds())
	fmt.Printf("reads:  %d window queries (%.0f queries/s) p50=%v p90=%v p99=%v p999=%v across %d node(s)\n",
		reads, float64(reads)/elapsed.Seconds(),
		time.Duration(p50), time.Duration(p90), time.Duration(p99), time.Duration(p999),
		len(targets))
	for i, rep := range reports {
		fmt.Printf("replica %d: applied=%d skipped=%d resyncs=%d healthy=%v caught up in %v; converged\n",
			i, rep.AppliedRecords, rep.SkippedRecords, rep.Resyncs, rep.Healthy,
			time.Duration(rep.CatchUpNs).Round(time.Millisecond))
	}
	printWALStats(ds)
	return nil
}

// printWALStats reports the log's depth and group-commit batching win;
// shared by the -engine and -query epilogues.
func printWALStats(ds *indep.DurableStore) {
	ws := ds.WAL()
	perGroup := float64(ws.Records)
	if ws.CommitGroups > 0 {
		perGroup = float64(ws.Records) / float64(ws.CommitGroups)
	}
	fmt.Printf("wal: segments=%d totalBytes=%d records=%d commitGroups=%d syncs=%d (%.1f records/group)\n",
		ws.Segments, ws.TotalBytes, ws.Records, ws.CommitGroups, ws.Syncs, perGroup)
}
