package main

// The -shards mode measures the tentpole claim of the sharded serving
// tier: because an independent schema validates every insert using only
// the owning relation's local state, a router can split writes across N
// shard stores with zero cross-shard coordination — so aggregate write
// capacity scales with node count, not just cores.
//
// The run has two phases:
//
//  1. Routed: binary batch payloads are driven through a real
//     cluster.Router over in-process shards (LocalTransport — the full
//     encode/decode/route/apply path, minus only the network). This phase
//     proves correctness (row-count audit, zero rejections, a gathered
//     window over the assembled state) and reports the end-to-end routed
//     throughput, which on a C-core host is bounded by C no matter how
//     many shards exist — in-process shards share the host's cores.
//
//  2. Capacity: the same op stream is split per owner by the router's
//     placement, then each shard's share is applied against a fresh store
//     with that shard timed alone, so the measurement is exactly the work
//     one node does. Because the routed phase demonstrated that no write
//     ever touches two shards, the shards are shared-nothing: a real
//     N-node cluster runs those N ingest streams on disjoint hardware,
//     and its aggregate write throughput is the sum of the per-shard
//     rates. That sum is the headline writeTuplesPerSec; the JSON also
//     carries routedTuplesPerSec, the per-shard breakdown, and hostCores
//     so the two numbers can never be confused.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"indep"
	"indep/internal/cluster"
	"indep/internal/obs"
)

func runShards(cfg engineConfig) error {
	sch, err := buildWorkloadSchema(cfg)
	if err != nil {
		return err
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	members := make([]cluster.Member, cfg.shards)
	transports := make(map[string]cluster.Transport, cfg.shards)
	stores := make([]*indep.ConcurrentStore, cfg.shards)
	for i := range members {
		name := fmt.Sprintf("shard%d", i+1)
		store, err := sch.OpenConcurrentStore()
		if err != nil {
			return err
		}
		stores[i] = store
		members[i] = cluster.Member{Name: name, URL: "local://" + name}
		transports[name] = &cluster.LocalTransport{Shard: name, Store: store}
	}
	rt, err := cluster.NewRouter(sch, members, cluster.Options{Transports: transports})
	if err != nil {
		return err
	}
	rels := sch.Relations()
	if !cfg.jsonOut {
		fmt.Printf("shard load: shape=%s schemes=%d attrs=%d shards=%d workers=%d batch=%d cores=%d\n",
			cfg.shape, len(rels), cfg.attrs, cfg.shards, cfg.workers, cfg.batch, runtime.NumCPU())
	}

	// The same disjoint seed striping as the engine run, so single-node and
	// sharded numbers are directly comparable.
	starts := make([]int, cfg.workers+1)
	for w := 0; w < cfg.workers; w++ {
		count := cfg.n / cfg.workers
		if w < cfg.n%cfg.workers {
			count++
		}
		starts[w+1] = starts[w] + count
	}
	ctx := context.Background()
	errs := make(chan error, cfg.workers)
	var rejected atomic.Int64
	var writeLat obs.Histogram
	probe := startMemProbe()
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		go func(w int) {
			enc := indep.NewBinBatchEncoder(sch)
			base, per := starts[w], starts[w+1]-starts[w]
			for i := 0; i < per; i += cfg.batch {
				k := min(cfg.batch, per-i)
				enc.Reset()
				for j := 0; j < k; j++ {
					seed := base + i + j
					rel := rels[seed%len(rels)]
					row, err := rowFor(sch, rel, seed)
					if err != nil {
						errs <- err
						return
					}
					if err := enc.Add(rel, row); err != nil {
						errs <- err
						return
					}
				}
				bs := time.Now()
				rep, err := rt.Batch(ctx, enc.Bytes())
				if err != nil {
					errs <- err
					return
				}
				writeLat.ObserveSince(bs)
				rejected.Add(int64(len(rep.Rejected)))
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < cfg.workers; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	routedElapsed := time.Since(start)
	total := starts[cfg.workers]
	allocsPerOp, bytesPerOp := probe.perOp(int64(total))

	// Audit: the workload is conflict-free by construction, so every tuple
	// must have landed on exactly one shard, and a gathered window over one
	// relation must see every row that relation received.
	if n := rejected.Load(); n != 0 {
		return fmt.Errorf("workload rejected %d tuples; the generator promises zero conflicts", n)
	}
	var rows int
	for _, store := range stores {
		rows += store.Rows()
	}
	if rows != total {
		return fmt.Errorf("shards hold %d rows, expected %d", rows, total)
	}
	attrs, err := sch.RelationAttrs(rels[0])
	if err != nil {
		return err
	}
	res, err := rt.Window(ctx, indep.WindowQuery{Attrs: attrs})
	if err != nil {
		return err
	}
	perRel := total / len(rels)
	if total%len(rels) != 0 {
		perRel++ // seeds cycle rel-by-rel, so relation 0 takes the remainder
	}
	if res.Total < perRel {
		return fmt.Errorf("gathered window over %s sees %d rows, expected at least %d",
			rels[0], res.Total, perRel)
	}

	perShard, err := shardCapacity(ctx, sch, rt, members, cfg, total)
	if err != nil {
		return err
	}
	var aggTPS float64
	var shardNs int64
	for _, s := range perShard {
		aggTPS += s.TPS
		shardNs += s.ElapsedNs
	}
	routedTPS := float64(total) / routedElapsed.Seconds()

	if cfg.jsonOut {
		return emitJSON(benchReport{
			Mode: "shards", Shape: cfg.shape, Schemes: len(rels), Attrs: cfg.attrs,
			FastPath: rt.Status().Mode == "sharded", Store: fmt.Sprintf("router over %d local shards", cfg.shards),
			Shards:  cfg.shards,
			Workers: cfg.workers, Batch: cfg.batch,
			WriteTuples: int64(total),
			WriteTPS:    aggTPS,
			// Mean shard-side cost per tuple, consistent with the
			// capacity-sum headline above.
			WriteNsPerOp: float64(shardNs) / float64(max(total, 1)),
			RoutedTPS:    routedTPS,
			HostCores:    runtime.NumCPU(),
			PerShard:     perShard,
			MeasuredOps:  int64(total),
			AllocsPerOp:  allocsPerOp, BytesPerOp: bytesPerOp,
			ElapsedNs:     routedElapsed.Nanoseconds(),
			WriteBatchLat: latFromSnapshot(writeLat.Snapshot()),
		})
	}
	fmt.Printf("routed %d tuples in %v (%.0f tuples/s end-to-end on %d cores; %.1f allocs/op, %.0f B/op)\n",
		total, routedElapsed.Round(time.Millisecond), routedTPS,
		runtime.NumCPU(), allocsPerOp, bytesPerOp)
	if bl := latFromSnapshot(writeLat.Snapshot()); bl != nil {
		fmt.Printf("batch latency: p50=%v p90=%v p99=%v p999=%v (%d batches)\n",
			time.Duration(bl.P50Ns), time.Duration(bl.P90Ns),
			time.Duration(bl.P99Ns), time.Duration(bl.P999Ns), bl.Count)
	}
	for i, s := range perShard {
		fmt.Printf("%-8s %10d rows   %10.0f tuples/s   (routed phase held %d rows)\n",
			s.Shard, s.Rows, s.TPS, stores[i].Rows())
	}
	fmt.Printf("aggregate write capacity: %.0f tuples/s over %d shard(s)\n", aggTPS, cfg.shards)
	return nil
}

// shardCapacity splits the benchmark's op stream per owner with the
// router's own placement, then times each shard's ingest alone against a
// fresh store. Encoding is done up front (it is client/router work, not
// shard work); the timed region is exactly what one node does per payload:
// decode, validate against local state, insert.
func shardCapacity(ctx context.Context, sch *indep.Schema, rt *cluster.Router,
	members []cluster.Member, cfg engineConfig, total int) ([]shardRate, error) {
	rels := sch.Relations()
	place := rt.Placement()
	encs := make(map[string]*indep.BinBatchEncoder, len(members))
	pending := make(map[string]int, len(members))
	payloads := make(map[string][][]byte, len(members))
	for _, m := range members {
		encs[m.Name] = indep.NewBinBatchEncoder(sch)
	}
	flush := func(shard string) {
		if pending[shard] == 0 {
			return
		}
		buf := encs[shard].Bytes()
		payloads[shard] = append(payloads[shard], append([]byte(nil), buf...))
		encs[shard].Reset()
		pending[shard] = 0
	}
	for seed := 0; seed < total; seed++ {
		rel := rels[seed%len(rels)]
		row, err := rowFor(sch, rel, seed)
		if err != nil {
			return nil, err
		}
		owner, err := place.Owner(rel, row)
		if err != nil {
			return nil, err
		}
		if err := encs[owner].Add(rel, row); err != nil {
			return nil, err
		}
		if pending[owner]++; pending[owner] >= cfg.batch {
			flush(owner)
		}
	}
	for _, m := range members {
		flush(m.Name)
	}

	out := make([]shardRate, 0, len(members))
	var rows int
	for _, m := range members {
		store, err := sch.OpenConcurrentStore()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, p := range payloads[m.Name] {
			rep, err := store.ApplyBinBatchPartial(ctx, p)
			if err != nil {
				return nil, fmt.Errorf("capacity phase, %s: %w", m.Name, err)
			}
			if len(rep.Rejected) != 0 {
				return nil, fmt.Errorf("capacity phase, %s: %d rejected tuples in a conflict-free workload",
					m.Name, len(rep.Rejected))
			}
		}
		elapsed := time.Since(start)
		n := store.Rows()
		rows += n
		out = append(out, shardRate{
			Shard: m.Name, Rows: n,
			TPS:       float64(n) / elapsed.Seconds(),
			ElapsedNs: elapsed.Nanoseconds(),
		})
	}
	if rows != total {
		return nil, fmt.Errorf("capacity phase applied %d rows, expected %d", rows, total)
	}
	return out, nil
}
