package indep

import (
	"fmt"
	"sync"
	"testing"
)

func TestConcurrentStoreFastPath(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.FastPath() {
		t.Fatal("Example 2 must take the fast path")
	}
	if !cs.Analysis().Independent {
		t.Fatal("analysis must report independence")
	}
	if err := cs.Insert("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil {
		t.Fatal(err)
	}
	err = cs.Insert("CT", map[string]string{"C": "cs101", "T": "smith"})
	if !Rejected(err) {
		t.Fatalf("want rejection, got %v", err)
	}
	if err := cs.Insert("CT", map[string]string{"C": "cs101"}); err == nil || Rejected(err) {
		t.Fatalf("missing attribute must be a malformed-input error, got %v", err)
	}
	if ok, err := cs.Delete("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if err := cs.Insert("CT", map[string]string{"C": "cs101", "T": "smith"}); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	if cs.Rows() != 1 {
		t.Fatalf("Rows = %d, want 1", cs.Rows())
	}
}

func TestConcurrentStoreChasePath(t *testing.T) {
	s := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if cs.FastPath() {
		t.Fatal("Example 1 must take the chase path")
	}
	if err := cs.Insert("CD", map[string]string{"C": "CS402", "D": "CS"}); err != nil {
		t.Fatal(err)
	}
	if err := cs.Insert("CT", map[string]string{"C": "CS402", "T": "Jones"}); err != nil {
		t.Fatal(err)
	}
	err = cs.Insert("TD", map[string]string{"T": "Jones", "D": "EE"})
	if !Rejected(err) {
		t.Fatalf("the CS402 anomaly must be rejected, got %v", err)
	}
	snap := cs.Snapshot()
	if ok, err := snap.Satisfies(); err != nil || !ok {
		t.Fatalf("served state must stay satisfying: %v, %v", ok, err)
	}
}

func TestConcurrentStoreBatch(t *testing.T) {
	s := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	bad := []BatchOp{
		{Rel: "CD", Row: map[string]string{"C": "CS402", "D": "CS"}},
		{Rel: "CT", Row: map[string]string{"C": "CS402", "T": "Jones"}},
		{Rel: "TD", Row: map[string]string{"T": "Jones", "D": "EE"}},
	}
	if err := cs.InsertBatch(bad); !Rejected(err) {
		t.Fatalf("jointly unsatisfiable batch must be rejected, got %v", err)
	}
	if cs.Rows() != 0 {
		t.Fatalf("rejected batch committed %d rows", cs.Rows())
	}
	good := []BatchOp{
		{Rel: "CD", Row: map[string]string{"C": "CS402", "D": "CS"}},
		{Rel: "CT", Row: map[string]string{"C": "CS402", "T": "Jones"}},
		{Rel: "TD", Row: map[string]string{"T": "Jones", "D": "CS"}},
	}
	if err := cs.InsertBatch(good); err != nil {
		t.Fatal(err)
	}
	if cs.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", cs.Rows())
	}
}

func TestConcurrentStoreSnapshotTuples(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Insert("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil {
		t.Fatal(err)
	}
	rows, err := cs.Snapshot().Tuples("CT")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["C"] != "cs101" || rows[0]["T"] != "jones" {
		t.Fatalf("Tuples = %v", rows)
	}
	if _, err := cs.Snapshot().Tuples("NOPE"); err == nil {
		t.Fatal("want error for unknown relation")
	}
}

// concurrentStress drives a store from many goroutines; run under -race.
func concurrentStress(t *testing.T, cs *ConcurrentStore, rels []string, attrs map[string][]string) {
	const goroutines = 8
	const opsPer = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				rel := rels[(g+i)%len(rels)]
				row := make(map[string]string, len(attrs[rel]))
				for _, a := range attrs[rel] {
					// Per-seed functional values: never two bindings for one
					// LHS, so rejections come only from cross-goroutine
					// interleaving on the chase path.
					row[a] = fmt.Sprintf("%s-%d-%d", a, g, i)
				}
				switch i % 4 {
				case 0, 1:
					if err := cs.Insert(rel, row); err != nil && !Rejected(err) {
						t.Error(err)
						return
					}
				case 2:
					cs.Insert(rel, row)
					if _, err := cs.Delete(rel, row); err != nil {
						t.Error(err)
						return
					}
				case 3:
					snap := cs.Snapshot()
					if snap.Rows() < 0 {
						t.Error("impossible")
						return
					}
					cs.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

func storeAttrs(t *testing.T, s *Schema) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, rel := range s.Relations() {
		as, err := s.RelationAttrs(rel)
		if err != nil {
			t.Fatal(err)
		}
		out[rel] = as
	}
	return out
}

func TestConcurrentStoreStressIndependent(t *testing.T) {
	s := MustParse(
		"COURSE(C,T,D); ENROLL(S,C,G); ROOMS(C,H,R); STUDENT(S,N,Y)",
		"C -> T; C -> D; S C -> G; C H -> R; S -> N; S -> Y")
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.FastPath() {
		t.Fatal("University must be independent")
	}
	concurrentStress(t, cs, s.Relations(), storeAttrs(t, s))
	snap := cs.Snapshot()
	if snap.Rows() != cs.Rows() {
		t.Fatalf("snapshot rows %d != store rows %d", snap.Rows(), cs.Rows())
	}
	if ok, err := snap.Satisfies(); err != nil || !ok {
		t.Fatalf("final state unsatisfying: %v, %v", ok, err)
	}
}

func TestConcurrentStoreStressChase(t *testing.T) {
	s := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	concurrentStress(t, cs, s.Relations(), storeAttrs(t, s))
	snap := cs.Snapshot()
	if ok, err := snap.Satisfies(); err != nil || !ok {
		t.Fatalf("final state unsatisfying: %v, %v", ok, err)
	}
}

func TestConcurrentStoreDeleteDoesNotIntern(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	// Deleting rows with never-seen values must not grow the dictionary.
	for i := 0; i < 100; i++ {
		row := map[string]string{"C": fmt.Sprintf("ghost%d", i), "T": "nobody"}
		if ok, err := cs.Delete("CT", row); err != nil || ok {
			t.Fatalf("Delete(ghost) = %v, %v", ok, err)
		}
	}
	if err := cs.Insert("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil {
		t.Fatal(err)
	}
	// Empty string is a legitimate value and must round-trip through the
	// snapshot dictionary.
	if err := cs.Insert("CS", map[string]string{"C": "cs101", "S": ""}); err != nil {
		t.Fatal(err)
	}
	rows, err := cs.Snapshot().Tuples("CS")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["S"] != "" {
		t.Fatalf("empty-string value did not round-trip: %v", rows)
	}
	// And a delete addressing interned values still works.
	if ok, err := cs.Delete("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil || !ok {
		t.Fatalf("Delete(real) = %v, %v", ok, err)
	}
}
