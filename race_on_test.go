//go:build race

package indep

// raceEnabled reports that this binary was built with -race, which skews
// allocation counts (sync.Pool randomly drops puts under the detector), so
// the alloc-budget pins skip themselves; CI runs them in a plain pass.
const raceEnabled = true
