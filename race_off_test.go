//go:build !race

package indep

// raceEnabled is false in a plain build; see race_on_test.go.
const raceEnabled = false
