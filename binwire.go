package indep

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"indep/internal/engine"
	"indep/internal/obs"
	"indep/internal/relation"
	"indep/internal/wal"
)

// This file is the length-prefixed binary wire protocol for the hot
// ingest/scan path: a batch encoding clients POST to /v1/batchbin, and a
// binary window-result encoding the daemon serves under
// Accept: application/x-indep-bin. Both sides avoid encoding/json entirely.
//
// A binary batch is a sequence of WAL record frames — the exact CRC32-framed
// bytes the log itself writes (wal.AppendRecordFrame) — so the wire format
// inherits the log's encoder, decoder, and corruption detection instead of
// defining a second serialization. Values travel as client-local integer ids
// bound by intern records; the server re-interns each name and remaps ids,
// so a batch is self-contained and ids never leak between requests.

// BinContentType is the media type of both binary wire encodings: the
// request body of POST /v1/batchbin and the window response the daemon
// serves when the Accept header names it.
const BinContentType = "application/x-indep-bin"

// BinBatchEncoder builds the binary request body for POST /v1/batchbin (or
// ConcurrentStore.ApplyBinBatch directly). Rows accumulate with Add; Bytes
// renders the frames. The encoder interns value names into a client-local id
// space and emits one intern frame per distinct name, so a batch that reuses
// values (the common ingest shape) carries each name once.
//
// An encoder is not safe for concurrent use.
type BinBatchEncoder struct {
	sch    *Schema
	vals   map[string]relation.Value // name → client-local id
	next   relation.Value
	frames []byte // framed intern records, in first-use order
	ops    []wal.TupleOp
}

// NewBinBatchEncoder creates an empty encoder for the schema. The schema
// fixes each relation's attribute order, which is the tuple's value order on
// the wire — client and server must be opened from the same declaration.
func NewBinBatchEncoder(sch *Schema) *BinBatchEncoder {
	return &BinBatchEncoder{sch: sch, vals: make(map[string]relation.Value)}
}

// intern returns the client-local id for a value name, emitting its binding
// frame on first use.
func (e *BinBatchEncoder) intern(name string) relation.Value {
	if v, ok := e.vals[name]; ok {
		return v
	}
	e.next++
	e.vals[name] = e.next
	e.frames = wal.AppendRecordFrame(e.frames, wal.Intern(e.next, name))
	return e.next
}

// Add appends one row to the batch. All attributes of the relation scheme
// must be present, exactly as for ConcurrentStore.Insert.
func (e *BinBatchEncoder) Add(rel string, row map[string]string) error {
	i, t, err := rowTuple(e.sch.s, e.intern, rel, row)
	if err != nil {
		return err
	}
	e.ops = append(e.ops, wal.TupleOp{Rel: i, Tuple: t})
	return nil
}

// Len returns the number of rows added since the last Reset.
func (e *BinBatchEncoder) Len() int { return len(e.ops) }

// Bytes renders the batch: the intern frames followed by one atomic batch
// frame holding every added row. The result is self-contained — it binds
// every id it references — and decodes with ApplyBinBatch.
func (e *BinBatchEncoder) Bytes() []byte {
	buf := append([]byte(nil), e.frames...)
	if len(e.ops) > 0 {
		buf = wal.AppendRecordFrame(buf, wal.Batch(e.ops))
	}
	return buf
}

// Reset empties the encoder for the next batch, including the intern table:
// each Bytes result must be self-contained, so bindings cannot carry over.
func (e *BinBatchEncoder) Reset() {
	clear(e.vals)
	e.next = 0
	e.frames = e.frames[:0]
	e.ops = e.ops[:0]
}

// ApplyBinBatch decodes a binary batch (a BinBatchEncoder payload) and
// inserts its rows atomically, returning how many rows were admitted: either
// every row is admitted or the state is unchanged and the first violation is
// returned. The decode path shares the WAL's frame and record parsers and
// never touches encoding/json. Client-local value ids are remapped by
// re-interning their bound names; a tuple referencing an unbound id, an
// unknown relation, or a wrong arity is malformed (not a rejection).
func (cs *ConcurrentStore) ApplyBinBatch(ctx context.Context, payload []byte) (int, error) {
	ctx, sp := obs.StartSpan(ctx, "store.batchbin")
	if sp.Recording() {
		sp.SetInt("bytes", int64(len(payload)))
	}
	defer sp.End()
	s := cs.schema.s
	arity := make([]int, s.Size())
	for i := range arity {
		arity[i] = s.Attrs(i).Len()
	}
	names := make(map[relation.Value]string) // client id → name (rebind check)
	remap := make(map[relation.Value]relation.Value)
	var eops []engine.Op
	for buf := payload; len(buf) > 0; {
		pl, n, err := wal.NextStreamFrame(buf)
		if err != nil { // ErrShortFrame included: a truncated body is malformed
			return 0, fmt.Errorf("indep: binary batch: %w", err)
		}
		rec, err := wal.DecodeRecord(pl)
		if err != nil {
			return 0, fmt.Errorf("indep: binary batch: %w", err)
		}
		buf = buf[n:]
		switch rec.Kind {
		case wal.KindIntern:
			if prev, dup := names[rec.Value]; dup && prev != rec.Name {
				return 0, fmt.Errorf("indep: binary batch rebinds id %d (%q, then %q)",
					int64(rec.Value), prev, rec.Name)
			}
			names[rec.Value] = rec.Name
			remap[rec.Value] = cs.eng.Dict().Value(rec.Name)
		case wal.KindInsert, wal.KindBatch:
			for _, op := range rec.Ops {
				if op.Rel < 0 || op.Rel >= len(arity) {
					return 0, fmt.Errorf("indep: binary batch addresses relation %d (schema has %d)",
						op.Rel, len(arity))
				}
				if len(op.Tuple) != arity[op.Rel] {
					return 0, fmt.Errorf("indep: binary batch: %s tuple has %d values, want %d",
						s.Name(op.Rel), len(op.Tuple), arity[op.Rel])
				}
				t := make(relation.Tuple, len(op.Tuple))
				for j, v := range op.Tuple {
					sv, ok := remap[v]
					if !ok {
						return 0, fmt.Errorf("indep: binary batch references unbound value id %d", int64(v))
					}
					t[j] = sv
				}
				eops = append(eops, engine.Op{Scheme: op.Rel, Tuple: t})
			}
		default:
			return 0, fmt.Errorf("indep: binary batch: unsupported record kind %d", rec.Kind)
		}
	}
	if len(eops) == 0 {
		return 0, nil
	}
	if err := cs.eng.InsertBatchCtx(ctx, eops); err != nil {
		return 0, err
	}
	return len(eops), nil
}

// Binary window-result layout (everything before the trailing checksum is
// covered by it):
//
//	magic "IWIN1"
//	flags byte               bit0 fastPath, bit1 planCached
//	uvarint total            window rows before Limit
//	uvarint nattrs           then per attribute: uvarint len, name bytes
//	uvarint nbind            then per binding: varint value, uvarint len, name bytes
//	uvarint nrows            then nrows × nattrs varint values
//	uint32 LE                CRC32-Castagnoli of all preceding bytes
//
// Bindings cover exactly the values the rows reference, in first-appearance
// order, so the result is self-contained and its size tracks the distinct
// values, not the dictionary.
var winMagic = []byte("IWIN1")

var binCRC = crc32.MakeTable(crc32.Castagnoli)

// encodeWindowBinary renders a sorted, limited window as the binary result.
// at addresses the i-th emitted row's j-th column value.
func encodeWindowBinary(dict *relation.Dict, names []string, nrows int,
	at func(row, col int) relation.Value, total int, fast, cached bool) []byte {
	buf := append([]byte(nil), winMagic...)
	var flags byte
	if fast {
		flags |= 1
	}
	if cached {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(total))
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, nm := range names {
		buf = binary.AppendUvarint(buf, uint64(len(nm)))
		buf = append(buf, nm...)
	}
	seen := make(map[relation.Value]bool)
	vals := make([]relation.Value, 0, nrows)
	for i := 0; i < nrows; i++ {
		for j := range names {
			if v := at(i, j); !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		nm := dict.Name(v)
		buf = binary.AppendVarint(buf, int64(v))
		buf = binary.AppendUvarint(buf, uint64(len(nm)))
		buf = append(buf, nm...)
	}
	buf = binary.AppendUvarint(buf, uint64(nrows))
	for i := 0; i < nrows; i++ {
		for j := range names {
			buf = binary.AppendVarint(buf, int64(at(i, j)))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, binCRC))
}

// DecodeWindowBinary parses a binary window result (WindowResult.Bin, or the
// body of a /window response served as application/x-indep-bin) back into
// the JSON-equivalent shape: rendered rows, total, and the plan flags.
func DecodeWindowBinary(data []byte) (*WindowResult, error) {
	if len(data) < len(winMagic)+1+4 || string(data[:len(winMagic)]) != string(winMagic) {
		return nil, fmt.Errorf("indep: not a binary window result")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, binCRC) != sum {
		return nil, fmt.Errorf("indep: binary window result fails checksum")
	}
	b := body[len(winMagic):]
	flags := b[0]
	b = b[1:]
	readStr := func() (string, error) {
		n, rest, err := readWireUvarint(b)
		if err != nil {
			return "", err
		}
		if n > uint64(len(rest)) {
			return "", fmt.Errorf("indep: binary window result: string length %d exceeds payload", n)
		}
		b = rest[n:]
		return string(rest[:n]), nil
	}
	total, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	nattrs, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	if nattrs > uint64(len(b)) {
		return nil, fmt.Errorf("indep: binary window result: %d attributes exceed payload", nattrs)
	}
	out := &WindowResult{
		Attrs:      make([]string, nattrs),
		Total:      int(total),
		FastPath:   flags&1 != 0,
		PlanCached: flags&2 != 0,
	}
	for i := range out.Attrs {
		if out.Attrs[i], err = readStr(); err != nil {
			return nil, err
		}
	}
	nbind, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	if nbind > uint64(len(b)) {
		return nil, fmt.Errorf("indep: binary window result: %d bindings exceed payload", nbind)
	}
	bind := make(map[relation.Value]string, nbind)
	for i := uint64(0); i < nbind; i++ {
		v, rest, err := readWireVarint(b)
		if err != nil {
			return nil, err
		}
		b = rest
		nm, err2 := readStr()
		if err2 != nil {
			return nil, err2
		}
		bind[relation.Value(v)] = nm
	}
	nrows, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	if nattrs > 0 && nrows > uint64(len(b))/nattrs {
		return nil, fmt.Errorf("indep: binary window result: %d rows exceed payload", nrows)
	}
	out.Rows = make([]map[string]string, nrows)
	for i := range out.Rows {
		row := make(map[string]string, nattrs)
		for _, a := range out.Attrs {
			v, rest, err := readWireVarint(b)
			if err != nil {
				return nil, err
			}
			b = rest
			nm, ok := bind[relation.Value(v)]
			if !ok {
				return nil, fmt.Errorf("indep: binary window result references unbound value %d", v)
			}
			row[a] = nm
		}
		out.Rows[i] = row
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("indep: binary window result: %d trailing bytes", len(b))
	}
	return out, nil
}

func readWireUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("indep: binary window result: truncated uvarint")
	}
	return v, b[n:], nil
}

func readWireVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("indep: binary window result: truncated varint")
	}
	return v, b[n:], nil
}
