package indep

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"indep/internal/engine"
	"indep/internal/obs"
	"indep/internal/relation"
	"indep/internal/schema"
	"indep/internal/wal"
)

// This file is the length-prefixed binary wire protocol for the hot
// ingest/scan path: a batch encoding clients POST to /v1/batchbin, and a
// binary window-result encoding the daemon serves under
// Accept: application/x-indep-bin. Both sides avoid encoding/json entirely.
//
// A binary batch is a sequence of WAL record frames — the exact CRC32-framed
// bytes the log itself writes (wal.AppendRecordFrame) — so the wire format
// inherits the log's encoder, decoder, and corruption detection instead of
// defining a second serialization. Values travel as client-local integer ids
// bound by intern records; the server re-interns each name and remaps ids,
// so a batch is self-contained and ids never leak between requests.

// BinContentType is the media type of both binary wire encodings: the
// request body of POST /v1/batchbin and the window response the daemon
// serves when the Accept header names it.
const BinContentType = "application/x-indep-bin"

// BinBatchEncoder builds the binary request body for POST /v1/batchbin (or
// ConcurrentStore.ApplyBinBatch directly). Rows accumulate with Add; Bytes
// renders the frames. The encoder interns value names into a client-local id
// space and emits one intern frame per distinct name, so a batch that reuses
// values (the common ingest shape) carries each name once.
//
// An encoder is not safe for concurrent use.
type BinBatchEncoder struct {
	sch    *Schema
	vals   map[string]relation.Value // name → client-local id
	next   relation.Value
	frames []byte // framed intern records, in first-use order
	ops    []wal.TupleOp
	dels   []wal.TupleOp
}

// NewBinBatchEncoder creates an empty encoder for the schema. The schema
// fixes each relation's attribute order, which is the tuple's value order on
// the wire — client and server must be opened from the same declaration.
func NewBinBatchEncoder(sch *Schema) *BinBatchEncoder {
	return &BinBatchEncoder{sch: sch, vals: make(map[string]relation.Value)}
}

// intern returns the client-local id for a value name, emitting its binding
// frame on first use.
func (e *BinBatchEncoder) intern(name string) relation.Value {
	if v, ok := e.vals[name]; ok {
		return v
	}
	e.next++
	e.vals[name] = e.next
	e.frames = wal.AppendRecordFrame(e.frames, wal.Intern(e.next, name))
	return e.next
}

// Add appends one row to the batch. All attributes of the relation scheme
// must be present, exactly as for ConcurrentStore.Insert.
func (e *BinBatchEncoder) Add(rel string, row map[string]string) error {
	i, t, err := rowTuple(e.sch.s, e.intern, rel, row)
	if err != nil {
		return err
	}
	e.ops = append(e.ops, wal.TupleOp{Rel: i, Tuple: t})
	return nil
}

// Delete appends one delete to the batch. Within one payload all inserts
// apply before all deletes regardless of call order: Bytes emits the inserts
// as one atomic batch frame followed by one frame per delete, and the apply
// paths process frames in order. Deleting an absent tuple is a no-op, never
// an error, so deletes are safe to retry.
func (e *BinBatchEncoder) Delete(rel string, row map[string]string) error {
	i, t, err := rowTuple(e.sch.s, e.intern, rel, row)
	if err != nil {
		return err
	}
	e.dels = append(e.dels, wal.TupleOp{Rel: i, Tuple: t})
	return nil
}

// Len returns the number of operations added since the last Reset.
func (e *BinBatchEncoder) Len() int { return len(e.ops) + len(e.dels) }

// Bytes renders the batch: the intern frames, one atomic batch frame holding
// every added row, then one frame per delete. The result is self-contained —
// it binds every id it references — and decodes with ApplyBinBatch.
func (e *BinBatchEncoder) Bytes() []byte {
	buf := append([]byte(nil), e.frames...)
	if len(e.ops) > 0 {
		buf = wal.AppendRecordFrame(buf, wal.Batch(e.ops))
	}
	for _, d := range e.dels {
		buf = wal.AppendRecordFrame(buf, wal.Delete(d.Rel, d.Tuple))
	}
	return buf
}

// Reset empties the encoder for the next batch, including the intern table:
// each Bytes result must be self-contained, so bindings cannot carry over.
func (e *BinBatchEncoder) Reset() {
	clear(e.vals)
	e.next = 0
	e.frames = e.frames[:0]
	e.ops = e.ops[:0]
	e.dels = e.dels[:0]
}

// binBatchOps walks the frames of a binary batch payload, validating frame
// checksums, intern bindings (no conflicting rebinds), relation indices,
// arities, and value-id boundness, and calls bind once per new binding and
// op once per tuple operation in frame order (inserts from KindInsert and
// KindBatch frames, deletes from KindDelete frames). Tuples still hold
// client-local ids — every one guaranteed bound — and callers resolve them
// through the bindings they accumulated. Any error is a malformed payload,
// reported before op has been called for the offending frame.
func binBatchOps(s *schema.Schema, payload []byte,
	bind func(v relation.Value, name string),
	op func(kind wal.Kind, rel int, tuple []relation.Value) error) error {
	arity := make([]int, s.Size())
	for i := range arity {
		arity[i] = s.Attrs(i).Len()
	}
	names := make(map[relation.Value]string) // client id → name (rebind check)
	for buf := payload; len(buf) > 0; {
		pl, n, err := wal.NextStreamFrame(buf)
		if err != nil { // ErrShortFrame included: a truncated body is malformed
			return fmt.Errorf("indep: binary batch: %w", err)
		}
		rec, err := wal.DecodeRecord(pl)
		if err != nil {
			return fmt.Errorf("indep: binary batch: %w", err)
		}
		buf = buf[n:]
		switch rec.Kind {
		case wal.KindIntern:
			if prev, dup := names[rec.Value]; dup && prev != rec.Name {
				return fmt.Errorf("indep: binary batch rebinds id %d (%q, then %q)",
					int64(rec.Value), prev, rec.Name)
			}
			names[rec.Value] = rec.Name
			bind(rec.Value, rec.Name)
		case wal.KindInsert, wal.KindBatch, wal.KindDelete:
			for _, o := range rec.Ops {
				if o.Rel < 0 || o.Rel >= len(arity) {
					return fmt.Errorf("indep: binary batch addresses relation %d (schema has %d)",
						o.Rel, len(arity))
				}
				if len(o.Tuple) != arity[o.Rel] {
					return fmt.Errorf("indep: binary batch: %s tuple has %d values, want %d",
						s.Name(o.Rel), len(o.Tuple), arity[o.Rel])
				}
				for _, v := range o.Tuple {
					if _, ok := names[v]; !ok {
						return fmt.Errorf("indep: binary batch references unbound value id %d", int64(v))
					}
				}
				if err := op(rec.Kind, o.Rel, o.Tuple); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("indep: binary batch: unsupported record kind %d", rec.Kind)
		}
	}
	return nil
}

// ApplyBinBatch decodes a binary batch (a BinBatchEncoder payload) and
// applies it: all inserts are admitted atomically — either every row is
// admitted or the state is unchanged and the first violation is returned —
// and then any deletes are applied in frame order (a delete never fails; an
// absent tuple is a no-op). The return value is the number of operations
// applied. The decode path shares the WAL's frame and record parsers and
// never touches encoding/json. Client-local value ids are remapped by
// re-interning their bound names; a tuple referencing an unbound id, an
// unknown relation, or a wrong arity is malformed (not a rejection), and a
// malformed payload is detected before anything is applied.
func (cs *ConcurrentStore) ApplyBinBatch(ctx context.Context, payload []byte) (int, error) {
	ctx, sp := obs.StartSpan(ctx, "store.batchbin")
	if sp.Recording() {
		sp.SetInt("bytes", int64(len(payload)))
	}
	defer sp.End()
	remap := make(map[relation.Value]relation.Value)
	var eops, dels []engine.Op
	err := binBatchOps(cs.schema.s, payload,
		func(v relation.Value, name string) { remap[v] = cs.eng.Dict().Value(name) },
		func(kind wal.Kind, rel int, tuple []relation.Value) error {
			t := make(relation.Tuple, len(tuple))
			for j, v := range tuple {
				t[j] = remap[v]
			}
			if kind == wal.KindDelete {
				dels = append(dels, engine.Op{Scheme: rel, Tuple: t})
			} else {
				eops = append(eops, engine.Op{Scheme: rel, Tuple: t})
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	if len(eops) > 0 {
		if err := cs.eng.InsertBatchCtx(ctx, eops); err != nil {
			return 0, err
		}
	}
	for _, d := range dels {
		if _, err := cs.eng.DeleteCtx(ctx, d.Scheme, d.Tuple); err != nil {
			return len(eops), err
		}
	}
	return len(eops) + len(dels), nil
}

// BinOp is one decoded operation of a binary batch payload — the
// router-facing view of the wire format, with values resolved back to names
// so a cluster tier can split a client batch and re-encode each operation
// for the shard that owns it.
type BinOp struct {
	Rel    string
	Delete bool
	Row    map[string]string
}

// DecodeBinBatch decodes a binary batch payload into its operations in
// frame order without applying anything. Validation matches ApplyBinBatch:
// checksummed frames, no conflicting rebinds, known relations, exact
// arities, every referenced id bound. This is how a cluster router takes a
// batch apart before forwarding the pieces.
func (s *Schema) DecodeBinBatch(payload []byte) ([]BinOp, error) {
	bound := make(map[relation.Value]string)
	var ops []BinOp
	err := binBatchOps(s.s, payload,
		func(v relation.Value, name string) { bound[v] = name },
		func(kind wal.Kind, rel int, tuple []relation.Value) error {
			attrs := s.s.Attrs(rel).Attrs()
			row := make(map[string]string, len(attrs))
			for j, a := range attrs {
				row[s.s.U.Name(a)] = bound[tuple[j]]
			}
			ops = append(ops, BinOp{Rel: s.s.Name(rel), Delete: kind == wal.KindDelete, Row: row})
			return nil
		})
	if err != nil {
		return nil, err
	}
	return ops, nil
}

// OpOutcome records one operation of a partially applied batch that was not
// applied. Index is the operation's 0-based position in payload frame order
// — the same order DecodeBinBatch returns — so a router can map a shard's
// outcomes back onto the client's original batch.
type OpOutcome struct {
	Index int    `json:"index"`
	Code  string `json:"code"` // "rejected"
	Error string `json:"error"`
}

// BatchReport summarizes a partially applied batch. Processed counts the
// operations attempted; it falls short of Ops only when a non-rejection
// error (durability, chase budget) aborted the run midway, in which case
// ApplyBinBatchPartial also returns that error. Rejections never stop the
// batch: the rejected operation is recorded and the rest proceed.
type BatchReport struct {
	Ops       int         `json:"ops"`
	Processed int         `json:"processed"`
	Applied   int         `json:"applied"`
	Rejected  []OpOutcome `json:"rejected,omitempty"`
}

// ApplyBinBatchPartial decodes a binary batch and applies each operation
// individually in frame order, reporting per-operation outcomes instead of
// the all-or-nothing semantics of ApplyBinBatch. This is the mode a cluster
// router uses (POST /v1/batchbin?partial=1): a batch split across shards
// cannot be atomic anyway, and per-op outcomes are what reassembles into a
// single client-facing report. A malformed payload is detected up front and
// applies nothing. Re-applying an accepted insert or an applied delete is a
// no-op, so retrying a partially applied payload converges.
func (cs *ConcurrentStore) ApplyBinBatchPartial(ctx context.Context, payload []byte) (*BatchReport, error) {
	ctx, sp := obs.StartSpan(ctx, "store.batchbin.partial")
	if sp.Recording() {
		sp.SetInt("bytes", int64(len(payload)))
	}
	defer sp.End()
	remap := make(map[relation.Value]relation.Value)
	type resolved struct {
		del bool
		rel int
		t   relation.Tuple
	}
	var ops []resolved
	err := binBatchOps(cs.schema.s, payload,
		func(v relation.Value, name string) { remap[v] = cs.eng.Dict().Value(name) },
		func(kind wal.Kind, rel int, tuple []relation.Value) error {
			t := make(relation.Tuple, len(tuple))
			for j, v := range tuple {
				t[j] = remap[v]
			}
			ops = append(ops, resolved{del: kind == wal.KindDelete, rel: rel, t: t})
			return nil
		})
	if err != nil {
		return nil, err
	}
	rep := &BatchReport{Ops: len(ops)}
	for i, o := range ops {
		rep.Processed++
		if o.del {
			if _, err := cs.eng.DeleteCtx(ctx, o.rel, o.t); err != nil {
				return rep, err
			}
			rep.Applied++
			continue
		}
		switch err := cs.eng.InsertCtx(ctx, o.rel, o.t); {
		case err == nil:
			rep.Applied++
		case Rejected(err):
			rep.Rejected = append(rep.Rejected, OpOutcome{Index: i, Code: "rejected", Error: err.Error()})
		default:
			return rep, err
		}
	}
	return rep, nil
}

// RelationBinary renders the named relation's live tuples as a binary
// window result over the relation's own attributes, unsorted and unlimited —
// the raw fragment a cluster router gathers from each shard when a window
// must be evaluated away from the data (GET /v1/cluster/rel). Decode with
// DecodeWindowBinary; the fragment's Total is its row count.
func (cs *ConcurrentStore) RelationBinary(rel string) ([]byte, error) {
	i := cs.schema.s.IndexOf(rel)
	if i < 0 {
		return nil, fmt.Errorf("indep: unknown relation %q", rel)
	}
	st := cs.eng.Snapshot()
	inst := st.Insts[i]
	slots := inst.LiveRows()
	names := cs.schema.s.U.Names(cs.schema.s.Attrs(i))
	return encodeWindowBinary(st.Dict, names, len(slots), func(r, c int) relation.Value {
		return inst.At(slots[r], c)
	}, len(slots), cs.eng.Fast(), false), nil
}

// Binary window-result layout (everything before the trailing checksum is
// covered by it):
//
//	magic "IWIN1"
//	flags byte               bit0 fastPath, bit1 planCached
//	uvarint total            window rows before Limit
//	uvarint nattrs           then per attribute: uvarint len, name bytes
//	uvarint nbind            then per binding: varint value, uvarint len, name bytes
//	uvarint nrows            then nrows × nattrs varint values
//	uint32 LE                CRC32-Castagnoli of all preceding bytes
//
// Bindings cover exactly the values the rows reference, in first-appearance
// order, so the result is self-contained and its size tracks the distinct
// values, not the dictionary.
var winMagic = []byte("IWIN1")

var binCRC = crc32.MakeTable(crc32.Castagnoli)

// encodeWindowBinary renders a sorted, limited window as the binary result.
// at addresses the i-th emitted row's j-th column value.
func encodeWindowBinary(dict *relation.Dict, names []string, nrows int,
	at func(row, col int) relation.Value, total int, fast, cached bool) []byte {
	buf := append([]byte(nil), winMagic...)
	var flags byte
	if fast {
		flags |= 1
	}
	if cached {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(total))
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, nm := range names {
		buf = binary.AppendUvarint(buf, uint64(len(nm)))
		buf = append(buf, nm...)
	}
	seen := make(map[relation.Value]bool)
	vals := make([]relation.Value, 0, nrows)
	for i := 0; i < nrows; i++ {
		for j := range names {
			if v := at(i, j); !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		nm := dict.Name(v)
		buf = binary.AppendVarint(buf, int64(v))
		buf = binary.AppendUvarint(buf, uint64(len(nm)))
		buf = append(buf, nm...)
	}
	buf = binary.AppendUvarint(buf, uint64(nrows))
	for i := 0; i < nrows; i++ {
		for j := range names {
			buf = binary.AppendVarint(buf, int64(at(i, j)))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, binCRC))
}

// DecodeWindowBinary parses a binary window result (WindowResult.Bin, or the
// body of a /window response served as application/x-indep-bin) back into
// the JSON-equivalent shape: rendered rows, total, and the plan flags.
func DecodeWindowBinary(data []byte) (*WindowResult, error) {
	if len(data) < len(winMagic)+1+4 || string(data[:len(winMagic)]) != string(winMagic) {
		return nil, fmt.Errorf("indep: not a binary window result")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, binCRC) != sum {
		return nil, fmt.Errorf("indep: binary window result fails checksum")
	}
	b := body[len(winMagic):]
	flags := b[0]
	b = b[1:]
	readStr := func() (string, error) {
		n, rest, err := readWireUvarint(b)
		if err != nil {
			return "", err
		}
		if n > uint64(len(rest)) {
			return "", fmt.Errorf("indep: binary window result: string length %d exceeds payload", n)
		}
		b = rest[n:]
		return string(rest[:n]), nil
	}
	total, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	nattrs, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	if nattrs > uint64(len(b)) {
		return nil, fmt.Errorf("indep: binary window result: %d attributes exceed payload", nattrs)
	}
	out := &WindowResult{
		Attrs:      make([]string, nattrs),
		Total:      int(total),
		FastPath:   flags&1 != 0,
		PlanCached: flags&2 != 0,
	}
	for i := range out.Attrs {
		if out.Attrs[i], err = readStr(); err != nil {
			return nil, err
		}
	}
	nbind, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	if nbind > uint64(len(b)) {
		return nil, fmt.Errorf("indep: binary window result: %d bindings exceed payload", nbind)
	}
	bind := make(map[relation.Value]string, nbind)
	for i := uint64(0); i < nbind; i++ {
		v, rest, err := readWireVarint(b)
		if err != nil {
			return nil, err
		}
		b = rest
		nm, err2 := readStr()
		if err2 != nil {
			return nil, err2
		}
		bind[relation.Value(v)] = nm
	}
	nrows, b2, err := readWireUvarint(b)
	if err != nil {
		return nil, err
	}
	b = b2
	if nattrs > 0 && nrows > uint64(len(b))/nattrs {
		return nil, fmt.Errorf("indep: binary window result: %d rows exceed payload", nrows)
	}
	out.Rows = make([]map[string]string, nrows)
	for i := range out.Rows {
		row := make(map[string]string, nattrs)
		for _, a := range out.Attrs {
			v, rest, err := readWireVarint(b)
			if err != nil {
				return nil, err
			}
			b = rest
			nm, ok := bind[relation.Value(v)]
			if !ok {
				return nil, fmt.Errorf("indep: binary window result references unbound value %d", v)
			}
			row[a] = nm
		}
		out.Rows[i] = row
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("indep: binary window result: %d trailing bytes", len(b))
	}
	return out, nil
}

func readWireUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("indep: binary window result: truncated uvarint")
	}
	return v, b[n:], nil
}

func readWireVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("indep: binary window result: truncated varint")
	}
	return v, b[n:], nil
}
