package indep

import (
	"context"
	"log/slog"
	"time"

	"indep/internal/chase"
	"indep/internal/engine"
	"indep/internal/obs"
	"indep/internal/relation"
)

// ConcurrentStore is a thread-safe maintained database built on the sharded
// engine. For an independent schema every relation validates behind its own
// lock stripe, so inserts into different relations proceed concurrently —
// the paper's locality payoff turned into parallelism. For any other schema
// operations serialize through the chase maintainer, so every schema works;
// FastPath reports which regime is active.
//
// All methods are safe for concurrent use by any number of goroutines.
type ConcurrentStore struct {
	schema   *Schema
	eng      *engine.Engine
	analysis *Analysis
}

// OpenConcurrentStore analyzes the schema and opens an empty concurrent
// maintained database.
func (s *Schema) OpenConcurrentStore() (*ConcurrentStore, error) {
	eng, err := engine.New(s.s, s.fds, chase.DefaultCaps)
	if err != nil {
		return nil, err
	}
	return &ConcurrentStore{schema: s, eng: eng, analysis: s.newAnalysis(eng.Result())}, nil
}

// FastPath reports whether the store validates through per-relation lock
// stripes (independent schema) rather than the serialized chase.
func (cs *ConcurrentStore) FastPath() bool { return cs.eng.Fast() }

// Analysis returns the independence analysis the store was opened with.
func (cs *ConcurrentStore) Analysis() *Analysis { return cs.analysis }

// Insert validates and adds a row. A rejected insert leaves the state
// unchanged and returns an error wrapping ErrRejected (test with Rejected).
//
// Values are interned before validation, so the dictionary retains names
// from rejected inserts too: validation has to compare the candidate's
// values against existing bindings, and interning is what makes that
// comparison O(1). Deletes, by contrast, never intern (see Delete).
func (cs *ConcurrentStore) Insert(rel string, row map[string]string) error {
	return cs.InsertCtx(context.Background(), rel, row)
}

// InsertCtx is Insert with the context's trace ID (obs.WithTrace) attached
// to the mutation, so a durable store's fsync ack and any slow-operation
// record carry the same ID as the caller's access log.
func (cs *ConcurrentStore) InsertCtx(ctx context.Context, rel string, row map[string]string) error {
	ctx, sp := obs.StartSpan(ctx, "store.insert")
	if sp.Recording() {
		sp.SetAttr("relation", rel)
	}
	defer sp.End()
	i, t, err := rowTuple(cs.schema.s, cs.eng.Dict().Value, rel, row)
	if err != nil {
		return err
	}
	return cs.eng.InsertCtx(ctx, i, t)
}

// Delete removes a row, reporting whether it was present. Deletions are
// always admissible (satisfaction is closed under subsets), so the only
// errors are malformed rows. Values are looked up, never interned: a row
// mentioning a value the store has never seen cannot be present, so the
// dictionary does not grow on (possibly adversarial) misses.
func (cs *ConcurrentStore) Delete(rel string, row map[string]string) (bool, error) {
	return cs.DeleteCtx(context.Background(), rel, row)
}

// DeleteCtx is Delete with the context's trace ID attached to the mutation.
func (cs *ConcurrentStore) DeleteCtx(ctx context.Context, rel string, row map[string]string) (bool, error) {
	ctx, sp := obs.StartSpan(ctx, "store.delete")
	if sp.Recording() {
		sp.SetAttr("relation", rel)
	}
	defer sp.End()
	missing := false
	lookup := func(name string) relation.Value {
		v, ok := cs.eng.Dict().Lookup(name)
		if !ok {
			missing = true
		}
		return v
	}
	i, t, err := rowTuple(cs.schema.s, lookup, rel, row)
	if err != nil {
		return false, err
	}
	if missing {
		return false, nil
	}
	return cs.eng.DeleteCtx(ctx, i, t)
}

// BatchOp is one row of an InsertBatch.
type BatchOp struct {
	Rel string
	Row map[string]string
}

// InsertBatch validates and adds the rows atomically: either every row is
// admitted or the state is unchanged and the first violation is returned.
// On the fast path each involved relation's stripe is taken once for the
// whole batch, amortizing locking. A batch is limited to 65536 rows
// (engine.MaxBatchOps) so it always fits one write-ahead-log record on a
// durable store; split larger loads into multiple batches.
func (cs *ConcurrentStore) InsertBatch(ops []BatchOp) error {
	return cs.InsertBatchCtx(context.Background(), ops)
}

// InsertBatchCtx is InsertBatch with the context's trace ID attached to the
// commit.
func (cs *ConcurrentStore) InsertBatchCtx(ctx context.Context, ops []BatchOp) error {
	ctx, sp := obs.StartSpan(ctx, "store.batch")
	if sp.Recording() {
		sp.SetInt("ops", int64(len(ops)))
	}
	defer sp.End()
	eops := make([]engine.Op, len(ops))
	for k, op := range ops {
		i, t, err := rowTuple(cs.schema.s, cs.eng.Dict().Value, op.Rel, op.Row)
		if err != nil {
			return err
		}
		eops[k] = engine.Op{Scheme: i, Tuple: t}
	}
	return cs.eng.InsertBatchCtx(ctx, eops)
}

// Snapshot returns an immutable consistent view of the store as a Database:
// a deep copy that no later operation mutates, suitable for Satisfies,
// Tuples, rendering, or window queries (the snapshot shares the store's
// query evaluator, so its plans and counters are the store's).
func (cs *ConcurrentStore) Snapshot() *Database {
	return &Database{schema: cs.schema, st: cs.eng.Snapshot(), qev: cs.eng.Evaluator()}
}

// Rows returns the total number of tuples across all relations.
func (cs *ConcurrentStore) Rows() int { return int(cs.eng.Rows()) }

// RelationStats re-exports the engine's per-relation counters: tuple count,
// accepted inserts, rejects, deletes, and p50/p90/p99/p999 end-to-end
// latency from the relation's histogram — the same numbers /metrics scrapes.
type RelationStats = engine.RelationStats

// Stats returns per-relation statistics in schema order.
func (cs *ConcurrentStore) Stats() []RelationStats { return cs.eng.Stats() }

// SetTelemetry wires the engine's slow-operation log: operations (and
// window queries) at or above slow are logged to logger with their trace
// IDs. Call before the store is used concurrently.
func (cs *ConcurrentStore) SetTelemetry(logger *slog.Logger, slow time.Duration) {
	cs.eng.SetTelemetry(engine.Telemetry{Log: logger, Slow: slow})
}

// RegisterMetrics files the store's metric families with the registry:
// per-relation operation counters and latency histograms, commit and
// snapshot counters, query-evaluator and chase telemetry.
func (cs *ConcurrentStore) RegisterMetrics(r *obs.Registry) {
	cs.eng.RegisterMetrics(r)
}

// String renders a snapshot of the store's state.
func (cs *ConcurrentStore) String() string { return cs.Snapshot().String() }
