package indep

import (
	"strings"
	"testing"
)

func TestParseAndAccessors(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if got := s.Relations(); len(got) != 3 || got[2] != "CHR" {
		t.Fatalf("Relations = %v", got)
	}
	if got := s.Attributes(); len(got) != 5 {
		t.Fatalf("Attributes = %v", got)
	}
	attrs, err := s.RelationAttrs("CHR")
	if err != nil || strings.Join(attrs, "") != "CHR" {
		t.Fatalf("RelationAttrs = %v (%v)", attrs, err)
	}
	if _, err := s.RelationAttrs("NOPE"); err == nil {
		t.Fatal("unknown relation must error")
	}
	if got := s.FDs(); len(got) != 2 || got[0] != "C -> T" {
		t.Fatalf("FDs = %v", got)
	}
	if !s.IsAcyclic() {
		t.Fatal("Example 2 schema is acyclic")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("garbage", ""); err == nil {
		t.Fatal("bad schema must error")
	}
	if _, err := Parse("R(A,B)", "A -> Z"); err == nil {
		t.Fatal("unknown FD attribute must error")
	}
}

func TestClosureAPI(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	got, err := s.Closure("C", "H")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "") != "CTHR" {
		t.Fatalf("Closure(CH) = %v", got)
	}
	if _, err := s.Closure("Z"); err == nil {
		t.Fatal("unknown attribute must error")
	}
	emb, err := s.EmbeddedClosure("C")
	if err != nil || len(emb) < 2 {
		t.Fatalf("EmbeddedClosure(C) = %v (%v)", emb, err)
	}
}

func TestAnalyzeIndependent(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	a, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Independent {
		t.Fatalf("Example 2 must be independent: %s", a.Summary())
	}
	if len(a.RelationCovers["CT"]) != 1 {
		t.Fatalf("CT cover = %v", a.RelationCovers["CT"])
	}
	if !strings.Contains(a.Summary(), "INDEPENDENT") {
		t.Fatalf("summary: %s", a.Summary())
	}
}

func TestAnalyzeNotIndependentWithWitness(t *testing.T) {
	s := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	a, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Independent {
		t.Fatal("Example 1 must not be independent")
	}
	if a.Witness == nil {
		t.Fatal("witness missing")
	}
	// The witness must be locally fine but globally contradictory.
	okLocal, _, err := a.Witness.SatisfiesLocally()
	if err != nil || !okLocal {
		t.Fatalf("witness must be locally satisfying (err=%v)", err)
	}
	okGlobal, err := a.Witness.Satisfies()
	if err != nil || okGlobal {
		t.Fatalf("witness must not satisfy globally (err=%v)", err)
	}
	if !strings.Contains(a.Summary(), "NOT INDEPENDENT") {
		t.Fatalf("summary: %s", a.Summary())
	}
}

func TestDatabasePaperExample1(t *testing.T) {
	s := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	db := s.NewDatabase()
	for rel, row := range map[string]map[string]string{
		"CD": {"C": "CS402", "D": "CS"},
		"CT": {"C": "CS402", "T": "Jones"},
		"TD": {"T": "Jones", "D": "EE"},
	} {
		if err := db.Insert(rel, row); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := db.Satisfies()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the CS402 state must not satisfy the dependencies")
	}
	okLocal, bad, err := db.SatisfiesLocally()
	if err != nil || !okLocal {
		t.Fatalf("the CS402 state is locally satisfying (bad=%s err=%v)", bad, err)
	}
	if db.Rows() != 3 {
		t.Fatalf("Rows = %d", db.Rows())
	}
}

func TestDatabaseInsertErrors(t *testing.T) {
	s := MustParse("R(A,B)", "")
	db := s.NewDatabase()
	if err := db.Insert("NOPE", nil); err == nil {
		t.Fatal("unknown relation must error")
	}
	if err := db.Insert("R", map[string]string{"A": "x"}); err == nil {
		t.Fatal("missing attribute must error")
	}
}

func TestStoreFastPathEnforcesFDs(t *testing.T) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	st, err := s.OpenStore()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FastPath() {
		t.Fatal("independent schema must use the fast path")
	}
	must := func(rel string, row map[string]string) {
		t.Helper()
		if err := st.Insert(rel, row); err != nil {
			t.Fatal(err)
		}
	}
	must("CT", map[string]string{"C": "CS101", "T": "Smith"})
	must("CHR", map[string]string{"C": "CS101", "H": "Mon10", "R": "313"})
	err = st.Insert("CT", map[string]string{"C": "CS101", "T": "Turing"})
	if err == nil || !Rejected(err) {
		t.Fatalf("second teacher for CS101 must be rejected, got %v", err)
	}
	err = st.Insert("CHR", map[string]string{"C": "CS101", "H": "Mon10", "R": "414"})
	if err == nil || !Rejected(err) {
		t.Fatalf("second room for CS101@Mon10 must be rejected, got %v", err)
	}
	if st.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", st.Rows())
	}
}

func TestStoreChasePathCatchesCrossRelationAnomaly(t *testing.T) {
	s := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	st, err := s.OpenStore()
	if err != nil {
		t.Fatal(err)
	}
	if st.FastPath() {
		t.Fatal("Example 1 must use chase maintenance")
	}
	must := func(rel string, row map[string]string) {
		t.Helper()
		if err := st.Insert(rel, row); err != nil {
			t.Fatal(err)
		}
	}
	must("CD", map[string]string{"C": "CS402", "D": "CS"})
	must("CT", map[string]string{"C": "CS402", "T": "Jones"})
	// The paper's anomaly: Jones in EE contradicts CS402 in CS.
	err = st.Insert("TD", map[string]string{"T": "Jones", "D": "EE"})
	if err == nil || !Rejected(err) {
		t.Fatalf("cross-relation anomaly must be rejected, got %v", err)
	}
	must("TD", map[string]string{"T": "Jones", "D": "CS"})
}
