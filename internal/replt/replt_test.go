package replt

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"indep"
	"indep/internal/wal"
)

// panel is the window-query oracle panel: windows inside one relation,
// across relations (forcing joins through FACT), and the full universe.
var panel = [][]string{
	{"K1", "A1", "A2"},
	{"K2", "B1"},
	{"K1", "K2"},
	{"K1", "B1"},
	{"K1", "K2", "A1", "A2", "B1"},
}

// testSchema is a small independent star: admission is per-relation, the
// fast path applies, and window queries over the panel exercise joins.
func testSchema(t testing.TB) *indep.Schema {
	t.Helper()
	sch, err := indep.Parse(
		"FACT(K1,K2); DIM1(K1,A1,A2); DIM2(K2,B1)",
		"K1 -> A1 A2; K2 -> B1",
	)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// workload drives n randomized write operations against the primary:
// inserts (sometimes violating, exercising rejection records downstream),
// small batches, and deletes of previously admitted rows.
type workload struct {
	rng  *rand.Rand
	live []indep.BatchOp
}

func (w *workload) step(t *testing.T, ds *indep.DurableStore) {
	t.Helper()
	mkDim1 := func() indep.BatchOp {
		k := fmt.Sprintf("k1-%d", w.rng.Intn(30))
		return indep.BatchOp{Rel: "DIM1", Row: map[string]string{
			"K1": k, "A1": "a" + k, "A2": fmt.Sprintf("x%d", w.rng.Intn(3)),
		}}
	}
	mkDim2 := func() indep.BatchOp {
		k := fmt.Sprintf("k2-%d", w.rng.Intn(30))
		return indep.BatchOp{Rel: "DIM2", Row: map[string]string{"K2": k, "B1": "b" + k}}
	}
	mkFact := func() indep.BatchOp {
		return indep.BatchOp{Rel: "FACT", Row: map[string]string{
			"K1": fmt.Sprintf("k1-%d", w.rng.Intn(30)),
			"K2": fmt.Sprintf("k2-%d", w.rng.Intn(30)),
		}}
	}
	mk := func() indep.BatchOp {
		switch w.rng.Intn(3) {
		case 0:
			return mkDim1()
		case 1:
			return mkDim2()
		default:
			return mkFact()
		}
	}
	switch w.rng.Intn(10) {
	case 0, 1: // delete an admitted row (or a random absent one)
		if len(w.live) > 0 && w.rng.Intn(4) > 0 {
			i := w.rng.Intn(len(w.live))
			if _, err := ds.Delete(w.live[i].Rel, w.live[i].Row); err != nil {
				t.Fatal(err)
			}
			w.live = append(w.live[:i], w.live[i+1:]...)
		} else if _, err := ds.Delete("DIM1", mkDim1().Row); err != nil {
			t.Fatal(err)
		}
	case 2, 3: // batch
		ops := make([]indep.BatchOp, 1+w.rng.Intn(3))
		for i := range ops {
			ops[i] = mk()
		}
		err := ds.InsertBatch(ops)
		if err == nil {
			w.live = append(w.live, ops...)
		} else if !indep.Rejected(err) {
			t.Fatal(err)
		}
	default: // single insert, FD violations tolerated
		op := mk()
		err := ds.Insert(op.Rel, op.Row)
		if err == nil {
			w.live = append(w.live, op)
		} else if !indep.Rejected(err) {
			t.Fatal(err)
		}
	}
}

// requireConverged waits until every follower covers the primary's flushed
// end, then runs the full oracle against each.
func requireConverged(t *testing.T, primary *indep.DurableStore, followers ...*indep.Follower) {
	t.Helper()
	pos := primary.ReplPosition()
	want := primary.Snapshot()
	for i, f := range followers {
		if !f.WaitFor(pos, 20*time.Second) {
			t.Fatalf("follower %d stuck at %s, want %s (stats %+v)", i, f.Applied(), pos, f.ReplStats())
		}
		if diffs := Diverged(want, f.Snapshot(), panel); diffs != nil {
			t.Fatalf("follower %d diverged after %+v:\n  %s",
				i, f.ReplStats(), strings.Join(diffs, "\n  "))
		}
	}
}

// truncateTail chops n bytes off a follower's highest segment, simulating
// bytes the OS never wrote before a kill -9 (NoFsync followers lose them
// legitimately). Chopping may land mid-frame — recovery's torn-tail
// truncation and the REPLPOS validity check both must cope.
func truncateTail(t *testing.T, dir string, n int64) {
	t.Helper()
	seg := lastSegment(t, dir)
	if seg == "" {
		return
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if size := fi.Size(); size-n > int64(wal.SegmentHeaderBytes) {
		if err := os.Truncate(seg, size-n); err != nil {
			t.Fatal(err)
		}
	}
}

// lastSegment returns the path of dir's highest-numbered WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return names[len(names)-1]
}

// runSchedule is one randomized fault schedule: a primary under write load,
// two followers behind independently seeded injectors (the second joining
// mid-run, racing a checkpoint), checkpoints truncating history under live
// cursors, and a follower kill -9 (with local tail loss) plus restart.
func runSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sch := testSchema(t)
	primary, err := sch.OpenDurableStore(t.TempDir(), indep.DurableOptions{
		NoFsync:      true,
		SegmentBytes: int64(2048 + rng.Intn(4096)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	faults := Faults{
		Disconnect: rng.Float64() * 0.10,
		Duplicate:  rng.Float64() * 0.10,
		Reorder:    rng.Float64() * 0.10,
		Short:      rng.Float64() * 0.25,
		Corrupt:    rng.Float64() * 0.10,
	}
	fopts := indep.FollowerOptions{
		NoFsync:      true,
		PollInterval: time.Millisecond,
		ChunkBytes:   64 + rng.Intn(768),
	}
	open := func(dir string) *indep.Follower {
		inj := NewInjector(primary, faults, rand.New(rand.NewSource(rng.Int63())))
		f, err := sch.OpenFollower(dir, inj, fopts)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	fa, fb := open(dirA), (*indep.Follower)(nil)
	defer func() {
		fa.Close()
		if fb != nil {
			fb.Close()
		}
	}()

	w := &workload{rng: rng}
	steps := 120 + rng.Intn(80)
	for i := 0; i < steps; i++ {
		w.step(t, primary)
		switch {
		case i == steps/2 && fb == nil:
			// Late joiner: its bootstrap snapshot races the checkpoint below.
			fb = open(dirB)
		case rng.Intn(37) == 0:
			if err := primary.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		case rng.Intn(53) == 0:
			// kill -9 the first follower mid-replay, losing an arbitrary
			// local tail, then restart it.
			if err := fa.Abort(); err != nil {
				t.Fatal(err)
			}
			truncateTail(t, dirA, int64(rng.Intn(96)))
			fa = open(dirA)
		}
	}
	requireConverged(t, primary, fa, fb)
}

// TestReplFaultSchedules drives the full randomized fault matrix: every
// seed is an independent schedule of writes, checkpoints, kills, and
// transport faults, and every schedule must end with zero divergence.
func TestReplFaultSchedules(t *testing.T) {
	schedules := 104
	if testing.Short() {
		schedules = 12 // CI smoke: fixed seeds 0..11, same oracle
	}
	for s := 0; s < schedules; s++ {
		t.Run(fmt.Sprintf("seed%03d", s), func(t *testing.T) {
			t.Parallel()
			runSchedule(t, int64(s))
		})
	}
}

// copyDir clones a follower's data directory (segments, checkpoints,
// REPLPOS), skipping the advisory LOCK file, into a fresh crash-image dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "LOCK" || !e.Type().IsRegular() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// frameBoundaries scans a segment file and returns every byte offset that
// ends a complete record frame (the header boundary included).
func frameBoundaries(t *testing.T, seg string) []int64 {
	t.Helper()
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < wal.SegmentHeaderBytes {
		return nil
	}
	bounds := []int64{int64(wal.SegmentHeaderBytes)}
	buf := data[wal.SegmentHeaderBytes:]
	off := int64(wal.SegmentHeaderBytes)
	for len(buf) > 0 {
		_, n, err := wal.NextStreamFrame(buf)
		if errors.Is(err, wal.ErrShortFrame) {
			break // torn tail already present; boundaries end here
		}
		if err != nil {
			t.Fatalf("segment %s corrupt at %d: %v", seg, off, err)
		}
		off += int64(n)
		bounds = append(bounds, off)
		buf = buf[n:]
	}
	return bounds
}

// TestFollowerCrashAtEveryRecordBoundary is the crash-replay property test:
// a caught-up follower's directory is cloned, its final segment truncated
// at every record boundary (and at torn mid-frame offsets just past each),
// and a follower reopened from each crash image. Every image must recover,
// resume or re-sync, and converge — in particular, records straddling the
// persisted-position window must not double-apply (the oracle's tuple and
// window comparison would see any duplicate admission that slipped past the
// guards).
func TestFollowerCrashAtEveryRecordBoundary(t *testing.T) {
	sch := testSchema(t)
	primary, err := sch.OpenDurableStore(t.TempDir(), indep.DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	w := &workload{rng: rand.New(rand.NewSource(42))}
	for i := 0; i < 40; i++ {
		w.step(t, primary)
	}

	fdir := t.TempDir()
	f, err := sch.OpenFollower(fdir, primary, indep.FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !f.WaitFor(primary.ReplPosition(), 10*time.Second) {
		t.Fatalf("follower never caught up: %+v", f.ReplStats())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, fdir)
	if seg == "" {
		t.Fatal("follower wrote no segments")
	}
	bounds := frameBoundaries(t, seg)
	if len(bounds) < 10 {
		t.Fatalf("only %d boundaries; workload too small to mean anything", len(bounds))
	}
	// A write after the follower stopped ensures every crash image has
	// something left to stream.
	if err := primary.Insert("DIM2", map[string]string{"K2": "k2-final", "B1": "bk2-final"}); err != nil {
		t.Fatal(err)
	}

	stride := 1
	if testing.Short() {
		stride = 4
	}
	for i := 0; i < len(bounds); i += stride {
		cut := bounds[i]
		for _, torn := range []int64{0, 3} { // exact boundary, then mid-frame
			cut := cut + torn
			t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
				dir := copyDir(t, fdir)
				seg := lastSegment(t, dir)
				fi, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				if cut > fi.Size() {
					t.Skip("past end")
				}
				if err := os.Truncate(seg, cut); err != nil {
					t.Fatal(err)
				}
				f, err := sch.OpenFollower(dir, primary, indep.FollowerOptions{NoFsync: true, PollInterval: time.Millisecond})
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				requireConverged(t, primary, f)
			})
		}
	}
}

// TestInjectorFaultsFire sanity-checks the injector itself: with every rate
// cranked up, each fault class actually triggers, and the follower behind
// it still converges.
func TestInjectorFaultsFire(t *testing.T) {
	sch := testSchema(t)
	primary, err := sch.OpenDurableStore(t.TempDir(), indep.DurableOptions{NoFsync: true, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	// Open the follower first: the workload then streams live through the
	// injector instead of arriving inside the bootstrap snapshot.
	inj := NewInjector(primary, Faults{
		Disconnect: 0.2, Duplicate: 0.2, Reorder: 0.2, Short: 0.3, Corrupt: 0.2,
	}, rand.New(rand.NewSource(7)))
	f, err := sch.OpenFollower(t.TempDir(), inj, indep.FollowerOptions{
		NoFsync: true, PollInterval: time.Millisecond, ChunkBytes: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Keep the stream busy until every fault class has fired at least once
	// (bounded: each class holds ≥10% of the per-read roll).
	w := &workload{rng: rand.New(rand.NewSource(7))}
	deadline := time.Now().Add(20 * time.Second)
	for {
		for i := 0; i < 50; i++ {
			w.step(t, primary)
		}
		st := inj.Stats()
		if st.Disconnects > 0 && st.Duplicates > 0 && st.Shorts > 0 && st.Corrupts > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault classes missed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	requireConverged(t, primary, f)
	fs := f.ReplStats()
	if fs.CorruptChunks == 0 && fs.DroppedChunks == 0 {
		t.Fatalf("follower observed no faults: %+v", fs)
	}
}
