// Package replt is the replication fault-injection harness: it wraps a
// replication source with an adversarial delivery layer — disconnects,
// corrupted bytes, truncated (torn) chunks, duplicated and reordered
// delivery — and provides the divergence oracle the test suite drives
// followers against. The claim under test is the paper's independence
// theorem carried to replication: admission is a purely local decision, so
// a follower replaying the primary's log through the same guards converges
// to the primary's state no matter how badly the transport behaves, as long
// as it eventually delivers.
package replt

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"

	"indep"
	"indep/internal/wal"
)

// ErrInjected is the error a simulated disconnect returns.
var ErrInjected = errors.New("replt: injected disconnect")

// Faults sets per-read fault probabilities, each rolled independently in
// the order disconnect, duplicate, reorder, short, corrupt (first hit
// wins). Zero is a clean transport.
type Faults struct {
	Disconnect float64 // the read fails outright
	Duplicate  float64 // a previously served chunk is served again
	Reorder    float64 // a chunk from further ahead is served first (gap)
	Short      float64 // the chunk is truncated mid-record (torn read)
	Corrupt    float64 // one byte of the chunk is flipped
}

// InjectorStats counts the faults actually delivered.
type InjectorStats struct {
	Reads, Disconnects, Duplicates, Reorders, Shorts, Corrupts int
}

// Injector is a ReplSource that misbehaves. One injector serves one
// follower; the embedded rng makes a (seed, schedule) pair reproducible.
type Injector struct {
	Src indep.ReplSource

	mu      sync.Mutex
	rng     *rand.Rand
	faults  Faults
	history []indep.ReplChunk
	stats   InjectorStats
}

// NewInjector wraps src with the given fault rates, drawing from rng
// (which the injector then owns).
func NewInjector(src indep.ReplSource, faults Faults, rng *rand.Rand) *Injector {
	return &Injector{Src: src, faults: faults, rng: rng}
}

// Stats returns the faults delivered so far.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// ReplSnapshot passes through, minus injected disconnects: snapshot
// payloads ride the same unreliable transport, but their internal CRC
// (checked by DecodeCheckpointBytes) already covers corruption.
func (in *Injector) ReplSnapshot() ([]byte, wal.Position, error) {
	in.mu.Lock()
	drop := in.rng.Float64() < in.faults.Disconnect
	if drop {
		in.stats.Disconnects++
	}
	in.mu.Unlock()
	if drop {
		return nil, wal.Position{}, ErrInjected
	}
	return in.Src.ReplSnapshot()
}

// clone deep-copies a chunk so history replays and corruption never alias
// live buffers.
func clone(c indep.ReplChunk) indep.ReplChunk {
	c.Data = append([]byte(nil), c.Data...)
	return c
}

// ReplRead serves the requested chunk through the fault model. Faulty
// deliveries still carry internally consistent Start/Next positions — the
// injector models a broken transport, not a lying primary, except for
// Corrupt which flips payload bytes exactly as a bad disk or NIC would.
func (in *Injector) ReplRead(pos wal.Position, max int) (indep.ReplChunk, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Reads++

	if in.rng.Float64() < in.faults.Disconnect {
		in.stats.Disconnects++
		return indep.ReplChunk{}, ErrInjected
	}
	chunk, err := in.Src.ReplRead(pos, max)
	if err != nil {
		return chunk, err
	}
	if len(chunk.Data) == 0 {
		return chunk, nil
	}
	in.history = append(in.history, clone(chunk))
	if len(in.history) > 32 {
		in.history = in.history[1:]
	}

	// One roll against cumulative disjoint ranges, so every class gets its
	// configured share even when several rates are high.
	r := in.rng.Float64()
	switch f := in.faults; {
	case r < f.Duplicate && len(in.history) > 1:
		in.stats.Duplicates++
		return clone(in.history[in.rng.Intn(len(in.history))]), nil
	case r < f.Duplicate+f.Reorder:
		if ahead, err := in.Src.ReplRead(chunk.Next, max); err == nil && len(ahead.Data) > 0 {
			in.stats.Reorders++
			return ahead, nil
		}
	case r < f.Duplicate+f.Reorder+f.Short:
		in.stats.Shorts++
		cut := 1 + in.rng.Intn(len(chunk.Data))
		c := clone(chunk)
		c.Data = c.Data[:cut]
		c.Next = wal.Position{Seq: c.Start.Seq, Off: c.Start.Off + int64(cut)}
		return c, nil
	case r < f.Duplicate+f.Reorder+f.Short+f.Corrupt:
		in.stats.Corrupts++
		c := clone(chunk)
		c.Data[in.rng.Intn(len(c.Data))] ^= 1 << uint(in.rng.Intn(8))
		return c, nil
	}
	return chunk, nil
}

// WindowPanel evaluates a panel of window queries over a database state and
// returns the results keyed by query, for bit-for-bit comparison between
// primary and follower. Window results are deterministically sorted, so
// equality is exact, not set-wise.
func WindowPanel(db *indep.Database, panel [][]string) (map[string]*indep.WindowResult, error) {
	out := make(map[string]*indep.WindowResult, len(panel))
	for _, attrs := range panel {
		res, err := db.Window(attrs...)
		if err != nil {
			return nil, fmt.Errorf("window %v: %w", attrs, err)
		}
		out[fmt.Sprint(attrs)] = res
	}
	return out, nil
}

// Diverged is the full oracle: tuple-level state diff plus the window-query
// panel. It returns a description of every disagreement; nil means the two
// states are observably identical.
func Diverged(primary, follower *indep.Database, panel [][]string) []string {
	diffs := indep.DiffDatabases(primary, follower)
	pw, err := WindowPanel(primary, panel)
	if err != nil {
		return append(diffs, fmt.Sprintf("primary panel: %v", err))
	}
	fw, err := WindowPanel(follower, panel)
	if err != nil {
		return append(diffs, fmt.Sprintf("follower panel: %v", err))
	}
	for k, p := range pw {
		f := fw[k]
		if !reflect.DeepEqual(p.Rows, f.Rows) || p.Total != f.Total {
			diffs = append(diffs, fmt.Sprintf("window %s: %d rows (total %d) vs %d rows (total %d)",
				k, len(p.Rows), p.Total, len(f.Rows), f.Total))
		}
	}
	return diffs
}
