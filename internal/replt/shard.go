package replt

// The cluster-side half of the harness: ShardInjector wraps a
// cluster.Transport the way Injector wraps a ReplSource, modeling the
// faults a routing tier actually sees — shards that refuse connections,
// forwards delivered twice, and a shard killed outright mid-batch. The
// claim under test is again the independence theorem: shard-local
// admission is idempotent and order-free across shards, so a router
// retrying whole payloads through this adversary converges to exactly the
// state a single node computes.

import (
	"context"
	"math/rand"
	"sync"

	"indep"
	"indep/internal/cluster"
)

// ShardFaults sets per-call fault probabilities for one shard's transport.
// Zero is a clean transport.
type ShardFaults struct {
	Disconnect float64 // the call fails as unreachable before touching the shard
	Duplicate  float64 // an ApplyPartial is forwarded twice (duplicated forward)
}

// ShardInjectorStats counts calls and the faults actually delivered.
type ShardInjectorStats struct {
	Calls, Disconnects, Duplicates, Killed int
}

// ShardInjector is a cluster.Transport that misbehaves. Kill simulates a
// kill -9: every call fails as unreachable until Revive, with no draining
// or goodbye — exactly what the router sees when a shard process dies.
type ShardInjector struct {
	Shard string
	Next  cluster.Transport

	mu     sync.Mutex
	rng    *rand.Rand
	faults ShardFaults
	killed bool
	stats  ShardInjectorStats
}

// NewShardInjector wraps next with the given fault rates, drawing from rng
// (which the injector then owns).
func NewShardInjector(shard string, next cluster.Transport, faults ShardFaults, rng *rand.Rand) *ShardInjector {
	return &ShardInjector{Shard: shard, Next: next, faults: faults, rng: rng}
}

// Kill makes every subsequent call fail as unreachable, as if the shard
// process were killed -9 mid-flight.
func (in *ShardInjector) Kill() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.killed = true
}

// Revive brings the shard back (the process was restarted; its state is
// whatever the wrapped transport's store holds).
func (in *ShardInjector) Revive() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.killed = false
}

// Stats returns the faults delivered so far.
func (in *ShardInjector) Stats() ShardInjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// roll decides one call's fate: dead, disconnected, or (for ApplyPartial)
// duplicated.
func (in *ShardInjector) roll(allowDup bool) (drop, dup bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Calls++
	if in.killed {
		in.stats.Killed++
		return true, false
	}
	if in.rng.Float64() < in.faults.Disconnect {
		in.stats.Disconnects++
		return true, false
	}
	if allowDup && in.rng.Float64() < in.faults.Duplicate {
		in.stats.Duplicates++
		return false, true
	}
	return false, false
}

func (in *ShardInjector) dead() error {
	return &cluster.ShardError{Shard: in.Shard, Err: ErrInjected}
}

// ApplyPartial forwards the payload through the fault model. A duplicated
// forward applies the payload twice and returns the second report —
// shard-local admission is idempotent, so the duplicate must be invisible;
// the oracle catches it if it is not.
func (in *ShardInjector) ApplyPartial(ctx context.Context, payload []byte) (*indep.BatchReport, error) {
	drop, dup := in.roll(true)
	if drop {
		return nil, in.dead()
	}
	rep, err := in.Next.ApplyPartial(ctx, payload)
	if err != nil || !dup {
		return rep, err
	}
	return in.Next.ApplyPartial(ctx, payload)
}

// Relation fetches the shard's fragment through the fault model.
func (in *ShardInjector) Relation(ctx context.Context, rel string) (*indep.WindowResult, error) {
	if drop, _ := in.roll(false); drop {
		return nil, in.dead()
	}
	return in.Next.Relation(ctx, rel)
}

// Window evaluates a window on the shard through the fault model.
func (in *ShardInjector) Window(ctx context.Context, q indep.WindowQuery) (*indep.WindowResult, error) {
	if drop, _ := in.roll(false); drop {
		return nil, in.dead()
	}
	return in.Next.Window(ctx, q)
}

// Ping reports shard health through the fault model.
func (in *ShardInjector) Ping(ctx context.Context) error {
	if drop, _ := in.roll(false); drop {
		return in.dead()
	}
	return in.Next.Ping(ctx)
}
