package schema

import "testing"

// FuzzParse asserts the schema parser never panics and that anything it
// accepts passes the structural validator (Parse promises a valid schema
// or an error, never a broken value).
func FuzzParse(f *testing.F) {
	f.Add("R1(A,B); R2(B,C)")
	f.Add("CT(C,T); CS(C,S); CHR(C,H,R)")
	f.Add("R(A)")
	f.Add("R1(A B C)\nR2(C D)")
	f.Add("  R1 ( A , B ) ;; R2(B)")
	f.Add("R1()")
	f.Add("(A)")
	f.Add("R1(A,B); R1(A)")
	f.Add("R)(")
	f.Add("R1(A,B")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid schema: %v", src, verr)
		}
		if s.Size() == 0 {
			t.Fatalf("Parse(%q) accepted an empty schema", src)
		}
		for i := 0; i < s.Size(); i++ {
			if s.IndexOf(s.Name(i)) != i {
				t.Fatalf("Parse(%q): scheme %d not findable by name %q", src, i, s.Name(i))
			}
		}
	})
}
