// Package schema models relation schemes and database schemas over an
// attribute universe, including the schema hypergraph used when reasoning
// about the join dependency *D of a database schema.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"indep/internal/attrset"
)

// Rel is a relation scheme: a named, nonempty subset of the universe.
type Rel struct {
	Name  string
	Attrs attrset.Set
}

// Schema is a database schema: a collection of relation schemes over a
// shared universe. The paper's join dependency *D is implicit: it is the
// join dependency whose components are exactly the schemes of the schema.
type Schema struct {
	U    *attrset.Universe
	Rels []Rel
}

// New builds a schema over u with the given relation schemes.
func New(u *attrset.Universe, rels ...Rel) *Schema {
	return &Schema{U: u, Rels: rels}
}

// NewRel is a convenience constructor for a relation scheme from names.
func NewRel(u *attrset.Universe, name string, attrs ...string) Rel {
	return Rel{Name: name, Attrs: u.Set(attrs...)}
}

// Validate checks the structural invariants a database schema must satisfy:
// at least one scheme, each scheme nonempty and inside the universe, scheme
// names unique, and the schemes covering the universe (so that *D is a join
// dependency over U, as the paper requires).
func (s *Schema) Validate() error {
	if s.U == nil {
		return fmt.Errorf("schema: nil universe")
	}
	if len(s.Rels) == 0 {
		return fmt.Errorf("schema: no relation schemes")
	}
	seen := make(map[string]bool, len(s.Rels))
	all := s.U.All()
	var covered attrset.Set
	for _, r := range s.Rels {
		if r.Name == "" {
			return fmt.Errorf("schema: relation scheme with empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("schema: duplicate relation scheme name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Attrs.IsEmpty() {
			return fmt.Errorf("schema: relation scheme %s is empty", r.Name)
		}
		if !r.Attrs.SubsetOf(all) {
			return fmt.Errorf("schema: relation scheme %s mentions attributes outside the universe", r.Name)
		}
		covered = covered.Union(r.Attrs)
	}
	if covered != all {
		return fmt.Errorf("schema: schemes do not cover the universe (missing %s)",
			s.U.Format(all.Diff(covered), " "))
	}
	return nil
}

// Size returns the number of relation schemes.
func (s *Schema) Size() int { return len(s.Rels) }

// Attrs returns the attribute set of scheme i.
func (s *Schema) Attrs(i int) attrset.Set { return s.Rels[i].Attrs }

// Name returns the name of scheme i.
func (s *Schema) Name(i int) string { return s.Rels[i].Name }

// IndexOf returns the index of the named scheme, or -1.
func (s *Schema) IndexOf(name string) int {
	for i, r := range s.Rels {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// SchemesEmbedding returns the indices of all schemes R with x ⊆ R.
func (s *Schema) SchemesEmbedding(x attrset.Set) []int {
	var out []int
	for i, r := range s.Rels {
		if x.SubsetOf(r.Attrs) {
			out = append(out, i)
		}
	}
	return out
}

// Embeds reports whether some scheme contains x.
func (s *Schema) Embeds(x attrset.Set) bool {
	for _, r := range s.Rels {
		if x.SubsetOf(r.Attrs) {
			return true
		}
	}
	return false
}

// String renders the schema as "R1(A B) R2(B C)".
func (s *Schema) String() string {
	parts := make([]string, len(s.Rels))
	for i, r := range s.Rels {
		parts[i] = fmt.Sprintf("%s(%s)", r.Name, s.U.Format(r.Attrs, " "))
	}
	return strings.Join(parts, " ")
}

// Components returns the connected components of the hypergraph whose
// hyperedges are the scheme attribute sets with the attributes of `removed`
// deleted. Two attributes are connected when some pruned scheme contains
// both. The result maps each remaining attribute to its component set;
// attributes of `removed` (and attributes outside every scheme) are absent.
//
// This is the combinatorial core of the polynomial FD-implication test for
// F ∪ {*D} (see internal/infer): after merging a closed set M of attributes
// in the two-row chase, the rows derivable with the JD-rule for *D are
// exactly the vectors constant on each component of {R_i − M}.
func (s *Schema) Components(removed attrset.Set) map[int]attrset.Set {
	// Union-find over attributes.
	parent := make(map[int]int)
	var find func(a int) int
	find = func(a int) int {
		for parent[a] != a {
			parent[a] = parent[parent[a]]
			a = parent[a]
		}
		return a
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, r := range s.Rels {
		pruned := r.Attrs.Diff(removed)
		first := pruned.First()
		if first < 0 {
			continue
		}
		pruned.ForEach(func(a int) bool {
			if _, ok := parent[a]; !ok {
				parent[a] = a
			}
			union(first, a)
			return true
		})
	}
	comps := make(map[int]attrset.Set)
	for a := range parent {
		r := find(a)
		c := comps[r]
		c.Add(a)
		comps[r] = c
	}
	out := make(map[int]attrset.Set, len(parent))
	for _, c := range comps {
		c.ForEach(func(a int) bool {
			out[a] = c
			return true
		})
	}
	return out
}

// ComponentOf returns the connected component containing attribute a in the
// hypergraph {R_i − removed}, or the empty set if a was removed or appears
// in no scheme.
func (s *Schema) ComponentOf(a int, removed attrset.Set) attrset.Set {
	return s.Components(removed)[a]
}

// Parse builds a schema from a compact textual form:
//
//	R1(A,B,C); R2(C,D)
//
// Scheme separators may be ';' or newline; attribute separators ',' or
// whitespace. Attributes are added to the universe in order of first
// appearance. Parse returns the universe alongside the schema.
func Parse(src string) (*Schema, error) {
	u := attrset.NewUniverse()
	s := &Schema{U: u}
	decls := strings.FieldsFunc(src, func(r rune) bool { return r == ';' || r == '\n' })
	for _, d := range decls {
		d = strings.TrimSpace(d)
		if d == "" {
			continue
		}
		open := strings.IndexByte(d, '(')
		close := strings.LastIndexByte(d, ')')
		if open <= 0 || close != len(d)-1 {
			return nil, fmt.Errorf("schema: cannot parse scheme declaration %q", d)
		}
		name := strings.TrimSpace(d[:open])
		var attrs attrset.Set
		fields := strings.FieldsFunc(d[open+1:close], func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(fields) == 0 {
			return nil, fmt.Errorf("schema: scheme %q has no attributes", name)
		}
		for _, f := range fields {
			attrs.Add(u.Add(f))
		}
		s.Rels = append(s.Rels, Rel{Name: name, Attrs: attrs})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse that panics on error; intended for tests and examples.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// SortedComponentList returns the distinct components of Components(removed)
// in deterministic order; useful for printing and tests.
func (s *Schema) SortedComponentList(removed attrset.Set) []attrset.Set {
	byAttr := s.Components(removed)
	seen := make(map[attrset.Set]bool)
	var out []attrset.Set
	for _, c := range byAttr {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return attrset.Less(out[i], out[j]) })
	return out
}
