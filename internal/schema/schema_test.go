package schema

import (
	"reflect"
	"strings"
	"testing"

	"indep/internal/attrset"
)

func TestParseBasic(t *testing.T) {
	s, err := Parse("CT(C,T); CS(C,S); CHR(C,H,R)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	if s.U.Size() != 5 {
		t.Fatalf("universe size = %d", s.U.Size())
	}
	if got := s.String(); got != "CT(C T) CS(C S) CHR(C H R)" {
		t.Errorf("String = %q", got)
	}
	if s.IndexOf("CS") != 1 || s.IndexOf("ZZ") != -1 {
		t.Error("IndexOf wrong")
	}
}

func TestParseWhitespaceSeparators(t *testing.T) {
	s, err := Parse("R1(A B)\nR2(B\tC)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2 || s.U.Size() != 3 {
		t.Fatalf("parsed wrong: %v", s)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"R1",           // no parens
		"(A,B)",        // empty name
		"R1()",         // no attributes
		"",             // nothing
		"R1(A); R1(B)", // duplicate name
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestValidateCoverage(t *testing.T) {
	u := attrset.NewUniverse("A", "B", "C")
	s := New(u, NewRel(u, "R1", "A", "B"))
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "cover") {
		t.Fatalf("expected coverage error, got %v", err)
	}
	s = New(u, NewRel(u, "R1", "A", "B"), NewRel(u, "R2", "B", "C"))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemesEmbedding(t *testing.T) {
	s := MustParse("R1(A,B); R2(B,C); R3(A,B,C)")
	u := s.U
	got := s.SchemesEmbedding(u.Set("B"))
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("embedding(B) = %v", got)
	}
	got = s.SchemesEmbedding(u.Set("A", "C"))
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("embedding(AC) = %v", got)
	}
	if !s.Embeds(u.Set("A", "B")) || s.Embeds(u.All().With(200)) {
		t.Error("Embeds wrong")
	}
}

func TestComponentsNoRemoval(t *testing.T) {
	s := MustParse("R1(A,B); R2(B,C); R3(D,E)")
	u := s.U
	comps := s.SortedComponentList(attrset.Set{})
	want := []attrset.Set{u.Set("D", "E"), u.Set("A", "B", "C")}
	attrset.SortSets(want)
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

func TestComponentsWithRemoval(t *testing.T) {
	// Removing B disconnects A from C in {AB, BC}.
	s := MustParse("R1(A,B); R2(B,C)")
	u := s.U
	removed := u.Set("B")
	if got := s.ComponentOf(u.MustIndex("A"), removed); got != u.Set("A") {
		t.Errorf("component of A = %v", u.Format(got, ""))
	}
	if got := s.ComponentOf(u.MustIndex("C"), removed); got != u.Set("C") {
		t.Errorf("component of C = %v", u.Format(got, ""))
	}
	// Removed attribute has empty component.
	if got := s.ComponentOf(u.MustIndex("B"), removed); !got.IsEmpty() {
		t.Errorf("component of removed B = %v", u.Format(got, ""))
	}
}

func TestComponentsChain(t *testing.T) {
	// {AB, BC, CD}: removing C splits into {A,B} and {D}.
	s := MustParse("R1(A,B); R2(B,C); R3(C,D)")
	u := s.U
	removed := u.Set("C")
	if got := s.ComponentOf(u.MustIndex("A"), removed); got != u.Set("A", "B") {
		t.Errorf("component of A = %v", u.Format(got, ""))
	}
	if got := s.ComponentOf(u.MustIndex("D"), removed); got != u.Set("D") {
		t.Errorf("component of D = %v", u.Format(got, ""))
	}
}

func TestComponentsAllRemoved(t *testing.T) {
	s := MustParse("R1(A,B)")
	if comps := s.Components(s.U.All()); len(comps) != 0 {
		t.Errorf("expected no components, got %v", comps)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("garbage")
}
