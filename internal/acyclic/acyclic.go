// Package acyclic implements the acyclic-database-schema machinery the
// paper leans on for context ([BFM], [Y]): the GYO ear-removal reduction,
// join-tree construction, semijoin full reducers, and the
// pairwise/global-consistency test. For acyclic schemas the maintenance
// problem is polynomial even without independence; these tools quantify
// that contrast in the benchmarks.
package acyclic

import (
	"indep/internal/attrset"
	"indep/internal/relation"
	"indep/internal/schema"
)

// JoinTreeEdge connects a scheme to its parent in a join tree.
type JoinTreeEdge struct {
	Child, Parent int
}

// GYO runs the Graham–Yu–Özsoyoğlu ear-removal reduction. A scheme R is an
// ear when every attribute of R is exclusive to R or contained in some
// other remaining scheme W (the witness). GYO returns whether the schema is
// acyclic and, if so, a join tree given as parent edges in removal order
// (the last remaining scheme is the root, with no edge).
func GYO(s *schema.Schema) (bool, []JoinTreeEdge) {
	n := s.Size()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	var edges []JoinTreeEdge
	for remaining > 1 {
		removed := false
		for i := 0; i < n && remaining > 1; i++ {
			if !alive[i] {
				continue
			}
			// Attributes of i shared with other alive schemes.
			var shared attrset.Set
			for j := 0; j < n; j++ {
				if j != i && alive[j] {
					shared = shared.Union(s.Attrs(i).Intersect(s.Attrs(j)))
				}
			}
			// Ear iff some other alive scheme contains all shared attrs.
			for j := 0; j < n; j++ {
				if j != i && alive[j] && shared.SubsetOf(s.Attrs(j)) {
					alive[i] = false
					remaining--
					edges = append(edges, JoinTreeEdge{Child: i, Parent: j})
					removed = true
					break
				}
			}
		}
		if !removed {
			return false, nil
		}
	}
	return true, edges
}

// IsAcyclic reports whether the schema hypergraph is α-acyclic.
func IsAcyclic(s *schema.Schema) bool {
	ok, _ := GYO(s)
	return ok
}

// FullReduce applies a full reducer to the state: semijoins up the join
// tree (children into parents) and back down, after which every relation
// contains exactly the tuples that participate in the global join
// (Yannakakis). It returns the reduced state and whether any tuple was
// removed. The schema must be acyclic.
func FullReduce(st *relation.State) (*relation.State, bool, bool) {
	ok, edges := GYO(st.Schema)
	if !ok {
		return nil, false, false
	}
	out := st.Clone()
	changed := false
	apply := func(target, source int) {
		reduced := relation.Semijoin(out.Insts[target], out.Insts[source])
		if reduced.Len() != out.Insts[target].Len() {
			changed = true
		}
		out.Insts[target] = reduced
	}
	// Leaves-to-root: edges are in removal order, so each child is removed
	// before its parent; semijoin parent ⋉ child in that order.
	for _, e := range edges {
		apply(e.Parent, e.Child)
	}
	// Root-to-leaves: reverse order.
	for i := len(edges) - 1; i >= 0; i-- {
		apply(edges[i].Child, edges[i].Parent)
	}
	return out, changed, true
}

// GloballyConsistent reports whether the state is join consistent — the
// projections of one universal instance. For acyclic schemas this is
// equivalent to the full reducer removing nothing (pairwise consistency
// suffices, [BFM]); for cyclic schemas it falls back to computing the join.
func GloballyConsistent(st *relation.State) bool {
	if _, changed, ok := FullReduce(st); ok {
		return !changed
	}
	return st.JoinConsistent()
}

// PairwiseConsistent reports whether every pair of relations agrees on
// their common attributes (each tuple survives the pairwise semijoin).
func PairwiseConsistent(st *relation.State) bool {
	for i := range st.Insts {
		for j := range st.Insts {
			if i == j {
				continue
			}
			if !st.Schema.Attrs(i).Intersects(st.Schema.Attrs(j)) {
				continue
			}
			if relation.Semijoin(st.Insts[i], st.Insts[j]).Len() != st.Insts[i].Len() {
				return false
			}
		}
	}
	return true
}
