package acyclic

import (
	"math/rand"
	"testing"

	"indep/internal/relation"
	"indep/internal/schema"
)

func TestGYOAcyclicChain(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,D)")
	ok, edges := GYO(s)
	if !ok {
		t.Fatal("chain must be acyclic")
	}
	if len(edges) != 2 {
		t.Fatalf("join tree edges = %v", edges)
	}
}

func TestGYOCyclicTriangle(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,A)")
	if IsAcyclic(s) {
		t.Fatal("triangle must be cyclic")
	}
}

func TestGYOStar(t *testing.T) {
	s := schema.MustParse("FACT(A,B,C); D1(A,X); D2(B,Y); D3(C,Z)")
	if !IsAcyclic(s) {
		t.Fatal("star must be acyclic")
	}
}

func TestGYOSingleScheme(t *testing.T) {
	s := schema.MustParse("R(A,B)")
	ok, edges := GYO(s)
	if !ok || len(edges) != 0 {
		t.Fatal("single scheme is trivially acyclic with empty tree")
	}
}

func TestGYOPaperExample2(t *testing.T) {
	// CT, CS, CHR share only C: acyclic (C is in every scheme).
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	if !IsAcyclic(s) {
		t.Fatal("Example 2 schema is acyclic")
	}
}

func TestFullReduceRemovesDanglers(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C)")
	st := relation.NewState(s)
	st.Add("R1", relation.Tuple{1, 2})
	st.Add("R1", relation.Tuple{9, 8}) // dangling: B=8 unmatched
	st.Add("R2", relation.Tuple{2, 3})
	reduced, changed, ok := FullReduce(st)
	if !ok || !changed {
		t.Fatalf("ok=%v changed=%v", ok, changed)
	}
	if reduced.Insts[0].Len() != 1 || !reduced.Insts[0].Has(relation.Tuple{1, 2}) {
		t.Fatalf("reduced R1 = %v", reduced.Insts[0].Rows())
	}
	// Reduced state must be globally consistent.
	if !GloballyConsistent(reduced) {
		t.Fatal("reduced state must be consistent")
	}
}

func TestFullReduceCyclicFails(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,A)")
	st := relation.NewState(s)
	if _, _, ok := FullReduce(st); ok {
		t.Fatal("full reducer must refuse cyclic schemas")
	}
}

func TestGloballyConsistentMatchesJoinOracle(t *testing.T) {
	// On acyclic schemas, the semijoin test must agree with computing the
	// join directly.
	r := rand.New(rand.NewSource(13))
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,D)")
	for i := 0; i < 200; i++ {
		st := relation.NewState(s)
		for j := 0; j < 3; j++ {
			st.Add("R1", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
			st.Add("R2", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
			st.Add("R3", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
		}
		fast := GloballyConsistent(st)
		slow := st.JoinConsistent()
		if fast != slow {
			t.Fatalf("consistency mismatch: semijoin=%v join=%v on\n%s", fast, slow, st)
		}
	}
}

func TestPairwiseVsGlobalOnCyclic(t *testing.T) {
	// The classic: a cyclic triangle state that is pairwise consistent but
	// not globally consistent ([BFM]'s motivating example).
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,A)")
	st := relation.NewState(s)
	// A,B / B,C / C,A — parity trick: every pair joins but no single
	// universal tuple exists.
	st.Add("R1", relation.Tuple{0, 0})
	st.Add("R1", relation.Tuple{1, 1})
	st.Add("R2", relation.Tuple{0, 1})
	st.Add("R2", relation.Tuple{1, 0})
	// R3 columns are (A,C) in universe order A,B,C.
	st.Add("R3", relation.Tuple{0, 0})
	st.Add("R3", relation.Tuple{1, 1})
	if !PairwiseConsistent(st) {
		t.Fatal("state must be pairwise consistent")
	}
	if st.JoinConsistent() {
		t.Fatal("state must not be globally consistent")
	}
}

func TestPairwiseConsistentOnAcyclicEqualsGlobal(t *testing.T) {
	// For acyclic schemas, pairwise consistency ⇒ global ([BFM]); check on
	// random states of the chain schema.
	r := rand.New(rand.NewSource(14))
	s := schema.MustParse("R1(A,B); R2(B,C)")
	for i := 0; i < 200; i++ {
		st := relation.NewState(s)
		for j := 0; j < 3; j++ {
			st.Add("R1", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
			st.Add("R2", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
		}
		if PairwiseConsistent(st) != st.JoinConsistent() {
			t.Fatalf("BFM equivalence failed on\n%s", st)
		}
	}
}
