package hashkey

import "testing"

func TestDistinguishesOrderAndLength(t *testing.T) {
	a := Int64s([]int64{1, 2})
	b := Int64s([]int64{2, 1})
	c := Int64s([]int64{1, 2, 0})
	d := Int64s([]int64{1, 2})
	if a == b {
		t.Error("order must change the hash")
	}
	if a == c {
		t.Error("a trailing zero must change the hash")
	}
	if a != d {
		t.Error("hashing is not deterministic")
	}
	if Int64s([]int64{}) == Int64s([]int64{0}) {
		t.Error("empty vector must differ from {0}")
	}
}

func TestAgreesAcrossWidths(t *testing.T) {
	// The three entry points must agree on the same logical vector of
	// non-negative values, so indexes built over different representations
	// of the same key can interoperate.
	i64 := Int64s([]int64{3, 7, 11})
	i32 := Int32s([]int32{3, 7, 11})
	ii := Ints([]int{3, 7, 11})
	if i64 != i32 || i64 != ii {
		t.Fatalf("entry points disagree: %x %x %x", i64, i32, ii)
	}
}

func TestFewCollisionsOnDenseGrid(t *testing.T) {
	seen := make(map[uint64][2]int64)
	for i := int64(0); i < 300; i++ {
		for j := int64(0); j < 300; j++ {
			h := Int64s([]int64{i, j})
			if prev, ok := seen[h]; ok {
				t.Fatalf("collision: (%d,%d) vs %v", i, j, prev)
			}
			seen[h] = [2]int64{i, j}
		}
	}
}

func TestZeroAllocs(t *testing.T) {
	vs := []int64{1, 2, 3, 4}
	if n := testing.AllocsPerRun(100, func() { Int64s(vs) }); n != 0 {
		t.Fatalf("Int64s allocates %v per run", n)
	}
}
