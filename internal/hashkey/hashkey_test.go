package hashkey

import "testing"

func TestDistinguishesOrderAndLength(t *testing.T) {
	a := Int64s([]int64{1, 2})
	b := Int64s([]int64{2, 1})
	c := Int64s([]int64{1, 2, 0})
	d := Int64s([]int64{1, 2})
	if a == b {
		t.Error("order must change the hash")
	}
	if a == c {
		t.Error("a trailing zero must change the hash")
	}
	if a != d {
		t.Error("hashing is not deterministic")
	}
	if Int64s([]int64{}) == Int64s([]int64{0}) {
		t.Error("empty vector must differ from {0}")
	}
}

func TestAgreesAcrossWidths(t *testing.T) {
	// The three entry points must agree on the same logical vector of
	// non-negative values, so indexes built over different representations
	// of the same key can interoperate.
	i64 := Int64s([]int64{3, 7, 11})
	i32 := Int32s([]int32{3, 7, 11})
	ii := Ints([]int{3, 7, 11})
	if i64 != i32 || i64 != ii {
		t.Fatalf("entry points disagree: %x %x %x", i64, i32, ii)
	}
}

func TestFewCollisionsOnDenseGrid(t *testing.T) {
	seen := make(map[uint64][2]int64)
	for i := int64(0); i < 300; i++ {
		for j := int64(0); j < 300; j++ {
			h := Int64s([]int64{i, j})
			if prev, ok := seen[h]; ok {
				t.Fatalf("collision: (%d,%d) vs %v", i, j, prev)
			}
			seen[h] = [2]int64{i, j}
		}
	}
}

func TestZeroAllocs(t *testing.T) {
	vs := []int64{1, 2, 3, 4}
	if n := testing.AllocsPerRun(100, func() { Int64s(vs) }); n != 0 {
		t.Fatalf("Int64s allocates %v per run", n)
	}
}

func TestStrDistinguishesBoundaries(t *testing.T) {
	if Strs([]string{"ab", "c"}) == Strs([]string{"a", "bc"}) {
		t.Error("element boundaries must change the hash")
	}
	if Strs([]string{"x"}) == Strs([]string{"x", ""}) {
		t.Error("a trailing empty string must change the hash")
	}
	if Strs([]string{"hello, world!!"}) != Strs([]string{"hello, world!!"}) {
		t.Error("string hashing is not deterministic")
	}
	long := Str(Init, "abcdefghijklmnop") // two full 8-byte blocks
	if long == Str(Init, "abcdefghijklmnoq") {
		t.Error("last byte of a block-aligned string must change the hash")
	}
}

func TestRangePartitioning(t *testing.T) {
	if got := Range(0, 4); got != 0 {
		t.Fatalf("Range(0,4) = %d, want 0", got)
	}
	if got := Range(^uint64(0), 4); got != 3 {
		t.Fatalf("Range(max,4) = %d, want 3", got)
	}
	for h := uint64(0); h < 1<<16; h += 97 {
		if Range(h<<48, 1) != 0 {
			t.Fatal("Range(_,1) must be 0")
		}
	}
	// Order-preserving: a larger hash never lands in a smaller range.
	prev := 0
	for i := 0; i < 64; i++ {
		r := Range(uint64(i)<<58, 7)
		if r < prev || r > 6 {
			t.Fatalf("Range not monotone in-bounds: %d then %d", prev, r)
		}
		prev = r
	}
	// Roughly even split over string hashes.
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[Range(Strs([]string{"k", string(rune('a' + i%26)), itoa(i)}), 8)]++
	}
	for p, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("partition %d got %d of 8000 (want ~1000)", p, c)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
