// Package hashkey provides allocation-free 64-bit hashing of small integer
// vectors. It exists so the data plane (relation instances, guard FD
// indexes, chase buckets) can key hash tables by compact binary content
// instead of fmt-built "%d|" strings: a key is a uint64 accumulated with
// Mix, and the owning table resolves the (rare) collisions by comparing the
// underlying vectors. Hashing is a pure function of the values — no seed,
// no scratch buffer, no allocation — so concurrent readers may hash freely.
//
// The mixer is the splitmix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"), which passes avalanche tests; combined
// with a golden-ratio stride per element it gives 64-bit keys whose
// collision probability over realistic table sizes is negligible. Callers
// must still verify equality on lookup: correctness never depends on hash
// quality, only performance does.
package hashkey

import "math/bits"

// Init is the accumulator's starting value. Seeding with a non-zero
// constant distinguishes the empty vector from a vector of zeros.
const Init uint64 = 0x9e3779b97f4a7c15

// Mix folds one element into the accumulator.
func Mix(h, x uint64) uint64 {
	h ^= x * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Int64s hashes a vector of int64-like values.
func Int64s[T ~int64](vs []T) uint64 {
	h := Init
	for _, v := range vs {
		h = Mix(h, uint64(v))
	}
	return h
}

// Int32s hashes a vector of int32-like values.
func Int32s[T ~int32](vs []T) uint64 {
	h := Init
	for _, v := range vs {
		h = Mix(h, uint64(uint32(v)))
	}
	return h
}

// Ints hashes a vector of ints.
func Ints(vs []int) uint64 {
	h := Init
	for _, v := range vs {
		h = Mix(h, uint64(v))
	}
	return h
}

// Str folds a string into the accumulator, eight bytes at a time, with the
// length mixed in so prefixes don't collide trivially ("ab","c" vs "a","bc"
// hash differently when each element is folded with Str). It allocates
// nothing, so routing tiers may hash request values freely.
func Str(h uint64, s string) uint64 {
	h = Mix(h, uint64(len(s)))
	for len(s) >= 8 {
		var x uint64
		for i := 0; i < 8; i++ {
			x |= uint64(s[i]) << (8 * i)
		}
		h = Mix(h, x)
		s = s[8:]
	}
	if len(s) > 0 {
		var x uint64
		for i := 0; i < len(s); i++ {
			x |= uint64(s[i]) << (8 * i)
		}
		h = Mix(h, x)
	}
	return h
}

// Strs hashes a vector of strings — the content hash a cluster router uses
// to place a tuple by its key-attribute values (value names, not interned
// ids, so every node computes the same hash).
func Strs(vs []string) uint64 {
	h := Init
	for _, v := range vs {
		h = Str(h, v)
	}
	return h
}

// Range maps a hash onto one of n equal-width ranges of the 64-bit hash
// space, for hash-range partitioning: range i covers [i*2^64/n, (i+1)*2^64/n).
// It is the fixed-point multiply-shift (Lemire's fast range reduction), so
// the mapping is order-preserving in h and needs no division. n must be
// positive; Range(h, 1) is always 0.
func Range(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}
