// Package hashkey provides allocation-free 64-bit hashing of small integer
// vectors. It exists so the data plane (relation instances, guard FD
// indexes, chase buckets) can key hash tables by compact binary content
// instead of fmt-built "%d|" strings: a key is a uint64 accumulated with
// Mix, and the owning table resolves the (rare) collisions by comparing the
// underlying vectors. Hashing is a pure function of the values — no seed,
// no scratch buffer, no allocation — so concurrent readers may hash freely.
//
// The mixer is the splitmix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"), which passes avalanche tests; combined
// with a golden-ratio stride per element it gives 64-bit keys whose
// collision probability over realistic table sizes is negligible. Callers
// must still verify equality on lookup: correctness never depends on hash
// quality, only performance does.
package hashkey

// Init is the accumulator's starting value. Seeding with a non-zero
// constant distinguishes the empty vector from a vector of zeros.
const Init uint64 = 0x9e3779b97f4a7c15

// Mix folds one element into the accumulator.
func Mix(h, x uint64) uint64 {
	h ^= x * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Int64s hashes a vector of int64-like values.
func Int64s[T ~int64](vs []T) uint64 {
	h := Init
	for _, v := range vs {
		h = Mix(h, uint64(v))
	}
	return h
}

// Int32s hashes a vector of int32-like values.
func Int32s[T ~int32](vs []T) uint64 {
	h := Init
	for _, v := range vs {
		h = Mix(h, uint64(uint32(v)))
	}
	return h
}

// Ints hashes a vector of ints.
func Ints(vs []int) uint64 {
	h := Init
	for _, v := range vs {
		h = Mix(h, uint64(v))
	}
	return h
}
