package experiments

import (
	"strings"
	"testing"
)

// The experiment runners are exercised at reduced scale; their detailed
// claims are asserted by the per-package test suites — here we check the
// harness runs and reports the expected qualitative outcomes.

func small() Params { return Params{Seed: 7, Scale: 20} }

func TestE1ReportsPaperOutcome(t *testing.T) {
	out := E1(small())
	for _, want := range []string{
		"locally satisfying: true",
		"globally satisfying: false",
		"independent: false",
		"witness verified by chase: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ReportsPaperOutcome(t *testing.T) {
	out := E2(small())
	if !strings.Contains(out, "independent = true") ||
		!strings.Contains(out, "independent = false, reason = not-cover-embedding") {
		t.Errorf("E2 output wrong:\n%s", out)
	}
}

func TestE3ReportsBothRejectionSites(t *testing.T) {
	out := E3(small())
	if !strings.Contains(out, "rejected at line 5") || !strings.Contains(out, "rejected at line 4") {
		t.Errorf("E3 must show both rejection sites:\n%s", out)
	}
	if !strings.Contains(out, "verified = true") {
		t.Errorf("E3 witness must verify:\n%s", out)
	}
}

func TestT1ReductionAgrees(t *testing.T) {
	out := T1(Params{Seed: 7, Scale: 4})
	if strings.Contains(out, "agree: false") {
		t.Errorf("T1 reduction disagreement:\n%s", out)
	}
}

func TestT3NoCounterexamplesOnAccepted(t *testing.T) {
	out := T3(small())
	if !strings.Contains(out, "counterexamples found: 0") {
		t.Errorf("T3 found counterexamples on accepted schemas:\n%s", out)
	}
}

func TestC1BoundHolds(t *testing.T) {
	out := C1(small())
	if !strings.Contains(out, "bound: 1.0") {
		t.Errorf("C1 malformed:\n%s", out)
	}
	// Extract the observed ratio sanity: must not exceed 1.0; the string
	// itself carries it, so just ensure no "exceeds" style failure by
	// checking the package test in infer already enforces the bound.
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness is slow")
	}
	out := RunAll(Params{Seed: 7, Scale: 4})
	for _, id := range Order {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("RunAll missing %s", id)
		}
	}
}
