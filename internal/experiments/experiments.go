// Package experiments regenerates, as printable tables, every empirical
// artifact of the reproduction. The paper is a theory paper — its
// "evaluation" is theorems and worked examples — so each experiment either
// replays a worked example, validates a theorem's claim against the chase
// oracle, or measures the complexity behaviour the theorems assert
// (polynomial decision procedure, fast maintenance for independent schemas,
// intractable maintenance in general). EXPERIMENTS.md records the outputs.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"indep/internal/acyclic"
	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/maintenance"
	"indep/internal/relation"
	"indep/internal/schema"
	"indep/internal/workload"
)

// Registry maps experiment ids to runners. Params scale the work; the zero
// value of Params picks the defaults used for EXPERIMENTS.md.
type Params struct {
	Seed  int64
	Scale int // 0 = default scale
}

func (p Params) scale(def int) int {
	if p.Scale <= 0 {
		return def
	}
	return p.Scale
}

func (p Params) rng() *rand.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = 1982
	}
	return rand.New(rand.NewSource(seed))
}

// Runner executes one experiment and returns its report.
type Runner func(Params) string

// Registry lists all experiments in DESIGN.md order.
var Registry = map[string]Runner{
	"E1": E1, "E2": E2, "E3": E3,
	"T1": T1, "T2": T2, "T3": T3,
	"C1": C1, "P1": P1, "A1": A1, "M1": M1,
}

// Order is the canonical execution order.
var Order = []string{"E1", "E2", "E3", "T1", "T2", "T3", "C1", "P1", "A1", "M1"}

func header(id, title string) string {
	return fmt.Sprintf("== %s: %s ==\n", id, title)
}

// E1 replays the paper's Example 1: the CS402/Jones state is locally
// satisfying but globally unsatisfying, and the schema is not independent.
func E1(p Params) string {
	var b strings.Builder
	b.WriteString(header("E1", "Example 1 (CD,CT,TD with C->D, C->T, T->D)"))
	st, fds := workload.Example1State()
	local, _, _ := chase.LocallySatisfies(st, fds, true, chase.DefaultCaps)
	global, _ := chase.Satisfies(st, fds, true, chase.DefaultCaps)
	fmt.Fprintf(&b, "state locally satisfying: %v (paper: yes)\n", local)
	fmt.Fprintf(&b, "state globally satisfying: %v (paper: no — chase derives d=EE then contradicts C->D)\n", global)
	s, f := workload.Example1()
	res, _ := independence.Decide(s, f)
	fmt.Fprintf(&b, "schema independent: %v (paper: no; \"the algorithm will reject the system of Example 1\")\n", res.Independent)
	if res.Witness != nil {
		ok, _ := chase.IsIndependenceWitness(res.Witness, f, chase.DefaultCaps)
		fmt.Fprintf(&b, "algorithm witness verified by chase: %v (kind %s)\n", ok, res.WitnessKind)
	}
	return b.String()
}

// E2 replays Example 2: CT,CS,CHR with C->T, CH->R is independent; adding
// SH->R breaks cover-embedding (Theorem 2 condition 1).
func E2(p Params) string {
	var b strings.Builder
	b.WriteString(header("E2", "Example 2 (CT,CS,CHR)"))
	s, f := workload.Example2()
	res, _ := independence.Decide(s, f)
	fmt.Fprintf(&b, "with {C->T, CH->R}: independent = %v (paper: yes)\n", res.Independent)
	for i := range s.Rels {
		fmt.Fprintf(&b, "  F_%s = %s\n", s.Name(i), res.Cover.ForScheme(i).Format(s.U))
	}
	s2, f2 := workload.Example2Broken()
	res2, _ := independence.Decide(s2, f2)
	fmt.Fprintf(&b, "with SH->R added: independent = %v, reason = %s (paper: condition (1) fails)\n",
		res2.Independent, res2.Reason)
	fmt.Fprintf(&b, "  failing FDs: %s\n", res2.FailingFDs.Format(s2.U))
	return b.String()
}

// E3 replays the recovered Example 3 and both of the paper's rejection
// sites (line 4 when A2B2 is picked, line 5 when A1B1 is picked).
func E3(p Params) string {
	var b strings.Builder
	b.WriteString(header("E3", "Example 3 (recovered; R1(A1,B1), R2(A1,B1,A2,B2,C))"))
	s, f := workload.Example3()
	cover, ok, _ := infer.ExtractCover(s, f)
	fmt.Fprintf(&b, "cover-embedding: %v\n", ok)
	rej, _ := independence.RunLoop(s, cover, s.IndexOf("R1"))
	fmt.Fprintf(&b, "picking A1B1 first: rejected at %s (paper: line 5)\n", rej.Site)
	s4 := schema.MustParse("R2(A2,B2,A1,B1,C); R1(A1,B1)")
	f4 := fd.MustParse(s4.U, "A1 -> A2; B1 -> B2; A1 B1 -> C; A2 B2 -> A1 B1 C")
	cover4, _, _ := infer.ExtractCover(s4, f4)
	rej4, _ := independence.RunLoop(s4, cover4, s4.IndexOf("R1"))
	fmt.Fprintf(&b, "picking A2B2 first: rejected at %s with attribute %s (paper: line 4, A1/B1)\n",
		rej4.Site, s4.U.Name(rej4.Attr))
	res, _ := independence.Decide(s, f)
	okW, _ := chase.IsIndependenceWitness(res.Witness, f, chase.DefaultCaps)
	fmt.Fprintf(&b, "witness (matches the paper's printed state, see tests): verified = %v\n%s",
		okW, indent(res.Witness.String()))
	return b.String()
}

// T1 demonstrates Theorem 1: maintenance cost through the chase grows
// explosively on the reduction family, while the join-membership question
// it encodes is the NP-complete core.
func T1(p Params) string {
	var b strings.Builder
	b.WriteString(header("T1", "Theorem 1: the maintenance problem is intractable in general"))
	b.WriteString("reduction family: chain of k binary schemes over n-value columns;\n")
	b.WriteString("maintenance of the single insert is decided by chasing p' (FD X->B plus jd *D).\n")
	fmt.Fprintf(&b, "%6s %6s %12s %14s %10s\n", "k", "rows", "join member", "chase verdict", "time")
	r := p.rng()
	maxK := p.scale(6)
	for k := 2; k <= maxK; k++ {
		u := attrset.NewUniverse()
		for i := 0; i <= k; i++ {
			u.Add(fmt.Sprintf("X%d", i))
		}
		inst := relation.NewInstance(u.All())
		for i := 0; i < 3*k; i++ {
			t := make(relation.Tuple, k+1)
			for c := range t {
				t[c] = relation.Value(r.Intn(3))
			}
			inst.Add(t)
		}
		var schemes []attrset.Set
		for i := 0; i < k; i++ {
			schemes = append(schemes, attrset.Of(i, i+1))
		}
		x := attrset.Of(0, k)
		tu := relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))}
		member := maintenance.MemberOfJoin(inst, schemes, x, tu)
		red, err := maintenance.BuildReduction(u, inst, schemes, x, tu)
		if err != nil {
			fmt.Fprintf(&b, "%6d error: %v\n", k, err)
			continue
		}
		p2 := red.P.Clone()
		p2.Insts[red.Last].Add(red.Inserted)
		start := time.Now()
		sat, err := chase.Satisfies(p2, red.FDs, true, chase.Caps{MaxRows: 2_000_000, MaxIters: 100000})
		el := time.Since(start)
		verdict := fmt.Sprintf("%v", sat)
		if err != nil {
			verdict = "budget"
		}
		fmt.Fprintf(&b, "%6d %6d %12v %14s %10s   (agree: %v)\n",
			k, p2.TupleCount(), member, verdict, el.Round(time.Microsecond), err == nil && sat == !member)
	}
	b.WriteString("expected shape: chase verdict == NOT(join member); time grows superlinearly with k.\n")
	return b.String()
}

// T2 validates the Section 3 cover-embedding test against the exponential
// chase oracle and times its polynomial scaling.
func T2(p Params) string {
	var b strings.Builder
	b.WriteString(header("T2", "Theorem 2 / Section 3: cover-embedding test vs chase oracle"))
	r := p.rng()
	n := p.scale(250)
	agree, checked := 0, 0
	for i := 0; i < n; i++ {
		s, fds := workload.Schema(r, workload.Config{
			Attrs: 4 + r.Intn(3), Schemes: 2 + r.Intn(2), SchemeMax: 3,
			FDs: 1 + r.Intn(3), LHSMax: 2,
		})
		for _, f := range fds.Split() {
			fast := infer.Implies(s, fds, f) // trivially true (f ∈ F) — skip
			_ = fast
			// Compare embedded-closure membership with oracle implication
			// from embedded FDs only on a sampled attribute.
			a := r.Intn(s.U.Size())
			closed, _ := infer.ClosureEmbedded(s, fds, f.LHS)
			slow, err := chase.ClosureFD(s, fds, f.LHS, true, chase.DefaultCaps)
			if err != nil {
				continue
			}
			checked++
			// Embedded closure is a subset of the full closure; and the
			// full polynomial closure must equal the chase closure.
			fastFull := infer.Closure(s, fds, f.LHS)
			if fastFull == slow && closed.SubsetOf(slow) {
				agree++
			}
			_ = a
		}
	}
	fmt.Fprintf(&b, "random closures checked against two-row FD+JD chase: %d, agreement: %d\n", checked, agree)
	b.WriteString("\npolynomial scaling of the full decision procedure (chain schemas, key FDs):\n")
	fmt.Fprintf(&b, "%8s %8s %8s %12s\n", "|U|", "schemes", "|F|", "decide time")
	sizes := []int{8, 16, 32, 64, 128}
	if p.Scale > 0 && p.Scale <= 8 {
		sizes = []int{8, 16, 32}
	}
	for _, n := range sizes {
		s, fds := chainWithKeys(n)
		start := time.Now()
		res, err := independence.Decide(s, fds)
		el := time.Since(start)
		verdict := "?"
		if err == nil {
			verdict = fmt.Sprintf("%v", res.Independent)
		}
		fmt.Fprintf(&b, "%8d %8d %8d %12s  independent=%s\n", n, s.Size(), len(fds), el.Round(time.Microsecond), verdict)
	}
	return b.String()
}

// chainWithKeys builds R_i(A_i, A_{i+1}) with A_i -> A_{i+1}: an
// independent chain of any size.
func chainWithKeys(n int) (*schema.Schema, fd.List) {
	u := attrset.NewUniverse()
	for i := 0; i < n; i++ {
		u.Add(fmt.Sprintf("A%d", i))
	}
	var rels []schema.Rel
	var fds fd.List
	for i := 0; i+1 < n; i++ {
		rels = append(rels, schema.Rel{Name: fmt.Sprintf("R%d", i), Attrs: attrset.Of(i, i+1)})
		fds = append(fds, fd.FD{LHS: attrset.Of(i), RHS: attrset.Of(i + 1)})
	}
	return schema.New(u, rels...), fds
}

// T3 validates Theorems 3–5 end to end: every rejection must ship a
// chase-verified witness; accepted schemas must admit no locally-sat
// globally-unsat state in randomized hunting.
func T3(p Params) string {
	var b strings.Builder
	b.WriteString(header("T3", "Theorems 3-5: randomized validation of accept/reject"))
	r := p.rng()
	n := p.scale(300)
	accepted, rejected, witnessOK, huntStates, huntBad := 0, 0, 0, 0, 0
	for i := 0; i < n; i++ {
		s, fds := workload.Schema(r, workload.Config{
			Attrs: 4 + r.Intn(3), Schemes: 2 + r.Intn(2), SchemeMax: 3,
			FDs: 1 + r.Intn(3), LHSMax: 2,
		})
		res, err := independence.Decide(s, fds)
		if err != nil {
			continue
		}
		if res.Independent {
			accepted++
			for j := 0; j < 4; j++ {
				st := workload.LocalState(r, s, fds, 1+r.Intn(2), 3, 15)
				if st == nil {
					continue
				}
				huntStates++
				ok, err := chase.Satisfies(st, fds, true, chase.DefaultCaps)
				if err == nil && !ok {
					huntBad++
				}
			}
		} else {
			rejected++
			if res.Witness != nil {
				if ok, err := chase.IsIndependenceWitness(res.Witness, fds, chase.DefaultCaps); err == nil && ok {
					witnessOK++
				}
			}
		}
	}
	fmt.Fprintf(&b, "instances: %d   accepted: %d   rejected: %d\n", n, accepted, rejected)
	fmt.Fprintf(&b, "rejections with chase-verified witness: %d/%d (paper: every non-independent schema has one)\n", witnessOK, rejected)
	fmt.Fprintf(&b, "locally-satisfying states hunted on accepted schemas: %d, counterexamples found: %d (paper: 0)\n", huntStates, huntBad)
	return b.String()
}

// C1 checks the |H| <= |F|·|U| bound on the extracted embedded cover.
func C1(p Params) string {
	var b strings.Builder
	b.WriteString(header("C1", "Section 3: |H| <= |F|*|U| for the extracted embedded cover"))
	r := p.rng()
	n := p.scale(300)
	maxRatio, covers := 0.0, 0
	for i := 0; i < n; i++ {
		s, fds := workload.Schema(r, workload.Config{
			Attrs: 5 + r.Intn(4), Schemes: 2 + r.Intn(3), SchemeMax: 4,
			FDs: 1 + r.Intn(4), LHSMax: 2,
		})
		cover, ok, _ := infer.ExtractCover(s, fds)
		if !ok {
			continue
		}
		covers++
		bound := len(fds.Split()) * s.U.Size()
		if bound == 0 {
			continue
		}
		ratio := float64(len(cover)) / float64(bound)
		if ratio > maxRatio {
			maxRatio = ratio
		}
	}
	fmt.Fprintf(&b, "cover-embedding instances: %d; max |H| / (|F|*|U|) observed: %.3f (bound: 1.0)\n", covers, maxRatio)
	return b.String()
}

// P1 measures the polynomial growth of the full analysis.
func P1(p Params) string {
	var b strings.Builder
	b.WriteString(header("P1", "Polynomial-time claims: Analyze wall time vs universe size"))
	fmt.Fprintf(&b, "%8s %10s %12s %12s\n", "|U|", "shape", "verdict", "time")
	sizes := []int{8, 16, 32, 64, 96, 128, 192}
	if p.Scale > 0 && p.Scale <= 8 {
		sizes = []int{8, 16, 32}
	}
	for _, n := range sizes {
		for _, shape := range []string{"chain", "star"} {
			s, fds := scalingSchema(n, shape)
			start := time.Now()
			res, err := independence.Decide(s, fds)
			el := time.Since(start)
			v := "error"
			if err == nil {
				v = fmt.Sprintf("%v", res.Independent)
			}
			fmt.Fprintf(&b, "%8d %10s %12s %12s\n", n, shape, v, el.Round(time.Microsecond))
		}
	}
	b.WriteString("expected shape: low-degree polynomial growth (the paper proves polynomial time).\n")
	return b.String()
}

func scalingSchema(n int, shape string) (*schema.Schema, fd.List) {
	if shape == "chain" {
		return chainWithKeys(n)
	}
	// Star: FACT(K1..Kk), DIMi(Ki, Vi...) with Ki -> Vi.
	u := attrset.NewUniverse()
	k := n / 3
	if k < 2 {
		k = 2
	}
	var fact attrset.Set
	for i := 0; i < k; i++ {
		fact.Add(u.Add(fmt.Sprintf("K%d", i)))
	}
	rels := []schema.Rel{{Name: "FACT", Attrs: fact}}
	var fds fd.List
	for i := 0; i < k && u.Size() < n; i++ {
		v := u.Add(fmt.Sprintf("V%d", i))
		rels = append(rels, schema.Rel{
			Name:  fmt.Sprintf("DIM%d", i),
			Attrs: attrset.Of(i, v),
		})
		fds = append(fds, fd.FD{LHS: attrset.Of(i), RHS: attrset.Of(v)})
	}
	return schema.New(u, rels...), fds
}

// A1 contrasts acyclic and cyclic schemas: GYO verdicts and the cost of
// consistency checking via semijoins vs joins.
func A1(p Params) string {
	var b strings.Builder
	b.WriteString(header("A1", "Acyclicity context: GYO, full reducer vs join"))
	r := p.rng()
	chain := schema.MustParse("R1(A,B); R2(B,C); R3(C,D); R4(D,E)")
	tri := schema.MustParse("R1(A,B); R2(B,C); R3(C,A)")
	fmt.Fprintf(&b, "chain acyclic: %v   triangle acyclic: %v\n",
		acyclic.IsAcyclic(chain), acyclic.IsAcyclic(tri))
	fmt.Fprintf(&b, "%10s %10s %14s %14s\n", "tuples/rel", "schema", "semijoin test", "join test")
	tupleCounts := []int{50, 200, 800}
	if p.Scale > 0 && p.Scale <= 8 {
		tupleCounts = []int{50, 100}
	}
	for _, n := range tupleCounts {
		st := relation.NewState(chain)
		for i := 0; i < n; i++ {
			for j := range chain.Rels {
				st.Insts[j].Add(relation.Tuple{relation.Value(r.Intn(n)), relation.Value(r.Intn(n))})
			}
		}
		start := time.Now()
		acyclic.GloballyConsistent(st)
		semi := time.Since(start)
		start = time.Now()
		st.JoinConsistent()
		join := time.Since(start)
		fmt.Fprintf(&b, "%10d %10s %14s %14s\n", n, "chain", semi.Round(time.Microsecond), join.Round(time.Microsecond))
	}
	b.WriteString("expected shape: semijoin (full-reducer) test scales better than materializing the join.\n")
	return b.String()
}

// M1 measures maintenance throughput: the independent-schema guard vs
// chase-based maintenance as the state grows.
func M1(p Params) string {
	var b strings.Builder
	b.WriteString(header("M1", "Maintenance: guard (independent) vs chase, per-insert cost"))
	r := p.rng()
	s, fds := workload.Example2()
	res, _ := independence.Decide(s, fds)
	fmt.Fprintf(&b, "%10s %16s %16s %8s\n", "state size", "guard ns/insert", "chase ns/insert", "ratio")
	stateSizes := []int{100, 400, 1600}
	if p.Scale > 0 && p.Scale <= 8 {
		stateSizes = []int{50, 100}
	}
	for _, n := range stateSizes {
		guard := maintenance.NewGuard(s, res.Cover)
		chaser := maintenance.NewChaseMaintainer(s, fds, false, chase.DefaultCaps)
		load := func(m maintenance.Maintainer) time.Duration {
			start := time.Now()
			for i := 0; i < n; i++ {
				c := relation.Value(i)
				_ = m.Insert(0, relation.Tuple{c, c + 1})
				_ = m.Insert(1, relation.Tuple{c, c + 2})
				_ = m.Insert(2, relation.Tuple{c, relation.Value(i % 7), c + 3})
			}
			return time.Since(start)
		}
		gt := load(guard)
		ct := load(chaser)
		inserts := int64(3 * n)
		gns := gt.Nanoseconds() / inserts
		cns := ct.Nanoseconds() / inserts
		ratio := float64(cns) / float64(max64(1, gns))
		fmt.Fprintf(&b, "%10d %16d %16d %7.0fx\n", 3*n, gns, cns, ratio)
		_ = r
	}
	b.WriteString("expected shape: guard is O(|F_i|) per insert (flat); chase cost grows with state size.\n")
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// RunAll executes every experiment in order and concatenates the reports.
func RunAll(p Params) string {
	var b strings.Builder
	for _, id := range Order {
		b.WriteString(Registry[id](p))
		b.WriteString("\n")
	}
	return b.String()
}
