package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"math/rand/v2"
)

// Trace IDs tie one request's slog lines together across layers: the HTTP
// access log, the engine's slow-op log, and the WAL fsync ack all carry the
// same ID, so `grep <id>` reconstructs an insert's full path from ingress
// to durability.

type traceKeyType struct{}

var traceKey traceKeyType

// NewTraceID returns a fresh 16-hex-character request ID. Crypto randomness
// when available, falling back to the runtime's fast source — trace IDs
// need uniqueness, not unpredictability.
func NewTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		u := rand.Uint64()
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether id is a well-formed trace ID: exactly 16
// lowercase hex characters, the shape NewTraceID mints. The HTTP middleware
// accepts only valid client-supplied IDs (after ASCII-lowercasing), so
// hostile or sloppy clients cannot inject unbounded-cardinality junk into
// the access log and the flight recorder.
func ValidTraceID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// Trace returns the context's trace ID, or "" when none was attached.
func Trace(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey).(string)
	return id
}
