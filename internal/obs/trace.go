package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"math/rand/v2"
)

// Trace IDs tie one request's slog lines together across layers: the HTTP
// access log, the engine's slow-op log, and the WAL fsync ack all carry the
// same ID, so `grep <id>` reconstructs an insert's full path from ingress
// to durability.

type traceKeyType struct{}

var traceKey traceKeyType

// NewTraceID returns a fresh 16-hex-character request ID. Crypto randomness
// when available, falling back to the runtime's fast source — trace IDs
// need uniqueness, not unpredictability.
func NewTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		u := rand.Uint64()
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// Trace returns the context's trace ID, or "" when none was attached.
func Trace(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey).(string)
	return id
}
