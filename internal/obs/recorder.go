package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is an always-on flight recorder: a lock-free ring of the most
// recently retained traces. Retention is tail-based — the decision is made
// when the request *finishes*, so the recorder keeps exactly the traces an
// operator will ask about (slow, errored, constraint-rejected) and only a
// sample of the unremarkable rest. Publication into the ring is a single
// atomic pointer store; readers (debug endpoints) scan the ring without
// blocking writers.
//
// RequestTrace arenas are pooled: a trace the recorder declines to keep is reset
// and recycled, so at steady state an unsampled traced request allocates no
// span memory at all. Retained traces are never recycled — a reader may
// still be rendering one long after it is overwritten in the ring — they
// are simply left to the garbage collector when evicted.
type Recorder struct {
	slots []atomic.Pointer[RequestTrace]
	mask  uint64
	next  atomic.Uint64 // ring write cursor (total retained traces)

	slow        time.Duration
	sampleEvery uint64
	sampleTick  atomic.Uint64
	maxSpans    int

	pool     sync.Pool
	recorded Counter // traces retained in the ring
	dropped  Counter // traces completed but not retained
}

// RecorderOptions tunes NewRecorder. The zero value gives the defaults:
// a 512-slot ring, 256 spans per trace, retain everything slower than
// DefaultSlowTrace, and sample 1 in DefaultSampleEvery of the rest.
type RecorderOptions struct {
	// Capacity is the ring size in traces, rounded up to a power of two.
	Capacity int
	// Slow retains every trace whose total duration meets the threshold.
	// Negative disables slowness-based retention; 0 means the default.
	Slow time.Duration
	// SampleEvery retains 1 in N traces that are neither slow nor failed;
	// 1 retains everything, 0 means the default.
	SampleEvery int
	// MaxSpans bounds each trace's span arena (see DefaultMaxSpans).
	MaxSpans int
}

// DefaultRingCapacity is the default number of ring slots.
const DefaultRingCapacity = 512

// DefaultSlowTrace is the default retain-everything-slower-than threshold.
const DefaultSlowTrace = 100 * time.Millisecond

// DefaultSampleEvery is the default 1-in-N sampling rate for traces that
// are neither slow nor failed.
const DefaultSampleEvery = 16

// NewRecorder builds a flight recorder.
func NewRecorder(o RecorderOptions) *Recorder {
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	slow := o.Slow
	switch {
	case slow < 0:
		slow = 0 // disabled
	case slow == 0:
		slow = DefaultSlowTrace
	}
	sample := uint64(o.SampleEvery)
	if sample == 0 {
		sample = DefaultSampleEvery
	}
	maxSpans := o.MaxSpans
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	r := &Recorder{
		slots:       make([]atomic.Pointer[RequestTrace], size),
		mask:        uint64(size - 1),
		slow:        slow,
		sampleEvery: sample,
		maxSpans:    maxSpans,
	}
	r.pool.New = func() any { return newTrace(maxSpans) }
	return r
}

// Start begins a trace for one request: a pooled arena is claimed, reset
// under the given ID, and its root span opened. Pass both to Finish when
// the request completes. Nil-safe on a nil recorder (returns nils, and the
// nil span makes every downstream StartSpan free).
func (r *Recorder) Start(id, rootName string) (*RequestTrace, *Span) {
	if r == nil {
		return nil, nil
	}
	tr := r.pool.Get().(*RequestTrace)
	root := tr.begin(id, rootName)
	return tr, root
}

// Finish completes a trace and applies tail-based retention: keep it when
// the request was rejected (409), failed (5xx), or slow; otherwise keep 1
// in SampleEvery and recycle the rest. Nil-safe.
func (r *Recorder) Finish(t *RequestTrace, status int) {
	if r == nil || t == nil {
		return
	}
	t.finish(status)
	reason := ""
	switch {
	case status == 409:
		reason = "rejected"
	case status >= 500:
		reason = "error"
	case r.slow > 0 && t.dur >= r.slow:
		reason = "slow"
	case r.sampleEvery <= 1 || r.sampleTick.Add(1)%r.sampleEvery == 0:
		reason = "sampled"
	}
	if reason == "" {
		r.dropped.Inc()
		r.pool.Put(t)
		return
	}
	t.mu.Lock()
	t.reason = reason
	t.mu.Unlock()
	r.recorded.Inc()
	slot := (r.next.Add(1) - 1) & r.mask
	r.slots[slot].Store(t)
}

// Occupancy returns the number of ring slots holding a trace.
func (r *Recorder) Occupancy() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Get returns the retained trace with the given ID, preferring the most
// recent when a client reused an ID.
func (r *Recorder) Get(id string) (TraceView, bool) {
	var best *RequestTrace
	for i := range r.slots {
		t := r.slots[i].Load()
		if t == nil || t.id != id {
			continue
		}
		if best == nil || t.start.After(best.start) {
			best = t
		}
	}
	if best == nil {
		return TraceView{}, false
	}
	return best.View(), true
}

// Recent returns up to limit retained traces, newest first, filtered to
// those lasting at least minDur and (when route is non-empty) whose root
// span name equals route. limit <= 0 means no limit beyond the ring size.
func (r *Recorder) Recent(minDur time.Duration, route string, limit int) []TraceView {
	traces := make([]*RequestTrace, 0, len(r.slots))
	for i := range r.slots {
		t := r.slots[i].Load()
		if t == nil {
			continue
		}
		if t.dur < minDur {
			continue
		}
		if route != "" {
			t.mu.Lock()
			name := ""
			if len(t.spans) > 0 {
				name = t.spans[0].name
			}
			t.mu.Unlock()
			if name != route {
				continue
			}
		}
		traces = append(traces, t)
	}
	sort.Slice(traces, func(a, b int) bool { return traces[a].start.After(traces[b].start) })
	if limit > 0 && len(traces) > limit {
		traces = traces[:limit]
	}
	out := make([]TraceView, len(traces))
	for i, t := range traces {
		out[i] = t.View()
	}
	return out
}

// Register files the recorder's metric families with the registry: retained
// and discarded trace counters plus a ring-occupancy gauge.
func (r *Recorder) Register(reg *Registry) {
	reg.CounterFunc("obs_trace_recorded_total",
		"traces retained in the flight-recorder ring", r.recorded.Value)
	reg.CounterFunc("obs_trace_dropped_total",
		"completed traces not retained (tail sampling)", r.dropped.Value)
	reg.GaugeFunc("obs_trace_ring_occupancy",
		"flight-recorder ring slots holding a trace",
		func() float64 { return float64(r.Occupancy()) })
}
