package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testID(i int) string {
	return fmt.Sprintf("%016x", uint64(i)+1)
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	tr, sp := r.Start("0123456789abcdef", "root")
	if tr != nil || sp != nil {
		t.Fatalf("nil recorder started a trace: %v %v", tr, sp)
	}
	r.Finish(tr, 200) // must not panic
}

func TestRecorderRetention(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 8, Slow: -1, SampleEvery: 1 << 30})

	cases := []struct {
		status int
		reason string
	}{
		{409, "rejected"},
		{500, "error"},
		{503, "error"},
	}
	for i, c := range cases {
		tr, _ := r.Start(testID(i), "POST /insert")
		r.Finish(tr, c.status)
		v, ok := r.Get(testID(i))
		if !ok {
			t.Fatalf("status %d not retained", c.status)
		}
		if v.Reason != c.reason {
			t.Fatalf("status %d: reason %q, want %q", c.status, v.Reason, c.reason)
		}
	}

	// A plain 200 is sampled out at this rate.
	tr, _ := r.Start(testID(100), "GET /state")
	r.Finish(tr, 200)
	if _, ok := r.Get(testID(100)); ok {
		t.Fatal("unremarkable 200 retained despite sampling")
	}
	if r.recorded.Value() != 3 || r.dropped.Value() != 1 {
		t.Fatalf("counters: recorded=%d dropped=%d, want 3/1", r.recorded.Value(), r.dropped.Value())
	}
}

func TestRecorderSlowRetention(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 8, Slow: time.Nanosecond, SampleEvery: 1 << 30})
	tr, _ := r.Start(testID(1), "GET /window")
	time.Sleep(time.Millisecond)
	r.Finish(tr, 200)
	v, ok := r.Get(testID(1))
	if !ok || v.Reason != "slow" {
		t.Fatalf("slow trace: ok=%v reason=%q", ok, v.Reason)
	}
}

func TestRecorderSampleEveryOne(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 8, Slow: -1, SampleEvery: 1})
	tr, _ := r.Start(testID(1), "GET /state")
	r.Finish(tr, 200)
	v, ok := r.Get(testID(1))
	if !ok || v.Reason != "sampled" {
		t.Fatalf("SampleEvery=1 trace: ok=%v reason=%q", ok, v.Reason)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 4, Slow: -1, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		tr, _ := r.Start(testID(i), "GET /state")
		r.Finish(tr, 200)
	}
	if occ := r.Occupancy(); occ != 4 {
		t.Fatalf("occupancy %d, want 4", occ)
	}
	if _, ok := r.Get(testID(0)); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := r.Get(testID(9)); !ok {
		t.Fatal("latest trace missing from the ring")
	}
	recent := r.Recent(0, "", 0)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d traces, want 4", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Start.After(recent[i-1].Start) {
			t.Fatal("Recent not sorted newest first")
		}
	}
}

func TestRecorderRecentFilters(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 16, Slow: -1, SampleEvery: 1})
	for i := 0; i < 3; i++ {
		tr, _ := r.Start(testID(i), "GET /state")
		r.Finish(tr, 200)
	}
	tr, _ := r.Start(testID(10), "POST /insert")
	r.Finish(tr, 200)

	if got := r.Recent(0, "POST /insert", 0); len(got) != 1 || got[0].Route != "POST /insert" {
		t.Fatalf("route filter: %+v", got)
	}
	if got := r.Recent(0, "", 2); len(got) != 2 {
		t.Fatalf("limit: got %d, want 2", len(got))
	}
	if got := r.Recent(time.Hour, "", 0); len(got) != 0 {
		t.Fatalf("min-duration filter: got %d, want 0", len(got))
	}
}

// TestRecorderHammer drives concurrent writers (Start/span churn/Finish)
// against concurrent readers (Get/Recent/Occupancy). Run under -race it
// checks the lock-free ring publication and the pool recycling discipline.
func TestRecorderHammer(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 16, Slow: -1, SampleEvery: 2, MaxSpans: 16})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := testID(w*perWriter + i)
				tr, root := r.Start(id, "POST /insert")
				sp := root.StartChild("store.insert")
				sp.SetAttr("relation", "CT")
				sp.SetInt("lock_wait_ns", int64(i))
				sp.End()
				status := 200
				if i%7 == 0 {
					status = 409
				}
				r.Finish(tr, status)
			}
		}(w)
	}

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range r.Recent(0, "", 8) {
					if v.Route != "POST /insert" {
						t.Errorf("torn trace view: route %q", v.Route)
						return
					}
					r.Get(v.ID)
				}
				r.Occupancy()
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	total := r.recorded.Value() + r.dropped.Value()
	if total != writers*perWriter {
		t.Fatalf("recorded+dropped = %d, want %d", total, writers*perWriter)
	}
	// Every 409 is retained regardless of sampling.
	if r.recorded.Value() < writers*perWriter/7 {
		t.Fatalf("recorded %d traces, want at least the %d rejected ones",
			r.recorded.Value(), writers*perWriter/7)
	}
}
