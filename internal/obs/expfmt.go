package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the strict line parser for Prometheus text exposition that
// CI scrapes /metrics through (and FuzzParseExposition hammers). It accepts
// exactly what a healthy exporter should emit — HELP/TYPE headed families,
// contiguous samples, well-formed labels, consistent histograms — and
// rejects everything else, so a formatting regression fails the build
// instead of silently corrupting a scrape.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels []Label // in line order; names unique
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParsedFamily is one metric family of a parsed exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseExposition strictly parses Prometheus text exposition format. Every
// family must open with `# HELP` then `# TYPE`, its samples must follow
// contiguously, sample names must match the family (histograms may only use
// the _bucket/_sum/_count forms), labels must be well-formed with unique
// names, values must parse as floats, and histograms must be internally
// consistent (le present and increasing, cumulative counts nondecreasing,
// +Inf bucket equal to _count). The input must end with a newline.
func ParseExposition(data []byte) ([]ParsedFamily, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("expfmt: empty exposition")
	}
	if data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("expfmt: missing trailing newline")
	}
	var fams []ParsedFamily
	seen := make(map[string]bool)
	var cur *ParsedFamily
	var pendingHelp string
	havePendingHelp := false

	lines := strings.Split(string(data[:len(data)-1]), "\n")
	for ln, line := range lines {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("expfmt: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fail("malformed HELP line")
			}
			if !nameRE.MatchString(name) {
				return nil, fail("HELP for invalid metric name %q", name)
			}
			if havePendingHelp {
				return nil, fail("HELP %s follows HELP without a TYPE", name)
			}
			if seen[name] {
				return nil, fail("family %s re-opened", name)
			}
			cur = &ParsedFamily{Name: name}
			pendingHelp = help
			havePendingHelp = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fail("malformed TYPE line")
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped" {
				return nil, fail("unknown TYPE %q", typ)
			}
			if !havePendingHelp || cur == nil || cur.Name != name {
				return nil, fail("TYPE %s without a preceding HELP", name)
			}
			cur.Help = pendingHelp
			cur.Type = typ
			havePendingHelp = false
			seen[name] = true
			fams = append(fams, *cur)
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "#"):
			return nil, fail("unexpected comment %q", line)
		default:
			if havePendingHelp {
				return nil, fail("sample before TYPE line")
			}
			s, err := parseSample(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			if cur == nil {
				return nil, fail("sample %s before any family", s.Name)
			}
			if !sampleBelongs(cur, s.Name) {
				return nil, fail("sample %s does not belong to family %s", s.Name, cur.Name)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	if havePendingHelp {
		return nil, fmt.Errorf("expfmt: trailing HELP without TYPE")
	}
	for i := range fams {
		if err := checkFamily(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// sampleBelongs reports whether a sample name is legal inside the family.
func sampleBelongs(f *ParsedFamily, name string) bool {
	if f.Type == "histogram" {
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return name == f.Name
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	s.Name = rest[:i]
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("missing space before value in %q", line)
	}
	val := rest[1:]
	if val == "" || strings.ContainsAny(val, " \t") {
		return s, fmt.Errorf("malformed value %q", val)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", val, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block, returning the remainder of the
// line after the closing brace.
func parseLabels(rest string) ([]Label, string, error) {
	rest = rest[1:] // consume '{'
	var out []Label
	names := make(map[string]bool)
	for {
		i := strings.IndexByte(rest, '=')
		if i < 0 {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := rest[:i]
		if !labelRE.MatchString(name) && name != "le" {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if names[name] {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		names[name] = true
		rest = rest[i+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s value is not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if rest == "" {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				e := rest[0]
				rest = rest[1:]
				switch e {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", e, name)
				}
				continue
			}
			val.WriteByte(c)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return out, rest[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %s", name)
	}
}

// checkFamily validates per-type invariants over a family's samples.
func checkFamily(f *ParsedFamily) error {
	switch f.Type {
	case "counter":
		for _, s := range f.Samples {
			if s.Value < 0 || math.IsNaN(s.Value) {
				return fmt.Errorf("expfmt: counter %s has invalid value %v", f.Name, s.Value)
			}
		}
	case "histogram":
		return checkHistogram(f)
	}
	return nil
}

// histKey renders a sample's labels minus le — the identity of one
// histogram series.
func histKey(s *Sample) string {
	var parts []string
	for _, l := range s.Labels {
		if l.Name != "le" {
			parts = append(parts, l.Name+"="+l.Value)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// checkHistogram validates each series of a histogram family: le present
// and strictly increasing, cumulative bucket counts nondecreasing, a +Inf
// bucket present, and _count equal to it.
func checkHistogram(f *ParsedFamily) error {
	type hstate struct {
		lastLe  float64
		lastCum float64
		buckets int
		inf     bool
		infVal  float64
		count   float64
		hasCnt  bool
	}
	states := make(map[string]*hstate)
	state := func(s *Sample) *hstate {
		k := histKey(s)
		st, ok := states[k]
		if !ok {
			st = &hstate{lastLe: math.Inf(-1)}
			states[k] = st
		}
		return st
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		st := state(s)
		switch s.Name {
		case f.Name + "_bucket":
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("expfmt: histogram %s bucket without le", f.Name)
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("expfmt: histogram %s bad le %q", f.Name, le)
			}
			if v <= st.lastLe {
				return fmt.Errorf("expfmt: histogram %s le %q not increasing", f.Name, le)
			}
			if s.Value < st.lastCum {
				return fmt.Errorf("expfmt: histogram %s cumulative count decreased at le %q", f.Name, le)
			}
			st.lastLe = v
			st.lastCum = s.Value
			st.buckets++
			if math.IsInf(v, +1) {
				st.inf = true
				st.infVal = s.Value
			}
		case f.Name + "_count":
			st.count = s.Value
			st.hasCnt = true
		}
	}
	for k, st := range states {
		if st.buckets == 0 {
			continue // a series keyed only by its _sum/_count — impossible from our renderer
		}
		if !st.inf {
			return fmt.Errorf("expfmt: histogram %s{%s} missing +Inf bucket", f.Name, k)
		}
		if st.hasCnt && st.infVal != st.count {
			return fmt.Errorf("expfmt: histogram %s{%s} +Inf bucket %v != count %v", f.Name, k, st.infVal, st.count)
		}
	}
	return nil
}

// LintExposition applies the repo naming convention (CheckName) to every
// family of a parsed exposition — the CI metric-naming gate.
func LintExposition(fams []ParsedFamily) error {
	for _, f := range fams {
		var kind Kind
		switch f.Type {
		case "counter":
			kind = KindCounter
		case "gauge":
			kind = KindGauge
		case "histogram":
			kind = KindHistogram
		default:
			return fmt.Errorf("obs: family %s has unlintable type %q", f.Name, f.Type)
		}
		if err := CheckName(kind, f.Name); err != nil {
			return err
		}
	}
	return nil
}
