// Package obs is the repo's dependency-free telemetry core: sharded atomic
// counters, gauges, log2-bucketed latency histograms with mergeable
// snapshots, a metric registry that renders Prometheus text exposition, a
// strict exposition parser (the CI gate for /metrics), and request trace-ID
// plumbing over context.
//
// The package exists because the ROADMAP's next tiers — sharded clusters,
// WAL-streaming replication, multi-tenant serving — all require seeing
// inside a running indepd before operating a fleet of them. The paper's
// independence theorem makes the write path embarrassingly parallel, which
// means regressions hide in tail latency and fsync batching ratios, not in
// averages; per-subsystem histograms (p50/p90/p99/p999) and one trace ID
// that follows an insert from HTTP ingress to its fsync ack are what
// surface them.
//
// Everything here is hot-path safe: counters and histograms are lock-free
// atomics (counters additionally stripe across cache-line-padded shards so
// concurrent writers do not collide on one line), nil metric receivers
// no-op so instrumented code never branches on "is telemetry on", and
// rendering takes the registry lock only to walk the metric list.
package obs

import (
	"math/rand/v2"
	"sync/atomic"
)

// counterShards is the stripe count of a Counter; a power of two so the
// shard pick is a mask, sized to cover typical core counts without bloating
// every metric (16 shards × 64 B = 1 KiB per counter).
const counterShards = 16

// padded is an atomic cell alone on its cache line, so two goroutines
// bumping different shards never contend on one line.
type padded struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter, sharded across padded
// atomic cells. A nil Counter no-ops, so instrumented code can run with
// telemetry unwired. All methods are safe for concurrent use.
type Counter struct {
	shards [counterShards]padded
}

// Add increments the counter by n. The shard is picked by the runtime's
// per-thread fast random source — effectively thread-affine, so concurrent
// writers spread across lines instead of serializing on one CAS.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[rand.Uint32()&(counterShards-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total. The sum is not an atomic cut
// across shards — monotonicity per shard makes it a valid lower bound at
// read time, which is all a scrape needs.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value. A nil Gauge no-ops. All methods
// are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
