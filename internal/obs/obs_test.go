package obs

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines and checks
// that no increment is lost (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 10000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Counter lost updates: %d, want %d", got, goroutines*perG)
	}
}

func TestCounterAddAndNil(t *testing.T) {
	var c Counter
	c.Add(41)
	c.Inc()
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	var nilC *Counter
	nilC.Add(7) // must not panic
	nilC.Inc()
	if nilC.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Gauge = %d, want 7", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
}

// TestHistogramConcurrent checks that concurrent observations are all
// counted and the sum matches.
func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	n := int64(goroutines * perG)
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
}

// TestHistogramQuantileAccuracy draws a skewed sample, computes exact
// quantiles from the sorted reference, and checks every histogram estimate
// lands within the log2 bucket guarantee: estimate and truth within a
// factor of two (± the bucket that contains the true value).
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1982))
	var h Histogram
	vals := make([]int64, 20000)
	for i := range vals {
		// Log-normal-ish latencies: a heavy tail like a real fsync profile.
		v := int64(100 * (1 + rng.ExpFloat64()*50))
		vals[i] = v
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	exact := func(p float64) int64 { return vals[int(p*float64(len(vals)-1))] }

	s := h.Snapshot()
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, want := s.Quantile(p), exact(p)
		if got < want/2 || got > want*2 {
			t.Errorf("Quantile(%v) = %d, exact %d: outside the 2x bucket bound", p, got, want)
		}
	}
	if s.Quantile(0) > exact(0)*2 || s.Quantile(1) < exact(1)/2 {
		t.Errorf("extreme quantiles out of range: q0=%d q1=%d exact [%d, %d]",
			s.Quantile(0), s.Quantile(1), exact(0), exact(1))
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
	var h Histogram
	h.Observe(-5) // clamps into bucket 0
	h.Observe(0)
	h.Observe(1)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 {
		t.Fatalf("bucket layout: %v", s.Buckets[:3])
	}
	var nilH *Histogram
	nilH.Observe(1)
	nilH.ObserveSince(time.Now())
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram observed something")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged Count = %d, want 200", s.Count)
	}
	// The merged p50 must sit between the two sub-populations.
	p50 := s.Quantile(0.5)
	if p50 < 50 || p50 > 2000 {
		t.Fatalf("merged p50 = %d, want between the populations", p50)
	}
}

func TestTraceContext(t *testing.T) {
	if Trace(context.Background()) != "" {
		t.Fatal("background context has a trace")
	}
	id := NewTraceID()
	if len(id) != 16 {
		t.Fatalf("trace ID %q: want 16 hex chars", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatalf("trace IDs collide: %q", id)
	}
	ctx := WithTrace(context.Background(), id)
	if got := Trace(ctx); got != id {
		t.Fatalf("Trace = %q, want %q", got, id)
	}
}

// TestHistogramObserveRace exercises Observe concurrently with Snapshot so
// the race detector sees both sides.
func TestHistogramObserveRace(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			h.Observe(int64(i % 4096))
		}
	}()
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		if s.Quantile(0.99) < 0 {
			t.Fatal("negative quantile")
		}
	}
	<-done
}
