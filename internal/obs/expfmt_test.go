package obs

import (
	"strings"
	"testing"
)

// buildTestRegistry populates one of everything the renderer can emit.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("indep_test_ops_total", "operations", L("relation", "CT"))
	c.Add(7)
	r.Counter("indep_test_ops_total", "operations", L("relation", `weird"rel\n`)).Add(1)
	r.CounterFunc("indep_test_fn_total", "func-backed counter", func() uint64 { return 42 })
	g := r.Gauge("indep_test_depth", "queue depth")
	g.Set(-3)
	r.GaugeFunc("indep_test_ratio", "a ratio", func() float64 { return 0.25 })
	h := r.Histogram("indep_test_latency_seconds", "op latency", 1e-9, L("relation", "CT"))
	for i := int64(1); i < 5000; i *= 3 {
		h.Observe(i)
	}
	r.Histogram("indep_test_empty_seconds", "never observed", 1e-9)
	return r
}

// TestExpositionRoundTrip renders a populated registry and feeds it back
// through the strict parser: the renderer and the CI gate must agree.
func TestExpositionRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	out := r.Expose()
	fams, err := ParseExposition(out)
	if err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, out)
	}
	if err := LintExposition(fams); err != nil {
		t.Fatalf("own exposition fails lint: %v", err)
	}
	byName := make(map[string]ParsedFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["indep_test_ops_total"]; f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("ops_total family: %+v", f)
	}
	for _, s := range byName["indep_test_ops_total"].Samples {
		if s.Label("relation") == "CT" && s.Value != 7 {
			t.Fatalf("CT counter = %v, want 7", s.Value)
		}
	}
	if f := byName["indep_test_depth"]; f.Samples[0].Value != -3 {
		t.Fatalf("gauge = %v, want -3", f.Samples[0].Value)
	}
	if f := byName["indep_test_latency_seconds"]; f.Type != "histogram" {
		t.Fatalf("latency family: %+v", f)
	} else {
		var count, sum bool
		for _, s := range f.Samples {
			count = count || s.Name == "indep_test_latency_seconds_count"
			sum = sum || s.Name == "indep_test_latency_seconds_sum"
		}
		if !count || !sum {
			t.Fatalf("histogram missing sum/count: %+v", f.Samples)
		}
	}
	// An empty histogram still renders a valid series (+Inf, sum, count).
	if f := byName["indep_test_empty_seconds"]; len(f.Samples) < 3 {
		t.Fatalf("empty histogram samples: %+v", f.Samples)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no trailing newline", "# HELP a_total x\n# TYPE a_total counter\na_total 1"},
		{"sample before type", "a_total 1\n"},
		{"type without help", "# TYPE a_total counter\na_total 1\n"},
		{"unknown type", "# HELP a_total x\n# TYPE a_total histo\n"},
		{"reopened family", "# HELP a_total x\n# TYPE a_total counter\na_total 1\n# HELP b v\n# TYPE b gauge\nb 1\n# HELP a_total x\n# TYPE a_total counter\n"},
		{"foreign sample", "# HELP a_total x\n# TYPE a_total counter\nb_total 1\n"},
		{"bad value", "# HELP a_total x\n# TYPE a_total counter\na_total one\n"},
		{"negative counter", "# HELP a_total x\n# TYPE a_total counter\na_total -1\n"},
		{"unterminated labels", "# HELP a_total x\n# TYPE a_total counter\na_total{x=\"1\" 1\n"},
		{"duplicate label", "# HELP a_total x\n# TYPE a_total counter\na_total{x=\"1\",x=\"2\"} 1\n"},
		{"bad escape", "# HELP a_total x\n# TYPE a_total counter\na_total{x=\"\\q\"} 1\n"},
		{"uppercase name", "# HELP A_total x\n# TYPE A_total counter\nA_total 1\n"},
		{"stray comment", "# not a directive\n"},
		{"bucket without le", "# HELP h_seconds x\n# TYPE h_seconds histogram\nh_seconds_bucket 1\n"},
		{"le not increasing", "# HELP h_seconds x\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"2\"} 1\nh_seconds_bucket{le=\"1\"} 2\nh_seconds_bucket{le=\"+Inf\"} 2\nh_seconds_count 2\n"},
		{"cumulative decreases", "# HELP h_seconds x\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"1\"} 3\nh_seconds_bucket{le=\"2\"} 1\nh_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_count 3\n"},
		{"missing inf", "# HELP h_seconds x\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"1\"} 1\nh_seconds_count 1\n"},
		{"count mismatch", "# HELP h_seconds x\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"+Inf\"} 2\nh_seconds_count 3\n"},
	}
	for _, c := range cases {
		if _, err := ParseExposition([]byte(c.in)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.in)
		}
	}
}

func TestParseExpositionAccepts(t *testing.T) {
	in := "# HELP h_seconds latency\n# TYPE h_seconds histogram\n" +
		"h_seconds_bucket{relation=\"CT\",le=\"0.001\"} 1\n" +
		"h_seconds_bucket{relation=\"CT\",le=\"+Inf\"} 2\n" +
		"h_seconds_sum{relation=\"CT\"} 0.5\n" +
		"h_seconds_count{relation=\"CT\"} 2\n" +
		"h_seconds_bucket{relation=\"CS\",le=\"+Inf\"} 0\n" +
		"h_seconds_sum{relation=\"CS\"} 0\n" +
		"h_seconds_count{relation=\"CS\"} 0\n" +
		"\n# HELP g depth\n# TYPE g gauge\ng 4\n"
	fams, err := ParseExposition([]byte(in))
	if err != nil {
		t.Fatalf("rejected valid exposition: %v", err)
	}
	if len(fams) != 2 || fams[0].Name != "h_seconds" || len(fams[0].Samples) != 7 {
		t.Fatalf("parse: %+v", fams)
	}
}

func TestCheckName(t *testing.T) {
	good := []struct {
		k Kind
		n string
	}{
		{KindCounter, "indep_engine_inserts_total"},
		{KindGauge, "indep_wal_segments"},
		{KindHistogram, "indep_wal_fsync_duration_seconds"},
		{KindHistogram, "indep_wal_commit_group_records"},
	}
	for _, c := range good {
		if err := CheckName(c.k, c.n); err != nil {
			t.Errorf("CheckName(%v, %s): %v", c.k, c.n, err)
		}
	}
	bad := []struct {
		k Kind
		n string
	}{
		{KindCounter, "indep_engine_inserts"},  // counter without _total
		{KindCounter, "Indep_inserts_total"},   // uppercase
		{KindCounter, "indep__inserts_total"},  // double underscore
		{KindCounter, "_indep_inserts_total"},  // leading underscore
		{KindGauge, "indep_rows_total"},        // gauge with counter suffix
		{KindGauge, "indep_lat_sum"},           // reserved suffix
		{KindHistogram, "indep_wal_fsync_ute"}, // no unit suffix
		{KindHistogram, "indep_latency_total"}, // histogram named like counter
		{KindCounter, "indep-engine-total"},    // kebab case
		{KindCounter, "indep_engine_total_"},   // trailing underscore
	}
	for _, c := range bad {
		if err := CheckName(c.k, c.n); err == nil {
			t.Errorf("CheckName(%v, %s): accepted", c.k, c.n)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("indep_x_total", "x", L("a", "1"))
	mustPanic("duplicate series", func() { r.Counter("indep_x_total", "x", L("a", "1")) })
	mustPanic("kind clash", func() { r.Gauge("indep_x_total", "x") })
	mustPanic("help clash", func() { r.Counter("indep_x_total", "different", L("a", "2")) })
	mustPanic("bad name", func() { r.Counter("indep_X_total", "x") })
	mustPanic("bad label", func() { r.Counter("indep_y_total", "y", L("Bad", "1")) })
	mustPanic("le label", func() { r.Counter("indep_z_total", "z", L("le", "1")) })
	mustPanic("bad scale", func() { r.Histogram("indep_h_seconds", "h", 0) })
}

// FuzzParseExposition throws arbitrary bytes at the strict parser: it must
// never panic, and whatever it accepts must re-render... at minimum, hold
// its own invariants (families have names and known types).
func FuzzParseExposition(f *testing.F) {
	f.Add([]byte("# HELP a_total x\n# TYPE a_total counter\na_total 1\n"))
	f.Add([]byte("# HELP h_seconds x\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"+Inf\"} 0\nh_seconds_sum 0\nh_seconds_count 0\n"))
	f.Add(buildTestRegistry().Expose())
	f.Add([]byte("a_total{x=\"\\\\\\\"\\n\"} 1\n"))
	f.Add([]byte("# TYPE\n# HELP\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fams, err := ParseExposition(data)
		if err != nil {
			return
		}
		for _, fam := range fams {
			if fam.Name == "" {
				t.Fatalf("accepted family without a name: %q", data)
			}
			if !strings.Contains("counter gauge histogram summary untyped", fam.Type) || fam.Type == "" {
				t.Fatalf("accepted unknown type %q", fam.Type)
			}
			for _, s := range fam.Samples {
				if s.Name == "" {
					t.Fatalf("accepted sample without a name: %q", data)
				}
			}
		}
	})
}
