package obs

import (
	"context"
	"sync"
	"time"
)

// Spans give one request's trace ID structure: a tree of timed operations
// (HTTP handling → store call → engine commit → WAL append → fsync ack)
// with attributes, so a flight-recorder trace answers *where* inside a
// request the time went, not just how long the whole thing took.
//
// The design is pay-only-when-sampled. A context with no active span makes
// StartSpan return nil without allocating, and every *Span method is a
// nil-safe no-op, so instrumented code calls the API unconditionally and
// untraced hot paths stay at their existing allocs/op budgets (pinned by
// AllocsPerRun tests). Traced requests allocate from a pooled, fixed-size
// span arena owned by the trace, so steady-state tracing allocates no
// per-span memory either.

// Attr is one key/value annotation on a span. Values are either a string
// or an int64 — never fmt-formatted on the hot path; rendering to JSON
// happens only when a debug endpoint reads the trace.
type Attr struct {
	Key   string
	Str   string
	Num   int64
	IsNum bool
}

// Span is one timed operation inside a trace. Spans are created with
// StartSpan (or Span.StartChild), annotated with SetAttr/SetInt, and closed
// with End. A nil *Span is valid and inert, which is how untraced requests
// pay nothing.
//
// A span is owned by the goroutine that started it: SetAttr/SetInt/End must
// not race with each other. Different spans of one trace may be started and
// ended from different goroutines (the trace serializes span creation).
type Span struct {
	tr     *RequestTrace
	idx    int32 // this span's slot in the trace arena
	parent int32 // parent slot, -1 for the root
	ended  bool
	name   string
	start  time.Time
	dur    time.Duration // 0 until End
	attrs  []Attr
}

// DefaultMaxSpans bounds a trace's span arena when RecorderOptions does not
// override it. The arena never grows past its bound: pointer stability is
// what lets spans hand out *Span into a slice, so overflow drops spans (and
// counts them) rather than reallocating.
const DefaultMaxSpans = 256

// RequestTrace is one request's span tree plus its identity and outcome. Create
// through a Recorder (which pools arenas); the root span covers the whole
// request and every other span is a descendant of it.
type RequestTrace struct {
	mu      sync.Mutex
	id      string
	start   time.Time
	dur     time.Duration
	status  int
	reason  string // why the recorder retained it: slow, error, rejected, sampled
	dropped int    // spans lost to arena overflow
	spans   []Span // fixed-capacity arena; spans[0] is the root
}

// newTrace allocates an arena with room for maxSpans spans.
func newTrace(maxSpans int) *RequestTrace {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &RequestTrace{spans: make([]Span, 0, maxSpans)}
}

// begin resets the (possibly recycled) trace for a new request and starts
// its root span. Attr backing arrays of recycled spans are kept, so a pooled
// trace reaches zero allocations per request at steady state.
func (t *RequestTrace) begin(id, rootName string) *Span {
	t.mu.Lock()
	t.id = id
	t.start = time.Now()
	t.dur = 0
	t.status = 0
	t.reason = ""
	t.dropped = 0
	t.spans = t.spans[:0]
	sp := t.startSpanLocked(-1, rootName, t.start)
	t.mu.Unlock()
	return sp
}

// finish ends the root span and stamps the trace's outcome.
func (t *RequestTrace) finish(status int) {
	t.mu.Lock()
	if len(t.spans) > 0 && !t.spans[0].ended {
		t.spans[0].ended = true
		t.spans[0].dur = time.Since(t.spans[0].start)
	}
	t.dur = time.Since(t.start)
	t.status = status
	t.mu.Unlock()
}

// startSpan claims the next arena slot. A full arena drops the span (the
// caller sees nil, which no-ops) — dropping beats invalidating every *Span
// already handed out, and the drop count is reported in the trace view.
func (t *RequestTrace) startSpan(parent int32, name string) *Span {
	now := time.Now()
	t.mu.Lock()
	sp := t.startSpanLocked(parent, name, now)
	t.mu.Unlock()
	return sp
}

func (t *RequestTrace) startSpanLocked(parent int32, name string, now time.Time) *Span {
	n := len(t.spans)
	if n == cap(t.spans) {
		t.dropped++
		return nil
	}
	t.spans = t.spans[:n+1]
	sp := &t.spans[n]
	sp.tr = t
	sp.idx = int32(n)
	sp.parent = parent
	sp.ended = false
	sp.name = name
	sp.start = now
	sp.dur = 0
	sp.attrs = sp.attrs[:0]
	return sp
}

// ID returns the trace's 16-hex identifier.
func (t *RequestTrace) ID() string { return t.id }

// Root returns the root span, or nil on an unstarted trace.
func (t *RequestTrace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	return &t.spans[0]
}

// Recording reports whether the span is live — use it to guard work (an
// extra time.Now, a formatted attribute) that only pays off when traced.
func (s *Span) Recording() bool { return s != nil }

// StartChild opens a child span under s. Nil-safe: a nil receiver returns
// nil, so untraced paths fall straight through.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(s.idx, name)
}

// End closes the span, fixing its duration. Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
}

// SetAttr annotates the span with a string value. Nil-safe.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: val})
}

// SetInt annotates the span with an integer value. Nil-safe.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Num: val, IsNum: true})
}

// spanKeyType keys the active span in a context, separate from the trace-ID
// key so plain ID propagation (logs) works with tracing off.
type spanKeyType struct{}

var spanKey spanKeyType

// ContextWithSpan returns a context whose active span is s. The middleware
// installs the root span this way; layers below derive children via
// StartSpan.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom returns the context's active span, or nil when the request is
// untraced. Use it (with StartChild) when the derived context is not needed
// — it avoids StartSpan's context allocation.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns a
// context carrying the child. When the context has no active span it
// returns (ctx, nil) without allocating — the zero-cost untraced path.
// Close the returned span with End; all its methods tolerate nil.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	if child == nil { // arena full: keep the parent as the active span
		return ctx, nil
	}
	return ContextWithSpan(ctx, child), child
}

// AttrView is one rendered span attribute; Value is a string or an int64.
type AttrView struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanView is one rendered span. Parent indexes into the enclosing
// TraceView's Spans slice (-1 for the root), which encodes the tree without
// nesting. DurationNs is 0 for a span that was never ended.
type SpanView struct {
	Name       string     `json:"name"`
	Parent     int        `json:"parent"`
	StartNs    int64      `json:"startNs"` // offset from the trace start
	DurationNs int64      `json:"durationNs"`
	Attrs      []AttrView `json:"attrs,omitempty"`
}

// TraceView is an immutable rendering of a finished trace, the JSON shape
// served by /debug/trace endpoints.
type TraceView struct {
	ID           string     `json:"id"`
	Route        string     `json:"route"` // the root span's name
	Status       int        `json:"status"`
	Start        time.Time  `json:"start"`
	DurationNs   int64      `json:"durationNs"`
	Reason       string     `json:"reason"` // why the recorder kept it
	DroppedSpans int        `json:"droppedSpans,omitempty"`
	Spans        []SpanView `json:"spans"`
}

// View renders the trace. Safe to call on a retained trace at any time; the
// recorder never recycles retained traces, so the copy is consistent.
func (t *RequestTrace) View() TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID:           t.id,
		Status:       t.status,
		Start:        t.start,
		DurationNs:   int64(t.dur),
		Reason:       t.reason,
		DroppedSpans: t.dropped,
		Spans:        make([]SpanView, len(t.spans)),
	}
	if len(t.spans) > 0 {
		v.Route = t.spans[0].name
	}
	for i := range t.spans {
		sp := &t.spans[i]
		sv := SpanView{
			Name:       sp.name,
			Parent:     int(sp.parent),
			StartNs:    sp.start.Sub(t.start).Nanoseconds(),
			DurationNs: int64(sp.dur),
		}
		if len(sp.attrs) > 0 {
			sv.Attrs = make([]AttrView, len(sp.attrs))
			for j, a := range sp.attrs {
				if a.IsNum {
					sv.Attrs[j] = AttrView{Key: a.Key, Value: a.Num}
				} else {
					sv.Attrs[j] = AttrView{Key: a.Key, Value: a.Str}
				}
			}
		}
		v.Spans[i] = sv
	}
	return v
}
