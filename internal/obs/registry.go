package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name=value pair attached to a metric series.
type Label struct{ Name, Value string }

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

var (
	nameRE  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// histUnitSuffixes are the unit suffixes a histogram family name must end
// with: the name states what one observation is.
var histUnitSuffixes = []string{"_seconds", "_bytes", "_records", "_rows", "_ops"}

// CheckName enforces the repo's metric-naming convention: snake_case (the
// regexp forbids leading/trailing/double underscores and uppercase),
// counters end in _total, histograms end in a unit suffix, and no family
// name collides with the _bucket/_sum/_count/_total machinery of another
// kind. The registry panics on violations at registration time, which makes
// the convention a compile-test-time lint rather than a dashboard surprise.
func CheckName(kind Kind, name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("obs: metric name %q is not snake_case", name)
	}
	switch kind {
	case KindCounter:
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("obs: counter %q must end in _total", name)
		}
	case KindGauge:
		for _, s := range []string{"_total", "_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				return fmt.Errorf("obs: gauge %q must not end in reserved suffix %s", name, s)
			}
		}
	case KindHistogram:
		ok := false
		for _, s := range histUnitSuffixes {
			if strings.HasSuffix(name, s) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("obs: histogram %q must end in a unit suffix (%s)",
				name, strings.Join(histUnitSuffixes, ", "))
		}
	}
	return nil
}

// series is one labeled member of a family, backed by exactly one source.
type series struct {
	key    string // rendered label block, e.g. `{relation="CT"}` ("" when unlabeled)
	c      *Counter
	g      *Gauge
	h      *Histogram
	cFn    func() uint64
	gFn    func() float64
	labels []Label
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	scale  float64 // histogram: raw int64 observation × scale = exposition unit
	series []*series
}

// Registry holds metric families and renders them as Prometheus text
// exposition (format version 0.0.4). Registration is meant for startup
// (panics on naming or duplication errors — they are programming bugs);
// rendering may run concurrently with metric updates.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// labelKey renders a label block for dedup and exposition.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register validates and files a new series, creating its family on first
// use.
func (r *Registry) register(kind Kind, name, help string, scale float64, s *series) {
	if err := CheckName(kind, name); err != nil {
		panic(err)
	}
	for _, l := range s.labels {
		if !labelRE.MatchString(l.Name) {
			panic(fmt.Sprintf("obs: label name %q on %s is not snake_case", l.Name, name))
		}
		if l.Name == "le" {
			panic(fmt.Sprintf("obs: label name le on %s is reserved for histogram buckets", name))
		}
	}
	s.key = labelKey(s.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, scale: scale}
		r.fams[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v (was %v)", name, kind, f.kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %s re-registered with different help", name))
		}
	}
	for _, prev := range f.series {
		if prev.key == s.key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.key))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(KindCounter, name, help, 1, &series{c: c, labels: labels})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for counters a subsystem already maintains
// under its own locks. fn must be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(KindCounter, name, help, 1, &series{cFn: fn, labels: labels})
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(KindGauge, name, help, 1, &series{g: g, labels: labels})
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(KindGauge, name, help, 1, &series{gFn: fn, labels: labels})
}

// Histogram registers and returns a new histogram series. scale converts
// raw int64 observations into the unit the family name claims (1e-9 for
// nanosecond observations under a _seconds name; 1 for counts and bytes).
func (r *Registry) Histogram(name, help string, scale float64, labels ...Label) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, scale, h, labels...)
	return h
}

// RegisterHistogram files an existing histogram (one a subsystem embeds and
// feeds directly) under the family name.
func (r *Registry) RegisterHistogram(name, help string, scale float64, h *Histogram, labels ...Label) {
	if scale <= 0 {
		panic(fmt.Sprintf("obs: histogram %s registered with non-positive scale", name))
	}
	r.register(KindHistogram, name, help, scale, &series{h: h, labels: labels})
}

// FamilyInfo describes one registered family — the naming-lint test
// enumerates these.
type FamilyInfo struct {
	Name   string
	Kind   Kind
	Help   string
	Series int
}

// Families lists the registered families sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, FamilyInfo{Name: f.name, Kind: f.kind, Help: f.help, Series: len(f.series)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// fnum renders a float the way the exposition format expects.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTo renders the full exposition: families sorted by name, each with
// its HELP and TYPE lines and every series. Histograms render cumulative
// le buckets (upper bounds scaled into the family's unit), _sum, and
// _count. Metric reads race benignly with writers: every source is atomic
// or reads under its own lock.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				v := s.c.Value()
				if s.cFn != nil {
					v = s.cFn()
				}
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.key, v)
			case KindGauge:
				if s.gFn != nil {
					fmt.Fprintf(&b, "%s%s %s\n", f.name, s.key, fnum(s.gFn()))
				} else {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, s.key, s.g.Value())
				}
			case KindHistogram:
				writeHistogram(&b, f, s)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHistogram renders one histogram series: cumulative buckets up to the
// highest populated octave, then +Inf, _sum, and _count.
func writeHistogram(b *strings.Builder, f *family, s *series) {
	snap := s.h.Snapshot()
	top := 0
	for i, n := range snap.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += snap.Buckets[i]
		le := float64(BucketUpper(i)) * f.scale
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketKey(s.key, fnum(le)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketKey(s.key, "+Inf"), snap.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.key, fnum(float64(snap.Sum)*f.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.key, snap.Count)
}

// bucketKey splices le into an existing label block.
func bucketKey(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

// Expose renders the registry to a byte slice.
func (r *Registry) Expose() []byte {
	var sb strings.Builder
	r.WriteTo(&sb)
	return []byte(sb.String())
}
