package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of a Histogram: bucket 0 holds
// non-positive observations, bucket i (i ≥ 1) holds values v with
// 2^(i-1) ≤ v < 2^i, i.e. values whose bit length is i. 63 value buckets
// cover the whole non-negative int64 range, so there is no overflow bucket
// to saturate.
const HistBuckets = 64

// Histogram is a lock-free log2-bucketed histogram of int64 observations
// (typically nanoseconds). Observations land in power-of-two buckets, so
// Observe is two atomic adds and quantile estimates are exact to within one
// octave (linear interpolation inside the bucket does much better in
// practice). A nil Histogram no-ops. All methods are safe for concurrent
// use.
//
// Snapshots are mergeable: per-relation histograms can be folded into a
// store-wide view, and a scrape renders cumulative Prometheus buckets
// directly from a snapshot.
type Histogram struct {
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for an observation.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Snapshot returns a point-in-time copy of the histogram. Bucket loads are
// not one atomic cut, but each bucket is monotone, so the snapshot is a
// valid histogram of a slightly-smeared instant — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram, mergeable with others
// over the same unit.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [HistBuckets]uint64
}

// Merge folds other into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, int64(^uint64(0) >> 1)
	}
	return lo, int64(1)<<i - 1
}

// BucketUpper returns the inclusive upper bound of bucket i (the "le" of
// its Prometheus rendering).
func BucketUpper(i int) int64 { _, hi := bucketBounds(i); return hi }

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by nearest-rank over the
// buckets with linear interpolation inside the chosen bucket. The estimate
// is always within the true quantile's bucket, i.e. off by at most a factor
// of two. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(s.Count-1)) // 0-based nearest rank
	var seen uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if rank < seen+n {
			lo, hi := bucketBounds(i)
			// Interpolate the rank's position within this bucket.
			frac := float64(rank-seen) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += n
	}
	_, hi := bucketBounds(HistBuckets - 1)
	return hi
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantiles returns the conventional latency summary p50/p90/p99/p999.
func (s HistSnapshot) Quantiles() (p50, p90, p99, p999 int64) {
	return s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Quantile(0.999)
}
