package obs

import (
	"context"
	"testing"
	"time"
)

func TestValidTraceID(t *testing.T) {
	valid := []string{"0123456789abcdef", "ffffffffffffffff", NewTraceID()}
	for _, id := range valid {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	invalid := []string{
		"", "abc", "0123456789abcde", "0123456789abcdef0", // wrong length
		"0123456789ABCDEF",    // uppercase not accepted (normalize first)
		"0123456789abcdeg",    // non-hex
		"0123456789 abcdef",   // embedded space
		"..23456789abcdef",    // punctuation
		"0123456789abcdef\n",  // trailing newline
		"\x000123456789abcde", // control byte
	}
	for _, id := range invalid {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestNilSpanIsInert(t *testing.T) {
	var sp *Span
	if sp.Recording() {
		t.Fatal("nil span claims to be recording")
	}
	// None of these may panic.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.End()
	if child := sp.StartChild("child"); child != nil {
		t.Fatalf("nil span produced a child: %v", child)
	}
	ctx, got := StartSpan(context.Background(), "op")
	if got != nil {
		t.Fatalf("StartSpan on a spanless context returned %v, want nil", got)
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("spanless context acquired a span")
	}
}

func TestSpanTree(t *testing.T) {
	tr := newTrace(8)
	root := tr.begin("0123456789abcdef", "POST /insert")
	if !root.Recording() {
		t.Fatal("root not recording")
	}
	ctx := ContextWithSpan(context.Background(), root)
	ctx, store := StartSpan(ctx, "store.insert")
	store.SetAttr("relation", "CT")
	_, eng := StartSpan(ctx, "engine.insert")
	eng.SetInt("lock_wait_ns", 42)
	eng.End()
	eng.End() // idempotent
	store.End()
	tr.finish(200)

	v := tr.View()
	if v.ID != "0123456789abcdef" || v.Route != "POST /insert" || v.Status != 200 {
		t.Fatalf("trace header: %+v", v)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(v.Spans))
	}
	if v.Spans[0].Parent != -1 || v.Spans[1].Parent != 0 || v.Spans[2].Parent != 1 {
		t.Fatalf("parent links: %d %d %d", v.Spans[0].Parent, v.Spans[1].Parent, v.Spans[2].Parent)
	}
	if v.Spans[1].Name != "store.insert" || v.Spans[2].Name != "engine.insert" {
		t.Fatalf("span names: %q %q", v.Spans[1].Name, v.Spans[2].Name)
	}
	if len(v.Spans[1].Attrs) != 1 || v.Spans[1].Attrs[0].Value != "CT" {
		t.Fatalf("store attrs: %+v", v.Spans[1].Attrs)
	}
	if len(v.Spans[2].Attrs) != 1 || v.Spans[2].Attrs[0].Value != int64(42) {
		t.Fatalf("engine attrs: %+v", v.Spans[2].Attrs)
	}
	for i, sv := range v.Spans {
		if sv.DurationNs < 0 {
			t.Fatalf("span %d has negative duration %d", i, sv.DurationNs)
		}
	}
}

func TestSpanArenaOverflowDrops(t *testing.T) {
	tr := newTrace(4)
	root := tr.begin("0123456789abcdef", "root")
	var last *Span
	for i := 0; i < 3; i++ { // fills slots 1..3
		last = root.StartChild("child")
		if last == nil {
			t.Fatalf("child %d dropped before the arena was full", i)
		}
	}
	over := root.StartChild("overflow")
	if over != nil {
		t.Fatal("overflow span was not dropped")
	}
	// The active span survives overflow: StartSpan keeps the parent.
	ctx := ContextWithSpan(context.Background(), last)
	ctx2, sp := StartSpan(ctx, "also-overflow")
	if sp != nil {
		t.Fatal("StartSpan allocated past a full arena")
	}
	if SpanFrom(ctx2) != last {
		t.Fatal("full arena changed the context's active span")
	}
	tr.finish(200)
	v := tr.View()
	if len(v.Spans) != 4 || v.DroppedSpans != 2 {
		t.Fatalf("got %d spans, %d dropped; want 4 spans, 2 dropped", len(v.Spans), v.DroppedSpans)
	}
}

func TestTraceReuseResetsState(t *testing.T) {
	tr := newTrace(8)
	root := tr.begin("aaaaaaaaaaaaaaaa", "first")
	root.StartChild("one").End()
	tr.finish(500)

	root = tr.begin("bbbbbbbbbbbbbbbb", "second")
	root.SetAttr("k", "v")
	tr.finish(200)
	v := tr.View()
	if v.ID != "bbbbbbbbbbbbbbbb" || v.Route != "second" || v.Status != 200 {
		t.Fatalf("recycled trace kept stale state: %+v", v)
	}
	if len(v.Spans) != 1 || v.DroppedSpans != 0 {
		t.Fatalf("recycled trace kept stale spans: %+v", v)
	}
}

func TestRootDurationStampedOnce(t *testing.T) {
	tr := newTrace(4)
	root := tr.begin("0123456789abcdef", "root")
	time.Sleep(time.Millisecond)
	tr.finish(200)
	v := tr.View()
	if v.DurationNs <= 0 || v.Spans[0].DurationNs <= 0 {
		t.Fatalf("durations not stamped: trace=%d root=%d", v.DurationNs, v.Spans[0].DurationNs)
	}
	_ = root
}
