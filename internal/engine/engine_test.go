package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/maintenance"
	"indep/internal/relation"
	"indep/internal/schema"
	"indep/internal/workload"
)

func openUniversity(t testing.TB) *Engine {
	t.Helper()
	s, fds := workload.University()
	e, err := New(s, fds, chase.DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Fast() {
		t.Fatal("University schema must take the fast path")
	}
	return e
}

func openExample1(t testing.TB) (*Engine, fd.List) {
	t.Helper()
	s, fds := workload.Example1()
	e, err := New(s, fds, chase.DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if e.Fast() {
		t.Fatal("Example 1 schema must take the chase path")
	}
	return e, fds
}

// tuple builds a tuple by interning the names through the engine's dict.
func tuple(e *Engine, names ...string) relation.Tuple {
	t := make(relation.Tuple, len(names))
	for i, n := range names {
		t[i] = e.Dict().Value(n)
	}
	return t
}

func TestEngineFastInsertAndReject(t *testing.T) {
	e := openUniversity(t)
	// COURSE(C,T,D) with C->T, C->D.
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	// Same course, same teacher: duplicate, accepted as a no-op.
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	// Same course, different teacher: violates C->T.
	err := e.Insert(0, tuple(e, "cs101", "smith", "cs"))
	if !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	if got := e.Rows(); got != 1 {
		t.Fatalf("Rows = %d, want 1", got)
	}
	st := e.Snapshot()
	if st.TupleCount() != 1 {
		t.Fatalf("snapshot has %d tuples, want 1", st.TupleCount())
	}
}

func TestEngineChasePath(t *testing.T) {
	e, _ := openExample1(t)
	// The paper's CS402 anomaly: each insert is locally fine, the third
	// makes the state globally unsatisfying and must be rejected.
	if err := e.Insert(0, tuple(e, "cs402", "cs")); err != nil { // CD
		t.Fatal(err)
	}
	if err := e.Insert(1, tuple(e, "cs402", "jones")); err != nil { // CT
		t.Fatal(err)
	}
	err := e.Insert(2, tuple(e, "ee", "jones")) // TD: tuple order is (D,T)
	if !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	if got := e.Rows(); got != 2 {
		t.Fatalf("Rows = %d, want 2", got)
	}
}

func TestEngineDeleteUnblocksInsert(t *testing.T) {
	e := openUniversity(t)
	c1 := tuple(e, "cs101", "jones", "cs")
	c2 := tuple(e, "cs101", "smith", "cs")
	if err := e.Insert(0, c1); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, c2); !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	if ok, err := e.Delete(0, c1); err != nil || !ok {
		t.Fatalf("Delete = %v, %v; want true, nil", ok, err)
	}
	if ok, _ := e.Delete(0, c1); ok {
		t.Fatal("second delete of the same tuple must report absent")
	}
	// With the old binding gone, the previously conflicting tuple fits.
	if err := e.Insert(0, c2); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
}

func TestEngineDeleteRefcount(t *testing.T) {
	// R(A,B,C) with A->B: two tuples witness the same binding a->b; the
	// binding must survive deleting one of them.
	s := schema.MustParse("R(A,B,C)")
	fds := fd.MustParse(s.U, "A -> B")
	e, err := New(s, fds, chase.DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Fast() {
		t.Fatal("single-relation schema must take the fast path")
	}
	t1 := tuple(e, "a", "b", "c1")
	t2 := tuple(e, "a", "b", "c2")
	conflict := tuple(e, "a", "b2", "c3")
	for _, tp := range []relation.Tuple{t1, t2} {
		if err := e.Insert(0, tp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Delete(0, t1); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, conflict); !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("binding a->b still witnessed by t2; want violation, got %v", err)
	}
	if _, err := e.Delete(0, t2); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, conflict); err != nil {
		t.Fatalf("binding fully unwitnessed; insert should pass, got %v", err)
	}
}

func TestEngineBatchAtomicFast(t *testing.T) {
	e := openUniversity(t)
	good := []Op{
		{Scheme: 0, Tuple: tuple(e, "cs101", "jones", "cs")},
		{Scheme: 3, Tuple: tuple(e, "s1", "amy", "y1")},
	}
	if err := e.InsertBatch(good); err != nil {
		t.Fatal(err)
	}
	// Internally inconsistent batch: two teachers for one course. The batch
	// must be rejected wholesale, including its valid first op.
	bad := []Op{
		{Scheme: 3, Tuple: tuple(e, "s2", "bob", "y1")},
		{Scheme: 0, Tuple: tuple(e, "cs200", "jones", "cs")},
		{Scheme: 0, Tuple: tuple(e, "cs200", "smith", "cs")},
	}
	if err := e.InsertBatch(bad); !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	if got := e.Rows(); got != 2 {
		t.Fatalf("Rows after rejected batch = %d, want 2 (no partial commit)", got)
	}
	st := e.Snapshot()
	if st.Insts[3].Has(tuple(e, "s2", "bob", "y1")) {
		t.Fatal("rejected batch leaked its first op into the state")
	}
}

func TestEngineBatchAtomicChase(t *testing.T) {
	e, _ := openExample1(t)
	// All three CS402 tuples in one batch: jointly unsatisfiable.
	bad := []Op{
		{Scheme: 0, Tuple: tuple(e, "cs402", "cs")},
		{Scheme: 1, Tuple: tuple(e, "cs402", "jones")},
		{Scheme: 2, Tuple: tuple(e, "ee", "jones")}, // TD: tuple order is (D,T)
	}
	if err := e.InsertBatch(bad); !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	if got := e.Rows(); got != 0 {
		t.Fatalf("Rows after rejected batch = %d, want 0", got)
	}
	// A consistent batch commits.
	good := []Op{
		{Scheme: 0, Tuple: tuple(e, "cs402", "cs")},
		{Scheme: 1, Tuple: tuple(e, "cs402", "jones")},
		{Scheme: 2, Tuple: tuple(e, "cs", "jones")},
	}
	if err := e.InsertBatch(good); err != nil {
		t.Fatal(err)
	}
	if got := e.Rows(); got != 3 {
		t.Fatalf("Rows = %d, want 3", got)
	}
}

func TestEngineStats(t *testing.T) {
	e := openUniversity(t)
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	e.Insert(0, tuple(e, "cs101", "smith", "cs")) // reject
	if ok, _ := e.Delete(0, tuple(e, "cs101", "jones", "cs")); !ok {
		t.Fatal("delete failed")
	}
	stats := e.Stats()
	course := stats[0]
	if course.Relation != "COURSE" {
		t.Fatalf("stats[0].Relation = %s", course.Relation)
	}
	if course.Inserts != 1 || course.Rejects != 1 || course.Deletes != 1 || course.Tuples != 0 {
		t.Fatalf("unexpected stats: %+v", course)
	}
	if course.P50 < 0 || course.P99 < course.P50 {
		t.Fatalf("percentiles out of order: %+v", course)
	}
}

// stress runs parallel inserts/deletes/batches/snapshots; run under -race.
func stress(t *testing.T, e *Engine, relCount int, width func(int) int) {
	const goroutines = 8
	const opsPer = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				scheme := (g + i) % relCount
				w := width(scheme)
				tp := make(relation.Tuple, w)
				for c := range tp {
					// Functional values: attribute value is a function of
					// the seed, so concurrent inserts never conflict.
					tp[c] = e.Dict().Value(fmt.Sprintf("v%d-%d-%d", g, i, c))
				}
				switch i % 5 {
				case 0, 1, 2:
					if err := e.Insert(scheme, tp); err != nil && !errors.Is(err, maintenance.ErrViolation) {
						t.Error(err)
						return
					}
				case 3:
					e.Insert(scheme, tp)
					if _, err := e.Delete(scheme, tp); err != nil {
						t.Error(err)
						return
					}
				case 4:
					snap := e.Snapshot()
					if snap.TupleCount() < 0 {
						t.Error("impossible")
						return
					}
					e.Stats()
					e.Rows()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestEngineStressFast(t *testing.T) {
	e := openUniversity(t)
	s := e.Schema()
	stress(t, e, s.Size(), func(i int) int { return s.Attrs(i).Len() })
	// Every shard's bookkeeping must agree with the final state.
	snap := e.Snapshot()
	if int64(snap.TupleCount()) != e.Rows() {
		t.Fatalf("snapshot count %d != Rows %d", snap.TupleCount(), e.Rows())
	}
}

func TestEngineStressChase(t *testing.T) {
	e, fds := openExample1(t)
	s := e.Schema()
	stress(t, e, s.Size(), func(i int) int { return s.Attrs(i).Len() })
	snap := e.Snapshot()
	if int64(snap.TupleCount()) != e.Rows() {
		t.Fatalf("snapshot count %d != Rows %d", snap.TupleCount(), e.Rows())
	}
	// The chase path must have kept the state globally satisfying.
	ok, err := chase.Satisfies(snap, fds, true, chase.DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("chase-path state lost satisfaction under concurrency")
	}
}

func TestEngineSnapshotImmutable(t *testing.T) {
	e := openUniversity(t)
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	before := snap.TupleCount()
	if err := e.Insert(0, tuple(e, "cs200", "smith", "cs")); err != nil {
		t.Fatal(err)
	}
	if snap.TupleCount() != before {
		t.Fatal("snapshot mutated by a later insert")
	}
	if snap.Dict.Name(tuple(e, "cs101")[0]) != "cs101" {
		t.Fatal("snapshot dictionary lost value names")
	}
}

func TestEngineMalformedOps(t *testing.T) {
	e := openUniversity(t)
	if err := e.Insert(99, tuple(e, "x")); err == nil {
		t.Fatal("want error for unknown scheme")
	}
	if err := e.Insert(0, tuple(e, "too", "short")); err == nil {
		t.Fatal("want error for wrong arity")
	}
	if _, err := e.Delete(-1, tuple(e, "x")); err == nil {
		t.Fatal("want error for negative scheme")
	}
	if err := e.InsertBatch([]Op{{Scheme: 0, Tuple: tuple(e, "bad")}}); err == nil {
		t.Fatal("want error for malformed batch op")
	}
}

// TestEngineCommitHook verifies the redo-log contract: the hook sees
// exactly the mutations that changed state (no duplicates, no rejects, no
// missed deletes), per-relation hook order matches admission order, wait
// errors surface to callers, and Apply replays the observed commits into
// an identical state.
func TestEngineCommitHook(t *testing.T) {
	e := openUniversity(t)
	var mu sync.Mutex
	var seen []Commit
	e.SetCommitHook(func(c Commit) func() error {
		mu.Lock()
		cp := Commit{Ops: append([]Op(nil), c.Ops...), Delete: c.Delete}
		seen = append(seen, cp)
		mu.Unlock()
		return nil
	})

	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	// Duplicate: no state change, no commit.
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	// Reject: no commit.
	if err := e.Insert(0, tuple(e, "cs101", "smith", "cs")); err == nil {
		t.Fatal("conflicting insert must fail")
	}
	// Batch: only the two fresh tuples commit (one is a duplicate).
	if err := e.InsertBatch([]Op{
		{Scheme: 0, Tuple: tuple(e, "cs101", "jones", "cs")},
		{Scheme: 0, Tuple: tuple(e, "cs102", "smith", "ee")},
		{Scheme: 3, Tuple: tuple(e, "s1", "ann", "2")},
	}); err != nil {
		t.Fatal(err)
	}
	// Delete present + delete absent: one commit.
	if removed, err := e.Delete(0, tuple(e, "cs102", "smith", "ee")); err != nil || !removed {
		t.Fatalf("delete: %v %v", removed, err)
	}
	if removed, _ := e.Delete(0, tuple(e, "cs102", "smith", "ee")); removed {
		t.Fatal("re-delete must be a no-op")
	}

	if len(seen) != 3 {
		t.Fatalf("hook saw %d commits, want 3: %+v", len(seen), seen)
	}
	if seen[0].Delete || len(seen[0].Ops) != 1 {
		t.Fatalf("first commit: %+v", seen[0])
	}
	if seen[1].Delete || len(seen[1].Ops) != 2 {
		t.Fatalf("batch commit: %+v", seen[1])
	}
	if !seen[2].Delete || len(seen[2].Ops) != 1 {
		t.Fatalf("delete commit: %+v", seen[2])
	}

	// Replaying the observed commits reproduces the state exactly.
	s, fds := workload.University()
	re, err := New(s, fds, chase.DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range seen {
		if err := re.Apply(c); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	if re.Rows() != e.Rows() {
		t.Fatalf("replay has %d rows, want %d", re.Rows(), e.Rows())
	}
	// Idempotence: applying everything again converges to the same state.
	for _, c := range seen {
		if err := re.Apply(c); err != nil {
			t.Fatalf("re-apply: %v", err)
		}
	}
	if re.Rows() != e.Rows() {
		t.Fatalf("re-applied replay has %d rows, want %d", re.Rows(), e.Rows())
	}
}

// TestEngineCommitHookWaitError checks a failing wait surfaces to the
// caller on every mutating path.
func TestEngineCommitHookWaitError(t *testing.T) {
	e := openUniversity(t)
	boom := errors.New("fsync failed")
	e.SetCommitHook(func(Commit) func() error {
		return func() error { return boom }
	})
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); !errors.Is(err, boom) {
		t.Fatalf("insert: %v", err)
	}
	if err := e.InsertBatch([]Op{{Scheme: 0, Tuple: tuple(e, "cs102", "smith", "ee")}}); !errors.Is(err, boom) {
		t.Fatalf("batch: %v", err)
	}
	if _, err := e.Delete(0, tuple(e, "cs101", "jones", "cs")); !errors.Is(err, boom) {
		t.Fatalf("delete: %v", err)
	}
}

// TestEngineChaseCommitHook covers the hook on the serialized chase path.
func TestEngineChaseCommitHook(t *testing.T) {
	e, _ := openExample1(t)
	var commits int
	e.SetCommitHook(func(c Commit) func() error {
		commits++
		return nil
	})
	if err := e.Insert(0, tuple(e, "CS402", "CS")); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(1, tuple(e, "CS402", "Jones")); err != nil {
		t.Fatal(err)
	}
	// The anomaly is rejected: no commit. TD's tuple order is (D, T) by
	// ascending attribute index, so this is T=Jones (forcing D=EE against
	// CD's D=CS).
	if err := e.Insert(2, tuple(e, "EE", "Jones")); err == nil {
		t.Fatal("anomalous insert must fail on the chase path")
	}
	if removed, err := e.Delete(1, tuple(e, "CS402", "Jones")); err != nil || !removed {
		t.Fatalf("delete: %v %v", removed, err)
	}
	if commits != 3 {
		t.Fatalf("chase path hook saw %d commits, want 3", commits)
	}
}

// TestEngineSnapshotWithCut checks the cut callback runs at a moment that
// exactly separates prior commits from later ones.
func TestEngineSnapshotWithCut(t *testing.T) {
	e := openUniversity(t)
	var logged []Commit
	e.SetCommitHook(func(c Commit) func() error {
		logged = append(logged, c) // hook runs under the stripe locks
		return nil
	})
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	var atCut int
	st := e.SnapshotWith(func() { atCut = len(logged) })
	if atCut != 1 {
		t.Fatalf("cut saw %d commits, want 1", atCut)
	}
	if st.TupleCount() != 1 {
		t.Fatalf("snapshot has %d tuples, want 1", st.TupleCount())
	}
}
