package engine

import (
	"testing"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
)

// TestQuerySnapshotVersioning: the cached snapshot is shared while no
// mutation lands, and invalidated by inserts, deletes, and batches.
func TestQuerySnapshotVersioning(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S)")
	fds := fd.MustParse(s.U, "C -> T")
	e, err := New(s, fds, chase.DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	tup := func(names ...string) relation.Tuple {
		out := make(relation.Tuple, len(names))
		for i, n := range names {
			out[i] = e.Dict().Value(n)
		}
		return out
	}

	s1 := e.QuerySnapshot()
	if s2 := e.QuerySnapshot(); s2 != s1 {
		t.Fatal("unchanged engine must reuse the cached snapshot")
	}

	if err := e.Insert(0, tup("cs101", "jones")); err != nil {
		t.Fatal(err)
	}
	s3 := e.QuerySnapshot()
	if s3 == s1 {
		t.Fatal("insert must invalidate the cached snapshot")
	}
	if s3.Insts[0].Len() != 1 {
		t.Fatalf("snapshot rows: %d", s3.Insts[0].Len())
	}

	// A rejected insert leaves the state — and the cache — unchanged.
	if err := e.Insert(0, tup("cs101", "smith")); err == nil {
		t.Fatal("conflicting insert should be rejected")
	}
	if s4 := e.QuerySnapshot(); s4 != s3 {
		t.Fatal("rejected insert must not invalidate the cached snapshot")
	}

	if _, err := e.Delete(0, tup("cs101", "jones")); err != nil {
		t.Fatal(err)
	}
	if s5 := e.QuerySnapshot(); s5 == s3 || s5.Insts[0].Len() != 0 {
		t.Fatal("delete must invalidate the cached snapshot")
	}

	if err := e.InsertBatch([]Op{
		{Scheme: 0, Tuple: tup("cs102", "curie")},
		{Scheme: 1, Tuple: tup("cs102", "ada")},
	}); err != nil {
		t.Fatal(err)
	}
	s6 := e.QuerySnapshot()
	if s6.Insts[0].Len() != 1 || s6.Insts[1].Len() != 1 {
		t.Fatalf("batch snapshot: %v", s6)
	}
}

// TestEngineWindow drives the engine-level window entry point end to end.
func TestEngineWindow(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S)")
	fds := fd.MustParse(s.U, "C -> T")
	e, err := New(s, fds, chase.DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	c := e.Dict().Value("cs101")
	if err := e.Insert(0, relation.Tuple{c, e.Dict().Value("jones")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(1, relation.Tuple{c, e.Dict().Value("ada")}); err != nil {
		t.Fatal(err)
	}
	res, st, err := e.Window(s.U.Set("S", "T"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 1 {
		t.Fatalf("window [S T]: %v", res.Rows.Rows())
	}
	// Columns follow ascending universe order: T (from CT) before S.
	row := res.Rows.Rows()[0]
	if st.Dict.Name(row[0]) != "jones" || st.Dict.Name(row[1]) != "ada" {
		t.Fatalf("window row renders as (%s,%s)", st.Dict.Name(row[0]), st.Dict.Name(row[1]))
	}
	qs := e.QueryStats()
	if qs.Queries != 1 || qs.FastEvals != 1 {
		t.Fatalf("query stats: %+v", qs)
	}
}
