package engine

import (
	"context"
	"time"

	"indep/internal/attrset"
	"indep/internal/obs"
	"indep/internal/query"
	"indep/internal/relation"
)

// cachedSnapshot pairs a deep-copied state with the mutation version it was
// cut at. While the engine's version is unchanged the copy is current, so
// queries can share it without taking any state lock.
type cachedSnapshot struct {
	version uint64
	st      *relation.State
}

// QuerySnapshot returns a consistent state for lock-free reading. If no
// mutation has landed since the last call the cached copy is returned
// without touching a single lock — the common case under read-heavy load —
// otherwise a fresh snapshot is cut (briefly holding the state locks, as
// Snapshot does) and cached. The returned state is shared: callers must
// treat it as immutable.
func (e *Engine) QuerySnapshot() *relation.State {
	if c := e.snapCache.Load(); c != nil && c.version == e.version.Load() {
		e.snapReuses.Add(1)
		return c.st
	}
	e.snapCopies.Add(1)
	var v uint64
	st := e.SnapshotWith(func() { v = e.version.Load() })
	// A concurrent QuerySnapshot may store a newer cut first and this store
	// may regress the cache; that is harmless — the stale entry just fails
	// the version check on the next call.
	e.snapCache.Store(&cachedSnapshot{version: v, st: st})
	return st
}

// Evaluator returns the engine's window-query evaluator, built once from
// the independence analysis the engine already holds. Snapshot-backed
// databases reuse it so plans compile once per engine, not per view.
func (e *Engine) Evaluator() *query.Evaluator { return e.evaluator() }

// evaluator lazily builds the evaluator.
func (e *Engine) evaluator() *query.Evaluator {
	e.evOnce.Do(func() {
		e.ev = query.NewEvaluator(e.s, e.fds, e.res, e.caps)
	})
	return e.ev
}

// Window computes the window [x] — the X-total projection of the
// representative instance — over a consistent snapshot of the current
// state. Evaluation never touches an engine state lock: concurrent
// writers are never blocked by a running query, and a query never
// observes a half-applied batch (readers do share read-locked probe
// indexes on the snapshot itself). The snapshot the window was evaluated
// against is returned alongside the result so callers can render values
// through its dictionary.
func (e *Engine) Window(x attrset.Set) (*query.Result, *relation.State, error) {
	return e.WindowCtx(context.Background(), x)
}

// WindowCtx is Window with the context's trace ID attached to any slow-query
// log record; the query latency lands in the engine's window histogram
// either way.
func (e *Engine) WindowCtx(ctx context.Context, x attrset.Set) (*query.Result, *relation.State, error) {
	start := time.Now()
	st := e.QuerySnapshot()
	res, err := e.evaluator().Window(st, x)
	d := time.Since(start)
	e.queryLat.Observe(int64(d))
	if e.slowHit(d) {
		e.noteSlow("window", e.s.U.Format(x, ""), obs.Trace(ctx), d, err)
	}
	if err != nil {
		return nil, nil, err
	}
	return res, st, nil
}

// QueryStats extends the evaluator's counters with the snapshot cache's.
type QueryStats struct {
	query.Stats
	SnapshotReuses uint64 // queries served from the cached snapshot
	SnapshotCopies uint64 // queries that had to cut a fresh snapshot
}

// QueryStats returns the engine's query-side counters.
func (e *Engine) QueryStats() QueryStats {
	return QueryStats{
		Stats:          e.evaluator().Stats(),
		SnapshotReuses: e.snapReuses.Load(),
		SnapshotCopies: e.snapCopies.Load(),
	}
}
