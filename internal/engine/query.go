package engine

import (
	"context"
	"strings"
	"time"

	"indep/internal/attrset"
	"indep/internal/obs"
	"indep/internal/query"
	"indep/internal/relation"
)

// cachedSnapshot pairs a deep-copied state with the mutation version it was
// cut at. While the engine's version is unchanged the copy is current, so
// queries can share it without taking any state lock.
type cachedSnapshot struct {
	version uint64
	st      *relation.State
}

// QuerySnapshot returns a consistent state for lock-free reading. If no
// mutation has landed since the last call the cached copy is returned
// without touching a single lock — the common case under read-heavy load —
// otherwise a fresh snapshot is cut (briefly holding the state locks, as
// Snapshot does) and cached. The returned state is shared: callers must
// treat it as immutable.
func (e *Engine) QuerySnapshot() *relation.State {
	st, _, _ := e.querySnapshot()
	return st
}

// querySnapshot is QuerySnapshot reporting whether the cached copy was
// reused and which mutation version the returned state reflects — the
// numbers window EXPLAIN surfaces.
func (e *Engine) querySnapshot() (st *relation.State, reused bool, version uint64) {
	if c := e.snapCache.Load(); c != nil && c.version == e.version.Load() {
		e.snapReuses.Add(1)
		return c.st, true, c.version
	}
	e.snapCopies.Add(1)
	var v uint64
	st = e.SnapshotWith(func() { v = e.version.Load() })
	// A concurrent QuerySnapshot may store a newer cut first and this store
	// may regress the cache; that is harmless — the stale entry just fails
	// the version check on the next call.
	e.snapCache.Store(&cachedSnapshot{version: v, st: st})
	return st, false, v
}

// Evaluator returns the engine's window-query evaluator, built once from
// the independence analysis the engine already holds. Snapshot-backed
// databases reuse it so plans compile once per engine, not per view.
func (e *Engine) Evaluator() *query.Evaluator { return e.evaluator() }

// evaluator lazily builds the evaluator.
func (e *Engine) evaluator() *query.Evaluator {
	e.evOnce.Do(func() {
		e.ev = query.NewEvaluator(e.s, e.fds, e.res, e.caps)
	})
	return e.ev
}

// Window computes the window [x] — the X-total projection of the
// representative instance — over a consistent snapshot of the current
// state. Evaluation never touches an engine state lock: concurrent
// writers are never blocked by a running query, and a query never
// observes a half-applied batch (readers do share read-locked probe
// indexes on the snapshot itself). The snapshot the window was evaluated
// against is returned alongside the result so callers can render values
// through its dictionary.
func (e *Engine) Window(x attrset.Set) (*query.Result, *relation.State, error) {
	return e.WindowCtx(context.Background(), x)
}

// WindowCtx is Window with the context's trace ID attached to any slow-query
// log record; the query latency lands in the engine's window histogram
// either way.
func (e *Engine) WindowCtx(ctx context.Context, x attrset.Set) (*query.Result, *relation.State, error) {
	res, st, _, err := e.WindowMetaCtx(ctx, x, false)
	return res, st, err
}

// WindowMeta reports how one window evaluation was served. Explain is
// non-nil when the caller asked for it (or the request is traced — a trace
// *is* the explain output).
type WindowMeta struct {
	SnapshotReused bool   // served from the cached snapshot, no locks taken
	Version        uint64 // mutation version the snapshot reflects
	Explain        *query.Explain
}

// WindowMetaCtx is WindowCtx reporting snapshot reuse and, when explain is
// set, the executed plan. When the context carries an active span the
// evaluation records an engine.window span whose attributes are the explain
// output: mode, plan-cache hit, snapshot reuse, consulted relations with
// rows scanned, and pruned relations.
func (e *Engine) WindowMetaCtx(ctx context.Context, x attrset.Set, explain bool) (*query.Result, *relation.State, WindowMeta, error) {
	sp := obs.SpanFrom(ctx).StartChild("engine.window")
	start := time.Now()
	st, reused, version := e.querySnapshot()
	res, err := e.evaluator().Window(st, x)
	d := time.Since(start)
	e.queryLat.Observe(int64(d))
	meta := WindowMeta{SnapshotReused: reused, Version: version}
	if err == nil && (explain || sp.Recording()) {
		meta.Explain = e.evaluator().Explain(res, st)
	}
	if sp.Recording() {
		sp.SetAttr("window", e.s.U.Format(x, " "))
		sp.SetInt("snapshot_version", int64(version))
		sp.SetInt("snapshot_reused", boolInt(reused))
		if ex := meta.Explain; ex != nil {
			sp.SetAttr("plan", ex.Mode)
			sp.SetInt("plan_cached", boolInt(ex.PlanCached))
			scanned := int64(0)
			names := make([]string, len(ex.Relations))
			for i, rs := range ex.Relations {
				scanned += int64(rs.Rows)
				names[i] = rs.Relation
			}
			sp.SetInt("rows_scanned", scanned)
			sp.SetAttr("relations", strings.Join(names, " "))
			if len(ex.Pruned) > 0 {
				sp.SetAttr("pruned", strings.Join(ex.Pruned, " "))
			}
			sp.SetInt("rows", int64(res.Rows.Len()))
		}
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	sp.End()
	if e.slowHit(d) {
		e.noteSlow("window", e.s.U.Format(x, ""), obs.Trace(ctx), d, err)
	}
	if err != nil {
		return nil, nil, WindowMeta{}, err
	}
	return res, st, meta, nil
}

// boolInt renders a bool as a span attribute value.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// QueryStats extends the evaluator's counters with the snapshot cache's.
type QueryStats struct {
	query.Stats
	SnapshotReuses uint64 // queries served from the cached snapshot
	SnapshotCopies uint64 // queries that had to cut a fresh snapshot
}

// QueryStats returns the engine's query-side counters.
func (e *Engine) QueryStats() QueryStats {
	return QueryStats{
		Stats:          e.evaluator().Stats(),
		SnapshotReuses: e.snapReuses.Load(),
		SnapshotCopies: e.snapCopies.Load(),
	}
}
