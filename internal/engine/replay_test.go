package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"indep/internal/maintenance"
	"indep/internal/relation"
)

// sortedTuples returns an instance's tuples in a canonical order, for
// set-wise comparison.
func sortedTuples(in *relation.Instance) []relation.Tuple {
	out := make([]relation.Tuple, len(in.Rows()))
	for i, t := range in.Rows() {
		out[i] = t.Clone()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// requireStatesEqual fails unless the two states hold identical tuple sets
// per relation.
func requireStatesEqual(t *testing.T, label string, a, b *relation.State) {
	t.Helper()
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("%s: instance counts differ: %d vs %d", label, len(a.Insts), len(b.Insts))
	}
	for i := range a.Insts {
		at, bt := sortedTuples(a.Insts[i]), sortedTuples(b.Insts[i])
		if len(at) != len(bt) {
			t.Fatalf("%s: relation %d sizes differ: %d vs %d", label, i, len(at), len(bt))
		}
		for j := range at {
			if !slices.Equal(at[j], bt[j]) {
				t.Fatalf("%s: relation %d tuple %d differs: %v vs %v", label, i, j, at[j], bt[j])
			}
		}
	}
}

// genLog drives a fresh engine through a randomized single-threaded
// workload — inserts, batches, deletes, including conflicting re-inserts
// after deletes so re-validation rejections appear during replay — and
// returns the engine plus the exact commit log the hook observed.
func genLog(t *testing.T, open func(testing.TB) *Engine, rng *rand.Rand, ops int) (*Engine, []Commit) {
	t.Helper()
	e := open(t)
	var log []Commit
	e.SetCommitHook(func(c Commit) func() error {
		// Deep-copy: the engine may reuse tuple memory after the hook.
		cc := Commit{Delete: c.Delete, Ops: make([]Op, len(c.Ops))}
		for i, op := range c.Ops {
			cc.Ops[i] = Op{Scheme: op.Scheme, Tuple: op.Tuple.Clone()}
		}
		log = append(log, cc)
		return nil
	})

	rels := len(e.Schema().Rels)
	var live []Op // tuples believed present, for targeted deletes
	for i := 0; i < ops; i++ {
		rel := rng.Intn(rels)
		width := e.Schema().Attrs(rel).Len()
		mk := func() relation.Tuple {
			tp := make(relation.Tuple, width)
			for k := range tp {
				tp[k] = e.Dict().Value(fmt.Sprintf("v%d_%d", k, rng.Intn(6)))
			}
			return tp
		}
		switch rng.Intn(10) {
		case 0, 1: // delete a previously inserted tuple (or a random absent one)
			if len(live) > 0 && rng.Intn(4) > 0 {
				j := rng.Intn(len(live))
				if _, err := e.Delete(live[j].Scheme, live[j].Tuple); err != nil {
					t.Fatal(err)
				}
				live = append(live[:j], live[j+1:]...)
			} else if _, err := e.Delete(rel, mk()); err != nil {
				t.Fatal(err)
			}
		case 2, 3: // batch insert
			n := 1 + rng.Intn(3)
			batch := make([]Op, 0, n)
			for j := 0; j < n; j++ {
				r := rng.Intn(rels)
				tp := make(relation.Tuple, e.Schema().Attrs(r).Len())
				for k := range tp {
					tp[k] = e.Dict().Value(fmt.Sprintf("v%d_%d", k, rng.Intn(6)))
				}
				batch = append(batch, Op{Scheme: r, Tuple: tp})
			}
			err := e.InsertBatch(batch)
			if err == nil {
				live = append(live, batch...)
			} else if !errors.Is(err, maintenance.ErrViolation) {
				t.Fatal(err)
			}
		default: // single insert
			op := Op{Scheme: rel, Tuple: mk()}
			err := e.Insert(op.Scheme, op.Tuple)
			if err == nil {
				live = append(live, op)
			} else if !errors.Is(err, maintenance.ErrViolation) {
				t.Fatal(err)
			}
		}
	}
	return e, log
}

// applyLog replays commits through Apply, tolerating re-validation
// rejections (the skippable outcome replication and recovery share).
func applyLog(t *testing.T, e *Engine, log []Commit) {
	t.Helper()
	for _, c := range log {
		if err := e.Apply(c); err != nil && !errors.Is(err, maintenance.ErrViolation) {
			t.Fatalf("Apply: %v", err)
		}
	}
}

// TestApplySuffixReplayConverges is the convergence property WAL
// replication rests on: starting from the state the full log produces,
// re-applying any contiguous suffix of the log in order leaves the state
// unchanged — duplicate inserts no-op, absent deletes no-op, and re-inserts
// of superseded tuples are rejected by the guards. Both admission paths
// (fast lock-striped guards and the serialized chase) must satisfy it.
func TestApplySuffixReplayConverges(t *testing.T) {
	paths := []struct {
		name string
		open func(testing.TB) *Engine
	}{
		{"fast", openUniversity},
		{"chase", func(tb testing.TB) *Engine {
			e, _ := openExample1(tb)
			return e
		}},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				src, log := genLog(t, p.open, rng, 120)
				want := src.Snapshot()

				// A fresh engine replaying the log reaches the same state
				// (the follower catch-up case).
				replica := p.open(t)
				seedDict(t, replica, src)
				applyLog(t, replica, log)
				requireStatesEqual(t, fmt.Sprintf("seed %d full replay", seed), want, replica.Snapshot())

				// Re-applying every suffix, in order, changes nothing (the
				// duplicate-delivery / lost-position case).
				for start := 0; start <= len(log); start += 1 + len(log)/16 {
					applyLog(t, replica, log[start:])
					requireStatesEqual(t, fmt.Sprintf("seed %d suffix from %d", seed, start),
						want, replica.Snapshot())
				}
			}
		})
	}
}

// seedDict copies the source engine's interned bindings into the replica,
// the way checkpoint installation does, so tuples mean the same values.
func seedDict(t *testing.T, replica, src *Engine) {
	t.Helper()
	st := src.Snapshot()
	var entries []struct {
		v relation.Value
		n string
	}
	st.Dict.Each(func(v relation.Value, name string) {
		entries = append(entries, struct {
			v relation.Value
			n string
		}{v, name})
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].v < entries[j].v })
	for _, e := range entries {
		if err := replica.Dict().Restore(e.v, e.n); err != nil {
			t.Fatalf("Restore(%d, %q): %v", e.v, e.n, err)
		}
	}
}

// TestApplyBatchRejectLeavesStateUnchanged pins the batch atomicity Apply
// relies on: when one member of a replayed batch is rejected by the current
// guards, no member mutates the state.
func TestApplyBatchRejectLeavesStateUnchanged(t *testing.T) {
	e := openUniversity(t)
	// COURSE(C,T,D) with C->T: bind cs101 to jones.
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	err := e.Apply(Commit{Ops: []Op{
		{Scheme: 0, Tuple: tuple(e, "cs102", "smith", "cs")}, // would be new
		{Scheme: 0, Tuple: tuple(e, "cs101", "smith", "cs")}, // violates C->T
	}})
	if !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	requireStatesEqual(t, "rejected batch", before, e.Snapshot())
	if e.Snapshot().TupleCount() != 1 {
		t.Fatalf("tuple count %d, want 1", e.Snapshot().TupleCount())
	}
}

// TestVersionBumpsPerCommit pins Version() semantics: one bump per
// successful mutation, none for rejected or no-op-delete operations.
func TestVersionBumpsPerCommit(t *testing.T) {
	e := openUniversity(t)
	v0 := e.Version()
	if err := e.Insert(0, tuple(e, "cs101", "jones", "cs")); err != nil {
		t.Fatal(err)
	}
	if got := e.Version(); got != v0+1 {
		t.Fatalf("after insert: version %d, want %d", got, v0+1)
	}
	if err := e.Insert(0, tuple(e, "cs101", "smith", "cs")); !errors.Is(err, maintenance.ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	if got := e.Version(); got != v0+1 {
		t.Fatalf("after rejected insert: version %d, want %d", got, v0+1)
	}
	if ok, err := e.Delete(0, tuple(e, "cs999", "x", "y")); err != nil || ok {
		t.Fatalf("absent delete: ok %v err %v", ok, err)
	}
	if got := e.Version(); got != v0+1 {
		t.Fatalf("after absent delete: version %d, want %d", got, v0+1)
	}
	if ok, err := e.Delete(0, tuple(e, "cs101", "jones", "cs")); err != nil || !ok {
		t.Fatalf("delete: ok %v err %v", ok, err)
	}
	if got := e.Version(); got != v0+2 {
		t.Fatalf("after delete: version %d, want %d", got, v0+2)
	}
}
