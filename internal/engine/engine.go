// Package engine is a thread-safe, sharded maintenance engine layered on
// internal/maintenance. It exists because independence is exactly what makes
// constraint maintenance parallelizable: for an independent schema each
// relation's guard touches only that relation's FD indexes and instance, so
// inserts into different relations can validate concurrently behind
// per-relation lock stripes with no global coordination. Non-independent
// schemas still work — every operation serializes through the chase
// maintainer under one mutex, which is the honest cost Theorem 1 imposes.
//
// On top of the maintainers the engine adds atomic batch inserts, deletes
// (always admissible: SAT is closed under subsets), consistent snapshot
// reads, a sharded concurrent value dictionary, and per-relation statistics
// with validate-latency percentiles.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/maintenance"
	"indep/internal/obs"
	"indep/internal/query"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Op is a single tuple operation addressed to a scheme, the unit of
// InsertBatch.
type Op struct {
	Scheme int
	Tuple  relation.Tuple
}

// Commit describes one successful state mutation: the ops that actually
// changed the state (duplicates and no-op deletes are excluded), and
// whether they were deletions. Trace carries the request trace ID that
// caused the mutation ("" when none) so the durability layer can tag its
// fsync ack with the same ID the HTTP access log printed. Span, when
// non-nil, is the request's engine-operation span; the durability layer
// hangs its WAL append and fsync-ack child spans off it so a traced insert
// shows its full write path (every *obs.Span method is nil-safe, so hooks
// may use it unconditionally).
type Commit struct {
	Ops    []Op
	Delete bool
	Trace  string
	Span   *obs.Span
}

// CommitHook observes every successful mutation. It is invoked while the
// locks protecting the mutated relations are still held — per-relation
// commit order therefore matches hook order, which is what makes the hook
// a valid redo-log feed. The hook must be fast and must not re-enter the
// engine; it may return a wait function, which the engine calls after
// releasing the locks (e.g. to await an fsync) and whose error is returned
// to the caller. Note a wait error does NOT roll back the in-memory
// mutation: the caller is told the durability guarantee failed and should
// retire the engine.
type CommitHook func(c Commit) (wait func() error)

// Engine is a concurrent maintained database. Create with New; all methods
// are safe for concurrent use.
type Engine struct {
	s    *schema.Schema
	fds  fd.List
	caps chase.Caps
	res  *independence.Result
	dict *Dict

	// Fast path (independent schemas): shards[i].mu guards both the guard's
	// per-scheme data (FD indexes and instance i) and shards[i]'s stats.
	fast  bool
	guard *maintenance.Guard

	// Chase path (everything else): mu serializes all state access; shard
	// mutexes guard only stats. Lock order is always mu before shard.mu.
	mu    sync.Mutex
	chase *maintenance.ChaseMaintainer
	jd    bool

	// hook, when set, observes successful mutations (see CommitHook). Set
	// once before concurrent use; nil checks are unsynchronized.
	hook CommitHook

	// version counts successful mutations; commit bumps it under the same
	// locks that guard the mutated relations. Together with snapCache it
	// lets the query path reuse a snapshot for as long as no write lands
	// in between (see QuerySnapshot).
	version    atomic.Uint64
	snapCache  atomic.Pointer[cachedSnapshot]
	snapReuses atomic.Uint64
	snapCopies atomic.Uint64

	// ev is the window-query evaluator, built on first query (see Window).
	evOnce sync.Once
	ev     *query.Evaluator

	// chaseMet collects telemetry from every chase run under the engine's
	// caps (maintainer and query fallback); queryLat is the window-query
	// latency histogram; tel is the slow-operation log (see SetTelemetry).
	chaseMet *chase.Metrics
	queryLat obs.Histogram
	tel      Telemetry

	shards []shard
}

// shard is the per-relation lock stripe with its operation counters. The
// latency histogram is lock-free and may be observed or snapshotted without
// holding mu.
type shard struct {
	mu      sync.Mutex
	tuples  int64
	inserts uint64
	rejects uint64
	deletes uint64
	lat     obs.Histogram // end-to-end op latency in nanoseconds
}

// note records the outcome of one operation; callers hold sh.mu. Chase
// budget exhaustion is a server-side limit, not a client rejection, and is
// deliberately not counted in rejects.
func (sh *shard) note(added, removed bool, err error, d time.Duration) {
	switch {
	case errors.Is(err, chase.ErrBudget):
	case err != nil:
		sh.rejects++
	case removed:
		sh.deletes++
		sh.tuples--
	default:
		sh.inserts++
		if added {
			sh.tuples++
		}
	}
	sh.lat.Observe(int64(d))
}

// New analyzes the schema and opens an empty concurrent engine: lock-striped
// guards when the independence test accepts, a serialized chase maintainer
// otherwise.
func New(s *schema.Schema, fds fd.List, caps chase.Caps) (*Engine, error) {
	res, err := independence.Decide(s, fds)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		s:        s,
		fds:      fds,
		caps:     caps,
		res:      res,
		dict:     NewDict(),
		chaseMet: &chase.Metrics{},
		shards:   make([]shard, len(s.Rels)),
	}
	// Thread the telemetry sink through the caps so the maintainer's and
	// the query evaluator's internal chases report into it.
	e.caps.Metrics = e.chaseMet
	if res.Independent {
		e.fast = true
		e.guard = maintenance.NewGuard(s, res.Cover)
	} else {
		e.jd = !infer.AllEmbedded(s, fds)
		e.chase = maintenance.NewChaseMaintainer(s, fds, e.jd, e.caps)
	}
	return e, nil
}

// Fast reports whether the engine validates through per-relation lock
// stripes (independent schema) rather than the serialized chase.
func (e *Engine) Fast() bool { return e.fast }

// Result returns the independence analysis the engine was built from.
func (e *Engine) Result() *independence.Result { return e.res }

// Schema returns the engine's schema.
func (e *Engine) Schema() *schema.Schema { return e.s }

// Dict returns the engine's concurrent value dictionary; use it to intern
// row values before building tuples.
func (e *Engine) Dict() *Dict { return e.dict }

// SetCommitHook installs the mutation observer. Install it after recovery
// (Apply calls fire no hook only because none is set yet) and before the
// engine is used concurrently.
func (e *Engine) SetCommitHook(h CommitHook) { e.hook = h }

// commit runs the hook (if any) for a successful mutation and returns the
// wait function to invoke once locks are released. Callers hold the locks
// guarding the mutated relations; the version bump under those locks is
// what keeps QuerySnapshot's cache coherent.
func (e *Engine) commit(c Commit) func() error {
	e.version.Add(1)
	if e.hook == nil {
		return nil
	}
	return e.hook(c)
}

// Version returns the engine's mutation counter: it bumps once per
// successful commit, under the locks guarding the mutated relations. It is
// a cheap change detector (the query path keys its snapshot cache on it),
// NOT a replication token — the counter restarts from recovery's replay
// count after a reopen, and bumps in different relation stripes are not
// ordered against each other. Cross-restart read-your-writes tokens come
// from the WAL byte position instead (see wal.Position).
func (e *Engine) Version() uint64 { return e.version.Load() }

// Apply replays a recovered Commit through the normal admission path:
// inserts re-validate through the per-relation guards (or the chase) as an
// atomic batch, deletes re-apply directly. Replay is idempotent — a
// duplicate insert or an absent delete is a no-op — so applying a log
// whose prefix is already reflected in the state converges to the same
// state.
//
// More strongly, re-applying any contiguous suffix of a commit log in
// order converges: a tuple's final presence is decided by its last mention
// in the log (insert → present, delete → absent), and a re-applied insert
// whose tuple was later deleted and superseded re-validates against the
// *current* guards — it is rejected (the guards hold the superseding
// tuple), which is exactly the target state. This is the property WAL
// replication leans on: a follower that lost its exact position may replay
// from any earlier point in the same log without diverging, provided it
// replays contiguously and in order from there.
//
// During recovery Apply runs before SetCommitHook, so replayed records are
// not re-logged; a replication follower instead runs Apply *with* its hook
// set, so every applied record is re-journaled into the follower's own
// log.
func (e *Engine) Apply(c Commit) error {
	if c.Delete {
		for _, op := range c.Ops {
			if _, err := e.delete(context.Background(), op.Scheme, op.Tuple, c.Trace); err != nil {
				return err
			}
		}
		return nil
	}
	return e.insertBatch(context.Background(), c.Ops, c.Trace)
}

// checkOp validates addressing and arity up front so the maintainers can
// assume well-formed operations.
func (e *Engine) checkOp(scheme int, t relation.Tuple) error {
	if scheme < 0 || scheme >= len(e.shards) {
		return fmt.Errorf("engine: no scheme %d", scheme)
	}
	if want := e.s.Attrs(scheme).Len(); len(t) != want {
		return fmt.Errorf("engine: tuple arity %d does not match %s arity %d",
			len(t), e.s.Name(scheme), want)
	}
	return nil
}

// Insert validates and adds one tuple. A rejected insert leaves the state
// unchanged and returns an error wrapping maintenance.ErrViolation.
func (e *Engine) Insert(scheme int, t relation.Tuple) error {
	return e.insert(context.Background(), scheme, t, "")
}

// InsertCtx is Insert with the context's trace ID attached to the commit, so
// the durability layer and the slow-op log can tie the mutation back to its
// originating request. When the context carries an active span (a sampled
// request), the operation records an engine.insert span with lock-wait and
// validation children.
func (e *Engine) InsertCtx(ctx context.Context, scheme int, t relation.Tuple) error {
	return e.insert(ctx, scheme, t, obs.Trace(ctx))
}

func (e *Engine) insert(ctx context.Context, scheme int, t relation.Tuple, trace string) error {
	if err := e.checkOp(scheme, t); err != nil {
		return err
	}
	sp := obs.SpanFrom(ctx).StartChild("engine.insert")
	if sp.Recording() {
		sp.SetAttr("relation", e.s.Name(scheme))
	}
	sh := &e.shards[scheme]
	start := time.Now()
	var added bool
	var err error
	var wait func() error
	if e.fast {
		sh.mu.Lock()
		if sp.Recording() {
			sp.SetInt("lock_wait_ns", time.Since(start).Nanoseconds())
		}
		vsp := sp.StartChild("guard.validate")
		added, err = e.guard.InsertReport(scheme, t)
		vsp.End()
		if added && err == nil {
			wait = e.commit(Commit{Ops: []Op{{Scheme: scheme, Tuple: t}}, Trace: trace, Span: sp})
		}
	} else {
		e.mu.Lock()
		if sp.Recording() {
			sp.SetInt("lock_wait_ns", time.Since(start).Nanoseconds())
		}
		vsp := e.startChaseSpan(sp)
		added, err = e.chase.InsertReport(scheme, t)
		e.endChaseSpan(vsp)
		if added && err == nil {
			wait = e.commit(Commit{Ops: []Op{{Scheme: scheme, Tuple: t}}, Trace: trace, Span: sp})
		}
		e.mu.Unlock()
		sh.mu.Lock()
	}
	d := time.Since(start)
	sh.note(added, false, err, d)
	sh.mu.Unlock()
	e.endOpSpan(sp, added, err)
	if e.slowHit(d) {
		e.noteSlow("insert", e.s.Name(scheme), trace, d, err)
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			return werr
		}
	}
	return err
}

// endOpSpan stamps a mutation span's outcome and closes it. An accepted
// mutation invalidates the cached query snapshot — worth surfacing, since
// the next window query pays a fresh snapshot cut for it.
func (e *Engine) endOpSpan(sp *obs.Span, changed bool, err error) {
	if sp.Recording() {
		switch {
		case err != nil:
			sp.SetAttr("outcome", "rejected")
		case !changed:
			sp.SetAttr("outcome", "noop")
		default:
			sp.SetAttr("outcome", "ok")
			sp.SetInt("snapshot_invalidated", 1)
		}
	}
	sp.End()
}

// chaseSpan carries a chase.validate span together with the chase telemetry
// counters read when it opened, so closing it can attribute the counter
// delta to this one validation.
type chaseSpan struct {
	sp              *obs.Span
	rounds0, union0 uint64
}

// startChaseSpan opens a chase.validate child and snapshots the engine's
// chase telemetry (which rides in chase.Caps into every maintainer run).
// Callers hold e.mu, which serializes every chase, so the counter delta is
// exactly this validation's work. Pays nothing when the parent is not
// recording.
func (e *Engine) startChaseSpan(parent *obs.Span) chaseSpan {
	if !parent.Recording() {
		return chaseSpan{}
	}
	return chaseSpan{
		sp:      parent.StartChild("chase.validate"),
		rounds0: e.chaseMet.FDRounds.Value(),
		union0:  e.chaseMet.Unions.Value(),
	}
}

// endChaseSpan records the chase-round and union deltas and closes the
// span; callers still hold e.mu.
func (e *Engine) endChaseSpan(c chaseSpan) {
	if !c.sp.Recording() {
		return
	}
	c.sp.SetInt("chase_fd_rounds", int64(e.chaseMet.FDRounds.Value()-c.rounds0))
	c.sp.SetInt("chase_unions", int64(e.chaseMet.Unions.Value()-c.union0))
	c.sp.End()
}

// Delete removes one tuple, reporting whether it was present. Deletions are
// always admissible, so the only errors are malformed operations.
func (e *Engine) Delete(scheme int, t relation.Tuple) (bool, error) {
	return e.delete(context.Background(), scheme, t, "")
}

// DeleteCtx is Delete with the context's trace ID attached to the commit.
func (e *Engine) DeleteCtx(ctx context.Context, scheme int, t relation.Tuple) (bool, error) {
	return e.delete(ctx, scheme, t, obs.Trace(ctx))
}

func (e *Engine) delete(ctx context.Context, scheme int, t relation.Tuple, trace string) (bool, error) {
	if err := e.checkOp(scheme, t); err != nil {
		return false, err
	}
	sp := obs.SpanFrom(ctx).StartChild("engine.delete")
	if sp.Recording() {
		sp.SetAttr("relation", e.s.Name(scheme))
	}
	sh := &e.shards[scheme]
	start := time.Now()
	var removed bool
	var err error
	var wait func() error
	if e.fast {
		sh.mu.Lock()
		if sp.Recording() {
			sp.SetInt("lock_wait_ns", time.Since(start).Nanoseconds())
		}
		removed, err = e.guard.Delete(scheme, t)
		if removed && err == nil {
			wait = e.commit(Commit{Ops: []Op{{Scheme: scheme, Tuple: t}}, Delete: true, Trace: trace, Span: sp})
		}
	} else {
		e.mu.Lock()
		if sp.Recording() {
			sp.SetInt("lock_wait_ns", time.Since(start).Nanoseconds())
		}
		removed, err = e.chase.Delete(scheme, t)
		if removed && err == nil {
			wait = e.commit(Commit{Ops: []Op{{Scheme: scheme, Tuple: t}}, Delete: true, Trace: trace, Span: sp})
		}
		e.mu.Unlock()
		sh.mu.Lock()
	}
	d := time.Since(start)
	if removed || err != nil {
		sh.note(false, removed, err, d)
	}
	sh.mu.Unlock()
	e.endOpSpan(sp, removed, err)
	if e.slowHit(d) {
		e.noteSlow("delete", e.s.Name(scheme), trace, d, err)
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			return removed, werr
		}
	}
	return removed, err
}

// MaxBatchOps bounds a single InsertBatch. The limit keeps one batch's
// lock hold time sane and guarantees a durable store can always frame the
// commit as one decodable log record (the WAL decoder enforces its own,
// larger cap — a record we can write must be one we can read back).
const MaxBatchOps = 1 << 16

// InsertBatch validates and adds a batch of tuples atomically: either every
// tuple is admitted or the state is left unchanged and the first violation
// is returned. On the fast path the batch takes each involved relation's
// stripe once, amortizing locking across the batch; independence guarantees
// the per-relation checks jointly decide global admissibility. On the chase
// path the whole batch is validated with a single chase instead of one per
// tuple. Batches are limited to MaxBatchOps tuples.
func (e *Engine) InsertBatch(ops []Op) error {
	return e.insertBatch(context.Background(), ops, "")
}

// InsertBatchCtx is InsertBatch with the context's trace ID attached to the
// commit.
func (e *Engine) InsertBatchCtx(ctx context.Context, ops []Op) error {
	return e.insertBatch(ctx, ops, obs.Trace(ctx))
}

func (e *Engine) insertBatch(ctx context.Context, ops []Op, trace string) error {
	if len(ops) > MaxBatchOps {
		return fmt.Errorf("engine: batch of %d ops exceeds limit %d", len(ops), MaxBatchOps)
	}
	for _, op := range ops {
		if err := e.checkOp(op.Scheme, op.Tuple); err != nil {
			return err
		}
	}
	if len(ops) == 0 {
		return nil
	}
	sp := obs.SpanFrom(ctx).StartChild("engine.batch")
	if sp.Recording() {
		sp.SetInt("ops", int64(len(ops)))
	}
	if e.fast {
		return e.batchFast(ops, trace, sp)
	}
	return e.batchChase(ops, trace, sp)
}

// batchSchemes returns the distinct schemes of the batch in ascending order
// — the engine's global lock-acquisition order, shared with Snapshot.
func batchSchemes(ops []Op) []int {
	seen := make(map[int]bool, len(ops))
	var out []int
	for _, op := range ops {
		if !seen[op.Scheme] {
			seen[op.Scheme] = true
			out = append(out, op.Scheme)
		}
	}
	sort.Ints(out)
	return out
}

func (e *Engine) batchFast(ops []Op, trace string, sp *obs.Span) error {
	start := time.Now()
	schemes := batchSchemes(ops)
	for _, s := range schemes {
		e.shards[s].mu.Lock()
	}
	if sp.Recording() {
		sp.SetInt("relations", int64(len(schemes)))
		sp.SetInt("lock_wait_ns", time.Since(start).Nanoseconds())
	}
	vsp := sp.StartChild("guard.validate")
	added := make([]Op, 0, len(ops))
	var err error
	for _, op := range ops {
		var ok bool
		ok, err = e.guard.InsertReport(op.Scheme, op.Tuple)
		if err != nil {
			break
		}
		if ok {
			added = append(added, op)
		}
	}
	vsp.End()
	var wait func() error
	if err != nil {
		// Roll back in reverse; deletes cannot fail, so the state returns
		// exactly to where it was while we still hold every stripe.
		for i := len(added) - 1; i >= 0; i-- {
			e.guard.Delete(added[i].Scheme, added[i].Tuple)
		}
	} else if len(added) > 0 {
		wait = e.commit(Commit{Ops: added, Trace: trace, Span: sp})
	}
	d := time.Since(start)
	e.noteBatch(ops, added, schemes, err, d)
	for _, s := range schemes {
		e.shards[s].mu.Unlock()
	}
	e.endOpSpan(sp, len(added) > 0, err)
	if e.slowHit(d) {
		e.noteSlow("batch", fmt.Sprintf("%d ops", len(ops)), trace, d, err)
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			return werr
		}
	}
	return err
}

func (e *Engine) batchChase(ops []Op, trace string, sp *obs.Span) error {
	start := time.Now()
	extras := make([]chase.Extra, len(ops))
	for i, op := range ops {
		extras[i] = chase.Extra{Scheme: op.Scheme, Tuple: op.Tuple}
	}
	e.mu.Lock()
	if sp.Recording() {
		sp.SetInt("lock_wait_ns", time.Since(start).Nanoseconds())
	}
	// One trial chase validates the whole batch — no state clone; the
	// maintainer pads the candidates onto its incremental engine (or, with
	// a join dependency, onto a fresh padding of the live state).
	vsp := e.startChaseSpan(sp)
	freshExtras, err := e.chase.InsertBatchReport(extras)
	e.endChaseSpan(vsp)
	var added []Op
	var wait func() error
	if err == nil {
		for _, x := range freshExtras {
			added = append(added, Op{Scheme: x.Scheme, Tuple: x.Tuple})
		}
		if len(added) > 0 {
			wait = e.commit(Commit{Ops: added, Trace: trace, Span: sp})
		}
	}
	e.mu.Unlock()
	d := time.Since(start)
	schemes := batchSchemes(ops)
	for _, s := range schemes {
		e.shards[s].mu.Lock()
	}
	e.noteBatch(ops, added, schemes, err, d)
	for _, s := range schemes {
		e.shards[s].mu.Unlock()
	}
	e.endOpSpan(sp, len(added) > 0, err)
	if e.slowHit(d) {
		e.noteSlow("batch", fmt.Sprintf("%d ops", len(ops)), trace, d, err)
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			return werr
		}
	}
	return err
}

// noteBatch attributes a batch outcome to the involved shards (schemes is
// the batch's distinct scheme list): per-op accept/reject counters, tuple
// deltas for the ops actually added, and the batch latency once per shard.
// Callers hold every involved stripe.
func (e *Engine) noteBatch(ops, added []Op, schemes []int, err error, d time.Duration) {
	for _, op := range ops {
		sh := &e.shards[op.Scheme]
		switch {
		case errors.Is(err, chase.ErrBudget): // server-side limit, not a reject
		case err != nil:
			sh.rejects++
		default:
			sh.inserts++
		}
	}
	for _, op := range added {
		if err == nil {
			e.shards[op.Scheme].tuples++
		}
	}
	for _, s := range schemes {
		e.shards[s].lat.Observe(int64(d))
	}
}

// Snapshot returns a deep copy of the current state: a consistent cut that
// no later operation mutates. The attached dictionary is a point-in-time
// copy of the engine's, so the snapshot renders with names.
func (e *Engine) Snapshot() *relation.State { return e.SnapshotWith(nil) }

// SnapshotWith is Snapshot with a cut callback: fn (when non-nil) runs
// while every state lock is held, i.e. at a point where no mutation is in
// flight and every completed mutation's commit hook has already run.
// Durable stores use it to mark a log position that exactly matches the
// snapshot — the foundation of checkpointing.
func (e *Engine) SnapshotWith(fn func()) *relation.State {
	var st *relation.State
	if e.fast {
		for i := range e.shards {
			e.shards[i].mu.Lock()
		}
		if fn != nil {
			fn()
		}
		st = e.guard.State().Clone()
		for i := range e.shards {
			e.shards[i].mu.Unlock()
		}
	} else {
		e.mu.Lock()
		if fn != nil {
			fn()
		}
		st = e.chase.State().Clone()
		e.mu.Unlock()
	}
	st.Dict = e.dict.Materialize()
	return st
}

// Rows returns the total number of tuples across all relations.
func (e *Engine) Rows() int64 {
	var n int64
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		n += sh.tuples
		sh.mu.Unlock()
	}
	return n
}

// RelationStats is a point-in-time view of one relation's operation
// counters. Latency quantiles come from the relation's log2-bucketed
// histogram — the same histogram /metrics exposes — and cover every
// operation since the engine opened. They measure the full end-to-end
// operation, lock wait included, so under contention they report what
// callers actually experience, not the bare validation cost.
type RelationStats struct {
	Relation string
	Tuples   int64
	Inserts  uint64        // accepted insert operations (duplicates included)
	Rejects  uint64        // rejected operations
	Deletes  uint64        // deletes that removed a tuple
	P50      time.Duration // end-to-end op latency, incl. lock wait
	P90      time.Duration
	P99      time.Duration
	P999     time.Duration
}

// Stats returns per-relation statistics in scheme order.
func (e *Engine) Stats() []RelationStats {
	out := make([]RelationStats, len(e.shards))
	for i := range e.shards {
		sh := &e.shards[i]
		snap := sh.lat.Snapshot()
		sh.mu.Lock()
		out[i] = RelationStats{
			Relation: e.s.Name(i),
			Tuples:   sh.tuples,
			Inserts:  sh.inserts,
			Rejects:  sh.rejects,
			Deletes:  sh.deletes,
		}
		sh.mu.Unlock()
		p50, p90, p99, p999 := snap.Quantiles()
		out[i].P50 = time.Duration(p50)
		out[i].P90 = time.Duration(p90)
		out[i].P99 = time.Duration(p99)
		out[i].P999 = time.Duration(p999)
	}
	return out
}
