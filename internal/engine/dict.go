package engine

import (
	"fmt"
	"sync"

	"indep/internal/relation"
)

// dictShards is the number of lock stripes in a Dict. Power of two so the
// modulo compiles to a mask.
const dictShards = 64

// Dict is a sharded, concurrency-safe value dictionary: the engine's
// replacement for relation.Dict, which is a plain map and unusable under
// goroutines. Each shard owns a disjoint residue class of the value space
// (shard s allocates s, s+dictShards, s+2·dictShards, …), so interning and
// reverse lookup touch exactly one stripe and never a global lock.
type Dict struct {
	shards [dictShards]dictShard
	// internHook, when set, observes every fresh allocation while the
	// shard lock is still held. Durable stores use it to log (value, name)
	// bindings: because the hook runs under the lock, its log entries are
	// enqueued before any operation that read the value can log itself, so
	// a binding is always durable no later than its first use.
	internHook func(v relation.Value, name string)
}

type dictShard struct {
	mu    sync.RWMutex
	index map[string]relation.Value
	names []string
}

// NewDict creates an empty concurrent dictionary.
func NewDict() *Dict { return &Dict{} }

// shardOf hashes a name to its stripe (FNV-1a).
func shardOf(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return int(h % dictShards)
}

// Value interns name and returns its value. Safe for concurrent use; the
// same name always maps to the same value.
func (d *Dict) Value(name string) relation.Value {
	si := shardOf(name)
	sh := &d.shards[si]
	sh.mu.RLock()
	v, ok := sh.index[name]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.index[name]; ok { // raced with another writer
		return v
	}
	if sh.index == nil {
		sh.index = make(map[string]relation.Value)
	}
	v = relation.Value(len(sh.names)*dictShards + si)
	sh.names = append(sh.names, name)
	sh.index[name] = v
	if d.internHook != nil {
		d.internHook(v, name)
	}
	return v
}

// SetInternHook installs the allocation observer. Set it before the Dict
// is used concurrently (or while no interning can race); the hook itself
// is called with the owning shard's lock held and must not re-enter the
// Dict.
func (d *Dict) SetInternHook(h func(v relation.Value, name string)) { d.internHook = h }

// Restore re-binds a (value, name) pair recovered from a checkpoint or
// intern log record, without firing the intern hook. Pairs must arrive in
// ascending value order per shard — the order Dict allocates and the
// recovery sources preserve — so allocation resumes seamlessly after the
// restored prefix. Restoring an already-present pair is a no-op; a
// mismatch reports corruption.
func (d *Dict) Restore(v relation.Value, name string) error {
	if v < 0 {
		return fmt.Errorf("engine: restore of negative value %d", int64(v))
	}
	si := int(v) % dictShards
	if shardOf(name) != si {
		return fmt.Errorf("engine: dictionary value %d does not hash to its shard for %q", int64(v), name)
	}
	idx := int(v) / dictShards
	sh := &d.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch {
	case idx < len(sh.names):
		if sh.names[idx] != name {
			return fmt.Errorf("engine: dictionary value %d bound to %q and %q", int64(v), sh.names[idx], name)
		}
		return nil
	case idx > len(sh.names):
		return fmt.Errorf("engine: dictionary gap restoring value %d", int64(v))
	}
	if prev, ok := sh.index[name]; ok {
		return fmt.Errorf("engine: dictionary name %q bound to values %d and %d", name, int64(prev), int64(v))
	}
	if sh.index == nil {
		sh.index = make(map[string]relation.Value)
	}
	sh.names = append(sh.names, name)
	sh.index[name] = v
	return nil
}

// Lookup returns the value of an already-interned name without interning it.
func (d *Dict) Lookup(name string) (relation.Value, bool) {
	sh := &d.shards[shardOf(name)]
	sh.mu.RLock()
	v, ok := sh.index[name]
	sh.mu.RUnlock()
	return v, ok
}

// Name returns the display name of v, or its numeral if v was never interned.
func (d *Dict) Name(v relation.Value) string {
	if v >= 0 {
		sh := &d.shards[int(v)%dictShards]
		idx := int(v) / dictShards
		sh.mu.RLock()
		if idx < len(sh.names) {
			name := sh.names[idx]
			sh.mu.RUnlock()
			return name
		}
		sh.mu.RUnlock()
	}
	return fmt.Sprintf("%d", int64(v))
}

// Len returns the number of interned names.
func (d *Dict) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		n += len(sh.names)
		sh.mu.RUnlock()
	}
	return n
}

// Materialize copies the dictionary into a plain relation.Dict (value
// bindings preserved), for attaching to immutable snapshot states.
func (d *Dict) Materialize() *relation.Dict {
	out := &relation.Dict{}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		for idx, name := range sh.names {
			out.Define(relation.Value(idx*dictShards+i), name)
		}
		sh.mu.RUnlock()
	}
	return out
}
