package engine

import (
	"fmt"
	"sync"
	"testing"

	"indep/internal/relation"
)

func TestDictInternRoundTrip(t *testing.T) {
	d := NewDict()
	v1 := d.Value("alice")
	v2 := d.Value("bob")
	if v1 == v2 {
		t.Fatal("distinct names share a value")
	}
	if d.Value("alice") != v1 {
		t.Fatal("re-interning changed the value")
	}
	if d.Name(v1) != "alice" || d.Name(v2) != "bob" {
		t.Fatalf("Name round-trip failed: %q, %q", d.Name(v1), d.Name(v2))
	}
	if _, ok := d.Lookup("carol"); ok {
		t.Fatal("Lookup invented a value")
	}
	if v, ok := d.Lookup("alice"); !ok || v != v1 {
		t.Fatal("Lookup disagrees with Value")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Name(relation.Value(1<<40)) != fmt.Sprintf("%d", int64(1<<40)) {
		t.Fatal("unknown value must render as numeral")
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	const goroutines = 16
	const names = 200
	got := make([][]relation.Value, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]relation.Value, names)
			for i := 0; i < names; i++ {
				// Every goroutine interns the same name set concurrently.
				got[g][i] = d.Value(fmt.Sprintf("name-%d", i))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range got[g] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d got a different value for name-%d", g, i)
			}
		}
	}
	if d.Len() != names {
		t.Fatalf("Len = %d, want %d", d.Len(), names)
	}
	seen := make(map[relation.Value]bool, names)
	for i, v := range got[0] {
		if seen[v] {
			t.Fatalf("value %d assigned twice", v)
		}
		seen[v] = true
		if d.Name(v) != fmt.Sprintf("name-%d", i) {
			t.Fatalf("Name(%d) = %q", v, d.Name(v))
		}
	}
}

func TestDictMaterialize(t *testing.T) {
	d := NewDict()
	var vals []relation.Value
	for i := 0; i < 50; i++ {
		vals = append(vals, d.Value(fmt.Sprintf("v%d", i)))
	}
	plain := d.Materialize()
	for i, v := range vals {
		if plain.Name(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("materialized Name(%d) = %q, want v%d", v, plain.Name(v), i)
		}
	}
}

// Interning an already-known name is a read-locked map hit: the engine's
// hot path (every tuple value of every insert goes through Value) must not
// allocate in steady state.
func TestDictInternSteadyStateAllocs(t *testing.T) {
	d := NewDict()
	for i := 0; i < 256; i++ {
		d.Value(fmt.Sprintf("name-%d", i))
	}
	if n := testing.AllocsPerRun(200, func() { d.Value("name-73") }); n != 0 {
		t.Errorf("re-interning a known name allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(200, func() { d.Lookup("name-73") }); n != 0 {
		t.Errorf("Lookup allocates %v per run", n)
	}
}
