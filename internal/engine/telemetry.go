package engine

import (
	"log/slog"
	"time"

	"indep/internal/chase"
	"indep/internal/obs"
)

// Telemetry configures the engine's structured logging. Log is the
// destination for slow-operation records (nil disables them); Slow is the
// threshold at or above which an operation's end-to-end latency is logged
// (0 disables). Install once with SetTelemetry before concurrent use.
type Telemetry struct {
	Log  *slog.Logger
	Slow time.Duration
}

// SetTelemetry installs the slow-operation log. Like SetCommitHook, it must
// be called before the engine is used concurrently.
func (e *Engine) SetTelemetry(t Telemetry) { e.tel = t }

// slowHit reports whether an operation of duration d crosses the
// slow-operation threshold. Call sites guard on it before building the
// record's target string, so the hot path never pays for formatting.
func (e *Engine) slowHit(d time.Duration) bool {
	return e.tel.Log != nil && e.tel.Slow > 0 && d >= e.tel.Slow
}

// noteSlow emits one slow-operation record; callers must have checked
// slowHit. what identifies the target (a relation name, or a batch size).
func (e *Engine) noteSlow(op, what, trace string, d time.Duration, err error) {
	args := []any{"op", op, "target", what, "duration", d}
	if trace != "" {
		args = append(args, "trace", trace)
	}
	if err != nil {
		args = append(args, "err", err)
	}
	e.tel.Log.Warn("slow operation", args...)
}

// ChaseMetrics returns the engine's chase telemetry sink — every chase the
// engine runs (serialized maintenance and query fallback) reports into it.
func (e *Engine) ChaseMetrics() *chase.Metrics { return e.chaseMet }

// RegisterMetrics files every engine-level metric family with the registry:
// per-relation operation counters and latency histograms, commit and
// snapshot-cache counters, the query evaluator's plan-cache and
// fast-vs-chase counters, the window-query latency histogram, and the chase
// telemetry. Call once at startup, after New.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	for i := range e.shards {
		sh := &e.shards[i]
		rel := obs.L("relation", e.s.Name(i))
		r.CounterFunc("indep_engine_inserts_total",
			"accepted insert operations (duplicates included)",
			func() uint64 { sh.mu.Lock(); defer sh.mu.Unlock(); return sh.inserts }, rel)
		r.CounterFunc("indep_engine_rejects_total",
			"operations rejected by constraint validation",
			func() uint64 { sh.mu.Lock(); defer sh.mu.Unlock(); return sh.rejects }, rel)
		r.CounterFunc("indep_engine_deletes_total",
			"deletes that removed a tuple",
			func() uint64 { sh.mu.Lock(); defer sh.mu.Unlock(); return sh.deletes }, rel)
		r.GaugeFunc("indep_engine_tuples",
			"live tuples in the relation",
			func() float64 { sh.mu.Lock(); defer sh.mu.Unlock(); return float64(sh.tuples) }, rel)
		r.RegisterHistogram("indep_engine_op_duration_seconds",
			"end-to-end operation latency, lock wait included", 1e-9, &sh.lat, rel)
	}
	r.CounterFunc("indep_engine_commits_total",
		"successful state mutations", e.version.Load)
	fastVal := int64(0)
	if e.fast {
		fastVal = 1
	}
	r.Gauge("indep_engine_fast_path",
		"1 when the schema is independent and writes take per-relation stripes").Set(fastVal)
	r.CounterFunc("indep_engine_snapshot_reuses_total",
		"queries served from the cached snapshot", e.snapReuses.Load)
	r.CounterFunc("indep_engine_snapshot_copies_total",
		"queries that had to cut a fresh snapshot", e.snapCopies.Load)

	ev := e.evaluator()
	r.CounterFunc("indep_query_windows_total",
		"window queries evaluated", func() uint64 { return ev.Stats().Queries })
	r.CounterFunc("indep_query_plan_hits_total",
		"window queries answered from the plan cache", func() uint64 { return ev.Stats().PlanHits })
	r.CounterFunc("indep_query_fast_evals_total",
		"windows evaluated relation-by-relation", func() uint64 { return ev.Stats().FastEvals })
	r.CounterFunc("indep_query_chase_evals_total",
		"windows evaluated by the fallback chase", func() uint64 { return ev.Stats().ChaseEvals })
	r.RegisterHistogram("indep_query_window_duration_seconds",
		"window-query latency over a consistent snapshot", 1e-9, &e.queryLat)

	e.chaseMet.Register(r)
}
