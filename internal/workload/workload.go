// Package workload generates schemas, dependency sets, and database states
// for tests, experiments and benchmarks: random covering schemas with
// controllable shape, FD sets embedded or free, locally-satisfying states,
// and the classic schemas from the paper.
package workload

import (
	"fmt"
	"math/rand"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Shape selects the hypergraph shape of a generated schema.
type Shape int

const (
	// ShapeRandom draws schemes as random attribute subsets.
	ShapeRandom Shape = iota
	// ShapeChain makes overlapping schemes R_i = {A_i, …, A_{i+w}}.
	ShapeChain
	// ShapeStar makes one wide fact scheme plus key-linked dimensions.
	ShapeStar
)

// Config controls random schema generation.
type Config struct {
	Attrs     int   // universe size
	Schemes   int   // number of relation schemes
	SchemeMax int   // max attributes per scheme (ShapeRandom)
	FDs       int   // number of FDs to draw
	LHSMax    int   // max attributes in an FD left-hand side
	Embedded  bool  // force every FD inside some scheme
	Shape     Shape // hypergraph shape
}

// Schema draws a random covering schema and FD list under the config.
func Schema(r *rand.Rand, cfg Config) (*schema.Schema, fd.List) {
	u := attrset.NewUniverse()
	for i := 0; i < cfg.Attrs; i++ {
		u.Add(attrName(i))
	}
	var rels []schema.Rel
	switch cfg.Shape {
	case ShapeChain:
		w := cfg.SchemeMax
		if w < 2 {
			w = 2
		}
		step := w - 1
		for lo, i := 0, 0; lo < cfg.Attrs; lo, i = lo+step, i+1 {
			var a attrset.Set
			for j := lo; j < lo+w && j < cfg.Attrs; j++ {
				a.Add(j)
			}
			if a.Len() < 2 && len(rels) > 0 {
				last := rels[len(rels)-1]
				rels[len(rels)-1].Attrs = last.Attrs.Union(a)
				break
			}
			rels = append(rels, schema.Rel{Name: fmt.Sprintf("R%d", i+1), Attrs: a})
		}
	case ShapeStar:
		k := cfg.Schemes
		if k < 2 {
			k = 2
		}
		var fact attrset.Set
		for i := 0; i < k-1; i++ {
			fact.Add(i)
		}
		rels = append(rels, schema.Rel{Name: "FACT", Attrs: fact})
		per := (cfg.Attrs - (k - 1)) / (k - 1)
		next := k - 1
		for i := 0; i < k-1; i++ {
			a := attrset.Of(i)
			for j := 0; j < per && next < cfg.Attrs; j++ {
				a.Add(next)
				next++
			}
			rels = append(rels, schema.Rel{Name: fmt.Sprintf("DIM%d", i+1), Attrs: a})
		}
		for ; next < cfg.Attrs; next++ {
			rels[len(rels)-1].Attrs.Add(next)
		}
	default:
		var covered attrset.Set
		for i := 0; i < cfg.Schemes; i++ {
			var a attrset.Set
			w := 2 + r.Intn(max(1, cfg.SchemeMax-1))
			for j := 0; j < w; j++ {
				a.Add(r.Intn(cfg.Attrs))
			}
			covered = covered.Union(a)
			rels = append(rels, schema.Rel{Name: fmt.Sprintf("R%d", i+1), Attrs: a})
		}
		missing := u.All().Diff(covered)
		if !missing.IsEmpty() {
			rels = append(rels, schema.Rel{Name: "REST", Attrs: missing})
		}
	}
	s := schema.New(u, rels...)

	var fds fd.List
	for i := 0; i < cfg.FDs; i++ {
		var pool []int
		if cfg.Embedded {
			rel := rels[r.Intn(len(rels))]
			pool = rel.Attrs.Attrs()
		} else {
			pool = u.All().Attrs()
		}
		if len(pool) < 2 {
			continue
		}
		var lhs attrset.Set
		for j := 0; j < 1+r.Intn(max(1, cfg.LHSMax)); j++ {
			lhs.Add(pool[r.Intn(len(pool))])
		}
		rhs := attrset.Of(pool[r.Intn(len(pool))])
		if rhs.SubsetOf(lhs) {
			continue
		}
		fds = append(fds, fd.FD{LHS: lhs, RHS: rhs})
	}
	return s, fds
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func attrName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("A%d", i)
}

// FunctionalState builds a state of the given size whose relations satisfy
// every FD by construction: each attribute value is a deterministic
// function of a per-tuple seed drawn from a domain of the given size, so
// any two tuples agreeing on any LHS agree everywhere. The resulting state
// is globally consistent and therefore useful as a large satisfying base
// for maintenance benchmarks.
func FunctionalState(r *rand.Rand, s *schema.Schema, tuplesPerRel, domain int) *relation.State {
	st := relation.NewState(s)
	for i, rel := range s.Rels {
		attrs := rel.Attrs.Attrs()
		for j := 0; j < tuplesPerRel; j++ {
			seed := int64(r.Intn(domain))
			t := make(relation.Tuple, len(attrs))
			for c, a := range attrs {
				// Value depends only on (attribute, seed).
				t[c] = relation.Value(seed*1000 + int64(a))
			}
			st.Insts[i].Add(t)
		}
	}
	return st
}

// LocalState draws random states until one is locally satisfying w.r.t.
// fds ∪ {*D} (chase-checked), or returns nil after tries attempts.
func LocalState(r *rand.Rand, s *schema.Schema, fds fd.List, tuplesPerRel, domain, tries int) *relation.State {
	for try := 0; try < tries; try++ {
		st := relation.NewState(s)
		for i, rel := range s.Rels {
			w := rel.Attrs.Len()
			for j := 0; j < tuplesPerRel; j++ {
				t := make(relation.Tuple, w)
				for c := range t {
					t[c] = relation.Value(r.Intn(domain))
				}
				st.Insts[i].Add(t)
			}
		}
		ok, _, err := chase.LocallySatisfies(st, fds, true, chase.DefaultCaps)
		if err == nil && ok {
			return st
		}
	}
	return nil
}

// Classic schemas from the paper, by name.

// Example1 returns the paper's Example 1: CD, CT, TD with C→D, C→T, T→D —
// the canonical non-independent schema.
func Example1() (*schema.Schema, fd.List) {
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	return s, fd.MustParse(s.U, "C -> D; C -> T; T -> D")
}

// Example1State returns Example 1's CS402/Jones state: locally satisfying
// but globally unsatisfying.
func Example1State() (*relation.State, fd.List) {
	s, fds := Example1()
	st := relation.NewState(s)
	st.AddNamed("CD", map[string]string{"C": "CS402", "D": "CS"})
	st.AddNamed("CT", map[string]string{"C": "CS402", "T": "Jones"})
	st.AddNamed("TD", map[string]string{"T": "Jones", "D": "EE"})
	return st, fds
}

// Example2 returns the paper's Example 2: CT, CS, CHR with C→T, CH→R — the
// canonical independent schema.
func Example2() (*schema.Schema, fd.List) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	return s, fd.MustParse(s.U, "C -> T; C H -> R")
}

// Example2Broken returns Example 2 with SH→R added: cover-embedding fails.
func Example2Broken() (*schema.Schema, fd.List) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	return s, fd.MustParse(s.U, "C -> T; C H -> R; S H -> R")
}

// Example3 returns the paper's Example 3 (recovered; see DESIGN.md):
// R1(A1,B1), R2(A1,B1,A2,B2,C) with A1→A2, B1→B2, A1B1→C, A2B2→A1B1C.
func Example3() (*schema.Schema, fd.List) {
	s := schema.MustParse("R1(A1,B1); R2(A1,B1,A2,B2,C)")
	return s, fd.MustParse(s.U, "A1 -> A2; B1 -> B2; A1 B1 -> C; A2 B2 -> A1 B1 C")
}

// University returns a larger registrar schema in the spirit of the
// paper's running academic example; it is independent.
func University() (*schema.Schema, fd.List) {
	s := schema.MustParse(
		"COURSE(C,T,D); ENROLL(S,C,G); ROOMS(C,H,R); STUDENT(S,N,Y)")
	return s, fd.MustParse(s.U,
		"C -> T; C -> D; S C -> G; C H -> R; S -> N; S -> Y")
}
