package workload

import (
	"math/rand"
	"testing"

	"indep/internal/chase"
	"indep/internal/independence"
)

func TestSchemaShapesValidate(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, shape := range []Shape{ShapeRandom, ShapeChain, ShapeStar} {
		for i := 0; i < 50; i++ {
			s, fds := Schema(r, Config{
				Attrs: 6 + r.Intn(6), Schemes: 3, SchemeMax: 4,
				FDs: 3, LHSMax: 2, Embedded: true, Shape: shape,
			})
			if err := s.Validate(); err != nil {
				t.Fatalf("shape %d produced invalid schema: %v", shape, err)
			}
			for _, f := range fds {
				if !s.Embeds(f.Attrs()) {
					t.Fatalf("embedded config produced non-embedded FD %s in %s",
						f.Format(s.U), s)
				}
			}
		}
	}
}

func TestSchemaNonEmbeddedAllowed(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	s, fds := Schema(r, Config{Attrs: 8, Schemes: 3, SchemeMax: 3, FDs: 6, LHSMax: 2})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = fds // non-embedded FDs are fine; nothing to assert beyond validity
}

func TestFunctionalStateSatisfiesEverything(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	s, fds := Example2()
	st := FunctionalState(r, s, 50, 20)
	ok, err := chase.Satisfies(st, fds, false, chase.DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("functional state must satisfy (ok=%v err=%v)", ok, err)
	}
}

func TestLocalStateIsLocallySatisfying(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	s, fds := Example1()
	st := LocalState(r, s, fds, 2, 3, 50)
	if st == nil {
		t.Fatal("generator gave up")
	}
	ok, _, err := chase.LocallySatisfies(st, fds, true, chase.DefaultCaps)
	if err != nil || !ok {
		t.Fatal("LocalState result not locally satisfying")
	}
}

func TestClassicVerdicts(t *testing.T) {
	s1, f1 := Example1()
	s2, f2 := Example2()
	s2b, f2b := Example2Broken()
	s3, f3 := Example3()
	su, fu := University()
	for _, v := range []struct {
		name        string
		independent bool
		res         func() (bool, error)
	}{
		{"example1", false, func() (bool, error) { r, e := independence.Decide(s1, f1); return r != nil && r.Independent, e }},
		{"example2", true, func() (bool, error) { r, e := independence.Decide(s2, f2); return r != nil && r.Independent, e }},
		{"example2broken", false, func() (bool, error) { r, e := independence.Decide(s2b, f2b); return r != nil && r.Independent, e }},
		{"example3", false, func() (bool, error) { r, e := independence.Decide(s3, f3); return r != nil && r.Independent, e }},
		{"university", true, func() (bool, error) { r, e := independence.Decide(su, fu); return r != nil && r.Independent, e }},
	} {
		got, err := v.res()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if got != v.independent {
			t.Errorf("%s: independent = %v, want %v", v.name, got, v.independent)
		}
	}
}

func TestExample1StateIsTheCanonicalWitness(t *testing.T) {
	st, fds := Example1State()
	ok, err := chase.IsIndependenceWitness(st, fds, chase.DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("Example 1 state must witness non-independence (ok=%v err=%v)", ok, err)
	}
}
