// Package tableau implements the tagged tableaux of the paper's Section 4.
//
// A tagged tableau over universe U is an instance of U ∪ {Tag}: each column
// holds either the column's unique distinguished variable (dv) or a
// nondistinguished variable (ndv), and the tag names a relation scheme. The
// tableaux the independence algorithm constructs have two structural
// invariants (the paper's Observation): every row has dvs in a locally
// closed set of attributes, and no ndv occurs twice. A row is therefore
// fully described by its tag and its dv-set, and a tableau by a set of such
// rows — which is the representation used here.
//
// The weakness preorder: T ≤ T' iff there is a symbol mapping, identity on
// tags and dvs, taking every row of T to a row of T'. Under the invariants
// this reduces to: for every row (i, S) of T there is a row (i, S') of T'
// with S ⊆ S'.
package tableau

import (
	"fmt"
	"sort"
	"strings"

	"indep/internal/attrset"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Row is a tableau row: its tag (a scheme index) and the set of columns
// holding distinguished variables. All remaining columns hold unique
// nondistinguished variables.
type Row struct {
	Tag int
	DVs attrset.Set
}

// T is a tagged tableau: a duplicate-free set of rows.
type T []Row

// Add returns the tableau with the row added (no-op if present).
func (t T) Add(r Row) T {
	for _, x := range t {
		if x == r {
			return t
		}
	}
	out := make(T, len(t)+1)
	copy(out, t)
	out[len(t)] = r
	out.sort()
	return out
}

// Union returns the union of two tableaux.
func (t T) Union(o T) T {
	out := t
	for _, r := range o {
		out = out.Add(r)
	}
	return out
}

func (t T) sort() {
	sort.Slice(t, func(i, j int) bool {
		if t[i].Tag != t[j].Tag {
			return t[i].Tag < t[j].Tag
		}
		return attrset.Less(t[i].DVs, t[j].DVs)
	})
}

// Has reports whether the row is present.
func (t T) Has(r Row) bool {
	for _, x := range t {
		if x == r {
			return true
		}
	}
	return false
}

// Leq reports T ≤ T': every row of t maps to a row of o with the same tag
// and a superset dv-set.
func Leq(t, o T) bool {
	for _, r := range t {
		ok := false
		for _, x := range o {
			if x.Tag == r.Tag && r.DVs.SubsetOf(x.DVs) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Lt reports T < T' (strictly weaker).
func Lt(t, o T) bool { return Leq(t, o) && !Leq(o, t) }

// Equiv reports T ≡ T'.
func Equiv(t, o T) bool { return Leq(t, o) && Leq(o, t) }

// DVsIn returns the set of columns in which some row of t has a dv.
func (t T) DVsIn() attrset.Set {
	var s attrset.Set
	for _, r := range t {
		s = s.Union(r.DVs)
	}
	return s
}

// Format renders the tableau with scheme names, e.g. "{CT:C T} {TD:T D}".
func (t T) Format(s *schema.Schema) string {
	parts := make([]string, len(t))
	for i, r := range t {
		parts[i] = fmt.Sprintf("{%s:%s}", s.Name(r.Tag), s.U.Format(r.DVs, " "))
	}
	return strings.Join(parts, " ")
}

// Valuation is an assignment of values to distinguished variables (keyed by
// column) witnessing that a tableau maps into a state.
type Valuation map[int]relation.Value

// FindValuation searches for a valuation from the tableau to the state that
// agrees with the partial assignment anchor (column → required dv value):
// a choice of values for the dvs, extending anchor, such that every row
// (i, S) matches some tuple of the state's i-th relation on the columns
// S ∩ R_i. Nondistinguished variables are unconstrained and need no
// assignment. The search backtracks over rows (tableaux here are tiny);
// each row's candidates come from a hash probe on its already-bound dv
// columns (relation.Instance.MatchingRows), so on an immutable state —
// e.g. the engine snapshots the window-query evaluator reads — a probe is
// O(1) instead of a scan of the relation, and candidate rows are read in
// place from the column arenas without materializing tuples.
func FindValuation(t T, st *relation.State, anchor Valuation) (Valuation, bool) {
	assign := make(Valuation, len(anchor))
	for k, v := range anchor {
		assign[k] = v
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(t) {
			return true
		}
		row := t[i]
		inst := st.Insts[row.Tag]
		cols := st.Schema.Attrs(row.Tag).Attrs()
		// Split the row's dv columns into bound ones (they form the probe
		// key) and free ones (bound by the candidate tuple).
		var probeCols []int
		var probeVals []relation.Value
		type free struct{ j, a int }
		var frees []free
		for j, a := range cols {
			if !row.DVs.Has(a) {
				continue
			}
			if v, bound := assign[a]; bound {
				probeCols = append(probeCols, j)
				probeVals = append(probeVals, v)
			} else {
				frees = append(frees, free{j: j, a: a})
			}
		}
		for _, s := range inst.MatchingRows(probeCols, probeVals) {
			for _, f := range frees {
				assign[f.a] = inst.At(s, f.j)
			}
			if rec(i + 1) {
				return true
			}
			for _, f := range frees {
				delete(assign, f.a)
			}
		}
		return false
	}
	if rec(0) {
		return assign, true
	}
	return nil, false
}
