package tableau

import (
	"testing"

	"indep/internal/attrset"
	"indep/internal/relation"
	"indep/internal/schema"
)

func TestAddDedupAndSort(t *testing.T) {
	var tb T
	tb = tb.Add(Row{Tag: 1, DVs: attrset.Of(0, 1)})
	tb = tb.Add(Row{Tag: 0, DVs: attrset.Of(2)})
	tb = tb.Add(Row{Tag: 1, DVs: attrset.Of(0, 1)})
	if len(tb) != 2 {
		t.Fatalf("len = %d", len(tb))
	}
	if tb[0].Tag != 0 {
		t.Fatal("not sorted by tag")
	}
	if !tb.Has(Row{Tag: 0, DVs: attrset.Of(2)}) {
		t.Fatal("Has wrong")
	}
}

func TestLeqBasics(t *testing.T) {
	a := T{}.Add(Row{Tag: 0, DVs: attrset.Of(0)})
	b := T{}.Add(Row{Tag: 0, DVs: attrset.Of(0, 1)})
	if !Leq(a, b) || Leq(b, a) {
		t.Fatal("subset row must be ≤")
	}
	if !Lt(a, b) || Lt(b, a) {
		t.Fatal("Lt wrong")
	}
	// Different tags never match.
	c := T{}.Add(Row{Tag: 1, DVs: attrset.Of(0, 1)})
	if Leq(a, c) {
		t.Fatal("tag mismatch must block ≤")
	}
	// Empty tableau is weakest.
	if !Leq(T{}, a) || Leq(a, T{}) {
		t.Fatal("empty tableau must be strictly weakest")
	}
}

func TestEquivWithDifferentRowCounts(t *testing.T) {
	// {(0, AB)} ≡ {(0, A), (0, AB)}: the smaller row maps into the larger.
	big := T{}.Add(Row{Tag: 0, DVs: attrset.Of(0, 1)})
	both := big.Add(Row{Tag: 0, DVs: attrset.Of(0)})
	if !Equiv(big, both) {
		t.Fatal("expected equivalent")
	}
}

func TestDVsIn(t *testing.T) {
	tb := T{}.Add(Row{Tag: 0, DVs: attrset.Of(0)}).Add(Row{Tag: 1, DVs: attrset.Of(2)})
	if tb.DVsIn() != attrset.Of(0, 2) {
		t.Fatal("DVsIn wrong")
	}
}

func TestUnionValueSemantics(t *testing.T) {
	a := T{}.Add(Row{Tag: 0, DVs: attrset.Of(0)})
	b := T{}.Add(Row{Tag: 1, DVs: attrset.Of(1)})
	u := a.Union(b)
	if len(a) != 1 || len(b) != 1 || len(u) != 2 {
		t.Fatal("union must not mutate operands")
	}
}

func TestFindValuation(t *testing.T) {
	s := schema.MustParse("CT(C,T); TD(T,D)")
	st := relation.NewState(s)
	st.Add("CT", relation.Tuple{1, 10}) // C=1 T=10
	st.Add("TD", relation.Tuple{10, 5}) // T=10 D=5
	// Tableau requiring a CT row with dvs C,T and a TD row with dvs T,D.
	tb := T{}.
		Add(Row{Tag: 0, DVs: s.U.Set("C", "T")}).
		Add(Row{Tag: 1, DVs: s.U.Set("T", "D")})
	v, ok := FindValuation(tb, st, Valuation{s.U.MustIndex("C"): 1})
	if !ok {
		t.Fatal("valuation must exist")
	}
	if v[s.U.MustIndex("D")] != 5 || v[s.U.MustIndex("T")] != 10 {
		t.Fatalf("valuation = %v", v)
	}
	// Anchoring C to a non-existent value kills it.
	if _, ok := FindValuation(tb, st, Valuation{s.U.MustIndex("C"): 9}); ok {
		t.Fatal("valuation must not exist for C=9")
	}
}

func TestFindValuationBacktracks(t *testing.T) {
	s := schema.MustParse("CT(C,T); TD(T,D)")
	st := relation.NewState(s)
	// Two CT tuples with the same C; only the second joins with TD.
	st.Add("CT", relation.Tuple{1, 10})
	st.Add("CT", relation.Tuple{1, 20})
	st.Add("TD", relation.Tuple{20, 5})
	tb := T{}.
		Add(Row{Tag: 0, DVs: s.U.Set("C", "T")}).
		Add(Row{Tag: 1, DVs: s.U.Set("T", "D")})
	v, ok := FindValuation(tb, st, Valuation{s.U.MustIndex("C"): 1})
	if !ok || v[s.U.MustIndex("T")] != 20 {
		t.Fatalf("backtracking failed: ok=%v v=%v", ok, v)
	}
}

func TestFindValuationEmptyTableau(t *testing.T) {
	s := schema.MustParse("CT(C,T)")
	st := relation.NewState(s)
	if _, ok := FindValuation(T{}, st, nil); !ok {
		t.Fatal("empty tableau always has a valuation")
	}
}
