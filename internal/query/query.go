// Package query evaluates window queries — the paper's X-total projections
// of the representative instance — over immutable database states.
//
// The representative instance of a state p is the chase of the padded
// universal relation I(p); the window [X] for an attribute set X is the
// projection onto X of its X-total rows (rows whose X columns all resolved
// to constants). Windows are the natural query semantics for weak-instance
// databases: they answer "what does the state, plus everything the
// dependencies force, say about X?" without inventing values.
//
// The payoff of independence is that windows are computable
// relation-by-relation. For an independent schema, each accepted Loop run
// leaves behind extension data (independence.AcceptedRun): any tuple of r_l
// extends to a universal tuple whose determined attributes are computed by
// tiny tableau valuations (Theorem 5), so the window is the union, over
// relations, of the X-total tuple extensions — local joins, no global
// chase. For any other schema the Evaluator falls back to chasing the
// padded state, which is the honest exponential-worst-case cost the paper's
// Theorem 1 imposes.
//
// Plans are cached per attribute set: deciding which relations can
// contribute to a window (and materializing their extension data) happens
// once per distinct X, so repeated windows skip straight to evaluation.
// Evaluators are safe for concurrent use; evaluation never mutates the
// state it reads, so callers may share one immutable snapshot across any
// number of concurrent Window calls.
package query

import (
	"fmt"
	"sync"
	"sync/atomic"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Evaluator answers window queries for one schema. Create with
// NewEvaluator; all methods are safe for concurrent use.
type Evaluator struct {
	s    *schema.Schema
	fds  fd.List
	caps chase.Caps

	// Fast path (independent schemas): cover is the embedded cover the
	// decision procedure extracted; runs[l] holds scheme l's extension data,
	// built lazily on first use and immutable afterwards.
	fast  bool
	cover infer.AssignedList

	// Chase path: jd reports whether the fallback chase must apply the
	// join-dependency rule (false when every FD is embedded, per Lemma 4).
	jd bool

	mu    sync.Mutex
	runs  []*independence.AcceptedRun
	plans map[attrset.Set]*Plan

	queries    atomic.Uint64
	planHits   atomic.Uint64
	fastEvals  atomic.Uint64
	chaseEvals atomic.Uint64
}

// Stats is a point-in-time view of an evaluator's counters.
type Stats struct {
	Queries    uint64 // Window calls
	PlanHits   uint64 // queries answered from the plan cache
	FastEvals  uint64 // windows evaluated relation-by-relation
	ChaseEvals uint64 // windows evaluated by the fallback chase
}

// NewEvaluator builds an evaluator from an independence analysis result
// (the same Result the engine and the public Analysis are built from).
func NewEvaluator(s *schema.Schema, fds fd.List, res *independence.Result, caps chase.Caps) *Evaluator {
	ev := &Evaluator{
		s:     s,
		fds:   fds,
		caps:  caps,
		plans: make(map[attrset.Set]*Plan),
	}
	if res.Independent {
		ev.fast = true
		ev.cover = res.Cover
		ev.runs = make([]*independence.AcceptedRun, s.Size())
	} else {
		ev.jd = !infer.AllEmbedded(s, fds)
	}
	return ev
}

// Fast reports whether windows evaluate relation-by-relation (independent
// schema) rather than through the serialized chase.
func (ev *Evaluator) Fast() bool { return ev.fast }

// Stats returns the evaluator's operation counters.
func (ev *Evaluator) Stats() Stats {
	return Stats{
		Queries:    ev.queries.Load(),
		PlanHits:   ev.planHits.Load(),
		FastEvals:  ev.fastEvals.Load(),
		ChaseEvals: ev.chaseEvals.Load(),
	}
}

// Plan is a compiled window query for one attribute set: which relations
// can contribute tuples and, for the fast path, their extension data. Plans
// are immutable and cached by the evaluator, so repeated windows over the
// same attribute set skip the closure and join-order computation.
type Plan struct {
	// X is the window attribute set the plan answers.
	X attrset.Set
	// Fast reports whether the plan evaluates relation-by-relation.
	Fast bool
	// Schemes lists the relations that can contribute: scheme l is relevant
	// iff every attribute of X is available in R_l⁺ (its extensions can
	// determine all of X). Chase plans leave it nil — the chase always
	// consults the whole state.
	Schemes []int

	// runs[i] is the extension data for Schemes[i]; local[i] reports that
	// X ⊆ R_l, so the contribution is the plain projection π_X(r_l) and no
	// valuations are needed.
	runs  []*independence.AcceptedRun
	local []bool
}

// Consults returns every scheme an evaluation of the plan may read: the
// contributing schemes plus, for each non-local contributor, the schemes its
// extension tableaux take valuations against (ExtendTuple reads them for all
// available attributes, not just X). Chase plans return nil — the chase
// always consults the whole state. The result is sorted and duplicate-free;
// it is the gather set a cluster router must fetch before evaluating the
// window away from the data.
func (p *Plan) Consults() []int {
	if !p.Fast {
		return nil
	}
	var seen attrset.Set
	for i, l := range p.Schemes {
		seen.Add(l)
		if !p.local[i] {
			for _, c := range p.runs[i].Consulted() {
				seen.Add(c)
			}
		}
	}
	return seen.Attrs()
}

// run returns scheme l's extension data, building it on first use. For an
// independent schema The Loop accepts every scheme, so a rejection here is
// impossible by Theorem 2; it is reported as an error rather than a panic
// because the evaluator may outlive bugs elsewhere.
func (ev *Evaluator) run(l int) (*independence.AcceptedRun, error) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if ev.runs[l] == nil {
		run, rej := independence.PrepareExtension(ev.s, ev.cover, l)
		if rej != nil {
			return nil, fmt.Errorf("query: Loop rejected scheme %s of an independent schema: %v",
				ev.s.Name(l), rej)
		}
		ev.runs[l] = run
	}
	return ev.runs[l], nil
}

// MaxCachedPlans bounds the plan cache. Attribute sets come straight from
// clients (GET /v1/window), so an unbounded cache would let a scan of
// distinct subsets grow the daemon's memory without limit; past the cap,
// new attribute sets are still answered, just re-planned per query.
const MaxCachedPlans = 4096

// Plan compiles (or fetches from cache) the plan for the window [x]. The
// boolean reports a cache hit.
func (ev *Evaluator) Plan(x attrset.Set) (*Plan, bool, error) {
	if x.IsEmpty() {
		return nil, false, fmt.Errorf("query: empty window attribute set")
	}
	if !x.SubsetOf(ev.s.U.All()) {
		return nil, false, fmt.Errorf("query: window attributes outside the universe")
	}
	ev.mu.Lock()
	if p, ok := ev.plans[x]; ok {
		ev.mu.Unlock()
		ev.planHits.Add(1)
		return p, true, nil
	}
	ev.mu.Unlock()

	p := &Plan{X: x, Fast: ev.fast}
	if ev.fast {
		for l := range ev.s.Rels {
			run, err := ev.run(l)
			if err != nil {
				return nil, false, err
			}
			if !x.SubsetOf(run.Available()) {
				continue // no tuple of r_l can be X-total in its extension
			}
			p.Schemes = append(p.Schemes, l)
			p.runs = append(p.runs, run)
			p.local = append(p.local, x.SubsetOf(ev.s.Attrs(l)))
		}
	}
	ev.mu.Lock()
	if prev, ok := ev.plans[x]; ok { // raced with another planner
		p = prev
	} else if len(ev.plans) < MaxCachedPlans {
		ev.plans[x] = p
	}
	ev.mu.Unlock()
	return p, false, nil
}

// Result is the outcome of one window evaluation.
type Result struct {
	// X is the window attribute set.
	X attrset.Set
	// Rows is the window: an instance over X holding the X-total projection
	// of the representative instance.
	Rows *relation.Instance
	// Fast reports relation-by-relation evaluation (no chase).
	Fast bool
	// PlanCached reports that the plan came from the cache.
	PlanCached bool
	// Plan is the compiled plan the evaluation executed, for EXPLAIN.
	Plan *Plan
}

// Window computes the window [x] over the state. The state must be
// immutable for the duration of the call (engine snapshots are); it is
// never mutated. For a non-independent schema the fallback chase can
// exhaust its budget (chase.ErrBudget) or, if the state does not satisfy
// the dependencies, report the contradiction — maintained states never do.
func (ev *Evaluator) Window(st *relation.State, x attrset.Set) (*Result, error) {
	ev.queries.Add(1)
	plan, cached, err := ev.Plan(x)
	if err != nil {
		return nil, err
	}
	var rows *relation.Instance
	if plan.Fast {
		ev.fastEvals.Add(1)
		rows = evalFast(plan, st)
	} else {
		ev.chaseEvals.Add(1)
		rows, err = ev.evalChase(st, x)
		if err != nil {
			return nil, err
		}
	}
	return &Result{X: x, Rows: rows, Fast: plan.Fast, PlanCached: cached, Plan: plan}, nil
}

// RelScan is one relation an executed plan consulted, with the number of
// tuples it scanned.
type RelScan struct {
	Relation string
	Rows     int
}

// Explain describes the executed plan of one window evaluation against the
// state it ran over: the chosen mode, whether the plan came from the cache,
// which relations contributed (with per-relation rows scanned), and — on
// the fast path — which relations the planner pruned because the window is
// not a subset of their extension closure (Available()).
type Explain struct {
	Mode       string // "fast" (Theorem 5 extension joins) or "chase"
	PlanCached bool
	Relations  []RelScan
	Pruned     []string
}

// Explain reconstructs the executed plan of res over st. The chase mode
// consults the whole padded state, so every relation is listed and nothing
// is pruned.
func (ev *Evaluator) Explain(res *Result, st *relation.State) *Explain {
	ex := &Explain{PlanCached: res.PlanCached}
	if res.Fast {
		ex.Mode = "fast"
		member := make([]bool, ev.s.Size())
		for _, l := range res.Plan.Schemes {
			member[l] = true
			ex.Relations = append(ex.Relations, RelScan{Relation: ev.s.Name(l), Rows: st.Insts[l].Len()})
		}
		for l := 0; l < ev.s.Size(); l++ {
			if !member[l] {
				ex.Pruned = append(ex.Pruned, ev.s.Name(l))
			}
		}
		return ex
	}
	ex.Mode = "chase"
	for l := 0; l < ev.s.Size(); l++ {
		ex.Relations = append(ex.Relations, RelScan{Relation: ev.s.Name(l), Rows: st.Insts[l].Len()})
	}
	return ex
}

// evalFast is the independent-schema window: the union over relevant
// relations of the X-total extensions of their tuples (Theorem 5). When X
// is embedded in the scheme the extension's X-projection is the tuple
// itself, so the contribution collapses to a projection — computed directly
// into the output, with one reused scratch tuple probing for duplicates
// before anything is cloned.
func evalFast(p *Plan, st *relation.State) *relation.Instance {
	out := relation.NewInstance(p.X)
	cols := p.X.Attrs()
	proj := make(relation.Tuple, len(cols))
	var src [][]relation.Value
	var scratch relation.Tuple
	for i, l := range p.Schemes {
		if p.local[i] {
			// Stream the projected columns contiguously: one arena slice per
			// output column, walked in slot order with no per-row object.
			inst := st.Insts[l]
			colPos := relation.ProjectionCols(inst.Attrs, p.X)
			src = src[:0]
			for _, c := range colPos {
				src = append(src, inst.Col(c))
			}
			for s, alive := range inst.LiveMask() {
				if !alive {
					continue
				}
				for j := range src {
					proj[j] = src[j][s]
				}
				out.Add(proj)
			}
			continue
		}
		run := p.runs[i]
		inst := st.Insts[l]
		for s, alive := range inst.LiveMask() {
			if !alive {
				continue
			}
			scratch = inst.AppendRow(scratch[:0], int32(s))
			ext, determined := run.ExtendTuple(st, scratch)
			if !p.X.SubsetOf(determined) {
				continue
			}
			for j, a := range cols {
				proj[j] = ext[a]
			}
			out.Add(proj)
		}
	}
	return out
}

// evalChase is the general window: chase the padded state to the
// representative instance, then take the X-total projection.
func (ev *Evaluator) evalChase(st *relation.State, x attrset.Set) (*relation.Instance, error) {
	e := chase.NewEngine(ev.s.U)
	e.PadState(st)
	var jdSchema *schema.Schema
	if ev.jd {
		jdSchema = ev.s
	}
	if err := e.Chase(ev.fds, jdSchema, ev.caps); err != nil {
		return nil, err
	}
	return e.TotalProjection(x), nil
}
