package query

import (
	"math/rand"
	"strings"
	"testing"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
	"indep/internal/workload"
)

// newEvaluator decides independence and builds an evaluator, failing the
// test on analysis errors.
func newEvaluator(t *testing.T, s *schema.Schema, fds fd.List) *Evaluator {
	t.Helper()
	res, err := independence.Decide(s, fds)
	if err != nil {
		t.Fatal(err)
	}
	return NewEvaluator(s, fds, res, chase.DefaultCaps)
}

// oracleWindow computes the window by the definition: chase the padded
// state to the representative instance, take the X-total projection.
func oracleWindow(t *testing.T, s *schema.Schema, fds fd.List, st *relation.State, x attrset.Set) *relation.Instance {
	t.Helper()
	e := chase.NewEngine(s.U)
	e.PadState(st)
	var jd *schema.Schema
	if !infer.AllEmbedded(s, fds) {
		jd = s
	}
	if err := e.Chase(fds, jd, chase.DefaultCaps); err != nil {
		t.Fatal(err)
	}
	return e.TotalProjection(x)
}

// sameInstance reports whether two instances hold the same tuple set.
func sameInstance(a, b *relation.Instance) bool {
	if a.Attrs != b.Attrs || a.Len() != b.Len() {
		return false
	}
	for _, t := range a.Rows() {
		if !b.Has(t) {
			return false
		}
	}
	return true
}

// example2State builds a satisfying state over the paper's Example 2
// schema CT(C,T); CS(C,S); CHR(C,H,R).
func example2State(s *schema.Schema) *relation.State {
	st := relation.NewState(s)
	st.AddNamed("CT", map[string]string{"C": "cs101", "T": "jones"})
	st.AddNamed("CT", map[string]string{"C": "cs102", "T": "curie"})
	st.AddNamed("CS", map[string]string{"C": "cs101", "S": "ada"})
	st.AddNamed("CS", map[string]string{"C": "cs101", "S": "bob"})
	st.AddNamed("CS", map[string]string{"C": "cs999", "S": "eve"})
	st.AddNamed("CHR", map[string]string{"C": "cs101", "H": "mon9", "R": "r12"})
	return st
}

func TestWindowIndependentFastPath(t *testing.T) {
	s, fds := workload.Example2()
	ev := newEvaluator(t, s, fds)
	if !ev.Fast() {
		t.Fatal("Example 2 is independent; evaluator must take the fast path")
	}
	st := example2State(s)

	u := s.U
	cases := []struct {
		attrs string
		want  int
	}{
		{"C T", 2},   // local projection of CT
		{"C S", 3},   // local projection of CS
		{"C S T", 2}, // extension join: eve's cs999 has no teacher
		{"S T", 2},   // ada and bob both map to jones; eve has no teacher
		{"C H R T", 1},
		{"T", 2},
	}
	for _, c := range cases {
		x := u.Set(strings.Fields(c.attrs)...)
		res, err := ev.Window(st, x)
		if err != nil {
			t.Fatalf("window [%s]: %v", c.attrs, err)
		}
		if !res.Fast {
			t.Fatalf("window [%s] should be fast", c.attrs)
		}
		if res.Rows.Len() != c.want {
			t.Fatalf("window [%s] = %d rows, want %d", c.attrs, res.Rows.Len(), c.want)
		}
		if oracle := oracleWindow(t, s, fds, st, x); !sameInstance(res.Rows, oracle) {
			t.Fatalf("window [%s] disagrees with the chase oracle:\nfast: %v\noracle: %v",
				c.attrs, res.Rows.Rows(), oracle.Rows())
		}
	}
}

// TestWindowMatchesOracleRandom cross-checks the fast path against the
// chase oracle over random satisfying states of independent schemas and
// random window attribute sets.
func TestWindowMatchesOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	schemas := []func() (*schema.Schema, fd.List){workload.Example2, workload.University}
	for _, mk := range schemas {
		s, fds := mk()
		ev := newEvaluator(t, s, fds)
		if !ev.Fast() {
			t.Fatalf("%s: expected independent schema", s)
		}
		for round := 0; round < 10; round++ {
			st := workload.LocalState(r, s, fds, 4, 3, 200)
			if st == nil {
				continue // no locally satisfying state found this round
			}
			for k := 0; k < 8; k++ {
				var x attrset.Set
				n := s.U.Size()
				for x.IsEmpty() {
					for a := 0; a < n; a++ {
						if r.Intn(n) < 2 {
							x.Add(a)
						}
					}
				}
				res, err := ev.Window(st, x)
				if err != nil {
					t.Fatalf("window: %v", err)
				}
				oracle := oracleWindow(t, s, fds, st, x)
				if !sameInstance(res.Rows, oracle) {
					t.Fatalf("%s: window [%s] over\n%s\nfast %v != oracle %v",
						s, s.U.Format(x, " "), st, res.Rows.Rows(), oracle.Rows())
				}
			}
		}
	}
}

// TestWindowChaseFallback evaluates a window that only the global chase
// can answer: A -> C is not embedded, so the representative instance gains
// the (a,b,c) row only through the join-dependency rule.
func TestWindowChaseFallback(t *testing.T) {
	s := schema.MustParse("AB(A,B); BC(B,C)")
	fds := fd.MustParse(s.U, "A -> C")
	ev := newEvaluator(t, s, fds)
	if ev.Fast() {
		t.Fatal("A -> C is not cover-embedded; evaluator must fall back to the chase")
	}
	st := relation.NewState(s)
	st.AddNamed("AB", map[string]string{"A": "a1", "B": "b1"})
	st.AddNamed("BC", map[string]string{"B": "b1", "C": "c1"})
	st.AddNamed("AB", map[string]string{"A": "a2", "B": "b2"}) // dangling: no BC row

	x := s.U.Set("A", "C")
	res, err := ev.Window(st, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fast {
		t.Fatal("expected chase evaluation")
	}
	if res.Rows.Len() != 1 {
		t.Fatalf("window [A C] = %v, want exactly (a1,c1)", res.Rows.Rows())
	}
	want := relation.Tuple{st.Dict.Value("a1"), st.Dict.Value("c1")}
	if !res.Rows.Has(want) {
		t.Fatalf("window [A C] = %v, want %v", res.Rows.Rows(), want)
	}
}

// TestWindowNonIndependentLoopRejected exercises the fallback on a schema
// rejected by The Loop (Example 1): embedded FDs only, so the chase runs
// without the JD rule, and windows still answer.
func TestWindowNonIndependentLoopRejected(t *testing.T) {
	s, fds := workload.Example1()
	ev := newEvaluator(t, s, fds)
	if ev.Fast() {
		t.Fatal("Example 1 is not independent")
	}
	st := relation.NewState(s)
	st.AddNamed("CD", map[string]string{"C": "CS402", "D": "CS"})
	st.AddNamed("CT", map[string]string{"C": "CS402", "T": "Jones"})
	st.AddNamed("TD", map[string]string{"T": "Jones", "D": "CS"})

	res, err := ev.Window(st, s.U.Set("C", "T", "D"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 1 {
		t.Fatalf("window [C T D] = %v", res.Rows.Rows())
	}
	if oracle := oracleWindow(t, s, fds, st, s.U.Set("C", "T", "D")); !sameInstance(res.Rows, oracle) {
		t.Fatal("fallback disagrees with the oracle (they should be the same computation)")
	}
}

// TestWindowInconsistentStateReported: the chase fallback reports a
// contradiction instead of inventing an answer for an unsatisfying state.
func TestWindowInconsistentStateReported(t *testing.T) {
	st, fds := workload.Example1State() // locally satisfying, globally not
	ev := newEvaluator(t, st.Schema, fds)
	if _, err := ev.Window(st, st.Schema.U.Set("C", "D")); err == nil {
		t.Fatal("window over an unsatisfying state should report the contradiction")
	}
}

func TestPlanCacheAndStats(t *testing.T) {
	s, fds := workload.Example2()
	ev := newEvaluator(t, s, fds)
	st := example2State(s)
	x := s.U.Set("C", "S", "T")

	res, err := ev.Window(st, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCached {
		t.Fatal("first query cannot hit the plan cache")
	}
	res, err = ev.Window(st, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanCached {
		t.Fatal("second query must hit the plan cache")
	}
	stats := ev.Stats()
	if stats.Queries != 2 || stats.PlanHits != 1 || stats.FastEvals != 2 || stats.ChaseEvals != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPlanRelevance(t *testing.T) {
	s, fds := workload.Example2()
	ev := newEvaluator(t, s, fds)
	// H is only in CHR; windows mentioning H can only draw from CHR
	// extensions (CT and CS cannot determine H), so the plan must prune
	// the other schemes.
	p, _, err := ev.Plan(s.U.Set("C", "H"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schemes) != 1 || s.Name(p.Schemes[0]) != "CHR" {
		t.Fatalf("plan schemes for [C H]: %v", p.Schemes)
	}
	// T is determined by C, so every scheme can contribute to [C T].
	p, _, err = ev.Plan(s.U.Set("C", "T"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schemes) != 3 {
		t.Fatalf("plan schemes for [C T]: %v", p.Schemes)
	}
}

func TestWindowErrors(t *testing.T) {
	s, fds := workload.Example2()
	ev := newEvaluator(t, s, fds)
	st := relation.NewState(s)
	if _, err := ev.Window(st, attrset.Set{}); err == nil {
		t.Fatal("empty window attribute set must be rejected")
	}
	var outside attrset.Set
	outside.Add(s.U.Size()) // one past the universe
	if _, err := ev.Window(st, outside); err == nil {
		t.Fatal("attributes outside the universe must be rejected")
	}
}
