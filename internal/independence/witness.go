package independence

import (
	"sort"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

// WitnessKind names the construction used to produce a counterexample
// state.
type WitnessKind string

const (
	// WitnessLemma3 is the two-tuple state showing that a schema that does
	// not embed a cover of the implied FDs is not independent.
	WitnessLemma3 WitnessKind = "lemma-3"
	// WitnessLemma7 is the derivation-image state showing that a
	// cross-relation nonredundant derivation breaks independence.
	WitnessLemma7 WitnessKind = "lemma-7"
	// WitnessTheorem4 is the σ-image of T(X) ∪ T(A) ∪ {R_l-row} built at a
	// Loop rejection.
	WitnessTheorem4 WitnessKind = "theorem-4"
)

// Lemma3Witness builds the paper's Lemma 3 counterexample for an FD
// f: X → A of F that is not implied by the embedded FDs G|D: a two-tuple
// universal instance agreeing exactly on cl_{G|D}(X), projected onto the
// schema. The state is locally satisfying but violates f ∈ Σ globally.
func Lemma3Witness(s *schema.Schema, fds fd.List, f fd.FD) *relation.State {
	closed, _ := infer.ClosureEmbedded(s, fds, f.LHS)
	u := relation.NewInstance(s.U.All())
	n := s.U.Size()
	t1 := make(relation.Tuple, n)
	t2 := make(relation.Tuple, n)
	fresh := relation.Value(2)
	for c := 0; c < n; c++ {
		t1[c] = 0
		if closed.Has(c) {
			t2[c] = 0
		} else {
			t2[c] = fresh
			fresh++
		}
	}
	u.Add(t1)
	u.Add(t2)
	return relation.ProjectOnto(s, u)
}

// Lemma7Witness builds the paper's Lemma 7 counterexample from a
// nonredundant derivation of (R_i − A) → A that uses only FDs assigned to
// other schemes. Relation r_i holds a single tuple that is 0 everywhere
// except 1 at A; every derivation FD Y → B contributes to its home scheme
// R_j a tuple with 0s exactly on cl_F(Y) ∩ R_j and fresh constants
// elsewhere (a closed zero-set, so Lemma 6 gives local satisfaction).
func Lemma7Witness(s *schema.Schema, cover infer.AssignedList, schemeIdx, attr int, deriv fd.List) *relation.State {
	st := relation.NewState(s)
	full := cover.List()

	// The single tuple of r_i.
	attrs := s.Attrs(schemeIdx).Attrs()
	ti := make(relation.Tuple, len(attrs))
	for j, a := range attrs {
		if a == attr {
			ti[j] = 1
		} else {
			ti[j] = 0
		}
	}
	st.Insts[schemeIdx].Add(ti)

	fresh := relation.Value(2)
	for _, g := range deriv {
		home := homeScheme(cover, schemeIdx, g)
		if home < 0 {
			continue // defensive: derivation FD not found in the cover
		}
		zeros := fd.Closure(full, g.LHS).Intersect(s.Attrs(home))
		cols := s.Attrs(home).Attrs()
		t := make(relation.Tuple, len(cols))
		for j, a := range cols {
			if zeros.Has(a) {
				t[j] = 0
			} else {
				t[j] = fresh
				fresh++
			}
		}
		st.Insts[home].Add(t)
	}
	return st
}

// homeScheme finds an assignment of g to a scheme other than exclude: the
// cover FD with the same LHS whose RHS covers g's.
func homeScheme(cover infer.AssignedList, exclude int, g fd.FD) int {
	for _, a := range cover {
		if a.Scheme != exclude && a.LHS == g.LHS && g.RHS.SubsetOf(a.RHS) {
			return a.Scheme
		}
	}
	return -1
}

// Theorem4Witness builds the counterexample state of Theorem 4 (Case 1;
// Case 2 reduces to it) from a Loop rejection: the σ-image of
// T = T(X) ∪ T(A) ∪ {all-dv row over R_l tagged R_l}, where σ sends every
// ndv to a fresh constant and every dv to 0 — except the dvs of the
// X*_new columns of the X*-row of T(X), which go to 1.
func Theorem4Witness(s *schema.Schema, rej *Rejection) *relation.State {
	if rej.Attr < 0 {
		return nil
	}
	type rowKey struct {
		tag int
		dvs attrset.Set
	}
	starRow := rowKey{tag: rej.Scheme, dvs: rej.Star}
	rows := make(map[rowKey]bool)
	for _, r := range rej.TabLHS {
		rows[rowKey{r.Tag, r.DVs}] = true
	}
	for _, r := range rej.TabAttr {
		rows[rowKey{r.Tag, r.DVs}] = true
	}
	rows[rowKey{tag: rej.Analyzed, dvs: s.Attrs(rej.Analyzed)}] = true

	// Deterministic order.
	keys := make([]rowKey, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tag != keys[j].tag {
			return keys[i].tag < keys[j].tag
		}
		return attrset.Less(keys[i].dvs, keys[j].dvs)
	})

	st := relation.NewState(s)
	fresh := relation.Value(2)
	for _, k := range keys {
		cols := s.Attrs(k.tag).Attrs()
		t := make(relation.Tuple, len(cols))
		for j, a := range cols {
			switch {
			case k.dvs.Has(a) && k == starRow && rej.StarNew.Has(a):
				t[j] = 1
			case k.dvs.Has(a):
				t[j] = 0
			default:
				t[j] = fresh
				fresh++
			}
		}
		st.Insts[k.tag].Add(t)
	}
	return st
}
