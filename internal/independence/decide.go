package independence

import (
	"fmt"

	"indep/internal/fd"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Reason classifies the outcome of the decision procedure.
type Reason string

const (
	// ReasonIndependent: the schema is independent w.r.t. F ∪ {*D}.
	ReasonIndependent Reason = "independent"
	// ReasonNotCoverEmbedding: Theorem 2 condition (1) fails — D does not
	// embed a cover of the FDs implied by F ∪ {*D}.
	ReasonNotCoverEmbedding Reason = "not-cover-embedding"
	// ReasonLoopRejected: Theorem 2 condition (2) fails — The Loop rejected
	// the embedded cover.
	ReasonLoopRejected Reason = "loop-rejected"
)

// Result is the outcome of the independence decision procedure.
type Result struct {
	Independent bool
	Reason      Reason

	// Cover is the embedded cover H of the implied FDs, assigned to schemes
	// (the paper's F = ∪F_i). When the schema is independent, each F_i is a
	// cover of the full implied constraint set Σ_i of its relation — the
	// fact that makes fast single-relation maintenance sound.
	Cover infer.AssignedList

	// FailingFDs are the FDs of F that no embedded cover can derive
	// (cover-embedding failures), split to single-attribute RHS.
	FailingFDs fd.List

	// Rejection details the Loop failure, when Reason is ReasonLoopRejected.
	Rejection *Rejection

	// Witness, for a non-independent schema, is a database state that is
	// locally satisfying but globally unsatisfying, built by the
	// construction named in WitnessKind. Nil only if construction failed
	// (which the test suite treats as a bug).
	Witness     *relation.State
	WitnessKind WitnessKind
}

// Decide runs the paper's full decision procedure for independence of
// schema s with respect to fds ∪ {*D} (Theorem 2): the Section 3
// cover-embedding test with cover extraction, then The Loop on every
// scheme. The schema must validate.
func Decide(s *schema.Schema, fds fd.List) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := checkFDsInUniverse(s, fds); err != nil {
		return nil, err
	}

	cover, ok, failing := infer.ExtractCover(s, fds)
	if !ok {
		res := &Result{
			Reason:      ReasonNotCoverEmbedding,
			FailingFDs:  failing,
			Witness:     Lemma3Witness(s, fds, failing[0]),
			WitnessKind: WitnessLemma3,
		}
		return res, nil
	}
	res := DecideEmbedded(s, cover)
	return res, nil
}

// DecideEmbedded decides independence w.r.t. an embedded cover F = ∪F_i
// (Theorem 3: independence w.r.t. F, and w.r.t. F ∪ {*D}, coincide and are
// decided by The Loop). It also constructs the counterexample witness on
// rejection, preferring the Lemma 7 construction when a cross-relation
// derivation exists and the Theorem 4 construction otherwise.
func DecideEmbedded(s *schema.Schema, cover infer.AssignedList) *Result {
	accepted, rej := LoopAccepts(s, cover)
	if accepted {
		return &Result{Independent: true, Reason: ReasonIndependent, Cover: cover}
	}
	res := &Result{
		Reason:    ReasonLoopRejected,
		Cover:     cover,
		Rejection: rej,
	}
	// The Theorem 4 construction assumes no cross-relation derivations
	// (the hypothesis of Lemma 7 fails); otherwise use Lemma 7's state.
	if i, a, deriv, found := CrossDerivation(s, cover); found {
		res.Witness = Lemma7Witness(s, cover, i, a, deriv)
		res.WitnessKind = WitnessLemma7
	} else {
		res.Witness = Theorem4Witness(s, rej)
		res.WitnessKind = WitnessTheorem4
	}
	return res
}

// DecideWithAssignment decides independence for a user-supplied embedded FD
// list, assigning each FD to the first scheme embedding it. It fails if
// some FD is not embedded. This is the Theorem 3 entry point for callers
// who already hold an embedded set.
func DecideWithAssignment(s *schema.Schema, fds fd.List) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cover, err := infer.AssignEmbedded(s, fds)
	if err != nil {
		return nil, err
	}
	return DecideEmbedded(s, cover), nil
}

func checkFDsInUniverse(s *schema.Schema, fds fd.List) error {
	all := s.U.All()
	for _, f := range fds {
		if !f.Attrs().SubsetOf(all) {
			return fmt.Errorf("independence: FD mentions attributes outside the universe")
		}
		if f.LHS.IsEmpty() || f.RHS.IsEmpty() {
			return fmt.Errorf("independence: FD with empty side")
		}
	}
	return nil
}
