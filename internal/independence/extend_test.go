package independence

import (
	"math/rand"
	"testing"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

func exampleTwo(t *testing.T) (*schema.Schema, fd.List, infer.AssignedList) {
	t.Helper()
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	cover, ok, _ := infer.ExtractCover(s, fds)
	if !ok {
		t.Fatal("Example 2 embeds its cover")
	}
	return s, fds, cover
}

func TestPrepareExtensionAcceptsExample2(t *testing.T) {
	s, _, cover := exampleTwo(t)
	for l := range s.Rels {
		ar, rej := PrepareExtension(s, cover, l)
		if rej != nil {
			t.Fatalf("Example 2 must accept for %s: %v", s.Name(l), rej)
		}
		if ar.Scheme() != l {
			t.Fatal("Scheme() wrong")
		}
		if !s.Attrs(l).SubsetOf(ar.Available()) {
			t.Fatal("scheme attributes must be available")
		}
	}
}

func TestPrepareExtensionRejectsExample1(t *testing.T) {
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds := fd.MustParse(s.U, "C -> D; C -> T; T -> D")
	cover, _, _ := infer.ExtractCover(s, fds)
	if _, rej := PrepareExtension(s, cover, s.IndexOf("CD")); rej == nil {
		t.Fatal("Example 1 must reject")
	}
}

func TestExtendTupleComputesDeterminedValues(t *testing.T) {
	s, _, cover := exampleTwo(t)
	// Analyze CS; a CS tuple (C, S) determines T through the CT relation.
	cs := s.IndexOf("CS")
	ar, rej := PrepareExtension(s, cover, cs)
	if rej != nil {
		t.Fatal(rej)
	}
	st := relation.NewState(s)
	st.Add("CT", relation.Tuple{1, 42}) // course 1 taught by 42
	st.Add("CS", relation.Tuple{1, 7})  // student 7 takes course 1
	ext, determined := ar.ExtendTuple(st, relation.Tuple{1, 7})
	tIdx := s.U.MustIndex("T")
	if !determined.Has(tIdx) {
		t.Fatalf("T must be determined; determined = %s", s.U.Format(determined, " "))
	}
	if ext[tIdx] != 42 {
		t.Fatalf("ī[T] = %d, want 42", ext[tIdx])
	}
	// H and R are not determined by a CS tuple: placeholders are negative.
	for _, name := range []string{"H", "R"} {
		i := s.U.MustIndex(name)
		if determined.Has(i) || ext[i] >= 0 {
			t.Fatalf("%s must be undetermined (got %d)", name, ext[i])
		}
	}
}

func TestExtendTupleAgreesWithChase(t *testing.T) {
	// Lemma 10 / Theorem 5: the valuation-computed extension of a tuple
	// agrees with what the FD-chase of the padded state derives for that
	// tuple's row.
	s, fds, cover := exampleTwo(t)
	cs := s.IndexOf("CS")
	ar, rej := PrepareExtension(s, cover, cs)
	if rej != nil {
		t.Fatal(rej)
	}
	r := rand.New(rand.NewSource(30))
	for iter := 0; iter < 50; iter++ {
		st := relation.NewState(s)
		for i := 0; i < 3; i++ {
			c := relation.Value(r.Intn(3))
			st.Add("CT", relation.Tuple{c, c*10 + 100})
			st.Add("CHR", relation.Tuple{c, relation.Value(r.Intn(2)), c*100 + 1000})
		}
		target := relation.Tuple{relation.Value(r.Intn(3)), 7}
		st.Add("CS", target.Clone())
		// The state is locally satisfying by construction (T and R are
		// functions of C resp. CH).
		ext, determined := ar.ExtendTuple(st, target)

		// Chase the padded state and locate the CS row.
		e := chase.NewEngine(s.U)
		e.PadState(st)
		if err := e.ChaseFDs(fds.Split(), chase.DefaultCaps); err != nil {
			t.Fatal(err)
		}
		w := e.WeakInstance()
		csAttrs := s.Attrs(cs)
		var chasedRow relation.Tuple
		for _, row := range w.Rows() {
			match := true
			for j, a := range csAttrs.Attrs() {
				if row[a] != target[j] {
					match = false
					break
				}
			}
			if match {
				chasedRow = row
				break
			}
		}
		if chasedRow == nil {
			t.Fatal("chased CS row not found")
		}
		determined.ForEach(func(a int) bool {
			if chasedRow[a] >= 0 && chasedRow[a] != ext[a] {
				t.Fatalf("extension disagrees with chase at %s: %d vs %d",
					s.U.Name(a), ext[a], chasedRow[a])
			}
			return true
		})
	}
}

func TestCompleteYieldsSatisfyingState(t *testing.T) {
	// Completing a dangling tuple must keep the state locally satisfying
	// and, per Theorem 5's induction, not create contradictions.
	s, fds, cover := exampleTwo(t)
	cs := s.IndexOf("CS")
	ar, rej := PrepareExtension(s, cover, cs)
	if rej != nil {
		t.Fatal(rej)
	}
	st := relation.NewState(s)
	st.Add("CT", relation.Tuple{1, 42})
	st.Add("CS", relation.Tuple{1, 7}) // dangling: no CHR partner
	out := ar.Complete(st, relation.Tuple{1, 7})
	ok, _, err := chase.LocallySatisfies(out, fds, true, chase.DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("completed state must stay locally satisfying (err=%v):\n%s", err, out)
	}
	okG, err := chase.Satisfies(out, fds, true, chase.DefaultCaps)
	if err != nil || !okG {
		t.Fatalf("completed state must satisfy (err=%v):\n%s", err, out)
	}
	// The completed CS tuple now has join partners everywhere.
	if out.Insts[s.IndexOf("CHR")].Len() != 1 {
		t.Fatalf("CHR must have gained the extension row:\n%s", out)
	}
}
