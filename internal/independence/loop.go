// Package independence implements the paper's core contribution: the
// polynomial-time decision procedure for schema independence with respect
// to a set of functional dependencies and the join dependency of the
// database schema (Theorems 2–5), together with explicit counterexample
// states for every way a schema can fail to be independent.
//
// The decision procedure (Decide) follows Theorem 2:
//
//  1. Test that D embeds a cover H of the FDs implied by Σ = F ∪ {*D}
//     (Section 3, via internal/infer). Failure yields a Lemma 3 witness.
//  2. Run "The Loop" (Section 4) on H for every scheme R_l. A rejection
//     yields a Theorem 4 witness (or a Lemma 7 witness when the rejection
//     stems from a cross-relation derivation).
//
// Acceptance is exactly independence, and then each Σ_i is covered by the
// embedded FDs H_i assigned to R_i — which is what makes single-relation
// maintenance sound (internal/maintenance).
package independence

import (
	"fmt"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/infer"
	"indep/internal/schema"
	"indep/internal/tableau"
)

// lhsID identifies a left-hand side: the paper distinguishes appearances of
// the same attribute set as an l.h.s. of distinct schemes.
type lhsID struct {
	Scheme int
	Set    attrset.Set
}

// RejectSite says which line of The Loop rejected.
type RejectSite int

const (
	// RejectLine4 is the paper's line 4: an attribute of X*_new is already
	// available through a different (inequivalent) calculation.
	RejectLine4 RejectSite = iota
	// RejectLine5 is the paper's line 5: equivalent left-hand sides X ≡ Y
	// disagree on their newly computed attributes.
	RejectLine5
)

func (r RejectSite) String() string {
	if r == RejectLine4 {
		return "line 4"
	}
	return "line 5"
}

// Rejection captures everything needed to explain (and witness) a Loop
// rejection.
type Rejection struct {
	Site     RejectSite
	Analyzed int         // the scheme R_l being analyzed
	Scheme   int         // the scheme owning the rejected l.h.s.
	LHS      attrset.Set // the l.h.s. X picked at this iteration
	EquivLHS attrset.Set // line 5 only: the equivalent l.h.s. Y
	Attr     int         // the offending available attribute A
	Star     attrset.Set // X* (line 4) or Y* (line 5) local closure
	StarNew  attrset.Set // X*_new (line 4) or Y*−Y*_old (line 5)
	TabLHS   tableau.T   // T(X) (line 4) or T(Y) (line 5)
	TabAttr  tableau.T   // T(A)
}

// IterationTrace records one iteration of The Loop for diagnostics.
type IterationTrace struct {
	Scheme  int
	LHS     attrset.Set
	StarOld attrset.Set
	StarNew attrset.Set
	Equiv   []attrset.Set
	Weaker  []attrset.Set
}

// loopRun holds the state of one run of The Loop for a fixed scheme R_l.
type loopRun struct {
	s     *schema.Schema
	cover infer.AssignedList
	l     int

	lhss      []lhsID
	localClo  map[lhsID]attrset.Set // X* = closure of X under F_i
	available attrset.Set
	tAttr     map[int]tableau.T
	tLHS      map[lhsID]tableau.T
	hasTab    map[lhsID]bool
	processed map[lhsID]bool

	Trace []IterationTrace
}

// newLoopRun prepares a run of The Loop analyzing scheme l.
func newLoopRun(s *schema.Schema, cover infer.AssignedList, l int) *loopRun {
	r := &loopRun{
		s:         s,
		cover:     cover,
		l:         l,
		localClo:  make(map[lhsID]attrset.Set),
		tAttr:     make(map[int]tableau.T),
		tLHS:      make(map[lhsID]tableau.T),
		hasTab:    make(map[lhsID]bool),
		processed: make(map[lhsID]bool),
	}
	// Collect the left-hand sides of every scheme other than R_l (the paper
	// constructs tableaux only "for each l.h.s. X of each R_j (j ≠ l)").
	seen := make(map[lhsID]bool)
	for _, a := range cover {
		if a.Scheme == l {
			continue
		}
		if a.RHS.SubsetOf(a.LHS) {
			continue // trivial FDs induce no l.h.s.
		}
		id := lhsID{Scheme: a.Scheme, Set: a.LHS}
		if !seen[id] {
			seen[id] = true
			r.lhss = append(r.lhss, id)
			r.localClo[id] = fd.Closure(cover.ForScheme(a.Scheme), a.LHS)
		}
	}
	// Deterministic processing order.
	sortLHSIDs(r.lhss)
	// Initialization: the attributes of R_l are available with empty
	// tableaux.
	r.available = s.Attrs(l)
	r.available.ForEach(func(a int) bool {
		r.tAttr[a] = tableau.T{}
		return true
	})
	r.refreshTableaux()
	return r
}

func sortLHSIDs(ids []lhsID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if b.Scheme < a.Scheme || (b.Scheme == a.Scheme && attrset.Less(b.Set, a.Set)) {
				ids[j-1], ids[j] = b, a
			} else {
				break
			}
		}
	}
}

// refreshTableaux freezes T(X) for every l.h.s. that has just become
// available: T(X) = ∪_{A∈X} T(A) ∪ {X*-row}.
func (r *loopRun) refreshTableaux() {
	for _, id := range r.lhss {
		if r.hasTab[id] || !id.Set.SubsetOf(r.available) {
			continue
		}
		t := tableau.T{}
		id.Set.ForEach(func(a int) bool {
			t = t.Union(r.tAttr[a])
			return true
		})
		t = t.Add(tableau.Row{Tag: id.Scheme, DVs: r.localClo[id]})
		r.tLHS[id] = t
		r.hasTab[id] = true
	}
}

// candidates returns the available, unprocessed left-hand sides.
func (r *loopRun) candidates() []lhsID {
	var out []lhsID
	for _, id := range r.lhss {
		if r.hasTab[id] && !r.processed[id] {
			out = append(out, id)
		}
	}
	return out
}

// pickWeakest returns a minimal candidate under the strict weakness order.
func (r *loopRun) pickWeakest(cands []lhsID) lhsID {
	for _, c := range cands {
		minimal := true
		for _, d := range cands {
			if d != c && tableau.Lt(r.tLHS[d], r.tLHS[c]) {
				minimal = false
				break
			}
		}
		if minimal {
			return c
		}
	}
	return cands[0] // unreachable: some candidate is always minimal
}

// Run executes The Loop for scheme R_l. It returns nil on acceptance or a
// Rejection describing the failure.
func (r *loopRun) Run() *Rejection {
	for {
		cands := r.candidates()
		if len(cands) == 0 {
			return nil // accept
		}
		x := r.pickWeakest(cands)
		tx := r.tLHS[x]

		// (1)–(2) E(X): available l.h.s. of the same scheme equivalent to X;
		// W(X): available l.h.s. of the same scheme strictly weaker than X.
		var equiv, weaker []lhsID
		for _, id := range r.lhss {
			if id.Scheme != x.Scheme || !r.hasTab[id] || id == x {
				continue
			}
			switch {
			case tableau.Equiv(r.tLHS[id], tx):
				equiv = append(equiv, id)
			case tableau.Lt(r.tLHS[id], tx):
				weaker = append(weaker, id)
			}
		}

		// (3) X*_old: closure of X under WF(X) = {Z → Z* | Z ∈ W(X)}.
		var wf fd.List
		for _, z := range weaker {
			wf = append(wf, fd.FD{LHS: z.Set, RHS: r.localClo[z]})
		}
		xStar := r.localClo[x]
		xOld := fd.Closure(wf, x.Set)
		xNew := xStar.Diff(xOld)

		tr := IterationTrace{Scheme: x.Scheme, LHS: x.Set, StarOld: xOld, StarNew: xNew}
		for _, e := range equiv {
			tr.Equiv = append(tr.Equiv, e.Set)
		}
		for _, w := range weaker {
			tr.Weaker = append(tr.Weaker, w.Set)
		}
		r.Trace = append(r.Trace, tr)

		// (4) Every attribute of X*_new must be fresh (not yet available):
		// otherwise the function R_l → A has two inequivalent calculations.
		if bad := xNew.Intersect(r.available); !bad.IsEmpty() {
			a := bad.First()
			return &Rejection{
				Site:     RejectLine4,
				Analyzed: r.l,
				Scheme:   x.Scheme,
				LHS:      x.Set,
				Attr:     a,
				Star:     xStar,
				StarNew:  xNew,
				TabLHS:   tx,
				TabAttr:  r.tAttr[a],
			}
		}

		// (5) Every equivalent l.h.s. must compute the same new attributes.
		for _, y := range equiv {
			yStar := r.localClo[y]
			yOld := fd.Closure(wf, y.Set)
			yNew := yStar.Diff(yOld)
			if yNew != xNew {
				// Per the Theorem 4 Case 2 analysis, some attribute
				// A ∈ X*_old − Y*_old is available and lies in Y* = X*:
				// picking Y first would have rejected at line 4 with A.
				a := xOld.Diff(yOld).Intersect(yStar).First()
				if a < 0 {
					// Defensive: fall back to any available attr of yNew.
					a = yNew.Intersect(r.available).First()
				}
				return &Rejection{
					Site:     RejectLine5,
					Analyzed: r.l,
					Scheme:   y.Scheme,
					LHS:      x.Set,
					EquivLHS: y.Set,
					Attr:     a,
					Star:     yStar,
					StarNew:  yNew,
					TabLHS:   r.tLHS[y],
					TabAttr:  r.tAttr[a],
				}
			}
		}

		// (6) The new attributes become available with tableau T(X).
		xNew.ForEach(func(a int) bool {
			r.available.Add(a)
			r.tAttr[a] = tx
			return true
		})

		// (7) Newly available l.h.s. get their tableaux.
		r.refreshTableaux()

		// (8) Mark processed every (still unprocessed) l.h.s. Z of the same
		// scheme with Z* ⊆ X* — including X itself.
		for _, id := range r.lhss {
			if id.Scheme == x.Scheme && !r.processed[id] && r.localClo[id].SubsetOf(xStar) {
				r.processed[id] = true
			}
		}
		if !r.processed[x] {
			panic("independence: picked l.h.s. not marked processed") // X* ⊆ X* always holds
		}
	}
}

// RunLoop runs The Loop for scheme l over an embedded cover and returns the
// rejection, if any, plus the iteration trace.
func RunLoop(s *schema.Schema, cover infer.AssignedList, l int) (*Rejection, []IterationTrace) {
	r := newLoopRun(s, cover, l)
	rej := r.Run()
	return rej, r.Trace
}

// LoopAccepts reports whether The Loop accepts for every scheme of D given
// an embedded cover (Theorem 3 conditions (1)–(4) ⇔ acceptance).
func LoopAccepts(s *schema.Schema, cover infer.AssignedList) (bool, *Rejection) {
	for l := range s.Rels {
		if rej, _ := RunLoop(s, cover, l); rej != nil {
			return false, rej
		}
	}
	return true, nil
}

// CrossDerivation reports whether the hypothesis of Lemma 7 holds for the
// assigned cover: some attribute A of some scheme R_i has a nonredundant
// derivation of (R_i − A) → A from F that avoids F_i entirely (equivalently,
// uses an FD of some F_j, j ≠ i). On success it returns the scheme, the
// attribute, and the pruned derivation restricted to foreign FDs.
func CrossDerivation(s *schema.Schema, cover infer.AssignedList) (schemeIdx, attr int, deriv fd.List, found bool) {
	for i, rel := range s.Rels {
		foreign := cover.NotInScheme(i)
		var hit bool
		rel.Attrs.ForEach(func(a int) bool {
			x := rel.Attrs.Without(a)
			if x.IsEmpty() {
				return true
			}
			d, ok := fd.Derive(foreign.Split(), x, a)
			if ok && len(d) > 0 {
				schemeIdx, attr, deriv, found, hit = i, a, d, true, true
				return false
			}
			return true
		})
		if hit {
			return schemeIdx, attr, deriv, true
		}
	}
	return 0, 0, nil, false
}

func (rej *Rejection) String() string {
	return fmt.Sprintf("rejected at %s analyzing scheme %d: lhs %v of scheme %d, attr %d",
		rej.Site, rej.Analyzed, rej.LHS.Attrs(), rej.Scheme, rej.Attr)
}
