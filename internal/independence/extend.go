package independence

import (
	"indep/internal/attrset"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
	"indep/internal/tableau"
)

// AcceptedRun is the data an accepting Loop run leaves behind for scheme
// R_l: the available attributes of R_l⁺ and, for each, its minimal
// calculation T(A). Theorem 5 turns these into a constructive extension
// procedure: any tuple of r_l extends to a universal tuple whose determined
// attributes are computed by valuations of the T(A), and adding the
// extension's projections to a locally satisfying state keeps it locally
// satisfying — which is how the paper proves accepted schemas independent.
type AcceptedRun struct {
	s         *schema.Schema
	l         int
	available attrset.Set
	tAttr     map[int]tableau.T
}

// PrepareExtension runs The Loop for scheme l and, on acceptance, returns
// the extension data. On rejection it returns the rejection instead.
func PrepareExtension(s *schema.Schema, cover infer.AssignedList, l int) (*AcceptedRun, *Rejection) {
	run := newLoopRun(s, cover, l)
	if rej := run.Run(); rej != nil {
		return nil, rej
	}
	return &AcceptedRun{s: s, l: l, available: run.available, tAttr: run.tAttr}, nil
}

// Scheme returns the index of the analyzed scheme R_l.
func (ar *AcceptedRun) Scheme() int { return ar.l }

// Available returns R_l⁺'s available attributes (those with a minimal
// calculation).
func (ar *AcceptedRun) Available() attrset.Set { return ar.available }

// ExtendTuple extends a tuple t of r_l to a universal tuple ī following
// Theorem 5: for every available attribute A, if some valuation from T(A)
// to the state agrees with t, ī[A] is the image of A's distinguished
// variable under it (by Lemma 10 every such valuation gives the same
// value); otherwise — and for unavailable attributes — ī[A] is a fresh
// value, returned as a distinct negative placeholder. The returned
// `determined` set holds the attributes that received state constants.
func (ar *AcceptedRun) ExtendTuple(st *relation.State, t relation.Tuple) (relation.Tuple, attrset.Set) {
	cols := ar.s.Attrs(ar.l).Attrs()
	anchor := tableau.Valuation{}
	for j, a := range cols {
		anchor[a] = t[j]
	}
	n := ar.s.U.Size()
	out := make(relation.Tuple, n)
	var determined attrset.Set
	fresh := relation.Value(-1)
	for c := 0; c < n; c++ {
		if v, ok := anchor[c]; ok {
			out[c] = v
			determined.Add(c)
			continue
		}
		if ar.available.Has(c) {
			if val, ok := tableau.FindValuation(ar.tAttr[c], st, anchor); ok {
				if v, bound := val[c]; bound {
					out[c] = v
					determined.Add(c)
					continue
				}
			}
		}
		out[c] = fresh
		fresh--
	}
	return out, determined
}

// Consulted returns the schemes whose instances ExtendTuple may read: the
// tags of every row of every available attribute's minimal calculation.
// Valuations anchor on the inserted tuple itself, so R_l is consulted only
// if one of its own tableaux references it. The result is sorted and
// duplicate-free; a scatter-gather evaluator uses it to fetch exactly the
// relations a remote window evaluation needs.
func (ar *AcceptedRun) Consulted() []int {
	var seen attrset.Set
	for _, t := range ar.tAttr {
		for _, row := range t {
			seen.Add(row.Tag)
		}
	}
	return seen.Attrs()
}

// Complete adds to every relation of the state the projection of the
// extension of each tuple of r_l, restricted to determined attributes'
// schemes... More precisely, per the paper's induction: for a dangling
// tuple t of r_l, its universal extension ī is computed and ī[R_i] is added
// to every r_i (fresh placeholders are materialized as new constants).
// The returned state is the input state enlarged; when the Loop accepted
// every scheme, iterating Complete over dangling tuples converges to a
// join-consistent state whose join is a weak instance.
func (ar *AcceptedRun) Complete(st *relation.State, t relation.Tuple) *relation.State {
	ext, _ := ar.ExtendTuple(st, t)
	// Materialize fresh placeholders as new constants above any existing
	// value.
	var maxV relation.Value
	for _, in := range st.Insts {
		live := in.LiveMask()
		for c := 0; c < in.Width(); c++ {
			for s, v := range in.Col(c) {
				if live[s] && v > maxV {
					maxV = v
				}
			}
		}
	}
	next := maxV + 1
	for c, v := range ext {
		if v < 0 {
			ext[c] = next
			next++
		}
	}
	out := st.Clone()
	for i, rel := range ar.s.Rels {
		cols := rel.Attrs.Attrs()
		tu := make(relation.Tuple, len(cols))
		for j, a := range cols {
			tu[j] = ext[a]
		}
		out.Insts[i].Add(tu)
	}
	return out
}
