package independence

import (
	"testing"

	"indep/internal/infer"
)

// White-box fidelity test: the Loop's iteration trace on the recovered
// Example 3 must follow the paper's narrative exactly.
func TestExample3TraceFollowsPaper(t *testing.T) {
	s, fds := example3()
	cover, ok, _ := infer.ExtractCover(s, fds)
	if !ok {
		t.Fatal("cover-embedding expected")
	}
	rej, trace := RunLoop(s, cover, s.IndexOf("R1"))
	if rej == nil {
		t.Fatal("must reject")
	}
	u := s.U
	fmtSet := func(i int) string { return u.Format(trace[i].LHS, "") }

	// Paper: "Suppose that we pick A1 at line 1; E({A1}) contains only
	// {A1}; W({A1}) is empty. Thus (A1)*old = {A1}, and (A1)*new = {A2}."
	if len(trace) < 3 {
		t.Fatalf("trace too short: %d iterations", len(trace))
	}
	if fmtSet(0) != "A1" {
		t.Fatalf("iteration 1 picked %s, want A1", fmtSet(0))
	}
	if len(trace[0].Equiv) != 0 || len(trace[0].Weaker) != 0 {
		t.Fatalf("iteration 1: E and W must be empty: %+v", trace[0])
	}
	if got := u.Format(trace[0].StarNew, ""); got != "A2" {
		t.Fatalf("(A1)*new = %s, want A2", got)
	}

	// "In the next iteration we pick the l.h.s. B1 and B2 becomes
	// available."
	if fmtSet(1) != "B1" {
		t.Fatalf("iteration 2 picked %s, want B1", fmtSet(1))
	}
	if got := u.Format(trace[1].StarNew, ""); got != "B2" {
		t.Fatalf("(B1)*new = %s, want B2", got)
	}

	// "Now the available l.h.s. are A1B1 again, and A2B2", equivalent to
	// each other. Our deterministic picker takes A1B1; the paper's
	// analysis: E(A1B1) = {A2B2}, W = {A1, B1},
	// (A1B1)*old = A1 A2 B1 B2, (A1B1)*new = {C}; rejection at line 5.
	last := trace[len(trace)-1]
	if got := u.Format(last.LHS, ""); got != "A1B1" {
		t.Fatalf("final pick = %s, want A1B1", got)
	}
	if len(last.Equiv) != 1 || u.Format(last.Equiv[0], "") != "A2B2" {
		t.Fatalf("E(A1B1) = %v, want {A2B2}", last.Equiv)
	}
	if len(last.Weaker) != 2 {
		t.Fatalf("W(A1B1) must be {A1, B1}: %v", last.Weaker)
	}
	if got := u.Format(last.StarOld, ""); got != "A1B1A2B2" {
		t.Fatalf("(A1B1)*old = %s, want A1B1A2B2", got)
	}
	if got := u.Format(last.StarNew, ""); got != "C" {
		t.Fatalf("(A1B1)*new = %s, want C", got)
	}
	if rej.Site != RejectLine5 {
		t.Fatalf("rejection site = %s, want line 5", rej.Site)
	}
}

// The Example 2 trace accepts after propagating T through {C} of CT.
func TestExample2TraceForCS(t *testing.T) {
	s, fds, cover := exampleTwo(t)
	_ = fds
	rej, trace := RunLoop(s, cover, s.IndexOf("CS"))
	if rej != nil {
		t.Fatalf("Example 2 must accept: %v", rej)
	}
	if len(trace) != 1 {
		t.Fatalf("expected exactly one productive iteration, got %d", len(trace))
	}
	if got := s.U.Format(trace[0].LHS, ""); got != "C" {
		t.Fatalf("picked %s, want C", got)
	}
	if got := s.U.Format(trace[0].StarNew, ""); got != "T" {
		t.Fatalf("new = %s, want T", got)
	}
}
