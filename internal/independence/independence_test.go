package independence

import (
	"math/rand"
	"testing"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

func mustDecide(t *testing.T, s *schema.Schema, fds fd.List) *Result {
	t.Helper()
	res, err := Decide(s, fds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// verifyWitness checks a non-independence witness against the chase oracle:
// it must be locally satisfying but globally unsatisfying w.r.t. F ∪ {*D}.
func verifyWitness(t *testing.T, res *Result, s *schema.Schema, fds fd.List) {
	t.Helper()
	if res.Witness == nil {
		t.Fatalf("missing witness (kind %s, rejection %v)", res.WitnessKind, res.Rejection)
	}
	ok, err := chase.IsIndependenceWitness(res.Witness, fds, chase.DefaultCaps)
	if err != nil {
		t.Fatalf("witness verification budget: %v", err)
	}
	if !ok {
		t.Fatalf("witness (%s) not confirmed by chase:\n%s", res.WitnessKind, res.Witness)
	}
}

func TestExample1NotIndependent(t *testing.T) {
	// Paper Example 1 / Example 3 remark: CD, CT, TD with C→D, C→T, T→D.
	// "Clearly the algorithm will reject the system of Example 1."
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds := fd.MustParse(s.U, "C -> D; C -> T; T -> D")
	res := mustDecide(t, s, fds)
	if res.Independent {
		t.Fatal("Example 1 must not be independent")
	}
	if res.Reason != ReasonLoopRejected {
		t.Fatalf("reason = %s", res.Reason)
	}
	verifyWitness(t, res, s, fds)
}

func TestExample2Independent(t *testing.T) {
	// Paper Example 2: CT, CS, CHR with C→T, CH→R is independent.
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	res := mustDecide(t, s, fds)
	if !res.Independent {
		t.Fatalf("Example 2 must be independent; got %s (%v)", res.Reason, res.Rejection)
	}
	if len(res.Cover) == 0 {
		t.Fatal("independent result must carry the embedded cover")
	}
}

func TestExample2PlusSHRNotCoverEmbedding(t *testing.T) {
	// Adding SH→R breaks Theorem 2 condition (1): the new dependency cannot
	// be derived from the embedded ones.
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R; S H -> R")
	res := mustDecide(t, s, fds)
	if res.Independent || res.Reason != ReasonNotCoverEmbedding {
		t.Fatalf("expected not-cover-embedding, got %s", res.Reason)
	}
	if res.WitnessKind != WitnessLemma3 {
		t.Fatalf("witness kind = %s", res.WitnessKind)
	}
	verifyWitness(t, res, s, fds)
}

func TestSingleSchemeAlwaysIndependent(t *testing.T) {
	s := schema.MustParse("R(A,B,C)")
	fds := fd.MustParse(s.U, "A -> B; B -> C")
	res := mustDecide(t, s, fds)
	if !res.Independent {
		t.Fatalf("single scheme must be independent; got %v", res.Rejection)
	}
}

func TestDuplicateSchemesNotIndependent(t *testing.T) {
	// Two copies of AB with A→B: inserting different B values for the same
	// A into the two relations is locally fine but globally contradictory.
	s := schema.MustParse("R1(A,B); R2(A,B)")
	fds := fd.MustParse(s.U, "A -> B")
	res := mustDecide(t, s, fds)
	if res.Independent {
		t.Fatal("duplicate schemes with a key FD must not be independent")
	}
	verifyWitness(t, res, s, fds)
	if res.WitnessKind != WitnessLemma7 {
		t.Fatalf("expected a Lemma 7 witness, got %s", res.WitnessKind)
	}
}

func TestEmbeddedForeignFDNotIndependent(t *testing.T) {
	// D = {CT, CTX}, F = {C→T} in CT. The FD is implied on CTX too, so the
	// two relations can disagree on T for a shared C.
	s := schema.MustParse("CT(C,T); CTX(C,T,X)")
	fds := fd.MustParse(s.U, "C -> T")
	res := mustDecide(t, s, fds)
	if res.Independent {
		t.Fatal("must not be independent")
	}
	verifyWitness(t, res, s, fds)
}

func TestNoFDsIndependent(t *testing.T) {
	// With Σ = {*D} alone, contradictions are impossible: every state is
	// satisfying, so LSAT = WSAT trivially.
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,A)")
	res := mustDecide(t, s, nil)
	if !res.Independent {
		t.Fatalf("no FDs must be independent; got %v", res.Rejection)
	}
}

func TestKeyedStarSchemaIndependent(t *testing.T) {
	// A fact table with foreign keys into two dimension tables: keys only,
	// no shared non-key attributes — the classical independent design.
	s := schema.MustParse("FACT(O,P,C); PROD(P,PN); CUST(C,CN)")
	fds := fd.MustParse(s.U, "O -> P C; P -> PN; C -> CN")
	res := mustDecide(t, s, fds)
	if !res.Independent {
		t.Fatalf("star schema must be independent; got %v", res.Rejection)
	}
}

func TestLoopRejectLine4Shape(t *testing.T) {
	// Example 1 analyzed for CD rejects at line 4 with attribute D: the
	// function CD→D is computed both initially (D ∈ R_l) and via C→T, T→D.
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds := fd.MustParse(s.U, "C -> D; C -> T; T -> D")
	cover, ok, _ := infer.ExtractCover(s, fds)
	if !ok {
		t.Fatal("Example 1 is cover-embedding")
	}
	rej, trace := RunLoop(s, cover, s.IndexOf("CD"))
	if rej == nil {
		t.Fatalf("loop must reject for CD; trace: %v", trace)
	}
	if rej.Site != RejectLine4 {
		t.Fatalf("expected line 4, got %s", rej.Site)
	}
	if got := s.U.Name(rej.Attr); got != "D" {
		t.Fatalf("offending attribute = %s, want D", got)
	}
}

func TestCrossDerivationDetection(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(A,B)")
	fds := fd.MustParse(s.U, "A -> B")
	cover, err := infer.AssignEmbedded(s, fds)
	if err != nil {
		t.Fatal(err)
	}
	i, a, deriv, found := CrossDerivation(s, cover)
	if !found {
		t.Fatal("cross derivation must be found")
	}
	if i != 1 || s.U.Name(a) != "B" || len(deriv) != 1 {
		t.Fatalf("got scheme %d attr %s deriv %s", i, s.U.Name(a), deriv.Format(s.U))
	}
	// No cross derivation in Example 2.
	s2 := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds2 := fd.MustParse(s2.U, "C -> T; C H -> R")
	cover2, _ := infer.AssignEmbedded(s2, fds2)
	if _, _, _, found := CrossDerivation(s2, cover2); found {
		t.Fatal("Example 2 has no cross derivation")
	}
}

func TestDecideInputValidation(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C)")
	var bad attrset.Set
	bad.Add(200)
	if _, err := Decide(s, fd.List{fd.FD{LHS: bad, RHS: attrset.Of(0)}}); err == nil {
		t.Fatal("FD outside universe must be rejected")
	}
	if _, err := Decide(s, fd.List{fd.FD{LHS: attrset.Of(0)}}); err == nil {
		t.Fatal("FD with empty RHS must be rejected")
	}
}

func TestDecideWithAssignmentMatchesDecide(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	a, err := DecideWithAssignment(s, fds)
	if err != nil {
		t.Fatal(err)
	}
	b := mustDecide(t, s, fds)
	if a.Independent != b.Independent {
		t.Fatal("two entry points disagree")
	}
}

// ---------------------------------------------------------------------------
// Randomized validation against the chase oracle.
// ---------------------------------------------------------------------------

// randInstance builds a random covering schema and embedded FDs.
func randInstance(r *rand.Rand, n int) (*schema.Schema, fd.List) {
	u := attrset.NewUniverse()
	for i := 0; i < n; i++ {
		u.Add(string(rune('A' + i)))
	}
	k := 2 + r.Intn(2)
	var rels []schema.Rel
	var covered attrset.Set
	for i := 0; i < k; i++ {
		var a attrset.Set
		for j := 0; j < 2+r.Intn(2); j++ {
			a.Add(r.Intn(n))
		}
		covered = covered.Union(a)
		rels = append(rels, schema.Rel{Name: string(rune('P' + i)), Attrs: a})
	}
	missing := u.All().Diff(covered)
	if !missing.IsEmpty() {
		rels = append(rels, schema.Rel{Name: "Z", Attrs: missing})
	}
	s := schema.New(u, rels...)
	var fds fd.List
	for i := 0; i < 1+r.Intn(3); i++ {
		rel := rels[r.Intn(len(rels))]
		attrs := rel.Attrs.Attrs()
		if len(attrs) < 2 {
			continue
		}
		var lhs attrset.Set
		lhs.Add(attrs[r.Intn(len(attrs))])
		rhs := attrset.Of(attrs[r.Intn(len(attrs))])
		if rhs.SubsetOf(lhs) {
			continue
		}
		fds = append(fds, fd.FD{LHS: lhs, RHS: rhs})
	}
	return s, fds
}

// randLocalState draws a random state whose relations each satisfy their
// local constraints (checked with the chase), or nil after too many tries.
func randLocalState(r *rand.Rand, s *schema.Schema, fds fd.List, tuples int) *relation.State {
	for try := 0; try < 30; try++ {
		st := relation.NewState(s)
		for i, rel := range s.Rels {
			w := rel.Attrs.Len()
			for j := 0; j < tuples; j++ {
				t := make(relation.Tuple, w)
				for c := range t {
					t[c] = relation.Value(r.Intn(3))
				}
				st.Insts[i].Add(t)
			}
		}
		ok, _, err := chase.LocallySatisfies(st, fds, true, chase.DefaultCaps)
		if err == nil && ok {
			return st
		}
	}
	return nil
}

func TestQuickAcceptImpliesLocalGlobalAgree(t *testing.T) {
	// Theorem 5: if Decide accepts, every locally satisfying state must be
	// globally satisfying. Randomized over schemas and states.
	r := rand.New(rand.NewSource(101))
	accepted, statesChecked := 0, 0
	for i := 0; i < 150; i++ {
		s, fds := randInstance(r, 4+r.Intn(2))
		res, err := Decide(s, fds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Independent {
			continue
		}
		accepted++
		for j := 0; j < 5; j++ {
			st := randLocalState(r, s, fds, 1+r.Intn(2))
			if st == nil {
				continue
			}
			statesChecked++
			ok, err := chase.Satisfies(st, fds, true, chase.DefaultCaps)
			if err != nil {
				continue
			}
			if !ok {
				t.Fatalf("accepted schema %s with %s has locally-sat non-sat state:\n%s",
					s, fds.Format(s.U), st)
			}
		}
	}
	if accepted < 10 || statesChecked < 30 {
		t.Fatalf("insufficient coverage: accepted=%d states=%d", accepted, statesChecked)
	}
}

func TestQuickRejectProducesVerifiedWitness(t *testing.T) {
	// Soundness of rejection: every non-independence verdict must come with
	// a chase-verified locally-sat-but-globally-unsat state.
	r := rand.New(rand.NewSource(102))
	rejected := 0
	for i := 0; i < 200; i++ {
		s, fds := randInstance(r, 4+r.Intn(2))
		res, err := Decide(s, fds)
		if err != nil {
			t.Fatal(err)
		}
		if res.Independent {
			continue
		}
		rejected++
		verifyWitness(t, res, s, fds)
	}
	if rejected < 20 {
		t.Fatalf("insufficient rejected cases: %d", rejected)
	}
}

func TestQuickWitnessExistenceIsNecessary(t *testing.T) {
	// Completeness spot-check: when Decide accepts, random search must not
	// find any locally-sat non-sat state either (this is the same direction
	// as Theorem 5 but phrased as hunting for counterexamples).
	r := rand.New(rand.NewSource(103))
	hunts := 0
	for i := 0; i < 60; i++ {
		s, fds := randInstance(r, 4)
		res, err := Decide(s, fds)
		if err != nil || !res.Independent {
			continue
		}
		for j := 0; j < 10; j++ {
			st := randLocalState(r, s, fds, 2)
			if st == nil {
				continue
			}
			hunts++
			ok, err := chase.Satisfies(st, fds, true, chase.DefaultCaps)
			if err == nil && !ok {
				t.Fatalf("counterexample to acceptance found:\n%s\nschema %s fds %s",
					st, s, fds.Format(s.U))
			}
		}
	}
	if hunts < 50 {
		t.Fatalf("insufficient hunting coverage: %d", hunts)
	}
}

func TestTheorem3EquivalenceFToFJD(t *testing.T) {
	// Theorem 3 (1) ⇔ (2): independence w.r.t. an embedded F coincides with
	// independence w.r.t. F ∪ {*D}. Our Decide uses the JD-aware cover; the
	// assignment path uses F directly. Verdicts must agree.
	r := rand.New(rand.NewSource(104))
	for i := 0; i < 100; i++ {
		s, fds := randInstance(r, 4+r.Intn(2))
		res1, err1 := Decide(s, fds)
		res2, err2 := DecideWithAssignment(s, fds)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if res1.Independent != res2.Independent {
			t.Fatalf("Theorem 3 equivalence violated on %s / %s: %v vs %v",
				s, fds.Format(s.U), res1.Independent, res2.Independent)
		}
	}
}
