package independence

import (
	"testing"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

// The paper's Example 3, recovered from the garbled scan (see DESIGN.md):
//
//	D  = {R1(A1,B1), R2(A1,B1,A2,B2,C)}
//	F2 = {A1→A2, B1→B2, A1B1→C, A2B2→A1B1C}
//
// Running the algorithm for R1: {A1} and {B1} are processed first, making
// A2, B2 available; then A1B1 and A2B2 are equivalent available l.h.s. with
// W = {A1, B1}. Picking A2B2 rejects at line 4 (A1, B1 are available
// attributes of its new set); picking A1B1 rejects at line 5 (the
// equivalent A2B2 computes different new attributes).
func example3() (*schema.Schema, fd.List) {
	s := schema.MustParse("R1(A1,B1); R2(A1,B1,A2,B2,C)")
	fds := fd.MustParse(s.U, "A1 -> A2; B1 -> B2; A1 B1 -> C; A2 B2 -> A1 B1 C")
	return s, fds
}

func TestExample3NotIndependent(t *testing.T) {
	s, fds := example3()
	res := mustDecide(t, s, fds)
	if res.Independent {
		t.Fatal("Example 3 must not be independent")
	}
	if res.Reason != ReasonLoopRejected {
		t.Fatalf("reason = %s", res.Reason)
	}
	verifyWitness(t, res, s, fds)
}

func TestExample3RejectsAtLine5WhenA1B1Picked(t *testing.T) {
	// With the universe declared A1,B1,... the deterministic picker takes
	// A1B1 before A2B2, which is the paper's "If A1B1 is chosen, rejection
	// will come at line 5".
	s, fds := example3()
	cover, ok, _ := infer.ExtractCover(s, fds)
	if !ok {
		t.Fatal("Example 3 is cover-embedding")
	}
	rej, _ := RunLoop(s, cover, s.IndexOf("R1"))
	if rej == nil {
		t.Fatal("loop must reject for R1")
	}
	if rej.Site != RejectLine5 {
		t.Fatalf("site = %s, want line 5", rej.Site)
	}
	if got := s.U.Format(rej.LHS, ""); got != "A1B1" {
		t.Fatalf("picked lhs = %s, want A1B1", got)
	}
	if got := s.U.Format(rej.EquivLHS, ""); got != "A2B2" {
		t.Fatalf("equivalent lhs = %s, want A2B2", got)
	}
}

func TestExample3RejectsAtLine4WhenA2B2Picked(t *testing.T) {
	// Declaring the universe with A2,B2 first reverses the deterministic
	// pick order, reproducing the paper's "If A2B2 is chosen, rejection
	// will come at line 4, as both of A1 and B1 are available attributes in
	// (A2B2)*_new".
	s := schema.MustParse("R2(A2,B2,A1,B1,C); R1(A1,B1)")
	fds := fd.MustParse(s.U, "A1 -> A2; B1 -> B2; A1 B1 -> C; A2 B2 -> A1 B1 C")
	cover, ok, _ := infer.ExtractCover(s, fds)
	if !ok {
		t.Fatal("cover-embedding expected")
	}
	rej, _ := RunLoop(s, cover, s.IndexOf("R1"))
	if rej == nil {
		t.Fatal("loop must reject for R1")
	}
	if rej.Site != RejectLine4 {
		t.Fatalf("site = %s, want line 4", rej.Site)
	}
	if got := s.U.Format(rej.LHS, ""); got != "A2B2" {
		t.Fatalf("picked lhs = %s, want A2B2", got)
	}
	name := s.U.Name(rej.Attr)
	if name != "A1" && name != "B1" {
		t.Fatalf("offending attribute = %s, want A1 or B1", name)
	}
}

func TestExample3WitnessMatchesPaperState(t *testing.T) {
	// The paper prints the counterexample state (universe order
	// A1 B1 A2 B2 C):
	//
	//	r1: (0,0)
	//	r2: (0,?,0,?,?) (?,0,?,0,?) (1,1,0,0,1)
	//
	// where ? are distinct fresh constants. Check our witness matches that
	// shape exactly.
	s, fds := example3()
	res := mustDecide(t, s, fds)
	w := res.Witness
	if w == nil {
		t.Fatal("witness missing")
	}
	r1 := w.Insts[s.IndexOf("R1")]
	if r1.Len() != 1 || !r1.Has(relation.Tuple{0, 0}) {
		t.Fatalf("r1 = %v, want {(0,0)}", r1.Rows())
	}
	r2 := w.Insts[s.IndexOf("R2")]
	if r2.Len() != 3 {
		t.Fatalf("r2 has %d tuples, want 3", r2.Len())
	}
	if !r2.Has(relation.Tuple{1, 1, 0, 0, 1}) {
		t.Fatalf("r2 missing the (1,1,0,0,1) row: %v", r2.Rows())
	}
	// The two derivation rows: zero exactly on {A1,A2} and {B1,B2}.
	var shapes []string
	for _, tu := range r2.Rows() {
		mask := ""
		for _, v := range tu {
			if v == 0 {
				mask += "0"
			} else if v == 1 {
				mask += "1"
			} else {
				mask += "f" // fresh
			}
		}
		shapes = append(shapes, mask)
	}
	want := map[string]bool{"0f0ff": false, "f0f0f": false, "11001": false}
	for _, m := range shapes {
		if _, ok := want[m]; !ok {
			t.Fatalf("unexpected row shape %s in %v", m, shapes)
		}
		want[m] = true
	}
	for m, seen := range want {
		if !seen {
			t.Fatalf("missing row shape %s in %v", m, shapes)
		}
	}
	// And of course the chase confirms it.
	ok, err := chase.IsIndependenceWitness(w, fds, chase.DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("witness not confirmed: ok=%v err=%v", ok, err)
	}
}
