package infer

import (
	"math/rand"
	"testing"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
	"indep/internal/workload"
)

func TestLosslessJoinClassic(t *testing.T) {
	// ABC split into AB, BC: lossless iff B->A or B->C.
	s := schema.MustParse("R1(A,B); R2(B,C)")
	if LosslessJoin(s, nil) {
		t.Fatal("no FDs: AB/BC is lossy")
	}
	if !LosslessJoin(s, fd.MustParse(s.U, "B -> C")) {
		t.Fatal("B->C makes AB/BC lossless")
	}
	if !LosslessJoin(s, fd.MustParse(s.U, "B -> A")) {
		t.Fatal("B->A makes AB/BC lossless")
	}
	if LosslessJoin(s, fd.MustParse(s.U, "A -> B")) {
		t.Fatal("A->B does not make AB/BC lossless")
	}
}

func TestLosslessJoinPaperExamples(t *testing.T) {
	// Example 1's decomposition is lossless (C is a key of CD and CT).
	s, fds := workload.Example1()
	if !LosslessJoin(s, fds) {
		t.Fatal("Example 1 decomposition is lossless under its FDs")
	}
	// Example 2's is not implied by the FDs alone (CS shares only C, and
	// C determines neither S nor the rest): *D is a genuine constraint.
	s2, fds2 := workload.Example2()
	if LosslessJoin(s2, fds2) {
		t.Fatal("Example 2's *D is not implied by its FDs")
	}
}

func TestLosslessJoin3NFSynthesis(t *testing.T) {
	// Bernstein synthesis with the added key scheme is always lossless.
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		u := schema.MustParse("R(A,B,C,D,E,F)").U
		var fds fd.List
		for j := 0; j < 1+r.Intn(4); j++ {
			lhs := u.Set(string(rune('A' + r.Intn(6))))
			rhs := u.Set(string(rune('A' + r.Intn(6))))
			if !rhs.SubsetOf(lhs) {
				fds = append(fds, fd.FD{LHS: lhs, RHS: rhs})
			}
		}
		schemes := fd.Synthesize3NF(fds, u.All())
		var rels []schema.Rel
		for j, set := range schemes {
			rels = append(rels, schema.Rel{Name: string(rune('P' + j)), Attrs: set})
		}
		s := schema.New(u, rels...)
		if err := s.Validate(); err != nil {
			// Synthesis may not cover isolated attributes with no FDs;
			// those stay in the key scheme, so coverage holds. Anything
			// else is a bug.
			t.Fatalf("invalid synthesis %v: %v", schemes, err)
		}
		if !LosslessJoin(s, fds) {
			t.Fatalf("3NF synthesis must be lossless: %v under %s", schemes, fds.Format(u))
		}
	}
}

func TestLosslessJoinAgreesWithJoinSemantics(t *testing.T) {
	// If LosslessJoin says yes, projections of any F-satisfying instance
	// must join back exactly; randomized check.
	r := rand.New(rand.NewSource(7))
	s := schema.MustParse("R1(A,B); R2(B,C)")
	fds := fd.MustParse(s.U, "B -> C")
	if !LosslessJoin(s, fds) {
		t.Fatal("setup: expected lossless")
	}
	for i := 0; i < 100; i++ {
		inst := relation.NewInstance(s.U.All())
		// Enforce B->C by construction: C = B+10.
		for j := 0; j < 4; j++ {
			b := relation.Value(r.Intn(3))
			inst.Add(relation.Tuple{relation.Value(r.Intn(3)), b, b + 10})
		}
		st := relation.ProjectOnto(s, inst)
		joined := st.JoinAll()
		if joined.Len() != inst.Len() {
			t.Fatalf("lossy join on satisfying instance: %d vs %d", joined.Len(), inst.Len())
		}
		for _, tu := range inst.Rows() {
			if !joined.Has(tu) {
				t.Fatal("join lost a tuple")
			}
		}
	}
	_ = chase.DefaultCaps
}
