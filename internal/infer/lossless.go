package infer

import (
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/schema"
)

// LosslessJoin tests whether the FDs imply the join dependency *D — i.e.
// whether the decomposition D of the universe has a lossless join, by the
// tableau chase of Aho, Beeri and Ullman [ABU] (which the paper cites for
// the meaning of *D). The tableau has one row per scheme, with the
// distinguished variable of every attribute of the scheme and fresh
// variables elsewhere; the join is lossless iff chasing the FDs produces an
// all-distinguished row.
//
// Note the paper does not require *D to be implied: it treats *D as a
// constraint in its own right. LosslessJoin answers the classical design
// question "is *D free?".
func LosslessJoin(s *schema.Schema, fds fd.List) bool {
	e := chase.NewEngine(s.U)
	n := s.U.Size()
	dv := make([]int32, n)
	for c := 0; c < n; c++ {
		dv[c] = e.NewVar()
	}
	rows := make([][]int32, s.Size())
	for i, r := range s.Rels {
		row := make([]int32, n)
		for c := 0; c < n; c++ {
			if r.Attrs.Has(c) {
				row[c] = dv[c]
			} else {
				row[c] = e.NewVar()
			}
		}
		rows[i] = row
		e.AddRow(row)
	}
	if err := e.ChaseFDs(fds.Split(), chase.DefaultCaps); err != nil {
		return false // FD-only chase cannot contradict; only budget
	}
	for _, row := range rows {
		all := true
		for c := 0; c < n; c++ {
			if e.Find(row[c]) != e.Find(dv[c]) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
