// Package infer implements Section 3 of the paper: reasoning about the
// functional dependencies implied by Σ = F ∪ {*D}, where *D is the join
// dependency of the database schema.
//
// Three layers:
//
//  1. Closure computes cl_Σ(X) in polynomial time. The paper appeals to
//     [MSY] for FD implication from FDs and JDs; here the two-row chase is
//     solved in closed form. After a set M of columns has been merged, the
//     rows derivable with the JD-rule for *D are exactly the ±-vectors that
//     are constant on each connected component of the hypergraph
//     {R_i − M}: every hyperedge lies inside one component, so any
//     component-constant vector projects into an existing row on each R_i,
//     and conversely a derivable row must be monochromatic on every
//     hyperedge and hence on every component. An FD Y→B can therefore fire
//     (merging B) iff B ∉ M and the component of B avoids Y − M. Iterating
//     to a fixpoint yields cl_Σ(X) with M initialised to X.
//
//  2. ClosureEmbedded computes cl_{G|D}(X), the closure of X under the
//     implied FDs that are embedded in some scheme, by the paper's Lemma 5
//     iteration: repeatedly add R_i ∩ cl_Σ(R_i ∩ Z) for every scheme.
//
//  3. CoverEmbeds tests the paper's Theorem 2 condition (1) — D embeds a
//     cover of G — via Lemma 2 (check A ∈ cl_{G|D}(X) for every X→A in F),
//     and ExtractCover produces the embedded cover H with |H| ≤ |F|·|U|.
package infer

import (
	"fmt"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/schema"
)

// Closure returns cl_Σ(X) for Σ = fds ∪ {*D}: all attributes A such that
// Σ ⊨ X → A. Polynomial in |U|·|F|.
func Closure(s *schema.Schema, fds fd.List, x attrset.Set) attrset.Set {
	split := fds.Split()
	m := x
	for changed := true; changed; {
		changed = false
		comps := s.Components(m)
		for _, f := range split {
			b := f.RHS.First()
			if m.Has(b) {
				continue
			}
			// Using components computed for a smaller M is sound: components
			// only get finer as M grows, so a firing justified by stale
			// components is justified by fresh ones too. Completeness comes
			// from the outer fixpoint loop.
			if !comps[b].Intersects(f.LHS.Diff(m)) {
				m.Add(b)
				changed = true
			}
		}
	}
	return m
}

// Implies reports whether fds ∪ {*D} ⊨ f.
func Implies(s *schema.Schema, fds fd.List, f fd.FD) bool {
	return f.RHS.SubsetOf(Closure(s, fds, f.LHS))
}

// EmbeddedStep records one productive application of the Lemma 5 iteration:
// the implied embedded FD (R_i ∩ Z) → (R_i ∩ cl_Σ(R_i ∩ Z)) contributed the
// attributes Added.
type EmbeddedStep struct {
	Scheme int
	FD     fd.FD
	Added  attrset.Set
}

// ClosureEmbedded computes cl_{G|D}(X): the closure of X under the set G|D
// of FDs that are implied by Σ and embedded in some scheme of D. The trace
// of productive steps supports ExtractCover.
func ClosureEmbedded(s *schema.Schema, fds fd.List, x attrset.Set) (attrset.Set, []EmbeddedStep) {
	z := x
	var steps []EmbeddedStep
	for changed := true; changed; {
		changed = false
		for i, r := range s.Rels {
			lhs := r.Attrs.Intersect(z)
			rhs := r.Attrs.Intersect(Closure(s, fds, lhs))
			add := rhs.Diff(z)
			if !add.IsEmpty() {
				steps = append(steps, EmbeddedStep{
					Scheme: i,
					FD:     fd.FD{LHS: lhs, RHS: rhs},
					Added:  add,
				})
				z = z.Union(add)
				changed = true
			}
		}
	}
	return z, steps
}

// CoverEmbeds tests Theorem 2 condition (1): does D embed a cover of the
// FDs G implied by Σ = fds ∪ {*D}? By Lemma 2 it suffices that every FD of
// fds follows from the embedded implied FDs. The failing FDs (if any) are
// returned split to single-attribute right-hand sides.
func CoverEmbeds(s *schema.Schema, fds fd.List) (bool, fd.List) {
	var failing fd.List
	for _, f := range fds.Split() {
		closed, _ := ClosureEmbedded(s, fds, f.LHS)
		if !f.RHS.SubsetOf(closed) {
			failing = append(failing, f)
		}
	}
	return len(failing) == 0, failing
}

// AllEmbedded reports whether every FD of fds is embedded in some scheme of
// s. By the paper's Lemma 4 the join-dependency chase rule is redundant for
// embedded FD sets, so callers use this to decide whether satisfaction and
// maintenance checks need the JD rule (and pay its exponential worst case).
func AllEmbedded(s *schema.Schema, fds fd.List) bool {
	for _, f := range fds {
		if !s.Embeds(f.Attrs()) {
			return false
		}
	}
	return true
}

// Assigned is an FD embedded in (and assigned to) a particular scheme: the
// paper's F_i decomposition of an embedded cover.
type Assigned struct {
	fd.FD
	Scheme int
}

// AssignedList is an embedded cover F = ∪F_i with every FD carrying its
// scheme assignment.
type AssignedList []Assigned

// List strips the scheme assignments.
func (al AssignedList) List() fd.List {
	out := make(fd.List, len(al))
	for i, a := range al {
		out[i] = a.FD
	}
	return out
}

// ForScheme returns the F_i for scheme i.
func (al AssignedList) ForScheme(i int) fd.List {
	var out fd.List
	for _, a := range al {
		if a.Scheme == i {
			out = append(out, a.FD)
		}
	}
	return out
}

// NotInScheme returns F − F_i.
func (al AssignedList) NotInScheme(i int) fd.List {
	var out fd.List
	for _, a := range al {
		if a.Scheme != i {
			out = append(out, a.FD)
		}
	}
	return out
}

// Format renders the assigned list with scheme names.
func (al AssignedList) Format(s *schema.Schema) string {
	out := ""
	for i, a := range al {
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("%s@%s", a.FD.Format(s.U), s.Name(a.Scheme))
	}
	return out
}

// ExtractCover runs the Section 3 algorithm to completion: it verifies
// cover-embedding and, when it holds, returns the embedded cover H of G
// assembled from the FDs (R_i ∩ Y) → (R_i ∩ cl_Σ(R_i ∩ Y)) that fired in
// the closure computations, each assigned to its scheme. Per the paper,
// |H| ≤ |F|·|U|. When cover-embedding fails it returns ok=false along with
// the failing FDs.
func ExtractCover(s *schema.Schema, fds fd.List) (cover AssignedList, ok bool, failing fd.List) {
	type key struct {
		scheme int
		lhs    attrset.Set
	}
	seen := make(map[key]bool)
	for _, f := range fds.Split() {
		closed, steps := ClosureEmbedded(s, fds, f.LHS)
		if !f.RHS.SubsetOf(closed) {
			failing = append(failing, f)
			continue
		}
		for _, st := range steps {
			k := key{st.Scheme, st.FD.LHS}
			if !seen[k] {
				seen[k] = true
				cover = append(cover, Assigned{FD: st.FD, Scheme: st.Scheme})
			}
		}
	}
	if len(failing) > 0 {
		return nil, false, failing
	}
	return cover, true, nil
}

// AssignEmbedded assigns each FD of an already-embedded list to the first
// scheme that embeds it. It fails if some FD is not embedded in any scheme.
// Per the paper's footnote the choice of scheme for multiply-embedded FDs
// does not affect the independence verdict.
func AssignEmbedded(s *schema.Schema, fds fd.List) (AssignedList, error) {
	var out AssignedList
	for _, f := range fds {
		homes := s.SchemesEmbedding(f.Attrs())
		if len(homes) == 0 {
			return nil, fmt.Errorf("infer: FD %s is not embedded in any scheme", f.Format(s.U))
		}
		out = append(out, Assigned{FD: f, Scheme: homes[0]})
	}
	return out, nil
}
