package infer

import (
	"math/rand"
	"testing"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/schema"
)

func TestClosurePlainFDsMatch(t *testing.T) {
	// With a single scheme covering U, the JD adds nothing: cl_Σ = cl_F.
	s := schema.MustParse("R(A,B,C,D)")
	fds := fd.MustParse(s.U, "A -> B; B -> C")
	got := Closure(s, fds, s.U.Set("A"))
	want := fd.Closure(fds, s.U.Set("A"))
	if got != want {
		t.Fatalf("closure = %s, want %s", s.U.Format(got, " "), s.U.Format(want, " "))
	}
}

func TestClosureJDInteraction(t *testing.T) {
	// The hand-verified case from internal/chase: {AY, AB}, Y→B gives
	// A→B only because of the join dependency.
	s := schema.MustParse("R1(A,Y); R2(A,B)")
	fds := fd.MustParse(s.U, "Y -> B")
	got := Closure(s, fds, s.U.Set("A"))
	if got != s.U.Set("A", "B") {
		t.Fatalf("cl_Σ(A) = %s, want A B", s.U.Format(got, " "))
	}
	// And without the dependency structure, closure stays put.
	if c := Closure(s, fds, s.U.Set("B")); c != s.U.Set("B") {
		t.Fatalf("cl_Σ(B) = %s, want B", s.U.Format(c, " "))
	}
}

func TestLemma1EmbeddedFDsNoJDEffect(t *testing.T) {
	// Lemma 1: for FDs embedded in D, F ⊨ f iff F ∪ {*D} ⊨ f, so the
	// closures agree on every X.
	s := schema.MustParse("R1(A,B); R2(B,C); R3(A,C)")
	fds := fd.MustParse(s.U, "A -> B; B -> C")
	for mask := 0; mask < 8; mask++ {
		var x attrset.Set
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				x.Add(i)
			}
		}
		if Closure(s, fds, x) != fd.Closure(fds, x) {
			t.Fatalf("Lemma 1 violated at X = %s", s.U.Format(x, " "))
		}
	}
}

// randSchema builds a random covering schema and FD list over n attributes.
func randSchema(r *rand.Rand, n int) (*schema.Schema, fd.List) {
	u := attrset.NewUniverse()
	for i := 0; i < n; i++ {
		u.Add(string(rune('A' + i)))
	}
	k := 2 + r.Intn(3)
	var rels []schema.Rel
	var covered attrset.Set
	for i := 0; i < k; i++ {
		var a attrset.Set
		for j := 0; j < 1+r.Intn(3); j++ {
			a.Add(r.Intn(n))
		}
		if a.IsEmpty() {
			a.Add(r.Intn(n))
		}
		covered = covered.Union(a)
		rels = append(rels, schema.Rel{Name: string(rune('P' + i)), Attrs: a})
	}
	missing := u.All().Diff(covered)
	if !missing.IsEmpty() {
		rels = append(rels, schema.Rel{Name: "Z", Attrs: missing})
	}
	s := schema.New(u, rels...)
	var fds fd.List
	for i := 0; i < 1+r.Intn(3); i++ {
		var lhs attrset.Set
		for j := 0; j < 1+r.Intn(2); j++ {
			lhs.Add(r.Intn(n))
		}
		rhs := attrset.Of(r.Intn(n))
		if rhs.SubsetOf(lhs) {
			continue
		}
		fds = append(fds, fd.FD{LHS: lhs, RHS: rhs})
	}
	return s, fds
}

func TestQuickClosureMatchesChaseOracle(t *testing.T) {
	// The heart of Section 3: the polynomial component-based closure must
	// agree with the exponential two-row FD+JD chase on random inputs.
	r := rand.New(rand.NewSource(42))
	checked := 0
	for i := 0; i < 400; i++ {
		s, fds := randSchema(r, 4+r.Intn(2))
		var x attrset.Set
		x.Add(r.Intn(s.U.Size()))
		if r.Intn(2) == 0 {
			x.Add(r.Intn(s.U.Size()))
		}
		fast := Closure(s, fds, x)
		slow, err := chase.ClosureFD(s, fds, x, true, chase.DefaultCaps)
		if err != nil {
			continue // budget: skip, rare at this size
		}
		checked++
		if fast != slow {
			t.Fatalf("closure mismatch on %s with %s: X=%s fast=%s chase=%s",
				s, fds.Format(s.U), s.U.Format(x, " "),
				s.U.Format(fast, " "), s.U.Format(slow, " "))
		}
	}
	if checked < 300 {
		t.Fatalf("too few oracle comparisons completed: %d", checked)
	}
}

func TestQuickClosureIsClosureOperator(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		s, fds := randSchema(r, 5)
		var x attrset.Set
		x.Add(r.Intn(5))
		c := Closure(s, fds, x)
		if !x.SubsetOf(c) {
			t.Fatal("not extensive")
		}
		if Closure(s, fds, c) != c {
			t.Fatal("not idempotent")
		}
		y := x.With(r.Intn(5))
		if !c.SubsetOf(Closure(s, fds, y)) {
			t.Fatal("not monotone")
		}
	}
}

func TestClosureEmbeddedLemma5(t *testing.T) {
	// Ground truth: enumerate every implied embedded FD and close under it.
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 60; i++ {
		s, fds := randSchema(r, 4)
		// Collect G|D by enumeration.
		var gd fd.List
		for _, rel := range s.Rels {
			attrs := rel.Attrs.Attrs()
			for mask := 0; mask < 1<<len(attrs); mask++ {
				var y attrset.Set
				for j, a := range attrs {
					if mask&(1<<j) != 0 {
						y.Add(a)
					}
				}
				rhs := Closure(s, fds, y).Intersect(rel.Attrs).Diff(y)
				if !rhs.IsEmpty() {
					gd = append(gd, fd.FD{LHS: y, RHS: rhs})
				}
			}
		}
		var x attrset.Set
		x.Add(r.Intn(4))
		got, _ := ClosureEmbedded(s, fds, x)
		want := fd.Closure(gd, x)
		if got != want {
			t.Fatalf("Lemma 5 closure mismatch on %s / %s: X=%s got=%s want=%s",
				s, fds.Format(s.U), s.U.Format(x, " "),
				s.U.Format(got, " "), s.U.Format(want, " "))
		}
	}
}

func TestCoverEmbedsExample2(t *testing.T) {
	// Paper Example 2: CT, CS, CHR with C→T, CH→R is cover-embedding;
	// adding SH→R breaks condition (1).
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	ok, failing := CoverEmbeds(s, fds)
	if !ok {
		t.Fatalf("Example 2 must be cover-embedding; failing: %s", failing.Format(s.U))
	}
	fds2 := fd.MustParse(s.U, "C -> T; C H -> R; S H -> R")
	ok, failing = CoverEmbeds(s, fds2)
	if ok {
		t.Fatal("Example 2 with SH->R must not be cover-embedding")
	}
	if len(failing) != 1 || failing[0].LHS != s.U.Set("S", "H") {
		t.Fatalf("failing FDs = %s", failing.Format(s.U))
	}
}

func TestExtractCoverProperties(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	cover, ok, _ := ExtractCover(s, fds)
	if !ok {
		t.Fatal("must extract a cover")
	}
	// H is embedded per its assignments.
	for _, a := range cover {
		if !a.FD.EmbeddedIn(s.Attrs(a.Scheme)) {
			t.Fatalf("cover FD %s not embedded in its scheme", a.FD.Format(s.U))
		}
	}
	// H ⊨ F.
	if !fd.ImpliesAll(cover.List(), fds) {
		t.Fatal("cover must imply the original FDs")
	}
	// Each H-FD is implied by Σ.
	for _, a := range cover {
		if !Implies(s, fds, a.FD) {
			t.Fatalf("cover FD %s not implied by Σ", a.FD.Format(s.U))
		}
	}
}

func TestQuickExtractCoverSizeBound(t *testing.T) {
	// Paper: |H| ≤ |F|·|U| (for F split to single-attribute RHS).
	r := rand.New(rand.NewSource(45))
	for i := 0; i < 150; i++ {
		s, fds := randSchema(r, 5)
		cover, ok, _ := ExtractCover(s, fds)
		if !ok {
			continue
		}
		bound := len(fds.Split()) * s.U.Size()
		if len(cover) > bound {
			t.Fatalf("|H| = %d exceeds |F|·|U| = %d", len(cover), bound)
		}
		if !fd.ImpliesAll(cover.List(), fds) {
			t.Fatalf("extracted cover does not imply F on %s / %s", s, fds.Format(s.U))
		}
	}
}

func TestAssignEmbedded(t *testing.T) {
	s := schema.MustParse("CT(C,T); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	al, err := AssignEmbedded(s, fds)
	if err != nil {
		t.Fatal(err)
	}
	if al[0].Scheme != 0 || al[1].Scheme != 1 {
		t.Fatalf("assignments wrong: %s", al.Format(s))
	}
	if got := al.ForScheme(0).Format(s.U); got != "C -> T" {
		t.Errorf("ForScheme(0) = %q", got)
	}
	if got := al.NotInScheme(0).Format(s.U); got != "C H -> R" {
		t.Errorf("NotInScheme(0) = %q", got)
	}
	bad := fd.MustParse(s.U, "T -> H")
	if _, err := AssignEmbedded(s, bad); err == nil {
		t.Fatal("non-embedded FD must fail assignment")
	}
}
