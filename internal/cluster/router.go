package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"indep"
	"indep/internal/obs"
)

// Options tunes a Router. The zero value is usable: every knob has a
// default chosen for a small static cluster.
type Options struct {
	// Parts is the number of hash ranges each partitionable relation is
	// split into; 0 means twice the shard count (every shard owns ~2 ranges
	// of every hot relation, smoothing the split without fragmenting reads).
	Parts int
	// VNodes is the number of ring points per member (default 64).
	VNodes int
	// Retries is how many times a failed forward or gather is retried
	// against the same shard before the shard is reported down (default 2).
	// Retries mean at-least-once delivery: re-applying an accepted insert
	// or an applied delete is a no-op, so redelivery converges — except for
	// a payload that both deletes a tuple and inserts one conflicting with
	// it, whose re-application can flip the insert's outcome. Clients
	// needing exact reports for that shape must split it into two payloads.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Timeout bounds each shard HTTP request (default 10s).
	Timeout time.Duration
	// Transports overrides the per-shard transport (in-process shards for
	// benchmarks and fault tests); absent members get an HTTPTransport.
	Transports map[string]Transport
	// Logger receives routing diagnostics; nil discards them.
	Logger *slog.Logger
}

// Router is the cluster routing tier: it owns the placement, splits writes
// per owning shard, forwards them over the binary batch wire, and
// scatter-gathers window reads. A Router is safe for concurrent use.
type Router struct {
	sch      *indep.Schema
	an       *indep.Analysis
	members  []Member
	place    *Placement
	tr       map[string]Transport
	opts     Options
	logger   *slog.Logger
	fallback string // designated shard when the schema is not independent

	mu     sync.Mutex
	health map[string]*ShardStatus

	batches    *obs.Counter
	ops        *obs.Counter
	rejected   *obs.Counter
	gathers    *obs.Counter
	proxied    *obs.Counter
	retries    *obs.Counter
	fwdErrs    map[string]*obs.Counter
	fwdSeconds map[string]*obs.Histogram
}

// inc and addN tolerate a router whose metrics were never registered.
func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func addN(c *obs.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

// ShardStatus is one shard's health as the router sees it.
type ShardStatus struct {
	Name      string    `json:"name"`
	URL       string    `json:"url"`
	Healthy   bool      `json:"healthy"`
	LastError string    `json:"lastError,omitempty"`
	LastCheck time.Time `json:"lastCheck"`
	Checks    uint64    `json:"checks"`
	Failures  uint64    `json:"failures"`
}

// NewRouter analyzes the schema, computes the placement, and connects the
// shard transports. A non-independent schema does not fail construction —
// the router degrades to a single serialized node (every relation pinned to
// one shard, windows proxied wholesale) and says so loudly, because that is
// a deployment mistake worth noticing but not an outage worth causing.
func NewRouter(sch *indep.Schema, members []Member, opts Options) (*Router, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	an, err := sch.Analyze()
	if err != nil {
		return nil, err
	}
	if opts.Parts == 0 {
		opts.Parts = 2 * len(members)
	}
	if opts.VNodes == 0 {
		opts.VNodes = 64
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff == 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	r := &Router{
		sch:     sch,
		an:      an,
		members: members,
		place:   PlanPlacement(sch, an, members, opts.Parts, opts.VNodes),
		tr:      make(map[string]Transport, len(members)),
		opts:    opts,
		logger:  logger,
		health:  make(map[string]*ShardStatus, len(members)),
	}
	for _, m := range members {
		if t := opts.Transports[m.Name]; t != nil {
			r.tr[m.Name] = t
		} else {
			r.tr[m.Name] = NewHTTPTransport(m, opts.Timeout)
		}
		r.health[m.Name] = &ShardStatus{Name: m.Name, URL: m.URL, Healthy: true}
	}
	if !an.Independent {
		r.fallback = r.place.Owners(sch.Relations()[0])[0]
		logger.Warn("schema is NOT independent: cluster mode degrades to a single serialized node",
			"reason", an.Reason, "shard", r.fallback,
			"detail", "every relation is pinned to one shard and windows are proxied wholesale; "+
				"the remaining shards serve nothing — fix the schema design to scale writes")
	} else {
		for _, rel := range sch.Relations() {
			key := r.place.PartitionKey(rel)
			if key == nil {
				logger.Info("placement: relation pinned whole (no common FD left-hand side)",
					"relation", rel, "shard", r.place.Owners(rel)[0])
			} else {
				logger.Info("placement: relation hash-partitioned",
					"relation", rel, "key", key, "parts", opts.Parts, "shards", r.place.Owners(rel))
			}
		}
	}
	return r, nil
}

// Fallback reports whether the router is in single-node fallback mode
// (non-independent schema) and which shard serves everything.
func (r *Router) Fallback() (string, bool) { return r.fallback, r.fallback != "" }

// Schema returns the schema the router routes for.
func (r *Router) Schema() *indep.Schema { return r.sch }

// Placement returns the router's placement, for status reporting.
func (r *Router) Placement() *Placement { return r.place }

// RegisterMetrics files the router's indep_cluster_* metrics.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("indep_cluster_shards", "Shards in the static membership.",
		func() float64 { return float64(len(r.members)) })
	reg.GaugeFunc("indep_cluster_unhealthy_shards", "Shards whose last health check failed.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, h := range r.health {
				if !h.Healthy {
					n++
				}
			}
			return float64(n)
		})
	r.batches = reg.Counter("indep_cluster_batches_total", "Client batches routed.")
	r.ops = reg.Counter("indep_cluster_ops_total", "Operations forwarded to shards.")
	r.rejected = reg.Counter("indep_cluster_rejected_ops_total", "Operations shards rejected as constraint violations.")
	r.gathers = reg.Counter("indep_cluster_window_gathers_total", "Windows answered by scatter-gather evaluation.")
	r.proxied = reg.Counter("indep_cluster_window_proxied_total", "Windows proxied wholesale to a single shard.")
	r.retries = reg.Counter("indep_cluster_forward_retries_total", "Forward attempts retried after a shard error.")
	r.fwdErrs = make(map[string]*obs.Counter, len(r.members))
	r.fwdSeconds = make(map[string]*obs.Histogram, len(r.members))
	for _, m := range r.members {
		r.fwdErrs[m.Name] = reg.Counter("indep_cluster_forward_errors_total",
			"Forwards that failed after all retries.", obs.L("shard", m.Name))
		r.fwdSeconds[m.Name] = reg.Histogram("indep_cluster_forward_seconds",
			"Per-shard forward latency (batch sub-forwards and fragment gathers).", 1e-9, obs.L("shard", m.Name))
	}
}

// note records a shard interaction's outcome in the health table.
func (r *Router) note(shard string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.health[shard]
	if h == nil {
		return
	}
	h.Checks++
	h.LastCheck = time.Now()
	if err != nil {
		h.Failures++
		h.Healthy = false
		h.LastError = err.Error()
	} else {
		h.Healthy = true
		h.LastError = ""
	}
}

// withRetry runs fn against the shard with the configured retry/backoff
// schedule, recording latency, retries, and health.
func (r *Router) withRetry(ctx context.Context, shard string, fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		start := time.Now()
		err = fn()
		if h := r.fwdSeconds[shard]; h != nil {
			h.Observe(int64(time.Since(start)))
		}
		if err == nil || attempt >= r.opts.Retries || ctx.Err() != nil {
			break
		}
		inc(r.retries)
		r.logger.Debug("retrying shard", "shard", shard, "attempt", attempt+1, "error", err)
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(r.opts.Backoff << attempt):
			continue
		}
		break
	}
	r.note(shard, err)
	if err != nil {
		if c := r.fwdErrs[shard]; c != nil {
			c.Inc()
		}
	}
	return err
}

// subBatch is the slice of a client batch owned by one shard: the encoder
// assembling its payload and, in payload frame order (inserts in arrival
// order, then deletes in arrival order — the same order the shard's report
// indexes), each local op's index in the client batch.
type subBatch struct {
	enc     *indep.BinBatchEncoder
	insIdx  []int
	delIdx  []int
	someErr error
}

func (sb *subBatch) index() []int { return append(append([]int(nil), sb.insIdx...), sb.delIdx...) }

// Batch splits a client binary batch per owning shard, forwards the pieces
// concurrently in partial mode, and reassembles the shards' per-op reports
// into one report indexed like the client's payload. Rejections are per-op
// and do not fail the call. A non-nil error means at least one shard could
// not be reached or failed mid-batch; the report still covers every shard
// that answered, and because applied inserts and deletes are idempotent the
// client may retry the whole payload (see Options.Retries for the one
// delete-unshields-insert shape that is not a fixpoint). A malformed
// payload returns (nil, error) with nothing forwarded.
func (r *Router) Batch(ctx context.Context, payload []byte) (*indep.BatchReport, error) {
	ops, err := r.sch.DecodeBinBatch(payload)
	if err != nil {
		return nil, err
	}
	inc(r.batches)
	addN(r.ops, uint64(len(ops)))
	subs := make(map[string]*subBatch)
	for i, op := range ops {
		owner, err := r.place.Owner(op.Rel, op.Row)
		if err != nil {
			return nil, err
		}
		sb := subs[owner]
		if sb == nil {
			sb = &subBatch{enc: indep.NewBinBatchEncoder(r.sch)}
			subs[owner] = sb
		}
		if op.Delete {
			err = sb.enc.Delete(op.Rel, op.Row)
			sb.delIdx = append(sb.delIdx, i)
		} else {
			err = sb.enc.Add(op.Rel, op.Row)
			sb.insIdx = append(sb.insIdx, i)
		}
		if err != nil {
			return nil, err
		}
	}

	type shardResult struct {
		shard string
		rep   *indep.BatchReport
		err   error
	}
	results := make(chan shardResult, len(subs))
	for shard, sb := range subs {
		go func(shard string, sb *subBatch) {
			var rep *indep.BatchReport
			err := r.withRetry(ctx, shard, func() error {
				var err error
				rep, err = r.tr[shard].ApplyPartial(ctx, sb.enc.Bytes())
				return err
			})
			results <- shardResult{shard: shard, rep: rep, err: err}
		}(shard, sb)
	}

	report := &indep.BatchReport{Ops: len(ops)}
	var failed []string
	var firstErr error
	for range subs {
		res := <-results
		if res.err != nil {
			failed = append(failed, res.shard)
			if firstErr == nil {
				firstErr = res.err
			}
			if res.rep == nil {
				continue
			}
		}
		idx := subs[res.shard].index()
		report.Processed += res.rep.Processed
		report.Applied += res.rep.Applied
		for _, o := range res.rep.Rejected {
			report.Rejected = append(report.Rejected,
				indep.OpOutcome{Index: idx[o.Index], Code: o.Code, Error: o.Error})
		}
	}
	sort.Slice(report.Rejected, func(i, j int) bool { return report.Rejected[i].Index < report.Rejected[j].Index })
	addN(r.rejected, uint64(len(report.Rejected)))
	if firstErr != nil {
		sort.Strings(failed)
		return report, fmt.Errorf("cluster: %d of %d shards failed (%v): %w",
			len(failed), len(subs), failed, firstErr)
	}
	return report, nil
}

// Insert routes one insert. A rejection surfaces as the shard's error,
// matching ConcurrentStore.Insert (test with indep.Rejected).
func (r *Router) Insert(ctx context.Context, rel string, row map[string]string) error {
	return r.one(ctx, rel, row, false)
}

// Delete routes one delete; deleting an absent tuple is a no-op.
func (r *Router) Delete(ctx context.Context, rel string, row map[string]string) error {
	return r.one(ctx, rel, row, true)
}

func (r *Router) one(ctx context.Context, rel string, row map[string]string, del bool) error {
	enc := indep.NewBinBatchEncoder(r.sch)
	var err error
	if del {
		err = enc.Delete(rel, row)
	} else {
		err = enc.Add(rel, row)
	}
	if err != nil {
		return err
	}
	rep, err := r.Batch(ctx, enc.Bytes())
	if err != nil {
		return err
	}
	if len(rep.Rejected) > 0 {
		return fmt.Errorf("%s: %w", rep.Rejected[0].Error, indep.ErrRejected)
	}
	return nil
}

// Window answers a window query. On the fast path the router asks the plan
// which relations evaluation consults, gathers exactly those fragments from
// their owning shards concurrently, assembles them into a scratch state,
// and evaluates the window locally — byte-identical to a single node
// holding all the data, because window evaluation is a pure function of the
// consulted relations' contents. In fallback mode (non-independent schema)
// the whole query is proxied to the designated shard. Fragments are
// per-shard-consistent snapshots; the cross-shard assembly is only
// guaranteed point-in-time consistent when no writes race the query.
func (r *Router) Window(ctx context.Context, q indep.WindowQuery) (*indep.WindowResult, error) {
	rels, fast, err := r.sch.WindowConsults(q.Attrs...)
	if err != nil {
		return nil, err
	}
	if !fast {
		inc(r.proxied)
		var res *indep.WindowResult
		err := r.withRetry(ctx, r.fallback, func() error {
			var err error
			res, err = r.tr[r.fallback].Window(ctx, q)
			return err
		})
		return res, err
	}
	inc(r.gathers)

	type fetch struct{ rel, shard string }
	var fetches []fetch
	for _, rel := range rels {
		for _, shard := range r.place.Owners(rel) {
			fetches = append(fetches, fetch{rel: rel, shard: shard})
		}
	}
	frags := make([]*indep.WindowResult, len(fetches))
	errs := make([]error, len(fetches))
	var wg sync.WaitGroup
	for i, f := range fetches {
		wg.Add(1)
		go func(i int, f fetch) {
			defer wg.Done()
			errs[i] = r.withRetry(ctx, f.shard, func() error {
				var err error
				frags[i], err = r.tr[f.shard].Relation(ctx, f.rel)
				return err
			})
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	scratch := r.sch.NewDatabase()
	for i, frag := range frags {
		for _, row := range frag.Rows {
			if err := scratch.Insert(fetches[i].rel, row); err != nil {
				return nil, fmt.Errorf("cluster: assembling %s fragment from %s: %w",
					fetches[i].rel, fetches[i].shard, err)
			}
		}
	}
	return scratch.Query(q)
}

// CheckHealth pings every shard once, concurrently, updating and returning
// the health table. Pings use the same retry/backoff as forwards.
func (r *Router) CheckHealth(ctx context.Context) []ShardStatus {
	var wg sync.WaitGroup
	for _, m := range r.members {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			r.withRetry(ctx, name, func() error { return r.tr[name].Ping(ctx) })
		}(m.Name)
	}
	wg.Wait()
	return r.Health()
}

// Health returns the current health table, sorted by shard name, without
// probing anything.
func (r *Router) Health() []ShardStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ShardStatus, 0, len(r.health))
	for _, h := range r.health {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RelationPlacement is one relation's row in the cluster status report.
type RelationPlacement struct {
	Relation     string   `json:"relation"`
	PartitionKey []string `json:"partitionKey,omitempty"`
	Parts        int      `json:"parts"`
	Shards       []string `json:"shards"`
}

// Status is the /v1/cluster/status document.
type Status struct {
	Mode      string              `json:"mode"` // "sharded" or "fallback"
	Reason    string              `json:"reason,omitempty"`
	Shards    []ShardStatus       `json:"shards"`
	Relations []RelationPlacement `json:"relations"`
}

// Status reports the routing mode, placement, and shard health.
func (r *Router) Status() *Status {
	st := &Status{Mode: "sharded", Shards: r.Health()}
	if r.fallback != "" {
		st.Mode = "fallback"
		st.Reason = fmt.Sprintf("schema is not independent (%s); all relations pinned to shard %s",
			r.an.Reason, r.fallback)
	}
	for _, rel := range r.sch.Relations() {
		rp := RelationPlacement{
			Relation:     rel,
			PartitionKey: r.place.PartitionKey(rel),
			Shards:       r.place.Owners(rel),
		}
		if rp.PartitionKey != nil {
			rp.Parts = r.place.Parts()
		} else {
			rp.Parts = 1
		}
		st.Relations = append(st.Relations, rp)
	}
	return st
}
