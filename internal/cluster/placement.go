package cluster

import (
	"fmt"
	"sort"

	"indep"
	"indep/internal/hashkey"
)

// Placement maps every relation — and every hash range of a partitionable
// relation — to its owning shard. It is computed once at router startup
// from the schema analysis and the membership, is identical on every router
// over the same inputs, and never changes while the process runs.
type Placement struct {
	parts int
	rels  map[string]*relPlace
}

type relPlace struct {
	// key lists the partition-key attributes in schema order; nil means the
	// relation is unpartitionable (no FDs with a common LHS attribute, or a
	// non-independent schema) and lives whole on owners[0].
	key    []string
	owners []string // one per hash range; length 1 when key is nil
}

// PlanPlacement computes the placement. parts is the number of hash ranges
// a partitionable relation is split into (more ranges spread a hot relation
// over more shards; parts below the shard count caps the spread). When the
// analysis is not independent every relation is pinned whole to the ring
// owner of the empty name — one designated shard — because validation then
// needs the entire state in one place; the router reports this as fallback
// mode.
func PlanPlacement(sch *indep.Schema, an *indep.Analysis, members []Member, parts, vnodes int) *Placement {
	if parts < 1 {
		parts = 1
	}
	ring := NewRing(members, vnodes)
	p := &Placement{parts: parts, rels: make(map[string]*relPlace)}
	if !an.Independent {
		owner := ring.Owner(hashkey.Str(hashkey.Init, ""))
		for _, rel := range sch.Relations() {
			p.rels[rel] = &relPlace{owners: []string{owner}}
		}
		return p
	}
	for _, rel := range sch.Relations() {
		key := an.PartitionKeys[rel]
		if len(key) == 0 {
			p.rels[rel] = &relPlace{owners: []string{ring.Owner(hashkey.Str(hashkey.Init, rel))}}
			continue
		}
		rp := &relPlace{key: key, owners: make([]string, parts)}
		for i := range rp.owners {
			h := hashkey.Str(hashkey.Init, rel)
			rp.owners[i] = ring.Owner(hashkey.Mix(h, uint64(i)))
		}
		p.rels[rel] = rp
	}
	return p
}

// Owner returns the shard owning the row of the relation: the owner of the
// hash range the row's partition-key values fall into. The row must hold a
// value for every key attribute (a full row always does).
func (p *Placement) Owner(rel string, row map[string]string) (string, error) {
	rp := p.rels[rel]
	if rp == nil {
		return "", fmt.Errorf("cluster: unknown relation %q", rel)
	}
	if rp.key == nil {
		return rp.owners[0], nil
	}
	h := hashkey.Init
	for _, a := range rp.key {
		v, ok := row[a]
		if !ok {
			return "", fmt.Errorf("cluster: row of %s misses partition-key attribute %s", rel, a)
		}
		h = hashkey.Str(h, v)
	}
	return rp.owners[hashkey.Range(h, p.parts)], nil
}

// Owners returns the distinct shards holding any fragment of the relation —
// the gather set for that relation — in sorted order.
func (p *Placement) Owners(rel string) []string {
	rp := p.rels[rel]
	if rp == nil {
		return nil
	}
	seen := make(map[string]bool, len(rp.owners))
	var out []string
	for _, o := range rp.owners {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Strings(out)
	return out
}

// PartitionKey returns the partition-key attributes of the relation (nil
// when it is unpartitioned), for status reporting.
func (p *Placement) PartitionKey(rel string) []string { return p.rels[rel].key }

// Parts returns the number of hash ranges per partitionable relation.
func (p *Placement) Parts() int { return p.parts }
