package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"indep"
)

// Transport is what the router needs from one shard. The two
// implementations are HTTPTransport (a real indepd daemon) and
// LocalTransport (an in-process store, for benchmarks and race-able fault
// tests); the replication test harness wraps either with fault injection.
type Transport interface {
	// ApplyPartial forwards a binary sub-batch for per-op application
	// (POST /v1/batchbin?partial=1) and returns the shard's report.
	ApplyPartial(ctx context.Context, payload []byte) (*indep.BatchReport, error)
	// Relation fetches the shard's raw fragment of the named relation
	// (GET /v1/cluster/rel) decoded from its binary window encoding.
	Relation(ctx context.Context, rel string) (*indep.WindowResult, error)
	// Window evaluates a whole window query on the shard (GET /v1/window) —
	// the fallback path when the router cannot evaluate locally.
	Window(ctx context.Context, q indep.WindowQuery) (*indep.WindowResult, error)
	// Ping reports whether the shard is up and ready.
	Ping(ctx context.Context) error
}

// ShardError is a failed shard interaction: Status is the HTTP status the
// shard answered with, or 0 when it could not be reached at all. The router
// turns forward failures into 503 + Retry-After for the client.
type ShardError struct {
	Shard  string
	Status int
	Err    error
}

func (e *ShardError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster: shard %s answered %d: %v", e.Shard, e.Status, e.Err)
	}
	return fmt.Sprintf("cluster: shard %s unreachable: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// HTTPTransport talks to one shard daemon over its HTTP API.
type HTTPTransport struct {
	Shard  string
	Base   string // base URL, no trailing slash
	Client *http.Client
}

// NewHTTPTransport builds a transport for the member with a dedicated
// keep-alive client, so concurrent sub-batches to the same shard pipeline
// over warm connections.
func NewHTTPTransport(m Member, timeout time.Duration) *HTTPTransport {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &HTTPTransport{
		Shard:  m.Name,
		Base:   strings.TrimRight(m.URL, "/"),
		Client: &http.Client{Timeout: timeout},
	}
}

// maxShardResponse bounds a shard response body (reports, fragments,
// windows); a gigabyte-sized fragment means the deployment needed more
// parts, not more router memory.
const maxShardResponse = 256 << 20

func (t *HTTPTransport) do(ctx context.Context, method, path string, body []byte, contentType, accept string) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.Base+path, rd)
	if err != nil {
		return 0, nil, &ShardError{Shard: t.Shard, Err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return 0, nil, &ShardError{Shard: t.Shard, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
	if err != nil {
		return resp.StatusCode, nil, &ShardError{Shard: t.Shard, Status: resp.StatusCode, Err: err}
	}
	return resp.StatusCode, data, nil
}

// ApplyPartial implements Transport over POST /v1/batchbin?partial=1.
func (t *HTTPTransport) ApplyPartial(ctx context.Context, payload []byte) (*indep.BatchReport, error) {
	status, data, err := t.do(ctx, http.MethodPost, "/v1/batchbin?partial=1", payload, indep.BinContentType, "")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, &ShardError{Shard: t.Shard, Status: status, Err: fmt.Errorf("%s", strings.TrimSpace(string(data)))}
	}
	var rep indep.BatchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, &ShardError{Shard: t.Shard, Status: status, Err: fmt.Errorf("bad batch report: %w", err)}
	}
	return &rep, nil
}

// Relation implements Transport over GET /v1/cluster/rel.
func (t *HTTPTransport) Relation(ctx context.Context, rel string) (*indep.WindowResult, error) {
	status, data, err := t.do(ctx, http.MethodGet, "/v1/cluster/rel?name="+url.QueryEscape(rel), nil, "", indep.BinContentType)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, &ShardError{Shard: t.Shard, Status: status, Err: fmt.Errorf("%s", strings.TrimSpace(string(data)))}
	}
	res, err := indep.DecodeWindowBinary(data)
	if err != nil {
		return nil, &ShardError{Shard: t.Shard, Status: status, Err: err}
	}
	return res, nil
}

// Window implements Transport over GET /v1/window. The binary result
// carries everything but the explain plan, so an Explain query falls back
// to the JSON encoding.
func (t *HTTPTransport) Window(ctx context.Context, q indep.WindowQuery) (*indep.WindowResult, error) {
	vals := url.Values{}
	vals.Set("attrs", strings.Join(q.Attrs, ","))
	for a, v := range q.Where {
		vals.Add("where", a+"="+v)
	}
	if len(q.Project) > 0 {
		vals.Set("project", strings.Join(q.Project, ","))
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	accept := indep.BinContentType
	if q.Explain {
		vals.Set("explain", "1")
		accept = "application/json"
	}
	status, data, err := t.do(ctx, http.MethodGet, "/v1/window?"+vals.Encode(), nil, "", accept)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, &ShardError{Shard: t.Shard, Status: status, Err: fmt.Errorf("%s", strings.TrimSpace(string(data)))}
	}
	if !q.Explain {
		res, err := indep.DecodeWindowBinary(data)
		if err != nil {
			return nil, &ShardError{Shard: t.Shard, Status: status, Err: err}
		}
		return res, nil
	}
	var body struct {
		Attrs      []string             `json:"attrs"`
		Rows       []map[string]string  `json:"rows"`
		Total      int                  `json:"total"`
		FastPath   bool                 `json:"fastPath"`
		PlanCached bool                 `json:"planCached"`
		Explain    *indep.WindowExplain `json:"explain"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		return nil, &ShardError{Shard: t.Shard, Status: status, Err: fmt.Errorf("bad window response: %w", err)}
	}
	return &indep.WindowResult{
		Attrs: body.Attrs, Rows: body.Rows, Total: body.Total,
		FastPath: body.FastPath, PlanCached: body.PlanCached, Explain: body.Explain,
	}, nil
}

// Ping implements Transport over GET /readyz.
func (t *HTTPTransport) Ping(ctx context.Context) error {
	status, data, err := t.do(ctx, http.MethodGet, "/readyz", nil, "", "")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return &ShardError{Shard: t.Shard, Status: status, Err: fmt.Errorf("%s", strings.TrimSpace(string(data)))}
	}
	return nil
}

// LocalTransport serves a shard from an in-process store, still routing
// writes through the binary wire decoder so the bytes a router forwards are
// exercised end to end. Benchmarks (indepbench -shards) and the race-able
// cluster fault tests use it to run a whole cluster in one process.
type LocalTransport struct {
	Shard string
	Store *indep.ConcurrentStore
}

// ApplyPartial implements Transport on the in-process store.
func (t *LocalTransport) ApplyPartial(ctx context.Context, payload []byte) (*indep.BatchReport, error) {
	rep, err := t.Store.ApplyBinBatchPartial(ctx, payload)
	if err != nil {
		return nil, &ShardError{Shard: t.Shard, Err: err}
	}
	return rep, nil
}

// Relation implements Transport on the in-process store.
func (t *LocalTransport) Relation(ctx context.Context, rel string) (*indep.WindowResult, error) {
	data, err := t.Store.RelationBinary(rel)
	if err != nil {
		return nil, &ShardError{Shard: t.Shard, Err: err}
	}
	res, err := indep.DecodeWindowBinary(data)
	if err != nil {
		return nil, &ShardError{Shard: t.Shard, Err: err}
	}
	return res, nil
}

// Window implements Transport on the in-process store.
func (t *LocalTransport) Window(ctx context.Context, q indep.WindowQuery) (*indep.WindowResult, error) {
	res, err := t.Store.QueryCtx(ctx, q)
	if err != nil {
		return nil, &ShardError{Shard: t.Shard, Err: err}
	}
	return res, nil
}

// Ping implements Transport; an in-process store is always ready.
func (t *LocalTransport) Ping(context.Context) error { return nil }
