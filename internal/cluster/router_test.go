package cluster_test

// Router tests run a whole cluster in one process over LocalTransports (so
// -race watches every cross-shard interaction) and hold it against a
// single-node oracle: the independence theorem says sharded admission and
// gathered windows must be observably identical to one node holding all
// the data. The fault-injected variants wrap each transport in
// replt.ShardInjector and demand the same equivalence through disconnects,
// duplicated forwards, and a shard killed mid-batch.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"indep"
	"indep/internal/cluster"
	"indep/internal/replt"
)

// testCluster is an in-process cluster: one router over n shard stores.
type testCluster struct {
	sch    *indep.Schema
	rt     *cluster.Router
	stores map[string]*indep.ConcurrentStore
}

func runningExample(t testing.TB) *indep.Schema {
	t.Helper()
	sch, err := indep.Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// newTestCluster builds an n-shard local cluster. wrap, when non-nil, maps
// each shard's transport through a fault layer.
func newTestCluster(t testing.TB, sch *indep.Schema, n int, opts cluster.Options,
	wrap func(shard string, tr cluster.Transport) cluster.Transport) *testCluster {
	t.Helper()
	var members []cluster.Member
	stores := make(map[string]*indep.ConcurrentStore, n)
	opts.Transports = make(map[string]cluster.Transport, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("shard%d", i)
		members = append(members, cluster.Member{Name: name, URL: "local://" + name})
		store, err := sch.OpenConcurrentStore()
		if err != nil {
			t.Fatal(err)
		}
		stores[name] = store
		var tr cluster.Transport = &cluster.LocalTransport{Shard: name, Store: store}
		if wrap != nil {
			tr = wrap(name, tr)
		}
		opts.Transports[name] = tr
	}
	rt, err := cluster.NewRouter(sch, members, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testCluster{sch: sch, rt: rt, stores: stores}
}

// assembled unions every shard's fragments back into one database, through
// the same binary fragment encoding the router gathers over.
func (tc *testCluster) assembled(t testing.TB) *indep.Database {
	t.Helper()
	db := tc.sch.NewDatabase()
	for shard, store := range tc.stores {
		for _, rel := range tc.sch.Relations() {
			data, err := store.RelationBinary(rel)
			if err != nil {
				t.Fatalf("shard %s relation %s: %v", shard, rel, err)
			}
			frag, err := indep.DecodeWindowBinary(data)
			if err != nil {
				t.Fatalf("shard %s relation %s: %v", shard, rel, err)
			}
			for _, row := range frag.Rows {
				if err := db.Insert(rel, row); err != nil {
					t.Fatalf("assembling %s from %s: %v", rel, shard, err)
				}
			}
		}
	}
	return db
}

// clusterOps builds a deterministic mixed workload: valid inserts, FD
// violations (same C, different T), and deletes of earlier rows.
func clusterOps(rng *rand.Rand, n int) []indep.BatchOp {
	ops := make([]indep.BatchOp, 0, n)
	for i := 0; i < n; i++ {
		c := fmt.Sprintf("c%d", rng.Intn(n/2+1))
		switch rng.Intn(10) {
		case 0, 1, 2:
			ops = append(ops, indep.BatchOp{Rel: "CS", Row: map[string]string{"C": c, "S": fmt.Sprintf("s%d", rng.Intn(5))}})
		case 3, 4:
			ops = append(ops, indep.BatchOp{Rel: "CHR", Row: map[string]string{"C": c, "H": fmt.Sprintf("h%d", rng.Intn(4)), "R": "r0"}})
		case 5:
			// Violation bait: T depends on C, but T is drawn independently,
			// so repeats of the same C often disagree.
			ops = append(ops, indep.BatchOp{Rel: "CT", Row: map[string]string{"C": c, "T": fmt.Sprintf("t%d", rng.Intn(3))}})
		default:
			ops = append(ops, indep.BatchOp{Rel: "CT", Row: map[string]string{"C": c, "T": "t-of-" + c}})
		}
	}
	return ops
}

// encodePayload packs inserts and, for a suffix of the ops, deletes —
// matching the wire contract: all inserts apply before all deletes.
func encodePayload(t testing.TB, sch *indep.Schema, ops []indep.BatchOp, dels []indep.BatchOp) []byte {
	t.Helper()
	enc := indep.NewBinBatchEncoder(sch)
	for _, op := range ops {
		if err := enc.Add(op.Rel, op.Row); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range dels {
		if err := enc.Delete(op.Rel, op.Row); err != nil {
			t.Fatal(err)
		}
	}
	return enc.Bytes()
}

// reportsEqual compares two batch reports by counts and rejection
// positions. Error strings are compared by code only: the shard and the
// oracle phrase the same violation against different local states.
func reportsEqual(a, b *indep.BatchReport) string {
	if a.Ops != b.Ops || a.Processed != b.Processed || a.Applied != b.Applied {
		return fmt.Sprintf("counts differ: ops %d/%d processed %d/%d applied %d/%d",
			a.Ops, b.Ops, a.Processed, b.Processed, a.Applied, b.Applied)
	}
	if len(a.Rejected) != len(b.Rejected) {
		return fmt.Sprintf("rejected %d vs %d", len(a.Rejected), len(b.Rejected))
	}
	for i := range a.Rejected {
		if a.Rejected[i].Index != b.Rejected[i].Index || a.Rejected[i].Code != b.Rejected[i].Code {
			return fmt.Sprintf("rejection %d: (%d,%s) vs (%d,%s)", i,
				a.Rejected[i].Index, a.Rejected[i].Code, b.Rejected[i].Index, b.Rejected[i].Code)
		}
	}
	return ""
}

var windowPanel = [][]string{{"C", "T"}, {"C", "S"}, {"C", "H", "R"}, {"C", "T", "S"}, {"T", "S"}}

// checkOracle diffs the assembled cluster state (by value names — the
// gathered state interns in arrival order, so ids are not comparable) and
// the window panel against the single-node oracle.
func (tc *testCluster) checkOracle(t testing.TB, oracle *indep.ConcurrentStore) {
	t.Helper()
	if diffs := indep.DiffDatabasesByName(oracle.Snapshot(), tc.assembled(t)); diffs != nil {
		t.Fatalf("cluster diverged from single node: %v", diffs)
	}
	for _, attrs := range windowPanel {
		want, err := oracle.QueryCtx(context.Background(), indep.WindowQuery{Attrs: attrs})
		if err != nil {
			t.Fatalf("oracle window %v: %v", attrs, err)
		}
		got, err := tc.rt.Window(context.Background(), indep.WindowQuery{Attrs: attrs})
		if err != nil {
			t.Fatalf("router window %v: %v", attrs, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) || got.Total != want.Total {
			t.Fatalf("router window %v: %d rows (total %d), oracle %d rows (total %d)",
				attrs, len(got.Rows), got.Total, len(want.Rows), want.Total)
		}
	}
}

// TestRouterBatchMatchesSingleNode is the core equivalence: a mixed
// insert/delete payload routed across 3 shards produces the same per-op
// report and the same observable state as one node applying it serially.
func TestRouterBatchMatchesSingleNode(t *testing.T) {
	sch := runningExample(t)
	rng := rand.New(rand.NewSource(1))
	tc := newTestCluster(t, sch, 3, cluster.Options{}, nil)
	oracle, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 8; round++ {
		ops := clusterOps(rng, 120)
		var dels []indep.BatchOp
		for _, op := range ops {
			if rng.Intn(12) == 0 {
				dels = append(dels, op)
			}
		}
		payload := encodePayload(t, sch, ops, dels)

		want, err := oracle.ApplyBinBatchPartial(context.Background(), payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.rt.Batch(context.Background(), payload)
		if err != nil {
			t.Fatal(err)
		}
		if msg := reportsEqual(got, want); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
		if round == 0 && len(want.Rejected) == 0 {
			t.Fatal("workload produced no rejections; violation bait is broken")
		}
	}
	tc.checkOracle(t, oracle)
}

// TestRouterSingleOps pins Insert/Delete routing and the rejection error
// contract (indep.Rejected, matching ConcurrentStore).
func TestRouterSingleOps(t *testing.T) {
	sch := runningExample(t)
	tc := newTestCluster(t, sch, 3, cluster.Options{}, nil)
	ctx := context.Background()
	if err := tc.rt.Insert(ctx, "CT", map[string]string{"C": "c1", "T": "t1"}); err != nil {
		t.Fatal(err)
	}
	err := tc.rt.Insert(ctx, "CT", map[string]string{"C": "c1", "T": "t2"})
	if !indep.Rejected(err) {
		t.Fatalf("conflicting insert: got %v, want a rejection", err)
	}
	// Idempotent re-insert, then delete, then re-delete (a no-op).
	if err := tc.rt.Insert(ctx, "CT", map[string]string{"C": "c1", "T": "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rt.Delete(ctx, "CT", map[string]string{"C": "c1", "T": "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rt.Delete(ctx, "CT", map[string]string{"C": "c1", "T": "t1"}); err != nil {
		t.Fatal(err)
	}
	res, err := tc.rt.Window(ctx, indep.WindowQuery{Attrs: []string{"C", "T"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 {
		t.Fatalf("window after delete holds %d rows", res.Total)
	}
}

// TestRouterWindowFilters pins that where/project/limit survive the
// scatter-gather path unchanged.
func TestRouterWindowFilters(t *testing.T) {
	sch := runningExample(t)
	tc := newTestCluster(t, sch, 3, cluster.Options{}, nil)
	oracle, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	payload := encodePayload(t, sch, clusterOps(rng, 90), nil)
	if _, err := oracle.ApplyBinBatchPartial(ctx, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.rt.Batch(ctx, payload); err != nil {
		t.Fatal(err)
	}
	q := indep.WindowQuery{
		Attrs:   []string{"C", "T", "S"},
		Where:   map[string]string{"S": "s1"},
		Project: []string{"C", "S"},
		Limit:   5,
	}
	want, err := oracle.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.rt.Window(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) || got.Total != want.Total {
		t.Fatalf("filtered window: got %v (total %d), want %v (total %d)",
			got.Rows, got.Total, want.Rows, want.Total)
	}
}

// TestRouterFallbackMode pins the degraded path: a non-independent schema
// pins everything to one shard, windows are proxied, and status says so.
func TestRouterFallbackMode(t *testing.T) {
	sch, err := indep.Parse("R(A,B); S(B,C)", "C -> A")
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, sch, 3, cluster.Options{}, nil)
	shard, ok := tc.rt.Fallback()
	if !ok {
		t.Fatal("router did not report fallback mode")
	}
	st := tc.rt.Status()
	if st.Mode != "fallback" || st.Reason == "" {
		t.Fatalf("status = %q (%q), want fallback with a reason", st.Mode, st.Reason)
	}
	ctx := context.Background()
	if err := tc.rt.Insert(ctx, "R", map[string]string{"A": "a1", "B": "b1"}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rt.Insert(ctx, "S", map[string]string{"B": "b1", "C": "c1"}); err != nil {
		t.Fatal(err)
	}
	for name, store := range tc.stores {
		rows := store.Rows()
		if name == shard && rows != 2 {
			t.Errorf("designated shard %s holds %d rows, want 2", name, rows)
		}
		if name != shard && rows != 0 {
			t.Errorf("idle shard %s holds %d rows, want 0", name, rows)
		}
	}
	res, err := tc.rt.Window(ctx, indep.WindowQuery{Attrs: []string{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 1 {
		t.Fatalf("proxied window total = %d, want 1", res.Total)
	}
}

// TestRouterShardDown pins failure classification: with one shard
// unreachable, ops owned by it fail with a ShardError (the 503 signal),
// ops owned by live shards keep working, and the health table notices.
func TestRouterShardDown(t *testing.T) {
	sch := runningExample(t)
	injectors := make(map[string]*replt.ShardInjector)
	tc := newTestCluster(t, sch, 3, cluster.Options{Backoff: 1},
		func(shard string, tr cluster.Transport) cluster.Transport {
			in := replt.NewShardInjector(shard, tr, replt.ShardFaults{}, rand.New(rand.NewSource(3)))
			injectors[shard] = in
			return in
		})
	ctx := context.Background()

	// Find rows owned by two different shards.
	rowFor := func(dead string, want bool) map[string]string {
		for i := 0; ; i++ {
			row := map[string]string{"C": fmt.Sprintf("c%d", i), "T": "t"}
			owner, err := tc.rt.Placement().Owner("CT", row)
			if err != nil {
				t.Fatal(err)
			}
			if (owner == dead) == want {
				return row
			}
		}
	}
	const dead = "shard2"
	injectors[dead].Kill()

	err := tc.rt.Insert(ctx, "CT", rowFor(dead, true))
	var se *cluster.ShardError
	if !errors.As(err, &se) || se.Shard != dead {
		t.Fatalf("insert to dead shard: got %v, want ShardError{%s}", err, dead)
	}
	if indep.Rejected(err) {
		t.Fatal("an unreachable shard must not read as a constraint rejection")
	}
	if err := tc.rt.Insert(ctx, "CT", rowFor(dead, false)); err != nil {
		t.Fatalf("insert to live shard: %v", err)
	}

	tc.rt.CheckHealth(ctx)
	for _, h := range tc.rt.Health() {
		if h.Name == dead && h.Healthy {
			t.Errorf("health table still thinks %s is up", dead)
		}
		if h.Name != dead && !h.Healthy {
			t.Errorf("health table thinks %s is down", h.Name)
		}
	}

	// A gather that needs the dead shard fails as a ShardError too...
	if _, err := tc.rt.Window(ctx, indep.WindowQuery{Attrs: []string{"C", "T"}}); !errors.As(err, &se) {
		t.Fatalf("window over dead shard: got %v, want ShardError", err)
	}
	// ...and the shard coming back heals everything with no intervention.
	injectors[dead].Revive()
	if _, err := tc.rt.Window(ctx, indep.WindowQuery{Attrs: []string{"C", "T"}}); err != nil {
		t.Fatalf("window after revive: %v", err)
	}
	if tc.rt.CheckHealth(ctx); !tc.rt.Health()[1].Healthy {
		t.Error("health table did not recover after revive")
	}
}

// TestClusterSmokeFaulty is the CI cluster-smoke: a fixed-seed 3-shard
// cluster driven through flaky transports (disconnects and duplicated
// forwards on every shard) with one shard killed -9 mid-run, retrying
// whole payloads until they land. Afterward the gathered state and the
// window panel must match the single-node oracle bit for bit.
func TestClusterSmokeFaulty(t *testing.T) {
	sch := runningExample(t)
	rng := rand.New(rand.NewSource(42))
	injectors := make(map[string]*replt.ShardInjector)
	tc := newTestCluster(t, sch, 3, cluster.Options{Retries: 2, Backoff: 1},
		func(shard string, tr cluster.Transport) cluster.Transport {
			in := replt.NewShardInjector(shard, tr,
				replt.ShardFaults{Disconnect: 0.25, Duplicate: 0.25},
				rand.New(rand.NewSource(int64(len(shard)*1000+int(shard[len(shard)-1])))))
			injectors[shard] = in
			return in
		})
	oracle, err := sch.OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// deliver retries a payload until every shard has applied it — the
	// client contract: partial-failure reports plus idempotent re-applies
	// mean blind whole-payload retries converge.
	deliver := func(payload []byte) *indep.BatchReport {
		t.Helper()
		for attempt := 0; attempt < 100; attempt++ {
			rep, err := tc.rt.Batch(ctx, payload)
			if err == nil {
				return rep
			}
			var se *cluster.ShardError
			if !errors.As(err, &se) {
				t.Fatalf("non-shard batch error: %v", err)
			}
		}
		t.Fatal("payload failed to land in 100 attempts")
		return nil
	}

	const rounds, killAt, reviveAt = 12, 4, 8
	for round := 0; round < rounds; round++ {
		if round == killAt {
			injectors["shard1"].Kill() // kill -9 mid-run; retries span the outage
		}
		if round == reviveAt {
			injectors["shard1"].Revive()
		}
		ops := clusterOps(rng, 60)
		var dels []indep.BatchOp
		for _, op := range ops {
			// Under at-least-once delivery only payloads whose re-application
			// is a fixpoint converge. CS and CHR inserts can never be
			// rejected (no FD can fire on them in this workload), so deleting
			// their rows is idempotent; a CT delete could unshield a
			// conflicting CT insert in the same payload and flip its outcome
			// on redelivery — that is the documented client contract, not a
			// router defect, so the smoke stays inside it.
			if op.Rel != "CT" && rng.Intn(10) == 0 {
				dels = append(dels, op)
			}
		}
		payload := encodePayload(t, sch, ops, dels)
		want, err := oracle.ApplyBinBatchPartial(ctx, payload)
		if err != nil {
			t.Fatal(err)
		}
		if round >= killAt && round < reviveAt {
			// The dead shard owns some ranges: a payload touching them
			// cannot fully land; park it and verify the failure shape.
			rep, err := tc.rt.Batch(ctx, payload)
			if err == nil {
				// Every op happened to land on live shards; nothing to park.
				if msg := reportsEqual(rep, want); msg != "" {
					t.Fatalf("round %d (outage, all live): %s", round, msg)
				}
				continue
			}
			if !strings.Contains(err.Error(), "shard") {
				t.Fatalf("round %d: outage error does not name a shard: %v", round, err)
			}
			// Re-deliver the same payload after revival rounds do — here we
			// just retry immediately after reviving temporarily to keep the
			// oracle in lockstep (the real client would retry later).
			injectors["shard1"].Revive()
			rep = deliver(payload)
			injectors["shard1"].Kill()
			if msg := reportsEqual(rep, want); msg != "" {
				t.Fatalf("round %d (after retry): %s", round, msg)
			}
			continue
		}
		rep := deliver(payload)
		if msg := reportsEqual(rep, want); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
	}

	tc.checkOracle(t, oracle)

	var faults replt.ShardInjectorStats
	for _, in := range injectors {
		s := in.Stats()
		faults.Disconnects += s.Disconnects
		faults.Duplicates += s.Duplicates
		faults.Killed += s.Killed
	}
	if faults.Disconnects == 0 || faults.Duplicates == 0 || faults.Killed == 0 {
		t.Fatalf("fault schedule did not exercise every class: %+v", faults)
	}
	t.Logf("faults delivered: %+v", faults)
}

// TestRouterRejectedIndexRemap pins index reassembly: rejections reported
// by different shards come back under the client's op indices, sorted.
func TestRouterRejectedIndexRemap(t *testing.T) {
	sch := runningExample(t)
	tc := newTestCluster(t, sch, 3, cluster.Options{}, nil)
	ctx := context.Background()

	// Seed conflicting T values for many C's, then send a batch where every
	// op re-asserts a different T: every op must be rejected, across
	// whatever shards the C's hash to.
	var seed, clash []indep.BatchOp
	for i := 0; i < 24; i++ {
		c := fmt.Sprintf("c%d", i)
		seed = append(seed, indep.BatchOp{Rel: "CT", Row: map[string]string{"C": c, "T": "t-good"}})
		clash = append(clash, indep.BatchOp{Rel: "CT", Row: map[string]string{"C": c, "T": "t-bad"}})
	}
	if _, err := tc.rt.Batch(ctx, encodePayload(t, sch, seed, nil)); err != nil {
		t.Fatal(err)
	}
	rep, err := tc.rt.Batch(ctx, encodePayload(t, sch, clash, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 24 || rep.Processed != 24 || rep.Applied != 0 || len(rep.Rejected) != 24 {
		t.Fatalf("report = %+v, want 24 ops all rejected", rep)
	}
	for i, o := range rep.Rejected {
		if o.Index != i {
			t.Fatalf("rejection %d carries index %d; remap or sort is broken", i, o.Index)
		}
		if o.Code != "rejected" {
			t.Fatalf("rejection %d code = %q", i, o.Code)
		}
	}
}

// FuzzClusterRoute feeds arbitrary payloads to the router and demands it
// either rejects them exactly like a single node's decoder or applies them
// to exactly a single node's state.
func FuzzClusterRoute(f *testing.F) {
	sch, err := indep.Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	ops := clusterOps(rng, 12)
	enc := indep.NewBinBatchEncoder(sch)
	for _, op := range ops {
		if err := enc.Add(op.Rel, op.Row); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Delete(ops[0].Rel, ops[0].Row); err != nil {
		f.Fatal(err)
	}
	valid := enc.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("IBW1garbage"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		tc := newTestCluster(t, sch, 3, cluster.Options{}, nil)
		oracle, err := sch.OpenConcurrentStore()
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		want, wantErr := oracle.ApplyBinBatchPartial(ctx, payload)
		got, gotErr := tc.rt.Batch(ctx, payload)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("oracle err %v, router err %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if msg := reportsEqual(got, want); msg != "" {
			t.Fatal(msg)
		}
		if diffs := indep.DiffDatabasesByName(oracle.Snapshot(), tc.assembled(t)); diffs != nil {
			t.Fatalf("state diverged: %v", diffs)
		}
	})
}
