package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"indep"
)

func members(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{Name: fmt.Sprintf("shard%d", i+1), URL: fmt.Sprintf("http://shard%d:7070", i+1)}
	}
	return out
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=http://h1:1, b=http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{{Name: "a", URL: "http://h1:1"}, {Name: "b", URL: "http://h2:2"}}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("got %v, want %v", ms, want)
	}
	for _, bad := range []string{"", "a=", "=http://h", "noequals", "a=http://h,a=http://h2"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted", bad)
		}
	}
}

// TestRingDeterministic pins that two routers over the same membership
// compute identical ownership for every hash — the property that lets
// several stateless routers front the same shards.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(members(5), 64)
	b := NewRing(members(5), 64)
	for h := uint64(0); h < 10_000; h++ {
		x := h * 0x9e3779b97f4a7c15
		if a.Owner(x) != b.Owner(x) {
			t.Fatalf("rings disagree at %#x: %s vs %s", x, a.Owner(x), b.Owner(x))
		}
	}
}

// TestRingDistribution checks the consistent-hash ring spreads hashes
// roughly evenly: with 64 vnodes per member no shard should own more than
// about twice its fair share.
func TestRingDistribution(t *testing.T) {
	ring := NewRing(members(4), 64)
	counts := map[string]int{}
	const n = 40_000
	for h := uint64(0); h < n; h++ {
		counts[ring.Owner(h*0x9e3779b97f4a7c15+0x632be59bd9b4e019)]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d shards own anything: %v", len(counts), counts)
	}
	for shard, c := range counts {
		if c < n/4/2 || c > n/4*2 {
			t.Errorf("shard %s owns %d of %d (fair share %d)", shard, c, n, n/4)
		}
	}
}

func analyze(t *testing.T, schemaSrc, fdSrc string) (*indep.Schema, *indep.Analysis) {
	t.Helper()
	sch, err := indep.Parse(schemaSrc, fdSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := sch.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return sch, an
}

// TestPlacementPartitionKeys pins the partition rule on the paper's
// running example: key = intersection of the cover FDs' left-hand sides,
// full scheme when the relation has no FDs.
func TestPlacementPartitionKeys(t *testing.T) {
	sch, an := analyze(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if !an.Independent {
		t.Fatalf("running example not independent: %s", an.Reason)
	}
	p := PlanPlacement(sch, an, members(3), 6, 64)
	wantKeys := map[string][]string{
		"CT":  {"C"},
		"CS":  {"C", "S"},
		"CHR": {"C", "H"},
	}
	for rel, want := range wantKeys {
		if got := p.PartitionKey(rel); !reflect.DeepEqual(got, want) {
			t.Errorf("%s partition key = %v, want %v", rel, got, want)
		}
		if n := len(p.Owners(rel)); n < 2 {
			t.Errorf("%s spread over %d shards, want several (6 parts, 3 shards)", rel, n)
		}
	}
	if p.Parts() != 6 {
		t.Errorf("Parts() = %d, want 6", p.Parts())
	}
}

// TestPlacementOwnerColocatesConflicts pins partition-key soundness: two
// rows that agree on the key land on the same shard, regardless of their
// other attributes, so guard conflicts never span shards.
func TestPlacementOwnerColocatesConflicts(t *testing.T) {
	sch, an := analyze(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	p := PlanPlacement(sch, an, members(4), 8, 64)
	for i := 0; i < 200; i++ {
		c := fmt.Sprintf("c%d", i)
		a, err := p.Owner("CT", map[string]string{"C": c, "T": "t1"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Owner("CT", map[string]string{"C": c, "T": "a-different-t"})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("C=%s: conflicting rows placed on %s and %s", c, a, b)
		}
	}
	if _, err := p.Owner("CT", map[string]string{"T": "t"}); err == nil {
		t.Error("Owner accepted a row missing its partition-key attribute")
	}
	if _, err := p.Owner("nope", map[string]string{"C": "c"}); err == nil {
		t.Error("Owner accepted an unknown relation")
	}
}

// TestPlacementFallback pins that a non-independent schema places every
// relation whole on one designated shard.
func TestPlacementFallback(t *testing.T) {
	// A -> B is not embedded in any scheme that contains both: classic
	// non-independent design.
	sch, an := analyze(t, "R(A,B); S(B,C)", "C -> A")
	if an.Independent {
		t.Fatal("expected a non-independent schema")
	}
	p := PlanPlacement(sch, an, members(3), 6, 64)
	var pinned string
	for _, rel := range sch.Relations() {
		owners := p.Owners(rel)
		if len(owners) != 1 {
			t.Fatalf("%s spread over %v in fallback mode", rel, owners)
		}
		if pinned == "" {
			pinned = owners[0]
		} else if owners[0] != pinned {
			t.Fatalf("fallback split relations across %s and %s", pinned, owners[0])
		}
		if p.PartitionKey(rel) != nil {
			t.Errorf("%s has a partition key in fallback mode", rel)
		}
	}
}

// TestPlacementDeterministic pins that placement is a pure function of
// (schema, membership, parts): routers never have to gossip.
func TestPlacementDeterministic(t *testing.T) {
	sch, an := analyze(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	a := PlanPlacement(sch, an, members(3), 6, 64)
	b := PlanPlacement(sch, an, members(3), 6, 64)
	for _, rel := range sch.Relations() {
		if !reflect.DeepEqual(a.Owners(rel), b.Owners(rel)) {
			t.Fatalf("%s owners differ: %v vs %v", rel, a.Owners(rel), b.Owners(rel))
		}
		for i := 0; i < 100; i++ {
			row := map[string]string{"C": fmt.Sprint(i), "T": "t", "S": "s", "H": "h", "R": "r"}
			oa, _ := a.Owner(rel, row)
			ob, _ := b.Owner(rel, row)
			if oa != ob {
				t.Fatalf("%s row %d: %s vs %s", rel, i, oa, ob)
			}
		}
	}
}

func TestShardErrorFormat(t *testing.T) {
	unreachable := &ShardError{Shard: "s1", Err: fmt.Errorf("dial refused")}
	if !strings.Contains(unreachable.Error(), "unreachable") {
		t.Errorf("status-0 error should read as unreachable: %s", unreachable)
	}
	answered := &ShardError{Shard: "s1", Status: 500, Err: fmt.Errorf("boom")}
	if !strings.Contains(answered.Error(), "500") {
		t.Errorf("status error should carry the code: %s", answered)
	}
}
