package cluster_test

import (
	"context"
	"fmt"
	"testing"

	"indep"
	"indep/internal/cluster"
)

// benchPayloads builds conflict-free 64-op payloads cycling the relations.
func benchPayloads(b *testing.B, sch *indep.Schema, n int) [][]byte {
	b.Helper()
	rels := []struct {
		name  string
		attrs []string
	}{{"CT", []string{"C", "T"}}, {"CS", []string{"C", "S"}}, {"CHR", []string{"C", "H", "R"}}}
	var payloads [][]byte
	seed := 0
	for p := 0; p < n; p++ {
		enc := indep.NewBinBatchEncoder(sch)
		for i := 0; i < 64; i++ {
			r := rels[seed%len(rels)]
			row := make(map[string]string, len(r.attrs))
			for _, a := range r.attrs {
				row[a] = fmt.Sprintf("%s_%d", a, seed)
			}
			if err := enc.Add(r.name, row); err != nil {
				b.Fatal(err)
			}
			seed++
		}
		payloads = append(payloads, enc.Bytes())
	}
	return payloads
}

func benchRouter(b *testing.B, shards int) {
	sch, err := indep.Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		b.Fatal(err)
	}
	tc := newTestCluster(b, sch, shards, cluster.Options{}, nil)
	payloads := benchPayloads(b, sch, 256)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := tc.rt.Batch(ctx, payloads[i%len(payloads)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkRouterBatch1(b *testing.B) { benchRouter(b, 1) }
func BenchmarkRouterBatch4(b *testing.B) { benchRouter(b, 4) }

func BenchmarkApplyPartial(b *testing.B) {
	sch, err := indep.Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		b.Fatal(err)
	}
	cs, err := sch.OpenConcurrentStore()
	if err != nil {
		b.Fatal(err)
	}
	payloads := benchPayloads(b, sch, 256)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.ApplyBinBatchPartial(ctx, payloads[i%len(payloads)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinBatch(b *testing.B) {
	sch, err := indep.Parse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	if err != nil {
		b.Fatal(err)
	}
	payloads := benchPayloads(b, sch, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.DecodeBinBatch(payloads[i%len(payloads)]); err != nil {
			b.Fatal(err)
		}
	}
}
