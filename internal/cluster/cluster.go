// Package cluster is the sharded serving tier: a routing layer that spreads
// an independent schema's relations — and hash ranges of their tuples —
// across shard daemons, with no cross-shard coordination on the write path.
//
// The placement rule is the paper's independence theorem read as a
// distribution theorem. In an independent schema every insert is validated
// by a per-relation guard that only compares tuples agreeing on the
// left-hand side of some cover FD. The partition key of a relation is the
// intersection of those left-hand sides (Analysis.PartitionKeys): any two
// tuples that could ever interact under the guard agree on the key, so
// hashing the key's value names sends every potential conflict to the same
// shard, and each shard validates its fragment with only local state. The
// global state is consistent iff every shard's fragment is — which is
// exactly what independence (LSAT = WSAT) guarantees. A relation whose
// left-hand sides share no attribute cannot be split this way and lives
// whole on one shard; a non-independent schema cannot be split at all and
// falls back to a single serialized node behind the router.
//
// Reads use the same theorem in the other direction. A window plan knows
// precisely which relations an evaluation consults
// (Schema.WindowConsults): the contributing relations plus those their
// extension tableaux take valuations against. The router gathers exactly
// those relations' fragments from their owners and evaluates the window
// locally over the assembled state — the result is identical to a single
// node's because window evaluation is a pure function of those relations'
// contents.
//
// Membership is static: a parsed -shards list placed on a consistent-hash
// ring with virtual nodes, so adding a shard to the list moves only the
// ranges it takes over. There is no failover or rebalancing; an unreachable
// shard makes its ranges unavailable (503 with Retry-After) until it
// returns.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"indep/internal/hashkey"
)

// Member is one shard of the static membership: a short name (the label on
// metrics and reports) and the base URL its daemon listens on.
type Member struct {
	Name string
	URL  string
}

// ParseMembers parses a -shards flag value: comma-separated name=url pairs,
// e.g. "shard1=http://10.0.0.1:8080,shard2=http://10.0.0.2:8080". Names
// must be unique and non-empty; order is irrelevant (placement depends only
// on the name set).
func ParseMembers(s string) ([]Member, error) {
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad shard %q (want name=url)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		seen[name] = true
		out = append(out, Member{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty shard list")
	}
	return out, nil
}

// Ring is a consistent-hash ring over the member names: each member
// projects vnodes points onto the 64-bit hash circle, and a key is owned by
// the first point at or clockwise of its hash. Placement depends only on
// the name set, so every router over the same membership computes the same
// ring, and removing a member moves only the keys it owned.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing builds the ring. vnodes points per member smooth the load split;
// 64 keeps the largest/smallest member spread within a few percent.
func NewRing(members []Member, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		h := hashkey.Str(hashkey.Init, m.Name)
		for v := 0; v < vnodes; v++ {
			h = hashkey.Mix(h, uint64(v)+1)
			r.points = append(r.points, ringPoint{hash: h, owner: m.Name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.owner < b.owner // deterministic on (vanishingly rare) ties
	})
	return r
}

// Owner returns the member name owning the hash.
func (r *Ring) Owner(h uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.points[i].owner
}
