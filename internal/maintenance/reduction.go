package maintenance

import (
	"fmt"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Reduction is an instance of the paper's Theorem 1 construction: a
// maintenance-problem instance (p, p', D, F) such that p satisfies
// Σ = F ∪ {*D}, p' is p with the single tuple Inserted added to the last
// relation, and p' is satisfying iff t ∉ π_X[*π_{R_i}(r)] — the
// NP-complete tuple-membership-in-join problem of [Y]. Deciding the
// maintenance problem therefore decides join membership.
type Reduction struct {
	Schema   *schema.Schema
	FDs      fd.List
	P        *relation.State // the satisfying base state
	Inserted relation.Tuple  // the tuple whose insertion is in question
	Last     int             // index of the scheme receiving the insert
}

// BuildReduction constructs the Theorem 1 instance from a universal
// relation r over the original universe, a database schema given as
// attribute sets over that universe, a target tuple t over the attribute
// set x. Two fresh attributes A and B are appended: A joins every scheme,
// B only the last, and F = {X → B}.
func BuildReduction(u *attrset.Universe, r *relation.Instance, schemes []attrset.Set, x attrset.Set, t relation.Tuple) (*Reduction, error) {
	if len(schemes) == 0 {
		return nil, fmt.Errorf("maintenance: reduction needs at least one scheme")
	}
	if r.Attrs != u.All() {
		return nil, fmt.Errorf("maintenance: r must be a universal relation")
	}
	n := u.Size()

	// New universe U' = U ∪ {A, B}.
	u2 := attrset.NewUniverse()
	for i := 0; i < n; i++ {
		u2.Add(u.Name(i))
	}
	aIdx := u2.Add("_A")
	bIdx := u2.Add("_B")

	// D = {R_1 A, …, R_{k−1} A, R_k A B}.
	var rels []schema.Rel
	for i, rs := range schemes {
		attrs := rs.With(aIdx)
		if i == len(schemes)-1 {
			attrs = attrs.With(bIdx)
		}
		rels = append(rels, schema.Rel{Name: fmt.Sprintf("R%d", i+1), Attrs: attrs})
	}
	s2 := schema.New(u2, rels...)
	if err := s2.Validate(); err != nil {
		return nil, err
	}

	// F = {X → B}.
	fds := fd.List{{LHS: x, RHS: attrset.Of(bIdx)}}

	// Constants: a = 0, b = 1; fresh values must avoid r's values, so start
	// beyond the maximum value in r and t.
	const aVal, bVal = relation.Value(1_000_000), relation.Value(1_000_001)
	fresh := relation.Value(2_000_000)

	// s = r extended with A=a, B=b on every tuple; t1 = t extended with
	// fresh values on U−X, A=a, B fresh.
	ext := relation.NewInstance(u2.All())
	for _, tu := range r.Rows() {
		row := make(relation.Tuple, n+2)
		copy(row, tu)
		row[aIdx] = aVal
		row[bIdx] = bVal
		ext.Add(row)
	}
	t1 := make(relation.Tuple, n+2)
	xCols := x.Attrs()
	if len(xCols) != len(t) {
		return nil, fmt.Errorf("maintenance: tuple arity %d does not match |X|=%d", len(t), len(xCols))
	}
	for c := 0; c < n; c++ {
		t1[c] = fresh
		fresh++
	}
	for i, c := range xCols {
		t1[c] = t[i]
	}
	t1[aIdx] = aVal
	t1[bIdx] = fresh

	// p: the first k−1 relations are projections of s1 = s ∪ {t1}; the last
	// is the projection of s alone.
	last := len(rels) - 1
	p := relation.NewState(s2)
	s1 := ext.Clone()
	s1.Add(t1)
	for i := range rels {
		src := s1
		if i == last {
			src = ext
		}
		p.Insts[i] = src.Project(rels[i].Attrs)
	}

	// The candidate insert is t1 projected on the last scheme.
	insTuple := make(relation.Tuple, 0, rels[last].Attrs.Len())
	for _, c := range rels[last].Attrs.Attrs() {
		insTuple = append(insTuple, t1[c])
	}

	return &Reduction{Schema: s2, FDs: fds, P: p, Inserted: insTuple, Last: last}, nil
}

// MemberOfJoin answers the underlying NP-complete question directly (by
// computing the join): is t ∈ π_X[*π_{R_i}(r)]? Exponential in general;
// used as the oracle in tests and experiments.
func MemberOfJoin(r *relation.Instance, schemes []attrset.Set, x attrset.Set, t relation.Tuple) bool {
	var acc *relation.Instance
	for _, rs := range schemes {
		proj := r.Project(rs)
		if acc == nil {
			acc = proj
		} else {
			acc = relation.Join(acc, proj)
		}
	}
	if acc == nil {
		return false
	}
	return acc.Project(x).Has(t)
}
