// Package maintenance implements the paper's motivating application: the
// maintenance problem. "If p is a state satisfying Σ, and p' results from a
// simple modification of p (e.g., the insertion of a single tuple into a
// single instance of p), is p' satisfying?"
//
// Theorem 1 shows no polynomial algorithm exists in general (unless P=NP);
// the reduction is implemented in reduction.go. For independent schemas,
// however, each relation's implied constraint set Σ_i is covered by the
// embedded FDs F_i, so maintenance reduces to a per-relation FD check —
// Guard implements it with hash indexes in O(|F_i|) per insert. For
// arbitrary schemas ChaseMaintainer re-runs the weak-instance chase.
package maintenance

import (
	"errors"
	"fmt"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

// ErrViolation is wrapped by errors describing a rejected insert.
var ErrViolation = errors.New("maintenance: insert violates dependencies")

// Maintainer answers the maintenance problem for single-tuple inserts and
// deletes.
type Maintainer interface {
	// Insert checks the tuple and, when admissible, adds it to the state.
	// A wrapped ErrViolation means the new state would be unsatisfying.
	Insert(scheme int, t relation.Tuple) error
	// Delete removes the tuple, reporting whether it was present. SAT is
	// closed under subsets (a weak instance for p remains one for any
	// p' ⊆ p), so deletions are always admissible and never return a
	// violation.
	Delete(scheme int, t relation.Tuple) (bool, error)
	// State returns the maintained state (shared, not a copy).
	State() *relation.State
}

// Guard is the fast maintainer for independent schemas: it enforces, for
// each relation R_i, the embedded FD cover F_i produced by the independence
// decision procedure. By Theorem 3's corollary, F_i covers Σ_i when the
// schema is independent, so this per-relation check is exactly the
// maintenance problem. Each FD keeps a hash index from left-hand-side
// values to the unique right-hand-side values, making inserts O(|F_i|).
//
// The indexes are binary: a left-hand side is keyed by the 64-bit hash of
// its values, and each index entry holds witness values (the lhs and rhs
// columns of some admitted tuple, copied into a flat per-FD value arena)
// that resolve both hash collisions and the right-hand-side comparison —
// no string keys are built anywhere. The guard owns the witness values
// outright: the relation's columnar storage recycles row slots on delete,
// so an entry may never reference instance storage. Entries live in a
// per-FD arena with a free list (a recycled entry reuses its value block),
// and per-scheme probe scratch is preallocated, so steady-state inserts,
// duplicate inserts, rejections, and insert/delete cycles allocate
// nothing.
type Guard struct {
	s       *schema.Schema
	st      *relation.State
	fds     [][]guardFD // per scheme
	scratch [][]probe   // per scheme, len == len(fds[scheme]), reused across calls
}

type guardFD struct {
	f       fd.FD
	lhsCols []int
	rhsCols []int
	index   map[uint64]int32 // lhs hash → head of entry chain in the arena
	entries []fdEntry        // arena; slots recycled through free
	vals    []relation.Value // witness values, entries[e] owns the fixed-width block at e*width
	free    []int32
	errViol error // precomputed: the message depends only on (FD, scheme)
}

// width is the size of one entry's witness block in vals: the lhs values
// followed by the rhs values.
func (gf *guardFD) width() int { return len(gf.lhsCols) + len(gf.rhsCols) }

// probe records one FD's lookup during the verify phase so the commit
// phase can reuse it: the lhs hash and the matched entry (-1 when the lhs
// was unseen).
type probe struct {
	h     uint64
	entry int32
}

// fdEntry records one left-hand-side binding: a reference count of the
// distinct tuples sharing the binding and the next entry on the same hash
// chain (-1 ends it). The binding's witness values — the lhs and rhs of
// some admitted tuple; any tuple with this lhs agrees on the rhs while the
// FD holds, so even a later-deleted witness stays valid — live in the
// owning guardFD's vals arena at the entry's fixed-width block. Deletes
// decrement and recycle the slot at zero, so a value binding is forgotten
// as soon as no tuple witnesses it.
type fdEntry struct {
	n    int32
	next int32
}

// NewGuard builds a guard from the schema and the per-scheme embedded cover
// (the Cover field of an independent analysis result). The state starts
// empty.
func NewGuard(s *schema.Schema, cover infer.AssignedList) *Guard {
	g := &Guard{
		s:       s,
		st:      relation.NewState(s),
		fds:     make([][]guardFD, len(s.Rels)),
		scratch: make([][]probe, len(s.Rels)),
	}
	for i := range s.Rels {
		cols := s.Attrs(i).Attrs()
		at := make(map[int]int, len(cols))
		for j, a := range cols {
			at[a] = j
		}
		for _, f := range cover.ForScheme(i) {
			gf := guardFD{f: f, index: make(map[uint64]int32)}
			f.LHS.ForEach(func(attr int) bool {
				gf.lhsCols = append(gf.lhsCols, at[attr])
				return true
			})
			f.RHS.Diff(f.LHS).ForEach(func(attr int) bool {
				gf.rhsCols = append(gf.rhsCols, at[attr])
				return true
			})
			if len(gf.rhsCols) > 0 {
				gf.errViol = fmt.Errorf("%w: %s in %s", ErrViolation, f.Format(s.U), s.Name(i))
				g.fds[i] = append(g.fds[i], gf)
			}
		}
		g.scratch[i] = make([]probe, len(g.fds[i]))
	}
	return g
}

// lhsAgrees reports whether entry e's witness lhs values equal t's values
// at the lhs columns.
func (gf *guardFD) lhsAgrees(e int32, t relation.Tuple) bool {
	w := gf.vals[int(e)*gf.width():]
	for i, c := range gf.lhsCols {
		if w[i] != t[c] {
			return false
		}
	}
	return true
}

// rhsAgrees reports whether entry e's witness rhs values equal t's values
// at the rhs columns.
func (gf *guardFD) rhsAgrees(e int32, t relation.Tuple) bool {
	w := gf.vals[int(e)*gf.width()+len(gf.lhsCols):]
	for i, c := range gf.rhsCols {
		if w[i] != t[c] {
			return false
		}
	}
	return true
}

// lookup walks the hash chain for h and returns the entry whose witness
// agrees with t on the lhs columns, or -1.
func (gf *guardFD) lookup(h uint64, t relation.Tuple) int32 {
	head, ok := gf.index[h]
	if !ok {
		return -1
	}
	for e := head; e >= 0; e = gf.entries[e].next {
		if gf.lhsAgrees(e, t) {
			return e
		}
	}
	return -1
}

// insertEntry records a fresh lhs binding witnessed by t's lhs and rhs
// values (copied into the value arena), reusing a free arena slot — and
// its value block — when one exists.
func (gf *guardFD) insertEntry(h uint64, t relation.Tuple) {
	next := int32(-1)
	if head, ok := gf.index[h]; ok {
		next = head
	}
	var slot int32
	if n := len(gf.free); n > 0 {
		slot = gf.free[n-1]
		gf.free = gf.free[:n-1]
		gf.entries[slot] = fdEntry{n: 1, next: next}
	} else {
		slot = int32(len(gf.entries))
		gf.entries = append(gf.entries, fdEntry{n: 1, next: next})
		for i := 0; i < gf.width(); i++ { // zero-extend without a temp slice
			gf.vals = append(gf.vals, 0)
		}
	}
	w := gf.vals[int(slot)*gf.width():]
	for i, c := range gf.lhsCols {
		w[i] = t[c]
	}
	for i, c := range gf.rhsCols {
		w[len(gf.lhsCols)+i] = t[c]
	}
	gf.index[h] = slot
}

// removeEntry unlinks entry e from the chain for h and recycles its slot.
func (gf *guardFD) removeEntry(h uint64, e int32) {
	if gf.index[h] == e {
		if next := gf.entries[e].next; next >= 0 {
			gf.index[h] = next
		} else {
			delete(gf.index, h)
		}
	} else {
		for p := gf.index[h]; ; p = gf.entries[p].next {
			if gf.entries[p].next == e {
				gf.entries[p].next = gf.entries[e].next
				break
			}
		}
	}
	gf.entries[e] = fdEntry{next: -1} // witness block in vals is reused as-is on recycle
	gf.free = append(gf.free, e)
}

// Insert implements Maintainer. It is O(|F_i|) expected time per call.
func (g *Guard) Insert(scheme int, t relation.Tuple) error {
	_, err := g.InsertReport(scheme, t)
	return err
}

// InsertReport is Insert, additionally reporting whether the tuple was
// actually added (false for admissible duplicates) — concurrent callers
// need this for bookkeeping without re-probing the instance index.
func (g *Guard) InsertReport(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(g.fds) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	fds := g.fds[scheme]
	// First verify all FDs, then commit; a half-committed index would
	// otherwise corrupt later checks. Probes are remembered in the scheme's
	// scratch so commit re-walks no chains.
	probes := g.scratch[scheme]
	for j := range fds {
		gf := &fds[j]
		h := relation.HashCols(t, gf.lhsCols)
		e := gf.lookup(h, t)
		if e >= 0 && !gf.rhsAgrees(e, t) {
			return false, gf.errViol
		}
		probes[j] = probe{h: h, entry: e}
	}
	if !g.st.Insts[scheme].Add(t) {
		return false, nil // duplicate tuple: state and indexes unchanged
	}
	// New entries copy t's witness values into the guard's own arena — the
	// instance's columnar storage recycles row slots, so nothing there is
	// stable enough to reference.
	for j := range fds {
		gf := &fds[j]
		if e := probes[j].entry; e >= 0 {
			gf.entries[e].n++
		} else {
			gf.insertEntry(probes[j].h, t)
		}
	}
	return true, nil
}

// Delete implements Maintainer. Deletions are always admissible; the work is
// unwinding the FD indexes so a later insert is judged against the remaining
// tuples only.
func (g *Guard) Delete(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(g.fds) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	if !g.st.Insts[scheme].Remove(t) {
		return false, nil
	}
	fds := g.fds[scheme]
	for j := range fds {
		gf := &fds[j]
		h := relation.HashCols(t, gf.lhsCols)
		if e := gf.lookup(h, t); e >= 0 {
			if gf.entries[e].n--; gf.entries[e].n == 0 {
				gf.removeEntry(h, e)
			}
		}
	}
	return true, nil
}

// State implements Maintainer.
func (g *Guard) State() *relation.State { return g.st }

// ChaseMaintainer is the general maintainer: every insert is admitted only
// if the chase of the new state under F ∪ {*D} finds no contradiction.
// Sound for any schema, but exponential in the worst case (Theorem 1 says
// this is unavoidable in general).
//
// Without a join dependency (jd=false, the FD-only chase Lemma 4 licenses
// whenever every FD is embedded), the maintainer is incremental: it keeps
// one chase engine padded with the whole state and chased to fixpoint, and
// a trial insert pads just the candidate tuple and chases its consequences
// — no state clone, no re-chase of old rows. A rejected trial poisons the
// engine (symbol merges cannot be undone), so it is lazily rebuilt from the
// unchanged state before the next trial; deletions poison it the same way.
// Accepting workloads therefore pay O(consequences) per insert and rebuild
// never.
//
// With a join dependency the JD-rule's row growth defeats incremental
// reuse, so each insert re-chases — but still without cloning the state:
// the candidate is padded on top of it (chase.SatisfiesWith).
type ChaseMaintainer struct {
	s    *schema.Schema
	fds  fd.List
	sfds fd.List // fds.Split(), the form the engine consumes
	st   *relation.State
	jd   bool
	caps chase.Caps

	eng   *chase.Engine // persistent incremental engine (jd=false only)
	stale bool          // eng no longer mirrors st and must be rebuilt
}

// NewChaseMaintainer builds a chase-based maintainer with an empty state.
// Pass jd=false when every FD is embedded (Lemma 4 makes the join
// dependency irrelevant, and the FD-only chase is polynomial).
func NewChaseMaintainer(s *schema.Schema, fds fd.List, jd bool, caps chase.Caps) *ChaseMaintainer {
	return &ChaseMaintainer{
		s: s, fds: fds, sfds: fds.Split(), st: relation.NewState(s), jd: jd, caps: caps,
	}
}

// Insert implements Maintainer by trial insertion and a full chase.
func (m *ChaseMaintainer) Insert(scheme int, t relation.Tuple) error {
	_, err := m.InsertReport(scheme, t)
	return err
}

// engine returns the incremental engine, rebuilding it from the state when
// absent or poisoned. A maintained state always satisfies the FDs, so the
// rebuild chase cannot fail; a failure would mean corruption and is
// reported.
func (m *ChaseMaintainer) engine() (*chase.Engine, error) {
	if m.eng != nil && !m.stale {
		return m.eng, nil
	}
	e := chase.NewEngine(m.s.U)
	e.PadState(m.st)
	if err := e.ChaseFDs(m.sfds, m.caps); err != nil {
		return nil, fmt.Errorf("maintenance: maintained state fails its own chase: %w", err)
	}
	m.eng, m.stale = e, false
	return e, nil
}

// tryInsert pads the candidate tuples into the incremental engine and
// chases their consequences. On contradiction the engine is poisoned and a
// violation returned; the state itself is never touched.
func (m *ChaseMaintainer) tryInsert(ops []chase.Extra) error {
	e, err := m.engine()
	if err != nil {
		return err
	}
	for _, op := range ops {
		e.PadTuple(m.s.Attrs(op.Scheme).Attrs(), op.Tuple)
	}
	if err := e.ChaseFDs(m.sfds, m.caps); err != nil {
		m.stale = true
		if e.Failed {
			return fmt.Errorf("%w: chase found a contradiction", ErrViolation)
		}
		return err
	}
	return nil
}

// InsertReport is Insert, additionally reporting whether the tuple was
// actually added. Duplicates short-circuit without a chase: re-adding a
// present tuple cannot change satisfaction.
func (m *ChaseMaintainer) InsertReport(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(m.st.Insts) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	if m.st.Insts[scheme].Has(t) {
		return false, nil
	}
	if m.jd {
		ok, err := chase.SatisfiesWith(m.st, []chase.Extra{{Scheme: scheme, Tuple: t}},
			m.fds, true, m.caps)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, fmt.Errorf("%w: chase found a contradiction", ErrViolation)
		}
	} else if err := m.tryInsert([]chase.Extra{{Scheme: scheme, Tuple: t}}); err != nil {
		return false, err
	}
	m.st.Insts[scheme].Add(t)
	return true, nil
}

// InsertBatchReport trial-inserts a batch atomically: either every tuple is
// admissible together and all are added, or the state is left unchanged and
// the violation (or budget error) is returned. Added reports the ops that
// actually changed the state, in op order (duplicates are skipped). One
// chase validates the whole batch.
func (m *ChaseMaintainer) InsertBatchReport(ops []chase.Extra) (added []chase.Extra, err error) {
	for _, op := range ops {
		if op.Scheme < 0 || op.Scheme >= len(m.st.Insts) {
			return nil, fmt.Errorf("maintenance: no scheme %d", op.Scheme)
		}
	}
	// Materialize the incremental engine from the pre-batch state before
	// touching it: a lazy rebuild below would otherwise pad the candidate
	// tuples as settled fact and misread the batch's own violation as
	// state corruption.
	if !m.jd {
		if _, err := m.engine(); err != nil {
			return nil, err
		}
	}
	fresh := make([]chase.Extra, 0, len(ops))
	for _, op := range ops {
		// Add now so in-batch duplicates collapse; roll back below unless
		// the whole batch chases clean.
		if m.st.Insts[op.Scheme].Add(op.Tuple) {
			fresh = append(fresh, op)
		}
	}
	if len(fresh) == 0 {
		return nil, nil
	}
	rollback := func() {
		for i := len(fresh) - 1; i >= 0; i-- {
			m.st.Insts[fresh[i].Scheme].Remove(fresh[i].Tuple)
		}
	}
	if m.jd {
		ok, serr := chase.Satisfies(m.st, m.fds, true, m.caps)
		if serr != nil {
			rollback()
			return nil, serr
		}
		if !ok {
			rollback()
			return nil, fmt.Errorf("%w: chase found a contradiction", ErrViolation)
		}
		return fresh, nil
	}
	if err := m.tryInsert(fresh); err != nil {
		rollback()
		return nil, err
	}
	return fresh, nil
}

// Delete implements Maintainer. No chase is needed: SAT is closed under
// subsets, so removing a tuple can never break satisfaction. The
// incremental engine cannot un-merge the removed tuple's consequences, so
// it is rebuilt before the next trial insert.
func (m *ChaseMaintainer) Delete(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(m.st.Insts) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	removed := m.st.Insts[scheme].Remove(t)
	if removed {
		m.stale = true
	}
	return removed, nil
}

// State implements Maintainer.
func (m *ChaseMaintainer) State() *relation.State { return m.st }

// ForSchema picks the right maintainer for a schema: the O(|F_i|) Guard
// when the independence decision procedure accepts, otherwise the chase
// maintainer. The boolean reports which one was chosen.
func ForSchema(s *schema.Schema, fds fd.List, caps chase.Caps) (Maintainer, bool, error) {
	res, err := independence.Decide(s, fds)
	if err != nil {
		return nil, false, err
	}
	if res.Independent {
		return NewGuard(s, res.Cover), true, nil
	}
	return NewChaseMaintainer(s, fds, !infer.AllEmbedded(s, fds), caps), false, nil
}
