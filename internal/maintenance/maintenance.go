// Package maintenance implements the paper's motivating application: the
// maintenance problem. "If p is a state satisfying Σ, and p' results from a
// simple modification of p (e.g., the insertion of a single tuple into a
// single instance of p), is p' satisfying?"
//
// Theorem 1 shows no polynomial algorithm exists in general (unless P=NP);
// the reduction is implemented in reduction.go. For independent schemas,
// however, each relation's implied constraint set Σ_i is covered by the
// embedded FDs F_i, so maintenance reduces to a per-relation FD check —
// Guard implements it with hash indexes in O(|F_i|) per insert. For
// arbitrary schemas ChaseMaintainer re-runs the weak-instance chase.
package maintenance

import (
	"errors"
	"fmt"
	"strings"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/relation"
	"indep/internal/schema"
)

// ErrViolation is wrapped by errors describing a rejected insert.
var ErrViolation = errors.New("maintenance: insert violates dependencies")

// Maintainer answers the maintenance problem for single-tuple inserts and
// deletes.
type Maintainer interface {
	// Insert checks the tuple and, when admissible, adds it to the state.
	// A wrapped ErrViolation means the new state would be unsatisfying.
	Insert(scheme int, t relation.Tuple) error
	// Delete removes the tuple, reporting whether it was present. SAT is
	// closed under subsets (a weak instance for p remains one for any
	// p' ⊆ p), so deletions are always admissible and never return a
	// violation.
	Delete(scheme int, t relation.Tuple) (bool, error)
	// State returns the maintained state (shared, not a copy).
	State() *relation.State
}

// Guard is the fast maintainer for independent schemas: it enforces, for
// each relation R_i, the embedded FD cover F_i produced by the independence
// decision procedure. By Theorem 3's corollary, F_i covers Σ_i when the
// schema is independent, so this per-relation check is exactly the
// maintenance problem. Each FD keeps a hash index from left-hand-side
// values to the unique right-hand-side values, making inserts O(|F_i|).
type Guard struct {
	s   *schema.Schema
	st  *relation.State
	fds [][]guardFD // per scheme
}

type guardFD struct {
	f       fd.FD
	lhsCols []int
	rhsCols []int
	index   map[string]*fdEntry
}

// fdEntry records the unique right-hand-side key seen for a left-hand-side
// key, with a reference count of the distinct tuples carrying it. Deletes
// decrement and drop the entry at zero, so a value binding is forgotten as
// soon as no tuple witnesses it.
type fdEntry struct {
	rhs string
	n   int
}

// NewGuard builds a guard from the schema and the per-scheme embedded cover
// (the Cover field of an independent analysis result). The state starts
// empty.
func NewGuard(s *schema.Schema, cover infer.AssignedList) *Guard {
	g := &Guard{s: s, st: relation.NewState(s), fds: make([][]guardFD, len(s.Rels))}
	for i := range s.Rels {
		cols := s.Attrs(i).Attrs()
		at := make(map[int]int, len(cols))
		for j, a := range cols {
			at[a] = j
		}
		for _, f := range cover.ForScheme(i) {
			gf := guardFD{f: f, index: make(map[string]*fdEntry)}
			f.LHS.ForEach(func(attr int) bool {
				gf.lhsCols = append(gf.lhsCols, at[attr])
				return true
			})
			f.RHS.Diff(f.LHS).ForEach(func(attr int) bool {
				gf.rhsCols = append(gf.rhsCols, at[attr])
				return true
			})
			if len(gf.rhsCols) > 0 {
				g.fds[i] = append(g.fds[i], gf)
			}
		}
	}
	return g
}

func key(t relation.Tuple, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&b, "%d|", int64(t[c]))
	}
	return b.String()
}

// Insert implements Maintainer. It is O(|F_i|) expected time per call.
func (g *Guard) Insert(scheme int, t relation.Tuple) error {
	_, err := g.InsertReport(scheme, t)
	return err
}

// InsertReport is Insert, additionally reporting whether the tuple was
// actually added (false for admissible duplicates) — concurrent callers
// need this for bookkeeping without re-probing the instance index.
func (g *Guard) InsertReport(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(g.fds) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	fds := g.fds[scheme]
	// First verify all FDs, then commit; a half-committed index would
	// otherwise corrupt later checks.
	keys := make([][2]string, len(fds))
	for j, gf := range fds {
		lk, rk := key(t, gf.lhsCols), key(t, gf.rhsCols)
		if prev, ok := gf.index[lk]; ok && prev.rhs != rk {
			return false, fmt.Errorf("%w: %s in %s", ErrViolation,
				gf.f.Format(g.s.U), g.s.Name(scheme))
		}
		keys[j] = [2]string{lk, rk}
	}
	if !g.st.Insts[scheme].Add(t) {
		return false, nil // duplicate tuple: state and indexes unchanged
	}
	for j, gf := range fds {
		if e, ok := gf.index[keys[j][0]]; ok {
			e.n++
		} else {
			gf.index[keys[j][0]] = &fdEntry{rhs: keys[j][1], n: 1}
		}
	}
	return true, nil
}

// Delete implements Maintainer. Deletions are always admissible; the work is
// unwinding the FD indexes so a later insert is judged against the remaining
// tuples only.
func (g *Guard) Delete(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(g.fds) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	if !g.st.Insts[scheme].Remove(t) {
		return false, nil
	}
	for _, gf := range g.fds[scheme] {
		lk := key(t, gf.lhsCols)
		if e, ok := gf.index[lk]; ok {
			if e.n--; e.n == 0 {
				delete(gf.index, lk)
			}
		}
	}
	return true, nil
}

// State implements Maintainer.
func (g *Guard) State() *relation.State { return g.st }

// ChaseMaintainer is the general maintainer: on every insert it re-chases
// the whole state under F ∪ {*D}. Sound for any schema, but each insert
// costs a full chase — exponential in the worst case (Theorem 1 says this
// is unavoidable in general).
type ChaseMaintainer struct {
	s    *schema.Schema
	fds  fd.List
	st   *relation.State
	jd   bool
	caps chase.Caps
}

// NewChaseMaintainer builds a chase-based maintainer with an empty state.
// Pass jd=false when every FD is embedded (Lemma 4 makes the join
// dependency irrelevant, and the FD-only chase is polynomial).
func NewChaseMaintainer(s *schema.Schema, fds fd.List, jd bool, caps chase.Caps) *ChaseMaintainer {
	return &ChaseMaintainer{s: s, fds: fds, st: relation.NewState(s), jd: jd, caps: caps}
}

// Insert implements Maintainer by trial insertion and a full chase.
func (m *ChaseMaintainer) Insert(scheme int, t relation.Tuple) error {
	_, err := m.InsertReport(scheme, t)
	return err
}

// InsertReport is Insert, additionally reporting whether the tuple was
// actually added. Duplicates short-circuit without a chase: re-adding a
// present tuple cannot change satisfaction.
func (m *ChaseMaintainer) InsertReport(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(m.st.Insts) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	if m.st.Insts[scheme].Has(t) {
		return false, nil
	}
	trial := m.st.Clone()
	trial.Insts[scheme].Add(t)
	ok, err := chase.Satisfies(trial, m.fds, m.jd, m.caps)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("%w: chase found a contradiction", ErrViolation)
	}
	m.st.Insts[scheme].Add(t)
	return true, nil
}

// Delete implements Maintainer. No chase is needed: SAT is closed under
// subsets, so removing a tuple can never break satisfaction.
func (m *ChaseMaintainer) Delete(scheme int, t relation.Tuple) (bool, error) {
	if scheme < 0 || scheme >= len(m.st.Insts) {
		return false, fmt.Errorf("maintenance: no scheme %d", scheme)
	}
	return m.st.Insts[scheme].Remove(t), nil
}

// State implements Maintainer.
func (m *ChaseMaintainer) State() *relation.State { return m.st }

// ForSchema picks the right maintainer for a schema: the O(|F_i|) Guard
// when the independence decision procedure accepts, otherwise the chase
// maintainer. The boolean reports which one was chosen.
func ForSchema(s *schema.Schema, fds fd.List, caps chase.Caps) (Maintainer, bool, error) {
	res, err := independence.Decide(s, fds)
	if err != nil {
		return nil, false, err
	}
	if res.Independent {
		return NewGuard(s, res.Cover), true, nil
	}
	return NewChaseMaintainer(s, fds, !infer.AllEmbedded(s, fds), caps), false, nil
}
