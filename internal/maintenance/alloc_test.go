package maintenance

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/relation"
	"indep/internal/schema"
)

func example2Guard(t testing.TB) (*schema.Schema, *Guard) {
	t.Helper()
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	res, err := independence.Decide(s, fds)
	if err != nil || !res.Independent {
		t.Fatal("Example 2 must be independent")
	}
	return s, NewGuard(s, res.Cover)
}

// The binary-key promise for the fast maintainer: the verify phase builds
// no keys, so duplicate inserts and rejections are allocation-free, and a
// fresh accepted insert allocates only the instance's stored clone.
func TestGuardInsertReportSteadyStateAllocs(t *testing.T) {
	s, g := example2Guard(t)
	ct := s.IndexOf("CT")
	for i := 0; i < 512; i++ {
		if err := g.Insert(ct, relation.Tuple{relation.Value(i), relation.Value(i + 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	dup := relation.Tuple{5, 1005}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := g.InsertReport(ct, dup); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("duplicate InsertReport allocates %v per run", n)
	}
	// A violating insert is also allocation-free: the violation error is
	// precomputed per (FD, scheme) at guard construction.
	bad := relation.Tuple{5, 9999}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := g.InsertReport(ct, bad); err == nil {
			t.Fatal("want violation")
		}
	}); n != 0 {
		t.Errorf("violating InsertReport allocates %v per run", n)
	}
	// Steady-state insert/delete cycling reuses freed arena slots: the only
	// steady allocation is the instance's clone of the admitted tuple.
	cyc := relation.Tuple{100000, 101000}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := g.InsertReport(ct, cyc); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Delete(ct, cyc); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("insert/delete cycle allocates %v per run (want ≤ 2: the stored clone)", n)
	}
}

// refGuard reimplements the seed's string-keyed FD index — fmt-built "%d|"
// keys, rhs compared as strings — as the reference semantics for the
// randomized cross-check.
type refGuard struct {
	s   *schema.Schema
	st  *relation.State
	fds [][]refFD
}

type refFD struct {
	f                fd.FD
	lhsCols, rhsCols []int
	index            map[string]*refEntry
}

type refEntry struct {
	rhs string
	n   int
}

func refKey(t relation.Tuple, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&b, "%d|", int64(t[c]))
	}
	return b.String()
}

func newRefGuard(s *schema.Schema, g *Guard) *refGuard {
	r := &refGuard{s: s, st: relation.NewState(s), fds: make([][]refFD, len(s.Rels))}
	for i, gfs := range g.fds {
		for _, gf := range gfs {
			r.fds[i] = append(r.fds[i], refFD{
				f: gf.f, lhsCols: gf.lhsCols, rhsCols: gf.rhsCols,
				index: make(map[string]*refEntry),
			})
		}
	}
	return r
}

func (g *refGuard) insert(scheme int, t relation.Tuple) (bool, bool) {
	fds := g.fds[scheme]
	keys := make([][2]string, len(fds))
	for j, gf := range fds {
		lk, rk := refKey(t, gf.lhsCols), refKey(t, gf.rhsCols)
		if prev, ok := gf.index[lk]; ok && prev.rhs != rk {
			return false, false
		}
		keys[j] = [2]string{lk, rk}
	}
	if !g.st.Insts[scheme].Add(t) {
		return false, true
	}
	for j, gf := range fds {
		if e, ok := gf.index[keys[j][0]]; ok {
			e.n++
		} else {
			gf.index[keys[j][0]] = &refEntry{rhs: keys[j][1], n: 1}
		}
	}
	return true, true
}

func (g *refGuard) delete(scheme int, t relation.Tuple) bool {
	if !g.st.Insts[scheme].Remove(t) {
		return false
	}
	for _, gf := range g.fds[scheme] {
		lk := refKey(t, gf.lhsCols)
		if e, ok := gf.index[lk]; ok {
			if e.n--; e.n == 0 {
				delete(gf.index, lk)
			}
		}
	}
	return true
}

// TestGuardMatchesStringKeyedReference drives identical random insert and
// delete sequences through the binary-keyed Guard and the seed's
// string-keyed implementation: every accept/reject/added verdict must
// agree, on every scheme, across collisions, duplicates, violations, and
// unwound deletes.
func TestGuardMatchesStringKeyedReference(t *testing.T) {
	r := rand.New(rand.NewSource(1982))
	for trial := 0; trial < 10; trial++ {
		s, g := example2Guard(t)
		ref := newRefGuard(s, g)
		for step := 0; step < 3000; step++ {
			scheme := r.Intn(len(s.Rels))
			w := s.Attrs(scheme).Len()
			tu := make(relation.Tuple, w)
			for c := range tu {
				tu[c] = relation.Value(r.Intn(8)) // small domain: plenty of FD conflicts
			}
			if r.Intn(4) == 0 {
				got, _ := g.Delete(scheme, tu)
				if want := ref.delete(scheme, tu); got != want {
					t.Fatalf("trial %d step %d: Delete(%d, %v) = %v, reference %v",
						trial, step, scheme, tu, got, want)
				}
				continue
			}
			added, err := g.InsertReport(scheme, tu)
			wantAdded, wantOK := ref.insert(scheme, tu)
			if (err == nil) != wantOK || added != wantAdded {
				t.Fatalf("trial %d step %d: InsertReport(%d, %v) = (%v, %v), reference (%v, ok=%v)",
					trial, step, scheme, tu, added, err, wantAdded, wantOK)
			}
		}
		// Both maintainers must have converged to the same state.
		for i := range s.Rels {
			if g.State().Insts[i].Len() != ref.st.Insts[i].Len() {
				t.Fatalf("trial %d: scheme %d sizes diverge: %d vs %d",
					trial, i, g.State().Insts[i].Len(), ref.st.Insts[i].Len())
			}
			for _, tu := range ref.st.Insts[i].Rows() {
				if !g.State().Insts[i].Has(tu) {
					t.Fatalf("trial %d: scheme %d missing %v", trial, i, tu)
				}
			}
		}
	}
}

// TestChaseMaintainerMatchesCloneAndChase drives identical random sequences
// through the incremental ChaseMaintainer and the seed's semantics — clone
// the state, add the tuple, re-chase from scratch — and requires identical
// accept/reject verdicts, with deletes interleaved to force engine
// rebuilds.
func TestChaseMaintainerMatchesCloneAndChase(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		m := NewChaseMaintainer(s, fds, false, chase.DefaultCaps)
		oracle := relation.NewState(s)
		for step := 0; step < 250; step++ {
			scheme := r.Intn(len(s.Rels))
			w := s.Attrs(scheme).Len()
			tu := make(relation.Tuple, w)
			for c := range tu {
				tu[c] = relation.Value(r.Intn(5))
			}
			if r.Intn(5) == 0 {
				got, err := m.Delete(scheme, tu)
				if err != nil {
					t.Fatal(err)
				}
				if want := oracle.Insts[scheme].Remove(tu); got != want {
					t.Fatalf("trial %d step %d: Delete diverged", trial, step)
				}
				continue
			}
			added, err := m.InsertReport(scheme, tu)
			trialState := oracle.Clone()
			grew := trialState.Insts[scheme].Add(tu)
			wantOK, oerr := chase.Satisfies(trialState, fds, false, chase.DefaultCaps)
			if oerr != nil {
				t.Fatal(oerr)
			}
			if (err == nil) != wantOK {
				t.Fatalf("trial %d step %d: insert(%d, %v) err=%v, oracle ok=%v",
					trial, step, scheme, tu, err, wantOK)
			}
			if err == nil {
				if added != grew {
					t.Fatalf("trial %d step %d: added=%v, oracle grew=%v", trial, step, added, grew)
				}
				oracle.Insts[scheme].Add(tu)
			}
		}
	}
}
