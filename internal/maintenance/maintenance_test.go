package maintenance

import (
	"errors"
	"math/rand"
	"testing"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/relation"
	"indep/internal/schema"
)

func TestGuardAcceptsAndRejects(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	res, err := independence.Decide(s, fds)
	if err != nil || !res.Independent {
		t.Fatal("Example 2 must be independent")
	}
	g := NewGuard(s, res.Cover)
	ct := s.IndexOf("CT")
	if err := g.Insert(ct, relation.Tuple{1, 10}); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(ct, relation.Tuple{2, 20}); err != nil {
		t.Fatal(err)
	}
	// Same course, same teacher: fine (duplicate-ish but consistent).
	if err := g.Insert(ct, relation.Tuple{1, 10}); err != nil {
		t.Fatal(err)
	}
	// Same course, different teacher: violates C→T.
	err = g.Insert(ct, relation.Tuple{1, 11})
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("expected violation, got %v", err)
	}
	// The rejected tuple must not have corrupted the index.
	if err := g.Insert(ct, relation.Tuple{3, 30}); err != nil {
		t.Fatal(err)
	}
	if g.State().Insts[ct].Len() != 3 {
		t.Fatalf("state has %d tuples, want 3", g.State().Insts[ct].Len())
	}
}

func TestGuardCompositeFD(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	res, _ := independence.Decide(s, fds)
	g := NewGuard(s, res.Cover)
	chr := s.IndexOf("CHR")
	// Attribute order in CHR is C,H,R.
	if err := g.Insert(chr, relation.Tuple{1, 5, 100}); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(chr, relation.Tuple{1, 6, 101}); err != nil {
		t.Fatal(err) // different hour, different room: fine
	}
	err := g.Insert(chr, relation.Tuple{1, 5, 102})
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("CH->R violation expected, got %v", err)
	}
}

func TestGuardAgreesWithChaseOracle(t *testing.T) {
	// For an independent schema, the guard's verdicts must coincide with
	// re-chasing the whole state on every insert.
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	res, _ := independence.Decide(s, fds)
	g := NewGuard(s, res.Cover)
	m := NewChaseMaintainer(s, fds, false, chase.DefaultCaps)
	r := rand.New(rand.NewSource(11))
	agree := 0
	for i := 0; i < 300; i++ {
		scheme := r.Intn(s.Size())
		w := s.Attrs(scheme).Len()
		tu := make(relation.Tuple, w)
		for c := range tu {
			tu[c] = relation.Value(r.Intn(4))
		}
		ge := g.Insert(scheme, tu.Clone())
		ce := m.Insert(scheme, tu.Clone())
		if (ge == nil) != (ce == nil) {
			t.Fatalf("disagreement at insert %d into %s of %v: guard=%v chase=%v",
				i, s.Name(scheme), tu, ge, ce)
		}
		agree++
	}
	if agree != 300 {
		t.Fatal("loop exited early")
	}
}

func TestChaseMaintainerExample1(t *testing.T) {
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds := fd.MustParse(s.U, "C -> D; C -> T; T -> D")
	m := NewChaseMaintainer(s, fds, false, chase.DefaultCaps)
	if err := m.Insert(s.IndexOf("CD"), relation.Tuple{1, 100}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(s.IndexOf("CT"), relation.Tuple{1, 50}); err != nil {
		t.Fatal(err)
	}
	// TD's columns are (D,T) in universe order C,D,T. Teacher 50 in
	// department 101 contradicts course 1 being in department 100.
	err := m.Insert(s.IndexOf("TD"), relation.Tuple{101, 50})
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("expected violation, got %v", err)
	}
	// Consistent department is fine.
	if err := m.Insert(s.IndexOf("TD"), relation.Tuple{100, 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForSchemaPicksGuard(t *testing.T) {
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R")
	m, fast, err := ForSchema(s, fds, chase.DefaultCaps)
	if err != nil || !fast {
		t.Fatalf("independent schema must get the guard (err=%v)", err)
	}
	if _, ok := m.(*Guard); !ok {
		t.Fatalf("maintainer is %T", m)
	}
	s2 := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds2 := fd.MustParse(s2.U, "C -> D; C -> T; T -> D")
	m2, fast2, err := ForSchema(s2, fds2, chase.DefaultCaps)
	if err != nil || fast2 {
		t.Fatalf("non-independent schema must get the chaser (err=%v)", err)
	}
	if _, ok := m2.(*ChaseMaintainer); !ok {
		t.Fatalf("maintainer is %T", m2)
	}
}

// buildReductionInput makes a small universal relation and schema for the
// Theorem 1 construction.
func buildReductionInput() (*attrset.Universe, *relation.Instance, []attrset.Set, attrset.Set) {
	u := attrset.NewUniverse("X1", "X2", "X3")
	r := relation.NewInstance(u.All())
	r.Add(relation.Tuple{1, 2, 3})
	r.Add(relation.Tuple{4, 2, 5})
	r.Add(relation.Tuple{4, 6, 3})
	schemes := []attrset.Set{u.Set("X1", "X2"), u.Set("X2", "X3")}
	x := u.Set("X1", "X3")
	return u, r, schemes, x
}

func TestReductionBaseStateSatisfies(t *testing.T) {
	u, r, schemes, x := buildReductionInput()
	red, err := BuildReduction(u, r, schemes, x, relation.Tuple{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := chase.Satisfies(red.P, red.FDs, true, chase.DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("Theorem 1 base state must satisfy Σ (ok=%v err=%v)", ok, err)
	}
}

func TestReductionDecidesJoinMembership(t *testing.T) {
	u, r, schemes, x := buildReductionInput()
	cases := []struct {
		t relation.Tuple
	}{
		{relation.Tuple{1, 3}}, // in the join: (1,2,3) directly
		{relation.Tuple{1, 5}}, // in the join: (1,2)⋈(2,5)
		{relation.Tuple{7, 3}}, // 7 never appears: not in the join
		{relation.Tuple{4, 3}}, // (4,2)⋈(2,3) or (4,6)⋈(6,3): in
	}
	for _, c := range cases {
		want := MemberOfJoin(r, schemes, x, c.t)
		red, err := BuildReduction(u, r, schemes, x, c.t)
		if err != nil {
			t.Fatal(err)
		}
		p2 := red.P.Clone()
		p2.Insts[red.Last].Add(red.Inserted)
		sat, err := chase.Satisfies(p2, red.FDs, true, chase.DefaultCaps)
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 1: p' is satisfying iff t is NOT in the join.
		if sat != !want {
			t.Fatalf("reduction broken for t=%v: member=%v but p' satisfying=%v",
				c.t, want, sat)
		}
	}
}

func TestReductionRandomizedAgainstJoinOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 25; iter++ {
		u := attrset.NewUniverse("X1", "X2", "X3", "X4")
		r := relation.NewInstance(u.All())
		for i := 0; i < 4+rng.Intn(4); i++ {
			r.Add(relation.Tuple{
				relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)),
				relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)),
			})
		}
		schemes := []attrset.Set{u.Set("X1", "X2"), u.Set("X2", "X3"), u.Set("X3", "X4")}
		x := u.Set("X1", "X4")
		tu := relation.Tuple{relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3))}
		want := MemberOfJoin(r, schemes, x, tu)
		red, err := BuildReduction(u, r, schemes, x, tu)
		if err != nil {
			t.Fatal(err)
		}
		p2 := red.P.Clone()
		p2.Insts[red.Last].Add(red.Inserted)
		sat, err := chase.Satisfies(p2, red.FDs, true, chase.DefaultCaps)
		if err != nil {
			continue // budget; rare
		}
		if sat != !want {
			t.Fatalf("reduction mismatch: member=%v satisfying=%v", want, sat)
		}
	}
}

func TestGuardUnknownScheme(t *testing.T) {
	s := schema.MustParse("R(A,B)")
	g := NewGuard(s, nil)
	if err := g.Insert(5, relation.Tuple{1, 2}); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestGuardDeleteRefcounts(t *testing.T) {
	s := schema.MustParse("R(A,B,C)")
	fds := fd.MustParse(s.U, "A -> B")
	res, err := independence.Decide(s, fds)
	if err != nil || !res.Independent {
		t.Fatal("single-scheme schema must be independent")
	}
	g := NewGuard(s, res.Cover)
	// Two tuples witness the binding 1→10.
	if err := g.Insert(0, relation.Tuple{1, 10, 100}); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(0, relation.Tuple{1, 10, 101}); err != nil {
		t.Fatal(err)
	}
	// Duplicate insert must not inflate the refcount.
	if err := g.Insert(0, relation.Tuple{1, 10, 100}); err != nil {
		t.Fatal(err)
	}
	if ok, err := g.Delete(0, relation.Tuple{1, 10, 100}); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	// One witness remains: the binding must still be enforced.
	if err := g.Insert(0, relation.Tuple{1, 11, 102}); !errors.Is(err, ErrViolation) {
		t.Fatalf("want violation while a witness remains, got %v", err)
	}
	if ok, _ := g.Delete(0, relation.Tuple{1, 10, 101}); !ok {
		t.Fatal("delete of the second witness failed")
	}
	// No witnesses left: the binding is forgotten.
	if err := g.Insert(0, relation.Tuple{1, 11, 102}); err != nil {
		t.Fatalf("binding should be gone, got %v", err)
	}
	if ok, _ := g.Delete(0, relation.Tuple{9, 9, 9}); ok {
		t.Fatal("deleted an absent tuple")
	}
	if _, err := g.Delete(99, relation.Tuple{1}); err == nil {
		t.Fatal("want error for unknown scheme")
	}
}

func TestChaseMaintainerDelete(t *testing.T) {
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds := fd.MustParse(s.U, "C -> D; C -> T; T -> D")
	m := NewChaseMaintainer(s, fds, false, chase.DefaultCaps)
	// The paper's anomaly: after CD and CT, the contradicting TD tuple is
	// rejected — but deleting CD makes it admissible.
	if err := m.Insert(0, relation.Tuple{1, 10}); err != nil { // CD(c,d)
		t.Fatal(err)
	}
	if err := m.Insert(1, relation.Tuple{1, 20}); err != nil { // CT(c,t)
		t.Fatal(err)
	}
	bad := relation.Tuple{11, 20} // TD stores (D,T): d'≠d with the same t
	if err := m.Insert(2, bad); !errors.Is(err, ErrViolation) {
		t.Fatalf("want violation, got %v", err)
	}
	if ok, err := m.Delete(0, relation.Tuple{1, 10}); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if err := m.Insert(2, bad); err != nil {
		t.Fatalf("after deleting the conflicting tuple, insert must pass: %v", err)
	}
	if m.State().TupleCount() != 2 {
		t.Fatalf("TupleCount = %d, want 2", m.State().TupleCount())
	}
}
