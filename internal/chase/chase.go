// Package chase implements the chase procedure of Maier, Mendelzon and
// Sagiv [MMS] for functional and join dependencies, exactly as used by the
// paper (Section 2):
//
//   - a database state p is padded out to a universal relation I(p) with a
//     distinct variable in every missing column;
//   - the FD-rule equates symbols (replacing variables, or declaring a
//     contradiction when two distinct constants must be equated);
//   - the JD-rule for *D adds every universal tuple whose projection on each
//     scheme already appears;
//   - p satisfies Σ iff the chase terminates without contradiction; the
//     final relation is a weak instance for p.
//
// The chase with a join dependency can grow exponentially (this is exactly
// why the paper's polynomial algorithms matter), so all entry points take a
// Caps budget and report when it is exhausted. The package is the semantic
// oracle against which the polynomial algorithms of internal/infer and
// internal/independence are validated.
package chase

import (
	"errors"
	"fmt"
	"strings"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Caps bounds a chase computation.
type Caps struct {
	MaxRows  int // maximum number of universal rows (JD-rule growth)
	MaxIters int // maximum number of full FD/JD sweeps
}

// DefaultCaps is a budget comfortably above anything the test workloads
// need while still guarding against the chase's exponential worst case.
var DefaultCaps = Caps{MaxRows: 50000, MaxIters: 10000}

// ErrBudget is returned when a chase exceeds its Caps.
var ErrBudget = errors.New("chase: budget exhausted")

type symKind uint8

const (
	varSym symKind = iota
	constSym
)

// Conflict describes the contradiction that made a state unsatisfying: the
// FD whose application tried to identify two distinct constants.
type Conflict struct {
	FD   fd.FD
	Attr int
	A, B relation.Value
}

// Engine is a chase computation over a universal relation with tagged
// symbol columns.
type Engine struct {
	U      *attrset.Universe
	width  int
	parent []int32
	kind   []symKind
	val    []relation.Value
	consts map[relation.Value]int32
	rows   [][]int32

	Failed   bool
	Conflict *Conflict
}

// NewEngine creates an empty engine over the universe.
func NewEngine(u *attrset.Universe) *Engine {
	return &Engine{
		U:      u,
		width:  u.Size(),
		consts: make(map[relation.Value]int32),
	}
}

func (e *Engine) newVar() int32 {
	s := int32(len(e.parent))
	e.parent = append(e.parent, s)
	e.kind = append(e.kind, varSym)
	e.val = append(e.val, 0)
	return s
}

func (e *Engine) constSym(v relation.Value) int32 {
	if s, ok := e.consts[v]; ok {
		return s
	}
	s := int32(len(e.parent))
	e.parent = append(e.parent, s)
	e.kind = append(e.kind, constSym)
	e.val = append(e.val, v)
	e.consts[v] = s
	return s
}

func (e *Engine) find(s int32) int32 {
	for e.parent[s] != s {
		e.parent[s] = e.parent[e.parent[s]]
		s = e.parent[s]
	}
	return s
}

// union merges two symbols. It returns false (and records the conflict) if
// both are distinct constants; constants absorb variables.
func (e *Engine) union(a, b int32) bool {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return true
	}
	if e.kind[ra] == constSym && e.kind[rb] == constSym {
		return false
	}
	// Make the constant (if any) the root so constants survive merging.
	if e.kind[ra] == constSym {
		ra, rb = rb, ra
	}
	e.parent[ra] = rb
	return true
}

// NewVar allocates a fresh variable symbol for callers composing their own
// tableaux (e.g. the lossless-join test).
func (e *Engine) NewVar() int32 { return e.newVar() }

// Find returns the canonical representative of a symbol after merging.
func (e *Engine) Find(s int32) int32 { return e.find(s) }

// AddRow appends a universal row; syms must have length |U|.
func (e *Engine) AddRow(syms []int32) {
	if len(syms) != e.width {
		panic("chase: row width mismatch")
	}
	e.rows = append(e.rows, syms)
}

// PadState loads I(p): every tuple of every relation becomes a universal
// row, constant in its scheme's columns and a fresh variable elsewhere.
func (e *Engine) PadState(st *relation.State) {
	for i, in := range st.Insts {
		attrs := st.Schema.Attrs(i).Attrs()
		for _, t := range in.Tuples {
			row := make([]int32, e.width)
			for c := range row {
				row[c] = -1
			}
			for j, a := range attrs {
				row[a] = e.constSym(t[j])
			}
			for c := range row {
				if row[c] < 0 {
					row[c] = e.newVar()
				}
			}
			e.AddRow(row)
		}
	}
}

// Rows returns the number of universal rows.
func (e *Engine) Rows() int { return len(e.rows) }

// resolvedKey renders a row's canonical symbol vector for deduplication.
func (e *Engine) resolvedKey(row []int32) string {
	var b strings.Builder
	for _, s := range row {
		fmt.Fprintf(&b, "%d|", e.find(s))
	}
	return b.String()
}

// fdPass applies the FD-rule for every dependency once; it reports whether
// any symbol was merged. On contradiction it records the conflict and
// returns false for merged.
func (e *Engine) fdPass(fds fd.List) (merged bool) {
	for _, f := range fds {
		lhs := f.LHS.Attrs()
		rhs := f.RHS.Diff(f.LHS).Attrs()
		if len(rhs) == 0 {
			continue
		}
		buckets := make(map[string]int, len(e.rows))
		for ri, row := range e.rows {
			var k strings.Builder
			for _, a := range lhs {
				fmt.Fprintf(&k, "%d|", e.find(row[a]))
			}
			key := k.String()
			if first, ok := buckets[key]; ok {
				frow := e.rows[first]
				for _, a := range rhs {
					x, y := e.find(frow[a]), e.find(row[a])
					if x == y {
						continue
					}
					if !e.union(x, y) {
						e.Failed = true
						e.Conflict = &Conflict{FD: f, Attr: a, A: e.val[x], B: e.val[y]}
						return false
					}
					merged = true
				}
			} else {
				buckets[key] = ri
			}
		}
		if merged {
			// Re-bucketing is needed after merges; restart the pass so every
			// pair that now agrees on the LHS is seen.
			return true
		}
	}
	return merged
}

// ChaseFDs runs the FD-rule to fixpoint (Honeyman's satisfaction test when
// the input state has one relation padded out). Returns nil on success, the
// conflict as an error when the state is contradictory.
func (e *Engine) ChaseFDs(fds fd.List, caps Caps) error {
	for iter := 0; ; iter++ {
		if caps.MaxIters > 0 && iter > caps.MaxIters {
			return ErrBudget
		}
		if !e.fdPass(fds) {
			break
		}
	}
	if e.Failed {
		return e.conflictErr()
	}
	return nil
}

func (e *Engine) conflictErr() error {
	c := e.Conflict
	return fmt.Errorf("chase: contradiction applying %s at %s: constants %d vs %d",
		c.FD.Format(e.U), e.U.Name(c.Attr), c.A, c.B)
}

// jdPass applies the JD-rule for *D once: it computes the natural join of
// the projections of the current rows onto the schemes of s and adds every
// missing universal row. It reports whether rows were added.
func (e *Engine) jdPass(s *schema.Schema, caps Caps) (added bool, err error) {
	// Partial tuples over the union of the schemes processed so far,
	// represented as resolved symbol vectors with -1 for absent columns.
	partials := [][]int32{make([]int32, e.width)}
	for c := range partials[0] {
		partials[0][c] = -1
	}
	var have attrset.Set
	for _, r := range s.Rels {
		attrs := r.Attrs.Attrs()
		// Distinct projections of current rows onto this scheme.
		projSeen := make(map[string][]int32)
		for _, row := range e.rows {
			proj := make([]int32, len(attrs))
			var k strings.Builder
			for i, a := range attrs {
				proj[i] = e.find(row[a])
				fmt.Fprintf(&k, "%d|", proj[i])
			}
			projSeen[k.String()] = proj
		}
		common := have.Intersect(r.Attrs).Attrs()
		var next [][]int32
		nextSeen := make(map[string]bool)
		for _, p := range partials {
			for _, proj := range projSeen {
				ok := true
				for _, a := range common {
					// position of a within attrs
					pi := 0
					for i, aa := range attrs {
						if aa == a {
							pi = i
							break
						}
					}
					if p[a] != proj[pi] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				merged := make([]int32, e.width)
				copy(merged, p)
				for i, a := range attrs {
					merged[a] = proj[i]
				}
				var k strings.Builder
				for _, v := range merged {
					fmt.Fprintf(&k, "%d|", v)
				}
				if !nextSeen[k.String()] {
					nextSeen[k.String()] = true
					next = append(next, merged)
					if caps.MaxRows > 0 && len(next) > caps.MaxRows {
						return false, ErrBudget
					}
				}
			}
		}
		partials = next
		have = have.Union(r.Attrs)
		if len(partials) == 0 {
			return false, nil
		}
	}
	existing := make(map[string]bool, len(e.rows))
	for _, row := range e.rows {
		existing[e.resolvedKey(row)] = true
	}
	for _, p := range partials {
		var k strings.Builder
		for _, v := range p {
			fmt.Fprintf(&k, "%d|", v)
		}
		if !existing[k.String()] {
			existing[k.String()] = true
			e.rows = append(e.rows, p)
			added = true
			if caps.MaxRows > 0 && len(e.rows) > caps.MaxRows {
				return added, ErrBudget
			}
		}
	}
	return added, nil
}

// Chase runs FD and JD rules to fixpoint. A nil schema chases FDs only
// (appropriate when Σ contains no join dependency, or when every FD is
// embedded and Lemma 4 applies). It returns nil when the chase terminates
// without contradiction, the conflict error when the state is unsatisfying,
// and ErrBudget when caps are exhausted.
func (e *Engine) Chase(fds fd.List, s *schema.Schema, caps Caps) error {
	for iter := 0; ; iter++ {
		if caps.MaxIters > 0 && iter > caps.MaxIters {
			return ErrBudget
		}
		if err := e.ChaseFDs(fds, caps); err != nil {
			return err
		}
		if s == nil {
			return nil
		}
		added, err := e.jdPass(s, caps)
		if err != nil {
			if errors.Is(err, ErrBudget) {
				return err
			}
			return err
		}
		if !added {
			return nil
		}
	}
}

// WeakInstance materializes the chased universal relation. Variables are
// rendered as fresh negative values (distinct per symbol class), so the
// result is a relation.Instance over the full universe.
func (e *Engine) WeakInstance() *relation.Instance {
	out := relation.NewInstance(e.U.All())
	varNames := make(map[int32]relation.Value)
	for _, row := range e.rows {
		t := make(relation.Tuple, e.width)
		for c, s := range row {
			r := e.find(s)
			if e.kind[r] == constSym {
				t[c] = e.val[r]
			} else {
				v, ok := varNames[r]
				if !ok {
					v = relation.Value(-1 - len(varNames))
					varNames[r] = v
				}
				t[c] = v
			}
		}
		out.Add(t)
	}
	return out
}
