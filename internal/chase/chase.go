// Package chase implements the chase procedure of Maier, Mendelzon and
// Sagiv [MMS] for functional and join dependencies, exactly as used by the
// paper (Section 2):
//
//   - a database state p is padded out to a universal relation I(p) with a
//     distinct variable in every missing column;
//   - the FD-rule equates symbols (replacing variables, or declaring a
//     contradiction when two distinct constants must be equated);
//   - the JD-rule for *D adds every universal tuple whose projection on each
//     scheme already appears;
//   - p satisfies Σ iff the chase terminates without contradiction; the
//     final relation is a weak instance for p.
//
// The chase with a join dependency can grow exponentially (this is exactly
// why the paper's polynomial algorithms matter), so all entry points take a
// Caps budget and report when it is exhausted. The package is the semantic
// oracle against which the polynomial algorithms of internal/infer and
// internal/independence are validated.
package chase

import (
	"errors"
	"fmt"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/hashkey"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Caps bounds a chase computation. Metrics, when non-nil, collects telemetry
// from every chase run under these caps; it rides here so instrumentation
// reaches the maintainer's and the query evaluator's internal chases without
// changing their signatures.
type Caps struct {
	MaxRows  int // maximum number of universal rows (JD-rule growth)
	MaxIters int // maximum number of FD/JD rounds (the FD-rule alone always
	// terminates, so the budget only matters when a join dependency keeps
	// adding rows between FD fixpoints)
	Metrics *Metrics
}

// DefaultCaps is a budget comfortably above anything the test workloads
// need while still guarding against the chase's exponential worst case.
var DefaultCaps = Caps{MaxRows: 50000, MaxIters: 10000}

// ErrBudget is returned when a chase exceeds its Caps.
var ErrBudget = errors.New("chase: budget exhausted")

type symKind uint8

const (
	varSym symKind = iota
	constSym
)

// Conflict describes the contradiction that made a state unsatisfying: the
// FD whose application tried to identify two distinct constants.
type Conflict struct {
	FD   fd.FD
	Attr int
	A, B relation.Value
}

// Engine is a chase computation over a universal relation with tagged
// symbol columns.
//
// The FD-rule runs as a worklist algorithm over persistent per-FD hash
// buckets: every row is bucketed by the hash of its resolved left-hand-side
// symbols, and when two symbols merge, only the rows incident to the losing
// equivalence class are re-examined. This makes ChaseFDs incremental — rows
// added after a fixpoint (a trial insert, or a JD round) cost only their own
// consequences, not a full re-bucketing of the state.
type Engine struct {
	U      *attrset.Universe
	width  int
	parent []int32
	rank   []uint8
	kind   []symKind
	val    []relation.Value
	consts map[relation.Value]int32
	rows   [][]int32

	// FD worklist state (see ensureSettle/settle). specsSrc remembers the
	// dependency list the buckets were built for; a different list rebuilds
	// them. registered counts rows already bucketed, so rows appended after
	// a fixpoint enqueue only themselves.
	specsSrc   fd.List
	specs      []fdSpec
	buckets    []map[uint64][]int32
	rowsOf     [][]int32 // symbol root → rows containing a symbol of its class
	work       []int32
	registered int

	// met is the telemetry sink of the caps passed to the last ChaseFDs;
	// settle reports unions through it.
	met *Metrics

	Failed   bool
	Conflict *Conflict
}

// fdSpec is a dependency precompiled for the worklist: the attribute
// positions of its left-hand side and of its effective right-hand side
// (RHS − LHS).
type fdSpec struct {
	f   fd.FD
	lhs []int
	rhs []int
}

// NewEngine creates an empty engine over the universe.
func NewEngine(u *attrset.Universe) *Engine {
	return &Engine{
		U:      u,
		width:  u.Size(),
		consts: make(map[relation.Value]int32),
	}
}

func (e *Engine) newVar() int32 {
	s := int32(len(e.parent))
	e.parent = append(e.parent, s)
	e.rank = append(e.rank, 0)
	e.kind = append(e.kind, varSym)
	e.val = append(e.val, 0)
	return s
}

func (e *Engine) constSym(v relation.Value) int32 {
	if s, ok := e.consts[v]; ok {
		return s
	}
	s := int32(len(e.parent))
	e.parent = append(e.parent, s)
	e.rank = append(e.rank, 0)
	e.kind = append(e.kind, constSym)
	e.val = append(e.val, v)
	e.consts[v] = s
	return s
}

func (e *Engine) find(s int32) int32 {
	for e.parent[s] != s {
		e.parent[s] = e.parent[e.parent[s]]
		s = e.parent[s]
	}
	return s
}

// union merges two symbol classes, constants absorbing variables and rank
// breaking variable-variable ties. It returns the surviving root, the
// absorbed root (-1 when the classes were already one), and ok=false when
// both roots are distinct constants — the chase contradiction.
func (e *Engine) union(a, b int32) (winner, loser int32, ok bool) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return ra, -1, true
	}
	if e.kind[ra] == constSym && e.kind[rb] == constSym {
		return ra, rb, false
	}
	switch {
	case e.kind[ra] == constSym:
		// Constants must stay roots so merged classes keep their value.
	case e.kind[rb] == constSym:
		ra, rb = rb, ra
	case e.rank[ra] < e.rank[rb]:
		ra, rb = rb, ra
	case e.rank[ra] == e.rank[rb]:
		e.rank[ra]++
	}
	e.parent[rb] = ra
	return ra, rb, true
}

// NewVar allocates a fresh variable symbol for callers composing their own
// tableaux (e.g. the lossless-join test).
func (e *Engine) NewVar() int32 { return e.newVar() }

// Find returns the canonical representative of a symbol after merging.
func (e *Engine) Find(s int32) int32 { return e.find(s) }

// AddRow appends a universal row; syms must have length |U|.
func (e *Engine) AddRow(syms []int32) {
	if len(syms) != e.width {
		panic("chase: row width mismatch")
	}
	e.rows = append(e.rows, syms)
}

// PadTuple loads one padded tuple: constant symbols in the given attribute
// columns (attrs[j] holds t[j]), a fresh variable everywhere else. The row
// is picked up by the next ChaseFDs, which — the buckets being persistent —
// chases only its consequences.
func (e *Engine) PadTuple(attrs []int, t relation.Tuple) {
	row := make([]int32, e.width)
	for c := range row {
		row[c] = -1
	}
	for j, a := range attrs {
		row[a] = e.constSym(t[j])
	}
	for c := range row {
		if row[c] < 0 {
			row[c] = e.newVar()
		}
	}
	e.AddRow(row)
}

// PadState loads I(p): every tuple of every relation becomes a universal
// row, constant in its scheme's columns and a fresh variable elsewhere.
// Rows are materialized from the columnar arenas into one reused scratch
// tuple — PadTuple copies what it needs.
func (e *Engine) PadState(st *relation.State) {
	var scratch relation.Tuple
	for i, in := range st.Insts {
		attrs := st.Schema.Attrs(i).Attrs()
		live := in.LiveMask()
		for s, alive := range live {
			if !alive {
				continue
			}
			scratch = in.AppendRow(scratch[:0], int32(s))
			e.PadTuple(attrs, scratch)
		}
	}
}

// Rows returns the number of universal rows.
func (e *Engine) Rows() int { return len(e.rows) }

// lhsHash hashes a row's resolved left-hand-side symbols.
func (e *Engine) lhsHash(row []int32, lhs []int) uint64 {
	h := hashkey.Init
	for _, a := range lhs {
		h = hashkey.Mix(h, uint64(uint32(e.find(row[a]))))
	}
	return h
}

// buildSpecs precompiles the dependency list, dropping trivial FDs.
func buildSpecs(fds fd.List) []fdSpec {
	specs := make([]fdSpec, 0, len(fds))
	for _, f := range fds {
		rhs := f.RHS.Diff(f.LHS).Attrs()
		if len(rhs) == 0 {
			continue
		}
		specs = append(specs, fdSpec{f: f, lhs: f.LHS.Attrs(), rhs: rhs})
	}
	return specs
}

// sameFDs reports whether the engine's buckets were built for this list.
// A never-built engine has a nil (length-0) specsSrc, so any non-empty
// list triggers a build; an empty list matches it and needs none — settle
// over zero specs is a no-op either way.
func (e *Engine) sameFDs(fds fd.List) bool {
	if len(e.specsSrc) != len(fds) {
		return false
	}
	for i, f := range fds {
		if e.specsSrc[i] != f {
			return false
		}
	}
	return true
}

// ensureSettle (re)builds the worklist state for the dependency list and
// registers any rows added since the last fixpoint: each new row is indexed
// under every symbol it contains and enqueued for processing.
func (e *Engine) ensureSettle(fds fd.List) {
	if !e.sameFDs(fds) {
		e.specsSrc = append(fd.List(nil), fds...)
		e.specs = buildSpecs(fds)
		e.buckets = make([]map[uint64][]int32, len(e.specs))
		for i := range e.buckets {
			e.buckets[i] = make(map[uint64][]int32)
		}
		e.rowsOf = make([][]int32, len(e.parent))
		e.work = e.work[:0]
		e.registered = 0
	}
	for len(e.rowsOf) < len(e.parent) {
		e.rowsOf = append(e.rowsOf, nil)
	}
	for e.registered < len(e.rows) {
		r := int32(e.registered)
		for _, s := range e.rows[r] {
			root := e.find(s)
			if lst := e.rowsOf[root]; len(lst) == 0 || lst[len(lst)-1] != r {
				e.rowsOf[root] = append(lst, r)
			}
		}
		e.work = append(e.work, r)
		e.registered++
	}
}

// settle drains the worklist: each popped row is probed against every FD's
// bucket; a row with an equal resolved left-hand side has its right-hand
// side unified with the bucket representative's. Unions wake exactly the
// rows incident to the absorbed class (their resolved keys may have
// changed), so work is proportional to consequences, not state size. The
// union count is bounded by the symbol count, so settle always terminates.
func (e *Engine) settle() error {
	for len(e.work) > 0 {
		r := e.work[len(e.work)-1]
		e.work = e.work[:len(e.work)-1]
		row := e.rows[r]
		for j := range e.specs {
			sp := &e.specs[j]
			h := e.lhsHash(row, sp.lhs)
			bucket := e.buckets[j][h]
			match, self := int32(-1), false
			w := 0
			for _, c := range bucket {
				crow := e.rows[c]
				if e.lhsHash(crow, sp.lhs) != h {
					continue // stale: re-registered under its current key
				}
				bucket[w] = c
				w++
				if c == r {
					self = true
					continue
				}
				if match < 0 && e.lhsAgree(row, crow, sp.lhs) {
					match = c
				}
			}
			if w != len(bucket) {
				e.buckets[j][h] = bucket[:w]
			}
			if match < 0 {
				if !self {
					e.buckets[j][h] = append(e.buckets[j][h], r)
				}
				continue
			}
			mrow := e.rows[match]
			for _, a := range sp.rhs {
				x, y := e.find(row[a]), e.find(mrow[a])
				if x == y {
					continue
				}
				winner, loser, ok := e.union(x, y)
				if !ok {
					e.Failed = true
					e.Conflict = &Conflict{FD: sp.f, Attr: a, A: e.val[x], B: e.val[y]}
					return e.conflictErr()
				}
				e.met.noteUnion()
				e.wake(winner, loser)
			}
		}
	}
	return nil
}

// lhsAgree reports whether two rows resolve to the same symbols on the
// left-hand-side columns.
func (e *Engine) lhsAgree(a, b []int32, lhs []int) bool {
	for _, at := range lhs {
		if e.find(a[at]) != e.find(b[at]) {
			return false
		}
	}
	return true
}

// wake re-enqueues every row incident to the absorbed class and folds its
// incidence list into the winner's.
func (e *Engine) wake(winner, loser int32) {
	lost := e.rowsOf[loser]
	e.work = append(e.work, lost...)
	e.rowsOf[winner] = append(e.rowsOf[winner], lost...)
	e.rowsOf[loser] = nil
}

// ChaseFDs runs the FD-rule to fixpoint (Honeyman's satisfaction test when
// the input state has one relation padded out). Returns nil on success, the
// conflict as an error when the state is contradictory. The FD-rule alone
// always terminates — each application shrinks the symbol-class count — so
// caps are not consulted; they bound only the JD-rule (see Chase). Calling
// ChaseFDs again after adding rows chases just the new rows' consequences.
func (e *Engine) ChaseFDs(fds fd.List, caps Caps) error {
	if e.Failed {
		return e.conflictErr()
	}
	e.ensureSettle(fds)
	caps.Metrics.noteSettle(len(e.work))
	e.met = caps.Metrics
	return e.settle()
}

func (e *Engine) conflictErr() error {
	c := e.Conflict
	return fmt.Errorf("chase: contradiction applying %s at %s: constants %d vs %d",
		c.FD.Format(e.U), e.U.Name(c.Attr), c.A, c.B)
}

// vecSet deduplicates int32 vectors by content hash with collision-checked
// buckets; vecs holds the distinct vectors in insertion order.
type vecSet struct {
	buckets map[uint64][]int32
	vecs    [][]int32
}

func newVecSet(hint int) *vecSet {
	return &vecSet{buckets: make(map[uint64][]int32, hint)}
}

// add records v and reports whether it was fresh. The vector is stored, not
// copied; callers must not mutate it afterwards.
func (s *vecSet) add(v []int32) bool {
	h := hashkey.Int32s(v)
	for _, i := range s.buckets[h] {
		if int32sEqual(s.vecs[i], v) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], int32(len(s.vecs)))
	s.vecs = append(s.vecs, v)
	return true
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// jdPass applies the JD-rule for *D once: it computes the natural join of
// the projections of the current rows onto the schemes of s and adds every
// missing universal row. It reports whether rows were added.
func (e *Engine) jdPass(s *schema.Schema, caps Caps) (added bool, err error) {
	rowsBefore := len(e.rows)
	defer func() {
		caps.Metrics.noteJDRound(uint64(len(e.rows) - rowsBefore))
		if err == ErrBudget {
			caps.Metrics.noteBudget()
		}
	}()
	// Partial tuples over the union of the schemes processed so far,
	// represented as resolved symbol vectors with -1 for absent columns.
	partials := [][]int32{make([]int32, e.width)}
	for c := range partials[0] {
		partials[0][c] = -1
	}
	var have attrset.Set
	// posAt[a] is a's position within the current scheme's attribute list.
	posAt := make([]int, e.width)
	for _, r := range s.Rels {
		attrs := r.Attrs.Attrs()
		for i, a := range attrs {
			posAt[a] = i
		}
		// Distinct resolved projections of current rows onto this scheme.
		projSeen := newVecSet(len(e.rows))
		for _, row := range e.rows {
			proj := make([]int32, len(attrs))
			for i, a := range attrs {
				proj[i] = e.find(row[a])
			}
			projSeen.add(proj)
		}
		common := have.Intersect(r.Attrs).Attrs()
		next := newVecSet(len(partials))
		for _, p := range partials {
			for _, proj := range projSeen.vecs {
				ok := true
				for _, a := range common {
					if p[a] != proj[posAt[a]] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				merged := make([]int32, e.width)
				copy(merged, p)
				for i, a := range attrs {
					merged[a] = proj[i]
				}
				if next.add(merged) {
					if caps.MaxRows > 0 && len(next.vecs) > caps.MaxRows {
						return false, ErrBudget
					}
				}
			}
		}
		partials = next.vecs
		have = have.Union(r.Attrs)
		if len(partials) == 0 {
			return false, nil
		}
	}
	existing := newVecSet(len(e.rows))
	for _, row := range e.rows {
		resolved := make([]int32, e.width)
		for c, s := range row {
			resolved[c] = e.find(s)
		}
		existing.add(resolved)
	}
	for _, p := range partials {
		if existing.add(p) {
			e.rows = append(e.rows, p)
			added = true
			if caps.MaxRows > 0 && len(e.rows) > caps.MaxRows {
				return added, ErrBudget
			}
		}
	}
	return added, nil
}

// Chase runs FD and JD rules to fixpoint. A nil schema chases FDs only
// (appropriate when Σ contains no join dependency, or when every FD is
// embedded and Lemma 4 applies). It returns nil when the chase terminates
// without contradiction, the conflict error when the state is unsatisfying,
// and ErrBudget when caps are exhausted. Caps.MaxIters counts FD/JD rounds:
// MaxIters of 1 allows exactly one FD fixpoint plus one JD sweep, returning
// ErrBudget only if that sweep still grew the relation.
func (e *Engine) Chase(fds fd.List, s *schema.Schema, caps Caps) error {
	caps.Metrics.noteChase()
	for iter := 0; ; iter++ {
		if caps.MaxIters > 0 && iter >= caps.MaxIters {
			caps.Metrics.noteBudget()
			return ErrBudget
		}
		if err := e.ChaseFDs(fds, caps); err != nil {
			return err
		}
		if s == nil {
			return nil
		}
		added, err := e.jdPass(s, caps)
		if err != nil {
			return err
		}
		if !added {
			return nil
		}
	}
}

// WeakInstance materializes the chased universal relation. Variables are
// rendered as fresh negative values (distinct per symbol class), so the
// result is a relation.Instance over the full universe.
func (e *Engine) WeakInstance() *relation.Instance {
	out := relation.NewInstance(e.U.All())
	varNames := make(map[int32]relation.Value)
	for _, row := range e.rows {
		t := make(relation.Tuple, e.width)
		for c, s := range row {
			r := e.find(s)
			if e.kind[r] == constSym {
				t[c] = e.val[r]
			} else {
				v, ok := varNames[r]
				if !ok {
					v = relation.Value(-1 - len(varNames))
					varNames[r] = v
				}
				t[c] = v
			}
		}
		out.Add(t)
	}
	return out
}
