package chase

import (
	"math/rand"
	"testing"

	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
)

// example1 builds the paper's Example 1: schemes CD, CT, TD with
// C→D, C→T, T→D and the CS402/Jones state.
func example1() (*relation.State, fd.List) {
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds := fd.MustParse(s.U, "C -> D; C -> T; T -> D")
	st := relation.NewState(s)
	st.AddNamed("CD", map[string]string{"C": "CS402", "D": "CS"})
	st.AddNamed("CT", map[string]string{"C": "CS402", "T": "Jones"})
	st.AddNamed("TD", map[string]string{"T": "Jones", "D": "EE"})
	return st, fds
}

func TestExample1NotSatisfying(t *testing.T) {
	st, fds := example1()
	ok, err := Satisfies(st, fds, true, DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Example 1 state must not be satisfying")
	}
	// "Note, however, that every relation of p satisfies the fd's embedded
	// in its scheme" — and indeed the state is locally satisfying.
	local, bad, err := LocallySatisfies(st, fds, true, DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if !local {
		t.Fatalf("Example 1 state must be locally satisfying (relation %d failed)", bad)
	}
	isW, err := IsIndependenceWitness(st, fds, DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if !isW {
		t.Fatal("Example 1 state is the canonical independence witness")
	}
}

func TestExample1ConflictDetail(t *testing.T) {
	st, fds := example1()
	e := NewEngine(st.Schema.U)
	e.PadState(st)
	err := e.Chase(fds.Split(), st.Schema, DefaultCaps)
	if err == nil || !e.Failed {
		t.Fatal("chase must fail")
	}
	if e.Conflict == nil {
		t.Fatal("conflict detail missing")
	}
	// The clash is in attribute D between the CS and EE constants.
	if got := st.Schema.U.Name(e.Conflict.Attr); got != "D" {
		t.Errorf("conflict attribute = %s, want D", got)
	}
}

func TestConsistentStateSatisfies(t *testing.T) {
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	fds := fd.MustParse(s.U, "C -> D; C -> T; T -> D")
	st := relation.NewState(s)
	st.AddNamed("CD", map[string]string{"C": "CS402", "D": "EE"})
	st.AddNamed("CT", map[string]string{"C": "CS402", "T": "Jones"})
	st.AddNamed("TD", map[string]string{"T": "Jones", "D": "EE"})
	ok, err := Satisfies(st, fds, true, DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("consistent variant must satisfy (ok=%v err=%v)", ok, err)
	}
	w, ok, err := WeakInstanceFor(st, fds, true, DefaultCaps)
	if err != nil || !ok {
		t.Fatal("weak instance must exist")
	}
	// Weak instance must contain each relation in its projection.
	for i, in := range st.Insts {
		proj := w.Project(st.Schema.Attrs(i))
		for _, tu := range in.Rows() {
			if !proj.Has(tu) {
				t.Fatalf("weak instance does not contain relation %d tuple %v", i, tu)
			}
		}
	}
}

func TestJDRuleAddsJoinTuples(t *testing.T) {
	// State over {AB, BC} that is pairwise joinable: JD-rule must add the
	// combined row; no FDs, so always satisfying.
	s := schema.MustParse("R1(A,B); R2(B,C)")
	st := relation.NewState(s)
	st.Add("R1", relation.Tuple{1, 2})
	st.Add("R2", relation.Tuple{2, 3})
	e := NewEngine(s.U)
	e.PadState(st)
	if err := e.Chase(nil, s, DefaultCaps); err != nil {
		t.Fatal(err)
	}
	w := e.WeakInstance()
	if !w.Has(relation.Tuple{1, 2, 3}) {
		t.Fatalf("JD-rule must add (1,2,3); weak instance: %v", w.Rows())
	}
}

func TestStatesAlwaysSatisfyJDAlone(t *testing.T) {
	// With no FDs, contradictions are impossible: every state satisfies *D.
	r := rand.New(rand.NewSource(9))
	s := schema.MustParse("R1(A,B); R2(B,C); R3(A,C)")
	for i := 0; i < 30; i++ {
		st := relation.NewState(s)
		for j := 0; j < 4; j++ {
			st.Add("R1", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
			st.Add("R2", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
			st.Add("R3", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
		}
		ok, err := Satisfies(st, nil, true, DefaultCaps)
		if err != nil || !ok {
			t.Fatalf("state must satisfy *D alone (ok=%v err=%v)", ok, err)
		}
	}
}

func TestImpliesFDPlain(t *testing.T) {
	// C→T, TH→R ⊨ CH→R (no JD needed).
	s := schema.MustParse("CT(C,T); CHR(C,H,R); S(S)")
	fds := fd.MustParse(s.U, "C -> T; T H -> R")
	ok, err := ImpliesFD(s, fds, s.U.Set("C", "H"), s.U.MustIndex("R"), false, DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("CH->R must be implied (ok=%v err=%v)", ok, err)
	}
	ok, err = ImpliesFD(s, fds, s.U.Set("S", "H"), s.U.MustIndex("R"), false, DefaultCaps)
	if err != nil || ok {
		t.Fatalf("SH->R must not be implied (ok=%v err=%v)", ok, err)
	}
}

func TestImpliesFDNeedsJD(t *testing.T) {
	// U = {A,Y,B}, D = {AY, AB}, F = {Y→B}. The join dependency forces the
	// two-row tableau to mix, after which Y→B collapses B: so
	// F ∪ {*D} ⊨ A→B even though F alone does not imply it.
	s := schema.MustParse("R1(A,Y); R2(A,B)")
	fds := fd.MustParse(s.U, "Y -> B")
	a := s.U.MustIndex("B")
	ok, err := ImpliesFD(s, fds, s.U.Set("A"), a, false, DefaultCaps)
	if err != nil || ok {
		t.Fatalf("A->B must NOT follow from FDs alone (ok=%v err=%v)", ok, err)
	}
	ok, err = ImpliesFD(s, fds, s.U.Set("A"), a, true, DefaultCaps)
	if err != nil || !ok {
		t.Fatalf("A->B must follow from F ∪ {*D} (ok=%v err=%v)", ok, err)
	}
}

func TestClosureFDWithJD(t *testing.T) {
	s := schema.MustParse("R1(A,Y); R2(A,B)")
	fds := fd.MustParse(s.U, "Y -> B")
	got, err := ClosureFD(s, fds, s.U.Set("A"), true, DefaultCaps)
	if err != nil {
		t.Fatal(err)
	}
	if got != s.U.Set("A", "B") {
		t.Fatalf("cl(A) = %s, want A B", s.U.Format(got, " "))
	}
}

func TestLemma4EmbeddedFDsJDIrrelevant(t *testing.T) {
	// Lemma 1/4: for FDs embedded in the schema, satisfaction (local and
	// global) w.r.t. F coincides with satisfaction w.r.t. F ∪ {*D}.
	r := rand.New(rand.NewSource(10))
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,A)")
	fds := fd.MustParse(s.U, "A -> B; B -> C; C -> A")
	for i := 0; i < 40; i++ {
		st := relation.NewState(s)
		for j := 0; j < 3; j++ {
			st.Add("R1", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
			st.Add("R2", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
			st.Add("R3", relation.Tuple{relation.Value(r.Intn(3)), relation.Value(r.Intn(3))})
		}
		noJD, err1 := Satisfies(st, fds, false, DefaultCaps)
		withJD, err2 := Satisfies(st, fds, true, DefaultCaps)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if noJD != withJD {
			t.Fatalf("Lemma 4 violated on state:\n%s", st)
		}
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C)")
	st := relation.NewState(s)
	for i := 0; i < 10; i++ {
		st.Add("R1", relation.Tuple{relation.Value(i), relation.Value(i % 3)})
		st.Add("R2", relation.Tuple{relation.Value(i % 3), relation.Value(i)})
	}
	_, err := Satisfies(st, nil, true, Caps{MaxRows: 4, MaxIters: 10})
	if err == nil {
		t.Fatal("tiny budget must be exhausted")
	}
}

func TestEngineRowWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine(schema.MustParse("R1(A,B)").U)
	e.AddRow([]int32{0})
}

func TestWeakInstanceVariablesDistinct(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(C,D)")
	st := relation.NewState(s)
	st.Add("R1", relation.Tuple{1, 2})
	st.Add("R2", relation.Tuple{3, 4})
	e := NewEngine(s.U)
	e.PadState(st)
	if err := e.ChaseFDs(nil, DefaultCaps); err != nil {
		t.Fatal(err)
	}
	w := e.WeakInstance()
	if w.Len() != 2 {
		t.Fatalf("rows = %d", w.Len())
	}
	// All variable placeholders are negative and distinct within the result.
	seen := map[relation.Value]int{}
	for _, tu := range w.Rows() {
		for _, v := range tu {
			if v < 0 {
				seen[v]++
			}
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("variable %d appears %d times; padding must be distinct", v, n)
		}
	}
}
