package chase

import (
	"errors"

	"indep/internal/attrset"
	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
)

// Satisfies reports whether the state p satisfies Σ = fds ∪ {*D} in the
// weak-instance sense: a weak instance exists iff the chase of I(p) finds no
// contradiction. Pass jd=false to test satisfaction of the FDs alone (by
// Lemma 4 this coincides with fds ∪ {*D} whenever every FD is embedded in
// the schema). A non-nil error means the chase budget was exhausted and the
// verdict is unknown.
func Satisfies(st *relation.State, fds fd.List, jd bool, caps Caps) (bool, error) {
	e := NewEngine(st.Schema.U)
	e.PadState(st)
	var s *schema.Schema
	if jd {
		s = st.Schema
	}
	err := e.Chase(fds.Split(), s, caps)
	if e.Failed {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Extra is a tuple addressed to a scheme, to be padded on top of a state.
type Extra struct {
	Scheme int
	Tuple  relation.Tuple
}

// SatisfiesWith is Satisfies for the state p plus the extra tuples, without
// materializing (or cloning) the combined state: the extras are padded
// directly into the engine. It is the trial-insert primitive for
// maintainers that must ask "would p ∪ {t…} still satisfy?" about a state
// they do not want to copy.
func SatisfiesWith(st *relation.State, extra []Extra, fds fd.List, jd bool, caps Caps) (bool, error) {
	e := NewEngine(st.Schema.U)
	e.PadState(st)
	for _, x := range extra {
		e.PadTuple(st.Schema.Attrs(x.Scheme).Attrs(), x.Tuple)
	}
	var s *schema.Schema
	if jd {
		s = st.Schema
	}
	err := e.Chase(fds.Split(), s, caps)
	if e.Failed {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// WeakInstanceFor runs the chase and, when the state is satisfying, returns
// the resulting weak instance.
func WeakInstanceFor(st *relation.State, fds fd.List, jd bool, caps Caps) (*relation.Instance, bool, error) {
	e := NewEngine(st.Schema.U)
	e.PadState(st)
	var s *schema.Schema
	if jd {
		s = st.Schema
	}
	err := e.Chase(fds.Split(), s, caps)
	if e.Failed {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return e.WeakInstance(), true, nil
}

// LocallySatisfies reports whether every relation of the state is
// consistent in isolation, i.e. r_i ∈ SAT(R_i, Σ_i) for each scheme. Per
// the paper's footnote, r_i satisfies Σ_i iff the state {∅,…,r_i,…,∅}
// satisfies Σ — which is exactly a chase of the single relation padded out.
// On failure it returns the index of the first inconsistent relation.
func LocallySatisfies(st *relation.State, fds fd.List, jd bool, caps Caps) (bool, int, error) {
	for i := range st.Insts {
		single := relation.NewState(st.Schema)
		single.Dict = st.Dict
		single.Insts[i] = st.Insts[i].Clone()
		ok, err := Satisfies(single, fds, jd, caps)
		if err != nil {
			return false, i, err
		}
		if !ok {
			return false, i, nil
		}
	}
	return true, -1, nil
}

// IsIndependenceWitness checks that the state is locally satisfying but not
// globally satisfying w.r.t. fds ∪ {*D}: the shape of every counterexample
// to independence the paper constructs. It is used to validate the
// witnesses produced by internal/independence against the chase oracle.
func IsIndependenceWitness(st *relation.State, fds fd.List, caps Caps) (bool, error) {
	local, _, err := LocallySatisfies(st, fds, true, caps)
	if err != nil {
		return false, err
	}
	if !local {
		return false, nil
	}
	global, err := Satisfies(st, fds, true, caps)
	if err != nil {
		return false, err
	}
	return !global, nil
}

// ImpliesFD reports whether Σ ⊨ X → A by chasing the canonical two-row
// tableau (rows agreeing exactly on X) under the FDs and, when jd is true,
// the join dependency *D of the schema. This is the brute-force counterpart
// of the polynomial closure in internal/infer and is exponential in the
// worst case; it exists as the ground truth for validation.
func ImpliesFD(s *schema.Schema, fds fd.List, x attrset.Set, a int, jd bool, caps Caps) (bool, error) {
	u := s.U
	e := NewEngine(u)
	row1 := make([]int32, u.Size())
	row2 := make([]int32, u.Size())
	for c := 0; c < u.Size(); c++ {
		row1[c] = e.newVar()
		if x.Has(c) {
			row2[c] = row1[c]
		} else {
			row2[c] = e.newVar()
		}
	}
	e.AddRow(row1)
	e.AddRow(row2)
	var js *schema.Schema
	if jd {
		js = s
	}
	if err := e.Chase(fds.Split(), js, caps); err != nil {
		if errors.Is(err, ErrBudget) {
			return false, err
		}
		// Contradictions cannot occur: the tableau has no constants.
		return false, err
	}
	return e.find(row1[a]) == e.find(row2[a]), nil
}

// ClosureFD computes cl_Σ(X) by repeated ImpliesFD over every attribute;
// exponential ground truth for the polynomial closure in internal/infer.
func ClosureFD(s *schema.Schema, fds fd.List, x attrset.Set, jd bool, caps Caps) (attrset.Set, error) {
	out := x
	for c := 0; c < s.U.Size(); c++ {
		if out.Has(c) {
			continue
		}
		ok, err := ImpliesFD(s, fds, x, c, jd, caps)
		if err != nil {
			return out, err
		}
		if ok {
			out.Add(c)
		}
	}
	return out, nil
}
