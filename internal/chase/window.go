package chase

import (
	"indep/internal/attrset"
	"indep/internal/relation"
)

// TotalProjection returns the X-total projection of the chased universal
// relation: for every row whose X columns all resolved to constants, the
// projection of those constants onto X (deduplicated). This is the paper's
// window function [X] evaluated on the representative instance — call it
// after Chase has run to fixpoint on the padded state. Rows with a variable
// left in some X column carry no information about X and are skipped.
func (e *Engine) TotalProjection(x attrset.Set) *relation.Instance {
	cols := x.Attrs()
	out := relation.NewInstance(x)
	for _, row := range e.rows {
		t := make(relation.Tuple, len(cols))
		total := true
		for i, a := range cols {
			r := e.find(row[a])
			if e.kind[r] != constSym {
				total = false
				break
			}
			t[i] = e.val[r]
		}
		if total {
			out.Add(t)
		}
	}
	return out
}
