package chase

import (
	"errors"
	"math/rand"
	"testing"

	"indep/internal/fd"
	"indep/internal/relation"
	"indep/internal/schema"
)

// referenceFDChase is the seed's FD-rule semantics, kept as the oracle for
// the worklist engine: sweep every dependency over every row pair, restart
// on any merge, until a full pass merges nothing. Deliberately quadratic —
// only tests run it.
func referenceFDChase(e *Engine, fds fd.List) (failed bool) {
	specs := buildSpecs(fds)
	for {
		merged := false
		for _, sp := range specs {
			for i, ri := range e.rows {
				for _, rj := range e.rows[i+1:] {
					if !e.lhsAgree(ri, rj, sp.lhs) {
						continue
					}
					for _, a := range sp.rhs {
						x, y := e.find(ri[a]), e.find(rj[a])
						if x == y {
							continue
						}
						if _, _, ok := e.union(x, y); !ok {
							return true
						}
						merged = true
					}
				}
			}
		}
		if !merged {
			return false
		}
	}
}

// classesOf captures the partition the chase computed, canonically: for
// each row, each column's class is named by the first (row, col) slot that
// class appeared in.
func classesOf(e *Engine) [][]int32 {
	name := make(map[int32]int32)
	out := make([][]int32, len(e.rows))
	for i, row := range e.rows {
		out[i] = make([]int32, len(row))
		for c, s := range row {
			r := e.find(s)
			id, ok := name[r]
			if !ok {
				id = int32(len(name))
				name[r] = id
			}
			out[i][c] = id
		}
	}
	return out
}

func randomState(r *rand.Rand, s *schema.Schema, rows, domain int) *relation.State {
	st := relation.NewState(s)
	for i := range s.Rels {
		w := s.Attrs(i).Len()
		for j := 0; j < rows; j++ {
			tu := make(relation.Tuple, w)
			for c := range tu {
				tu[c] = relation.Value(r.Intn(domain))
			}
			st.Insts[i].Add(tu)
		}
	}
	return st
}

// TestWorklistMatchesReferencePass pins the FD-rule rewrite: on random
// states, the worklist engine and the seed's sweep-and-restart semantics
// must fail identically and, when they succeed, compute the same partition
// of symbols into classes. This is the regression guard for the old
// fdPass's early-return-after-first-merging-FD behavior — the fixpoint is
// confluent, so any fair processing order must land in the same place.
func TestWorklistMatchesReferencePass(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := schema.MustParse("AB(A,B); BC(B,C); CA(C,A)")
	fds := fd.MustParse(s.U, "A -> B; B -> C; C -> A")
	for trial := 0; trial < 60; trial++ {
		st := randomState(r, s, 4, 3)
		work := NewEngine(s.U)
		work.PadState(st)
		werr := work.ChaseFDs(fds.Split(), DefaultCaps)

		ref := NewEngine(s.U)
		ref.PadState(st)
		rfailed := referenceFDChase(ref, fds.Split())

		if (werr != nil) != rfailed {
			t.Fatalf("trial %d: worklist err=%v, reference failed=%v\n%s", trial, werr, rfailed, st)
		}
		if werr != nil {
			continue
		}
		wc, rc := classesOf(work), classesOf(ref)
		for i := range wc {
			for c := range wc[i] {
				if wc[i][c] != rc[i][c] {
					t.Fatalf("trial %d: partitions diverge at row %d col %d\n%s", trial, i, c, st)
				}
			}
		}
	}
}

// TestChaseFDsIncremental pins the incremental contract: after a fixpoint,
// padding one more tuple and re-running ChaseFDs must agree — verdict and
// partition — with a fresh engine chasing the whole state from scratch.
func TestChaseFDsIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := schema.MustParse("CT(C,T); CS(C,S); CHR(C,H,R)")
	fds := fd.MustParse(s.U, "C -> T; C H -> R").Split()
	for trial := 0; trial < 40; trial++ {
		st := randomState(r, s, 3, 4)
		inc := NewEngine(s.U)
		inc.PadState(st)
		if err := inc.ChaseFDs(fds, DefaultCaps); err != nil {
			continue // base state already contradictory; nothing incremental to test
		}
		// Now extend tuple by tuple, comparing against a fresh full chase.
		for step := 0; step < 12; step++ {
			scheme := r.Intn(len(s.Rels))
			attrs := s.Attrs(scheme).Attrs()
			tu := make(relation.Tuple, len(attrs))
			for c := range tu {
				tu[c] = relation.Value(r.Intn(4))
			}
			st.Insts[scheme].Add(tu)
			fresh := NewEngine(s.U)
			fresh.PadState(st)
			ferr := fresh.ChaseFDs(fds, DefaultCaps)

			inc.PadTuple(attrs, tu)
			ierr := inc.ChaseFDs(fds, DefaultCaps)
			if (ierr != nil) != (ferr != nil) {
				t.Fatalf("trial %d step %d: incremental err=%v, fresh err=%v", trial, step, ierr, ferr)
			}
			if ierr != nil {
				break // both poisoned; later comparisons are meaningless
			}
		}
	}
}

// TestMaxItersMeansSweeps pins the Caps fix: a chase whose JD-rule needs to
// add rows once converges with MaxIters 2 (one growing round, one
// confirming round) but exhausts a budget of 1, and succeeds untouched
// when the budget is 0 (unlimited).
func TestMaxItersMeansSweeps(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C)")
	build := func() *Engine {
		st := relation.NewState(s)
		st.Add("R1", relation.Tuple{1, 2})
		st.Add("R2", relation.Tuple{2, 3})
		e := NewEngine(s.U)
		e.PadState(st)
		return e
	}
	if err := build().Chase(nil, s, Caps{MaxIters: 1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("MaxIters=1 must exhaust after the growing sweep, got %v", err)
	}
	if err := build().Chase(nil, s, Caps{MaxIters: 2}); err != nil {
		t.Fatalf("MaxIters=2 must converge, got %v", err)
	}
	if err := build().Chase(nil, s, Caps{}); err != nil {
		t.Fatalf("unlimited budget must converge, got %v", err)
	}
}

// TestChaseFDsAfterFailureSticks pins the poisoned-engine contract relied
// on by the incremental maintainer: once a chase has failed, further
// ChaseFDs calls keep returning the conflict instead of silently
// continuing on a half-merged symbol table.
func TestChaseFDsAfterFailureSticks(t *testing.T) {
	s := schema.MustParse("AB(A,B)")
	fds := fd.MustParse(s.U, "A -> B").Split()
	st := relation.NewState(s)
	st.Add("AB", relation.Tuple{1, 2})
	st.Add("AB", relation.Tuple{1, 3})
	e := NewEngine(s.U)
	e.PadState(st)
	if err := e.ChaseFDs(fds, DefaultCaps); err == nil {
		t.Fatal("contradictory state must fail")
	}
	if !e.Failed || e.Conflict == nil {
		t.Fatal("failure must be recorded")
	}
	if err := e.ChaseFDs(fds, DefaultCaps); err == nil {
		t.Fatal("a failed engine must keep reporting its conflict")
	}
}
