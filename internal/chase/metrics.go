package chase

import "indep/internal/obs"

// Metrics aggregates chase telemetry. The chase is the system's honest
// exponential fallback, so operators need to see how often it runs and how
// big its worklists get — a schema edit that silently flips the store off
// the independent fast path shows up here first.
//
// A Metrics value rides inside Caps, so it flows to every chase the owner
// runs (the maintainer's incremental engine, per-query fallback engines)
// without widening any signature. A nil *Metrics no-ops; the chase never
// branches on "is telemetry wired".
type Metrics struct {
	Invocations obs.Counter   // full Chase runs (FD+JD fixpoint)
	FDRounds    obs.Counter   // ChaseFDs settle passes
	JDRounds    obs.Counter   // JD-rule sweeps
	Unions      obs.Counter   // FD-rule symbol-class merges
	JDRows      obs.Counter   // universal rows added by the JD-rule
	BudgetHits  obs.Counter   // chases that exhausted their Caps
	Worklist    obs.Histogram // rows pending at the start of each settle
}

func (m *Metrics) noteChase() {
	if m == nil {
		return
	}
	m.Invocations.Inc()
}

func (m *Metrics) noteSettle(pending int) {
	if m == nil {
		return
	}
	m.FDRounds.Inc()
	m.Worklist.Observe(int64(pending))
}

func (m *Metrics) noteUnion() {
	if m == nil {
		return
	}
	m.Unions.Inc()
}

func (m *Metrics) noteJDRound(rowsAdded uint64) {
	if m == nil {
		return
	}
	m.JDRounds.Inc()
	m.JDRows.Add(rowsAdded)
}

func (m *Metrics) noteBudget() {
	if m == nil {
		return
	}
	m.BudgetHits.Inc()
}

// Register files every chase metric with the registry.
func (m *Metrics) Register(r *obs.Registry) {
	r.CounterFunc("indep_chase_invocations_total",
		"full chase runs (FD and JD rules to fixpoint)", m.Invocations.Value)
	r.CounterFunc("indep_chase_fd_rounds_total",
		"FD-rule settle passes, including incremental re-settles", m.FDRounds.Value)
	r.CounterFunc("indep_chase_jd_rounds_total",
		"JD-rule sweeps over the universal relation", m.JDRounds.Value)
	r.CounterFunc("indep_chase_unions_total",
		"symbol-class merges performed by the FD-rule", m.Unions.Value)
	r.CounterFunc("indep_chase_jd_rows_total",
		"universal rows added by the JD-rule", m.JDRows.Value)
	r.CounterFunc("indep_chase_budget_exhausted_total",
		"chases aborted on their row or iteration budget", m.BudgetHits.Value)
	r.RegisterHistogram("indep_chase_worklist_rows",
		"rows pending at the start of each FD settle", 1, &m.Worklist)
}
