package fd

import "indep/internal/attrset"

// NonredundantCover removes FDs that are implied by the remaining ones,
// scanning in order. The result is equivalent to l.
func NonredundantCover(l List) List {
	out := l.Clone()
	for i := 0; i < len(out); i++ {
		rest := make(List, 0, len(out)-1)
		rest = append(rest, out[:i]...)
		rest = append(rest, out[i+1:]...)
		if Implies(rest, out[i]) {
			out = rest
			i--
		}
	}
	return out
}

// reduceLHS removes extraneous attributes from the left-hand side of f with
// respect to l (l must imply f throughout).
func reduceLHS(l List, f FD) FD {
	lhs := f.LHS
	lhs.ForEach(func(a int) bool {
		smaller := lhs.Without(a)
		if !smaller.IsEmpty() && f.RHS.SubsetOf(Closure(l, smaller)) {
			lhs = smaller
		}
		return true
	})
	return FD{LHS: lhs, RHS: f.RHS}
}

// CanonicalCover returns a minimal cover of l: single-attribute right-hand
// sides, no extraneous left-hand-side attributes, and no redundant FDs.
// The result is equivalent to l and deterministic.
func CanonicalCover(l List) List {
	split := l.Split().Dedupe()
	reduced := make(List, 0, len(split))
	for _, f := range split {
		reduced = append(reduced, reduceLHS(split, f))
	}
	reduced = reduced.Dedupe()
	out := NonredundantCover(reduced)
	out.Sort()
	return out
}

// MergeByLHS groups FDs with equal left-hand sides into single FDs with
// unioned right-hand sides; a compact display form.
func MergeByLHS(l List) List {
	byLHS := make(map[attrset.Set]attrset.Set)
	for _, f := range l {
		byLHS[f.LHS] = byLHS[f.LHS].Union(f.RHS)
	}
	lhss := make([]attrset.Set, 0, len(byLHS))
	for lhs := range byLHS {
		lhss = append(lhss, lhs)
	}
	attrset.SortSets(lhss)
	out := make(List, 0, len(lhss))
	for _, lhs := range lhss {
		out = append(out, FD{LHS: lhs, RHS: byLHS[lhs]})
	}
	return out
}
