package fd

import "indep/internal/attrset"

// Closure returns X⁺, the closure of X under the FDs of l: the set of all
// attributes A with l ⊨ X → A (Armstrong [A]). The implementation is the
// standard fixpoint iteration; with the small universes of dependency
// theory this is effectively linear.
func Closure(l List, x attrset.Set) attrset.Set {
	closed := x
	for changed := true; changed; {
		changed = false
		for _, f := range l {
			if f.LHS.SubsetOf(closed) && !f.RHS.SubsetOf(closed) {
				closed = closed.Union(f.RHS)
				changed = true
			}
		}
	}
	return closed
}

// Implies reports whether l ⊨ f, i.e. f.RHS ⊆ Closure(l, f.LHS).
func Implies(l List, f FD) bool {
	return f.RHS.SubsetOf(Closure(l, f.LHS))
}

// ImpliesAll reports whether l ⊨ g for every g in other.
func ImpliesAll(l, other List) bool {
	for _, g := range other {
		if !Implies(l, g) {
			return false
		}
	}
	return true
}

// Equivalent reports whether the two lists imply each other (are covers of
// one another).
func Equivalent(a, b List) bool {
	return ImpliesAll(a, b) && ImpliesAll(b, a)
}

// Step records one application of an FD during a traced closure
// computation: applying Using added the attributes Added.
type Step struct {
	Using FD
	Added attrset.Set
}

// ClosureTrace computes Closure(l, x) and additionally records, in firing
// order, which FD first contributed which attributes. The trace supports
// extracting explicit derivation sequences (see Derive).
func ClosureTrace(l List, x attrset.Set) (attrset.Set, []Step) {
	closed := x
	var steps []Step
	for changed := true; changed; {
		changed = false
		for _, f := range l {
			if f.LHS.SubsetOf(closed) && !f.RHS.SubsetOf(closed) {
				added := f.RHS.Diff(closed)
				closed = closed.Union(f.RHS)
				steps = append(steps, Step{Using: f, Added: added})
				changed = true
			}
		}
	}
	return closed, steps
}

// Derive returns a nonredundant derivation of X → A from l, in the paper's
// sense: a sequence f₁,…,fₙ of FDs of l such that each fᵢ's left-hand side
// is contained in X together with the right-hand sides of earlier fⱼ, the
// last FD yields A, no FD is superfluous, and ok reports whether the
// derivation exists at all (A ∈ Closure(l, X)).
//
// The derivation is built by running a traced closure and then pruning
// backwards from A, keeping only steps whose contribution is actually used.
func Derive(l List, x attrset.Set, a int) (deriv List, ok bool) {
	if x.Has(a) {
		return nil, true // trivially derivable; empty derivation
	}
	closed, steps := ClosureTrace(l, x)
	if !closed.Has(a) {
		return nil, false
	}
	needed := attrset.Of(a)
	used := make([]bool, len(steps))
	for i := len(steps) - 1; i >= 0; i-- {
		if steps[i].Added.Intersects(needed) {
			used[i] = true
			needed = needed.Diff(steps[i].Added)
			needed = needed.Union(steps[i].Using.LHS.Diff(x))
		}
	}
	for i, u := range used {
		if u {
			deriv = append(deriv, steps[i].Using)
		}
	}
	return deriv, true
}

// IsSuperkey reports whether x is a superkey of scheme r under l, i.e.
// r ⊆ Closure(l, x).
func IsSuperkey(l List, x, r attrset.Set) bool {
	return r.SubsetOf(Closure(l, x))
}

// CandidateKeys enumerates the candidate keys of scheme r under the FDs of
// l restricted to r. The search is the usual lattice walk from r downward;
// maxKeys bounds the number of keys returned (0 means no bound). The keys
// are returned in deterministic order.
func CandidateKeys(l List, r attrset.Set, maxKeys int) []attrset.Set {
	emb := l.EmbeddedIn(r)
	// Start from r and greedily shrink; then expand the frontier to find all
	// minimal superkeys via BFS over attribute removals.
	seen := map[attrset.Set]bool{}
	var keys []attrset.Set
	var frontier []attrset.Set
	frontier = append(frontier, r)
	for len(frontier) > 0 {
		x := frontier[0]
		frontier = frontier[1:]
		if seen[x] {
			continue
		}
		seen[x] = true
		if !IsSuperkey(emb, x, r) {
			continue
		}
		minimal := true
		x.ForEach(func(a int) bool {
			y := x.Without(a)
			if IsSuperkey(emb, y, r) {
				minimal = false
				if !seen[y] {
					frontier = append(frontier, y)
				}
			}
			return true
		})
		if minimal {
			keys = append(keys, x)
			if maxKeys > 0 && len(keys) >= maxKeys {
				break
			}
		}
	}
	attrset.SortSets(keys)
	return keys
}

// ProjectionCover computes a cover of F⁺|r, the FDs implied by l that are
// embedded in r. The classical algorithm enumerates closures of subsets of
// r and is exponential in |r|; limit bounds the number of subsets examined
// (0 means no bound) and the second result reports whether the enumeration
// completed. Only intended for small schemes — the point of the paper's
// Section 3 is precisely to avoid this computation.
func ProjectionCover(l List, r attrset.Set, limit int) (List, bool) {
	attrs := r.Attrs()
	n := len(attrs)
	if n > 30 {
		return nil, false
	}
	var out List
	total := 1 << uint(n)
	if limit > 0 && total > limit {
		total = limit
	}
	for mask := 0; mask < total; mask++ {
		var x attrset.Set
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				x.Add(attrs[i])
			}
		}
		rhs := Closure(l, x).Intersect(r).Diff(x)
		if !rhs.IsEmpty() {
			out = append(out, FD{LHS: x, RHS: rhs})
		}
	}
	return out, total == 1<<uint(n)
}
