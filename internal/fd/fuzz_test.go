package fd

import (
	"testing"

	"indep/internal/attrset"
)

// FuzzParse asserts the FD parser never panics, and that whatever it
// accepts round-trips: formatting an accepted list and re-parsing it
// yields the same dependencies.
func FuzzParse(f *testing.F) {
	f.Add("A -> B")
	f.Add("A B -> C; C -> D")
	f.Add("A,B -> C\nD -> A")
	f.Add(" -> B")
	f.Add("A -> ")
	f.Add("A <- B")
	f.Add("A -> Z")
	f.Add("A->B->C")
	f.Fuzz(func(t *testing.T, src string) {
		u := attrset.NewUniverse()
		for _, name := range []string{"A", "B", "C", "D", "E"} {
			u.Add(name)
		}
		fds, err := Parse(u, src)
		if err != nil {
			return
		}
		again, err := Parse(u, fds.Format(u))
		if err != nil {
			t.Fatalf("Format of accepted input %q does not re-parse: %v", src, err)
		}
		if len(again) != len(fds) {
			t.Fatalf("roundtrip of %q: %d FDs became %d", src, len(fds), len(again))
		}
		for i := range fds {
			if fds[i].LHS != again[i].LHS || fds[i].RHS != again[i].RHS {
				t.Fatalf("roundtrip of %q: FD %d changed from %v to %v", src, i, fds[i], again[i])
			}
		}
	})
}
