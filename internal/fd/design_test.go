package fd

import (
	"math/rand"
	"testing"

	"indep/internal/attrset"
)

func TestBCNFDetection(t *testing.T) {
	u := uni()
	// R = ABC with A->B: A is not a superkey of ABC => violation.
	l := MustParse(u, "A -> B")
	viols, complete := BCNFViolations(l, u.Set("A", "B", "C"), 0)
	if !complete || len(viols) == 0 {
		t.Fatalf("expected violations, got %v (complete=%v)", viols, complete)
	}
	// R = AB with A->B: A is a key => BCNF.
	ok, complete := IsBCNF(l, u.Set("A", "B"), 0)
	if !complete || !ok {
		t.Fatalf("AB with A->B must be BCNF")
	}
}

func TestBCNFTransitiveViolation(t *testing.T) {
	u := uni()
	// Classic: R=ABC, A->B, B->C. B->C violates BCNF on ABC.
	l := MustParse(u, "A -> B; B -> C")
	viols, _ := BCNFViolations(l, u.Set("A", "B", "C"), 0)
	found := false
	for _, v := range viols {
		if v.FD.LHS == u.Set("B") {
			found = true
		}
	}
	if !found {
		t.Fatalf("B->C violation not reported: %v", viols)
	}
}

func TestSynthesize3NFClassic(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B; B -> C")
	schemes := Synthesize3NF(l, u.Set("A", "B", "C"))
	// Expect AB and BC; A is a key inside AB so no extra key scheme.
	want := []attrset.Set{u.Set("A", "B"), u.Set("B", "C")}
	attrset.SortSets(want)
	if len(schemes) != 2 || schemes[0] != want[0] || schemes[1] != want[1] {
		t.Fatalf("schemes = %v, want %v", schemes, want)
	}
}

func TestSynthesize3NFAddsKey(t *testing.T) {
	u := uni()
	// A->B over universe ABC: no scheme contains a key (AC), so one is added.
	l := MustParse(u, "A -> B")
	schemes := Synthesize3NF(l, u.Set("A", "B", "C"))
	hasKey := false
	for _, s := range schemes {
		if IsSuperkey(l, s, u.Set("A", "B", "C")) {
			hasKey = true
		}
	}
	if !hasKey {
		t.Fatalf("synthesis must include a key scheme: %v", schemes)
	}
}

func TestSynthesize3NFNoFDs(t *testing.T) {
	u := uni()
	schemes := Synthesize3NF(nil, u.Set("A", "B"))
	if len(schemes) != 1 || schemes[0] != u.Set("A", "B") {
		t.Fatalf("no FDs: the universe itself is the key scheme, got %v", schemes)
	}
}

func TestQuickSynthesize3NFPreservesDependencies(t *testing.T) {
	// Every synthesized decomposition embeds a cover of F: for each FD of
	// the canonical cover, its attributes fit inside one scheme.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		l := genList(r, 7, 5)
		var universe attrset.Set
		for a := 0; a < 7; a++ {
			universe.Add(a)
		}
		schemes := Synthesize3NF(l, universe)
		for _, f := range CanonicalCover(l) {
			ok := false
			for _, s := range schemes {
				if f.Attrs().SubsetOf(s) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("FD %v not embedded in synthesis %v", f, schemes)
			}
		}
		// And some scheme is a superkey of the covered universe.
		hasKey := false
		for _, s := range schemes {
			if IsSuperkey(l, s, universe) {
				hasKey = true
			}
		}
		if !hasKey {
			t.Fatalf("no key scheme in %v", schemes)
		}
	}
}
