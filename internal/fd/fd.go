// Package fd implements functional dependencies: closure computation,
// implication, equivalence, covers, derivations and candidate keys.
//
// Throughout, attribute sets come from internal/attrset and a set of FDs is
// the slice type List. The package implements the classical theory the paper
// builds on (Armstrong [A]; Beeri–Honeyman [BH]; Maier–Mendelzon–Sagiv
// [MMS]).
package fd

import (
	"fmt"
	"sort"
	"strings"

	"indep/internal/attrset"
)

// FD is a functional dependency LHS → RHS.
type FD struct {
	LHS attrset.Set
	RHS attrset.Set
}

// New builds an FD.
func New(lhs, rhs attrset.Set) FD { return FD{LHS: lhs, RHS: rhs} }

// Trivial reports whether the FD is trivial (RHS ⊆ LHS).
func (f FD) Trivial() bool { return f.RHS.SubsetOf(f.LHS) }

// Attrs returns LHS ∪ RHS.
func (f FD) Attrs() attrset.Set { return f.LHS.Union(f.RHS) }

// EmbeddedIn reports whether the FD is embedded in scheme r (LHS∪RHS ⊆ r).
func (f FD) EmbeddedIn(r attrset.Set) bool { return f.Attrs().SubsetOf(r) }

// Format renders the FD using a universe's attribute names.
func (f FD) Format(u *attrset.Universe) string {
	return fmt.Sprintf("%s -> %s", u.Format(f.LHS, " "), u.Format(f.RHS, " "))
}

// List is a set of functional dependencies.
type List []FD

// Format renders the list as "A -> B; B C -> D".
func (l List) Format(u *attrset.Universe) string {
	parts := make([]string, len(l))
	for i, f := range l {
		parts[i] = f.Format(u)
	}
	return strings.Join(parts, "; ")
}

// Attrs returns the union of all attributes mentioned by the list.
func (l List) Attrs() attrset.Set {
	var s attrset.Set
	for _, f := range l {
		s = s.Union(f.Attrs())
	}
	return s
}

// Split returns an equivalent list in which every FD has a single-attribute
// right-hand side and no trivial FDs remain.
func (l List) Split() List {
	var out List
	for _, f := range l {
		f.RHS.Diff(f.LHS).ForEach(func(a int) bool {
			out = append(out, FD{LHS: f.LHS, RHS: attrset.Of(a)})
			return true
		})
	}
	return out
}

// Clone returns a copy of the list.
func (l List) Clone() List {
	out := make(List, len(l))
	copy(out, l)
	return out
}

// Dedupe removes duplicate FDs (same LHS and RHS), preserving order.
func (l List) Dedupe() List {
	seen := make(map[FD]bool, len(l))
	out := make(List, 0, len(l))
	for _, f := range l {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// EmbeddedIn returns the sublist of FDs embedded in scheme r.
func (l List) EmbeddedIn(r attrset.Set) List {
	var out List
	for _, f := range l {
		if f.EmbeddedIn(r) {
			out = append(out, f)
		}
	}
	return out
}

// Sort orders the list deterministically (by LHS then RHS under
// attrset.Less); used for stable output.
func (l List) Sort() {
	sort.Slice(l, func(i, j int) bool {
		if l[i].LHS != l[j].LHS {
			return attrset.Less(l[i].LHS, l[j].LHS)
		}
		return attrset.Less(l[i].RHS, l[j].RHS)
	})
}

// LHSs returns the distinct left-hand sides of the list in deterministic
// order.
func (l List) LHSs() []attrset.Set {
	seen := make(map[attrset.Set]bool)
	var out []attrset.Set
	for _, f := range l {
		if !seen[f.LHS] {
			seen[f.LHS] = true
			out = append(out, f.LHS)
		}
	}
	attrset.SortSets(out)
	return out
}

// Parse reads a semicolon- or newline-separated list of FDs, such as
// "A B -> C; C -> D", resolving attribute names in u. Unknown attribute
// names are an error (FDs must live inside a known universe).
func Parse(u *attrset.Universe, src string) (List, error) {
	var out List
	decls := strings.FieldsFunc(src, func(r rune) bool { return r == ';' || r == '\n' })
	for _, d := range decls {
		d = strings.TrimSpace(d)
		if d == "" {
			continue
		}
		arrow := strings.Index(d, "->")
		if arrow < 0 {
			return nil, fmt.Errorf("fd: missing -> in %q", d)
		}
		lhs, err := parseAttrs(u, d[:arrow])
		if err != nil {
			return nil, fmt.Errorf("fd: %q: %v", d, err)
		}
		rhs, err := parseAttrs(u, d[arrow+2:])
		if err != nil {
			return nil, fmt.Errorf("fd: %q: %v", d, err)
		}
		if lhs.IsEmpty() || rhs.IsEmpty() {
			return nil, fmt.Errorf("fd: empty side in %q", d)
		}
		out = append(out, FD{LHS: lhs, RHS: rhs})
	}
	return out, nil
}

func parseAttrs(u *attrset.Universe, s string) (attrset.Set, error) {
	var set attrset.Set
	for _, f := range strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	}) {
		i, ok := u.Index(f)
		if !ok {
			return set, fmt.Errorf("unknown attribute %q", f)
		}
		set.Add(i)
	}
	return set, nil
}

// MustParse is Parse that panics on error; intended for tests and examples.
func MustParse(u *attrset.Universe, src string) List {
	l, err := Parse(u, src)
	if err != nil {
		panic(err)
	}
	return l
}
