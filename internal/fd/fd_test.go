package fd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"indep/internal/attrset"
)

func uni() *attrset.Universe {
	return attrset.NewUniverse("A", "B", "C", "D", "E")
}

func TestParseAndFormat(t *testing.T) {
	u := uni()
	l, err := Parse(u, "A B -> C; C -> D, E")
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 {
		t.Fatalf("len = %d", len(l))
	}
	if got := l.Format(u); got != "A B -> C; C -> D E" {
		t.Errorf("Format = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	u := uni()
	for _, src := range []string{"A B C", "-> A", "A ->", "A -> Z"} {
		if _, err := Parse(u, src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestTrivialAndEmbedded(t *testing.T) {
	u := uni()
	f := MustParse(u, "A B -> A")[0]
	if !f.Trivial() {
		t.Error("AB->A must be trivial")
	}
	g := MustParse(u, "A -> B")[0]
	if g.Trivial() {
		t.Error("A->B not trivial")
	}
	if !g.EmbeddedIn(u.Set("A", "B", "C")) || g.EmbeddedIn(u.Set("A", "C")) {
		t.Error("EmbeddedIn wrong")
	}
}

func TestClosureTextbook(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B; B -> C; C D -> E")
	got := Closure(l, u.Set("A"))
	if got != u.Set("A", "B", "C") {
		t.Errorf("A+ = %v", u.Format(got, ""))
	}
	got = Closure(l, u.Set("A", "D"))
	if got != u.All() {
		t.Errorf("AD+ = %v", u.Format(got, ""))
	}
}

func TestClosurePaperExample(t *testing.T) {
	// From the paper's introduction: C→T and TH→R imply CH→R.
	u := attrset.NewUniverse("C", "T", "S", "H", "R")
	l := MustParse(u, "C -> T; T H -> R")
	if !Implies(l, FD{LHS: u.Set("C", "H"), RHS: u.Set("R")}) {
		t.Error("C->T, TH->R must imply CH->R")
	}
	if Implies(l, FD{LHS: u.Set("S", "H"), RHS: u.Set("R")}) {
		t.Error("SH->R must not be implied")
	}
}

func TestSplitAndDedupe(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B C; A -> B; D -> D")
	split := l.Split()
	split.Sort()
	want := MustParse(u, "A -> B; A -> B; A -> C").Dedupe()
	want.Sort()
	if !reflect.DeepEqual(split.Dedupe(), want) {
		t.Errorf("Split = %s", split.Format(u))
	}
}

func TestEquivalent(t *testing.T) {
	u := uni()
	a := MustParse(u, "A -> B; B -> C")
	b := MustParse(u, "A -> B C; B -> C")
	if !Equivalent(a, b) {
		t.Error("expected equivalent")
	}
	c := MustParse(u, "A -> B")
	if Equivalent(a, c) {
		t.Error("expected not equivalent")
	}
}

func TestCanonicalCover(t *testing.T) {
	u := uni()
	// Classic: A->BC, B->C, A->B, AB->C reduces to A->B, B->C.
	l := MustParse(u, "A -> B C; B -> C; A -> B; A B -> C")
	cov := CanonicalCover(l)
	want := MustParse(u, "A -> B; B -> C")
	want.Sort()
	if !reflect.DeepEqual(cov, want) {
		t.Errorf("cover = %s", cov.Format(u))
	}
	if !Equivalent(cov, l) {
		t.Error("cover not equivalent to original")
	}
}

func TestCanonicalCoverReducesLHS(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B; A B -> C")
	cov := CanonicalCover(l)
	want := MustParse(u, "A -> B; A -> C")
	want.Sort()
	if !reflect.DeepEqual(cov, want) {
		t.Errorf("cover = %s", cov.Format(u))
	}
}

func TestNonredundantCover(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B; B -> C; A -> C")
	nr := NonredundantCover(l)
	if len(nr) != 2 {
		t.Errorf("nonredundant size = %d: %s", len(nr), nr.Format(u))
	}
	if !Equivalent(nr, l) {
		t.Error("not equivalent")
	}
}

func TestDerive(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B; B -> C; C -> D; A -> E")
	d, ok := Derive(l, u.Set("A"), u.MustIndex("D"))
	if !ok {
		t.Fatal("derivation must exist")
	}
	// Must use exactly A->B, B->C, C->D, not A->E.
	want := MustParse(u, "A -> B; B -> C; C -> D")
	if !reflect.DeepEqual(d, want) {
		t.Errorf("derivation = %s", d.Format(u))
	}
}

func TestDeriveTrivialAndMissing(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B")
	if d, ok := Derive(l, u.Set("A"), u.MustIndex("A")); !ok || len(d) != 0 {
		t.Error("trivial derivation must be empty and ok")
	}
	if _, ok := Derive(l, u.Set("A"), u.MustIndex("C")); ok {
		t.Error("underivable attribute must report !ok")
	}
}

func TestDeriveNonredundant(t *testing.T) {
	u := uni()
	// Two routes to D: the pruner must keep only one.
	l := MustParse(u, "A -> B; B -> D; A -> C; C -> D")
	d, ok := Derive(l, u.Set("A"), u.MustIndex("D"))
	if !ok {
		t.Fatal("derivation must exist")
	}
	if len(d) != 2 {
		t.Errorf("derivation should have 2 steps, got %s", d.Format(u))
	}
}

func TestCandidateKeys(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B; B -> A; A -> C")
	keys := CandidateKeys(l, u.Set("A", "B", "C"), 0)
	want := []attrset.Set{u.Set("A"), u.Set("B")}
	attrset.SortSets(want)
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("keys = %v", keys)
	}
}

func TestCandidateKeysComposite(t *testing.T) {
	u := uni()
	l := MustParse(u, "A B -> C")
	keys := CandidateKeys(l, u.Set("A", "B", "C"), 0)
	if len(keys) != 1 || keys[0] != u.Set("A", "B") {
		t.Errorf("keys = %v", keys)
	}
}

func TestProjectionCover(t *testing.T) {
	u := uni()
	// Transitive FD through an attribute outside the scheme.
	l := MustParse(u, "A -> B; B -> C")
	proj, complete := ProjectionCover(l, u.Set("A", "C"), 0)
	if !complete {
		t.Fatal("projection must complete")
	}
	if !Implies(proj, FD{LHS: u.Set("A"), RHS: u.Set("C")}) {
		t.Errorf("projection must imply A->C, got %s", proj.Format(u))
	}
	for _, f := range proj {
		if !f.EmbeddedIn(u.Set("A", "C")) {
			t.Errorf("projected FD %s not embedded", f.Format(u))
		}
	}
}

func TestMergeByLHS(t *testing.T) {
	u := uni()
	l := MustParse(u, "A -> B; A -> C; B -> D")
	m := MergeByLHS(l)
	if len(m) != 2 {
		t.Fatalf("merged = %s", m.Format(u))
	}
	if !Equivalent(m, l) {
		t.Error("merge changed semantics")
	}
}

// genList builds a random FD list over nAttrs attributes.
func genList(r *rand.Rand, nAttrs, nFDs int) List {
	var l List
	for i := 0; i < nFDs; i++ {
		var lhs, rhs attrset.Set
		for j := 0; j < 1+r.Intn(2); j++ {
			lhs.Add(r.Intn(nAttrs))
		}
		rhs.Add(r.Intn(nAttrs))
		l = append(l, FD{LHS: lhs, RHS: rhs})
	}
	return l
}

func TestQuickClosureProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		l := genList(r, 8, 5)
		var x attrset.Set
		for j := 0; j < r.Intn(4); j++ {
			x.Add(r.Intn(8))
		}
		c := Closure(l, x)
		if !x.SubsetOf(c) {
			t.Fatal("closure not extensive")
		}
		if Closure(l, c) != c {
			t.Fatal("closure not idempotent")
		}
		y := x.With(r.Intn(8))
		if !c.SubsetOf(Closure(l, y)) {
			t.Fatal("closure not monotone")
		}
	}
}

func TestQuickCanonicalCoverEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		l := genList(r, 7, 6)
		cov := CanonicalCover(l)
		if !Equivalent(cov, l) {
			t.Fatalf("canonical cover not equivalent: %v vs %v", cov, l)
		}
	}
}

func TestQuickIntersectionOfClosedIsClosed(t *testing.T) {
	// Used implicitly by the paper's Lemma 6.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		l := genList(r, 8, 6)
		x := Closure(l, attrset.Of(r.Intn(8)))
		y := Closure(l, attrset.Of(r.Intn(8)))
		inter := x.Intersect(y)
		if Closure(l, inter) != inter {
			t.Fatal("intersection of closed sets must be closed")
		}
	}
}

func TestQuickDeriveMatchesClosure(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		l := genList(r, 8, 6).Split()
		var x attrset.Set
		x.Add(r.Intn(8))
		a := r.Intn(8)
		d, ok := Derive(l, x, a)
		if ok != Closure(l, x).Has(a) {
			t.Fatal("Derive existence disagrees with Closure")
		}
		if ok && !x.Has(a) {
			// Replaying the derivation must reach a.
			cur := x
			for _, f := range d {
				if !f.LHS.SubsetOf(cur) {
					t.Fatal("derivation step lhs not satisfied in order")
				}
				cur = cur.Union(f.RHS)
			}
			if !cur.Has(a) {
				t.Fatal("derivation does not reach target")
			}
		}
	}
}

func TestQuickSetGeneratorCompiles(t *testing.T) {
	// Ensure testing/quick is exercised in this package too.
	f := func(x uint8) bool {
		s := attrset.Of(int(x) % attrset.MaxAttrs)
		return s.Len() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
