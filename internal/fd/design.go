package fd

import "indep/internal/attrset"

// Design-theory helpers: normal forms and decomposition synthesis. These
// support the schema-design workflow the paper situates itself in (a
// designer replaces a universal scheme by components and asks which
// constraints remain enforceable).

// BCNFViolation describes an FD breaking Boyce-Codd normal form on a
// scheme: a nontrivial projected FD whose left side is not a superkey.
type BCNFViolation struct {
	Scheme attrset.Set
	FD     FD
}

// BCNFViolations returns the violations of BCNF on scheme r under the
// projection of l onto r. The projection is computed by subset
// enumeration, so the check is exact but intended for schemes of modest
// width (≤ ~20 attributes); complete reports whether enumeration finished.
func BCNFViolations(l List, r attrset.Set, limit int) (viols []BCNFViolation, complete bool) {
	proj, complete := ProjectionCover(l, r, limit)
	for _, f := range proj {
		if f.Trivial() {
			continue
		}
		if !IsSuperkey(proj, f.LHS, r) {
			viols = append(viols, BCNFViolation{Scheme: r, FD: f})
		}
	}
	return viols, complete
}

// IsBCNF reports whether scheme r is in BCNF under l.
func IsBCNF(l List, r attrset.Set, limit int) (bool, bool) {
	v, complete := BCNFViolations(l, r, limit)
	return len(v) == 0, complete
}

// Synthesize3NF runs Bernstein's third-normal-form synthesis over the
// universe u: canonical cover, one scheme per left-hand-side group, plus a
// key scheme when no group contains a candidate key of the universe, with
// subsumed schemes removed. The result is a lossless, dependency-preserving
// (cover-embedding by construction) decomposition.
func Synthesize3NF(l List, universe attrset.Set) []attrset.Set {
	cover := CanonicalCover(l)
	merged := MergeByLHS(cover)
	var schemes []attrset.Set
	for _, f := range merged {
		schemes = append(schemes, f.LHS.Union(f.RHS))
	}
	// Ensure a global key is present so the join is lossless.
	hasKey := false
	for _, s := range schemes {
		if IsSuperkey(cover, s, universe) {
			hasKey = true
			break
		}
	}
	if !hasKey {
		keys := CandidateKeys(cover, universe, 1)
		if len(keys) > 0 {
			schemes = append(schemes, keys[0])
		} else {
			schemes = append(schemes, universe)
		}
	}
	// Remove schemes contained in others.
	var out []attrset.Set
	for i, s := range schemes {
		subsumed := false
		for j, t := range schemes {
			if i == j {
				continue
			}
			if s.ProperSubsetOf(t) || (s == t && j < i) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, s)
		}
	}
	attrset.SortSets(out)
	return out
}
