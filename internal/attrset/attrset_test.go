package attrset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOfAndHas(t *testing.T) {
	s := Of(0, 3, 63, 64, 255)
	for _, a := range []int{0, 3, 63, 64, 255} {
		if !s.Has(a) {
			t.Errorf("expected %d in set", a)
		}
	}
	for _, a := range []int{1, 2, 62, 65, 254} {
		if s.Has(a) {
			t.Errorf("did not expect %d in set", a)
		}
	}
	if s.Has(-1) || s.Has(256) {
		t.Error("out-of-range Has must be false")
	}
}

func TestAddRemove(t *testing.T) {
	var s Set
	s.Add(10)
	s.Add(100)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Remove(10)
	if s.Has(10) || !s.Has(100) {
		t.Fatal("Remove removed wrong element")
	}
	s.Remove(100)
	if !s.IsEmpty() {
		t.Fatal("set should be empty")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	var s Set
	s.Add(MaxAttrs)
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3, 70)
	b := Of(3, 4, 70, 200)
	if got := a.Union(b); got != Of(1, 2, 3, 4, 70, 200) {
		t.Errorf("Union = %v", got.Attrs())
	}
	if got := a.Intersect(b); got != Of(3, 70) {
		t.Errorf("Intersect = %v", got.Attrs())
	}
	if got := a.Diff(b); got != Of(1, 2) {
		t.Errorf("Diff = %v", got.Attrs())
	}
	if !Of(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
	if !Of(1, 2).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf wrong")
	}
	if !a.Intersects(b) || Of(1).Intersects(Of(2)) {
		t.Error("Intersects wrong")
	}
}

func TestWithWithout(t *testing.T) {
	a := Of(1)
	b := a.With(2)
	if a != Of(1) {
		t.Error("With mutated receiver")
	}
	if b != Of(1, 2) {
		t.Error("With result wrong")
	}
	if b.Without(1) != Of(2) {
		t.Error("Without result wrong")
	}
}

func TestAttrsAndFirst(t *testing.T) {
	s := Of(5, 1, 200, 64)
	if got := s.Attrs(); !reflect.DeepEqual(got, []int{1, 5, 64, 200}) {
		t.Errorf("Attrs = %v", got)
	}
	if s.First() != 1 {
		t.Errorf("First = %d", s.First())
	}
	var empty Set
	if empty.First() != -1 {
		t.Error("First of empty must be -1")
	}
	if len(empty.Attrs()) != 0 {
		t.Error("Attrs of empty must be empty")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := Of(1, 2, 3, 4)
	var seen []int
	s.ForEach(func(a int) bool {
		seen = append(seen, a)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Errorf("seen = %v", seen)
	}
}

func TestUniverse(t *testing.T) {
	u := NewUniverse("C", "T", "S", "H", "R")
	if u.Size() != 5 {
		t.Fatalf("Size = %d", u.Size())
	}
	if i := u.MustIndex("H"); i != 3 {
		t.Errorf("MustIndex(H) = %d", i)
	}
	if _, ok := u.Index("Z"); ok {
		t.Error("Z should be absent")
	}
	if u.Add("C") != 0 {
		t.Error("re-adding C must return index 0")
	}
	s := u.Set("C", "H", "R")
	if got := u.Format(s, ""); got != "CHR" {
		t.Errorf("Format = %q", got)
	}
	if u.All().Len() != 5 {
		t.Error("All wrong")
	}
	if u.Name(99) != "?" {
		t.Error("Name out of range must be ?")
	}
}

func TestUniverseMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniverse("A").MustIndex("B")
}

func TestLessIsTotalOrder(t *testing.T) {
	sets := []Set{Of(3), Of(1, 2), Of(0), Of(), Of(0, 1, 2)}
	SortSets(sets)
	want := []Set{Of(), Of(0), Of(3), Of(1, 2), Of(0, 1, 2)}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("sorted = %v", sets)
	}
}

// randomSet draws a set over a small universe for property tests.
func randomSet(r *rand.Rand) Set {
	var s Set
	n := r.Intn(12)
	for i := 0; i < n; i++ {
		s.Add(r.Intn(MaxAttrs))
	}
	return s
}

// Generate implements quick.Generator so Set can appear in property tests.
func (Set) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomSet(r))
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(a, b Set) bool { return a.Union(b) == b.Union(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b, c Set) bool {
		// c − (a ∪ b) == (c − a) ∩ (c − b)
		return c.Diff(a.Union(b)) == c.Diff(a).Intersect(c.Diff(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetUnionAbsorb(t *testing.T) {
	f := func(a, b Set) bool {
		u := a.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u) && u.Intersect(a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLenUnionInclusionExclusion(t *testing.T) {
	f := func(a, b Set) bool {
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAttrsRoundTrip(t *testing.T) {
	f := func(a Set) bool { return Of(a.Attrs()...) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
