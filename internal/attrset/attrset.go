// Package attrset provides fixed-capacity attribute sets and attribute
// universes for relational dependency theory.
//
// An attribute is an index into a Universe (a dictionary of attribute
// names). A Set is a bitset over at most MaxAttrs attributes. Set is a
// value type: it is comparable with ==, usable as a map key, and all
// operations return new values rather than mutating in place (except the
// explicit pointer receivers Add and Remove).
package attrset

import (
	"math/bits"
	"sort"
	"strings"
)

// MaxAttrs is the maximum number of attributes in a Universe.
const MaxAttrs = 256

const words = MaxAttrs / 64

// Set is a set of attribute indices in [0, MaxAttrs). The zero value is the
// empty set. Set is comparable: s == t holds exactly when the sets are equal.
type Set [words]uint64

// Of builds a set from the given attribute indices. It panics if an index is
// out of range, since that always indicates a programming error.
func Of(attrs ...int) Set {
	var s Set
	for _, a := range attrs {
		s.Add(a)
	}
	return s
}

// Add inserts attribute a into the set.
func (s *Set) Add(a int) {
	if a < 0 || a >= MaxAttrs {
		panic("attrset: attribute index out of range")
	}
	s[a/64] |= 1 << uint(a%64)
}

// Remove deletes attribute a from the set.
func (s *Set) Remove(a int) {
	if a < 0 || a >= MaxAttrs {
		panic("attrset: attribute index out of range")
	}
	s[a/64] &^= 1 << uint(a%64)
}

// Has reports whether attribute a is in the set.
func (s Set) Has(a int) bool {
	if a < 0 || a >= MaxAttrs {
		return false
	}
	return s[a/64]&(1<<uint(a%64)) != 0
}

// IsEmpty reports whether the set has no attributes.
func (s Set) IsEmpty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of attributes in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	var u Set
	for i := range s {
		u[i] = s[i] | t[i]
	}
	return u
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var u Set
	for i := range s {
		u[i] = s[i] & t[i]
	}
	return u
}

// Diff returns s − t.
func (s Set) Diff(t Set) Set {
	var u Set
	for i := range s {
		u[i] = s[i] &^ t[i]
	}
	return u
}

// SubsetOf reports whether every attribute of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i := range s {
		if s[i]&^t[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return s != t && s.SubsetOf(t)
}

// Intersects reports whether s ∩ t is nonempty.
func (s Set) Intersects(t Set) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// With returns s ∪ {a}.
func (s Set) With(a int) Set {
	s.Add(a)
	return s
}

// Without returns s − {a}.
func (s Set) Without(a int) Set {
	s.Remove(a)
	return s
}

// Attrs returns the attribute indices of the set in ascending order.
func (s Set) Attrs() []int {
	out := make([]int, 0, s.Len())
	for i, w := range s {
		base := i * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, base+b)
			w &= w - 1
		}
	}
	return out
}

// First returns the smallest attribute in the set, or -1 if empty.
func (s Set) First() int {
	for i, w := range s {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls f for every attribute in ascending order. It stops early if
// f returns false.
func (s Set) ForEach(f func(a int) bool) {
	for i, w := range s {
		base := i * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Universe is a dictionary assigning names to attribute indices 0..n−1.
// The zero value is an empty universe; use Add or NewUniverse to populate it.
type Universe struct {
	names []string
	index map[string]int
}

// NewUniverse builds a universe from the given attribute names, in order.
// Duplicate names panic: a universe is a set of attributes.
func NewUniverse(names ...string) *Universe {
	u := &Universe{index: make(map[string]int, len(names))}
	for _, n := range names {
		u.Add(n)
	}
	return u
}

// Add appends a new attribute and returns its index. Adding an existing name
// returns the existing index.
func (u *Universe) Add(name string) int {
	if u.index == nil {
		u.index = make(map[string]int)
	}
	if i, ok := u.index[name]; ok {
		return i
	}
	if len(u.names) >= MaxAttrs {
		panic("attrset: universe exceeds MaxAttrs attributes")
	}
	i := len(u.names)
	u.names = append(u.names, name)
	u.index[name] = i
	return i
}

// Size returns the number of attributes in the universe.
func (u *Universe) Size() int { return len(u.names) }

// Name returns the name of attribute i.
func (u *Universe) Name(i int) string {
	if i < 0 || i >= len(u.names) {
		return "?"
	}
	return u.names[i]
}

// Names returns the names of all attributes of s, in index order.
func (u *Universe) Names(s Set) []string {
	attrs := s.Attrs()
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = u.Name(a)
	}
	return out
}

// Index returns the index of the named attribute and whether it exists.
func (u *Universe) Index(name string) (int, bool) {
	i, ok := u.index[name]
	return i, ok
}

// MustIndex returns the index of the named attribute, panicking if absent.
func (u *Universe) MustIndex(name string) int {
	i, ok := u.index[name]
	if !ok {
		panic("attrset: unknown attribute " + name)
	}
	return i
}

// Set builds a Set from attribute names. Unknown names panic.
func (u *Universe) Set(names ...string) Set {
	var s Set
	for _, n := range names {
		s.Add(u.MustIndex(n))
	}
	return s
}

// All returns the set of every attribute in the universe.
func (u *Universe) All() Set {
	var s Set
	for i := range u.names {
		s.Add(i)
	}
	return s
}

// Format renders a set using the universe's attribute names, joined by the
// given separator, in index order.
func (u *Universe) Format(s Set, sep string) string {
	return strings.Join(u.Names(s), sep)
}

// SortSets orders sets lexicographically by their attribute lists; used to
// produce deterministic output.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool { return Less(sets[i], sets[j]) })
}

// Less is a total order on sets: first by size, then lexicographically by
// bit pattern. It exists to make algorithm traces and witnesses
// deterministic.
func Less(a, b Set) bool {
	la, lb := a.Len(), b.Len()
	if la != lb {
		return la < lb
	}
	for i := words - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
