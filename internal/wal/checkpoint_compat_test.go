package wal

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"indep/internal/relation"
)

// encodeCheckpointV1 reproduces the pre-columnar checkpoint encoder
// byte-for-byte (magic "INDEPCK1", row-major tuples). It exists only in
// tests, to pin that current recovery still reads data directories and
// replication snapshots written before the columnar format.
func encodeCheckpointV1(seq uint64, dict []DictEntry, tuples [][]relation.Tuple) []byte {
	buf := []byte(ckptMagicPrefix + string(rune(ckptV1)))
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, e := range dict {
		buf = binary.AppendVarint(buf, int64(e.Value))
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(tuples)))
	for _, ts := range tuples {
		buf = binary.AppendUvarint(buf, uint64(len(ts)))
		for _, t := range ts {
			buf = binary.AppendUvarint(buf, uint64(len(t)))
			for _, v := range t {
				buf = binary.AppendVarint(buf, int64(v))
			}
		}
	}
	sum := crc32.Checksum(buf, crcTable)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// TestDecodeV1Checkpoint pins backward compatibility: a checkpoint written
// by the legacy row-major encoder decodes into the same logical content the
// columnar decoder reports, and re-encoding it (as v2) round-trips.
func TestDecodeV1Checkpoint(t *testing.T) {
	dict := []DictEntry{{Value: 0, Name: "a"}, {Value: 3, Name: "b"}}
	tuples := [][]relation.Tuple{
		{{1, 2}, {3, 4}, {-5, 6}},
		{},
		{{7}},
	}
	data := encodeCheckpointV1(42, dict, tuples)

	ck, err := DecodeCheckpointBytes(data)
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if ck.Seq != 42 || !reflect.DeepEqual(ck.Dict, dict) {
		t.Fatalf("v1 header mismatch: %+v", ck)
	}
	if ck.NumSchemes() != 3 {
		t.Fatalf("schemes %d, want 3", ck.NumSchemes())
	}
	for i, want := range tuples {
		if ck.RowCount(i) != len(want) {
			t.Fatalf("scheme %d rows %d, want %d", i, ck.RowCount(i), len(want))
		}
		if len(want) > 0 && !reflect.DeepEqual(ck.TuplesOf(i), want) {
			t.Fatalf("scheme %d: %v, want %v", i, ck.TuplesOf(i), want)
		}
	}

	// Re-encoding produces the current (v2) format with identical content.
	again, err := DecodeCheckpointBytes(ck.Encode())
	if err != nil {
		t.Fatalf("transposed re-encode rejected: %v", err)
	}
	for i, want := range tuples {
		if again.RowCount(i) != len(want) {
			t.Fatalf("re-encoded scheme %d rows %d, want %d", i, again.RowCount(i), len(want))
		}
		if len(want) > 0 && !reflect.DeepEqual(again.TuplesOf(i), want) {
			t.Fatalf("re-encoded scheme %d: %v, want %v", i, again.TuplesOf(i), want)
		}
	}
}

// TestDecodeV1RaggedArityRejected pins that a v1 body whose tuples disagree
// on arity within one scheme is rejected rather than transposed into
// nonsense columns.
func TestDecodeV1RaggedArityRejected(t *testing.T) {
	data := encodeCheckpointV1(1, nil, [][]relation.Tuple{{{1, 2}, {3}}})
	if _, err := DecodeCheckpointBytes(data); err == nil {
		t.Fatal("ragged v1 checkpoint accepted")
	}
}

// TestDecodeUnknownVersionRejected pins the version gate: a well-formed CRC
// over an unknown version byte must not decode as either format.
func TestDecodeUnknownVersionRejected(t *testing.T) {
	buf := []byte(ckptMagicPrefix + "3")
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, 0)
	buf = binary.AppendUvarint(buf, 0)
	sum := crc32.Checksum(buf, crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	if _, err := DecodeCheckpointBytes(buf); err == nil {
		t.Fatal("unknown checkpoint version accepted")
	}
}
