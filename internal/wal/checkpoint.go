package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"indep/internal/relation"
)

// DictEntry is one durable dictionary binding.
type DictEntry struct {
	Value relation.Value
	Name  string
}

// Checkpoint is a serialized snapshot of the engine state: the dictionary
// and every relation's rows in column-major form, plus the sequence number
// of the first WAL segment NOT covered by the snapshot (recovery loads the
// checkpoint, then replays segments >= Seq).
//
// Cols[i][c] holds scheme i's column c: exactly Counts[i] live rows in slot
// order. Building a checkpoint from a state is (near) zero-copy — the
// slices alias the instance's column arenas unless deletes left free slots
// to compact — and encoding streams each arena contiguously instead of
// walking per-row objects.
type Checkpoint struct {
	Seq    uint64
	Dict   []DictEntry
	Cols   [][][]relation.Value // per scheme, per column, in schema order
	Counts []int                // per scheme: row count
}

// NewCheckpoint builds a Checkpoint from a consistent snapshot state whose
// Dict has been materialized, cutting at seq.
func NewCheckpoint(seq uint64, st *relation.State) *Checkpoint {
	ck := &Checkpoint{
		Seq:    seq,
		Cols:   make([][][]relation.Value, len(st.Insts)),
		Counts: make([]int, len(st.Insts)),
	}
	if st.Dict != nil {
		st.Dict.Each(func(v relation.Value, name string) {
			ck.Dict = append(ck.Dict, DictEntry{Value: v, Name: name})
		})
	}
	for i, in := range st.Insts {
		ck.Cols[i], ck.Counts[i] = in.SnapshotCols()
	}
	return ck
}

// NumSchemes returns the number of relations in the snapshot.
func (ck *Checkpoint) NumSchemes() int { return len(ck.Cols) }

// RowCount returns scheme i's row count.
func (ck *Checkpoint) RowCount(i int) int { return ck.Counts[i] }

// Arity returns scheme i's column count.
func (ck *Checkpoint) Arity(i int) int { return len(ck.Cols[i]) }

// AppendRow appends scheme i's row r to dst and returns it — the scratch-
// tuple iteration shape recovery uses to re-admit rows without
// materializing the whole relation.
func (ck *Checkpoint) AppendRow(dst relation.Tuple, i, r int) relation.Tuple {
	for _, col := range ck.Cols[i] {
		dst = append(dst, col[r])
	}
	return dst
}

// TuplesOf materializes scheme i's rows as freshly allocated tuples — for
// cold paths (re-sync diffs, tests) that want row-shaped data.
func (ck *Checkpoint) TuplesOf(i int) []relation.Tuple {
	out := make([]relation.Tuple, ck.Counts[i])
	for r := range out {
		out[r] = ck.AppendRow(make(relation.Tuple, 0, ck.Arity(i)), i, r)
	}
	return out
}

// Checkpoint file layout: magic (a shared prefix plus one version byte),
// then a uvarint/varint-encoded body, then a trailing CRC32 over everything
// before it. Files are written to a temp name and atomically renamed, so a
// visible checkpoint is complete unless the disk itself corrupted it —
// which the CRC catches.
//
// Version '2' (current) stores each relation column-major: arity, row
// count, then one length-prefixed block per column holding the column's
// varint-encoded values. Version '1' (pre-columnar) stored row-major
// tuples; it is still decoded for recovery from old data directories and
// replication snapshots from old primaries.
const (
	ckptMagicPrefix = "INDEPCK"
	ckptV1          = '1'
	ckptV2          = '2'
	ckptMagic       = ckptMagicPrefix + string(rune(ckptV2))
)

func (ck *Checkpoint) encode() []byte {
	buf := []byte(ckptMagic)
	buf = binary.AppendUvarint(buf, ck.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(ck.Dict)))
	for _, e := range ck.Dict {
		buf = binary.AppendVarint(buf, int64(e.Value))
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Cols)))
	var colBuf []byte // scratch: one column's encoding, reused
	for i, cols := range ck.Cols {
		rows := ck.Counts[i]
		buf = binary.AppendUvarint(buf, uint64(len(cols)))
		buf = binary.AppendUvarint(buf, uint64(rows))
		for _, col := range cols {
			colBuf = colBuf[:0]
			for _, v := range col[:rows] {
				colBuf = binary.AppendVarint(colBuf, int64(v))
			}
			buf = binary.AppendUvarint(buf, uint64(len(colBuf)))
			buf = append(buf, colBuf...)
		}
	}
	sum := crc32.Checksum(buf, crcTable)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// Encode renders the checkpoint in its file format (magic, body, trailing
// CRC): the bytes WriteCheckpoint would persist, exposed so a primary can
// ship a catch-up snapshot over the replication stream without touching
// disk.
func (ck *Checkpoint) Encode() []byte { return ck.encode() }

// DecodeCheckpointBytes parses an encoded checkpoint (the replication
// snapshot wire format), verifying the magic and trailing CRC. Both the
// columnar ('2') and the legacy row-major ('1') versions decode.
func DecodeCheckpointBytes(data []byte) (*Checkpoint, error) {
	return decodeCheckpoint(data)
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	magicLen := len(ckptMagicPrefix) + 1
	if len(data) < magicLen+4 || string(data[:len(ckptMagicPrefix)]) != ckptMagicPrefix {
		return nil, fmt.Errorf("wal: not a checkpoint file")
	}
	version := data[len(ckptMagicPrefix)]
	if version != ckptV1 && version != ckptV2 {
		return nil, fmt.Errorf("wal: unknown checkpoint version %q", version)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	b := body[magicLen:]
	ck := &Checkpoint{}
	var err error
	if ck.Seq, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var v int64
		if v, b, err = readVarint(b); err != nil {
			return nil, err
		}
		var ln uint64
		if ln, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if ln > uint64(len(b)) {
			return nil, fmt.Errorf("wal: checkpoint dict name overruns file")
		}
		ck.Dict = append(ck.Dict, DictEntry{Value: relation.Value(v), Name: string(b[:ln])})
		b = b[ln:]
	}
	var schemes uint64
	if schemes, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if schemes > uint64(len(b)) {
		return nil, fmt.Errorf("wal: checkpoint scheme count overruns file")
	}
	ck.Cols = make([][][]relation.Value, schemes)
	ck.Counts = make([]int, schemes)
	if version == ckptV1 {
		err = decodeSchemesV1(ck, b)
	} else {
		err = decodeSchemesV2(ck, b)
	}
	if err != nil {
		return nil, err
	}
	return ck, nil
}

// decodeSchemesV2 parses the columnar relation bodies: per scheme an arity,
// a row count, and one length-prefixed varint block per column.
func decodeSchemesV2(ck *Checkpoint, b []byte) error {
	var err error
	for i := range ck.Cols {
		var arity, rows uint64
		if arity, b, err = readUvarint(b); err != nil {
			return err
		}
		if arity > uint64(len(b))+1 { // each column block carries ≥1 length byte
			return fmt.Errorf("wal: checkpoint arity overruns file")
		}
		if rows, b, err = readUvarint(b); err != nil {
			return err
		}
		ck.Counts[i] = int(rows)
		ck.Cols[i] = make([][]relation.Value, arity)
		for c := range ck.Cols[i] {
			var blockLen uint64
			if blockLen, b, err = readUvarint(b); err != nil {
				return err
			}
			if blockLen > uint64(len(b)) {
				return fmt.Errorf("wal: checkpoint column block overruns file")
			}
			block := b[:blockLen]
			b = b[blockLen:]
			if rows > blockLen { // every varint takes at least one byte
				return fmt.Errorf("wal: checkpoint column block too short for %d rows", rows)
			}
			col := make([]relation.Value, 0, rows)
			for r := uint64(0); r < rows; r++ {
				var v int64
				if v, block, err = readVarint(block); err != nil {
					return err
				}
				col = append(col, relation.Value(v))
			}
			if len(block) != 0 {
				return fmt.Errorf("wal: %d trailing bytes in checkpoint column block", len(block))
			}
			ck.Cols[i][c] = col
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("wal: %d trailing bytes in checkpoint", len(b))
	}
	return nil
}

// decodeSchemesV1 parses the legacy row-major relation bodies (tuple count,
// then per-tuple arity and values) and transposes them into columns. All
// tuples of a scheme must agree on arity — they always do in a real file;
// a disagreement means corruption the CRC missed.
func decodeSchemesV1(ck *Checkpoint, b []byte) error {
	var err error
	for i := range ck.Cols {
		var cnt uint64
		if cnt, b, err = readUvarint(b); err != nil {
			return err
		}
		if cnt > uint64(len(b)) {
			return fmt.Errorf("wal: checkpoint tuple count overruns file")
		}
		for j := uint64(0); j < cnt; j++ {
			var arity uint64
			if arity, b, err = readUvarint(b); err != nil {
				return err
			}
			if arity > uint64(len(b)) {
				return fmt.Errorf("wal: checkpoint tuple overruns file")
			}
			if j == 0 {
				ck.Cols[i] = make([][]relation.Value, arity)
				for c := range ck.Cols[i] {
					ck.Cols[i][c] = make([]relation.Value, 0, cnt)
				}
			} else if arity != uint64(len(ck.Cols[i])) {
				return fmt.Errorf("wal: checkpoint tuple arity %d differs from scheme arity %d", arity, len(ck.Cols[i]))
			}
			for c := uint64(0); c < arity; c++ {
				var v int64
				if v, b, err = readVarint(b); err != nil {
					return err
				}
				ck.Cols[i][c] = append(ck.Cols[i][c], relation.Value(v))
			}
		}
		ck.Counts[i] = int(cnt)
	}
	if len(b) != 0 {
		return fmt.Errorf("wal: %d trailing bytes in checkpoint", len(b))
	}
	return nil
}

// WriteCheckpoint durably writes ck to dir (temp file, fsync, atomic
// rename, directory fsync) and garbage-collects older checkpoint files.
// It returns the checkpoint's encoded size in bytes.
func WriteCheckpoint(dir string, ck *Checkpoint) (int64, error) {
	data := ck.encode()
	size := int64(len(data))
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ckptName(ck.Seq))); err != nil {
		return 0, err
	}
	syncDir(dir)
	removeCheckpointsExcept(dir, ck.Seq)
	return size, nil
}

// LatestCheckpoint loads the newest readable checkpoint in dir, or nil if
// none exists. A corrupt newer checkpoint falls back to an older one.
func LatestCheckpoint(dir string) (*Checkpoint, error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := len(cks) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, ckptName(cks[i])))
		if err != nil {
			lastErr = err
			continue
		}
		ck, err := decodeCheckpoint(data)
		if err != nil {
			lastErr = err
			continue
		}
		if ck.Seq != cks[i] {
			lastErr = fmt.Errorf("wal: checkpoint %s declares seq %d", ckptName(cks[i]), ck.Seq)
			continue
		}
		return ck, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("wal: no readable checkpoint: %w", lastErr)
	}
	return nil, nil
}
