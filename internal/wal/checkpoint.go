package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"indep/internal/relation"
)

// DictEntry is one durable dictionary binding.
type DictEntry struct {
	Value relation.Value
	Name  string
}

// Checkpoint is a serialized snapshot of the engine state: the dictionary
// and every relation's tuples, plus the sequence number of the first WAL
// segment NOT covered by the snapshot (recovery loads the checkpoint, then
// replays segments >= Seq).
type Checkpoint struct {
	Seq    uint64
	Dict   []DictEntry
	Tuples [][]relation.Tuple // per scheme, in schema order
}

// NewCheckpoint builds a Checkpoint from a consistent snapshot state whose
// Dict has been materialized, cutting at seq.
func NewCheckpoint(seq uint64, st *relation.State) *Checkpoint {
	ck := &Checkpoint{Seq: seq, Tuples: make([][]relation.Tuple, len(st.Insts))}
	if st.Dict != nil {
		st.Dict.Each(func(v relation.Value, name string) {
			ck.Dict = append(ck.Dict, DictEntry{Value: v, Name: name})
		})
	}
	for i, in := range st.Insts {
		ck.Tuples[i] = in.Tuples
	}
	return ck
}

// Checkpoint file layout: magic, then a uvarint/varint-encoded body, then a
// trailing CRC32 over everything before it. Files are written to a temp
// name and atomically renamed, so a visible checkpoint is complete unless
// the disk itself corrupted it — which the CRC catches.
const ckptMagic = "INDEPCK1"

func (ck *Checkpoint) encode() []byte {
	buf := []byte(ckptMagic)
	buf = binary.AppendUvarint(buf, ck.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(ck.Dict)))
	for _, e := range ck.Dict {
		buf = binary.AppendVarint(buf, int64(e.Value))
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Tuples)))
	for _, tuples := range ck.Tuples {
		buf = binary.AppendUvarint(buf, uint64(len(tuples)))
		for _, t := range tuples {
			buf = binary.AppendUvarint(buf, uint64(len(t)))
			for _, v := range t {
				buf = binary.AppendVarint(buf, int64(v))
			}
		}
	}
	sum := crc32.Checksum(buf, crcTable)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// Encode renders the checkpoint in its file format (magic, body, trailing
// CRC): the bytes WriteCheckpoint would persist, exposed so a primary can
// ship a catch-up snapshot over the replication stream without touching
// disk.
func (ck *Checkpoint) Encode() []byte { return ck.encode() }

// DecodeCheckpointBytes parses an encoded checkpoint (the replication
// snapshot wire format), verifying the magic and trailing CRC.
func DecodeCheckpointBytes(data []byte) (*Checkpoint, error) {
	return decodeCheckpoint(data)
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: not a checkpoint file")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	b := body[len(ckptMagic):]
	ck := &Checkpoint{}
	var err error
	if ck.Seq, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var v int64
		if v, b, err = readVarint(b); err != nil {
			return nil, err
		}
		var ln uint64
		if ln, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if ln > uint64(len(b)) {
			return nil, fmt.Errorf("wal: checkpoint dict name overruns file")
		}
		ck.Dict = append(ck.Dict, DictEntry{Value: relation.Value(v), Name: string(b[:ln])})
		b = b[ln:]
	}
	var schemes uint64
	if schemes, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if schemes > uint64(len(b)) {
		return nil, fmt.Errorf("wal: checkpoint scheme count overruns file")
	}
	ck.Tuples = make([][]relation.Tuple, schemes)
	for i := range ck.Tuples {
		var cnt uint64
		if cnt, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if cnt > uint64(len(b)) {
			return nil, fmt.Errorf("wal: checkpoint tuple count overruns file")
		}
		ck.Tuples[i] = make([]relation.Tuple, 0, cnt)
		for j := uint64(0); j < cnt; j++ {
			var arity uint64
			if arity, b, err = readUvarint(b); err != nil {
				return nil, err
			}
			if arity > uint64(len(b)) {
				return nil, fmt.Errorf("wal: checkpoint tuple overruns file")
			}
			t := make(relation.Tuple, arity)
			for c := range t {
				var v int64
				if v, b, err = readVarint(b); err != nil {
					return nil, err
				}
				t[c] = relation.Value(v)
			}
			ck.Tuples[i] = append(ck.Tuples[i], t)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes in checkpoint", len(b))
	}
	return ck, nil
}

// WriteCheckpoint durably writes ck to dir (temp file, fsync, atomic
// rename, directory fsync) and garbage-collects older checkpoint files.
// It returns the checkpoint's encoded size in bytes.
func WriteCheckpoint(dir string, ck *Checkpoint) (int64, error) {
	data := ck.encode()
	size := int64(len(data))
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ckptName(ck.Seq))); err != nil {
		return 0, err
	}
	syncDir(dir)
	removeCheckpointsExcept(dir, ck.Seq)
	return size, nil
}

// LatestCheckpoint loads the newest readable checkpoint in dir, or nil if
// none exists. A corrupt newer checkpoint falls back to an older one.
func LatestCheckpoint(dir string) (*Checkpoint, error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := len(cks) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, ckptName(cks[i])))
		if err != nil {
			lastErr = err
			continue
		}
		ck, err := decodeCheckpoint(data)
		if err != nil {
			lastErr = err
			continue
		}
		if ck.Seq != cks[i] {
			lastErr = fmt.Errorf("wal: checkpoint %s declares seq %d", ckptName(cks[i]), ck.Seq)
			continue
		}
		return ck, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("wal: no readable checkpoint: %w", lastErr)
	}
	return nil, nil
}
