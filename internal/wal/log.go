package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"indep/internal/obs"
)

// SyncMode selects the durability level of the log.
type SyncMode int

const (
	// SyncAlways fsyncs once per commit group before acknowledging the
	// group's waiters: an acknowledged commit survives power loss. Group
	// commit amortizes the fsync — all records enqueued while the previous
	// fsync was in flight share the next one.
	SyncAlways SyncMode = iota
	// SyncNever writes without fsync. Acknowledged commits survive a
	// process crash (the OS holds the pages) but not power loss.
	SyncNever
)

// Options configures a Log.
type Options struct {
	// Sync is the durability mode; default SyncAlways.
	Sync SyncMode
	// SegmentBytes rotates to a fresh segment once the active one exceeds
	// this size; default 16 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Segment files are "wal-<seq>.seg" and begin with a 16-byte header: magic
// plus the segment sequence number, so a file renamed across directories is
// caught on recovery.
const (
	segMagic    = "INDEPWAL"
	segHeader   = 16
	segPattern  = "wal-%08d.seg"
	ckptPattern = "ckpt-%08d.ckpt"
)

func segName(seq uint64) string  { return fmt.Sprintf(segPattern, seq) }
func ckptName(seq uint64) string { return fmt.Sprintf(ckptPattern, seq) }

// queued is one unit of writer work: an encoded frame to append, or one of
// the control markers (rotate, truncate, sync).
type queued struct {
	data []byte
	done chan error // nil for fire-and-forget appends

	rotateTo    uint64 // rotate marker when != 0: seal and open segment rotateTo
	truncBefore uint64 // truncate marker when != 0: delete segments < truncBefore
	sync        bool   // sync marker: flush + fsync, then ack done
}

// Ticket is a handle on a pending append; Wait blocks until the record is
// written (and fsynced, under SyncAlways) or the log fails.
type Ticket struct {
	done  chan error
	bytes int
}

// Wait blocks for the append's outcome.
func (t *Ticket) Wait() error { return <-t.done }

// Bytes returns the encoded size of the append's frames — what the commit
// actually cost the log, surfaced as a span attribute on traced writes.
func (t *Ticket) Bytes() int { return t.bytes }

// LogStats is a point-in-time view of the log's activity.
type LogStats struct {
	ActiveSeq    uint64 // sequence number of the segment being appended to
	OldestSeq    uint64 // oldest segment still on disk
	Segments     int    // segments on disk (including active)
	ActiveBytes  int64  // bytes in the active segment
	TotalBytes   int64  // bytes across all live segments: the replay debt
	Records      uint64 // records appended to the log
	Syncs        uint64 // fsync calls issued
	CommitGroups uint64 // write groups (Records/CommitGroups = batching win)
}

// Log is an append-only write-ahead log with group commit. Any number of
// goroutines may Append concurrently; a single writer goroutine drains the
// queue, writes each batch with one write call, fsyncs once per batch
// (SyncAlways), and acknowledges every waiter in the batch. All methods are
// safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu            sync.Mutex
	queue         []queued
	kick          chan struct{} // wakes the writer; buffered(1)
	nextSeq       uint64        // seq the next rotation will open
	rotatePending bool          // a size-based rotate marker is already queued
	failed        error         // sticky: set on I/O failure, fails all later ops
	closed        bool
	wg            sync.WaitGroup

	// Writer-goroutine state (no lock needed) …
	f         *os.File
	activeSeq uint64
	offset    int64

	// … except the stats snapshot, which readers take under mu.
	stats LogStats

	// Latency and batching histograms, lock-free: the writer goroutine
	// observes, scrapers snapshot concurrently.
	writeLat  obs.Histogram // write(2) duration per flushed group, ns
	fsyncLat  obs.Histogram // fsync duration, ns
	groupRecs obs.Histogram // records coalesced per commit group
}

// LatencyStats returns snapshots of the log's write-latency, fsync-latency,
// and records-per-commit-group histograms — the same histograms /metrics
// exposes, so /stats and a scrape always agree.
func (l *Log) LatencyStats() (write, fsync, groupRecords obs.HistSnapshot) {
	return l.writeLat.Snapshot(), l.fsyncLat.Snapshot(), l.groupRecs.Snapshot()
}

// RegisterMetrics files the log's metric families with the registry.
func (l *Log) RegisterMetrics(r *obs.Registry) {
	r.RegisterHistogram("indep_wal_write_duration_seconds",
		"write(2) latency per flushed commit group", 1e-9, &l.writeLat)
	r.RegisterHistogram("indep_wal_fsync_duration_seconds",
		"fsync latency per commit group", 1e-9, &l.fsyncLat)
	r.RegisterHistogram("indep_wal_commit_group_records",
		"records coalesced into one commit group", 1, &l.groupRecs)
	r.CounterFunc("indep_wal_records_total",
		"records appended to the log", func() uint64 { return l.Stats().Records })
	r.CounterFunc("indep_wal_syncs_total",
		"fsync calls issued", func() uint64 { return l.Stats().Syncs })
	r.CounterFunc("indep_wal_commit_groups_total",
		"write groups drained by the writer", func() uint64 { return l.Stats().CommitGroups })
	r.GaugeFunc("indep_wal_segments",
		"segments on disk, including active", func() float64 { return float64(l.Stats().Segments) })
	r.GaugeFunc("indep_wal_live_bytes",
		"bytes across all live segments: the replay debt", func() float64 { return float64(l.Stats().TotalBytes) })
}

// OpenLog opens the log for appending, starting a fresh segment after the
// existing ones. Run recovery (LatestCheckpoint + Replay) before OpenLog;
// sealed segments are never appended to, so a torn tail truncated by Replay
// stays truncated.
func OpenLog(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	l := &Log{
		dir:  dir,
		opts: opts.withDefaults(),
		kick: make(chan struct{}, 1),
	}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	l.nextSeq = next + 1
	l.stats.ActiveSeq = next
	l.stats.ActiveBytes = segHeader
	l.stats.Segments = len(segs) + 1
	l.stats.OldestSeq = next
	l.stats.TotalBytes = segHeader
	if len(segs) > 0 {
		l.stats.OldestSeq = segs[0]
		for _, s := range segs {
			if fi, err := os.Stat(filepath.Join(dir, segName(s))); err == nil {
				l.stats.TotalBytes += fi.Size()
			}
		}
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// listSegments returns the sequence numbers of the segment files in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), segPattern, &seq); err == nil && e.Name() == segName(seq) {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// listCheckpoints returns the sequence numbers of checkpoint files in dir,
// ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), ckptPattern, &seq); err == nil && e.Name() == ckptName(seq) {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// openSegment creates segment seq and makes it the active file. Writer
// goroutine (or pre-start) only.
func (l *Log) openSegment(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, segHeader)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	// The header and the file's directory entry must be durable before any
	// commit in this segment is acknowledged; syncing now keeps the
	// invariant that every acknowledged record lives in a fully linked,
	// well-formed segment.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	syncDir(l.dir)
	l.f = f
	l.activeSeq = seq
	l.offset = segHeader
	return nil
}

// syncDir best-effort fsyncs a directory so renames and creates are
// durable. Errors are ignored: some filesystems reject directory fsync, and
// the data files themselves are already synced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// enqueue adds an item to the writer queue and wakes the writer. It
// reports the sticky failure, if any, without enqueueing.
func (l *Log) enqueue(q queued) error {
	l.mu.Lock()
	if l.failed != nil || l.closed {
		err := l.failed
		l.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("wal: log is closed")
		}
		return err
	}
	l.queue = append(l.queue, q)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return nil
}

// Append queues records as one contiguous run of frames and returns a
// Ticket whose Wait reports when they are durable (per the sync mode). The
// records of one Append land in the log in order, with no interleaving.
func (l *Log) Append(recs ...Record) *Ticket {
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	t := &Ticket{done: make(chan error, 1), bytes: len(buf)}
	if err := l.enqueue(queued{data: buf, done: t.done}); err != nil {
		t.done <- err
	}
	return t
}

// Enqueue appends records without waiting for durability. Queue order is
// still FIFO, so an Enqueue followed (happens-after) by an Append is
// written — and made durable — no later than that Append. Used for
// dictionary intern records, which must precede the commits that use them
// but need no acknowledgement of their own.
func (l *Log) Enqueue(recs ...Record) {
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	l.enqueue(queued{data: buf})
}

// Rotate seals the active segment (flushing and fsyncing everything queued
// before the call) and opens a fresh one, returning the new segment's
// sequence number. Every record enqueued before Rotate lands in a segment
// numbered below the returned value — the cut checkpoints are built on.
// The seal happens asynchronously on the writer goroutine.
func (l *Log) Rotate() uint64 {
	l.mu.Lock()
	if l.failed != nil || l.closed {
		seq := l.nextSeq
		l.mu.Unlock()
		return seq
	}
	seq := l.nextSeq
	l.nextSeq++
	l.queue = append(l.queue, queued{rotateTo: seq})
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return seq
}

// RemoveBefore deletes sealed segments with sequence numbers below seq,
// once the writer has drained everything queued ahead of the call. Call
// only after a checkpoint covering those segments is durable.
func (l *Log) RemoveBefore(seq uint64) error {
	t := &Ticket{done: make(chan error, 1)}
	if err := l.enqueue(queued{truncBefore: seq, done: t.done}); err != nil {
		return err
	}
	return t.Wait()
}

// Sync flushes and fsyncs everything enqueued so far.
func (l *Log) Sync() error {
	t := &Ticket{done: make(chan error, 1)}
	if err := l.enqueue(queued{sync: true, done: t.done}); err != nil {
		return err
	}
	return t.Wait()
}

// Close flushes, fsyncs, and closes the log. Later appends fail.
func (l *Log) Close() error {
	err := l.Sync()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	l.wg.Wait()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns a point-in-time view of the log. All counters are
// maintained in memory by the writer goroutine — no filesystem I/O — so
// the stats endpoint can poll freely.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// run is the writer goroutine: it drains the queue in batches, each batch
// becoming one write (and one fsync under SyncAlways) shared by every
// commit in it.
func (l *Log) run() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		batch := l.queue
		l.queue = nil
		closed := l.closed
		l.mu.Unlock()
		if len(batch) == 0 {
			if closed {
				return
			}
			<-l.kick
			continue
		}
		l.process(batch)
	}
}

// process writes one batch. Contiguous data items become a single write;
// markers force the pending data out first, then act.
func (l *Log) process(batch []queued) {
	// A failed log never writes again: items that raced into the queue
	// while the failure was being recorded must be refused, not appended
	// after a torn frame and falsely acknowledged as durable.
	l.mu.Lock()
	failed := l.failed
	l.mu.Unlock()
	if failed != nil {
		for _, q := range batch {
			if q.done != nil {
				q.done <- failed
			}
		}
		return
	}

	var pend []byte          // coalesced frames not yet written
	var waiters []chan error // commit waiters not yet acknowledged
	var appends uint64
	var wrote int64

	fail := func(err error) {
		l.mu.Lock()
		if l.failed == nil {
			l.failed = err
		}
		l.mu.Unlock()
		for _, w := range waiters {
			w <- err
		}
		for _, q := range batch {
			if q.done != nil {
				q.done <- err
			}
		}
	}

	// flush writes the coalesced frames; commit additionally fsyncs (per
	// the sync mode) and acknowledges the waiters gathered so far.
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		start := time.Now()
		n, err := l.f.Write(pend)
		l.writeLat.ObserveSince(start)
		l.offset += int64(n)
		wrote += int64(n)
		pend = pend[:0]
		return err
	}
	commit := func(forceSync bool) error {
		if err := flush(); err != nil {
			return err
		}
		if l.opts.Sync == SyncAlways || forceSync {
			start := time.Now()
			if err := l.f.Sync(); err != nil {
				return err
			}
			l.fsyncLat.ObserveSince(start)
			l.mu.Lock()
			l.stats.Syncs++
			l.mu.Unlock()
		}
		// The flushed position must cover the group's bytes before any of
		// its waiters is acknowledged: Flushed() is the read-your-writes
		// token, so a caller whose Wait returned must find its record at or
		// below it. Updating only at the end of the batch would leave a
		// window — wide when a rotation's file work follows — where an acked
		// commit sits above the reported flushed end and a replica
		// synchronizing against it stops one record short.
		l.mu.Lock()
		l.stats.ActiveSeq = l.activeSeq
		l.stats.ActiveBytes = l.offset
		l.mu.Unlock()
		for _, w := range waiters {
			w <- nil
		}
		waiters = waiters[:0]
		return nil
	}

	for i := 0; i < len(batch); i++ {
		q := batch[i]
		switch {
		case q.rotateTo != 0:
			if err := commit(true); err != nil {
				fail(err)
				return
			}
			if err := l.rotateTo(q.rotateTo); err != nil {
				fail(err)
				return
			}
			l.mu.Lock()
			l.rotatePending = false
			l.mu.Unlock()
		case q.truncBefore != 0:
			if err := commit(true); err != nil {
				fail(err)
				return
			}
			q.done <- l.removeBefore(q.truncBefore)
			batch[i].done = nil
		case q.sync:
			if err := commit(true); err != nil {
				fail(err)
				return
			}
			q.done <- nil
			batch[i].done = nil
		default:
			pend = append(pend, q.data...)
			appends++
			if q.done != nil {
				waiters = append(waiters, q.done)
				batch[i].done = nil // owned by waiters from here on
			}
		}
	}
	if err := commit(false); err != nil {
		fail(err)
		return
	}

	if appends > 0 {
		l.groupRecs.Observe(int64(appends))
	}
	l.mu.Lock()
	l.stats.Records += appends
	l.stats.CommitGroups++
	l.stats.ActiveSeq = l.activeSeq
	l.stats.ActiveBytes = l.offset
	l.stats.TotalBytes += wrote
	l.mu.Unlock()

	// Size-based rotation goes through the queue like Rotate() does —
	// every rotation allocates its sequence number at enqueue time under
	// mu, so queue order always equals segment-number order and a
	// checkpoint's cut can never be leapfrogged by a lower-numbered seal.
	if l.offset >= l.opts.SegmentBytes {
		l.mu.Lock()
		if !l.rotatePending && l.failed == nil && !l.closed {
			l.rotatePending = true
			seq := l.nextSeq
			l.nextSeq++
			l.queue = append(l.queue, queued{rotateTo: seq})
		}
		l.mu.Unlock()
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

// rotateTo seals the active segment and opens seq. Writer goroutine only;
// pending data must be flushed and synced first.
func (l *Log) rotateTo(seq uint64) error {
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := l.openSegment(seq); err != nil {
		return err
	}
	l.mu.Lock()
	l.stats.ActiveSeq = seq
	l.stats.ActiveBytes = segHeader
	l.stats.Segments++
	l.stats.TotalBytes += segHeader
	l.mu.Unlock()
	return nil
}

// removeBefore deletes sealed segments below seq. Writer goroutine only.
func (l *Log) removeBefore(seq uint64) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	removed := 0
	var freed int64
	oldest := l.activeSeq
	for _, s := range segs {
		if s >= seq || s == l.activeSeq {
			if s < oldest {
				oldest = s
			}
			continue
		}
		path := filepath.Join(l.dir, segName(s))
		var size int64
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
		if err := os.Remove(path); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if s < oldest {
				oldest = s
			}
			continue
		}
		removed++
		freed += size
	}
	syncDir(l.dir)
	l.mu.Lock()
	l.stats.Segments -= removed
	l.stats.TotalBytes -= freed
	l.stats.OldestSeq = oldest
	l.mu.Unlock()
	return firstErr
}

// removeCheckpointsExcept deletes checkpoint files other than keep.
func removeCheckpointsExcept(dir string, keep uint64) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return
	}
	for _, s := range cks {
		if s != keep {
			os.Remove(filepath.Join(dir, ckptName(s)))
		}
	}
	syncDir(dir)
}
