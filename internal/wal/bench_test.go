package wal

import (
	"testing"

	"indep/internal/attrset"
	"indep/internal/relation"
)

// BenchmarkCheckpointEncode measures snapshot serialization over a loaded
// instance (8 columns, 20k rows). The columnar encoder streams each
// instance's column arenas contiguously (near zero-copy via SnapshotCols),
// so this is the number a checkpoint or replication snapshot pays per call.
func BenchmarkCheckpointEncode(b *testing.B) {
	const width, rows = 8, 20000
	var attrs attrset.Set
	for a := 0; a < width; a++ {
		attrs.Add(a)
	}
	in := relation.NewInstance(attrs)
	t := make(relation.Tuple, width)
	for r := 0; r < rows; r++ {
		for c := range t {
			t[c] = relation.Value(r*width + c)
		}
		if !in.Add(t) {
			b.Fatal("duplicate row in setup")
		}
	}
	st := &relation.State{Insts: []*relation.Instance{in}}
	size := len(NewCheckpoint(7, st).Encode())
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := NewCheckpoint(7, st).Encode(); len(buf) != size {
			b.Fatalf("encoded %d bytes, want %d", len(buf), size)
		}
	}
}
