// Package wal is the durable storage layer under the concurrent engine: a
// write-ahead log of admitted operations plus snapshot checkpoints.
//
// Independence is what makes this log cheap. For an independent schema the
// engine admits each insert after an O(|F_i|) check local to one relation,
// so the admission decision itself — relation index plus interned values —
// is a complete redo record: replaying the per-relation record stream
// through the same guards reconstructs the state without ever re-running a
// global chase. The log therefore stores exactly that: CRC32-framed
// intern/insert/delete/batch records, appended by a single group-commit
// writer that coalesces concurrent commits into one fsync, rotated across
// numbered segments, and truncated by checkpoints that serialize a full
// snapshot of the state and dictionary.
//
// Durability contract: a record whose commit wait returned nil survives any
// crash (under SyncAlways). A torn tail — a partially written final frame —
// is detected by length/CRC checks and truncated on recovery; every frame
// before it is replayed. Replay is idempotent, so recovering twice, or
// recovering a state that already contains a checkpointed prefix, converges
// to the same state.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"indep/internal/relation"
)

// Kind discriminates the record types of the log.
type Kind byte

const (
	// KindIntern binds a dictionary value to its display name. Intern
	// records are enqueued under the dictionary shard lock at allocation
	// time, so within a shard they appear in the log in allocation order
	// and always precede any committed operation that uses the value.
	KindIntern Kind = 1
	// KindInsert is one admitted tuple insert.
	KindInsert Kind = 2
	// KindDelete is one applied tuple delete.
	KindDelete Kind = 3
	// KindBatch is an atomically admitted multi-tuple insert.
	KindBatch Kind = 4
)

// TupleOp addresses one tuple of a record to its relation scheme.
type TupleOp struct {
	Rel   int
	Tuple relation.Tuple
}

// Record is one logical log entry. Exactly one of the payload shapes is
// meaningful, selected by Kind: (Value, Name) for interns, Ops for the rest
// (length 1 for insert/delete).
type Record struct {
	Kind  Kind
	Value relation.Value // KindIntern
	Name  string         // KindIntern
	Ops   []TupleOp      // KindInsert, KindDelete, KindBatch
}

// Intern builds a dictionary-binding record.
func Intern(v relation.Value, name string) Record {
	return Record{Kind: KindIntern, Value: v, Name: name}
}

// Insert builds a single-insert record.
func Insert(rel int, t relation.Tuple) Record {
	return Record{Kind: KindInsert, Ops: []TupleOp{{Rel: rel, Tuple: t}}}
}

// Delete builds a single-delete record.
func Delete(rel int, t relation.Tuple) Record {
	return Record{Kind: KindDelete, Ops: []TupleOp{{Rel: rel, Tuple: t}}}
}

// Batch builds an atomic multi-insert record.
func Batch(ops []TupleOp) Record {
	return Record{Kind: KindBatch, Ops: ops}
}

// appendPayload encodes the record body (everything inside a frame).
func (r Record) appendPayload(buf []byte) []byte {
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindIntern:
		buf = binary.AppendVarint(buf, int64(r.Value))
		buf = binary.AppendUvarint(buf, uint64(len(r.Name)))
		buf = append(buf, r.Name...)
	case KindInsert, KindDelete:
		buf = appendTupleOp(buf, r.Ops[0])
	case KindBatch:
		buf = binary.AppendUvarint(buf, uint64(len(r.Ops)))
		for _, op := range r.Ops {
			buf = appendTupleOp(buf, op)
		}
	}
	return buf
}

func appendTupleOp(buf []byte, op TupleOp) []byte {
	buf = binary.AppendUvarint(buf, uint64(op.Rel))
	buf = binary.AppendUvarint(buf, uint64(len(op.Tuple)))
	for _, v := range op.Tuple {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

// maxPayload bounds a frame payload; anything larger is treated as
// corruption rather than an allocation request.
const maxPayload = 1 << 28

// maxBatchOps bounds the declared op count of a batch record so a corrupt
// length prefix cannot drive a huge allocation.
const maxBatchOps = 1 << 22

// DecodeRecord parses one record payload. Trailing bytes are an error: a
// frame holds exactly one record.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload")
	}
	r := Record{Kind: Kind(payload[0])}
	b := payload[1:]
	var err error
	switch r.Kind {
	case KindIntern:
		var v int64
		v, b, err = readVarint(b)
		if err != nil {
			return Record{}, err
		}
		var n uint64
		n, b, err = readUvarint(b)
		if err != nil {
			return Record{}, err
		}
		if n > uint64(len(b)) {
			return Record{}, fmt.Errorf("wal: intern name length %d exceeds payload", n)
		}
		r.Value = relation.Value(v)
		r.Name = string(b[:n])
		b = b[n:]
	case KindInsert, KindDelete:
		var op TupleOp
		op, b, err = readTupleOp(b)
		if err != nil {
			return Record{}, err
		}
		r.Ops = []TupleOp{op}
	case KindBatch:
		var n uint64
		n, b, err = readUvarint(b)
		if err != nil {
			return Record{}, err
		}
		// Each op takes at least 2 payload bytes (rel + arity), so a count
		// beyond len(b)/2 is corruption — checked BEFORE allocating, so a
		// tiny corrupt frame cannot demand a huge slice.
		if n > maxBatchOps || n > uint64(len(b))/2 {
			return Record{}, fmt.Errorf("wal: batch of %d ops exceeds payload", n)
		}
		r.Ops = make([]TupleOp, 0, n)
		for i := uint64(0); i < n; i++ {
			var op TupleOp
			op, b, err = readTupleOp(b)
			if err != nil {
				return Record{}, err
			}
			r.Ops = append(r.Ops, op)
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", payload[0])
	}
	if len(b) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", len(b))
	}
	return r, nil
}

func readTupleOp(b []byte) (TupleOp, []byte, error) {
	rel, b, err := readUvarint(b)
	if err != nil {
		return TupleOp{}, nil, err
	}
	arity, b, err := readUvarint(b)
	if err != nil {
		return TupleOp{}, nil, err
	}
	if arity > uint64(len(b)) { // each value takes ≥ 1 byte
		return TupleOp{}, nil, fmt.Errorf("wal: tuple arity %d exceeds payload", arity)
	}
	t := make(relation.Tuple, arity)
	for i := range t {
		var v int64
		v, b, err = readVarint(b)
		if err != nil {
			return TupleOp{}, nil, err
		}
		t[i] = relation.Value(v)
	}
	return TupleOp{Rel: int(rel), Tuple: t}, b, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: truncated uvarint")
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: truncated varint")
	}
	return v, b[n:], nil
}

// Frame layout: [payloadLen uint32 LE][crc32(payload) uint32 LE][payload].
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendRecordFrame encodes rec as a CRC-framed payload appended to buf —
// the exact bytes the log writes for the record. The binary batch wire
// protocol reuses it so a client-encoded batch and a journaled batch share
// one encoder, one decoder, and one corruption check (NextStreamFrame +
// DecodeRecord parse both).
func AppendRecordFrame(buf []byte, rec Record) []byte {
	return appendFrame(buf, rec)
}

// appendFrame encodes rec as a CRC-framed payload appended to buf.
func appendFrame(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = rec.appendPayload(buf)
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// nextFrame reads the frame at the start of b, returning the payload and
// the remaining bytes. ok is false when b does not start with a complete,
// checksum-valid frame — the torn-tail condition recovery truncates at. An
// absurd length prefix is treated the same way: it is indistinguishable
// from a partially written header.
func nextFrame(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < frameHeader {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxPayload {
		return nil, nil, false
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	if uint64(frameHeader)+uint64(n) > uint64(len(b)) {
		return nil, nil, false
	}
	payload = b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, nil, false
	}
	return payload, b[frameHeader+n:], true
}
