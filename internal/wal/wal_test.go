package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"indep/internal/relation"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		Intern(0, ""),
		Intern(12345, "CS402"),
		Intern(63, "name with spaces\x00and bytes\xff"),
		Insert(0, relation.Tuple{}),
		Insert(3, relation.Tuple{1, -2, 3000000000}),
		Delete(7, relation.Tuple{0}),
		Batch(nil),
		Batch([]TupleOp{{Rel: 1, Tuple: relation.Tuple{5, 6}}, {Rel: 2, Tuple: relation.Tuple{7}}}),
	}
	for i, r := range recs {
		payload := r.appendPayload(nil)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		// Normalize nil-vs-empty for comparison.
		if len(got.Ops) == 0 {
			got.Ops = nil
		}
		want := r
		if len(want.Ops) == 0 {
			want.Ops = nil
		}
		if want.Kind == KindBatch && want.Ops == nil && got.Kind == KindBatch {
			got.Ops = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: roundtrip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestDecodeRecordRejectsTrailing(t *testing.T) {
	payload := Insert(1, relation.Tuple{9}).appendPayload(nil)
	if _, err := DecodeRecord(append(payload, 0)); err == nil {
		t.Fatal("trailing byte not rejected")
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Fatal("empty payload not rejected")
	}
	if _, err := DecodeRecord([]byte{99}); err == nil {
		t.Fatal("unknown kind not rejected")
	}
}

func TestFrameTornTail(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, Insert(1, relation.Tuple{1, 2}))
	whole := len(buf)
	buf = appendFrame(buf, Insert(2, relation.Tuple{3}))

	// Complete buffer: two frames.
	p1, rest, ok := nextFrame(buf)
	if !ok || len(p1) == 0 {
		t.Fatal("first frame should parse")
	}
	if _, rest2, ok := nextFrame(rest); !ok || len(rest2) != 0 {
		t.Fatal("second frame should parse to empty rest")
	}

	// Every proper prefix that cuts into the second frame: first frame
	// parses, second is torn.
	for cut := whole; cut < len(buf); cut++ {
		_, rest, ok := nextFrame(buf[:cut])
		if !ok {
			t.Fatalf("cut %d: first frame should still parse", cut)
		}
		if _, _, ok := nextFrame(rest); ok {
			t.Fatalf("cut %d: torn second frame parsed", cut)
		}
	}

	// Corrupting any byte of the second frame tears it.
	for off := whole; off < len(buf); off++ {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 0xff
		_, rest, ok := nextFrame(mut)
		if !ok {
			t.Fatalf("offset %d: first frame affected", off)
		}
		if _, _, ok := nextFrame(rest); ok {
			t.Fatalf("offset %d: corrupt second frame parsed", off)
		}
	}
}

// replayAll replays dir from seq 0 and returns the records.
func replayAll(t *testing.T, dir string, fromSeq uint64) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := Replay(dir, fromSeq, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, stats
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		Intern(1, "a"),
		Insert(0, relation.Tuple{1, 2}),
		Delete(0, relation.Tuple{1, 2}),
		Batch([]TupleOp{{Rel: 1, Tuple: relation.Tuple{3}}, {Rel: 0, Tuple: relation.Tuple{4, 5}}}),
	}
	l.Enqueue(want[0])
	for _, r := range want[1:] {
		if err := l.Append(r).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, dir, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if stats.TruncatedBytes != 0 || stats.Skipped != 0 {
		t.Fatalf("unexpected stats %+v", stats)
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(Insert(w, relation.Tuple{relation.Value(i)})).Wait(); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != workers*each {
		t.Fatalf("records = %d, want %d", st.Records, workers*each)
	}
	if st.CommitGroups == 0 || st.CommitGroups > st.Records {
		t.Fatalf("implausible commit groups %d for %d records", st.CommitGroups, st.Records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, dir, 0)
	if len(recs) != workers*each {
		t.Fatalf("replayed %d, want %d", len(recs), workers*each)
	}
	// Per-relation order must match append order.
	next := make([]int, workers)
	for _, r := range recs {
		w := r.Ops[0].Rel
		if got := int(r.Ops[0].Tuple[0]); got != next[w] {
			t.Fatalf("relation %d: replayed %d out of order (want %d)", w, got, next[w])
		}
		next[w]++
	}
}

func TestLogRotationAndRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{SegmentBytes: 256, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Append(Insert(0, relation.Tuple{relation.Value(i), relation.Value(i)})).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected multiple segments after rotation, got %d", st.Segments)
	}
	cut := l.Rotate()
	if err := l.RemoveBefore(cut); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.OldestSeq < cut {
		t.Fatalf("oldest segment %d survived RemoveBefore(%d)", st.OldestSeq, cut)
	}
	// Everything before the cut is gone; replay from the cut is empty.
	recs, _ := replayAll(t, dir, cut)
	if len(recs) != 0 {
		t.Fatalf("replayed %d records after full truncation", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRotateCutSeparatesRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	before := Insert(0, relation.Tuple{1})
	after := Insert(0, relation.Tuple{2})
	l.Enqueue(before)
	cut := l.Rotate()
	if err := l.Append(after).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	pre, _ := replayAll(t, dir, 0)
	post, _ := replayAll(t, dir, cut)
	if len(pre) != 2 {
		t.Fatalf("full replay saw %d records, want 2", len(pre))
	}
	if len(post) != 1 || !reflect.DeepEqual(post[0], after) {
		t.Fatalf("replay from cut %d saw %+v, want just the after-record", cut, post)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Insert(0, relation.Tuple{1}), Insert(0, relation.Tuple{2})).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop 3 bytes off the final frame.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, stats := replayAll(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1 (tail truncated)", len(recs))
	}
	if stats.TruncatedBytes == 0 {
		t.Fatal("truncation not reported")
	}
	// The file was repaired: a second replay sees a clean log.
	recs, stats = replayAll(t, dir, 0)
	if len(recs) != 1 || stats.TruncatedBytes != 0 {
		t.Fatalf("second replay: %d records, stats %+v", len(recs), stats)
	}
}

// TestReplayTornHeaderSegment simulates a crash inside openSegment: the
// newest segment has a partial header. Recovery must drop the file — and a
// SECOND recovery pass over the same directory must still succeed (a
// zero-truncated remnant would read as a corrupt sealed segment).
func TestReplayTornHeaderSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Insert(0, relation.Tuple{1})).Wait(); err != nil {
		t.Fatal(err)
	}
	seq := l.Stats().ActiveSeq
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, segName(seq+1))
	if err := os.WriteFile(torn, []byte(segMagic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, stats := replayAll(t, dir, 0)
	if len(recs) != 1 || stats.TruncatedBytes == 0 {
		t.Fatalf("first recovery: %d records, stats %+v", len(recs), stats)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment still present: %v", err)
	}
	// The crucial part: recovering AGAIN does not brick.
	recs, _ = replayAll(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("second recovery: %d records, want 1", len(recs))
	}
	// And the log still opens for appending.
	l2, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(Insert(0, relation.Tuple{2})).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if recs, _ := replayAll(t, dir, 0); len(recs) != 2 {
		t.Fatalf("after reopen: %d records, want 2", len(recs))
	}
}

func TestReplayRejectsSegmentGap(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Insert(0, relation.Tuple{1})).Wait()
	seq := l.Rotate()
	l.Append(Insert(0, relation.Tuple{2})).Wait()
	l.Rotate()
	l.Append(Insert(0, relation.Tuple{3})).Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segName(seq))); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("gap in segment sequence not detected")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := &Checkpoint{
		Seq: 7,
		Dict: []DictEntry{
			{Value: 0, Name: "x"},
			{Value: 64, Name: "y"},
		},
		// Rows (1,2),(3,4) in scheme 0 and (5) in scheme 2, column-major.
		Cols: [][][]relation.Value{
			{{1, 3}, {2, 4}},
			{},
			{{5}},
		},
		Counts: []int{2, 0, 1},
	}
	if _, err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != ck.Seq || !reflect.DeepEqual(got.Dict, ck.Dict) {
		t.Fatalf("checkpoint mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Counts, ck.Counts) {
		t.Fatalf("counts %v, want %v", got.Counts, ck.Counts)
	}
	for i := range ck.Cols {
		if !reflect.DeepEqual(got.TuplesOf(i), ck.TuplesOf(i)) {
			t.Fatalf("scheme %d: %v, want %v", i, got.TuplesOf(i), ck.TuplesOf(i))
		}
	}

	// A newer but corrupt checkpoint falls back to the older good one.
	bad := &Checkpoint{Seq: 9}
	if _, err := WriteCheckpoint(dir, bad); err != nil {
		t.Fatal(err)
	}
	// Re-write the good one (WriteCheckpoint GCs others, so put both back).
	if _, err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	data := bad.encode()
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, ckptName(9)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 {
		t.Fatalf("fallback picked seq %d, want 7", got.Seq)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	ck := &Checkpoint{Seq: 3, Dict: []DictEntry{{Value: 1, Name: "v"}},
		Cols: [][][]relation.Value{{{1}, {2}, {3}}}, Counts: []int{1}}
	data := ck.encode()
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x55
		if bytes.Equal(mut, data) {
			continue
		}
		if _, err := decodeCheckpoint(mut); err == nil {
			t.Fatalf("corruption at offset %d undetected", off)
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := decodeCheckpoint(data[:cut]); err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestOpenLogStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	first := l.Stats().ActiveSeq
	l.Append(Insert(0, relation.Tuple{1})).Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Stats().ActiveSeq; got <= first {
		t.Fatalf("reopen reused segment %d (first was %d)", got, first)
	}
	recs, _ := replayAll(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("replay after reopen: %d records", len(recs))
	}
}

func TestLogStatsDepth(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append(Insert(0, relation.Tuple{relation.Value(i)})).Wait()
	}
	l.Sync()
	st := l.Stats()
	if st.TotalBytes <= segHeader {
		t.Fatalf("TotalBytes %d does not reflect appended data", st.TotalBytes)
	}
	if st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1", st.Segments)
	}
}
