//go:build !unix

package wal

// LockDir is a no-op on platforms without flock; the caller gets no
// double-open protection there.
func LockDir(dir string) (release func(), err error) {
	return func() {}, nil
}
