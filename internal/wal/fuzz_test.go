package wal

import (
	"reflect"
	"testing"

	"indep/internal/relation"
)

// FuzzDecodeRecord asserts the record decoder is total — arbitrary bytes
// either decode or error, never panic or over-allocate — and that decoding
// is stable: re-encoding an accepted record and decoding again yields the
// same record.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(Intern(5, "CS402").appendPayload(nil))
	f.Add(Insert(1, relation.Tuple{1, 2, 3}).appendPayload(nil))
	f.Add(Delete(0, relation.Tuple{-7}).appendPayload(nil))
	f.Add(Batch([]TupleOp{{Rel: 2, Tuple: relation.Tuple{9}}}).appendPayload(nil))
	f.Add([]byte{})
	f.Add([]byte{4, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1}) // absurd batch count
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		again, err := DecodeRecord(rec.appendPayload(nil))
		if err != nil {
			t.Fatalf("re-encoding accepted payload %x failed to decode: %v", payload, err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("decode not stable for %x:\n first %+v\nsecond %+v", payload, rec, again)
		}
	})
}

// FuzzDecodeCheckpoint asserts the checkpoint decoder is total over
// arbitrary bytes.
func FuzzDecodeCheckpoint(f *testing.F) {
	good := (&Checkpoint{Seq: 3, Dict: []DictEntry{{Value: 1, Name: "v"}},
		Tuples: [][]relation.Tuple{{{1, 2}}, {}}}).encode()
	f.Add(good)
	f.Add(good[:len(good)-5])
	f.Add([]byte("INDEPCK1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		again, err := decodeCheckpoint(ck.encode())
		if err != nil {
			t.Fatalf("re-encoding accepted checkpoint failed: %v", err)
		}
		if again.Seq != ck.Seq || len(again.Dict) != len(ck.Dict) || len(again.Tuples) != len(ck.Tuples) {
			t.Fatalf("checkpoint decode not stable")
		}
	})
}
