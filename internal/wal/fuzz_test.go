package wal

import (
	"reflect"
	"testing"

	"indep/internal/relation"
)

// FuzzDecodeRecord asserts the record decoder is total — arbitrary bytes
// either decode or error, never panic or over-allocate — and that decoding
// is stable: re-encoding an accepted record and decoding again yields the
// same record.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(Intern(5, "CS402").appendPayload(nil))
	f.Add(Insert(1, relation.Tuple{1, 2, 3}).appendPayload(nil))
	f.Add(Delete(0, relation.Tuple{-7}).appendPayload(nil))
	f.Add(Batch([]TupleOp{{Rel: 2, Tuple: relation.Tuple{9}}}).appendPayload(nil))
	f.Add([]byte{})
	f.Add([]byte{4, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1}) // absurd batch count
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		again, err := DecodeRecord(rec.appendPayload(nil))
		if err != nil {
			t.Fatalf("re-encoding accepted payload %x failed to decode: %v", payload, err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("decode not stable for %x:\n first %+v\nsecond %+v", payload, rec, again)
		}
	})
}

// FuzzReplRecordStream asserts the streaming frame parser is total and
// chunking-invariant: feeding arbitrary bytes in arbitrary chunk sizes
// (buffering on ErrShortFrame, exactly as a replication follower does)
// yields the same frame sequence as parsing the whole buffer at once, and
// never panics. This is the property that lets the follower accept segment
// bytes split at any boundary the transport or a fault injector picks.
func FuzzReplRecordStream(f *testing.F) {
	var good []byte
	good = appendFrame(good, Intern(1, "s"))
	good = appendFrame(good, Insert(0, relation.Tuple{1, 2}))
	good = appendFrame(good, Delete(0, relation.Tuple{1, 2}))
	f.Add(good, uint8(3))
	f.Add(good[:len(good)-3], uint8(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, uint8(5))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		// Whole-buffer parse.
		var whole [][]byte
		wholeCorrupt := false
		rest := data
		for {
			payload, n, err := NextStreamFrame(rest)
			if err == ErrShortFrame {
				break
			}
			if err != nil {
				wholeCorrupt = true
				break
			}
			whole = append(whole, append([]byte(nil), payload...))
			rest = rest[n:]
		}

		// Chunked parse: deliver data in chunk-sized pieces, buffering
		// short frames across chunk boundaries.
		size := int(chunk)%64 + 1
		var chunked [][]byte
		chunkedCorrupt := false
		var buf []byte
		src := data
		for len(src) > 0 && !chunkedCorrupt {
			n := size
			if n > len(src) {
				n = len(src)
			}
			buf = append(buf, src[:n]...)
			src = src[n:]
			for {
				payload, fn, err := NextStreamFrame(buf)
				if err == ErrShortFrame {
					break
				}
				if err != nil {
					chunkedCorrupt = true
					break
				}
				chunked = append(chunked, append([]byte(nil), payload...))
				buf = buf[fn:]
			}
		}

		if wholeCorrupt != chunkedCorrupt {
			t.Fatalf("corruption verdict differs: whole %v chunked %v", wholeCorrupt, chunkedCorrupt)
		}
		if !reflect.DeepEqual(whole, chunked) {
			t.Fatalf("chunked parse diverges: whole %d frames, chunked %d", len(whole), len(chunked))
		}
	})
}

// FuzzDecodeCheckpoint asserts the checkpoint decoder is total over
// arbitrary bytes.
func FuzzDecodeCheckpoint(f *testing.F) {
	good := (&Checkpoint{Seq: 3, Dict: []DictEntry{{Value: 1, Name: "v"}},
		Cols: [][][]relation.Value{{{1}, {2}}, {}}, Counts: []int{1, 0}}).encode()
	f.Add(good)
	f.Add(good[:len(good)-5])
	f.Add([]byte("INDEPCK1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		again, err := decodeCheckpoint(ck.encode())
		if err != nil {
			t.Fatalf("re-encoding accepted checkpoint failed: %v", err)
		}
		if again.Seq != ck.Seq || len(again.Dict) != len(ck.Dict) || len(again.Cols) != len(ck.Cols) {
			t.Fatalf("checkpoint decode not stable")
		}
	})
}

// FuzzDecodeColumnCheckpoint targets the columnar ('2') checkpoint body
// specifically: arbitrary bytes after a valid v2 prefix must decode or
// error, never panic, and accepted inputs must re-encode stably — including
// legacy v1 inputs, whose re-encoding is the v2 transposition.
func FuzzDecodeColumnCheckpoint(f *testing.F) {
	v2 := (&Checkpoint{Seq: 11,
		Cols: [][][]relation.Value{{{1, 3}, {2, 4}}, {{-5}}}, Counts: []int{2, 1}}).encode()
	f.Add(v2)
	f.Add(encodeCheckpointV1(9, []DictEntry{{Value: 2, Name: "q"}}, [][]relation.Tuple{{{7, 8}}}))
	f.Add([]byte("INDEPCK2"))
	f.Add(v2[:len(v2)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		again, err := decodeCheckpoint(ck.encode())
		if err != nil {
			t.Fatalf("re-encoding accepted checkpoint failed: %v", err)
		}
		if again.Seq != ck.Seq || len(again.Dict) != len(ck.Dict) {
			t.Fatalf("checkpoint decode not stable")
		}
		for i := range ck.Cols {
			if again.Counts[i] != ck.Counts[i] || len(again.Cols[i]) != len(ck.Cols[i]) {
				t.Fatalf("scheme %d shape not stable", i)
			}
		}
	})
}
