package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ReplayStats summarizes a recovery pass.
type ReplayStats struct {
	Segments       int   // segments scanned
	Records        int   // committed records handed to the callback
	TruncatedBytes int64 // torn-tail bytes removed from the final segment
	Skipped        int   // records the callback rejected (see Replay)
}

// Replay scans the segments of dir with sequence number >= fromSeq in
// order and invokes fn for every committed record. A torn tail — an
// incomplete or checksum-failing frame at the end of the FINAL segment —
// is truncated from the file and replay ends cleanly at the last good
// record; the same condition in an earlier segment is corruption (sealed
// segments are fsynced before rotation) and returns an error.
//
// fn errors wrapping ErrSkip are counted in Skipped and replay continues;
// any other fn error aborts the replay.
func Replay(dir string, fromSeq uint64, fn func(Record) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return stats, nil
		}
		return stats, err
	}
	// A gap below fromSeq is fine (checkpoint truncation); a gap at or
	// above it means committed records are missing.
	var replay []uint64
	for _, s := range segs {
		if s >= fromSeq {
			replay = append(replay, s)
		}
	}
	for i := 1; i < len(replay); i++ {
		if replay[i] != replay[i-1]+1 {
			return stats, fmt.Errorf("wal: segment gap: %s follows %s",
				segName(replay[i]), segName(replay[i-1]))
		}
	}
	for i, seq := range replay {
		last := i == len(replay)-1
		n, trunc, err := replaySegment(dir, seq, last, fn, &stats)
		if err != nil {
			return stats, err
		}
		stats.Segments++
		stats.Records += n
		stats.TruncatedBytes += trunc
	}
	return stats, nil
}

// ErrSkip wraps replay-callback errors that should drop the record and
// continue (e.g. a record the engine re-rejects).
var ErrSkip = errors.New("wal: record skipped")

func replaySegment(dir string, seq uint64, last bool, fn func(Record) error, stats *ReplayStats) (records int, truncated int64, err error) {
	path := filepath.Join(dir, segName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < segHeader || string(data[:8]) != segMagic ||
		binary.LittleEndian.Uint64(data[8:16]) != seq {
		if last {
			// A header torn mid-creation carries no records. Remove the
			// file entirely — a zero-length remnant would read as a corrupt
			// SEALED segment on the next recovery and brick the store.
			if err := os.Remove(path); err != nil {
				return 0, 0, err
			}
			syncDir(dir)
			return 0, int64(len(data)), nil
		}
		return 0, 0, fmt.Errorf("wal: %s: bad segment header", segName(seq))
	}
	b := data[segHeader:]
	good := int64(segHeader)
	for len(b) > 0 {
		payload, rest, ok := nextFrame(b)
		if !ok {
			if !last {
				return records, 0, fmt.Errorf("wal: %s: corrupt frame at offset %d in sealed segment",
					segName(seq), good)
			}
			tail := int64(len(b))
			if err := os.Truncate(path, good); err != nil {
				return records, 0, err
			}
			return records, tail, nil
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return records, 0, fmt.Errorf("wal: %s: offset %d: %v", segName(seq), good, err)
		}
		if err := fn(rec); err != nil {
			if errors.Is(err, ErrSkip) {
				stats.Skipped++
			} else {
				return records, 0, err
			}
		}
		records++
		good += frameHeader + int64(len(payload))
		b = rest
	}
	return records, 0, nil
}
