package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the primary side of WAL-streaming replication: a cursor
// protocol over the log's segments. A replica addresses the log by Position
// (segment sequence number plus byte offset) and pulls raw segment bytes —
// the same CRC-framed records recovery replays — so the replication stream
// needs no second encoding and inherits the log's corruption detection. The
// log serves only bytes it has already flushed per its sync mode (under
// SyncAlways the stats offset advances after the group's fsync), so a
// replica can never apply a record the primary might lose in a crash.

// Position addresses one byte of the log: the segment's sequence number and
// the offset within the segment file (the 16-byte header included, so offset
// 0 is the start of the file). Positions order lexicographically and only
// grow over the life of a log directory — rotation opens a higher sequence,
// truncation removes low sequences without renumbering, and recovery after a
// crash opens a fresh segment above every sealed one — which is what makes a
// Position usable as an LSN-style read-your-writes token across restarts.
type Position struct {
	Seq uint64
	Off int64
}

// Less reports strict lexicographic order.
func (p Position) Less(q Position) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Off < q.Off
}

// IsZero reports the zero position, which addresses no segment (sequence
// numbers start at 1): the position of an empty follower.
func (p Position) IsZero() bool { return p.Seq == 0 && p.Off == 0 }

// String renders the position as "seq/off", the wire form of the
// replication token.
func (p Position) String() string { return fmt.Sprintf("%d/%d", p.Seq, p.Off) }

// ParsePosition parses the "seq/off" form. The empty string parses to the
// zero position, so an absent token means "no requirement".
func ParsePosition(s string) (Position, error) {
	if s == "" {
		return Position{}, nil
	}
	seqs, offs, ok := strings.Cut(s, "/")
	if !ok {
		return Position{}, fmt.Errorf("wal: bad position %q (want seq/off)", s)
	}
	seq, err1 := strconv.ParseUint(seqs, 10, 64)
	off, err2 := strconv.ParseInt(offs, 10, 64)
	if err1 != nil || err2 != nil || off < 0 {
		return Position{}, fmt.Errorf("wal: bad position %q (want seq/off)", s)
	}
	return Position{Seq: seq, Off: off}, nil
}

// ErrSegmentGone reports that the requested segment has been truncated away
// by a checkpoint (or never survived a crash): the cursor cannot resume and
// the replica must re-sync from a snapshot.
var ErrSegmentGone = errors.New("wal: segment truncated away")

// ErrShortFrame reports that a buffer ends before the frame does — the
// streaming analogue of a torn tail: not corruption, just "wait for more
// bytes".
var ErrShortFrame = errors.New("wal: incomplete frame")

// SegmentHeaderBytes is the size of the segment-file header a stream
// consumer must skip (after verifying it with CheckSegmentHeader).
const SegmentHeaderBytes = segHeader

// SegmentFile returns the file name of segment seq within a log directory
// — exposed so a replication follower can check whether its local log
// still holds the bytes a persisted position claims.
func SegmentFile(seq uint64) string { return segName(seq) }

// CheckSegmentHeader verifies the 16-byte header at the start of a streamed
// segment: magic plus the expected sequence number. ErrShortFrame means the
// buffer does not yet hold the whole header.
func CheckSegmentHeader(b []byte, seq uint64) error {
	if len(b) < segHeader {
		return ErrShortFrame
	}
	if string(b[:8]) != segMagic {
		return fmt.Errorf("wal: streamed segment %d: bad magic", seq)
	}
	if got := binary.LittleEndian.Uint64(b[8:16]); got != seq {
		return fmt.Errorf("wal: streamed segment declares seq %d, want %d", got, seq)
	}
	return nil
}

// NextStreamFrame parses the frame at the start of b, returning its payload
// and total encoded size. ErrShortFrame means b is a proper prefix of a
// frame (stream more bytes and retry); any other error is corruption — a
// checksum mismatch or an absurd length — which a live stream, unlike
// recovery, must not silently truncate at.
func NextStreamFrame(b []byte) (payload []byte, size int, err error) {
	if len(b) < frameHeader {
		return nil, 0, ErrShortFrame
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxPayload {
		return nil, 0, fmt.Errorf("wal: frame length %d exceeds limit", n)
	}
	if uint64(frameHeader)+uint64(n) > uint64(len(b)) {
		return nil, 0, ErrShortFrame
	}
	payload = b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, fmt.Errorf("wal: frame checksum mismatch")
	}
	return payload, frameHeader + int(n), nil
}

// Flushed returns the position just past the last byte the log has flushed
// (and, under SyncAlways, fsynced): the upper bound of what ReadAt will
// serve, and the token a durable commit is covered by once its wait
// returned.
func (l *Log) Flushed() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Position{Seq: l.stats.ActiveSeq, Off: l.stats.ActiveBytes}
}

// ReadAt serves up to max raw bytes of the log starting at pos, for a
// replication cursor. It returns the bytes actually read and the position
// the caller should request next:
//
//   - data from the middle of a segment advances next within the segment;
//   - reaching the end of a sealed segment advances next to the start of
//     the following one (offset 0 — the consumer verifies the header);
//   - a position at the flushed end of the active segment (or in a segment
//     the writer has not opened yet) returns no data with next == pos: poll
//     again later;
//   - a position below the oldest live segment, or beyond the end of a
//     sealed segment (which after a crash means the primary truncated a
//     torn tail the cursor had already been served under SyncNever),
//     returns ErrSegmentGone: the cursor cannot resume and the replica must
//     re-sync from a snapshot.
//
// Only flushed bytes are served, so a record obtained through ReadAt is
// exactly as durable as the log's sync mode promises.
func (l *Log) ReadAt(pos Position, max int) (data []byte, next Position, err error) {
	if max <= 0 {
		max = 1 << 20
	}
	l.mu.Lock()
	oldest := l.stats.OldestSeq
	active := l.stats.ActiveSeq
	flushed := l.stats.ActiveBytes
	l.mu.Unlock()

	switch {
	case pos.Seq > active:
		// The rotation that will create this segment is queued but has not
		// run yet (snapshot cuts hand out the sequence number before the
		// writer opens the file). Nothing to serve; not an error.
		return nil, pos, nil
	case pos.Seq < oldest:
		return nil, pos, ErrSegmentGone
	}

	end := flushed
	sealed := pos.Seq < active
	path := filepath.Join(l.dir, segName(pos.Seq))
	if sealed {
		fi, err := os.Stat(path)
		if err != nil {
			if os.IsNotExist(err) {
				// Truncated between the stats read and the stat.
				return nil, pos, ErrSegmentGone
			}
			return nil, pos, err
		}
		end = fi.Size()
	}
	if pos.Off > end {
		// Beyond the end of the segment: under SyncNever a crash can lose
		// a tail the cursor was already served; recovery truncated it, so
		// the cursor's history has forked from the log's.
		return nil, pos, ErrSegmentGone
	}
	if pos.Off == end {
		if sealed {
			return nil, Position{Seq: pos.Seq + 1}, nil
		}
		return nil, pos, nil
	}

	n := end - pos.Off
	if int64(max) < n {
		n = int64(max)
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, pos, ErrSegmentGone
		}
		return nil, pos, err
	}
	defer f.Close()
	data = make([]byte, n)
	if _, err := f.ReadAt(data, pos.Off); err != nil && err != io.EOF {
		return nil, pos, err
	}
	next = Position{Seq: pos.Seq, Off: pos.Off + n}
	if sealed && next.Off == end {
		next = Position{Seq: pos.Seq + 1}
	}
	return data, next, nil
}
