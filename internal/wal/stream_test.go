package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"indep/internal/relation"
)

func TestPositionParseRoundTrip(t *testing.T) {
	cases := []Position{{}, {Seq: 1, Off: 0}, {Seq: 3, Off: 16}, {Seq: 42, Off: 1 << 40}}
	for _, p := range cases {
		got, err := ParsePosition(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if p, err := ParsePosition(""); err != nil || !p.IsZero() {
		t.Fatalf("empty token: got %v err %v", p, err)
	}
	for _, bad := range []string{"x", "1", "1/", "/2", "1/2/3", "a/b", "1/-5", "-1/2"} {
		if _, err := ParsePosition(bad); err == nil {
			t.Fatalf("ParsePosition(%q) accepted", bad)
		}
	}
	if !(Position{Seq: 1, Off: 9}).Less(Position{Seq: 2, Off: 0}) ||
		!(Position{Seq: 2, Off: 1}).Less(Position{Seq: 2, Off: 2}) ||
		(Position{Seq: 2, Off: 2}).Less(Position{Seq: 2, Off: 2}) {
		t.Fatal("Less is not lexicographic")
	}
}

// drainStream pulls the whole log through the cursor protocol, verifying
// segment headers and decoding every frame — the follower's ingest loop in
// miniature. It returns the records and the final cursor position.
func drainStream(t *testing.T, l *Log, pos Position) ([]Record, Position) {
	t.Helper()
	var recs []Record
	var buf []byte            // unparsed bytes of segment bufSeq
	bufSeq := pos.Seq         // segment the buffer belongs to
	headerDone := pos.Off > 0 // starting mid-segment: header already consumed
	for {
		data, next, err := l.ReadAt(pos, 64) // tiny chunks: exercise frame splits
		if err != nil {
			t.Fatalf("ReadAt(%v): %v", pos, err)
		}
		if len(data) == 0 && next == pos {
			if len(buf) != 0 {
				t.Fatalf("stream ended with %d unparsed bytes", len(buf))
			}
			return recs, pos
		}
		buf = append(buf, data...)
		pos = next
		if !headerDone {
			if len(buf) < SegmentHeaderBytes {
				continue
			}
			if err := CheckSegmentHeader(buf, bufSeq); err != nil {
				t.Fatalf("segment %d header: %v", bufSeq, err)
			}
			buf = buf[SegmentHeaderBytes:]
			headerDone = true
		}
		for {
			payload, n, err := NextStreamFrame(buf)
			if errors.Is(err, ErrShortFrame) {
				break
			}
			if err != nil {
				t.Fatalf("frame in segment %d: %v", bufSeq, err)
			}
			rec, err := DecodeRecord(payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			recs = append(recs, rec)
			buf = buf[n:]
		}
		if pos.Seq != bufSeq { // sealed segment fully served; move on
			if len(buf) != 0 {
				t.Fatalf("segment %d ended mid-frame (%d bytes pending)", bufSeq, len(buf))
			}
			bufSeq = pos.Seq
			headerDone = false
		}
	}
}

func TestReadAtStreamsWholeLog(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	want := []Record{
		Intern(0, "alpha"),
		Insert(0, relation.Tuple{0, 1}),
		Batch([]TupleOp{{Rel: 1, Tuple: relation.Tuple{2, 3}}, {Rel: 0, Tuple: relation.Tuple{4}}}),
		Delete(1, relation.Tuple{2, 3}),
	}
	if err := l.Append(want...).Wait(); err != nil {
		t.Fatal(err)
	}

	got, end := drainStream(t, l, Position{Seq: 1})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed records mismatch:\n got %+v\nwant %+v", got, want)
	}
	if fl := l.Flushed(); end != fl {
		t.Fatalf("cursor stopped at %v, flushed end %v", end, fl)
	}
}

func TestReadAtCrossesSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var want []Record
	for i := 0; i < 40; i++ {
		r := Insert(0, relation.Tuple{relation.Value(i), relation.Value(i * i)})
		want = append(want, r)
		if err := l.Append(r).Wait(); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			l.Rotate()
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.ActiveSeq < 4 {
		t.Fatalf("expected rotations, active seq %d", st.ActiveSeq)
	}

	got, _ := drainStream(t, l, Position{Seq: 1})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-segment stream mismatch: got %d records, want %d", len(got), len(want))
	}
}

func TestReadAtSegmentGone(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.Append(Insert(0, relation.Tuple{1})).Wait(); err != nil {
		t.Fatal(err)
	}
	cut := l.Rotate()
	if err := l.Append(Insert(0, relation.Tuple{2})).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveBefore(cut); err != nil {
		t.Fatal(err)
	}

	if _, _, err := l.ReadAt(Position{Seq: 1}, 0); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("truncated segment: got %v, want ErrSegmentGone", err)
	}
	// The surviving segment still streams.
	recs, _ := drainStream(t, l, Position{Seq: cut})
	if len(recs) != 1 {
		t.Fatalf("surviving segment: got %d records", len(recs))
	}
}

func TestReadAtEdges(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Insert(0, relation.Tuple{7})).Wait(); err != nil {
		t.Fatal(err)
	}

	// Future segment: no data, no error, cursor unchanged.
	future := Position{Seq: l.Stats().ActiveSeq + 3}
	if data, next, err := l.ReadAt(future, 0); err != nil || len(data) != 0 || next != future {
		t.Fatalf("future segment: data %d next %v err %v", len(data), next, err)
	}

	// At the flushed end of the active segment: poll again later.
	end := l.Flushed()
	if data, next, err := l.ReadAt(end, 0); err != nil || len(data) != 0 || next != end {
		t.Fatalf("flushed end: data %d next %v err %v", len(data), next, err)
	}

	// Past the end of a sealed segment: the cursor's history has forked.
	seal := l.Flushed()
	l.Rotate()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ReadAt(Position{Seq: seal.Seq, Off: seal.Off + 999}, 0); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("past sealed end: got %v, want ErrSegmentGone", err)
	}
	// Exactly at the sealed end: advance to the next segment.
	if _, next, err := l.ReadAt(seal, 0); err != nil || next != (Position{Seq: seal.Seq + 1}) {
		t.Fatalf("at sealed end: next %v err %v", next, err)
	}
}

func TestCheckSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Intern(0, "x")).Wait(); err != nil {
		t.Fatal(err)
	}
	data, _, err := l.ReadAt(Position{Seq: 1}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := CheckSegmentHeader(data, 1); err != nil {
		t.Fatalf("good header rejected: %v", err)
	}
	if err := CheckSegmentHeader(data[:7], 1); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short header: got %v", err)
	}
	if err := CheckSegmentHeader(data, 2); err == nil {
		t.Fatal("wrong sequence accepted")
	}
	bad := append([]byte("NOTAWAL!"), data[8:]...)
	if err := CheckSegmentHeader(bad, 1); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestNextStreamFrameErrors(t *testing.T) {
	frame := appendFrame(nil, Insert(0, relation.Tuple{1, 2, 3}))

	// Every proper prefix is short, never corrupt.
	for i := 0; i < len(frame); i++ {
		if _, _, err := NextStreamFrame(frame[:i]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix %d: got %v, want ErrShortFrame", i, err)
		}
	}
	payload, n, err := NextStreamFrame(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("full frame: n %d err %v", n, err)
	}
	if _, err := DecodeRecord(payload); err != nil {
		t.Fatalf("payload decode: %v", err)
	}

	// A flipped payload byte is corruption, not shortness.
	bad := bytes.Clone(frame)
	bad[frameHeader] ^= 0xff
	if _, _, err := NextStreamFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("corrupt frame: got %v", err)
	}
	// An absurd length is corruption even if the buffer is short.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, err := NextStreamFrame(huge); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("absurd length: got %v", err)
	}
}

func TestCheckpointEncodeExports(t *testing.T) {
	ck := &Checkpoint{Seq: 9, Dict: []DictEntry{{Value: 3, Name: "bob"}},
		Cols: [][][]relation.Value{{{3}, {3}}, {}}, Counts: []int{1, 0}}
	got, err := DecodeCheckpointBytes(ck.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("exported codec round trip:\n got %+v\nwant %+v", got, ck)
	}
	if _, err := DecodeCheckpointBytes([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}
