//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// LockDir takes an exclusive advisory lock on dir's LOCK file, so two
// stores can never interleave WAL histories in the same directory. The
// lock is released by the returned function — or by the kernel when the
// process dies, which is what lets a crashed store's directory reopen
// without manual cleanup.
func LockDir(dir string) (release func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: data directory %s is locked by another store: %w", dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
