package relation

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"indep/internal/attrset"
)

// rowRef is a straight row-major reference implementation of the instance
// semantics — a plain tuple list with linear scans. The randomized suite
// below drives it in lockstep with the columnar Instance, so the arena
// layout can never change which sequences are accepted or what scans and
// joins return.
type rowRef struct {
	attrs  attrset.Set
	tuples []Tuple
}

func (r *rowRef) find(t Tuple) int {
	for i, u := range r.tuples {
		if u.Equal(t) {
			return i
		}
	}
	return -1
}

func (r *rowRef) add(t Tuple) bool {
	if r.find(t) >= 0 {
		return false
	}
	r.tuples = append(r.tuples, t.Clone())
	return true
}

func (r *rowRef) remove(t Tuple) bool {
	i := r.find(t)
	if i < 0 {
		return false
	}
	r.tuples = append(r.tuples[:i], r.tuples[i+1:]...)
	return true
}

func (r *rowRef) has(t Tuple) bool { return r.find(t) >= 0 }

func (r *rowRef) matching(cols []int, want []Value) []Tuple {
	var out []Tuple
	for _, u := range r.tuples {
		ok := true
		for i, c := range cols {
			if u[c] != want[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, u)
		}
	}
	return out
}

// sortedKeys renders a tuple set canonically for comparison.
func sortedKeys(ts []Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		b := make([]byte, 0, 8*len(t))
		for _, v := range t {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func sameTupleSet(t *testing.T, label string, got, want []Tuple) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d tuples, reference has %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: tuple sets differ at rank %d", label, i)
		}
	}
}

// TestColumnarMatchesRowReference drives random Add/Remove/Has/MatchingRows
// sequences — plus periodic Join/Semijoin/Project checks against a second
// instance — through the columnar layout and the row-major reference in
// lockstep, with enough deletes to keep the free list busy.
func TestColumnarMatchesRowReference(t *testing.T) {
	r := rand.New(rand.NewSource(1982))
	for trial := 0; trial < 10; trial++ {
		width := 1 + r.Intn(4)
		var attrs attrset.Set
		for a := 0; a < width; a++ {
			attrs.Add(a)
		}
		// Second relation overlapping on the last attribute of the first.
		var battrs attrset.Set
		battrs.Add(width - 1)
		battrs.Add(width)
		in, ref := NewInstance(attrs), &rowRef{attrs: attrs}
		bi, bref := NewInstance(battrs), &rowRef{attrs: battrs}
		randTuple := func(w int) Tuple {
			tu := make(Tuple, w)
			for c := range tu {
				tu[c] = Value(r.Intn(5)) // small domain to force repeats
			}
			return tu
		}
		for step := 0; step < 1500; step++ {
			tu := randTuple(width)
			switch r.Intn(5) {
			case 0:
				if got, want := in.Add(tu), ref.add(tu); got != want {
					t.Fatalf("trial %d step %d: Add(%v) = %v, reference %v", trial, step, tu, got, want)
				}
			case 1:
				if got, want := in.Remove(tu), ref.remove(tu); got != want {
					t.Fatalf("trial %d step %d: Remove(%v) = %v, reference %v", trial, step, tu, got, want)
				}
			case 2:
				if got, want := in.Has(tu), ref.has(tu); got != want {
					t.Fatalf("trial %d step %d: Has(%v) = %v, reference %v", trial, step, tu, got, want)
				}
			case 3:
				btu := randTuple(2)
				if r.Intn(3) == 0 {
					if got, want := bi.Remove(btu), bref.remove(btu); got != want {
						t.Fatalf("trial %d step %d: b.Remove mismatch", trial, step)
					}
				} else if got, want := bi.Add(btu), bref.add(btu); got != want {
					t.Fatalf("trial %d step %d: b.Add mismatch", trial, step)
				}
			default:
				nc := 1 + r.Intn(width)
				cols := r.Perm(width)[:nc]
				want := make([]Value, nc)
				for i := range want {
					want[i] = Value(r.Intn(5))
				}
				slots := in.MatchingRows(cols, want)
				got := make([]Tuple, 0, len(slots))
				for _, s := range slots {
					got = append(got, in.AppendRow(nil, s))
				}
				sameTupleSet(t, "MatchingRows", got, ref.matching(cols, want))
			}
			if in.Len() != len(ref.tuples) {
				t.Fatalf("trial %d step %d: Len = %d, reference %d", trial, step, in.Len(), len(ref.tuples))
			}
			if step%250 == 249 {
				sameTupleSet(t, "Rows", in.Rows(), ref.tuples)
				// Join/Semijoin against the overlapping relation: the
				// reference result is computed by definition (nested loops).
				var refJoin, refSemi []Tuple
				for _, ta := range ref.tuples {
					hit := false
					for _, tb := range bref.tuples {
						if ta[width-1] == tb[0] {
							hit = true
							refJoin = append(refJoin, append(ta.Clone(), tb[1]))
						}
					}
					if hit {
						refSemi = append(refSemi, ta)
					}
				}
				sameTupleSet(t, "Join", Join(in, bi).Rows(), dedupe(refJoin))
				sameTupleSet(t, "Semijoin", Semijoin(in, bi).Rows(), refSemi)
				proj := in.Project(attrset.Of(0))
				refProj := &rowRef{}
				for _, ta := range ref.tuples {
					refProj.add(Tuple{ta[0]})
				}
				sameTupleSet(t, "Project", proj.Rows(), refProj.tuples)
			}
		}
		// SnapshotCols must round-trip the live rows exactly.
		cols, n := in.SnapshotCols()
		if n != in.Len() {
			t.Fatalf("trial %d: SnapshotCols rows = %d, Len = %d", trial, n, in.Len())
		}
		back := NewInstance(attrs)
		back.AddCols(cols, n)
		sameTupleSet(t, "SnapshotCols", back.Rows(), ref.tuples)
	}
}

func dedupe(ts []Tuple) []Tuple {
	seen := make(map[string]bool)
	var out []Tuple
	for _, t := range ts {
		k := sortedKeys([]Tuple{t})[0]
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// TestColumnarSnapshotReadDuringWrite pins the concurrency contract under
// -race: readers scan an immutable Clone (columns, MatchingRows, LiveRows)
// while a writer keeps mutating the original instance's arenas. The clone
// shares no storage, so the race detector stays quiet and every read sees
// a frozen state.
func TestColumnarSnapshotReadDuringWrite(t *testing.T) {
	var attrs attrset.Set
	for a := 0; a < 4; a++ {
		attrs.Add(a)
	}
	in := NewInstance(attrs)
	for i := 0; i < 1000; i++ {
		in.Add(Tuple{Value(i), Value(i % 7), Value(i % 3), Value(i % 11)})
	}
	snap := in.Clone()
	wantLen := snap.Len()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() { // writer: churn the original, including slot reuse
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tu := Tuple{Value(i % 500), Value(i % 7), Value(i % 3), Value(i % 11)}
			if i%2 == 0 {
				in.Remove(tu)
			} else {
				in.Add(tu)
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if got := len(snap.LiveRows()); got != wantLen {
					t.Errorf("reader %d: LiveRows = %d, want %d", r, got, wantLen)
					return
				}
				slots := snap.MatchingRows([]int{1}, []Value{Value(k % 7)})
				for _, s := range slots {
					if snap.At(s, 1) != Value(k%7) {
						t.Errorf("reader %d: bad match at slot %d", r, s)
						return
					}
				}
				col := snap.Col(0)
				live := snap.LiveMask()
				n := 0
				for s := range col {
					if live[s] {
						n++
					}
				}
				if n != wantLen {
					t.Errorf("reader %d: column scan saw %d live rows, want %d", r, n, wantLen)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-writerDone
}
