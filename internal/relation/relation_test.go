package relation

import (
	"math/rand"
	"testing"

	"indep/internal/attrset"
	"indep/internal/schema"
)

func TestInstanceAddDedupe(t *testing.T) {
	in := NewInstance(attrset.Of(0, 1))
	if !in.Add(Tuple{1, 2}) {
		t.Fatal("first add must succeed")
	}
	if in.Add(Tuple{1, 2}) {
		t.Fatal("duplicate add must be rejected")
	}
	if in.Len() != 1 || !in.Has(Tuple{1, 2}) || in.Has(Tuple{2, 1}) {
		t.Fatal("membership wrong")
	}
}

func TestInstanceAddWrongArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInstance(attrset.Of(0, 1)).Add(Tuple{1})
}

func TestProject(t *testing.T) {
	in := NewInstance(attrset.Of(0, 1, 2))
	in.Add(Tuple{1, 2, 3})
	in.Add(Tuple{1, 2, 4})
	p := in.Project(attrset.Of(0, 1))
	if p.Len() != 1 || !p.Has(Tuple{1, 2}) {
		t.Fatalf("projection wrong: %v", p.Rows())
	}
	p2 := in.Project(attrset.Of(2))
	if p2.Len() != 2 {
		t.Fatalf("projection wrong: %v", p2.Rows())
	}
}

func TestJoinBasic(t *testing.T) {
	// R(A,B) ⋈ S(B,C)
	r := NewInstance(attrset.Of(0, 1))
	r.Add(Tuple{1, 10})
	r.Add(Tuple{2, 20})
	s := NewInstance(attrset.Of(1, 2))
	s.Add(Tuple{10, 100})
	s.Add(Tuple{10, 101})
	s.Add(Tuple{30, 300})
	j := Join(r, s)
	if j.Attrs != attrset.Of(0, 1, 2) {
		t.Fatal("join scheme wrong")
	}
	if j.Len() != 2 || !j.Has(Tuple{1, 10, 100}) || !j.Has(Tuple{1, 10, 101}) {
		t.Fatalf("join tuples wrong: %v", j.Rows())
	}
}

func TestJoinDisjointIsCrossProduct(t *testing.T) {
	r := NewInstance(attrset.Of(0))
	r.Add(Tuple{1})
	r.Add(Tuple{2})
	s := NewInstance(attrset.Of(1))
	s.Add(Tuple{10})
	j := Join(r, s)
	if j.Len() != 2 {
		t.Fatalf("cross product size = %d", j.Len())
	}
}

func TestSemijoin(t *testing.T) {
	r := NewInstance(attrset.Of(0, 1))
	r.Add(Tuple{1, 10})
	r.Add(Tuple{2, 20})
	s := NewInstance(attrset.Of(1))
	s.Add(Tuple{10})
	sj := Semijoin(r, s)
	if sj.Len() != 1 || !sj.Has(Tuple{1, 10}) {
		t.Fatalf("semijoin wrong: %v", sj.Rows())
	}
}

func TestStateAndJoinConsistency(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C)")
	st := NewState(s)
	st.Add("R1", Tuple{1, 2})
	st.Add("R2", Tuple{2, 3})
	if !st.JoinConsistent() {
		t.Fatal("state should be join consistent")
	}
	// Add a dangling tuple: R2 gets (9,9) with no R1 partner.
	st.Add("R2", Tuple{9, 9})
	if st.JoinConsistent() {
		t.Fatal("state with dangling tuple should not be join consistent")
	}
}

func TestProjectOntoRoundTrip(t *testing.T) {
	s := schema.MustParse("R1(A,B); R2(B,C)")
	uinst := NewInstance(s.U.All())
	uinst.Add(Tuple{1, 2, 3})
	uinst.Add(Tuple{4, 5, 6})
	st := ProjectOnto(s, uinst)
	if st.Insts[0].Len() != 2 || st.Insts[1].Len() != 2 {
		t.Fatal("projection sizes wrong")
	}
	if !st.JoinConsistent() {
		t.Fatal("projection of a universal instance must be join consistent")
	}
	j := st.JoinAll()
	for _, tu := range uinst.Rows() {
		if !j.Has(tu) {
			t.Fatal("join must contain original tuples")
		}
	}
}

func TestAddNamedAndString(t *testing.T) {
	s := schema.MustParse("CD(C,D); CT(C,T); TD(T,D)")
	st := NewState(s)
	st.AddNamed("CD", map[string]string{"C": "CS402", "D": "CS"})
	st.AddNamed("CT", map[string]string{"C": "CS402", "T": "Jones"})
	st.AddNamed("TD", map[string]string{"T": "Jones", "D": "EE"})
	out := st.String()
	if out == "" || st.TupleCount() != 3 {
		t.Fatalf("state wrong:\n%s", out)
	}
}

func TestAddNamedMissingValuePanics(t *testing.T) {
	s := schema.MustParse("R1(A,B)")
	st := NewState(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.AddNamed("R1", map[string]string{"A": "x"})
}

func TestQuickJoinCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a := NewInstance(attrset.Of(0, 1))
		b := NewInstance(attrset.Of(1, 2))
		for j := 0; j < 4; j++ {
			a.Add(Tuple{Value(r.Intn(3)), Value(r.Intn(3))})
			b.Add(Tuple{Value(r.Intn(3)), Value(r.Intn(3))})
		}
		ab, ba := Join(a, b), Join(b, a)
		if ab.Len() != ba.Len() {
			t.Fatal("join not commutative in size")
		}
		for _, tu := range ab.Rows() {
			if !ba.Has(tu) {
				t.Fatal("join not commutative in content")
			}
		}
	}
}

func TestQuickProjectionOfJoinContainsOperands(t *testing.T) {
	// π_R(r ⋈ s) ⊆ r (tuples that survive the join project back).
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		a := NewInstance(attrset.Of(0, 1))
		b := NewInstance(attrset.Of(1, 2))
		for j := 0; j < 5; j++ {
			a.Add(Tuple{Value(r.Intn(3)), Value(r.Intn(3))})
			b.Add(Tuple{Value(r.Intn(3)), Value(r.Intn(3))})
		}
		j := Join(a, b)
		for _, tu := range j.Project(a.Attrs).Rows() {
			if !a.Has(tu) {
				t.Fatal("projection of join produced a tuple not in operand")
			}
		}
	}
}

func TestDictNames(t *testing.T) {
	var d Dict
	v1 := d.Value("x")
	v2 := d.Value("y")
	if d.Value("x") != v1 || v1 == v2 {
		t.Fatal("interning broken")
	}
	if d.Name(v2) != "y" {
		t.Fatal("Name broken")
	}
	if d.Name(Value(99)) != "99" {
		t.Fatal("unnamed value must print numerically")
	}
}

func TestInstanceRemove(t *testing.T) {
	in := NewInstance(attrset.Of(0, 1))
	ts := []Tuple{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	for _, tu := range ts {
		in.Add(tu)
	}
	if in.Remove(Tuple{9, 9}) {
		t.Fatal("removed an absent tuple")
	}
	// Remove from the middle: the swap must keep the index consistent.
	if !in.Remove(Tuple{3, 4}) {
		t.Fatal("failed to remove a present tuple")
	}
	if in.Len() != 3 || in.Has(Tuple{3, 4}) {
		t.Fatal("remove left the tuple behind")
	}
	for _, tu := range []Tuple{{1, 2}, {5, 6}, {7, 8}} {
		if !in.Has(tu) {
			t.Fatalf("remove lost unrelated tuple %v", tu)
		}
	}
	// Remove the (current) last tuple, then everything else.
	for _, tu := range []Tuple{{1, 2}, {5, 6}, {7, 8}} {
		if !in.Remove(tu) {
			t.Fatalf("failed to remove %v", tu)
		}
	}
	if in.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", in.Len())
	}
	// Add after remove must still deduplicate correctly.
	if !in.Add(Tuple{3, 4}) || in.Add(Tuple{3, 4}) {
		t.Fatal("re-add after remove broken")
	}
}

func TestDictDefine(t *testing.T) {
	var d Dict
	d.Define(Value(10), "ten")
	if d.Name(Value(10)) != "ten" {
		t.Fatal("Define did not bind the name")
	}
	if d.Name(Value(3)) != "3" {
		t.Fatal("values in the gap must render as numerals")
	}
	if d.Value("ten") != Value(10) {
		t.Fatal("Define did not register the reverse mapping")
	}
}
