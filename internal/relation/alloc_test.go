package relation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"indep/internal/attrset"
)

// The binary-key promise: membership probes, duplicate adds, and warmed
// secondary-index probes never allocate. These assertions are what keeps
// fmt-built string keys from creeping back onto the hot path.

func TestInstanceProbesAllocationFree(t *testing.T) {
	in := NewInstance(attrset.Of(0, 1, 2))
	for i := 0; i < 256; i++ {
		in.Add(Tuple{Value(i), Value(i % 7), Value(i % 3)})
	}
	probe := Tuple{5, 5, 2}
	absent := Tuple{-9, -9, -9}
	if n := testing.AllocsPerRun(200, func() { in.Has(probe) }); n != 0 {
		t.Errorf("Has (present) allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(200, func() { in.Has(absent) }); n != 0 {
		t.Errorf("Has (absent) allocates %v per run", n)
	}
	dup := Tuple{1, 1, 1}
	in.Add(dup)
	if n := testing.AllocsPerRun(200, func() { in.Add(dup) }); n != 0 {
		t.Errorf("duplicate Add allocates %v per run", n)
	}
}

func TestMatchingRowsSteadyStateAllocationFree(t *testing.T) {
	in := NewInstance(attrset.Of(0, 1))
	for i := 0; i < 128; i++ {
		in.Add(Tuple{Value(i % 16), Value(i)})
	}
	cols := []int{0}
	want := []Value{3}
	in.MatchingRows(cols, want) // build the index
	if n := testing.AllocsPerRun(200, func() { in.MatchingRows(cols, want) }); n != 0 {
		t.Errorf("warmed MatchingRows probe allocates %v per run", n)
	}
	in.LiveRows() // build the live-slot cache
	if n := testing.AllocsPerRun(200, func() { in.MatchingRows(nil, nil) }); n != 0 {
		t.Errorf("warmed full-scan probe allocates %v per run", n)
	}
}

func TestDictInternSteadyStateAllocationFree(t *testing.T) {
	d := &Dict{}
	for i := 0; i < 64; i++ {
		d.Value(fmt.Sprintf("name-%d", i))
	}
	if n := testing.AllocsPerRun(200, func() { d.Value("name-17") }); n != 0 {
		t.Errorf("re-interning a known name allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(200, func() { d.Lookup("name-17") }); n != 0 {
		t.Errorf("Lookup allocates %v per run", n)
	}
}

// stringSet is the seed's string-keyed tuple set, kept here as the
// reference semantics for the randomized cross-check below.
type stringSet struct {
	m map[string]bool
}

func (s *stringSet) key(t Tuple) string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%d|", int64(v))
	}
	return b.String()
}

func (s *stringSet) add(t Tuple) bool {
	k := s.key(t)
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}

func (s *stringSet) remove(t Tuple) bool {
	k := s.key(t)
	if !s.m[k] {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *stringSet) has(t Tuple) bool { return s.m[s.key(t)] }

// TestHashedIndexMatchesStringIndex drives random Add/Remove/Has sequences
// through the hashed instance index and the old string-keyed reference in
// lockstep: every answer must agree, so the representation change can never
// change which insert sequences are accepted.
func TestHashedIndexMatchesStringIndex(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		width := 1 + r.Intn(4)
		var attrs attrset.Set
		for a := 0; a < width; a++ {
			attrs.Add(a)
		}
		in := NewInstance(attrs)
		ref := &stringSet{m: make(map[string]bool)}
		for step := 0; step < 2000; step++ {
			tu := make(Tuple, width)
			for c := range tu {
				tu[c] = Value(r.Intn(6)) // small domain to force repeats
			}
			switch r.Intn(3) {
			case 0:
				if got, want := in.Add(tu), ref.add(tu); got != want {
					t.Fatalf("trial %d step %d: Add(%v) = %v, reference %v", trial, step, tu, got, want)
				}
			case 1:
				if got, want := in.Remove(tu), ref.remove(tu); got != want {
					t.Fatalf("trial %d step %d: Remove(%v) = %v, reference %v", trial, step, tu, got, want)
				}
			default:
				if got, want := in.Has(tu), ref.has(tu); got != want {
					t.Fatalf("trial %d step %d: Has(%v) = %v, reference %v", trial, step, tu, got, want)
				}
			}
			if in.Len() != len(ref.m) {
				t.Fatalf("trial %d step %d: Len = %d, reference %d", trial, step, in.Len(), len(ref.m))
			}
		}
	}
}

// TestMatchingRowsMatchesScan cross-checks the secondary hash index
// against a straight scan on random data and random column subsets,
// interleaving deletes so vacated slots can never surface as matches.
func TestMatchingRowsMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := NewInstance(attrset.Of(0, 1, 2, 3))
	for i := 0; i < 500; i++ {
		in.Add(Tuple{Value(r.Intn(5)), Value(r.Intn(5)), Value(r.Intn(5)), Value(r.Intn(5))})
	}
	for q := 0; q < 200; q++ {
		if q%10 == 5 { // churn the free list between probe batches
			in.Remove(Tuple{Value(r.Intn(5)), Value(r.Intn(5)), Value(r.Intn(5)), Value(r.Intn(5))})
			in.Add(Tuple{Value(r.Intn(5)), Value(r.Intn(5)), Value(r.Intn(5)), Value(r.Intn(5))})
		}
		nc := 1 + r.Intn(3)
		cols := r.Perm(4)[:nc]
		want := make([]Value, nc)
		for i := range want {
			want[i] = Value(r.Intn(5))
		}
		got := in.MatchingRows(cols, want)
		n := 0
		for _, tu := range in.Rows() {
			ok := true
			for i, c := range cols {
				if tu[c] != want[i] {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		if len(got) != n {
			t.Fatalf("query %d cols=%v want=%v: %d matches, scan says %d", q, cols, want, len(got), n)
		}
		for _, s := range got {
			if !in.Alive(s) {
				t.Fatalf("query %d: matched a dead slot %d", q, s)
			}
			for i, c := range cols {
				if in.At(s, c) != want[i] {
					t.Fatalf("query %d: slot %d does not match cols=%v want=%v", q, s, cols, want)
				}
			}
		}
	}
}
